file(REMOVE_RECURSE
  "../bench/offload_model"
  "../bench/offload_model.pdb"
  "CMakeFiles/offload_model.dir/offload_model.cpp.o"
  "CMakeFiles/offload_model.dir/offload_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
