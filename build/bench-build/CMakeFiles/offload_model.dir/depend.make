# Empty dependencies file for offload_model.
# This may be replaced when dependencies are built.
