# Empty compiler generated dependencies file for polyhedral_transforms.
# This may be replaced when dependencies are built.
