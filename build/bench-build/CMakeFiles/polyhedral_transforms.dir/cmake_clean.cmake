file(REMOVE_RECURSE
  "../bench/polyhedral_transforms"
  "../bench/polyhedral_transforms.pdb"
  "CMakeFiles/polyhedral_transforms.dir/polyhedral_transforms.cpp.o"
  "CMakeFiles/polyhedral_transforms.dir/polyhedral_transforms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polyhedral_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
