file(REMOVE_RECURSE
  "../bench/cloud_interference"
  "../bench/cloud_interference.pdb"
  "CMakeFiles/cloud_interference.dir/cloud_interference.cpp.o"
  "CMakeFiles/cloud_interference.dir/cloud_interference.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
