# Empty dependencies file for cloud_interference.
# This may be replaced when dependencies are built.
