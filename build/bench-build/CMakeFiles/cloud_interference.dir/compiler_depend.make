# Empty compiler generated dependencies file for cloud_interference.
# This may be replaced when dependencies are built.
