file(REMOVE_RECURSE
  "../bench/matmul_variants"
  "../bench/matmul_variants.pdb"
  "CMakeFiles/matmul_variants.dir/matmul_variants.cpp.o"
  "CMakeFiles/matmul_variants.dir/matmul_variants.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
