# Empty dependencies file for assignment3_statistical.
# This may be replaced when dependencies are built.
