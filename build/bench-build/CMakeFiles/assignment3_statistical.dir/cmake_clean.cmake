file(REMOVE_RECURSE
  "../bench/assignment3_statistical"
  "../bench/assignment3_statistical.pdb"
  "CMakeFiles/assignment3_statistical.dir/assignment3_statistical.cpp.o"
  "CMakeFiles/assignment3_statistical.dir/assignment3_statistical.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assignment3_statistical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
