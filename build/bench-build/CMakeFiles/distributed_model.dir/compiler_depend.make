# Empty compiler generated dependencies file for distributed_model.
# This may be replaced when dependencies are built.
