file(REMOVE_RECURSE
  "../bench/distributed_model"
  "../bench/distributed_model.pdb"
  "CMakeFiles/distributed_model.dir/distributed_model.cpp.o"
  "CMakeFiles/distributed_model.dir/distributed_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
