file(REMOVE_RECURSE
  "../bench/benchmark_suite"
  "../bench/benchmark_suite.pdb"
  "CMakeFiles/benchmark_suite.dir/benchmark_suite.cpp.o"
  "CMakeFiles/benchmark_suite.dir/benchmark_suite.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
