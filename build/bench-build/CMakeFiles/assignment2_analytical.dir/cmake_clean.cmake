file(REMOVE_RECURSE
  "../bench/assignment2_analytical"
  "../bench/assignment2_analytical.pdb"
  "CMakeFiles/assignment2_analytical.dir/assignment2_analytical.cpp.o"
  "CMakeFiles/assignment2_analytical.dir/assignment2_analytical.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assignment2_analytical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
