# Empty compiler generated dependencies file for assignment2_analytical.
# This may be replaced when dependencies are built.
