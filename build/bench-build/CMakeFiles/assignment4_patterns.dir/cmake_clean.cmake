file(REMOVE_RECURSE
  "../bench/assignment4_patterns"
  "../bench/assignment4_patterns.pdb"
  "CMakeFiles/assignment4_patterns.dir/assignment4_patterns.cpp.o"
  "CMakeFiles/assignment4_patterns.dir/assignment4_patterns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assignment4_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
