# Empty compiler generated dependencies file for assignment4_patterns.
# This may be replaced when dependencies are built.
