file(REMOVE_RECURSE
  "../bench/assignment1_roofline"
  "../bench/assignment1_roofline.pdb"
  "CMakeFiles/assignment1_roofline.dir/assignment1_roofline.cpp.o"
  "CMakeFiles/assignment1_roofline.dir/assignment1_roofline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assignment1_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
