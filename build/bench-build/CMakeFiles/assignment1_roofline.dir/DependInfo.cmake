
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/assignment1_roofline.cpp" "bench-build/CMakeFiles/assignment1_roofline.dir/assignment1_roofline.cpp.o" "gcc" "bench-build/CMakeFiles/assignment1_roofline.dir/assignment1_roofline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/perfeng_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/perfeng_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/microbench/CMakeFiles/perfeng_microbench.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/perfeng_models.dir/DependInfo.cmake"
  "/root/repo/build/src/counters/CMakeFiles/perfeng_counters.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/perfeng_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/perfeng_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/perfeng_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/perfeng_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
