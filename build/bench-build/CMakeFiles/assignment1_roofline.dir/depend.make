# Empty dependencies file for assignment1_roofline.
# This may be replaced when dependencies are built.
