# Empty compiler generated dependencies file for instruction_schedule.
# This may be replaced when dependencies are built.
