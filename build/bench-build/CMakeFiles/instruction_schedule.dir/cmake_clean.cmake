file(REMOVE_RECURSE
  "../bench/instruction_schedule"
  "../bench/instruction_schedule.pdb"
  "CMakeFiles/instruction_schedule.dir/instruction_schedule.cpp.o"
  "CMakeFiles/instruction_schedule.dir/instruction_schedule.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instruction_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
