# Empty dependencies file for comm_trace_analysis.
# This may be replaced when dependencies are built.
