file(REMOVE_RECURSE
  "../bench/comm_trace_analysis"
  "../bench/comm_trace_analysis.pdb"
  "CMakeFiles/comm_trace_analysis.dir/comm_trace_analysis.cpp.o"
  "CMakeFiles/comm_trace_analysis.dir/comm_trace_analysis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_trace_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
