file(REMOVE_RECURSE
  "../bench/spmv_formats"
  "../bench/spmv_formats.pdb"
  "CMakeFiles/spmv_formats.dir/spmv_formats.cpp.o"
  "CMakeFiles/spmv_formats.dir/spmv_formats.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
