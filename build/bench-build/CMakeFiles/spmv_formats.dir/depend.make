# Empty dependencies file for spmv_formats.
# This may be replaced when dependencies are built.
