file(REMOVE_RECURSE
  "../bench/energy_model"
  "../bench/energy_model.pdb"
  "CMakeFiles/energy_model.dir/energy_model.cpp.o"
  "CMakeFiles/energy_model.dir/energy_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
