# Empty compiler generated dependencies file for grading_model.
# This may be replaced when dependencies are built.
