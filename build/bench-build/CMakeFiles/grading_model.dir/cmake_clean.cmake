file(REMOVE_RECURSE
  "../bench/grading_model"
  "../bench/grading_model.pdb"
  "CMakeFiles/grading_model.dir/grading_model.cpp.o"
  "CMakeFiles/grading_model.dir/grading_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grading_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
