# Empty dependencies file for table2_evaluation.
# This may be replaced when dependencies are built.
