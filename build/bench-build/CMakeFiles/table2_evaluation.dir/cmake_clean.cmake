file(REMOVE_RECURSE
  "../bench/table2_evaluation"
  "../bench/table2_evaluation.pdb"
  "CMakeFiles/table2_evaluation.dir/table2_evaluation.cpp.o"
  "CMakeFiles/table2_evaluation.dir/table2_evaluation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_evaluation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
