file(REMOVE_RECURSE
  "../bench/table1_topics"
  "../bench/table1_topics.pdb"
  "CMakeFiles/table1_topics.dir/table1_topics.cpp.o"
  "CMakeFiles/table1_topics.dir/table1_topics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_topics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
