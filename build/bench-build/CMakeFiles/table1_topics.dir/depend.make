# Empty dependencies file for table1_topics.
# This may be replaced when dependencies are built.
