file(REMOVE_RECURSE
  "../bench/queuing_theory"
  "../bench/queuing_theory.pdb"
  "CMakeFiles/queuing_theory.dir/queuing_theory.cpp.o"
  "CMakeFiles/queuing_theory.dir/queuing_theory.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queuing_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
