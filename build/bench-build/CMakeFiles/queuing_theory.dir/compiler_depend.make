# Empty compiler generated dependencies file for queuing_theory.
# This may be replaced when dependencies are built.
