file(REMOVE_RECURSE
  "../bench/project_exemplars"
  "../bench/project_exemplars.pdb"
  "CMakeFiles/project_exemplars.dir/project_exemplars.cpp.o"
  "CMakeFiles/project_exemplars.dir/project_exemplars.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/project_exemplars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
