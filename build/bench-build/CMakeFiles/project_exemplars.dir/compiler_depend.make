# Empty compiler generated dependencies file for project_exemplars.
# This may be replaced when dependencies are built.
