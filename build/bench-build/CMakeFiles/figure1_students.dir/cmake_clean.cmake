file(REMOVE_RECURSE
  "../bench/figure1_students"
  "../bench/figure1_students.pdb"
  "CMakeFiles/figure1_students.dir/figure1_students.cpp.o"
  "CMakeFiles/figure1_students.dir/figure1_students.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_students.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
