# Empty dependencies file for figure1_students.
# This may be replaced when dependencies are built.
