file(REMOVE_RECURSE
  "../bench/stream_micro"
  "../bench/stream_micro.pdb"
  "CMakeFiles/stream_micro.dir/stream_micro.cpp.o"
  "CMakeFiles/stream_micro.dir/stream_micro.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
