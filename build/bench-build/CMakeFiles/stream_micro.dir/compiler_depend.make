# Empty compiler generated dependencies file for stream_micro.
# This may be replaced when dependencies are built.
