# Empty dependencies file for gpu_occupancy.
# This may be replaced when dependencies are built.
