file(REMOVE_RECURSE
  "../bench/gpu_occupancy"
  "../bench/gpu_occupancy.pdb"
  "CMakeFiles/gpu_occupancy.dir/gpu_occupancy.cpp.o"
  "CMakeFiles/gpu_occupancy.dir/gpu_occupancy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
