file(REMOVE_RECURSE
  "../bench/cache_model"
  "../bench/cache_model.pdb"
  "CMakeFiles/cache_model.dir/cache_model.cpp.o"
  "CMakeFiles/cache_model.dir/cache_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
