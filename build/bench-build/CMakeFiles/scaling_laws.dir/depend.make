# Empty dependencies file for scaling_laws.
# This may be replaced when dependencies are built.
