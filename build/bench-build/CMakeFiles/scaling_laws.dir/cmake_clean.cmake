file(REMOVE_RECURSE
  "../bench/scaling_laws"
  "../bench/scaling_laws.pdb"
  "CMakeFiles/scaling_laws.dir/scaling_laws.cpp.o"
  "CMakeFiles/scaling_laws.dir/scaling_laws.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_laws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
