file(REMOVE_RECURSE
  "CMakeFiles/test_ecm.dir/test_ecm.cpp.o"
  "CMakeFiles/test_ecm.dir/test_ecm.cpp.o.d"
  "test_ecm"
  "test_ecm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
