# Empty compiler generated dependencies file for test_ecm.
# This may be replaced when dependencies are built.
