# Empty dependencies file for test_queuing.
# This may be replaced when dependencies are built.
