file(REMOVE_RECURSE
  "CMakeFiles/test_queuing.dir/test_queuing.cpp.o"
  "CMakeFiles/test_queuing.dir/test_queuing.cpp.o.d"
  "test_queuing"
  "test_queuing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queuing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
