file(REMOVE_RECURSE
  "CMakeFiles/test_integration_course.dir/test_integration_course.cpp.o"
  "CMakeFiles/test_integration_course.dir/test_integration_course.cpp.o.d"
  "test_integration_course"
  "test_integration_course.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_course.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
