# Empty dependencies file for test_integration_course.
# This may be replaced when dependencies are built.
