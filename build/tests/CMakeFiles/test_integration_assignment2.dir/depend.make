# Empty dependencies file for test_integration_assignment2.
# This may be replaced when dependencies are built.
