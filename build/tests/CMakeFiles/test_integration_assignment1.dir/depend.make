# Empty dependencies file for test_integration_assignment1.
# This may be replaced when dependencies are built.
