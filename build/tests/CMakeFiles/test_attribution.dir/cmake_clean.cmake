file(REMOVE_RECURSE
  "CMakeFiles/test_attribution.dir/test_attribution.cpp.o"
  "CMakeFiles/test_attribution.dir/test_attribution.cpp.o.d"
  "test_attribution"
  "test_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
