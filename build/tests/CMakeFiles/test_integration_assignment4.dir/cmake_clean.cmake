file(REMOVE_RECURSE
  "CMakeFiles/test_integration_assignment4.dir/test_integration_assignment4.cpp.o"
  "CMakeFiles/test_integration_assignment4.dir/test_integration_assignment4.cpp.o.d"
  "test_integration_assignment4"
  "test_integration_assignment4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_assignment4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
