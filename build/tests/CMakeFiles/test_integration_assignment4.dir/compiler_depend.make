# Empty compiler generated dependencies file for test_integration_assignment4.
# This may be replaced when dependencies are built.
