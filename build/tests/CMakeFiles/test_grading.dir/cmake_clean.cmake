file(REMOVE_RECURSE
  "CMakeFiles/test_grading.dir/test_grading.cpp.o"
  "CMakeFiles/test_grading.dir/test_grading.cpp.o.d"
  "test_grading"
  "test_grading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
