# Empty compiler generated dependencies file for test_grading.
# This may be replaced when dependencies are built.
