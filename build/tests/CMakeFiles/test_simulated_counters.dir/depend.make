# Empty dependencies file for test_simulated_counters.
# This may be replaced when dependencies are built.
