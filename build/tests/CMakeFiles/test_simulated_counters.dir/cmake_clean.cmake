file(REMOVE_RECURSE
  "CMakeFiles/test_simulated_counters.dir/test_simulated_counters.cpp.o"
  "CMakeFiles/test_simulated_counters.dir/test_simulated_counters.cpp.o.d"
  "test_simulated_counters"
  "test_simulated_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulated_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
