# Empty compiler generated dependencies file for test_peak_flops_latency.
# This may be replaced when dependencies are built.
