file(REMOVE_RECURSE
  "CMakeFiles/test_peak_flops_latency.dir/test_peak_flops_latency.cpp.o"
  "CMakeFiles/test_peak_flops_latency.dir/test_peak_flops_latency.cpp.o.d"
  "test_peak_flops_latency"
  "test_peak_flops_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_peak_flops_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
