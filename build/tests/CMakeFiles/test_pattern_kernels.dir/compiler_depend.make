# Empty compiler generated dependencies file for test_pattern_kernels.
# This may be replaced when dependencies are built.
