file(REMOVE_RECURSE
  "CMakeFiles/test_pattern_kernels.dir/test_pattern_kernels.cpp.o"
  "CMakeFiles/test_pattern_kernels.dir/test_pattern_kernels.cpp.o.d"
  "test_pattern_kernels"
  "test_pattern_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pattern_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
