file(REMOVE_RECURSE
  "CMakeFiles/test_integration_assignment3.dir/test_integration_assignment3.cpp.o"
  "CMakeFiles/test_integration_assignment3.dir/test_integration_assignment3.cpp.o.d"
  "test_integration_assignment3"
  "test_integration_assignment3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_assignment3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
