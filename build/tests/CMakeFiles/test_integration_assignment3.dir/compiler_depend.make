# Empty compiler generated dependencies file for test_integration_assignment3.
# This may be replaced when dependencies are built.
