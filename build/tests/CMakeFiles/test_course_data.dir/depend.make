# Empty dependencies file for test_course_data.
# This may be replaced when dependencies are built.
