file(REMOVE_RECURSE
  "CMakeFiles/test_course_data.dir/test_course_data.cpp.o"
  "CMakeFiles/test_course_data.dir/test_course_data.cpp.o.d"
  "test_course_data"
  "test_course_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_course_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
