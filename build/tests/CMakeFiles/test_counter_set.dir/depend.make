# Empty dependencies file for test_counter_set.
# This may be replaced when dependencies are built.
