file(REMOVE_RECURSE
  "CMakeFiles/test_counter_set.dir/test_counter_set.cpp.o"
  "CMakeFiles/test_counter_set.dir/test_counter_set.cpp.o.d"
  "test_counter_set"
  "test_counter_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_counter_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
