file(REMOVE_RECURSE
  "CMakeFiles/test_life.dir/test_life.cpp.o"
  "CMakeFiles/test_life.dir/test_life.cpp.o.d"
  "test_life"
  "test_life.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_life.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
