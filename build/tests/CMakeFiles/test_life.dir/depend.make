# Empty dependencies file for test_life.
# This may be replaced when dependencies are built.
