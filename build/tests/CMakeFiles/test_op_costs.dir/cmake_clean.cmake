file(REMOVE_RECURSE
  "CMakeFiles/test_op_costs.dir/test_op_costs.cpp.o"
  "CMakeFiles/test_op_costs.dir/test_op_costs.cpp.o.d"
  "test_op_costs"
  "test_op_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_op_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
