# Empty dependencies file for test_op_costs.
# This may be replaced when dependencies are built.
