# Empty dependencies file for test_perf_backend.
# This may be replaced when dependencies are built.
