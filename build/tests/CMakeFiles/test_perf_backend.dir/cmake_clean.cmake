file(REMOVE_RECURSE
  "CMakeFiles/test_perf_backend.dir/test_perf_backend.cpp.o"
  "CMakeFiles/test_perf_backend.dir/test_perf_backend.cpp.o.d"
  "test_perf_backend"
  "test_perf_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
