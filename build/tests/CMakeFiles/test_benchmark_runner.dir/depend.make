# Empty dependencies file for test_benchmark_runner.
# This may be replaced when dependencies are built.
