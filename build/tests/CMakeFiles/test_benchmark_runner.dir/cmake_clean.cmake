file(REMOVE_RECURSE
  "CMakeFiles/test_benchmark_runner.dir/test_benchmark_runner.cpp.o"
  "CMakeFiles/test_benchmark_runner.dir/test_benchmark_runner.cpp.o.d"
  "test_benchmark_runner"
  "test_benchmark_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchmark_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
