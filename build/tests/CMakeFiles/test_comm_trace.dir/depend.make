# Empty dependencies file for test_comm_trace.
# This may be replaced when dependencies are built.
