file(REMOVE_RECURSE
  "CMakeFiles/test_comm_trace.dir/test_comm_trace.cpp.o"
  "CMakeFiles/test_comm_trace.dir/test_comm_trace.cpp.o.d"
  "test_comm_trace"
  "test_comm_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
