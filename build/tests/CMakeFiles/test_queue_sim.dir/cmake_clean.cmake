file(REMOVE_RECURSE
  "CMakeFiles/test_queue_sim.dir/test_queue_sim.cpp.o"
  "CMakeFiles/test_queue_sim.dir/test_queue_sim.cpp.o.d"
  "test_queue_sim"
  "test_queue_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queue_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
