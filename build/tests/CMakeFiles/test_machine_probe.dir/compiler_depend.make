# Empty compiler generated dependencies file for test_machine_probe.
# This may be replaced when dependencies are built.
