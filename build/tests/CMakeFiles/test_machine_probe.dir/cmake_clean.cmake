file(REMOVE_RECURSE
  "CMakeFiles/test_machine_probe.dir/test_machine_probe.cpp.o"
  "CMakeFiles/test_machine_probe.dir/test_machine_probe.cpp.o.d"
  "test_machine_probe"
  "test_machine_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
