file(REMOVE_RECURSE
  "CMakeFiles/test_course_tables.dir/test_course_tables.cpp.o"
  "CMakeFiles/test_course_tables.dir/test_course_tables.cpp.o.d"
  "test_course_tables"
  "test_course_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_course_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
