# Empty dependencies file for test_course_tables.
# This may be replaced when dependencies are built.
