file(REMOVE_RECURSE
  "CMakeFiles/perfeng_counters.dir/src/attribution.cpp.o"
  "CMakeFiles/perfeng_counters.dir/src/attribution.cpp.o.d"
  "CMakeFiles/perfeng_counters.dir/src/counter_set.cpp.o"
  "CMakeFiles/perfeng_counters.dir/src/counter_set.cpp.o.d"
  "CMakeFiles/perfeng_counters.dir/src/patterns.cpp.o"
  "CMakeFiles/perfeng_counters.dir/src/patterns.cpp.o.d"
  "CMakeFiles/perfeng_counters.dir/src/perf_backend.cpp.o"
  "CMakeFiles/perfeng_counters.dir/src/perf_backend.cpp.o.d"
  "CMakeFiles/perfeng_counters.dir/src/simulated_counters.cpp.o"
  "CMakeFiles/perfeng_counters.dir/src/simulated_counters.cpp.o.d"
  "libperfeng_counters.a"
  "libperfeng_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfeng_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
