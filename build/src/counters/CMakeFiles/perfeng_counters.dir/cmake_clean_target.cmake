file(REMOVE_RECURSE
  "libperfeng_counters.a"
)
