# Empty dependencies file for perfeng_counters.
# This may be replaced when dependencies are built.
