
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/counters/src/attribution.cpp" "src/counters/CMakeFiles/perfeng_counters.dir/src/attribution.cpp.o" "gcc" "src/counters/CMakeFiles/perfeng_counters.dir/src/attribution.cpp.o.d"
  "/root/repo/src/counters/src/counter_set.cpp" "src/counters/CMakeFiles/perfeng_counters.dir/src/counter_set.cpp.o" "gcc" "src/counters/CMakeFiles/perfeng_counters.dir/src/counter_set.cpp.o.d"
  "/root/repo/src/counters/src/patterns.cpp" "src/counters/CMakeFiles/perfeng_counters.dir/src/patterns.cpp.o" "gcc" "src/counters/CMakeFiles/perfeng_counters.dir/src/patterns.cpp.o.d"
  "/root/repo/src/counters/src/perf_backend.cpp" "src/counters/CMakeFiles/perfeng_counters.dir/src/perf_backend.cpp.o" "gcc" "src/counters/CMakeFiles/perfeng_counters.dir/src/perf_backend.cpp.o.d"
  "/root/repo/src/counters/src/simulated_counters.cpp" "src/counters/CMakeFiles/perfeng_counters.dir/src/simulated_counters.cpp.o" "gcc" "src/counters/CMakeFiles/perfeng_counters.dir/src/simulated_counters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/perfeng_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/perfeng_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/perfeng_measure.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
