
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/src/fft.cpp" "src/kernels/CMakeFiles/perfeng_kernels.dir/src/fft.cpp.o" "gcc" "src/kernels/CMakeFiles/perfeng_kernels.dir/src/fft.cpp.o.d"
  "/root/repo/src/kernels/src/graph.cpp" "src/kernels/CMakeFiles/perfeng_kernels.dir/src/graph.cpp.o" "gcc" "src/kernels/CMakeFiles/perfeng_kernels.dir/src/graph.cpp.o.d"
  "/root/repo/src/kernels/src/histogram.cpp" "src/kernels/CMakeFiles/perfeng_kernels.dir/src/histogram.cpp.o" "gcc" "src/kernels/CMakeFiles/perfeng_kernels.dir/src/histogram.cpp.o.d"
  "/root/repo/src/kernels/src/life.cpp" "src/kernels/CMakeFiles/perfeng_kernels.dir/src/life.cpp.o" "gcc" "src/kernels/CMakeFiles/perfeng_kernels.dir/src/life.cpp.o.d"
  "/root/repo/src/kernels/src/matmul.cpp" "src/kernels/CMakeFiles/perfeng_kernels.dir/src/matmul.cpp.o" "gcc" "src/kernels/CMakeFiles/perfeng_kernels.dir/src/matmul.cpp.o.d"
  "/root/repo/src/kernels/src/matrix_market.cpp" "src/kernels/CMakeFiles/perfeng_kernels.dir/src/matrix_market.cpp.o" "gcc" "src/kernels/CMakeFiles/perfeng_kernels.dir/src/matrix_market.cpp.o.d"
  "/root/repo/src/kernels/src/pattern_kernels.cpp" "src/kernels/CMakeFiles/perfeng_kernels.dir/src/pattern_kernels.cpp.o" "gcc" "src/kernels/CMakeFiles/perfeng_kernels.dir/src/pattern_kernels.cpp.o.d"
  "/root/repo/src/kernels/src/sparse.cpp" "src/kernels/CMakeFiles/perfeng_kernels.dir/src/sparse.cpp.o" "gcc" "src/kernels/CMakeFiles/perfeng_kernels.dir/src/sparse.cpp.o.d"
  "/root/repo/src/kernels/src/stencil.cpp" "src/kernels/CMakeFiles/perfeng_kernels.dir/src/stencil.cpp.o" "gcc" "src/kernels/CMakeFiles/perfeng_kernels.dir/src/stencil.cpp.o.d"
  "/root/repo/src/kernels/src/traces.cpp" "src/kernels/CMakeFiles/perfeng_kernels.dir/src/traces.cpp.o" "gcc" "src/kernels/CMakeFiles/perfeng_kernels.dir/src/traces.cpp.o.d"
  "/root/repo/src/kernels/src/transpose.cpp" "src/kernels/CMakeFiles/perfeng_kernels.dir/src/transpose.cpp.o" "gcc" "src/kernels/CMakeFiles/perfeng_kernels.dir/src/transpose.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/perfeng_common.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/perfeng_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/perfeng_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
