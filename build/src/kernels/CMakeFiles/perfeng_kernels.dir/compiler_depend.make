# Empty compiler generated dependencies file for perfeng_kernels.
# This may be replaced when dependencies are built.
