file(REMOVE_RECURSE
  "libperfeng_kernels.a"
)
