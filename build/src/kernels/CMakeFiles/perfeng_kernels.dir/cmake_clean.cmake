file(REMOVE_RECURSE
  "CMakeFiles/perfeng_kernels.dir/src/fft.cpp.o"
  "CMakeFiles/perfeng_kernels.dir/src/fft.cpp.o.d"
  "CMakeFiles/perfeng_kernels.dir/src/graph.cpp.o"
  "CMakeFiles/perfeng_kernels.dir/src/graph.cpp.o.d"
  "CMakeFiles/perfeng_kernels.dir/src/histogram.cpp.o"
  "CMakeFiles/perfeng_kernels.dir/src/histogram.cpp.o.d"
  "CMakeFiles/perfeng_kernels.dir/src/life.cpp.o"
  "CMakeFiles/perfeng_kernels.dir/src/life.cpp.o.d"
  "CMakeFiles/perfeng_kernels.dir/src/matmul.cpp.o"
  "CMakeFiles/perfeng_kernels.dir/src/matmul.cpp.o.d"
  "CMakeFiles/perfeng_kernels.dir/src/matrix_market.cpp.o"
  "CMakeFiles/perfeng_kernels.dir/src/matrix_market.cpp.o.d"
  "CMakeFiles/perfeng_kernels.dir/src/pattern_kernels.cpp.o"
  "CMakeFiles/perfeng_kernels.dir/src/pattern_kernels.cpp.o.d"
  "CMakeFiles/perfeng_kernels.dir/src/sparse.cpp.o"
  "CMakeFiles/perfeng_kernels.dir/src/sparse.cpp.o.d"
  "CMakeFiles/perfeng_kernels.dir/src/stencil.cpp.o"
  "CMakeFiles/perfeng_kernels.dir/src/stencil.cpp.o.d"
  "CMakeFiles/perfeng_kernels.dir/src/traces.cpp.o"
  "CMakeFiles/perfeng_kernels.dir/src/traces.cpp.o.d"
  "CMakeFiles/perfeng_kernels.dir/src/transpose.cpp.o"
  "CMakeFiles/perfeng_kernels.dir/src/transpose.cpp.o.d"
  "libperfeng_kernels.a"
  "libperfeng_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfeng_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
