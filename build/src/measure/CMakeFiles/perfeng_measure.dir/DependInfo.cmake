
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/measure/src/benchmark_runner.cpp" "src/measure/CMakeFiles/perfeng_measure.dir/src/benchmark_runner.cpp.o" "gcc" "src/measure/CMakeFiles/perfeng_measure.dir/src/benchmark_runner.cpp.o.d"
  "/root/repo/src/measure/src/experiment.cpp" "src/measure/CMakeFiles/perfeng_measure.dir/src/experiment.cpp.o" "gcc" "src/measure/CMakeFiles/perfeng_measure.dir/src/experiment.cpp.o.d"
  "/root/repo/src/measure/src/metrics.cpp" "src/measure/CMakeFiles/perfeng_measure.dir/src/metrics.cpp.o" "gcc" "src/measure/CMakeFiles/perfeng_measure.dir/src/metrics.cpp.o.d"
  "/root/repo/src/measure/src/statistics.cpp" "src/measure/CMakeFiles/perfeng_measure.dir/src/statistics.cpp.o" "gcc" "src/measure/CMakeFiles/perfeng_measure.dir/src/statistics.cpp.o.d"
  "/root/repo/src/measure/src/suite.cpp" "src/measure/CMakeFiles/perfeng_measure.dir/src/suite.cpp.o" "gcc" "src/measure/CMakeFiles/perfeng_measure.dir/src/suite.cpp.o.d"
  "/root/repo/src/measure/src/timer.cpp" "src/measure/CMakeFiles/perfeng_measure.dir/src/timer.cpp.o" "gcc" "src/measure/CMakeFiles/perfeng_measure.dir/src/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/perfeng_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
