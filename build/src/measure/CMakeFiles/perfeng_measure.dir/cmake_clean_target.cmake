file(REMOVE_RECURSE
  "libperfeng_measure.a"
)
