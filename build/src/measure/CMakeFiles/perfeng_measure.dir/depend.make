# Empty dependencies file for perfeng_measure.
# This may be replaced when dependencies are built.
