file(REMOVE_RECURSE
  "CMakeFiles/perfeng_measure.dir/src/benchmark_runner.cpp.o"
  "CMakeFiles/perfeng_measure.dir/src/benchmark_runner.cpp.o.d"
  "CMakeFiles/perfeng_measure.dir/src/experiment.cpp.o"
  "CMakeFiles/perfeng_measure.dir/src/experiment.cpp.o.d"
  "CMakeFiles/perfeng_measure.dir/src/metrics.cpp.o"
  "CMakeFiles/perfeng_measure.dir/src/metrics.cpp.o.d"
  "CMakeFiles/perfeng_measure.dir/src/statistics.cpp.o"
  "CMakeFiles/perfeng_measure.dir/src/statistics.cpp.o.d"
  "CMakeFiles/perfeng_measure.dir/src/suite.cpp.o"
  "CMakeFiles/perfeng_measure.dir/src/suite.cpp.o.d"
  "CMakeFiles/perfeng_measure.dir/src/timer.cpp.o"
  "CMakeFiles/perfeng_measure.dir/src/timer.cpp.o.d"
  "libperfeng_measure.a"
  "libperfeng_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfeng_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
