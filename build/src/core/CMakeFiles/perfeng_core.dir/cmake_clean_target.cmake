file(REMOVE_RECURSE
  "libperfeng_core.a"
)
