file(REMOVE_RECURSE
  "CMakeFiles/perfeng_core.dir/src/pipeline.cpp.o"
  "CMakeFiles/perfeng_core.dir/src/pipeline.cpp.o.d"
  "libperfeng_core.a"
  "libperfeng_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfeng_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
