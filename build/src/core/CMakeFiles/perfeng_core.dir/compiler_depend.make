# Empty compiler generated dependencies file for perfeng_core.
# This may be replaced when dependencies are built.
