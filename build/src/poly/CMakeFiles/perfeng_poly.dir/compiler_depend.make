# Empty compiler generated dependencies file for perfeng_poly.
# This may be replaced when dependencies are built.
