file(REMOVE_RECURSE
  "libperfeng_poly.a"
)
