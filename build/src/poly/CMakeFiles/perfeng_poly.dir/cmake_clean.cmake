file(REMOVE_RECURSE
  "CMakeFiles/perfeng_poly.dir/src/dependence.cpp.o"
  "CMakeFiles/perfeng_poly.dir/src/dependence.cpp.o.d"
  "libperfeng_poly.a"
  "libperfeng_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfeng_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
