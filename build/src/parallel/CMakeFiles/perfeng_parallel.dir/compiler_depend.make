# Empty compiler generated dependencies file for perfeng_parallel.
# This may be replaced when dependencies are built.
