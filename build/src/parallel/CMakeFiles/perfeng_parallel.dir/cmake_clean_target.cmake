file(REMOVE_RECURSE
  "libperfeng_parallel.a"
)
