file(REMOVE_RECURSE
  "CMakeFiles/perfeng_parallel.dir/src/thread_pool.cpp.o"
  "CMakeFiles/perfeng_parallel.dir/src/thread_pool.cpp.o.d"
  "libperfeng_parallel.a"
  "libperfeng_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfeng_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
