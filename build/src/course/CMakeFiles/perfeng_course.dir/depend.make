# Empty dependencies file for perfeng_course.
# This may be replaced when dependencies are built.
