file(REMOVE_RECURSE
  "CMakeFiles/perfeng_course.dir/src/data.cpp.o"
  "CMakeFiles/perfeng_course.dir/src/data.cpp.o.d"
  "CMakeFiles/perfeng_course.dir/src/grading.cpp.o"
  "CMakeFiles/perfeng_course.dir/src/grading.cpp.o.d"
  "CMakeFiles/perfeng_course.dir/src/tables.cpp.o"
  "CMakeFiles/perfeng_course.dir/src/tables.cpp.o.d"
  "libperfeng_course.a"
  "libperfeng_course.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfeng_course.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
