file(REMOVE_RECURSE
  "libperfeng_course.a"
)
