file(REMOVE_RECURSE
  "CMakeFiles/perfeng_sim.dir/src/branch_predictor.cpp.o"
  "CMakeFiles/perfeng_sim.dir/src/branch_predictor.cpp.o.d"
  "CMakeFiles/perfeng_sim.dir/src/cache.cpp.o"
  "CMakeFiles/perfeng_sim.dir/src/cache.cpp.o.d"
  "CMakeFiles/perfeng_sim.dir/src/cache_hierarchy.cpp.o"
  "CMakeFiles/perfeng_sim.dir/src/cache_hierarchy.cpp.o.d"
  "CMakeFiles/perfeng_sim.dir/src/comm_trace.cpp.o"
  "CMakeFiles/perfeng_sim.dir/src/comm_trace.cpp.o.d"
  "CMakeFiles/perfeng_sim.dir/src/des.cpp.o"
  "CMakeFiles/perfeng_sim.dir/src/des.cpp.o.d"
  "CMakeFiles/perfeng_sim.dir/src/netsim.cpp.o"
  "CMakeFiles/perfeng_sim.dir/src/netsim.cpp.o.d"
  "CMakeFiles/perfeng_sim.dir/src/pipeline_sim.cpp.o"
  "CMakeFiles/perfeng_sim.dir/src/pipeline_sim.cpp.o.d"
  "CMakeFiles/perfeng_sim.dir/src/queue_sim.cpp.o"
  "CMakeFiles/perfeng_sim.dir/src/queue_sim.cpp.o.d"
  "libperfeng_sim.a"
  "libperfeng_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfeng_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
