
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/src/branch_predictor.cpp" "src/sim/CMakeFiles/perfeng_sim.dir/src/branch_predictor.cpp.o" "gcc" "src/sim/CMakeFiles/perfeng_sim.dir/src/branch_predictor.cpp.o.d"
  "/root/repo/src/sim/src/cache.cpp" "src/sim/CMakeFiles/perfeng_sim.dir/src/cache.cpp.o" "gcc" "src/sim/CMakeFiles/perfeng_sim.dir/src/cache.cpp.o.d"
  "/root/repo/src/sim/src/cache_hierarchy.cpp" "src/sim/CMakeFiles/perfeng_sim.dir/src/cache_hierarchy.cpp.o" "gcc" "src/sim/CMakeFiles/perfeng_sim.dir/src/cache_hierarchy.cpp.o.d"
  "/root/repo/src/sim/src/comm_trace.cpp" "src/sim/CMakeFiles/perfeng_sim.dir/src/comm_trace.cpp.o" "gcc" "src/sim/CMakeFiles/perfeng_sim.dir/src/comm_trace.cpp.o.d"
  "/root/repo/src/sim/src/des.cpp" "src/sim/CMakeFiles/perfeng_sim.dir/src/des.cpp.o" "gcc" "src/sim/CMakeFiles/perfeng_sim.dir/src/des.cpp.o.d"
  "/root/repo/src/sim/src/netsim.cpp" "src/sim/CMakeFiles/perfeng_sim.dir/src/netsim.cpp.o" "gcc" "src/sim/CMakeFiles/perfeng_sim.dir/src/netsim.cpp.o.d"
  "/root/repo/src/sim/src/pipeline_sim.cpp" "src/sim/CMakeFiles/perfeng_sim.dir/src/pipeline_sim.cpp.o" "gcc" "src/sim/CMakeFiles/perfeng_sim.dir/src/pipeline_sim.cpp.o.d"
  "/root/repo/src/sim/src/queue_sim.cpp" "src/sim/CMakeFiles/perfeng_sim.dir/src/queue_sim.cpp.o" "gcc" "src/sim/CMakeFiles/perfeng_sim.dir/src/queue_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/perfeng_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
