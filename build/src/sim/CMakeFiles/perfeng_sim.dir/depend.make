# Empty dependencies file for perfeng_sim.
# This may be replaced when dependencies are built.
