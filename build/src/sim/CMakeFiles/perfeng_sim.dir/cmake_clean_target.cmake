file(REMOVE_RECURSE
  "libperfeng_sim.a"
)
