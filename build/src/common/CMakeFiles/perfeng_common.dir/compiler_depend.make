# Empty compiler generated dependencies file for perfeng_common.
# This may be replaced when dependencies are built.
