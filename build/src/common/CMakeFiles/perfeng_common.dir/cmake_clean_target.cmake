file(REMOVE_RECURSE
  "libperfeng_common.a"
)
