file(REMOVE_RECURSE
  "CMakeFiles/perfeng_common.dir/src/csv.cpp.o"
  "CMakeFiles/perfeng_common.dir/src/csv.cpp.o.d"
  "CMakeFiles/perfeng_common.dir/src/rng.cpp.o"
  "CMakeFiles/perfeng_common.dir/src/rng.cpp.o.d"
  "CMakeFiles/perfeng_common.dir/src/table.cpp.o"
  "CMakeFiles/perfeng_common.dir/src/table.cpp.o.d"
  "CMakeFiles/perfeng_common.dir/src/units.cpp.o"
  "CMakeFiles/perfeng_common.dir/src/units.cpp.o.d"
  "libperfeng_common.a"
  "libperfeng_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfeng_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
