
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/src/analytical.cpp" "src/models/CMakeFiles/perfeng_models.dir/src/analytical.cpp.o" "gcc" "src/models/CMakeFiles/perfeng_models.dir/src/analytical.cpp.o.d"
  "/root/repo/src/models/src/ecm.cpp" "src/models/CMakeFiles/perfeng_models.dir/src/ecm.cpp.o" "gcc" "src/models/CMakeFiles/perfeng_models.dir/src/ecm.cpp.o.d"
  "/root/repo/src/models/src/energy.cpp" "src/models/CMakeFiles/perfeng_models.dir/src/energy.cpp.o" "gcc" "src/models/CMakeFiles/perfeng_models.dir/src/energy.cpp.o.d"
  "/root/repo/src/models/src/gpu.cpp" "src/models/CMakeFiles/perfeng_models.dir/src/gpu.cpp.o" "gcc" "src/models/CMakeFiles/perfeng_models.dir/src/gpu.cpp.o.d"
  "/root/repo/src/models/src/interference.cpp" "src/models/CMakeFiles/perfeng_models.dir/src/interference.cpp.o" "gcc" "src/models/CMakeFiles/perfeng_models.dir/src/interference.cpp.o.d"
  "/root/repo/src/models/src/network.cpp" "src/models/CMakeFiles/perfeng_models.dir/src/network.cpp.o" "gcc" "src/models/CMakeFiles/perfeng_models.dir/src/network.cpp.o.d"
  "/root/repo/src/models/src/offload.cpp" "src/models/CMakeFiles/perfeng_models.dir/src/offload.cpp.o" "gcc" "src/models/CMakeFiles/perfeng_models.dir/src/offload.cpp.o.d"
  "/root/repo/src/models/src/queuing.cpp" "src/models/CMakeFiles/perfeng_models.dir/src/queuing.cpp.o" "gcc" "src/models/CMakeFiles/perfeng_models.dir/src/queuing.cpp.o.d"
  "/root/repo/src/models/src/roofline.cpp" "src/models/CMakeFiles/perfeng_models.dir/src/roofline.cpp.o" "gcc" "src/models/CMakeFiles/perfeng_models.dir/src/roofline.cpp.o.d"
  "/root/repo/src/models/src/scaling.cpp" "src/models/CMakeFiles/perfeng_models.dir/src/scaling.cpp.o" "gcc" "src/models/CMakeFiles/perfeng_models.dir/src/scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/perfeng_common.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/perfeng_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/microbench/CMakeFiles/perfeng_microbench.dir/DependInfo.cmake"
  "/root/repo/build/src/counters/CMakeFiles/perfeng_counters.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/perfeng_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/perfeng_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
