file(REMOVE_RECURSE
  "CMakeFiles/perfeng_models.dir/src/analytical.cpp.o"
  "CMakeFiles/perfeng_models.dir/src/analytical.cpp.o.d"
  "CMakeFiles/perfeng_models.dir/src/ecm.cpp.o"
  "CMakeFiles/perfeng_models.dir/src/ecm.cpp.o.d"
  "CMakeFiles/perfeng_models.dir/src/energy.cpp.o"
  "CMakeFiles/perfeng_models.dir/src/energy.cpp.o.d"
  "CMakeFiles/perfeng_models.dir/src/gpu.cpp.o"
  "CMakeFiles/perfeng_models.dir/src/gpu.cpp.o.d"
  "CMakeFiles/perfeng_models.dir/src/interference.cpp.o"
  "CMakeFiles/perfeng_models.dir/src/interference.cpp.o.d"
  "CMakeFiles/perfeng_models.dir/src/network.cpp.o"
  "CMakeFiles/perfeng_models.dir/src/network.cpp.o.d"
  "CMakeFiles/perfeng_models.dir/src/offload.cpp.o"
  "CMakeFiles/perfeng_models.dir/src/offload.cpp.o.d"
  "CMakeFiles/perfeng_models.dir/src/queuing.cpp.o"
  "CMakeFiles/perfeng_models.dir/src/queuing.cpp.o.d"
  "CMakeFiles/perfeng_models.dir/src/roofline.cpp.o"
  "CMakeFiles/perfeng_models.dir/src/roofline.cpp.o.d"
  "CMakeFiles/perfeng_models.dir/src/scaling.cpp.o"
  "CMakeFiles/perfeng_models.dir/src/scaling.cpp.o.d"
  "libperfeng_models.a"
  "libperfeng_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfeng_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
