# Empty compiler generated dependencies file for perfeng_models.
# This may be replaced when dependencies are built.
