file(REMOVE_RECURSE
  "libperfeng_models.a"
)
