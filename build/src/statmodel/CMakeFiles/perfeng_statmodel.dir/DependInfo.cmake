
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/statmodel/src/dataset.cpp" "src/statmodel/CMakeFiles/perfeng_statmodel.dir/src/dataset.cpp.o" "gcc" "src/statmodel/CMakeFiles/perfeng_statmodel.dir/src/dataset.cpp.o.d"
  "/root/repo/src/statmodel/src/importance.cpp" "src/statmodel/CMakeFiles/perfeng_statmodel.dir/src/importance.cpp.o" "gcc" "src/statmodel/CMakeFiles/perfeng_statmodel.dir/src/importance.cpp.o.d"
  "/root/repo/src/statmodel/src/knn.cpp" "src/statmodel/CMakeFiles/perfeng_statmodel.dir/src/knn.cpp.o" "gcc" "src/statmodel/CMakeFiles/perfeng_statmodel.dir/src/knn.cpp.o.d"
  "/root/repo/src/statmodel/src/linear.cpp" "src/statmodel/CMakeFiles/perfeng_statmodel.dir/src/linear.cpp.o" "gcc" "src/statmodel/CMakeFiles/perfeng_statmodel.dir/src/linear.cpp.o.d"
  "/root/repo/src/statmodel/src/tree.cpp" "src/statmodel/CMakeFiles/perfeng_statmodel.dir/src/tree.cpp.o" "gcc" "src/statmodel/CMakeFiles/perfeng_statmodel.dir/src/tree.cpp.o.d"
  "/root/repo/src/statmodel/src/validation.cpp" "src/statmodel/CMakeFiles/perfeng_statmodel.dir/src/validation.cpp.o" "gcc" "src/statmodel/CMakeFiles/perfeng_statmodel.dir/src/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/perfeng_common.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/perfeng_measure.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
