# Empty dependencies file for perfeng_statmodel.
# This may be replaced when dependencies are built.
