file(REMOVE_RECURSE
  "CMakeFiles/perfeng_statmodel.dir/src/dataset.cpp.o"
  "CMakeFiles/perfeng_statmodel.dir/src/dataset.cpp.o.d"
  "CMakeFiles/perfeng_statmodel.dir/src/importance.cpp.o"
  "CMakeFiles/perfeng_statmodel.dir/src/importance.cpp.o.d"
  "CMakeFiles/perfeng_statmodel.dir/src/knn.cpp.o"
  "CMakeFiles/perfeng_statmodel.dir/src/knn.cpp.o.d"
  "CMakeFiles/perfeng_statmodel.dir/src/linear.cpp.o"
  "CMakeFiles/perfeng_statmodel.dir/src/linear.cpp.o.d"
  "CMakeFiles/perfeng_statmodel.dir/src/tree.cpp.o"
  "CMakeFiles/perfeng_statmodel.dir/src/tree.cpp.o.d"
  "CMakeFiles/perfeng_statmodel.dir/src/validation.cpp.o"
  "CMakeFiles/perfeng_statmodel.dir/src/validation.cpp.o.d"
  "libperfeng_statmodel.a"
  "libperfeng_statmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfeng_statmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
