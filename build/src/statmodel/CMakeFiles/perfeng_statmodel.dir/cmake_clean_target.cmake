file(REMOVE_RECURSE
  "libperfeng_statmodel.a"
)
