
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/microbench/src/latency.cpp" "src/microbench/CMakeFiles/perfeng_microbench.dir/src/latency.cpp.o" "gcc" "src/microbench/CMakeFiles/perfeng_microbench.dir/src/latency.cpp.o.d"
  "/root/repo/src/microbench/src/machine_probe.cpp" "src/microbench/CMakeFiles/perfeng_microbench.dir/src/machine_probe.cpp.o" "gcc" "src/microbench/CMakeFiles/perfeng_microbench.dir/src/machine_probe.cpp.o.d"
  "/root/repo/src/microbench/src/op_costs.cpp" "src/microbench/CMakeFiles/perfeng_microbench.dir/src/op_costs.cpp.o" "gcc" "src/microbench/CMakeFiles/perfeng_microbench.dir/src/op_costs.cpp.o.d"
  "/root/repo/src/microbench/src/peak_flops.cpp" "src/microbench/CMakeFiles/perfeng_microbench.dir/src/peak_flops.cpp.o" "gcc" "src/microbench/CMakeFiles/perfeng_microbench.dir/src/peak_flops.cpp.o.d"
  "/root/repo/src/microbench/src/stream.cpp" "src/microbench/CMakeFiles/perfeng_microbench.dir/src/stream.cpp.o" "gcc" "src/microbench/CMakeFiles/perfeng_microbench.dir/src/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/perfeng_common.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/perfeng_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/perfeng_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
