# Empty dependencies file for perfeng_microbench.
# This may be replaced when dependencies are built.
