file(REMOVE_RECURSE
  "CMakeFiles/perfeng_microbench.dir/src/latency.cpp.o"
  "CMakeFiles/perfeng_microbench.dir/src/latency.cpp.o.d"
  "CMakeFiles/perfeng_microbench.dir/src/machine_probe.cpp.o"
  "CMakeFiles/perfeng_microbench.dir/src/machine_probe.cpp.o.d"
  "CMakeFiles/perfeng_microbench.dir/src/op_costs.cpp.o"
  "CMakeFiles/perfeng_microbench.dir/src/op_costs.cpp.o.d"
  "CMakeFiles/perfeng_microbench.dir/src/peak_flops.cpp.o"
  "CMakeFiles/perfeng_microbench.dir/src/peak_flops.cpp.o.d"
  "CMakeFiles/perfeng_microbench.dir/src/stream.cpp.o"
  "CMakeFiles/perfeng_microbench.dir/src/stream.cpp.o.d"
  "libperfeng_microbench.a"
  "libperfeng_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfeng_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
