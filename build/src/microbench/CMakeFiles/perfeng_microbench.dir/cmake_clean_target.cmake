file(REMOVE_RECURSE
  "libperfeng_microbench.a"
)
