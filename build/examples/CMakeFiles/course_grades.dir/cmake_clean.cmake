file(REMOVE_RECURSE
  "CMakeFiles/course_grades.dir/course_grades.cpp.o"
  "CMakeFiles/course_grades.dir/course_grades.cpp.o.d"
  "course_grades"
  "course_grades.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/course_grades.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
