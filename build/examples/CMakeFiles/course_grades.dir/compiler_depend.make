# Empty compiler generated dependencies file for course_grades.
# This may be replaced when dependencies are built.
