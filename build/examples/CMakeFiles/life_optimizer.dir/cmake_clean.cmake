file(REMOVE_RECURSE
  "CMakeFiles/life_optimizer.dir/life_optimizer.cpp.o"
  "CMakeFiles/life_optimizer.dir/life_optimizer.cpp.o.d"
  "life_optimizer"
  "life_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/life_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
