# Empty dependencies file for life_optimizer.
# This may be replaced when dependencies are built.
