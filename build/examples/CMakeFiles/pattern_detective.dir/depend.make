# Empty dependencies file for pattern_detective.
# This may be replaced when dependencies are built.
