file(REMOVE_RECURSE
  "CMakeFiles/pattern_detective.dir/pattern_detective.cpp.o"
  "CMakeFiles/pattern_detective.dir/pattern_detective.cpp.o.d"
  "pattern_detective"
  "pattern_detective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_detective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
