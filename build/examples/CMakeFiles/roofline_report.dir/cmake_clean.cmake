file(REMOVE_RECURSE
  "CMakeFiles/roofline_report.dir/roofline_report.cpp.o"
  "CMakeFiles/roofline_report.dir/roofline_report.cpp.o.d"
  "roofline_report"
  "roofline_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roofline_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
