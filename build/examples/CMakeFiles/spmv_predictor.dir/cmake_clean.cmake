file(REMOVE_RECURSE
  "CMakeFiles/spmv_predictor.dir/spmv_predictor.cpp.o"
  "CMakeFiles/spmv_predictor.dir/spmv_predictor.cpp.o.d"
  "spmv_predictor"
  "spmv_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
