# Empty compiler generated dependencies file for spmv_predictor.
# This may be replaced when dependencies are built.
