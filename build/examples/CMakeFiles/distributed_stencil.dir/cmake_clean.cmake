file(REMOVE_RECURSE
  "CMakeFiles/distributed_stencil.dir/distributed_stencil.cpp.o"
  "CMakeFiles/distributed_stencil.dir/distributed_stencil.cpp.o.d"
  "distributed_stencil"
  "distributed_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
