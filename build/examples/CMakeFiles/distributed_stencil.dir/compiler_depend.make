# Empty compiler generated dependencies file for distributed_stencil.
# This may be replaced when dependencies are built.
