# Empty compiler generated dependencies file for model_calibration.
# This may be replaced when dependencies are built.
