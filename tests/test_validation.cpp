// Tests for model validation helpers in perfeng/statmodel/validation.hpp.
#include "perfeng/statmodel/validation.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"
#include "perfeng/statmodel/knn.hpp"
#include "perfeng/statmodel/linear.hpp"

namespace {

using pe::statmodel::Dataset;
using pe::statmodel::KnnRegressor;
using pe::statmodel::LinearRegression;

Dataset linear_data(int n) {
  Dataset d({"x"});
  for (int i = 0; i < n; ++i) d.add_row({double(i)}, 3.0 * i + 1.0);
  return d;
}

TEST(Evaluate, PerfectModelScoresPerfectly) {
  const auto split = linear_data(40).train_test_split(0.25);
  LinearRegression model;
  const auto r = pe::statmodel::evaluate(model, split.train, split.test);
  EXPECT_NEAR(r.mape, 0.0, 1e-9);
  EXPECT_NEAR(r.rmse, 0.0, 1e-6);
  EXPECT_NEAR(r.r2, 1.0, 1e-9);
  EXPECT_EQ(r.test_rows, 10u);
}

TEST(Evaluate, ImperfectModelHasPositiveError) {
  Dataset train({"x"}), test({"x"});
  for (int i = 0; i < 20; ++i)
    train.add_row({double(i)}, double(i % 3));  // non-linear target
  for (int i = 0; i < 5; ++i) test.add_row({double(i)}, double(i % 3));
  LinearRegression model;
  const auto r = pe::statmodel::evaluate(model, train, test);
  EXPECT_GT(r.rmse, 0.0);
}

TEST(Evaluate, MapeSkippedWhenTargetsContainZero) {
  Dataset train = linear_data(20);
  Dataset test({"x"});
  test.add_row({0.0}, 0.0);
  test.add_row({1.0}, 4.0);
  LinearRegression model;
  const auto r = pe::statmodel::evaluate(model, train, test);
  EXPECT_EQ(r.mape, 0.0);  // skipped, not NaN/inf
}

TEST(CrossValidate, AveragesAcrossFolds) {
  const auto data = linear_data(30);
  const auto r = pe::statmodel::cross_validate(
      [] { return std::make_unique<LinearRegression>(); }, data, 5);
  EXPECT_NEAR(r.r2, 1.0, 1e-9);
  EXPECT_NEAR(r.rmse, 0.0, 1e-6);
  EXPECT_EQ(r.test_rows, 30u);  // every row tested exactly once
}

TEST(CrossValidate, DistinguishesModelQuality) {
  // A noisy nonlinear target: kNN (local) beats a straight line.
  Dataset d({"x"});
  for (int i = 0; i < 60; ++i) {
    const double x = i * 0.2;
    d.add_row({x}, x * x);
  }
  const auto line = pe::statmodel::cross_validate(
      [] { return std::make_unique<LinearRegression>(); }, d, 5);
  const auto knn = pe::statmodel::cross_validate(
      [] { return std::make_unique<KnnRegressor>(2); }, d, 5);
  EXPECT_LT(knn.rmse, line.rmse);
}

TEST(CrossValidate, Validation) {
  const auto data = linear_data(10);
  EXPECT_THROW((void)pe::statmodel::cross_validate(
                   [] { return std::make_unique<LinearRegression>(); },
                   data, 1),
               pe::Error);
  EXPECT_THROW((void)pe::statmodel::cross_validate(
                   [] { return std::make_unique<LinearRegression>(); },
                   data, 11),
               pe::Error);
  EXPECT_THROW((void)pe::statmodel::cross_validate(nullptr, data, 2),
               pe::Error);
}

TEST(Evaluate, EmptyTestSetRejected) {
  Dataset train = linear_data(10);
  Dataset test({"x"});
  LinearRegression model;
  EXPECT_THROW((void)pe::statmodel::evaluate(model, train, test),
               pe::Error);
}

}  // namespace
