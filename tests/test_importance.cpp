// Tests for permutation feature importance in perfeng/statmodel.
#include "perfeng/statmodel/importance.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"
#include "perfeng/statmodel/linear.hpp"
#include "perfeng/statmodel/tree.hpp"

namespace {

using namespace pe::statmodel;

// Target depends only on "signal"; "noise" is irrelevant.
Dataset signal_and_noise(std::uint64_t seed, std::size_t rows) {
  Dataset d({"signal", "noise"});
  pe::Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    const double s = rng.next_range_double(0, 10);
    const double n = rng.next_range_double(0, 10);
    d.add_row({s, n}, 5.0 * s + 1.0);
  }
  return d;
}

TEST(Importance, SignalFeatureDominatesNoise) {
  const Dataset train = signal_and_noise(1, 200);
  const Dataset eval = signal_and_noise(2, 100);
  LinearRegression model;
  model.fit(train);
  pe::Rng rng(3);
  const auto importances = permutation_importance(model, eval, rng);
  ASSERT_EQ(importances.size(), 2u);
  EXPECT_EQ(importances[0].feature, "signal");
  EXPECT_GT(importances[0].increase(), 1.0);
  EXPECT_NEAR(importances[1].increase(), 0.0, 0.2);
}

TEST(Importance, BaselineMatchesUnpermutedError) {
  const Dataset train = signal_and_noise(4, 100);
  LinearRegression model;
  model.fit(train);
  pe::Rng rng(5);
  const auto importances = permutation_importance(model, train, rng, 2);
  // A perfect linear fit on its own training data: baseline ~ 0.
  EXPECT_NEAR(importances[0].baseline_rmse, 0.0, 1e-9);
}

TEST(Importance, WorksWithForests) {
  const Dataset train = signal_and_noise(6, 300);
  const Dataset eval = signal_and_noise(7, 100);
  RandomForestRegressor forest(24);
  forest.fit(train);
  pe::Rng rng(8);
  const auto importances = permutation_importance(forest, eval, rng, 3);
  EXPECT_GT(importances[0].increase(), importances[1].increase() * 3.0);
}

TEST(Importance, Validation) {
  Dataset tiny({"x"});
  tiny.add_row({1.0}, 1.0);
  LinearRegression model;
  pe::Rng rng(9);
  EXPECT_THROW((void)permutation_importance(model, tiny, rng), pe::Error);

  Dataset two({"x"});
  two.add_row({1.0}, 1.0);
  two.add_row({2.0}, 2.0);
  EXPECT_THROW((void)permutation_importance(model, two, rng, 0), pe::Error);
}

}  // namespace
