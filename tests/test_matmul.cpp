// Tests for the matmul kernels in perfeng/kernels/matmul.hpp.
#include "perfeng/kernels/matmul.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>

#include "perfeng/common/error.hpp"
#include "perfeng/machine/registry.hpp"

namespace {

using pe::kernels::Matrix;

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 7.0);
}

TEST(Matrix, RandomizeIsDeterministic) {
  pe::Rng a(3), b(3);
  Matrix ma(4, 4), mb(4, 4);
  ma.randomize(a);
  mb.randomize(b);
  EXPECT_EQ(ma, mb);
  EXPECT_DOUBLE_EQ(ma.max_abs_diff(mb), 0.0);
}

TEST(Matrix, EmptyRejected) { EXPECT_THROW(Matrix(0, 3), pe::Error); }

TEST(Matmul, KnownSmallProduct) {
  Matrix a(2, 2), b(2, 2), c(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  pe::kernels::matmul_naive(a, b, c);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matmul, IdentityIsNeutral) {
  const std::size_t n = 16;
  Matrix a(n, n), eye(n, n), c(n, n);
  pe::Rng rng(5);
  a.randomize(rng);
  for (std::size_t i = 0; i < n; ++i) eye(i, i) = 1.0;
  pe::kernels::matmul_naive(a, eye, c);
  EXPECT_LT(c.max_abs_diff(a), 1e-12);
}

class MatmulVariants : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MatmulVariants, AllVariantsAgreeWithNaive) {
  const std::size_t n = GetParam();
  Matrix a(n, n), b(n, n);
  pe::Rng rng(n);
  a.randomize(rng);
  b.randomize(rng);

  Matrix reference(n, n), out(n, n);
  pe::kernels::matmul_naive(a, b, reference);

  pe::kernels::matmul_interchanged(a, b, out);
  EXPECT_LT(out.max_abs_diff(reference), 1e-10) << "interchanged";

  pe::kernels::matmul_tiled(a, b, out, 8);
  EXPECT_LT(out.max_abs_diff(reference), 1e-10) << "tiled(8)";

  pe::kernels::matmul_tiled(a, b, out, 7);  // non-dividing tile
  EXPECT_LT(out.max_abs_diff(reference), 1e-10) << "tiled(7)";

  pe::ThreadPool pool(3);
  pe::kernels::matmul_parallel(a, b, out, pool, 8);
  EXPECT_LT(out.max_abs_diff(reference), 1e-10) << "parallel";

  pe::kernels::matmul_parallel_packed(a, b, out, pool);
  EXPECT_LT(out.max_abs_diff(reference), 1e-10) << "packed(default)";

  // Tiny panels force every edge path: partial register tiles in both
  // dimensions and multiple jc/pc/ic panel iterations.
  const pe::kernels::MatmulBlocking tiny{.mc = 8, .kc = 8, .nc = 16};
  pe::kernels::matmul_parallel_packed(a, b, out, pool, tiny);
  EXPECT_LT(out.max_abs_diff(reference), 1e-10) << "packed(tiny)";
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatmulVariants,
                         ::testing::Values(1, 2, 5, 16, 33, 64));

TEST(MatmulPacked, RectangularAndRemainderShapes) {
  pe::ThreadPool pool(2);
  const pe::kernels::MatmulBlocking tiny{.mc = 8, .kc = 8, .nc = 16};
  const std::size_t shapes[][3] = {{1, 1, 1},   {3, 5, 2},  {7, 13, 9},
                                   {33, 17, 5}, {4, 64, 8}, {65, 3, 31}};
  for (const auto& s : shapes) {
    Matrix a(s[0], s[1]), b(s[1], s[2]);
    pe::Rng rng(s[0] * 100 + s[2]);
    a.randomize(rng);
    b.randomize(rng);
    Matrix reference(s[0], s[2]), out(s[0], s[2]);
    pe::kernels::matmul_naive(a, b, reference);
    pe::kernels::matmul_parallel_packed(a, b, out, pool, tiny);
    EXPECT_LT(out.max_abs_diff(reference), 1e-10)
        << s[0] << "x" << s[1] << "x" << s[2];
  }
}

TEST(MatmulPacked, DivergenceFromNaiveStaysInTheDocumentedUlpEnvelope) {
  // The SIMD microkernel reassociates each dot product into 8 partial
  // sums and (on an FMA backend) fuses multiply-adds, so it is *not*
  // bit-equal to naive — the documented envelope (docs/simd.md) is a few
  // n*eps. With inputs in [-1, 1] every partial sum is bounded by n, so
  // 4*n*eps is generous for the reassociation while still ~100x tighter
  // than the 1e-10 the agreement tests use, and it scales with n instead
  // of being a lucky constant.
  pe::ThreadPool pool(2);
  for (const std::size_t n : {std::size_t{96}, std::size_t{131}}) {
    Matrix a(n, n), b(n, n), reference(n, n), out(n, n);
    pe::Rng rng(n * 7);
    a.randomize(rng);
    b.randomize(rng);
    pe::kernels::matmul_naive(a, b, reference);
    pe::kernels::matmul_parallel_packed(a, b, out, pool);
    const double eps = std::numeric_limits<double>::epsilon();
    EXPECT_LE(out.max_abs_diff(reference), 4.0 * double(n) * eps) << n;
  }
}

TEST(MatmulPacked, BlockingFromMachineIsUsable) {
  const pe::machine::Machine m = pe::machine::resolve_or_preset("laptop-x86");
  const auto blocking = pe::kernels::MatmulBlocking::from_machine(m);
  EXPECT_GE(blocking.mc, 4u);
  EXPECT_GE(blocking.kc, 64u);
  EXPECT_GE(blocking.nc, 8u);
  EXPECT_EQ(blocking.mc % 4, 0u);
  EXPECT_EQ(blocking.nc % 8, 0u);

  Matrix a(48, 32), b(32, 40);
  pe::Rng rng(11);
  a.randomize(rng);
  b.randomize(rng);
  Matrix reference(48, 40), out(48, 40);
  pe::kernels::matmul_naive(a, b, reference);
  pe::ThreadPool pool(2);
  pe::kernels::matmul_parallel_packed(a, b, out, pool, blocking);
  EXPECT_LT(out.max_abs_diff(reference), 1e-10);
}

TEST(Matmul, RectangularShapes) {
  Matrix a(3, 5), b(5, 2), c(3, 2), reference(3, 2);
  pe::Rng rng(9);
  a.randomize(rng);
  b.randomize(rng);
  pe::kernels::matmul_naive(a, b, reference);
  pe::kernels::matmul_interchanged(a, b, c);
  EXPECT_LT(c.max_abs_diff(reference), 1e-12);
  pe::kernels::matmul_tiled(a, b, c, 2);
  EXPECT_LT(c.max_abs_diff(reference), 1e-12);
}

TEST(Matmul, ShapeMismatchRejected) {
  Matrix a(2, 3), b(2, 2), c(2, 2);
  EXPECT_THROW(pe::kernels::matmul_naive(a, b, c), pe::Error);
  Matrix b2(3, 2), c_bad(3, 3);
  EXPECT_THROW(pe::kernels::matmul_naive(a, b2, c_bad), pe::Error);
}

TEST(Matmul, FlopAccounting) {
  EXPECT_DOUBLE_EQ(pe::kernels::matmul_flops(2, 3, 4), 48.0);
  EXPECT_DOUBLE_EQ(pe::kernels::matmul_flops(100, 100, 100), 2e6);
}

TEST(Matmul, MinTrafficAccounting) {
  // 2x2: A 4 + B 4 + C 2*4 doubles = 16 doubles = 128 bytes.
  EXPECT_DOUBLE_EQ(pe::kernels::matmul_min_bytes(2, 2, 2), 128.0);
}

}  // namespace
