// Tests for the Roofline model in perfeng/models/roofline.hpp.
#include "perfeng/models/roofline.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

using pe::models::Bound;
using pe::models::KernelCharacterization;
using pe::models::RooflineModel;

// A tidy machine: 100 GFLOP/s peak, 10 GB/s DRAM -> ridge at 10 FLOP/B.
RooflineModel machine() { return RooflineModel(1e11, 1e10); }

TEST(Roofline, RidgePoint) {
  EXPECT_DOUBLE_EQ(machine().ridge_intensity(), 10.0);
}

TEST(Roofline, AttainableBelowRidgeIsBandwidthLimited) {
  const auto m = machine();
  EXPECT_DOUBLE_EQ(m.attainable(1.0), 1e10);
  EXPECT_DOUBLE_EQ(m.attainable(5.0), 5e10);
  EXPECT_EQ(m.bound_at(1.0), Bound::kMemory);
}

TEST(Roofline, AttainableAboveRidgeIsComputeLimited) {
  const auto m = machine();
  EXPECT_DOUBLE_EQ(m.attainable(100.0), 1e11);
  EXPECT_DOUBLE_EQ(m.attainable(10.0), 1e11);  // exactly at the ridge
  EXPECT_EQ(m.bound_at(100.0), Bound::kCompute);
}

TEST(Roofline, EfficiencyIsMeasuredOverAttainable) {
  const auto m = machine();
  EXPECT_DOUBLE_EQ(m.efficiency(1.0, 5e9), 0.5);
  EXPECT_DOUBLE_EQ(m.efficiency(100.0, 1e11), 1.0);
}

TEST(Roofline, ExtraBandwidthCeilings) {
  auto m = machine();
  m.add_bandwidth_ceiling("L1", 1e11);
  EXPECT_DOUBLE_EQ(m.attainable_at_level(0.5, "L1"), 5e10);
  EXPECT_DOUBLE_EQ(m.attainable_at_level(0.5, "DRAM"), 5e9);
  EXPECT_THROW((void)m.attainable_at_level(0.5, "L7"), pe::Error);
  EXPECT_THROW(m.add_bandwidth_ceiling("L1", 2e11), pe::Error);  // duplicate
}

TEST(Roofline, ComputeCeilingMustStayUnderPeak) {
  auto m = machine();
  m.add_compute_ceiling("scalar", 2.5e10);
  EXPECT_THROW(m.add_compute_ceiling("too high", 2e11), pe::Error);
  EXPECT_THROW((void)m.attainable_at_level(1.0, "scalar"), pe::Error);
}

TEST(Roofline, CurveIsMonotoneNonDecreasing) {
  const auto curve = machine().curve(0.01, 1000.0, 64);
  ASSERT_EQ(curve.size(), 64u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].attainable_flops, curve[i - 1].attainable_flops);
    EXPECT_GT(curve[i].intensity, curve[i - 1].intensity);
  }
  EXPECT_DOUBLE_EQ(curve.back().attainable_flops, 1e11);
}

TEST(Roofline, CurveRangeValidated) {
  EXPECT_THROW((void)machine().curve(1.0, 0.5), pe::Error);
  EXPECT_THROW((void)machine().curve(0.0, 1.0), pe::Error);
  EXPECT_THROW((void)machine().curve(1.0, 2.0, 1), pe::Error);
}

TEST(Roofline, KernelCharacterizationIntensity) {
  const KernelCharacterization kc{"triad", 2.0, 24.0};
  EXPECT_NEAR(kc.intensity(), 1.0 / 12.0, 1e-15);
}

TEST(Roofline, PlacementClassifiesMemoryBoundKernel) {
  // STREAM-like kernel: intensity 1/12 << ridge 10.
  const KernelCharacterization kc{"triad", 2e8, 2.4e9};
  // Measured: 0.5 s -> 4e8 FLOP/s; attainable = (1/12)*1e10 = 8.33e8.
  const auto p = pe::models::place_kernel(machine(), kc, 0.5);
  EXPECT_EQ(p.bound, Bound::kMemory);
  EXPECT_NEAR(p.measured_flops, 4e8, 1.0);
  EXPECT_NEAR(p.efficiency, 4e8 / (1e10 / 12.0), 1e-6);
}

TEST(Roofline, PlacementClassifiesComputeBoundKernel) {
  // Matmul-like: high intensity.
  const KernelCharacterization kc{"matmul", 2e12, 2.4e9};
  const auto p = pe::models::place_kernel(machine(), kc, 40.0);
  EXPECT_EQ(p.bound, Bound::kCompute);
  EXPECT_NEAR(p.attainable_flops, 1e11, 1.0);
  EXPECT_NEAR(p.efficiency, 0.5, 1e-9);
}

TEST(Roofline, PlacementValidatesInputs) {
  const KernelCharacterization kc{"x", 1.0, 1.0};
  EXPECT_THROW((void)pe::models::place_kernel(machine(), kc, 0.0),
               pe::Error);
  const KernelCharacterization no_flops{"x", 0.0, 1.0};
  EXPECT_THROW((void)pe::models::place_kernel(machine(), no_flops, 1.0),
               pe::Error);
}

TEST(Roofline, ConstructorValidation) {
  EXPECT_THROW(RooflineModel(0.0, 1.0), pe::Error);
  EXPECT_THROW(RooflineModel(1.0, -1.0), pe::Error);
}

TEST(Roofline, OptimizationStoryAcrossVersions) {
  // The Assignment 1 storyline: an optimization that raises intensity
  // (tiling) must raise attainable performance in the memory-bound regime.
  const auto m = machine();
  const double naive = m.attainable(0.25);
  const double tiled = m.attainable(2.0);
  EXPECT_GT(tiled, naive);
  EXPECT_DOUBLE_EQ(tiled / naive, 8.0);
}

}  // namespace
