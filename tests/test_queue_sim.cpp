// Tests validating the DES queue simulator against queuing-theory closed
// forms — the course's "trust but verify your models" exercise.
#include "perfeng/sim/queue_sim.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"
#include "perfeng/models/queuing.hpp"

namespace {

using pe::sim::QueueSimConfig;
using pe::sim::simulate_mgc;
using pe::sim::simulate_mmc;

QueueSimConfig base_config() {
  QueueSimConfig cfg;
  cfg.arrival_rate = 0.7;
  cfg.service_rate = 1.0;
  cfg.servers = 1;
  cfg.jobs = 60000;
  cfg.warmup_jobs = 2000;
  cfg.seed = 17;
  return cfg;
}

TEST(QueueSim, CompletesAllJobs) {
  const auto r = simulate_mmc(base_config());
  EXPECT_EQ(r.arrivals, 60000u);
  EXPECT_EQ(r.completions, 60000u);
  EXPECT_GT(r.sim_time, 0.0);
}

TEST(QueueSim, Mm1MatchesClosedForm) {
  const auto cfg = base_config();
  const auto sim = simulate_mmc(cfg);
  const auto model = pe::models::mm1(cfg.arrival_rate, cfg.service_rate);
  EXPECT_NEAR(sim.mean_wait, model.mean_wait, model.mean_wait * 0.10);
  EXPECT_NEAR(sim.mean_response, model.mean_response,
              model.mean_response * 0.10);
  EXPECT_NEAR(sim.utilization, model.utilization, 0.03);
}

TEST(QueueSim, Mm2MatchesErlangC) {
  QueueSimConfig cfg = base_config();
  cfg.servers = 2;
  cfg.arrival_rate = 1.5;  // rho = 0.75
  const auto sim = simulate_mmc(cfg);
  const auto model =
      pe::models::mmc(cfg.arrival_rate, cfg.service_rate, cfg.servers);
  EXPECT_NEAR(sim.mean_wait, model.mean_wait, model.mean_wait * 0.15);
  EXPECT_NEAR(sim.utilization, model.utilization, 0.03);
}

TEST(QueueSim, LittlesLawHoldsInSimulation) {
  const auto sim = simulate_mmc(base_config());
  // L = lambda * W with lambda estimated from the simulation itself.
  const double lambda = 0.7;
  EXPECT_NEAR(sim.mean_in_system, lambda * sim.mean_response,
              sim.mean_in_system * 0.10);
  EXPECT_NEAR(sim.mean_queue_length, lambda * sim.mean_wait,
              std::max(0.05, sim.mean_queue_length * 0.10));
}

TEST(QueueSim, HigherLoadMeansLongerWaits) {
  QueueSimConfig low = base_config();
  low.arrival_rate = 0.3;
  QueueSimConfig high = base_config();
  high.arrival_rate = 0.9;
  EXPECT_LT(simulate_mmc(low).mean_wait, simulate_mmc(high).mean_wait);
}

TEST(QueueSim, DeterministicServiceHalvesWaiting) {
  // M/D/1 waits are half of M/M/1 (Pollaczek-Khinchine with scv = 0).
  const auto cfg = base_config();
  const auto mm1_sim = simulate_mmc(cfg);
  const auto md1_sim = simulate_mgc(
      cfg, [&](pe::Rng&) { return 1.0 / cfg.service_rate; });
  EXPECT_NEAR(md1_sim.mean_wait / mm1_sim.mean_wait, 0.5, 0.10);
}

TEST(QueueSim, SeedsChangeOnlyNoise) {
  QueueSimConfig a = base_config();
  QueueSimConfig b = base_config();
  b.seed = 99;
  const auto ra = simulate_mmc(a);
  const auto rb = simulate_mmc(b);
  EXPECT_NE(ra.mean_wait, rb.mean_wait);
  EXPECT_NEAR(ra.mean_wait, rb.mean_wait, ra.mean_wait * 0.15);
}

TEST(QueueSim, SameSeedIsDeterministic) {
  const auto a = simulate_mmc(base_config());
  const auto b = simulate_mmc(base_config());
  EXPECT_DOUBLE_EQ(a.mean_wait, b.mean_wait);
  EXPECT_DOUBLE_EQ(a.sim_time, b.sim_time);
}

TEST(QueueSim, ConfigValidation) {
  QueueSimConfig bad = base_config();
  bad.jobs = bad.warmup_jobs;
  EXPECT_THROW((void)simulate_mmc(bad), pe::Error);
  bad = base_config();
  bad.servers = 0;
  EXPECT_THROW((void)simulate_mmc(bad), pe::Error);
  bad = base_config();
  bad.service_rate = 0.0;
  EXPECT_THROW((void)simulate_mmc(bad), pe::Error);
  EXPECT_THROW((void)simulate_mgc(base_config(), nullptr), pe::Error);
}

}  // namespace
