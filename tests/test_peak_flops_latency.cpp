// Tests for peak-FLOPS and latency microbenchmarks in perfeng/microbench.
#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"
#include "perfeng/microbench/latency.hpp"
#include "perfeng/microbench/peak_flops.hpp"

namespace {

pe::BenchmarkRunner fast_runner() {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 3;
  cfg.min_batch_seconds = 1e-4;
  return pe::BenchmarkRunner(cfg);
}

TEST(PeakFlops, MeasuresPositiveRate) {
  const auto runner = fast_runner();
  const auto r = pe::microbench::run_peak_flops(4, runner);
  EXPECT_GT(r.flops, 1e6);
  EXPECT_EQ(r.accumulators, 4u);
}

TEST(PeakFlops, MoreAccumulatorsNeverMuchSlower) {
  // Independent chains should beat (or at worst match) a single dependent
  // chain; allow generous noise.
  const auto runner = fast_runner();
  const double one = pe::microbench::run_peak_flops(1, runner).flops;
  const double eight = pe::microbench::run_peak_flops(8, runner).flops;
  EXPECT_GT(eight, one * 0.8);
}

TEST(PeakFlops, AccumulatorBoundsChecked) {
  const auto runner = fast_runner();
  EXPECT_THROW((void)pe::microbench::run_peak_flops(0, runner), pe::Error);
  EXPECT_THROW((void)pe::microbench::run_peak_flops(17, runner), pe::Error);
}

TEST(PeakFlops, SweepReturnsBest) {
  const auto runner = fast_runner();
  const double best = pe::microbench::peak_flops(runner);
  EXPECT_GT(best, 1e6);
}

TEST(Latency, MeasuresPositiveLatency) {
  const auto runner = fast_runner();
  const auto p = pe::microbench::run_latency(1 << 14, runner);
  EXPECT_GT(p.seconds_per_load, 0.0);
  EXPECT_LT(p.seconds_per_load, 1e-5);
  EXPECT_GE(p.bytes, std::size_t{1} << 14);
}

TEST(Latency, SweepDoubles) {
  const auto runner = fast_runner();
  const auto sweep =
      pe::microbench::latency_sweep(1 << 12, 1 << 15, runner);
  ASSERT_EQ(sweep.size(), 4u);
  EXPECT_EQ(sweep[0].bytes, std::size_t{1} << 12);
  EXPECT_EQ(sweep[3].bytes, std::size_t{1} << 15);
}

TEST(Latency, SweepRangeValidated) {
  const auto runner = fast_runner();
  EXPECT_THROW(
      (void)pe::microbench::latency_sweep(1 << 16, 1 << 12, runner),
      pe::Error);
}

TEST(DetectCacheLevels, FindsSyntheticKnees) {
  std::vector<pe::microbench::LatencyPoint> sweep = {
      {4096, 1e-9},   {8192, 1e-9},    {16384, 1.05e-9},
      {32768, 1e-9},  {65536, 3e-9},  // knee after 32768
      {131072, 3e-9}, {262144, 1.2e-8},  // knee after 131072
  };
  const auto knees = pe::microbench::detect_cache_levels(sweep, 1.4);
  ASSERT_EQ(knees.size(), 2u);
  EXPECT_EQ(knees[0], 32768u);
  EXPECT_EQ(knees[1], 131072u);
}

TEST(DetectCacheLevels, NoKneesOnFlatSweep) {
  std::vector<pe::microbench::LatencyPoint> sweep = {
      {4096, 1e-9}, {8192, 1.1e-9}, {16384, 1e-9}};
  EXPECT_TRUE(pe::microbench::detect_cache_levels(sweep).empty());
}

TEST(DetectCacheLevels, JumpRatioValidated) {
  EXPECT_THROW((void)pe::microbench::detect_cache_levels({}, 1.0),
               pe::Error);
}

}  // namespace
