// Tests for the shared-system interference model in
// perfeng/models/interference.hpp.
#include "perfeng/models/interference.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

using pe::models::SharedSystemModel;

SharedSystemModel node() { return {1e10, 2e10}; }  // ridge alone at 0.5

TEST(Interference, BandwidthSplitsEvenly) {
  EXPECT_DOUBLE_EQ(node().tenant_bandwidth(1), 2e10);
  EXPECT_DOUBLE_EQ(node().tenant_bandwidth(4), 5e9);
  EXPECT_THROW((void)node().tenant_bandwidth(0), pe::Error);
}

TEST(Interference, MemoryBoundKernelSlowsLinearly) {
  // Pure streaming kernel (AI ~ 0): slowdown equals the tenant count.
  const double flops = 1.0, bytes = 1e9;
  EXPECT_NEAR(node().slowdown(flops, bytes, 4), 4.0, 1e-9);
  EXPECT_NEAR(node().slowdown(flops, bytes, 16), 16.0, 1e-9);
}

TEST(Interference, ComputeBoundKernelIsImmune) {
  // AI = 100 FLOP/B >> ridge even at 16 tenants (ridge_16 = 8).
  const double flops = 1e12, bytes = 1e10;
  EXPECT_NEAR(node().slowdown(flops, bytes, 16), 1.0, 1e-9);
}

TEST(Interference, IntermediateKernelsSlowPartially) {
  // AI = 1 FLOP/B: compute-bound alone (ridge 0.5) but memory-bound
  // beyond 2 tenants.
  const double flops = 1e10, bytes = 1e10;
  EXPECT_NEAR(node().slowdown(flops, bytes, 1), 1.0, 1e-12);
  EXPECT_NEAR(node().slowdown(flops, bytes, 2), 1.0, 1e-9);
  EXPECT_GT(node().slowdown(flops, bytes, 4), 1.9);
}

TEST(Interference, ImmunityIntensityScalesWithTenants) {
  EXPECT_DOUBLE_EQ(node().immunity_intensity(1), 0.5);
  EXPECT_DOUBLE_EQ(node().immunity_intensity(4), 2.0);
  // A kernel exactly at the immunity intensity never slows down.
  const double ai = node().immunity_intensity(8);
  EXPECT_NEAR(node().slowdown(ai * 1e9, 1e9, 8), 1.0, 1e-9);
}

TEST(Interference, TenantEstimationInvertsTheModel) {
  const double flops = 1.0, bytes = 1e9;  // streaming kernel
  for (unsigned actual : {1u, 3u, 8u, 32u}) {
    const double observed = node().slowdown(flops, bytes, actual);
    EXPECT_EQ(node().estimate_tenants(flops, bytes, observed), actual);
  }
}

TEST(Interference, EstimationSaturatesForImmuneKernels) {
  // A compute-bound kernel gives no signal; the estimate stays at 1.
  EXPECT_EQ(node().estimate_tenants(1e12, 1e10, 1.0), 1u);
}

TEST(Interference, Validation) {
  EXPECT_THROW((void)node().slowdown(0.0, 0.0, 2), pe::Error);
  EXPECT_THROW((void)node().estimate_tenants(1.0, 1.0, 0.5), pe::Error);
  EXPECT_THROW((void)node().estimate_tenants(1.0, 1.0, 2.0, 0), pe::Error);
}

}  // namespace
