// Tests for cycle attribution in perfeng/counters/attribution.hpp.
#include "perfeng/counters/attribution.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

using namespace pe::counters;

CounterSet sample_counters() {
  CounterSet c;
  c.set(kMemAccesses, 1000);
  c.set(kL1Misses, 100);
  c.set(kL2Misses, 40);
  c.set(kDramAccesses, 10);
  return c;
}

TEST(Attribution, HitsPerLevelComputedFromMisses) {
  const auto rows = attribute_cycles(sample_counters());
  ASSERT_EQ(rows.size(), 4u);
  // L1 hits 900 * 4, L2 hits 60 * 12, L3 hits 30 * 40, DRAM 10 * 200.
  EXPECT_DOUBLE_EQ(rows[0].cycles, 3600.0);
  EXPECT_DOUBLE_EQ(rows[1].cycles, 720.0);
  EXPECT_DOUBLE_EQ(rows[2].cycles, 1200.0);
  EXPECT_DOUBLE_EQ(rows[3].cycles, 2000.0);
}

TEST(Attribution, SharesSumToOne) {
  const auto rows = attribute_cycles(sample_counters());
  double total = 0.0;
  for (const auto& row : rows) total += row.share;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Attribution, AllHitsMeansAllL1) {
  CounterSet c;
  c.set(kMemAccesses, 500);
  const auto rows = attribute_cycles(c);
  EXPECT_DOUBLE_EQ(rows[0].share, 1.0);
  EXPECT_DOUBLE_EQ(rows[3].cycles, 0.0);
}

TEST(Attribution, EmptyCountersAttributeNothing) {
  const auto rows = attribute_cycles(CounterSet{});
  for (const auto& row : rows) {
    EXPECT_DOUBLE_EQ(row.cycles, 0.0);
    EXPECT_DOUBLE_EQ(row.share, 0.0);
  }
}

TEST(Attribution, FallsBackToLlcMissesWithoutDramCounter) {
  CounterSet c;
  c.set(kMemAccesses, 100);
  c.set(kL1Misses, 20);
  c.set(kL2Misses, 10);
  c.set(kL3Misses, 5);  // no dram-accesses counter
  const auto rows = attribute_cycles(c);
  EXPECT_DOUBLE_EQ(rows[3].cycles, 5.0 * 200.0);
}

TEST(Attribution, AmatMatchesManualComputation) {
  // AMAT = total attributed cycles / accesses = 7520 / 1000.
  EXPECT_DOUBLE_EQ(average_memory_access_time(sample_counters()), 7.52);
  EXPECT_DOUBLE_EQ(average_memory_access_time(CounterSet{}), 0.0);
}

TEST(Attribution, CustomLatencyModel) {
  LatencyModel flat{1.0, 1.0, 1.0, 1.0};
  // Every access costs exactly one cycle somewhere.
  EXPECT_DOUBLE_EQ(average_memory_access_time(sample_counters(), flat),
                   1.0);
}

TEST(Attribution, Validation) {
  LatencyModel bad;
  bad.dram = 0.0;
  EXPECT_THROW((void)attribute_cycles(sample_counters(), bad), pe::Error);
}

}  // namespace
