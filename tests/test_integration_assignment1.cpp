// Integration test: the Assignment 1 flow end-to-end — measure matmul
// variants, build a Roofline model from microbenchmarks, and check the
// model captures the version differences (the assignment's stated goal).
#include <gtest/gtest.h>

#include "perfeng/core/pipeline.hpp"
#include "perfeng/kernels/matmul.hpp"
#include "perfeng/microbench/machine_probe.hpp"

namespace {

TEST(Assignment1, RooflinePipelineOverMatmulVariants) {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 3;
  cfg.min_batch_seconds = 1e-3;
  const pe::BenchmarkRunner runner(cfg);

  // Stage 0: calibrate the machine with quick microbenchmarks.
  pe::microbench::ProbeConfig probe;
  probe.stream_elements = 1 << 16;
  probe.cache_stream_elements = 1 << 11;
  probe.latency_min_bytes = 1 << 12;
  probe.latency_max_bytes = 1 << 14;
  const auto mc = pe::microbench::probe_machine(runner, probe);
  pe::models::RooflineModel machine(mc.peak_flops, mc.memory_bandwidth);

  // Large enough that the three matrices overflow L2: the interchange
  // advantage is then a cache-structure effect, not an artifact of code
  // placement, so the assertion below is stable across binaries/hosts.
  const std::size_t n = 192;
  pe::kernels::Matrix a(n, n), b(n, n), c(n, n);
  pe::Rng rng(1);
  a.randomize(rng);
  b.randomize(rng);

  pe::core::Pipeline pipeline(machine, runner);
  pipeline.set_requirement({"beat naive matmul by 1.2x", 1.2});
  pipeline.set_baseline(
      {"ijk", "textbook triple loop",
       [&] { pe::kernels::matmul_naive(a, b, c); }},
      {"matmul", pe::kernels::matmul_flops(n, n, n),
       pe::kernels::matmul_min_bytes(n, n, n)});
  pipeline.add_variant({"ikj", "loop interchange",
                        [&] { pe::kernels::matmul_interchanged(a, b, c); }});
  pipeline.add_variant({"tiled", "cache blocking",
                        [&] { pe::kernels::matmul_tiled(a, b, c, 32); }});

  const auto report = pipeline.run();
  ASSERT_EQ(report.variants.size(), 3u);

  // The model must capture the version difference: interchange beats the
  // column-walking baseline on any cached machine.
  const auto& ikj = report.variants[1];
  EXPECT_GT(ikj.speedup, 1.0) << report.render();

  // Nobody exceeds the roofline by more than measurement noise.
  for (const auto& v : report.variants) {
    EXPECT_LT(v.roofline_efficiency, 1.5) << v.name;
    EXPECT_GT(v.roofline_efficiency, 0.0) << v.name;
  }

  // The report renders (stage 7 of the process).
  EXPECT_NE(report.render().find("ikj"), std::string::npos);
}

}  // namespace
