// Tests for the discrete-event simulation core in perfeng/sim/des.hpp.
#include "perfeng/sim/des.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "perfeng/common/error.hpp"

namespace {

using pe::sim::EventSimulator;

TEST(Des, ExecutesInTimeOrder) {
  EventSimulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Des, FifoTieBreakAtEqualTimes) {
  EventSimulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Des, HandlersMayScheduleMoreEvents) {
  EventSimulator sim;
  int chain = 0;
  std::function<void()> next = [&] {
    if (++chain < 10) sim.schedule_in(1.0, next);
  };
  sim.schedule_in(1.0, next);
  sim.run();
  EXPECT_EQ(chain, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Des, RunUntilStopsAtHorizon) {
  EventSimulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { ++fired; });
  const auto count = sim.run_until(2.0);
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.empty());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Des, RunUntilAdvancesClockOnEmptyQueue) {
  EventSimulator sim;
  sim.run_until(7.5);
  EXPECT_DOUBLE_EQ(sim.now(), 7.5);
}

TEST(Des, SchedulingInPastRejected) {
  EventSimulator sim;
  sim.schedule_at(2.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), pe::Error);
  EXPECT_THROW(sim.schedule_in(-0.5, [] {}), pe::Error);
}

TEST(Des, NullHandlerRejected) {
  EventSimulator sim;
  EXPECT_THROW(sim.schedule_at(1.0, nullptr), pe::Error);
}

TEST(Des, ExecutedCountsAcrossRuns) {
  EventSimulator sim;
  for (int i = 0; i < 4; ++i) sim.schedule_at(i, [] {});
  sim.run_until(1.5);
  EXPECT_EQ(sim.executed(), 2u);
  sim.run();
  EXPECT_EQ(sim.executed(), 4u);
}

TEST(Des, ScheduleInUsesCurrentTime) {
  EventSimulator sim;
  double fired_at = -1.0;
  sim.schedule_at(2.0, [&] {
    sim.schedule_in(3.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

}  // namespace
