// Tests for the GPU occupancy and latency-hiding models in
// perfeng/models/gpu.hpp.
#include "perfeng/models/gpu.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

using namespace pe::models;

GpuSmConfig sm() { return {}; }  // 64 warps, 32 blocks, 64K regs, 96K smem

TEST(Occupancy, FullOccupancyForLightKernels) {
  GpuKernelConfig k;
  k.threads_per_block = 256;  // 8 warps/block
  k.registers_per_thread = 32;
  k.shared_memory_per_block = 0;
  const auto occ = occupancy(sm(), k);
  // warps limit: 64/8 = 8 blocks; regs: 65536/(32*256) = 8 blocks.
  EXPECT_EQ(occ.blocks_per_sm, 8u);
  EXPECT_EQ(occ.warps_per_sm, 64u);
  EXPECT_DOUBLE_EQ(occ.fraction, 1.0);
}

TEST(Occupancy, RegistersLimit) {
  GpuKernelConfig k;
  k.threads_per_block = 256;
  k.registers_per_thread = 128;  // 32768 regs/block -> 2 blocks
  const auto occ = occupancy(sm(), k);
  EXPECT_EQ(occ.blocks_per_sm, 2u);
  EXPECT_STREQ(occ.limiter, "registers");
  EXPECT_DOUBLE_EQ(occ.fraction, 0.25);
}

TEST(Occupancy, SharedMemoryLimit) {
  GpuKernelConfig k;
  k.threads_per_block = 64;  // 2 warps/block
  k.registers_per_thread = 16;
  k.shared_memory_per_block = 48 * 1024;  // 2 blocks fit in 96K
  const auto occ = occupancy(sm(), k);
  EXPECT_EQ(occ.blocks_per_sm, 2u);
  EXPECT_STREQ(occ.limiter, "smem");
  EXPECT_EQ(occ.warps_per_sm, 4u);
}

TEST(Occupancy, BlockCountLimitForTinyBlocks) {
  GpuKernelConfig k;
  k.threads_per_block = 32;  // 1 warp/block; warps would allow 64 blocks
  k.registers_per_thread = 8;
  const auto occ = occupancy(sm(), k);
  EXPECT_EQ(occ.blocks_per_sm, 32u);  // capped by max_blocks
  EXPECT_STREQ(occ.limiter, "blocks");
  EXPECT_DOUBLE_EQ(occ.fraction, 0.5);  // tiny blocks halve occupancy
}

TEST(Occupancy, PartialWarpsRoundUp) {
  GpuKernelConfig k;
  k.threads_per_block = 33;  // 2 warps (one nearly empty)
  k.registers_per_thread = 0;
  const auto occ = occupancy(sm(), k);
  EXPECT_EQ(occ.warps_per_sm, occ.blocks_per_sm * 2);
}

TEST(Occupancy, OversizedBlockRejected) {
  GpuKernelConfig k;
  k.threads_per_block = 64 * 32 + 1;  // more warps than the SM holds
  EXPECT_THROW((void)occupancy(sm(), k), pe::Error);
}

TEST(LatencyHiding, BandwidthScalesWithWarpsUntilPeak) {
  // 80 SMs, 500 ns latency, 128 B per access, 900 GB/s peak.
  const double peak = 9e11;
  const double at8 = achievable_bandwidth(peak, 80, 8, 5e-7, 128);
  const double at32 = achievable_bandwidth(peak, 80, 32, 5e-7, 128);
  EXPECT_NEAR(at32 / at8, 4.0, 1e-9);  // linear region
  const double at64 = achievable_bandwidth(peak, 80, 64, 5e-7, 128);
  EXPECT_DOUBLE_EQ(at64, peak);  // saturated
}

TEST(LatencyHiding, SaturationThresholdConsistent) {
  const double peak = 9e11;
  const unsigned warps = warps_to_saturate(peak, 80, 5e-7, 128);
  EXPECT_GE(achievable_bandwidth(peak, 80, warps, 5e-7, 128), peak * 0.999);
  if (warps > 1) {
    EXPECT_LT(achievable_bandwidth(peak, 80, warps - 1, 5e-7, 128), peak);
  }
}

TEST(LatencyHiding, Validation) {
  EXPECT_THROW((void)achievable_bandwidth(0.0, 1, 1, 1e-6, 64), pe::Error);
  EXPECT_THROW((void)achievable_bandwidth(1e9, 0, 1, 1e-6, 64), pe::Error);
  EXPECT_THROW((void)warps_to_saturate(1e9, 1, 0.0, 64), pe::Error);
}

}  // namespace
