// Tests for the factorial experiment design in perfeng/measure/experiment.hpp.
#include "perfeng/measure/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "perfeng/common/error.hpp"

namespace {

TEST(Experiment, DesignSizeIsProductOfLevels) {
  pe::Experiment e("sweep");
  e.add_factor("n", std::vector<int>{64, 128, 256});
  e.add_factor("variant", std::vector<std::string>{"naive", "tiled"});
  EXPECT_EQ(e.design_size(), 6u);
  EXPECT_EQ(e.design().size(), 6u);
}

TEST(Experiment, DesignEnumeratesLastFactorFastest) {
  pe::Experiment e("sweep");
  e.add_factor("a", std::vector<std::string>{"1", "2"});
  e.add_factor("b", std::vector<std::string>{"x", "y"});
  const auto points = e.design();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].at("a"), "1");
  EXPECT_EQ(points[0].at("b"), "x");
  EXPECT_EQ(points[1].at("a"), "1");
  EXPECT_EQ(points[1].at("b"), "y");
  EXPECT_EQ(points[2].at("a"), "2");
  EXPECT_EQ(points[3].at("b"), "y");
}

TEST(Experiment, DuplicateFactorRejected) {
  pe::Experiment e("sweep");
  e.add_factor("n", std::vector<int>{1});
  EXPECT_THROW(e.add_factor("n", std::vector<int>{2}), pe::Error);
}

TEST(Experiment, EmptyLevelsRejected) {
  pe::Experiment e("sweep");
  EXPECT_THROW(e.add_factor("n", std::vector<std::string>{}), pe::Error);
}

TEST(Experiment, RecordValidatesMetricWidth) {
  pe::Experiment e("sweep");
  e.add_factor("n", std::vector<int>{1});
  e.set_metrics({"time", "flops"});
  const auto points = e.design();
  EXPECT_THROW(e.record(points[0], {1.0}), pe::Error);
  e.record(points[0], {1.0, 2.0});
  EXPECT_EQ(e.record_count(), 1u);
}

TEST(Experiment, RunVisitsEveryDesignPoint) {
  pe::Experiment e("sweep");
  e.add_factor("n", std::vector<int>{2, 4, 8});
  e.set_metrics({"n_squared"});
  e.run([](const pe::DesignPoint& p) {
    const double n = std::stod(p.at("n"));
    return std::vector<double>{n * n};
  });
  EXPECT_EQ(e.record_count(), 3u);
  EXPECT_EQ(e.metric_values("n_squared"),
            (std::vector<double>{4.0, 16.0, 64.0}));
}

TEST(Experiment, MetricValuesUnknownNameThrows) {
  pe::Experiment e("sweep");
  e.add_factor("n", std::vector<int>{1});
  e.set_metrics({"time"});
  EXPECT_THROW(e.metric_values("nope"), pe::Error);
}

TEST(Experiment, TableHasFactorAndMetricColumns) {
  pe::Experiment e("sweep");
  e.add_factor("n", std::vector<int>{3});
  e.set_metrics({"time"});
  e.run([](const pe::DesignPoint&) { return std::vector<double>{1.25}; });
  const auto t = e.to_table();
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NE(t.render().find("1.25"), std::string::npos);
}

TEST(Experiment, SizeTFactorOverload) {
  pe::Experiment e("sweep");
  e.add_factor("bytes", std::vector<std::size_t>{1024, 2048});
  EXPECT_EQ(e.design_size(), 2u);
}

TEST(Experiment, ArithmeticFactorLevelsFormatViaToString) {
  pe::Experiment e("sweep");
  e.add_factor("skew", std::vector<double>{0.0, 1.5});
  e.add_factor("threads", std::vector<unsigned>{1, 8});
  const auto points = e.design();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].at("skew"), std::to_string(0.0));
  EXPECT_EQ(points[3].at("skew"), std::to_string(1.5));
  EXPECT_EQ(points[3].at("threads"), "8");
}

// --- precondition coverage (the PE_REQUIRE paths) ---

TEST(Experiment, RecordRejectsUndeclaredDesignPoint) {
  pe::Experiment e("sweep");
  e.add_factor("n", std::vector<int>{1});
  e.set_metrics({"time"});
  pe::DesignPoint alien;  // lacks the "n" factor entirely
  alien["m"] = "2";
  EXPECT_THROW(e.record(alien, {1.0}), pe::Error);
  EXPECT_THROW(e.record_failure(alien, "oops"), pe::Error);
}

TEST(Experiment, RecordFailureRequiresMetrics) {
  pe::Experiment e("sweep");
  e.add_factor("n", std::vector<int>{1});
  EXPECT_THROW(e.record_failure(e.design()[0], "oops"), pe::Error);
}

TEST(Experiment, RunPropagatesWrongMetricWidth) {
  // A body returning the wrong number of metrics is API misuse, not a
  // measurement failure — it must propagate, not degrade into a NaN row.
  pe::Experiment e("sweep");
  e.add_factor("n", std::vector<int>{1, 2});
  e.set_metrics({"a", "b"});
  EXPECT_THROW(e.run([](const pe::DesignPoint&) {
    return std::vector<double>{1.0};  // width 1, expected 2
  }),
               pe::Error);
}

TEST(Experiment, RunRejectsNullBody) {
  pe::Experiment e("sweep");
  e.add_factor("n", std::vector<int>{1});
  e.set_metrics({"time"});
  EXPECT_THROW(
      e.run(std::function<std::vector<double>(const pe::DesignPoint&)>{}),
      pe::Error);
}

// --- graceful degradation across a sweep ---

TEST(Experiment, FailedPointsBecomeNanRowsAndTheSweepContinues) {
  pe::Experiment e("sweep");
  e.add_factor("n", std::vector<int>{2, 4, 8});
  e.set_metrics({"n_squared"});
  e.run([](const pe::DesignPoint& p) {
    const double n = std::stod(p.at("n"));
    if (n == 4.0) throw pe::Error("kernel exploded at n=4");
    return std::vector<double>{n * n};
  });
  EXPECT_EQ(e.record_count(), 3u);  // every point has a row
  EXPECT_EQ(e.failure_count(), 1u);
  const auto values = e.metric_values("n_squared");
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 4.0);
  EXPECT_TRUE(std::isnan(values[1]));
  EXPECT_DOUBLE_EQ(values[2], 64.0);
  const auto failures = e.failures();
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].first.at("n"), "4");
  EXPECT_NE(failures[0].second.find("exploded"), std::string::npos);
}

TEST(Experiment, ErrorColumnAppearsOnlyWhenSomethingFailed) {
  pe::Experiment clean("clean");
  clean.add_factor("n", std::vector<int>{1});
  clean.set_metrics({"time"});
  clean.run([](const pe::DesignPoint&) { return std::vector<double>{1.0}; });
  EXPECT_EQ(clean.to_table().columns(), 2u);  // factor + metric, no error

  pe::Experiment dirty("dirty");
  dirty.add_factor("n", std::vector<int>{1});
  dirty.set_metrics({"time"});
  dirty.run([](const pe::DesignPoint&) -> std::vector<double> {
    throw pe::Error("boom");
  });
  const auto t = dirty.to_table();
  EXPECT_EQ(t.columns(), 3u);  // factor + metric + error annotation
  EXPECT_NE(t.render().find("boom"), std::string::npos);
}

TEST(Experiment, MachineProvenanceColumnsAppearWhenSet) {
  pe::machine::Machine m;
  m.name = "prov-node";
  m.peak_flops = 1e10;
  m.hierarchy = {{"DRAM", 2e10, 0.0, 0, 64}};

  pe::Experiment e("sweep");
  e.set_machine(m);
  e.add_factor("n", std::vector<int>{1});
  e.set_metrics({"time"});
  e.run([](const pe::DesignPoint&) { return std::vector<double>{1.0}; });

  EXPECT_EQ(e.machine_name(), "prov-node");
  EXPECT_EQ(e.calibration_hash(), m.calibration_hash());
  const auto t = e.to_table();
  EXPECT_EQ(t.columns(), 4u);  // factor + metric + machine + calibration
  const std::string rendered = t.render();
  EXPECT_NE(rendered.find("prov-node"), std::string::npos);
  EXPECT_NE(rendered.find(m.calibration_hash()), std::string::npos);

  // Without a machine the table keeps its original shape.
  pe::Experiment plain("plain");
  plain.add_factor("n", std::vector<int>{1});
  plain.set_metrics({"time"});
  plain.run([](const pe::DesignPoint&) { return std::vector<double>{1.0}; });
  EXPECT_EQ(plain.to_table().columns(), 2u);
}

TEST(Experiment, SetMachineValidatesTheMachine) {
  pe::Experiment e("sweep");
  pe::machine::Machine broken;  // no name, no peak, no hierarchy
  EXPECT_THROW(e.set_machine(broken), pe::Error);
}

}  // namespace
