// Tests for the factorial experiment design in perfeng/measure/experiment.hpp.
#include "perfeng/measure/experiment.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

TEST(Experiment, DesignSizeIsProductOfLevels) {
  pe::Experiment e("sweep");
  e.add_factor("n", std::vector<int>{64, 128, 256});
  e.add_factor("variant", std::vector<std::string>{"naive", "tiled"});
  EXPECT_EQ(e.design_size(), 6u);
  EXPECT_EQ(e.design().size(), 6u);
}

TEST(Experiment, DesignEnumeratesLastFactorFastest) {
  pe::Experiment e("sweep");
  e.add_factor("a", std::vector<std::string>{"1", "2"});
  e.add_factor("b", std::vector<std::string>{"x", "y"});
  const auto points = e.design();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].at("a"), "1");
  EXPECT_EQ(points[0].at("b"), "x");
  EXPECT_EQ(points[1].at("a"), "1");
  EXPECT_EQ(points[1].at("b"), "y");
  EXPECT_EQ(points[2].at("a"), "2");
  EXPECT_EQ(points[3].at("b"), "y");
}

TEST(Experiment, DuplicateFactorRejected) {
  pe::Experiment e("sweep");
  e.add_factor("n", std::vector<int>{1});
  EXPECT_THROW(e.add_factor("n", std::vector<int>{2}), pe::Error);
}

TEST(Experiment, EmptyLevelsRejected) {
  pe::Experiment e("sweep");
  EXPECT_THROW(e.add_factor("n", std::vector<std::string>{}), pe::Error);
}

TEST(Experiment, RecordValidatesMetricWidth) {
  pe::Experiment e("sweep");
  e.add_factor("n", std::vector<int>{1});
  e.set_metrics({"time", "flops"});
  const auto points = e.design();
  EXPECT_THROW(e.record(points[0], {1.0}), pe::Error);
  e.record(points[0], {1.0, 2.0});
  EXPECT_EQ(e.record_count(), 1u);
}

TEST(Experiment, RunVisitsEveryDesignPoint) {
  pe::Experiment e("sweep");
  e.add_factor("n", std::vector<int>{2, 4, 8});
  e.set_metrics({"n_squared"});
  e.run([](const pe::DesignPoint& p) {
    const double n = std::stod(p.at("n"));
    return std::vector<double>{n * n};
  });
  EXPECT_EQ(e.record_count(), 3u);
  EXPECT_EQ(e.metric_values("n_squared"),
            (std::vector<double>{4.0, 16.0, 64.0}));
}

TEST(Experiment, MetricValuesUnknownNameThrows) {
  pe::Experiment e("sweep");
  e.add_factor("n", std::vector<int>{1});
  e.set_metrics({"time"});
  EXPECT_THROW(e.metric_values("nope"), pe::Error);
}

TEST(Experiment, TableHasFactorAndMetricColumns) {
  pe::Experiment e("sweep");
  e.add_factor("n", std::vector<int>{3});
  e.set_metrics({"time"});
  e.run([](const pe::DesignPoint&) { return std::vector<double>{1.25}; });
  const auto t = e.to_table();
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NE(t.render().find("1.25"), std::string::npos);
}

TEST(Experiment, SizeTFactorOverload) {
  pe::Experiment e("sweep");
  e.add_factor("bytes", std::vector<std::size_t>{1024, 2048});
  EXPECT_EQ(e.design_size(), 2u);
}

}  // namespace
