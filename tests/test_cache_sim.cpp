// Tests for the cache simulator in perfeng/sim/cache.hpp and
// cache_hierarchy.hpp, including hand-computed traces.
#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"
#include "perfeng/sim/cache.hpp"
#include "perfeng/sim/cache_hierarchy.hpp"

namespace {

using pe::sim::AccessType;
using pe::sim::Cache;
using pe::sim::CacheConfig;
using pe::sim::CacheHierarchy;
using pe::sim::LevelSpec;

CacheConfig tiny_cache(std::size_t size, std::size_t ways) {
  CacheConfig cfg;
  cfg.name = "T";
  cfg.size_bytes = size;
  cfg.line_bytes = 64;
  cfg.associativity = ways;
  return cfg;
}

TEST(CacheConfig, Geometry) {
  const CacheConfig cfg = tiny_cache(32 * 1024, 8);
  EXPECT_EQ(cfg.num_lines(), 512u);
  EXPECT_EQ(cfg.num_sets(), 64u);
}

TEST(Cache, ColdMissThenHit) {
  Cache c(tiny_cache(1024, 2));
  EXPECT_FALSE(c.access_line(0, AccessType::kRead));
  EXPECT_TRUE(c.access_line(0, AccessType::kRead));
  EXPECT_EQ(c.stats().read_misses, 1u);
  EXPECT_EQ(c.stats().read_hits, 1u);
}

TEST(Cache, LruEvictsOldest) {
  // 1024B / 64B lines = 16 lines, 2-way -> 8 sets. Lines 0, 8, 16 all map
  // to set 0; the third allocation must evict the least recent (line 0).
  Cache c(tiny_cache(1024, 2));
  c.access_line(0, AccessType::kRead);
  c.access_line(8, AccessType::kRead);
  c.access_line(16, AccessType::kRead);  // evicts 0
  EXPECT_FALSE(c.probe(0));
  EXPECT_TRUE(c.probe(8));
  EXPECT_TRUE(c.probe(16));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, LruRefreshOnHit) {
  Cache c(tiny_cache(1024, 2));
  c.access_line(0, AccessType::kRead);
  c.access_line(8, AccessType::kRead);
  c.access_line(0, AccessType::kRead);   // refresh 0; 8 is now LRU
  c.access_line(16, AccessType::kRead);  // evicts 8
  EXPECT_TRUE(c.probe(0));
  EXPECT_FALSE(c.probe(8));
}

TEST(Cache, WritebackOnlyForDirtyVictims) {
  Cache c(tiny_cache(1024, 2));
  c.access_line(0, AccessType::kWrite);  // dirty
  c.access_line(8, AccessType::kRead);   // clean
  bool dirty = false;
  c.access_line(16, AccessType::kRead, &dirty);  // evicts 0 (dirty)
  EXPECT_TRUE(dirty);
  EXPECT_EQ(c.stats().writebacks, 1u);
  c.access_line(24, AccessType::kRead, &dirty);  // evicts 8 (clean)
  EXPECT_FALSE(dirty);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, WriteHitMarksDirty) {
  Cache c(tiny_cache(1024, 2));
  c.access_line(0, AccessType::kRead);
  c.access_line(0, AccessType::kWrite);  // hit; line becomes dirty
  bool dirty = false;
  c.access_line(8, AccessType::kRead);
  c.access_line(16, AccessType::kRead, &dirty);  // evicts 0
  EXPECT_TRUE(dirty);
}

TEST(Cache, FlushInvalidatesButKeepsStats) {
  Cache c(tiny_cache(1024, 2));
  c.access_line(0, AccessType::kRead);
  c.flush();
  EXPECT_FALSE(c.probe(0));
  EXPECT_EQ(c.stats().read_misses, 1u);
  c.reset_stats();
  EXPECT_EQ(c.stats().accesses(), 0u);
}

TEST(Cache, MissRateComputation) {
  Cache c(tiny_cache(1024, 2));
  c.access_line(0, AccessType::kRead);    // miss
  c.access_line(0, AccessType::kRead);    // hit
  c.access_line(0, AccessType::kWrite);   // hit
  c.access_line(99, AccessType::kWrite);  // miss
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 0.5);
}

TEST(Cache, FullyAssociativeNeverConflicts) {
  // 256B / 64B = 4 lines, 4-way: one set. Any 4 lines coexist.
  Cache c(tiny_cache(256, 4));
  for (std::uint64_t line : {0u, 100u, 200u, 300u})
    c.access_line(line, AccessType::kRead);
  for (std::uint64_t line : {0u, 100u, 200u, 300u})
    EXPECT_TRUE(c.probe(line));
}

TEST(Cache, InvalidGeometryRejected) {
  CacheConfig bad = tiny_cache(1000, 2);  // not a multiple of line size
  EXPECT_THROW(Cache{bad}, pe::Error);
  bad = tiny_cache(1024, 3);  // 16 lines not divisible into 3-way sets
  EXPECT_THROW(Cache{bad}, pe::Error);
}

// --------------------------------------------------------------- hierarchy

CacheHierarchy two_level() {
  std::vector<LevelSpec> specs;
  specs.push_back({tiny_cache(1024, 2), 1.0});
  specs.push_back({tiny_cache(4096, 4), 10.0});
  return CacheHierarchy(std::move(specs), 100.0);
}

TEST(Hierarchy, MissFallsThroughLevels) {
  CacheHierarchy h = two_level();
  h.access(0, 8, AccessType::kRead);  // miss L1, miss L2, DRAM
  auto s = h.stats();
  EXPECT_EQ(s.levels[0].read_misses, 1u);
  EXPECT_EQ(s.levels[1].read_misses, 1u);
  EXPECT_EQ(s.dram_accesses, 1u);
  EXPECT_DOUBLE_EQ(s.total_cycles, 111.0);  // 1 + 10 + 100

  h.access(0, 8, AccessType::kRead);  // L1 hit
  s = h.stats();
  EXPECT_EQ(s.levels[0].read_hits, 1u);
  EXPECT_DOUBLE_EQ(s.total_cycles, 112.0);
}

TEST(Hierarchy, L2HitAfterL1Eviction) {
  CacheHierarchy h = two_level();
  h.access(0 * 64, 8, AccessType::kRead);
  h.access(8 * 64, 8, AccessType::kRead);
  h.access(16 * 64, 8, AccessType::kRead);  // evicts line 0 from L1 only
  h.access(0 * 64, 8, AccessType::kRead);   // L1 miss, L2 hit
  const auto s = h.stats();
  EXPECT_EQ(s.levels[0].read_misses, 4u);
  EXPECT_EQ(s.levels[1].read_hits, 1u);
  EXPECT_EQ(s.dram_accesses, 3u);
}

TEST(Hierarchy, StraddlingAccessTouchesBothLines) {
  CacheHierarchy h = two_level();
  h.access(60, 8, AccessType::kRead);  // spans lines 0 and 1
  EXPECT_EQ(h.stats().total_accesses, 2u);
}

TEST(Hierarchy, TouchRangeWalksLines) {
  CacheHierarchy h = two_level();
  h.touch_range(0, 64 * 10, AccessType::kRead);
  EXPECT_EQ(h.stats().total_accesses, 10u);
}

TEST(Hierarchy, SequentialStreamMissesOncePerLine) {
  CacheHierarchy h = two_level();
  // 8-byte reads through 4 lines: 32 accesses, 4 L1 misses.
  for (std::uint64_t a = 0; a < 4 * 64; a += 8)
    h.access(a, 8, AccessType::kRead);
  const auto s = h.stats();
  EXPECT_EQ(s.total_accesses, 32u);
  EXPECT_EQ(s.levels[0].read_misses, 4u);
}

TEST(Hierarchy, ResetClearsCountersAndContents) {
  CacheHierarchy h = two_level();
  h.access(0, 8, AccessType::kRead);
  h.reset(true);
  EXPECT_EQ(h.stats().total_accesses, 0u);
  h.access(0, 8, AccessType::kRead);
  EXPECT_EQ(h.stats().levels[0].read_misses, 1u);  // cold again
}

TEST(Hierarchy, TypicalDesktopShape) {
  CacheHierarchy h = CacheHierarchy::typical_desktop();
  EXPECT_EQ(h.num_levels(), 3u);
  EXPECT_EQ(h.line_bytes(), 64u);
  EXPECT_EQ(h.level(0).config().size_bytes, 32u * 1024);
  EXPECT_EQ(h.level(2).config().size_bytes, 8u * 1024 * 1024);
  EXPECT_THROW((void)h.level(3), pe::Error);
}

TEST(Hierarchy, MismatchedLineSizesRejected) {
  std::vector<LevelSpec> specs;
  specs.push_back({tiny_cache(1024, 2), 1.0});
  CacheConfig other;
  other.size_bytes = 4096;
  other.line_bytes = 128;
  other.associativity = 4;
  specs.push_back({other, 10.0});
  EXPECT_THROW(CacheHierarchy(std::move(specs), 100.0), pe::Error);
}

TEST(Hierarchy, ZeroByteAccessRejected) {
  CacheHierarchy h = two_level();
  EXPECT_THROW(h.access(0, 0, AccessType::kRead), pe::Error);
}

}  // namespace
