// Tests for the Matrix Market reader/writer in perfeng/kernels.
#include "perfeng/kernels/matrix_market.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "perfeng/common/error.hpp"
#include "perfeng/resilience/fault_injection.hpp"

namespace {

TEST(MatrixMarket, ParsesGeneralReal) {
  const std::string text =
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 2\n"
      "1 1 5.0\n"
      "3 2 -1.5\n";
  const auto m = pe::kernels::parse_matrix_market(text);
  EXPECT_EQ(m.rows, 3u);
  EXPECT_EQ(m.cols, 3u);
  ASSERT_EQ(m.nnz(), 2u);
  EXPECT_EQ(m.entries[0].row, 0u);
  EXPECT_EQ(m.entries[0].col, 0u);
  EXPECT_DOUBLE_EQ(m.entries[0].value, 5.0);
  EXPECT_EQ(m.entries[1].row, 2u);
  EXPECT_EQ(m.entries[1].col, 1u);
}

TEST(MatrixMarket, ExpandsSymmetric) {
  const std::string text =
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 1.0\n"
      "2 1 2.0\n"
      "3 2 3.0\n";
  const auto m = pe::kernels::parse_matrix_market(text);
  // Diagonal stays single; off-diagonals mirrored.
  EXPECT_EQ(m.nnz(), 5u);
  bool found_mirror = false;
  for (const auto& t : m.entries)
    if (t.row == 0 && t.col == 1 && t.value == 2.0) found_mirror = true;
  EXPECT_TRUE(found_mirror);
}

TEST(MatrixMarket, SkewSymmetricNegatesMirror) {
  const std::string text =
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 4.0\n";
  const auto m = pe::kernels::parse_matrix_market(text);
  EXPECT_EQ(m.nnz(), 2u);
  bool found = false;
  for (const auto& t : m.entries)
    if (t.row == 0 && t.col == 1 && t.value == -4.0) found = true;
  EXPECT_TRUE(found);
}

TEST(MatrixMarket, PatternEntriesDefaultToOne) {
  const std::string text =
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n";
  const auto m = pe::kernels::parse_matrix_market(text);
  ASSERT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.entries[0].value, 1.0);
}

TEST(MatrixMarket, IntegerFieldAccepted) {
  const std::string text =
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "1 1 7\n";
  EXPECT_DOUBLE_EQ(pe::kernels::parse_matrix_market(text).entries[0].value,
                   7.0);
}

TEST(MatrixMarket, BannerCaseInsensitive) {
  const std::string text =
      "%%matrixmarket MATRIX Coordinate REAL General\n"
      "1 1 1\n"
      "1 1 2.5\n";
  EXPECT_NO_THROW((void)pe::kernels::parse_matrix_market(text));
}

TEST(MatrixMarket, RejectsMalformedInput) {
  EXPECT_THROW((void)pe::kernels::parse_matrix_market(""), pe::Error);
  EXPECT_THROW((void)pe::kernels::parse_matrix_market("not a banner\n"),
               pe::Error);
  EXPECT_THROW((void)pe::kernels::parse_matrix_market(
                   "%%MatrixMarket matrix array real general\n1 1\n"),
               pe::Error);
  EXPECT_THROW((void)pe::kernels::parse_matrix_market(
                   "%%MatrixMarket matrix coordinate complex general\n"
                   "1 1 1\n1 1 1.0 0.0\n"),
               pe::Error);
}

TEST(MatrixMarket, RejectsOutOfBoundsEntries) {
  const std::string text =
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n";
  EXPECT_THROW((void)pe::kernels::parse_matrix_market(text), pe::Error);
}

TEST(MatrixMarket, RejectsTruncatedEntryList) {
  const std::string text =
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n";
  EXPECT_THROW((void)pe::kernels::parse_matrix_market(text), pe::Error);
}

TEST(MatrixMarket, WriteParsesBackIdentically) {
  pe::Rng rng(6);
  const auto original = pe::kernels::generate_sparse(
      20, 30, 0.05, pe::kernels::SparsityPattern::kUniform, rng);
  const std::string text = pe::kernels::write_matrix_market(original);
  const auto parsed = pe::kernels::parse_matrix_market(text);
  ASSERT_EQ(parsed.nnz(), original.nnz());
  for (std::size_t i = 0; i < parsed.nnz(); ++i) {
    EXPECT_EQ(parsed.entries[i].row, original.entries[i].row);
    EXPECT_EQ(parsed.entries[i].col, original.entries[i].col);
    EXPECT_DOUBLE_EQ(parsed.entries[i].value, original.entries[i].value);
  }
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW((void)pe::kernels::read_matrix_market_file("/nope.mtx"),
               pe::Error);
}

std::string error_of(const std::string& text) {
  try {
    (void)pe::kernels::parse_matrix_market(text);
  } catch (const pe::Error& e) {
    return e.what();
  }
  return {};
}

TEST(MatrixMarket, MalformedEntryNamesTheLine) {
  const auto msg = error_of(
      "%%MatrixMarket matrix coordinate real general\n"
      "% comment\n"
      "2 2 2\n"
      "1 1 1.0\n"
      "garbage here\n");
  EXPECT_NE(msg.find("line 5"), std::string::npos);
  EXPECT_NE(msg.find("garbage here"), std::string::npos);
}

TEST(MatrixMarket, TruncatedEntryListReportsCounts) {
  const auto msg = error_of(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 5\n"
      "1 1 1.0\n"
      "2 2 2.0\n");
  EXPECT_NE(msg.find("truncated"), std::string::npos);
  EXPECT_NE(msg.find("got 2 of 5 entries"), std::string::npos);
}

TEST(MatrixMarket, GarbageSizeLineQuoted) {
  const auto msg = error_of(
      "%%MatrixMarket matrix coordinate real general\n"
      "three by three\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos);
  EXPECT_NE(msg.find("malformed size line"), std::string::npos);
  EXPECT_NE(msg.find("three by three"), std::string::npos);
}

TEST(MatrixMarket, OutOfBoundsEntryNamesCoordinates) {
  const auto msg = error_of(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_NE(msg.find("(3, 1)"), std::string::npos);
  EXPECT_NE(msg.find("2x2"), std::string::npos);
}

TEST(MatrixMarket, FileErrorsCarryThePath) {
  const std::string path = testing::TempDir() + "pe_test_bad.mtx";
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate real general\n"
        << "2 2 1\n"
        << "bogus\n";
  }
  try {
    (void)pe::kernels::read_matrix_market_file(path);
    FAIL() << "expected pe::Error";
  } catch (const pe::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path), std::string::npos);
    EXPECT_NE(msg.find("line 3"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(MatrixMarket, IoFaultSiteCoversFileReads) {
  pe::resilience::FaultPlan plan;
  plan.faults.push_back(
      {.site = std::string(pe::fault_sites::kIoMatrixMarket)});
  pe::resilience::ScopedFaultInjection scope(std::move(plan));
  EXPECT_THROW((void)pe::kernels::read_matrix_market_file("/nope.mtx"),
               pe::resilience::FaultInjected);
}

}  // namespace
