// Tests for the analytical sparse-format cost model in
// perfeng/models/spmv_model.hpp — the white-box sibling of the measured
// pe::kernels::FormatSelector.
#include "perfeng/models/spmv_model.hpp"

#include <gtest/gtest.h>

#include <string>

#include "perfeng/common/error.hpp"
#include "perfeng/machine/registry.hpp"

namespace {

using pe::models::SpmvFormatModel;
using pe::models::SpmvShape;

SpmvShape square_shape() {
  SpmvShape s;
  s.rows = 1000.0;
  s.cols = 1000.0;
  s.nnz = 10000.0;
  s.ell_padding = 1.5;
  s.sell_padding = 1.1;
  return s;
}

TEST(SpmvModel, ConstructionValidated) {
  EXPECT_THROW(SpmvFormatModel(0.0, 1e10), pe::Error);
  EXPECT_THROW(SpmvFormatModel(1e9, -1.0), pe::Error);
  EXPECT_NO_THROW(SpmvFormatModel(1e9, 1e10));
}

TEST(SpmvModel, FromMachinePreset) {
  const auto machine = pe::machine::resolve_or_preset("laptop-x86");
  const auto model = SpmvFormatModel::from_machine(machine);
  for (const std::string& f : SpmvFormatModel::format_names())
    EXPECT_GT(model.predict_seconds(square_shape(), f), 0.0) << f;
}

TEST(SpmvModel, TrafficOrderingMatchesFormatStructure) {
  const SpmvFormatModel model(1e9, 1e10);
  const SpmvShape s = square_shape();
  // COO carries a row index per entry that CSR amortizes into row_ptr, so
  // COO always moves more bytes; CSC pays scattered y read-modify-writes
  // on top of CSR-like index traffic.
  EXPECT_GT(model.traffic_bytes(s, "coo"), model.traffic_bytes(s, "csr"));
  EXPECT_GT(model.traffic_bytes(s, "csc"), model.traffic_bytes(s, "csr"));
  // Padding is real traffic: SELL's tighter padding beats ELL's here.
  EXPECT_LT(model.traffic_bytes(s, "sell"), model.traffic_bytes(s, "ell"));
  EXPECT_THROW((void)model.traffic_bytes(s, "dia"), pe::Error);
}

TEST(SpmvModel, ChoosePrefersLowPaddingFormats) {
  const SpmvFormatModel model(1e9, 1e10);
  // With no padding at all, SELL's traffic equals ELL's minus the row
  // pointer difference — the winner must be one of the padding-free
  // streaming formats, never COO or CSC.
  SpmvShape tight = square_shape();
  tight.ell_padding = 1.0;
  tight.sell_padding = 1.0;
  const std::string best = model.choose(tight);
  EXPECT_TRUE(best == "csr" || best == "ell" || best == "sell") << best;
  // Blow up ELL's padding and it must not be chosen.
  SpmvShape skewed = square_shape();
  skewed.ell_padding = 50.0;
  EXPECT_NE(model.choose(skewed), "ell");
}

TEST(SpmvModel, PredictionRespectsComputeFloor) {
  // Absurdly slow compute: the compute roof dominates, and every format
  // predicts the same 2*nnz/peak seconds.
  const SpmvFormatModel slow(1e3, 1e12);
  const SpmvShape s = square_shape();
  for (const std::string& f : SpmvFormatModel::format_names())
    EXPECT_DOUBLE_EQ(slow.predict_seconds(s, f), 2.0 * s.nnz / 1e3) << f;
}

TEST(SpmvModel, EvalBridgesIntoCompositionLayer) {
  const SpmvFormatModel model(1e9, 1e10);
  const auto eval = model.eval(square_shape(), "csr");
  const auto e = eval.evaluate();
  EXPECT_GT(e.seconds, 0.0);
  EXPECT_DOUBLE_EQ(e.footprint.flops, 2.0 * square_shape().nnz);
  EXPECT_GT(e.footprint.bytes, 0.0);
  EXPECT_EQ(eval.name(), "spmv.csr");
}

TEST(SpmvModel, EmptyShapeRejected) {
  const SpmvFormatModel model(1e9, 1e10);
  SpmvShape s;
  EXPECT_THROW((void)model.traffic_bytes(s, "csr"), pe::Error);
}

}  // namespace
