// The pe::simd exactness contract (docs/simd.md): every backend computes
// lane-wise IEEE arithmetic bit-identical to the portable generic
// backend, reductions use one fixed tree, and the *only* sanctioned
// semantic difference is `mul_add` fusing — advertised through the
// kFusedMulAdd trait, never silent. These tests pin that contract with
// exact equality (no tolerances): when they pass on an AVX2 build and on
// a generic build, a kernel written against Vec<T, N> is portable by
// construction.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "perfeng/common/rng.hpp"
#include "perfeng/simd/caps.hpp"
#include "perfeng/simd/vec.hpp"

namespace {

using pe::simd::Vec;
using pe::simd::VecD;
using pe::simd::VecF;

std::vector<double> random_doubles(std::size_t n, std::uint64_t seed) {
  pe::Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.next_range_double(-8.0, 8.0);
  return v;
}

TEST(Simd, LaneCountsMatchPreferredWidths) {
  EXPECT_EQ(VecD::lanes, pe::simd::kDoubleLanes);
  EXPECT_EQ(VecF::lanes, pe::simd::kFloatLanes);
  EXPECT_EQ(VecD::lanes, 4u);
  EXPECT_EQ(VecF::lanes, 8u);
}

TEST(Simd, ZeroBroadcastAndGet) {
  const VecD z = VecD::zero();
  for (std::size_t i = 0; i < VecD::lanes; ++i) EXPECT_EQ(z.get(i), 0.0);
  const VecD b = VecD::broadcast(2.5);
  for (std::size_t i = 0; i < VecD::lanes; ++i) EXPECT_EQ(b.get(i), 2.5);
}

TEST(Simd, LoadStoreRoundTripsUnaligned) {
  // Loads and stores carry no alignment requirement — exercise every
  // offset within a cache line to prove it.
  const auto src = random_doubles(VecD::lanes + 7, 11);
  for (std::size_t off = 0; off < 8; ++off) {
    const VecD v = VecD::load(src.data() + off);
    double out[VecD::lanes];
    v.store(out);
    for (std::size_t i = 0; i < VecD::lanes; ++i) {
      EXPECT_EQ(out[i], src[off + i]);
      EXPECT_EQ(v.get(i), src[off + i]);
    }
  }
}

TEST(Simd, ArithmeticIsLaneWiseExact) {
  const auto xs = random_doubles(VecD::lanes, 21);
  const auto ys = random_doubles(VecD::lanes, 22);
  const VecD x = VecD::load(xs.data());
  const VecD y = VecD::load(ys.data());
  const VecD sum = x + y, diff = x - y, prod = x * y;
  for (std::size_t i = 0; i < VecD::lanes; ++i) {
    EXPECT_EQ(sum.get(i), xs[i] + ys[i]);
    EXPECT_EQ(diff.get(i), xs[i] - ys[i]);
    EXPECT_EQ(prod.get(i), xs[i] * ys[i]);
  }
}

TEST(Simd, MulAddHonorsTheFusedTrait) {
  // The one sanctioned backend difference: with kFusedMulAdd the result
  // is std::fma (one rounding), without it mul-then-add (two roundings).
  // Either way the trait tells callers exactly which — verified here per
  // lane with exact equality.
  const auto as = random_doubles(VecD::lanes, 31);
  const auto bs = random_doubles(VecD::lanes, 32);
  const auto cs = random_doubles(VecD::lanes, 33);
  const VecD r = VecD::load(as.data())
                     .mul_add(VecD::load(bs.data()), VecD::load(cs.data()));
  for (std::size_t i = 0; i < VecD::lanes; ++i) {
    const double expect = VecD::kFusedMulAdd
                              ? std::fma(as[i], bs[i], cs[i])
                              : as[i] * bs[i] + cs[i];
    EXPECT_EQ(r.get(i), expect);
  }
}

TEST(Simd, HsumUsesTheFixedStrideHalvingTree) {
  // hsum must reduce as (l0+l2) + (l1+l3) for N=4 — the order the generic
  // backend defines and every hardware backend must reproduce, so that a
  // reduction written on Vec is bit-stable across backends.
  const auto xs = random_doubles(VecD::lanes, 41);
  const VecD v = VecD::load(xs.data());
  const double expect = (xs[0] + xs[2]) + (xs[1] + xs[3]);
  EXPECT_EQ(v.hsum(), expect);
}

TEST(Simd, FloatBackendMatchesScalarSemantics) {
  pe::Rng rng(51);
  float a[VecF::lanes], b[VecF::lanes];
  for (std::size_t i = 0; i < VecF::lanes; ++i) {
    a[i] = static_cast<float>(rng.next_range_double(-4.0, 4.0));
    b[i] = static_cast<float>(rng.next_range_double(-4.0, 4.0));
  }
  const VecF prod = VecF::load(a) * VecF::load(b);
  for (std::size_t i = 0; i < VecF::lanes; ++i)
    EXPECT_EQ(prod.get(i), a[i] * b[i]);
  // N=8 tree: ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)).
  const float expect = ((a[0] + a[4]) + (a[2] + a[6])) +
                       ((a[1] + a[5]) + (a[3] + a[7]));
  EXPECT_EQ(VecF::load(a).hsum(), expect);
}

TEST(Simd, GenericTemplateAgreesWithCompiledBackendAtOtherWidths) {
  // Widths with no hardware specialization always instantiate the
  // generic template — they must behave identically to VecD semantics so
  // kernels can pick any power-of-two width without surprises.
  using V2 = Vec<double, 2>;
  const auto xs = random_doubles(2, 61);
  const auto ys = random_doubles(2, 62);
  const V2 r = V2::load(xs.data()).mul_add(V2::load(ys.data()), V2::zero());
  for (std::size_t i = 0; i < 2; ++i) {
    const double expect = V2::kFusedMulAdd ? std::fma(xs[i], ys[i], 0.0)
                                           : xs[i] * ys[i];
    EXPECT_EQ(r.get(i), expect);
  }
  EXPECT_EQ(V2::load(xs.data()).hsum(), xs[0] + xs[1]);
}

TEST(Simd, CompiledBackendReportingIsConsistent) {
  const unsigned width = pe::simd::compiled_width_bits();
  const std::string name = pe::simd::compiled_backend_name();
  if (name == "avx2") {
    EXPECT_EQ(width, 256u);
  } else {
    EXPECT_EQ(name, "generic");
    EXPECT_EQ(width, 0u);
    EXPECT_FALSE(pe::simd::fused_mul_add());
  }
  EXPECT_EQ(pe::simd::fused_mul_add(), VecD::kFusedMulAdd);
}

TEST(Simd, RuntimeCapsAreSelfConsistent) {
  const pe::simd::SimdCaps caps = pe::simd::runtime_simd_caps();
  // Feature implications on x86 (all vacuously true on other ISAs where
  // the probe reports everything false).
  if (caps.avx2) {
    EXPECT_TRUE(caps.avx);
  }
  if (caps.avx) {
    EXPECT_TRUE(caps.sse2);
  }
  if (caps.avx512f) {
    EXPECT_TRUE(caps.avx2);
  }
  const unsigned width = caps.width_bits();
  if (caps.avx512f) {
    EXPECT_EQ(width, 512u);
  } else if (caps.avx2 || caps.avx) {
    EXPECT_EQ(width, 256u);
  } else if (caps.sse2) {
    EXPECT_EQ(width, 128u);
  } else {
    EXPECT_EQ(width, 0u);
  }
  EXPECT_FALSE(caps.summary().empty());
  // A binary compiled for AVX2 can only be running on an AVX2 host.
  if (pe::simd::compiled_width_bits() >= 256) {
    EXPECT_TRUE(caps.avx2);
  }
}

}  // namespace
