// Integration test: the course-artifact stack — data, table generators,
// CSV artifacts and grading must tell one consistent story.
#include <gtest/gtest.h>

#include "perfeng/common/csv.hpp"
#include "perfeng/course/data.hpp"
#include "perfeng/course/grading.hpp"
#include "perfeng/course/tables.hpp"

namespace {

using namespace pe::course;

TEST(CourseStack, Figure1TableMatchesHistory) {
  const auto table = figure1_table();
  const std::string csv = table.render_csv();
  const auto doc = pe::parse_csv(csv);
  const auto& history = student_history();
  ASSERT_EQ(doc.rows.size(), history.size() + 1);  // + total row
  for (std::size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(doc.rows[i][doc.column("year")],
              std::to_string(history[i].year));
    EXPECT_EQ(doc.rows[i][doc.column("enrolled")],
              std::to_string(history[i].enrolled));
  }
  EXPECT_EQ(doc.rows.back()[doc.column("enrolled")],
            std::to_string(kTotalEnrolled));
}

TEST(CourseStack, StudentsCsvRoundTripsThroughTheParser) {
  const auto doc = pe::parse_csv(students_csv());
  int enrolled = 0;
  for (const auto& row : doc.rows)
    enrolled += std::stoi(row[doc.column("enrolled")]);
  EXPECT_EQ(enrolled, kTotalEnrolled);
}

TEST(CourseStack, MetricsCsvMatchesEvaluationData) {
  const auto doc = pe::parse_csv(metrics_csv());
  const auto& agreement = evaluation_agreement();
  ASSERT_EQ(doc.rows.size(), agreement.size() + evaluation_level().size());
  // Spot-check the first row's histogram fields against the data module.
  for (int score = 1; score <= 5; ++score) {
    EXPECT_EQ(doc.rows[0][doc.column("c" + std::to_string(score))],
              std::to_string(agreement[0].counts[score - 1]));
  }
}

TEST(CourseStack, Table1ColumnsTrackTopicCoverage) {
  const auto csv = table1().render_csv();
  const auto doc = pe::parse_csv(csv);
  const auto& topics = topic_coverage();
  ASSERT_EQ(doc.rows.size(), topics.size());
  for (std::size_t i = 0; i < topics.size(); ++i) {
    for (int s = 1; s <= 7; ++s) {
      const bool expected =
          std::find(topics[i].stages.begin(), topics[i].stages.end(), s) !=
          topics[i].stages.end();
      const auto& cell = doc.rows[i][doc.column("S" + std::to_string(s))];
      EXPECT_EQ(cell == "x", expected) << topics[i].topic << " S" << s;
    }
    for (int o = 1; o <= 8; ++o) {
      const bool expected =
          std::find(topics[i].objectives.begin(),
                    topics[i].objectives.end(),
                    o) != topics[i].objectives.end();
      const auto& cell = doc.rows[i][doc.column("O" + std::to_string(o))];
      EXPECT_EQ(cell == "x", expected) << topics[i].topic << " O" << o;
    }
  }
}

TEST(CourseStack, PaperAverageStudentStoryHoldsTogether) {
  // Section 5.1's averages: assignments ~8, exam ~7.5, project ~8,
  // passing average 8. Push them through the real formulas.
  const double gp = project_grade(8.0, 8.0, 8.0);
  EXPECT_DOUBLE_EQ(gp, 8.0);
  // Assignment points scaled to grade 8 for a team of two: 0.8 * 36 pts.
  const double ga = assignments_grade(
      {0.8 * 10, 0.8 * 9, 0.8 * 11, 0.8 * 12}, 2);
  EXPECT_NEAR(ga, 9.33, 0.01);  // slack: 42-point pool over a 36 divisor
  const double final = final_grade(gp, ga, 7.5, 20.0);
  EXPECT_GT(final, 7.5);
  EXPECT_LT(final, 9.5);
  EXPECT_TRUE(passes(final));
}

TEST(CourseStack, EverythingRendersWithoutThrowing) {
  EXPECT_FALSE(figure1_table().render().empty());
  EXPECT_FALSE(figure1_ascii().empty());
  EXPECT_FALSE(table1().render().empty());
  EXPECT_FALSE(table2a().render().empty());
  EXPECT_FALSE(table2b().render().empty());
  EXPECT_FALSE(students_csv().empty());
  EXPECT_FALSE(metrics_csv().empty());
}

}  // namespace
