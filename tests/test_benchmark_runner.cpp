// Tests for the measurement harness in perfeng/measure/benchmark_runner.hpp.
#include "perfeng/measure/benchmark_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "perfeng/common/error.hpp"

namespace {

pe::MeasurementConfig fast_config() {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 3;
  cfg.min_batch_seconds = 1e-4;
  return cfg;
}

TEST(BenchmarkRunner, RecordsRequestedRepetitions) {
  pe::BenchmarkRunner runner(fast_config());
  const auto m = runner.run("noop", [] {});
  EXPECT_EQ(m.seconds.size(), 3u);
  EXPECT_EQ(m.label, "noop");
  EXPECT_EQ(m.summary.count, 3u);
}

TEST(BenchmarkRunner, BatchGrowsForFastKernels) {
  pe::BenchmarkRunner runner(fast_config());
  const auto m = runner.run("noop", [] {});
  EXPECT_GT(m.batch_iterations, 1u);
}

TEST(BenchmarkRunner, SlowKernelsUseSmallBatches) {
  pe::BenchmarkRunner runner(fast_config());
  const auto m = runner.run("sleepy", [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  EXPECT_EQ(m.batch_iterations, 1u);
  EXPECT_GE(m.typical(), 0.0015);
}

TEST(BenchmarkRunner, WarmupRunsExecuteBeforeTiming) {
  std::atomic<int> calls{0};
  pe::MeasurementConfig cfg = fast_config();
  cfg.warmup_runs = 5;
  cfg.max_batch_iterations = 1;  // pin the batch to isolate the count
  pe::BenchmarkRunner runner(cfg);
  (void)runner.run("counted", [&calls] { ++calls; });
  // 5 warmups + 1 calibration batch + 3 timed batches of 1.
  EXPECT_EQ(calls.load(), 9);
}

TEST(BenchmarkRunner, BestNeverExceedsTypical) {
  pe::BenchmarkRunner runner(fast_config());
  const auto m = runner.run("noop", [] {
    volatile int x = 0;
    for (int i = 0; i < 100; ++i) x = x + i;
  });
  EXPECT_LE(m.best(), m.typical());
  EXPECT_GT(m.best(), 0.0);
}

TEST(BenchmarkRunner, NullKernelRejected) {
  pe::BenchmarkRunner runner(fast_config());
  EXPECT_THROW((void)runner.run("null", std::function<void()>{}), pe::Error);
}

TEST(BenchmarkRunner, InvalidConfigsRejected) {
  pe::MeasurementConfig bad = fast_config();
  bad.repetitions = 0;
  EXPECT_THROW(pe::BenchmarkRunner{bad}, pe::Error);
  bad = fast_config();
  bad.warmup_runs = -1;
  EXPECT_THROW(pe::BenchmarkRunner{bad}, pe::Error);
  bad = fast_config();
  bad.min_batch_seconds = 0.0;
  EXPECT_THROW(pe::BenchmarkRunner{bad}, pe::Error);
}

TEST(BenchmarkRunner, RunWithSetupCallsSetupBeforeEveryKernel) {
  pe::BenchmarkRunner runner(fast_config());
  int setups = 0, kernels = 0;
  bool ordered = true;
  (void)runner.run_with_setup(
      "paired", [&] { ++setups; },
      [&] {
        ++kernels;
        if (setups != kernels) ordered = false;
      });
  EXPECT_EQ(setups, kernels);
  EXPECT_TRUE(ordered);
  EXPECT_GT(kernels, 0);
}

TEST(BenchmarkRunner, MeasurementSummaryConsistent) {
  pe::BenchmarkRunner runner(fast_config());
  const auto m = runner.run("noop", [] {});
  EXPECT_LE(m.summary.min, m.summary.median);
  EXPECT_LE(m.summary.median, m.summary.max);
}

}  // namespace
