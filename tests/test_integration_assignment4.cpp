// Integration test: the Assignment 4 flow — run the synthetic pattern
// kernels, collect (simulated) counters and timings, and confirm each
// pattern is detected in its broken variant and absent after the fix.
#include <gtest/gtest.h>

#include "perfeng/counters/patterns.hpp"
#include "perfeng/counters/simulated_counters.hpp"
#include "perfeng/kernels/pattern_kernels.hpp"
#include "perfeng/kernels/traces.hpp"
#include "perfeng/measure/benchmark_runner.hpp"

namespace {

using namespace pe::counters;

pe::sim::CacheHierarchy hierarchy() {
  std::vector<pe::sim::LevelSpec> specs;
  specs.push_back({pe::sim::CacheConfig{"L1", 8 * 1024, 64, 8}, 4.0});
  specs.push_back({pe::sim::CacheConfig{"L2", 64 * 1024, 64, 8}, 12.0});
  return pe::sim::CacheHierarchy(std::move(specs), 200.0);
}

TEST(Assignment4, StridedPatternDetectedAndFixedBySequentialAccess) {
  auto h = hierarchy();
  const std::size_t elements = 1 << 14;

  const auto broken = collect(
      h, [&] { pe::kernels::trace_strided(h, elements, 16); });
  const auto fixed = collect(
      h, [&] { pe::kernels::trace_strided(h, elements, 1); });

  EXPECT_TRUE(detect_bad_spatial_locality(broken).detected);
  EXPECT_FALSE(detect_bad_spatial_locality(fixed).detected);
}

TEST(Assignment4, BranchPatternDetectedAndFixedBySorting) {
  pe::Rng rng(4);
  const auto random = pe::kernels::random_doubles(30000, rng);
  const auto sorted = pe::kernels::sorted_doubles(30000, rng);

  pe::sim::BranchPredictor broken_pred, fixed_pred;
  pe::kernels::trace_branchy(broken_pred, random, 0.5);
  pe::kernels::trace_branchy(fixed_pred, sorted, 0.5);

  EXPECT_TRUE(
      detect_branch_unpredictability(from_branches(broken_pred.stats()))
          .detected);
  EXPECT_FALSE(
      detect_branch_unpredictability(from_branches(fixed_pred.stats()))
          .detected);
}

TEST(Assignment4, ImbalancePatternDetectedAndFixedByDynamicScheduling) {
  // Static scheduling of triangular work: the last block holds most of
  // the work. Model the per-worker busy time analytically (sum of task
  // costs per static block vs the dynamic ideal).
  const std::size_t tasks = 1000, workers = 4;
  std::vector<double> static_times(workers, 0.0);
  const std::size_t block = (tasks + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    for (std::size_t i = w * block;
         i < std::min(tasks, (w + 1) * block); ++i) {
      static_times[w] += double(i);
    }
  }
  const double total = 999.0 * 1000.0 / 2.0;
  const std::vector<double> dynamic_times(workers, total / workers);

  EXPECT_TRUE(detect_load_imbalance(static_times).detected);
  EXPECT_FALSE(detect_load_imbalance(dynamic_times).detected);
}

TEST(Assignment4, FalseSharingDetectedFromAbTimings) {
  // Use the A/B rule with synthetic timings shaped like the classic
  // measurement (padding gives a big win on real multicore hardware).
  EXPECT_TRUE(detect_false_sharing(1.0, 0.4).detected);
  EXPECT_FALSE(detect_false_sharing(1.0, 0.95).detected);

  // And the kernels themselves agree semantically regardless of layout.
  pe::ThreadPool pool(2);
  EXPECT_EQ(pe::kernels::false_sharing_counters(pool, 5000),
            pe::kernels::padded_counters(pool, 5000));
}

TEST(Assignment4, FullDiagnosticsBundle) {
  auto h = hierarchy();
  Diagnostics d;
  d.counters = collect(h, [&] {
    pe::kernels::trace_strided(h, 1 << 14, 16);
  });
  d.per_worker_seconds = {1.0, 1.0, 1.0, 3.5};
  d.shared_seconds = 1.0;
  d.padded_seconds = 0.3;
  d.achieved_bandwidth = 9.5e9;
  d.sustainable_bandwidth = 1e10;

  const auto reports = detect_all(d);
  ASSERT_EQ(reports.size(), 4u);  // no branch counters in the bundle
  int detected = 0;
  for (const auto& r : reports) {
    if (r.detected) ++detected;
  }
  EXPECT_EQ(detected, 4);  // every seeded pattern found
}

}  // namespace
