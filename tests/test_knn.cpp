// Tests for the kNN regressor in perfeng/statmodel/knn.hpp.
#include "perfeng/statmodel/knn.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

using pe::statmodel::Dataset;
using pe::statmodel::KnnRegressor;

Dataset grid() {
  Dataset d({"x"});
  for (double x = 0.0; x <= 10.0; x += 1.0) d.add_row({x}, 2.0 * x);
  return d;
}

TEST(Knn, ExactTrainingPointIsReturnedVerbatim) {
  KnnRegressor model(3);
  model.fit(grid());
  EXPECT_DOUBLE_EQ(model.predict({4.0}), 8.0);
}

TEST(Knn, InterpolatesBetweenNeighbours) {
  KnnRegressor model(2);
  model.fit(grid());
  // Halfway between 4 and 5: neighbours contribute equally.
  EXPECT_NEAR(model.predict({4.5}), 9.0, 1e-9);
}

TEST(Knn, CloserNeighbourWeighsMore) {
  KnnRegressor model(2);
  model.fit(grid());
  const double near4 = model.predict({4.1});
  EXPECT_GT(near4, 8.0);
  EXPECT_LT(near4, 9.0);
  EXPECT_LT(near4 - 8.0, 9.0 - near4);  // pulled toward y(4) = 8
}

TEST(Knn, KOneIsNearestNeighbour) {
  KnnRegressor model(1);
  model.fit(grid());
  EXPECT_DOUBLE_EQ(model.predict({4.4}), 8.0);
  EXPECT_DOUBLE_EQ(model.predict({4.6}), 10.0);
}

TEST(Knn, KLargerThanDatasetUsesAllPoints) {
  Dataset d({"x"});
  d.add_row({0.0}, 0.0);
  d.add_row({1.0}, 10.0);
  KnnRegressor model(50);
  model.fit(d);
  EXPECT_NEAR(model.predict({0.5}), 5.0, 1e-9);
}

TEST(Knn, MultiDimensionalDistance) {
  Dataset d({"a", "b"});
  d.add_row({0.0, 0.0}, 1.0);
  d.add_row({10.0, 10.0}, 2.0);
  KnnRegressor model(1);
  model.fit(d);
  EXPECT_DOUBLE_EQ(model.predict({1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(model.predict({9.0, 9.0}), 2.0);
}

TEST(Knn, Validation) {
  EXPECT_THROW(KnnRegressor(0), pe::Error);
  KnnRegressor model(1);
  EXPECT_THROW((void)model.predict({1.0}), pe::Error);  // before fit
  model.fit(grid());
  EXPECT_THROW((void)model.predict({1.0, 2.0}), pe::Error);  // wrong width
}

TEST(Knn, Describe) {
  EXPECT_EQ(KnnRegressor(5).describe(), "knn(k=5)");
}

}  // namespace
