// Tests for the polyhedral-lite dependence analysis in perfeng/poly.
#include "perfeng/poly/dependence.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

using namespace pe::poly;

TEST(Affine, Evaluation) {
  const AffineExpr e{{2, -1}, 3};  // 2i - j + 3
  EXPECT_EQ(e.eval({1, 2}), 3);
  EXPECT_EQ(e.eval({0, 0}), 3);
  EXPECT_THROW((void)e.eval({1}), pe::Error);
}

TEST(Lex, PositiveAndNegative) {
  EXPECT_TRUE(lex_positive({0, 0, 1}));
  EXPECT_TRUE(lex_positive({1, -5, 0}));
  EXPECT_FALSE(lex_positive({0, 0, 0}));
  EXPECT_FALSE(lex_positive({-1, 5, 5}));
  EXPECT_TRUE(lex_negative({0, -1, 3}));
  EXPECT_FALSE(lex_negative({0, 0, 0}));
}

TEST(LoopNest, Validation) {
  EXPECT_THROW(LoopNest({}), pe::Error);
  EXPECT_THROW(LoopNest({{"i", 5, 5}}), pe::Error);  // empty loop
  LoopNest nest({{"i", 0, 4}});
  EXPECT_THROW(nest.add_access({"A", {AffineExpr{{1, 1}, 0}}, false}),
               pe::Error);  // arity mismatch
}

TEST(Matmul, AccumulationCarriesOnlyK) {
  const LoopNest nest = LoopNest::matmul(4);
  const auto deps = nest.analyze();
  ASSERT_FALSE(deps.empty());
  for (const auto& d : deps) {
    EXPECT_EQ(d.array, "C");  // A and B are read-only
    // Every dependence direction must be (0, 0, +1): carried by k alone.
    ASSERT_EQ(d.direction.size(), 3u);
    EXPECT_EQ(d.direction[0], 0);
    EXPECT_EQ(d.direction[1], 0);
    EXPECT_EQ(d.direction[2], 1);
  }
  // Flow (write C then read C), anti (read then write), and output
  // (write then write) dependences all appear.
  bool flow = false, anti = false, output = false;
  for (const auto& d : deps) {
    flow |= d.kind == DepKind::kFlow;
    anti |= d.kind == DepKind::kAnti;
    output |= d.kind == DepKind::kOutput;
  }
  EXPECT_TRUE(flow);
  EXPECT_TRUE(anti);
  EXPECT_TRUE(output);
}

TEST(Matmul, AllLoopPermutationsLegal) {
  const LoopNest nest = LoopNest::matmul(3);
  const std::vector<std::vector<std::size_t>> perms = {
      {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (const auto& p : perms) {
    EXPECT_TRUE(nest.interchange_legal(p))
        << p[0] << p[1] << p[2];
  }
}

TEST(Matmul, FullyPermutableHenceTilable) {
  EXPECT_TRUE(LoopNest::matmul(3).tilable());
}

TEST(Jacobi2d, HasNoLoopCarriedDependences) {
  const LoopNest nest = LoopNest::jacobi2d(6);
  EXPECT_TRUE(nest.analyze().empty());
  EXPECT_TRUE(nest.tilable());
  EXPECT_TRUE(nest.interchange_legal({1, 0}));
}

TEST(Seidel2d, CarriesDependencesInBothLoops) {
  const LoopNest nest = LoopNest::seidel2d(6);
  const auto deps = nest.analyze();
  ASSERT_FALSE(deps.empty());
  // The classic distances: (1,0) and (0,1) flow deps (and (1,-1) etc. as
  // anti); at minimum a (0,1) and a (1,*) dependence must appear.
  bool row_carried = false, col_carried = false;
  for (const auto& d : deps) {
    if (d.direction[0] == 1) row_carried = true;
    if (d.direction[0] == 0 && d.direction[1] == 1) col_carried = true;
  }
  EXPECT_TRUE(row_carried);
  EXPECT_TRUE(col_carried);
}

TEST(Seidel2d, InterchangeStillLegalButNotTilable) {
  const LoopNest nest = LoopNest::seidel2d(6);
  // Seidel's (1,-1) anti/flow component blocks rectangular tiling...
  EXPECT_FALSE(nest.tilable());
  // ...and also makes plain interchange illegal: (1,-1) becomes (-1,1).
  EXPECT_FALSE(nest.interchange_legal({1, 0}));
  EXPECT_TRUE(nest.interchange_legal({0, 1}));  // identity is always legal
}

TEST(Interchange, PermutationValidated) {
  const LoopNest nest = LoopNest::matmul(3);
  EXPECT_THROW((void)nest.interchange_legal({0, 1}), pe::Error);
  EXPECT_THROW((void)nest.interchange_legal({0, 0, 1}), pe::Error);
  EXPECT_THROW((void)nest.interchange_legal({0, 1, 5}), pe::Error);
}

TEST(Analyze, UniformFlagForConstantDistances) {
  // a[i] = a[i-1]: a single uniform flow dependence at distance 1.
  LoopNest nest({{"i", 1, 8}});
  nest.add_access({"a", {AffineExpr{{1}, 0}}, true});
  nest.add_access({"a", {AffineExpr{{1}, -1}}, false});
  const auto deps = nest.analyze();
  bool found_uniform_flow = false;
  for (const auto& d : deps) {
    if (d.kind == DepKind::kFlow && d.uniform &&
        d.distance == std::vector<long>{1}) {
      found_uniform_flow = true;
    }
  }
  EXPECT_TRUE(found_uniform_flow);
  EXPECT_FALSE(nest.interchange_legal({0}) == false);  // identity legal
}

TEST(Analyze, ReadOnlyNestHasNoDependences) {
  LoopNest nest({{"i", 0, 4}});
  nest.add_access({"a", {AffineExpr{{1}, 0}}, false});
  nest.add_access({"a", {AffineExpr{{1}, -1}}, false});
  EXPECT_TRUE(nest.analyze().empty());
}

TEST(Analyze, DistinctArraysNeverConflict) {
  LoopNest nest({{"i", 0, 4}});
  nest.add_access({"a", {AffineExpr{{1}, 0}}, true});
  nest.add_access({"b", {AffineExpr{{1}, 0}}, false});
  EXPECT_TRUE(nest.analyze().empty());
}

TEST(Transform, IdentityIsAlwaysLegal) {
  const std::vector<std::vector<long>> identity = {{1, 0}, {0, 1}};
  EXPECT_TRUE(LoopNest::seidel2d(6).transform_legal(identity));
  EXPECT_TRUE(LoopNest::jacobi2d(6).transform_legal(identity));
}

TEST(Transform, SkewingMakesSeidelTilable) {
  // The classic result: seidel-2d carries (1,-1); the skew
  // (i, j) -> (i, i + j) maps it to (1, 0) — fully permutable.
  const LoopNest nest = LoopNest::seidel2d(6);
  const std::vector<std::vector<long>> skew = {{1, 0}, {1, 1}};
  EXPECT_FALSE(nest.tilable());
  EXPECT_TRUE(nest.transform_legal(skew));
  EXPECT_TRUE(nest.transform_makes_tilable(skew));
}

TEST(Transform, ReversalIsIllegalOnCarriedLoops) {
  // Reversing the outer loop flips the (1, 0) dependences.
  const std::vector<std::vector<long>> reverse_outer = {{-1, 0}, {0, 1}};
  EXPECT_FALSE(LoopNest::seidel2d(6).transform_legal(reverse_outer));
  // On a dependence-free nest any unimodular transform is legal.
  EXPECT_TRUE(LoopNest::jacobi2d(6).transform_legal(reverse_outer));
}

TEST(Transform, InterchangeMatrixMatchesInterchangeCheck) {
  const LoopNest nest = LoopNest::seidel2d(6);
  const std::vector<std::vector<long>> swap = {{0, 1}, {1, 0}};
  EXPECT_EQ(nest.transform_legal(swap), nest.interchange_legal({1, 0}));
}

TEST(Transform, ShapeValidated) {
  const LoopNest nest = LoopNest::matmul(3);
  EXPECT_THROW((void)nest.transform_legal({{1, 0}, {0, 1}}), pe::Error);
  EXPECT_THROW(
      (void)nest.transform_makes_tilable({{1, 0, 0}, {0, 1, 0}}),
      pe::Error);
}

TEST(Analyze, ReductionOnScalarCell) {
  // s[0] += ... : every iteration writes the same cell -> all-direction
  // dependences carried by the single loop.
  LoopNest nest({{"i", 0, 4}});
  nest.add_access({"s", {AffineExpr{{0}, 0}}, true});
  nest.add_access({"s", {AffineExpr{{0}, 0}}, false});
  const auto deps = nest.analyze();
  ASSERT_FALSE(deps.empty());
  for (const auto& d : deps) {
    EXPECT_EQ(d.direction[0], 1);
    EXPECT_FALSE(d.uniform);  // distances 1..3 share direction (+1)
  }
}

}  // namespace
