// Tests for the hardware counter backend in perfeng/counters.
// In environments without perf_event access the backend must degrade
// gracefully — that graceful path is itself under test.
#include "perfeng/counters/perf_backend.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"
#include "perfeng/measure/timer.hpp"

namespace {

using pe::counters::PerfBackend;

TEST(PerfBackend, AvailabilityIsConsistentWithReason) {
  if (PerfBackend::available()) {
    EXPECT_TRUE(PerfBackend::unavailable_reason().empty());
  } else {
    EXPECT_FALSE(PerfBackend::unavailable_reason().empty());
  }
}

TEST(PerfBackend, MeasureThrowsOrCounts) {
  auto work = [] {
    volatile double acc = 1.0;
    for (int i = 0; i < 100000; ++i) acc = acc * 1.0000001 + 1e-9;
    pe::do_not_optimize(acc);
  };
  if (!PerfBackend::available()) {
    EXPECT_THROW((void)PerfBackend::measure(work), pe::Error);
    return;
  }
  const auto counters = PerfBackend::measure(work);
  // The loop retires at least one instruction per iteration.
  EXPECT_GE(counters.get_or_zero(pe::counters::kInstructions), 100000u);
}

TEST(PerfBackend, NullWorkloadRejected) {
  EXPECT_THROW((void)PerfBackend::measure(nullptr), pe::Error);
}

TEST(PerfBackend, UnavailableReasonMentionsPerf) {
  if (PerfBackend::available()) GTEST_SKIP() << "perf available here";
  EXPECT_NE(PerfBackend::unavailable_reason().find("perf"),
            std::string::npos);
}

}  // namespace
