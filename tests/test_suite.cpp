// Tests for the benchmark-suite scoring in perfeng/measure/suite.hpp.
#include "perfeng/measure/suite.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "perfeng/common/error.hpp"

namespace {

pe::BenchmarkSuite three_member_suite() {
  pe::BenchmarkSuite suite("toy");
  suite.add({"a", [] {}, 1.0});
  suite.add({"b", [] {}, 2.0});
  suite.add({"c", [] {}, 4.0});
  return suite;
}

TEST(Suite, GeometricMeanOfRatios) {
  const auto suite = three_member_suite();
  // Measured: 0.5, 2.0, 4.0 -> ratios 2.0, 1.0, 1.0.
  const auto score = suite.score({0.5, 2.0, 4.0});
  EXPECT_NEAR(score.geometric_mean_ratio, std::cbrt(2.0), 1e-12);
  EXPECT_NEAR(score.arithmetic_mean_ratio, 4.0 / 3.0, 1e-12);
  ASSERT_EQ(score.results.size(), 3u);
  EXPECT_DOUBLE_EQ(score.results[0].ratio, 2.0);
}

TEST(Suite, GeometricMeanIsReferenceIndependent) {
  // The SPEC lesson: with geometric means, the A-vs-B ranking does not
  // depend on the reference times; with arithmetic means it can.
  pe::BenchmarkSuite ref1("r1"), ref2("r2");
  ref1.add({"x", [] {}, 1.0});
  ref1.add({"y", [] {}, 1.0});
  ref2.add({"x", [] {}, 10.0});
  ref2.add({"y", [] {}, 0.1});

  const std::vector<double> machine_a = {0.5, 2.0};
  const std::vector<double> machine_b = {2.0, 0.5};
  const double gm_ratio_ref1 =
      ref1.score(machine_a).geometric_mean_ratio /
      ref1.score(machine_b).geometric_mean_ratio;
  const double gm_ratio_ref2 =
      ref2.score(machine_a).geometric_mean_ratio /
      ref2.score(machine_b).geometric_mean_ratio;
  EXPECT_NEAR(gm_ratio_ref1, gm_ratio_ref2, 1e-12);
}

TEST(Suite, ArithmeticMeanFlipsWithReference) {
  pe::BenchmarkSuite ref1("r1"), ref2("r2");
  ref1.add({"x", [] {}, 1.0});
  ref1.add({"y", [] {}, 1.0});
  ref2.add({"x", [] {}, 10.0});
  ref2.add({"y", [] {}, 0.1});
  const std::vector<double> machine_a = {0.5, 2.0};
  const std::vector<double> machine_b = {2.0, 0.5};
  const bool a_wins_ref1 = ref1.score(machine_a).arithmetic_mean_ratio >
                           ref1.score(machine_b).arithmetic_mean_ratio;
  const bool a_wins_ref2 = ref2.score(machine_a).arithmetic_mean_ratio >
                           ref2.score(machine_b).arithmetic_mean_ratio;
  EXPECT_NE(a_wins_ref1, a_wins_ref2);  // the ranking flips
}

TEST(Suite, RegressionsListed) {
  const auto score = three_member_suite().score({2.0, 1.0, 8.0});
  EXPECT_EQ(score.regressions(),
            (std::vector<std::string>{"a", "c"}));
}

TEST(Suite, RunMeasuresEveryMember) {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 0;
  cfg.repetitions = 2;
  cfg.min_batch_seconds = 1e-5;
  pe::BenchmarkSuite suite("live");
  suite.add({"spin", [] {
               volatile int x = 0;
               for (int i = 0; i < 1000; ++i) x = x + i;
             },
             1e-6});
  const auto score = suite.run(pe::BenchmarkRunner(cfg));
  ASSERT_EQ(score.results.size(), 1u);
  EXPECT_GT(score.results[0].seconds, 0.0);
  EXPECT_GT(score.geometric_mean_ratio, 0.0);
}

TEST(Suite, Validation) {
  pe::BenchmarkSuite suite("v");
  EXPECT_THROW(suite.add({"a", nullptr, 1.0}), pe::Error);
  EXPECT_THROW(suite.add({"a", [] {}, 0.0}), pe::Error);
  EXPECT_THROW(suite.add({"a", [] {}, -1.0}), pe::Error);
  EXPECT_THROW(suite.add({"", [] {}, 1.0}), pe::Error);
  suite.add({"a", [] {}, 1.0});
  EXPECT_THROW(suite.add({"a", [] {}, 1.0}), pe::Error);  // duplicate
  EXPECT_THROW((void)suite.score({1.0, 2.0}), pe::Error);  // wrong arity
  EXPECT_THROW((void)suite.score({0.0}), pe::Error);       // bad time
  pe::BenchmarkSuite empty("e");
  EXPECT_THROW((void)empty.score({}), pe::Error);
}

TEST(Suite, ThrowingMemberIsCapturedNotPropagated) {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 0;
  cfg.repetitions = 2;
  cfg.min_batch_seconds = 1e-9;
  pe::BenchmarkSuite suite("flaky");
  suite.add({"ok", [] {}, 1.0});
  suite.add({"doomed", [] { throw pe::Error("member blew up"); }, 1.0});
  suite.add({"fine", [] {}, 1.0});
  const auto score = suite.run(pe::BenchmarkRunner(cfg));
  EXPECT_FALSE(score.complete());
  ASSERT_EQ(score.failed.size(), 1u);
  EXPECT_EQ(score.failed[0].name, "doomed");
  EXPECT_NE(score.failed[0].error.find("blew up"), std::string::npos);
  ASSERT_EQ(score.results.size(), 2u);  // survivors, in suite order
  EXPECT_EQ(score.results[0].name, "ok");
  EXPECT_EQ(score.results[1].name, "fine");
  EXPECT_GT(score.geometric_mean_ratio, 0.0);  // partial score
}

TEST(Suite, AllMembersFailingGivesEmptyPartialScore) {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 0;
  cfg.repetitions = 2;
  cfg.min_batch_seconds = 1e-9;
  pe::BenchmarkSuite suite("doomed");
  suite.add({"x", [] { throw pe::Error("x down"); }, 1.0});
  suite.add({"y", [] { throw pe::Error("y down"); }, 1.0});
  const auto score = suite.run(pe::BenchmarkRunner(cfg));
  EXPECT_EQ(score.failed.size(), 2u);
  EXPECT_TRUE(score.results.empty());
  EXPECT_EQ(score.geometric_mean_ratio, 0.0);
  EXPECT_EQ(score.arithmetic_mean_ratio, 0.0);
}

TEST(Suite, MachineProvenanceTravelsWithTheScore) {
  pe::machine::Machine m;
  m.name = "score-node";
  m.peak_flops = 1e10;
  m.hierarchy = {{"DRAM", 2e10, 0.0, 0, 64}};

  auto suite = three_member_suite();
  EXPECT_TRUE(suite.machine_name().empty());
  suite.set_machine(m);
  EXPECT_EQ(suite.machine_name(), "score-node");

  const auto score = suite.score({1.0, 2.0, 4.0});
  EXPECT_EQ(score.machine_name, "score-node");
  EXPECT_EQ(score.calibration_hash, m.calibration_hash());

  // A suite without a machine produces an unattributed score.
  const auto anonymous = three_member_suite().score({1.0, 2.0, 4.0});
  EXPECT_TRUE(anonymous.machine_name.empty());
  EXPECT_TRUE(anonymous.calibration_hash.empty());
}

}  // namespace
