// Integration test: the Assignment 2 model stack — per-op costs feed the
// instruction-level matmul model; the pipeline simulator explains the
// latency-vs-throughput distinction those costs encode; the ECM bracket
// contains the traffic model's prediction. Deterministic end to end
// (synthetic op costs, no wall-clock dependence).
#include <gtest/gtest.h>

#include "perfeng/models/analytical.hpp"
#include "perfeng/models/ecm.hpp"
#include "perfeng/sim/pipeline_sim.hpp"

namespace {

using pe::models::Calibration;
using pe::models::MatmulModel;
using pe::models::MatmulVariant;

// A synthetic machine: 1 GHz core, FMA latency 4 cycles, 2 FMA ports.
constexpr double kCycle = 1e-9;
constexpr double kFmaLatency = 4.0;
constexpr int kFmaPorts = 2;

pe::microbench::OpCostTable synthetic_ops() {
  pe::microbench::OpCostTable ops;
  ops.set_cost(pe::microbench::Op::kFma,
               {kFmaLatency * kCycle, kCycle / kFmaPorts});
  return ops;
}

TEST(Assignment2, InstructionModelMatchesPipelineSimulator) {
  // The analytical instruction-level model says: naive (single dependent
  // chain) costs the FMA latency per step; interchanged costs the
  // throughput. The cycle-accurate pipeline simulator must agree.
  const auto ops = synthetic_ops();
  Calibration calib;
  const std::size_t n = 64;
  const double steps = double(n) * n * n;

  const MatmulModel naive(n, MatmulVariant::kNaiveIjk, calib);
  const MatmulModel ikj(n, MatmulVariant::kInterchangedIkj, calib);

  // One carried chain: simulator gives 4 cycles/step.
  const auto latency_report =
      pe::sim::PipelineSimulator::fma_reduction(1, kFmaPorts, kFmaLatency)
          .run();
  EXPECT_NEAR(naive.predict_instruction(ops),
              steps * latency_report.cycles_per_iteration * kCycle,
              steps * kCycle * 0.1);

  // Many chains: simulator reaches the 2-port throughput of 0.5
  // cycles/step.
  const auto throughput_report =
      pe::sim::PipelineSimulator::fma_reduction(8, kFmaPorts, kFmaLatency)
          .run();
  const double sim_per_step =
      throughput_report.cycles_per_iteration / 8.0;
  EXPECT_NEAR(ikj.predict_instruction(ops), steps * sim_per_step * kCycle,
              steps * kCycle * 0.1);
}

TEST(Assignment2, EcmBracketsTheTrafficModel) {
  // Compose an ECM model from the same calibration the traffic model
  // uses: its [overlapped, serial] window must contain the Roofline-style
  // prediction (max composition) by construction, for every variant.
  Calibration calib;
  for (const auto variant :
       {MatmulVariant::kNaiveIjk, MatmulVariant::kInterchangedIkj,
        MatmulVariant::kTiled}) {
    const MatmulModel model(1024, variant, calib);
    pe::models::EcmModel ecm(model.predict_coarse());
    ecm.add_transfer("MEM", "core",
                     model.dram_bytes() / calib.dram_bandwidth);
    const double traffic = model.predict_traffic();
    EXPECT_GE(traffic, ecm.predict_overlapped() * 0.999)
        << static_cast<int>(variant);
    EXPECT_LE(traffic, ecm.predict_serial() * 1.001)
        << static_cast<int>(variant);
  }
}

TEST(Assignment2, GranularityLadderOrdersErrorsOnASyntheticTruth) {
  // Construct a "ground truth" runtime that follows the traffic model,
  // then check the coarse model under-predicts the naive variant while
  // the traffic model is exact — the granularity lesson in miniature.
  Calibration calib;
  const std::size_t n = 2048;  // beyond cache: variants diverge
  const MatmulModel naive(n, MatmulVariant::kNaiveIjk, calib);
  const double truth = naive.predict_traffic();
  const double coarse_error =
      std::abs(naive.predict_coarse() - truth) / truth;
  EXPECT_GT(coarse_error, 0.5);  // coarse misses the traffic blowup
  EXPECT_DOUBLE_EQ(naive.predict_traffic(), truth);
}

}  // namespace
