// Tests for the resilient BenchmarkRunner: watchdog deadline, predictive
// calibration abort, and retry-on-noise.
#include "perfeng/measure/benchmark_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "perfeng/resilience/fault_injection.hpp"
#include "perfeng/resilience/measurement_error.hpp"

namespace {

using pe::BenchmarkRunner;
using pe::MeasurementConfig;
using pe::resilience::FailureKind;
using pe::resilience::FaultKind;
using pe::resilience::FaultPlan;
using pe::resilience::MeasurementError;
using pe::resilience::ScopedFaultInjection;

MeasurementConfig fast_config() {
  MeasurementConfig cfg;
  cfg.warmup_runs = 0;
  cfg.repetitions = 4;
  cfg.min_batch_seconds = 1e-9;
  return cfg;
}

TEST(ResilientRunner, ConfigValidation) {
  MeasurementConfig cfg;
  cfg.deadline_seconds = -1.0;
  EXPECT_THROW(BenchmarkRunner{cfg}, pe::Error);
  cfg = {};
  cfg.retry.max_attempts = 0;
  EXPECT_THROW(BenchmarkRunner{cfg}, pe::Error);
}

TEST(ResilientRunner, DefaultPolicyIsSingleStableAttempt) {
  const BenchmarkRunner runner(fast_config());
  volatile double sink = 0.0;
  const auto m = runner.run("noop", [&] { sink = sink + 1.0; });
  EXPECT_EQ(m.attempts, 1);
  EXPECT_TRUE(m.stable);
  EXPECT_GE(m.summary.cv, 0.0);
}

TEST(ResilientRunner, WatchdogAbortsRunawayKernel) {
  MeasurementConfig cfg = fast_config();
  cfg.deadline_seconds = 0.25;
  const BenchmarkRunner runner(cfg);
  // The watchdog abandons the helper thread on timeout, so the kernel must
  // never return into the (by then destroyed) measurement frames. It spins
  // forever on an intentionally leaked flag, reading only thread-local
  // state after entry; the detached thread dies with the process.
  auto* leaked_flag = new std::atomic<bool>(false);
  try {
    (void)runner.run("runaway", [leaked_flag] {
      std::atomic<bool>* f = leaked_flag;
      while (!f->load(std::memory_order_relaxed)) std::this_thread::yield();
    });
    FAIL() << "expected MeasurementError";
  } catch (const MeasurementError& e) {
    EXPECT_EQ(e.kind(), FailureKind::kTimeout);
    EXPECT_EQ(e.label(), "runaway");
    EXPECT_EQ(e.attempts(), 1);
  }
}

TEST(ResilientRunner, AbandonedSlowKernelFinishesSafely) {
  // Regression: on timeout the abandoned attempt used to write its result
  // through references into the unwound measurement frames (use-after-free
  // caught by the sanitized chaos run). The attempt now owns copies of
  // everything it touches, so a slow-but-*terminating* kernel that blows
  // the deadline mid-warmup runs to completion harmlessly after the
  // runner, label and kernel of the timed-out call are all destroyed.
  auto calls = std::make_shared<std::atomic<int>>(0);
  {
    MeasurementConfig cfg;
    cfg.warmup_runs = 2;  // the deadline expires during warmup
    cfg.repetitions = 1;
    cfg.min_batch_seconds = 1e-9;
    cfg.deadline_seconds = 0.1;
    const BenchmarkRunner runner(cfg);
    EXPECT_THROW((void)runner.run("slow-but-terminating",
                                  [calls] {
                                    ++*calls;
                                    std::this_thread::sleep_for(
                                        std::chrono::milliseconds(80));
                                  }),
                 MeasurementError);
  }
  // 2 warmups + 1 calibration batch + 1 repetition = 4 kernel calls; wait
  // for the abandoned attempt to finish them and write its (now heap-
  // owned) Measurement. Any dangling reference dies here under ASan.
  const pe::WallTimer t;
  while (calls->load() < 4 && t.elapsed() < 5.0)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_GE(calls->load(), 4);
}

TEST(ResilientRunner, CalibrationAbortsPredictively) {
  MeasurementConfig cfg;
  cfg.warmup_runs = 0;
  cfg.repetitions = 2;
  cfg.min_batch_seconds = 5.0;  // unreachable under the deadline
  cfg.deadline_seconds = 0.5;
  const BenchmarkRunner runner(cfg);
  const pe::WallTimer t;
  try {
    (void)runner.run("slow", [] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    });
    FAIL() << "expected MeasurementError";
  } catch (const MeasurementError& e) {
    EXPECT_EQ(e.kind(), FailureKind::kTimeout);
    EXPECT_NE(std::string(e.what()).find("calibration"), std::string::npos);
  }
  // The predictive check fired after the first probe, well before the
  // deadline — no thread was abandoned and no time was wasted.
  EXPECT_LT(t.elapsed(), 0.4);
}

TEST(ResilientRunner, RetryExhaustsAttemptsOnNoisySamples) {
  MeasurementConfig cfg = fast_config();
  cfg.repetitions = 16;
  cfg.retry.max_attempts = 3;
  cfg.retry.cv_threshold = 0.10;
  const BenchmarkRunner runner(cfg);
  // Probabilistic value corruption creates genuine dispersion: roughly half
  // the recorded samples are scaled 50x, so the CV stays far above the
  // threshold on every attempt. (A constant scale on all samples would
  // leave the CV unchanged.)
  FaultPlan plan;
  plan.seed = 42;
  plan.faults.push_back({.site = std::string(pe::fault_sites::kKernelCall),
                         .kind = FaultKind::kCorruptValue,
                         .probability = 0.5,
                         .corrupt_scale = 50.0});
  ScopedFaultInjection scope(std::move(plan));
  volatile double sink = 0.0;
  const auto m = runner.run("noisy", [&] { sink = sink + 1.0; });
  EXPECT_EQ(m.attempts, 3);  // bounded: never exceeds max_attempts
  EXPECT_FALSE(m.stable);
  EXPECT_GT(m.summary.cv, 0.10);
}

TEST(ResilientRunner, FailOnUnstableThrowsStructured) {
  MeasurementConfig cfg = fast_config();
  cfg.repetitions = 16;
  cfg.retry.max_attempts = 2;
  cfg.retry.cv_threshold = 0.10;
  cfg.retry.fail_on_unstable = true;
  const BenchmarkRunner runner(cfg);
  FaultPlan plan;
  plan.seed = 42;
  plan.faults.push_back({.site = std::string(pe::fault_sites::kKernelCall),
                         .kind = FaultKind::kCorruptValue,
                         .probability = 0.5,
                         .corrupt_scale = 50.0});
  ScopedFaultInjection scope(std::move(plan));
  volatile double sink = 0.0;
  try {
    (void)runner.run("noisy", [&] { sink = sink + 1.0; });
    FAIL() << "expected MeasurementError";
  } catch (const MeasurementError& e) {
    EXPECT_EQ(e.kind(), FailureKind::kUnstable);
    EXPECT_EQ(e.attempts(), 2);
  }
}

TEST(ResilientRunner, StableSampleStopsRetrying) {
  MeasurementConfig cfg = fast_config();
  cfg.retry.max_attempts = 5;
  cfg.retry.cv_threshold = 1e9;  // anything passes
  const BenchmarkRunner runner(cfg);
  volatile double sink = 0.0;
  const auto m = runner.run("calm", [&] { sink = sink + 1.0; });
  EXPECT_EQ(m.attempts, 1);
  EXPECT_TRUE(m.stable);
}

TEST(ResilientRunner, KernelFaultsPropagateToCaller) {
  const BenchmarkRunner runner(fast_config());
  FaultPlan plan;
  plan.faults.push_back({.site = std::string(pe::fault_sites::kKernelCall)});
  ScopedFaultInjection scope(std::move(plan));
  EXPECT_THROW((void)runner.run("doomed", [] {}),
               pe::resilience::FaultInjected);
}

}  // namespace
