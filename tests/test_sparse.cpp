// Tests for sparse formats and SpMV in perfeng/kernels/sparse.hpp, plus
// the SELL-C-sigma format and the learned format selector
// (perfeng/kernels/format_select.hpp).
#include "perfeng/kernels/sparse.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>

#include "perfeng/common/error.hpp"
#include "perfeng/kernels/format_select.hpp"

namespace {

using pe::kernels::CooMatrix;
using pe::kernels::CsrMatrix;
using pe::kernels::SparsityPattern;

CooMatrix small_coo() {
  // [ 1 0 2 ]
  // [ 0 3 0 ]
  CooMatrix m;
  m.rows = 2;
  m.cols = 3;
  m.entries = {{0, 2, 2.0}, {1, 1, 3.0}, {0, 0, 1.0}};
  return m;
}

TEST(Coo, NormalizeSortsAndMergesDuplicates) {
  CooMatrix m;
  m.rows = 2;
  m.cols = 2;
  m.entries = {{1, 1, 1.0}, {0, 0, 2.0}, {1, 1, 3.0}};
  m.normalize();
  ASSERT_EQ(m.nnz(), 2u);
  EXPECT_EQ(m.entries[0].row, 0u);
  EXPECT_DOUBLE_EQ(m.entries[1].value, 4.0);
}

TEST(Conversions, CooToCsrLayout) {
  const auto csr = pe::kernels::coo_to_csr(small_coo());
  EXPECT_EQ(csr.rows, 2u);
  EXPECT_EQ(csr.cols, 3u);
  EXPECT_EQ(csr.row_ptr, (std::vector<std::uint32_t>{0, 2, 3}));
  EXPECT_EQ(csr.col_idx, (std::vector<std::uint32_t>{0, 2, 1}));
  EXPECT_EQ(csr.values, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Conversions, CooToCscLayout) {
  const auto csc = pe::kernels::coo_to_csc(small_coo());
  EXPECT_EQ(csc.col_ptr, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(csc.row_idx, (std::vector<std::uint32_t>{0, 1, 0}));
  EXPECT_EQ(csc.values, (std::vector<double>{1.0, 3.0, 2.0}));
}

TEST(Conversions, CsrRoundTripsThroughCoo) {
  const auto csr = pe::kernels::coo_to_csr(small_coo());
  const auto back = pe::kernels::csr_to_coo(csr);
  const auto csr2 = pe::kernels::coo_to_csr(back);
  EXPECT_EQ(csr.row_ptr, csr2.row_ptr);
  EXPECT_EQ(csr.col_idx, csr2.col_idx);
  EXPECT_EQ(csr.values, csr2.values);
}

TEST(Conversions, OutOfBoundsEntryRejected) {
  CooMatrix m;
  m.rows = 2;
  m.cols = 2;
  m.entries = {{5, 0, 1.0}};
  EXPECT_THROW((void)pe::kernels::coo_to_csr(m), pe::Error);
}

TEST(Spmv, KnownProduct) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y(2, -1.0);
  pe::kernels::spmv_coo(small_coo(), x, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);  // 1*1 + 2*3
  EXPECT_DOUBLE_EQ(y[1], 6.0);  // 3*2
}

class SpmvPatterns : public ::testing::TestWithParam<SparsityPattern> {};

TEST_P(SpmvPatterns, AllFormatsAgree) {
  pe::Rng rng(42);
  const auto coo =
      pe::kernels::generate_sparse(200, 150, 0.02, GetParam(), rng);
  const auto csr = pe::kernels::coo_to_csr(coo);
  const auto csc = pe::kernels::coo_to_csc(coo);

  std::vector<double> x(coo.cols);
  for (auto& v : x) v = rng.next_range_double(-1.0, 1.0);

  std::vector<double> y_coo(coo.rows), y_csr(coo.rows), y_csc(coo.rows),
      y_par(coo.rows);
  pe::kernels::spmv_coo(coo, x, y_coo);
  pe::kernels::spmv_csr(csr, x, y_csr);
  pe::kernels::spmv_csc(csc, x, y_csc);
  pe::ThreadPool pool(3);
  pe::kernels::spmv_csr_parallel(csr, x, y_par, pool);

  for (std::size_t r = 0; r < coo.rows; ++r) {
    EXPECT_NEAR(y_csr[r], y_coo[r], 1e-12);
    EXPECT_NEAR(y_csc[r], y_coo[r], 1e-12);
    EXPECT_NEAR(y_par[r], y_coo[r], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Patterns, SpmvPatterns,
                         ::testing::Values(SparsityPattern::kUniform,
                                           SparsityPattern::kBanded,
                                           SparsityPattern::kPowerLaw));

TEST_P(SpmvPatterns, BalancedPartitionCoversRowsMonotonically) {
  pe::Rng rng(7);
  const auto csr = pe::kernels::coo_to_csr(
      pe::kernels::generate_sparse(311, 200, 0.03, GetParam(), rng));
  for (std::size_t parts : {1u, 2u, 3u, 5u, 8u}) {
    const auto bounds = pe::kernels::balanced_row_partition(csr, parts);
    ASSERT_EQ(bounds.size(), parts + 1);
    EXPECT_EQ(bounds.front(), 0u);
    EXPECT_EQ(bounds.back(), csr.rows);
    for (std::size_t p = 0; p < parts; ++p)
      EXPECT_LE(bounds[p], bounds[p + 1]) << parts << "/" << p;
  }
}

TEST(BalancedPartition, EvensOutPowerLawNonzeros) {
  pe::Rng rng(8);
  const auto csr = pe::kernels::coo_to_csr(pe::kernels::generate_sparse(
      600, 600, 0.02, SparsityPattern::kPowerLaw, rng));
  const std::size_t parts = 4;
  const auto bounds = pe::kernels::balanced_row_partition(csr, parts);
  // Naive row-count splits give the first part the heavy head rows; the
  // nonzero-balanced split must keep every part near nnz/parts. A single
  // row can exceed the ideal share, so allow a 2x band plus slack.
  const double ideal = double(csr.nnz()) / double(parts);
  for (std::size_t p = 0; p < parts; ++p) {
    const double part_nnz =
        double(csr.row_ptr[bounds[p + 1]]) - double(csr.row_ptr[bounds[p]]);
    EXPECT_LE(part_nnz, 2.0 * ideal + 64.0) << p;
  }
}

TEST(BalancedPartition, MorePartsThanRows) {
  const auto csr = pe::kernels::coo_to_csr(small_coo());  // 2 rows
  const auto bounds = pe::kernels::balanced_row_partition(csr, 6);
  ASSERT_EQ(bounds.size(), 7u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), csr.rows);
  std::size_t nonempty = 0;
  for (std::size_t p = 0; p < 6; ++p)
    nonempty += (bounds[p + 1] > bounds[p]) ? 1 : 0;
  EXPECT_LE(nonempty, csr.rows);
}

// The balanced kernel promises the exact per-row summation order of the
// serial spmv_csr, so equality here is exact, not tolerance-based.
TEST_P(SpmvPatterns, BalancedSpmvMatchesSerialExactly) {
  pe::Rng rng(21);
  const auto csr = pe::kernels::coo_to_csr(
      pe::kernels::generate_sparse(257, 193, 0.04, GetParam(), rng));
  std::vector<double> x(csr.cols);
  for (auto& v : x) v = rng.next_range_double(-1.0, 1.0);
  std::vector<double> y_serial(csr.rows), y_bal(csr.rows, -7.0);
  pe::kernels::spmv_csr(csr, x, y_serial);
  pe::ThreadPool pool(3);
  pe::kernels::spmv_csr_parallel_balanced(csr, x, y_bal, pool);
  for (std::size_t r = 0; r < csr.rows; ++r)
    EXPECT_EQ(y_bal[r], y_serial[r]) << r;
}

TEST(Spmv, BalancedHandlesTinyAndSingleRowMatrices) {
  pe::ThreadPool pool(4);
  const auto csr = pe::kernels::coo_to_csr(small_coo());
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y(csr.rows);
  pe::kernels::spmv_csr_parallel_balanced(csr, x, y, pool);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);

  CooMatrix one;
  one.rows = 1;
  one.cols = 4;
  one.entries = {{0, 0, 2.0}, {0, 3, 5.0}};
  const auto csr1 = pe::kernels::coo_to_csr(one);
  std::vector<double> x1 = {1.0, 1.0, 1.0, 10.0}, y1(1);
  pe::kernels::spmv_csr_parallel_balanced(csr1, x1, y1, pool);
  EXPECT_DOUBLE_EQ(y1[0], 52.0);
}

TEST(Ell, ConversionPadsToMaxDegree) {
  const auto ell = pe::kernels::csr_to_ell(
      pe::kernels::coo_to_csr(small_coo()));
  EXPECT_EQ(ell.rows, 2u);
  EXPECT_EQ(ell.width, 2u);  // row 0 has two entries
  EXPECT_EQ(ell.nnz(), 3u);
  EXPECT_DOUBLE_EQ(ell.padding_ratio(), 4.0 / 3.0);
}

TEST(Ell, SpmvMatchesCsr) {
  pe::Rng rng(11);
  for (const auto pattern :
       {SparsityPattern::kUniform, SparsityPattern::kPowerLaw}) {
    const auto csr = pe::kernels::coo_to_csr(
        pe::kernels::generate_sparse(150, 120, 0.03, pattern, rng));
    const auto ell = pe::kernels::csr_to_ell(csr);
    std::vector<double> x(csr.cols);
    for (auto& v : x) v = rng.next_range_double(-1.0, 1.0);
    std::vector<double> y_csr(csr.rows), y_ell(csr.rows);
    pe::kernels::spmv_csr(csr, x, y_csr);
    pe::kernels::spmv_ell(ell, x, y_ell);
    for (std::size_t r = 0; r < csr.rows; ++r)
      EXPECT_NEAR(y_ell[r], y_csr[r], 1e-12);
  }
}

TEST(Ell, PowerLawMatricesPadBadly) {
  pe::Rng rng(12);
  const auto uniform = pe::kernels::csr_to_ell(pe::kernels::coo_to_csr(
      pe::kernels::generate_sparse(400, 400, 0.01,
                                   SparsityPattern::kUniform, rng)));
  const auto skewed = pe::kernels::csr_to_ell(pe::kernels::coo_to_csr(
      pe::kernels::generate_sparse(400, 400, 0.01,
                                   SparsityPattern::kPowerLaw, rng)));
  // Skewed degree distributions waste far more padding — ELL's weakness.
  EXPECT_GT(skewed.padding_ratio(), uniform.padding_ratio() * 2.0);
}

TEST(Spmv, SizeMismatchRejected) {
  const auto csr = pe::kernels::coo_to_csr(small_coo());
  std::vector<double> x(2), y(2);  // x too short
  EXPECT_THROW(pe::kernels::spmv_csr(csr, x, y), pe::Error);
}

TEST(Generator, HitsTargetDensityApproximately) {
  pe::Rng rng(1);
  const auto coo = pe::kernels::generate_sparse(
      300, 300, 0.05, SparsityPattern::kUniform, rng);
  const double density =
      double(coo.nnz()) / (300.0 * 300.0);
  // Duplicates get merged, so achieved density is slightly below target.
  EXPECT_GT(density, 0.03);
  EXPECT_LE(density, 0.055);
}

TEST(Generator, BandedStaysNearDiagonal) {
  pe::Rng rng(2);
  const auto coo = pe::kernels::generate_sparse(
      400, 400, 0.01, SparsityPattern::kBanded, rng);
  for (const auto& t : coo.entries) {
    EXPECT_LT(std::abs(double(t.row) - double(t.col)), 20.0);
  }
}

TEST(Generator, PowerLawSkewsRowDegrees) {
  pe::Rng rng(3);
  const auto uniform = pe::kernels::coo_to_csr(pe::kernels::generate_sparse(
      500, 500, 0.01, SparsityPattern::kUniform, rng));
  const auto powerlaw = pe::kernels::coo_to_csr(pe::kernels::generate_sparse(
      500, 500, 0.01, SparsityPattern::kPowerLaw, rng));
  const auto fu = pe::kernels::sparse_features(uniform);
  const auto fp = pe::kernels::sparse_features(powerlaw);
  const std::size_t cv_index = 5;  // deg_cv
  EXPECT_GT(fp[cv_index], fu[cv_index] * 2.0);
}

TEST(Generator, DensityValidated) {
  pe::Rng rng(4);
  EXPECT_THROW((void)pe::kernels::generate_sparse(
                   10, 10, 0.0, SparsityPattern::kUniform, rng),
               pe::Error);
  EXPECT_THROW((void)pe::kernels::generate_sparse(
                   10, 10, 1.5, SparsityPattern::kUniform, rng),
               pe::Error);
}

TEST(Features, NamesMatchValues) {
  EXPECT_EQ(pe::kernels::sparse_feature_names().size(), 7u);
  const auto csr = pe::kernels::coo_to_csr(small_coo());
  const auto f = pe::kernels::sparse_features(csr);
  ASSERT_EQ(f.size(), 7u);
  EXPECT_DOUBLE_EQ(f[0], 2.0);            // rows
  EXPECT_DOUBLE_EQ(f[1], 3.0);            // cols
  EXPECT_DOUBLE_EQ(f[2], 3.0);            // nnz
  EXPECT_DOUBLE_EQ(f[3], 0.5);            // density
  EXPECT_DOUBLE_EQ(f[4], 1.5);            // mean degree
  EXPECT_DOUBLE_EQ(f[6], 2.0);            // bandwidth: |2-0|
}

TEST(Sell, ConversionLayoutAndPadding) {
  // 2 rows -> one chunk of C=4 with 2 padding rows; chunk width = widest
  // row (2), so storage is 4*2 slots for 3 real nonzeros.
  const auto sell = pe::kernels::csr_to_sell(
      pe::kernels::coo_to_csr(small_coo()), /*sigma=*/1);
  EXPECT_EQ(sell.rows, 2u);
  EXPECT_EQ(sell.chunks(), 1u);
  EXPECT_EQ(sell.nnz(), 3u);
  EXPECT_EQ(sell.values.size(), pe::kernels::kSellChunk * 2);
  EXPECT_DOUBLE_EQ(sell.padding_ratio(), 8.0 / 3.0);
  // Padding rows carry the sentinel id; real rows keep their identity
  // (sigma=1 means no reordering).
  EXPECT_EQ(sell.row_ids[0], 0u);
  EXPECT_EQ(sell.row_ids[1], 1u);
  EXPECT_EQ(sell.row_ids[2], pe::kernels::SellMatrix::kSellPadRow);
  EXPECT_EQ(sell.row_ids[3], pe::kernels::SellMatrix::kSellPadRow);
}

TEST(Sell, SigmaValidated) {
  const auto csr = pe::kernels::coo_to_csr(small_coo());
  EXPECT_THROW((void)pe::kernels::csr_to_sell(csr, 0), pe::Error);
  EXPECT_THROW((void)pe::kernels::csr_to_sell(csr, 3), pe::Error);
  EXPECT_NO_THROW((void)pe::kernels::csr_to_sell(csr, 1));
  EXPECT_NO_THROW((void)pe::kernels::csr_to_sell(csr, 8));
}

TEST(Sell, SortingWindowCutsPaddingOnSkewedRows) {
  pe::Rng rng(14);
  const auto csr = pe::kernels::coo_to_csr(pe::kernels::generate_sparse(
      512, 512, 0.01, SparsityPattern::kPowerLaw, rng));
  const auto unsorted = pe::kernels::csr_to_sell(csr, 1);
  const auto sorted = pe::kernels::csr_to_sell(csr, 64);
  EXPECT_LT(sorted.padding_ratio(), unsorted.padding_ratio());
  // SELL padding can never exceed ELL's (ELL pads every row to the global
  // max; SELL only to the per-chunk max).
  const auto ell = pe::kernels::csr_to_ell(csr);
  EXPECT_LE(sorted.padding_ratio(), ell.padding_ratio() + 1e-12);
}

// spmv_sell promises the *exact* per-row summation order of spmv_csr
// (ascending column index, unfused accumulation), so equality is
// operator==, not EXPECT_NEAR — at remainder shapes too (rows not a
// multiple of the chunk height, empty rows, single-row matrices).
TEST_P(SpmvPatterns, SellSpmvMatchesCsrExactly) {
  pe::Rng rng(15);
  // 257 rows: 64 full chunks + a remainder chunk of 1 row. Low density
  // leaves genuinely empty rows in the uniform/powerlaw draws.
  const auto csr = pe::kernels::coo_to_csr(
      pe::kernels::generate_sparse(257, 190, 0.01, GetParam(), rng));
  std::vector<double> x(csr.cols);
  for (auto& v : x) v = rng.next_range_double(-1.0, 1.0);
  std::vector<double> y_csr(csr.rows), y_sell(csr.rows, -7.0);
  pe::kernels::spmv_csr(csr, x, y_csr);
  for (const std::size_t sigma : {std::size_t{1}, std::size_t{8},
                                  std::size_t{64}}) {
    const auto sell = pe::kernels::csr_to_sell(csr, sigma);
    std::fill(y_sell.begin(), y_sell.end(), -7.0);
    pe::kernels::spmv_sell(sell, x, y_sell);
    EXPECT_EQ(y_sell, y_csr) << "sigma=" << sigma;
  }
}

TEST_P(SpmvPatterns, ParallelFormatVariantsMatchSerialExactly) {
  pe::Rng rng(16);
  const auto coo =
      pe::kernels::generate_sparse(253, 170, 0.02, GetParam(), rng);
  const auto csr = pe::kernels::coo_to_csr(coo);
  const auto ell = pe::kernels::csr_to_ell(csr);
  const auto sell = pe::kernels::csr_to_sell(csr, 16);
  std::vector<double> x(csr.cols);
  for (auto& v : x) v = rng.next_range_double(-1.0, 1.0);

  std::vector<double> y_ref(csr.rows);
  pe::kernels::spmv_csr(csr, x, y_ref);

  pe::ThreadPool pool(3);
  std::vector<double> y(csr.rows, -7.0);
  pe::kernels::spmv_sell_parallel(sell, x, y, pool);
  EXPECT_EQ(y, y_ref);

  std::fill(y.begin(), y.end(), -7.0);
  pe::kernels::spmv_ell_parallel(ell, x, y, pool);
  EXPECT_EQ(y, y_ref);

  // coo_to_csr sorts, so csr_to_coo yields the row-sorted entries the
  // parallel COO kernel requires.
  const auto sorted_coo = pe::kernels::csr_to_coo(csr);
  std::fill(y.begin(), y.end(), -7.0);
  pe::kernels::spmv_coo_parallel(sorted_coo, x, y, pool);
  EXPECT_EQ(y, y_ref);
}

TEST(Spmv, CooParallelRejectsUnsortedEntries) {
  CooMatrix m;
  m.rows = 2;
  m.cols = 2;
  m.entries = {{1, 0, 1.0}, {0, 1, 2.0}};  // rows out of order
  const std::vector<double> x = {1.0, 1.0};
  std::vector<double> y(2);
  pe::ThreadPool pool(2);
  EXPECT_THROW(pe::kernels::spmv_coo_parallel(m, x, y, pool), pe::Error);
}

TEST(Spmv, NewFormatsHandleSingleRowAndAllEmptyRows) {
  pe::ThreadPool pool(4);
  // Single row (smaller than one SELL chunk).
  CooMatrix one;
  one.rows = 1;
  one.cols = 5;
  one.entries = {{0, 1, 2.0}, {0, 4, 3.0}};
  const auto csr1 = pe::kernels::coo_to_csr(one);
  const std::vector<double> x1 = {1.0, 10.0, 1.0, 1.0, 100.0};
  std::vector<double> y1(1, -7.0);
  pe::kernels::spmv_sell(pe::kernels::csr_to_sell(csr1), x1, y1);
  EXPECT_DOUBLE_EQ(y1[0], 320.0);
  y1[0] = -7.0;
  pe::kernels::spmv_coo_parallel(pe::kernels::csr_to_coo(csr1), x1, y1,
                                 pool);
  EXPECT_DOUBLE_EQ(y1[0], 320.0);

  // A matrix with no entries at all: every path must zero-fill y.
  CooMatrix empty;
  empty.rows = 6;
  empty.cols = 4;
  const auto csr0 = pe::kernels::coo_to_csr(empty);
  const std::vector<double> x0(4, 1.0);
  for (int variant = 0; variant < 4; ++variant) {
    std::vector<double> y0(6, -7.0);
    switch (variant) {
      case 0:
        pe::kernels::spmv_sell(pe::kernels::csr_to_sell(csr0), x0, y0);
        break;
      case 1:
        pe::kernels::spmv_sell_parallel(pe::kernels::csr_to_sell(csr0), x0,
                                        y0, pool);
        break;
      case 2:
        pe::kernels::spmv_ell_parallel(pe::kernels::csr_to_ell(csr0), x0,
                                       y0, pool);
        break;
      case 3:
        pe::kernels::spmv_coo_parallel(empty, x0, y0, pool);
        break;
    }
    EXPECT_EQ(y0, std::vector<double>(6, 0.0)) << "variant " << variant;
  }
}

TEST(FormatFeatures, ComputedFromCsr) {
  const auto csr = pe::kernels::coo_to_csr(small_coo());
  const auto f = pe::kernels::FormatFeatures::from_csr(csr);
  EXPECT_DOUBLE_EQ(f.rows, 2.0);
  EXPECT_DOUBLE_EQ(f.cols, 3.0);
  EXPECT_DOUBLE_EQ(f.nnz, 3.0);
  EXPECT_DOUBLE_EQ(f.mean_deg, 1.5);
  EXPECT_DOUBLE_EQ(f.deg_max, 2.0);
  EXPECT_DOUBLE_EQ(f.bandwidth, 2.0);
  EXPECT_DOUBLE_EQ(f.ell_padding, 4.0 / 3.0);
  const auto vec = f.as_vector();
  const auto names = pe::kernels::FormatFeatures::names();
  ASSERT_EQ(vec.size(), names.size());
}

TEST(FormatSelector, LearnsAPlantedFormatLandscape) {
  // Synthetic corpus with a planted rule: tall matrices (rows > cols) are
  // fastest in ELL, everything else in CSR. The trees must recover it.
  std::vector<pe::kernels::FormatSample> samples;
  for (int i = 0; i < 8; ++i) {
    pe::kernels::FormatSample s;
    const bool tall = i % 2 == 0;
    s.features.rows = tall ? 4000.0 + i : 1000.0 + i;
    s.features.cols = 1000.0;
    s.features.nnz = 8000.0;
    s.features.mean_deg = s.features.nnz / s.features.rows;
    s.features.deg_cv = 0.1;
    s.features.deg_max = 8.0;
    s.features.bandwidth = 900.0;
    s.features.ell_padding = 1.2;
    // seconds indexed by kAllSpmvFormats order: csr, csc, coo, ell, sell.
    s.seconds = tall ? std::array<double, 5>{4e-3, 6e-3, 7e-3, 1e-3, 2e-3}
                     : std::array<double, 5>{1e-3, 3e-3, 4e-3, 5e-3, 2e-3};
    samples.push_back(s);
  }
  const auto selector = pe::kernels::FormatSelector::train(samples);
  EXPECT_TRUE(selector.trained());
  EXPECT_EQ(selector.choose(samples[0].features),
            pe::kernels::SpmvFormat::kEll);
  EXPECT_EQ(selector.choose(samples[1].features),
            pe::kernels::SpmvFormat::kCsr);
  // Deterministic: retraining on the same corpus gives the same policy,
  // and predictions are positive seconds for every format.
  const auto again = pe::kernels::FormatSelector::train(samples);
  for (const auto& s : samples) {
    EXPECT_EQ(selector.choose(s.features), again.choose(s.features));
    for (const auto f : pe::kernels::kAllSpmvFormats)
      EXPECT_GT(selector.predict_seconds(s.features, f), 0.0);
  }
}

TEST(FormatSelector, RejectsDegenerateTrainingSets) {
  EXPECT_THROW((void)pe::kernels::FormatSelector::train({}), pe::Error);
  pe::kernels::FormatSample bad;
  bad.features.rows = 10.0;
  bad.seconds = {1e-3, 1e-3, 0.0, 1e-3, 1e-3};  // non-positive runtime
  EXPECT_THROW((void)pe::kernels::FormatSelector::train({bad}), pe::Error);
}

TEST(FormatSelector, FormatNamesAreStable) {
  using pe::kernels::SpmvFormat;
  EXPECT_EQ(pe::kernels::spmv_format_name(SpmvFormat::kCsr), "csr");
  EXPECT_EQ(pe::kernels::spmv_format_name(SpmvFormat::kCsc), "csc");
  EXPECT_EQ(pe::kernels::spmv_format_name(SpmvFormat::kCoo), "coo");
  EXPECT_EQ(pe::kernels::spmv_format_name(SpmvFormat::kEll), "ell");
  EXPECT_EQ(pe::kernels::spmv_format_name(SpmvFormat::kSell), "sell");
}

TEST(Features, PatternNames) {
  EXPECT_EQ(pe::kernels::pattern_name(SparsityPattern::kUniform),
            "uniform");
  EXPECT_EQ(pe::kernels::pattern_name(SparsityPattern::kBanded), "banded");
  EXPECT_EQ(pe::kernels::pattern_name(SparsityPattern::kPowerLaw),
            "powerlaw");
}

}  // namespace
