// Tests for the scaling laws in perfeng/models/scaling.hpp.
#include "perfeng/models/scaling.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "perfeng/common/error.hpp"

namespace {

TEST(Amdahl, KnownValues) {
  EXPECT_DOUBLE_EQ(pe::models::amdahl_speedup(0.0, 8.0), 8.0);
  EXPECT_DOUBLE_EQ(pe::models::amdahl_speedup(1.0, 8.0), 1.0);
  // f = 0.1, p = 10 -> 1 / (0.1 + 0.09) = 5.263...
  EXPECT_NEAR(pe::models::amdahl_speedup(0.1, 10.0), 1.0 / 0.19, 1e-12);
}

TEST(Amdahl, LimitIsInverseSerialFraction) {
  EXPECT_DOUBLE_EQ(pe::models::amdahl_limit(0.25), 4.0);
  EXPECT_TRUE(std::isinf(pe::models::amdahl_limit(0.0)));
}

TEST(Amdahl, SpeedupBoundedByLimit) {
  for (double p : {2.0, 8.0, 64.0, 4096.0}) {
    EXPECT_LT(pe::models::amdahl_speedup(0.05, p),
              pe::models::amdahl_limit(0.05));
  }
}

TEST(Gustafson, KnownValues) {
  EXPECT_DOUBLE_EQ(pe::models::gustafson_speedup(0.0, 16.0), 16.0);
  EXPECT_DOUBLE_EQ(pe::models::gustafson_speedup(1.0, 16.0), 1.0);
  EXPECT_DOUBLE_EQ(pe::models::gustafson_speedup(0.1, 10.0), 9.1);
}

TEST(Gustafson, AlwaysAtLeastAmdahl) {
  for (double f : {0.05, 0.2, 0.5}) {
    for (double p : {2.0, 8.0, 32.0}) {
      EXPECT_GE(pe::models::gustafson_speedup(f, p),
                pe::models::amdahl_speedup(f, p));
    }
  }
}

TEST(Usl, ReducesToAmdahlWithoutCoherence) {
  // With kappa = 0, USL is Amdahl with sigma as the serial fraction.
  for (double p : {1.0, 4.0, 16.0}) {
    EXPECT_NEAR(pe::models::usl_speedup(0.1, 0.0, p),
                pe::models::amdahl_speedup(0.1, p), 1e-12);
  }
}

TEST(Usl, CoherenceCausesRetrogradeScaling) {
  const double sigma = 0.05, kappa = 0.01;
  const double peak = pe::models::usl_peak_workers(sigma, kappa);
  EXPECT_NEAR(peak, std::sqrt(0.95 / 0.01), 1e-9);
  const double before = pe::models::usl_speedup(sigma, kappa, 4.0);
  const double at = pe::models::usl_speedup(sigma, kappa, peak);
  const double after = pe::models::usl_speedup(sigma, kappa, peak * 4.0);
  EXPECT_GT(at, before);
  EXPECT_GT(at, after);
}

TEST(Usl, PeakInfiniteWithoutCoherence) {
  EXPECT_TRUE(std::isinf(pe::models::usl_peak_workers(0.1, 0.0)));
}

TEST(UslFit, RecoversSyntheticParameters) {
  const double sigma = 0.08, kappa = 0.002;
  std::vector<double> workers, speedups;
  for (double p : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    workers.push_back(p);
    speedups.push_back(pe::models::usl_speedup(sigma, kappa, p));
  }
  const auto fit = pe::models::fit_usl(workers, speedups);
  EXPECT_NEAR(fit.sigma, sigma, 0.02);
  EXPECT_NEAR(fit.kappa, kappa, 0.002);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(UslFit, ToleratesNoise) {
  std::vector<double> workers = {1, 2, 4, 8, 16, 32};
  std::vector<double> speedups;
  const double noise[] = {1.01, 0.98, 1.02, 0.99, 1.015, 0.985};
  for (std::size_t i = 0; i < workers.size(); ++i) {
    speedups.push_back(pe::models::usl_speedup(0.1, 0.005, workers[i]) *
                       noise[i]);
  }
  const auto fit = pe::models::fit_usl(workers, speedups);
  EXPECT_NEAR(fit.sigma, 0.1, 0.05);
  EXPECT_GT(fit.r2, 0.95);
}

TEST(UslFit, Validation) {
  const std::vector<double> two = {1.0, 2.0};
  EXPECT_THROW((void)pe::models::fit_usl(two, two), pe::Error);
  const std::vector<double> w = {1.0, 2.0, 4.0};
  const std::vector<double> bad = {1.0, -2.0, 3.0};
  EXPECT_THROW((void)pe::models::fit_usl(w, bad), pe::Error);
}

TEST(KarpFlatt, InvertsAmdahl) {
  const double f = 0.15;
  for (double p : {2.0, 8.0, 32.0}) {
    const double s = pe::models::amdahl_speedup(f, p);
    EXPECT_NEAR(pe::models::karp_flatt(s, p), f, 1e-12) << p;
  }
}

TEST(KarpFlatt, PerfectScalingGivesZero) {
  EXPECT_NEAR(pe::models::karp_flatt(8.0, 8.0), 0.0, 1e-12);
}

TEST(ScalingValidation, DomainChecks) {
  EXPECT_THROW((void)pe::models::amdahl_speedup(-0.1, 2.0), pe::Error);
  EXPECT_THROW((void)pe::models::amdahl_speedup(0.5, 0.5), pe::Error);
  EXPECT_THROW((void)pe::models::gustafson_speedup(1.1, 2.0), pe::Error);
  EXPECT_THROW((void)pe::models::usl_speedup(-0.1, 0.0, 2.0), pe::Error);
  EXPECT_THROW((void)pe::models::karp_flatt(2.0, 1.0), pe::Error);
}

}  // namespace
