// Tests for the seeded fault injector in perfeng/resilience.
#include "perfeng/resilience/fault_injection.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "perfeng/common/fault_hook.hpp"
#include "perfeng/measure/timer.hpp"

namespace {

using pe::resilience::FaultInjected;
using pe::resilience::FaultInjector;
using pe::resilience::FaultKind;
using pe::resilience::FaultPlan;
using pe::resilience::FaultSpec;
using pe::resilience::ScopedFaultInjection;

// Synthetic sites this file uses in fault specs. The injector rejects
// unknown sites (a typo'd plan must fail loudly, not silently no-op), so
// tests opt their scratch sites into the registry up front.
const bool kScratchSitesRegistered = [] {
  pe::register_fault_site("s");
  pe::register_fault_site("c");
  return true;
}();

TEST(FaultInjection, NoHookMeansNoOp) {
  ASSERT_EQ(pe::fault_hook(), nullptr);
  EXPECT_NO_THROW(pe::fault_point("kernel.call"));
  EXPECT_DOUBLE_EQ(pe::fault_value("kernel.call", 1.5), 1.5);
}

TEST(FaultInjection, ThrowFaultFiresAtSite) {
  FaultPlan plan;
  plan.faults.push_back({.site = "kernel.call"});
  ScopedFaultInjection scope(std::move(plan));
  try {
    pe::fault_point("kernel.call");
    FAIL() << "expected FaultInjected";
  } catch (const FaultInjected& e) {
    EXPECT_EQ(e.site(), "kernel.call");
    EXPECT_EQ(e.visit(), 1);
  }
  EXPECT_EQ(scope.injector().visits("kernel.call"), 1);
  EXPECT_EQ(scope.injector().fires("kernel.call"), 1);
  // Other sites are untouched but still counted when visited.
  EXPECT_NO_THROW(pe::fault_point("io.csv"));
  EXPECT_EQ(scope.injector().visits("io.csv"), 1);
  EXPECT_EQ(scope.injector().fires("io.csv"), 0);
}

TEST(FaultInjection, ScopeInstallsAndRemovesHook) {
  {
    ScopedFaultInjection scope(FaultPlan{});
    EXPECT_NE(pe::fault_hook(), nullptr);
  }
  EXPECT_EQ(pe::fault_hook(), nullptr);
}

TEST(FaultInjection, NestedScopesRejected) {
  ScopedFaultInjection outer(FaultPlan{});
  EXPECT_THROW(ScopedFaultInjection inner(FaultPlan{}), pe::Error);
}

TEST(FaultInjection, SkipFirstLetsEarlyVisitsPass) {
  FaultPlan plan;
  plan.faults.push_back({.site = "s", .skip_first = 2});
  ScopedFaultInjection scope(std::move(plan));
  EXPECT_NO_THROW(pe::fault_point("s"));
  EXPECT_NO_THROW(pe::fault_point("s"));
  EXPECT_THROW(pe::fault_point("s"), FaultInjected);
}

TEST(FaultInjection, MaxFiresBoundsTheDamage) {
  FaultPlan plan;
  plan.faults.push_back({.site = "s", .max_fires = 2});
  ScopedFaultInjection scope(std::move(plan));
  EXPECT_THROW(pe::fault_point("s"), FaultInjected);
  EXPECT_THROW(pe::fault_point("s"), FaultInjected);
  EXPECT_NO_THROW(pe::fault_point("s"));
  EXPECT_NO_THROW(pe::fault_point("s"));
  EXPECT_EQ(scope.injector().fires("s"), 2);
}

TEST(FaultInjection, FireBudgetNotConsumedByMismatchedHook) {
  // Regression: a site can host both hooks (kernel.call passes fault_point
  // *and* fault_value in BenchmarkRunner). Visits through the hook that
  // cannot execute the spec kind must neither fire nor eat max_fires.
  {
    FaultPlan plan;
    plan.faults.push_back({.site = "s", .max_fires = 1});
    ScopedFaultInjection scope(std::move(plan));
    EXPECT_DOUBLE_EQ(pe::fault_value("s", 2.0), 2.0);
    EXPECT_DOUBLE_EQ(pe::fault_value("s", 2.0), 2.0);
    EXPECT_EQ(scope.injector().fires("s"), 0);
    EXPECT_THROW(pe::fault_point("s"), FaultInjected);  // budget intact
    EXPECT_EQ(scope.injector().fires("s"), 1);
    EXPECT_NO_THROW(pe::fault_point("s"));  // and now spent
  }
  {
    // Mirror image: at() visits must not consume a corruption budget.
    FaultPlan plan;
    plan.faults.push_back({.site = "c",
                           .kind = FaultKind::kCorruptValue,
                           .max_fires = 1,
                           .corrupt_scale = 10.0});
    ScopedFaultInjection scope(std::move(plan));
    EXPECT_NO_THROW(pe::fault_point("c"));
    EXPECT_NO_THROW(pe::fault_point("c"));
    EXPECT_EQ(scope.injector().fires("c"), 0);
    EXPECT_DOUBLE_EQ(pe::fault_value("c", 2.0), 20.0);  // budget intact
    EXPECT_EQ(scope.injector().fires("c"), 1);
    EXPECT_DOUBLE_EQ(pe::fault_value("c", 2.0), 2.0);  // and now spent
  }
}

std::vector<bool> firing_pattern(std::uint64_t seed, int visits) {
  FaultPlan plan;
  plan.seed = seed;
  plan.faults.push_back({.site = "s", .probability = 0.5});
  ScopedFaultInjection scope(std::move(plan));
  std::vector<bool> fired;
  for (int i = 0; i < visits; ++i) {
    try {
      pe::fault_point("s");
      fired.push_back(false);
    } catch (const FaultInjected&) {
      fired.push_back(true);
    }
  }
  return fired;
}

TEST(FaultInjection, ProbabilisticFiringIsSeedDeterministic) {
  const auto a = firing_pattern(7, 200);
  const auto b = firing_pattern(7, 200);
  EXPECT_EQ(a, b);  // same seed, same failure set — the chaos contract
  const auto c = firing_pattern(8, 200);
  EXPECT_NE(a, c);  // a different seed attacks differently
  // Roughly half the visits fire.
  const auto hits = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(hits, 60);
  EXPECT_LT(hits, 140);
}

TEST(FaultInjection, CorruptValueScalesOnlyThroughFaultValue) {
  FaultPlan plan;
  plan.faults.push_back({.site = "s",
                         .kind = FaultKind::kCorruptValue,
                         .corrupt_scale = 100.0});
  ScopedFaultInjection scope(std::move(plan));
  EXPECT_NO_THROW(pe::fault_point("s"));  // at() is a no-op for corruption
  EXPECT_DOUBLE_EQ(pe::fault_value("s", 2.0), 200.0);
  // A site without a corrupt spec passes values through untouched.
  EXPECT_DOUBLE_EQ(pe::fault_value("other", 2.0), 2.0);
}

TEST(FaultInjection, DelayFaultStallsTheCaller) {
  FaultPlan plan;
  plan.faults.push_back(
      {.site = "s", .kind = FaultKind::kDelay, .delay_seconds = 0.02});
  ScopedFaultInjection scope(std::move(plan));
  const pe::WallTimer t;
  pe::fault_point("s");
  EXPECT_GE(t.elapsed(), 0.015);
}

TEST(FaultInjection, CustomMessageUsedWhenSet) {
  FaultPlan plan;
  plan.faults.push_back({.site = "s", .message = "backend melted"});
  ScopedFaultInjection scope(std::move(plan));
  try {
    pe::fault_point("s");
    FAIL();
  } catch (const FaultInjected& e) {
    EXPECT_STREQ(e.what(), "backend melted");
  }
}

TEST(FaultInjection, UnknownSiteRejectedWithCatalog) {
  FaultPlan plan;
  plan.faults.push_back({.site = "no.such.site"});
  try {
    FaultInjector injector(std::move(plan));
    FAIL() << "expected pe::Error for unknown site";
  } catch (const pe::Error& e) {
    const std::string msg = e.what();
    // The error is a teaching moment: it names the typo'd site, lists
    // every site the build knows, and says how to register new ones.
    EXPECT_NE(msg.find("no.such.site"), std::string::npos) << msg;
    EXPECT_NE(msg.find("kernel.call"), std::string::npos) << msg;
    EXPECT_NE(msg.find("service.admit"), std::string::npos) << msg;
    EXPECT_NE(msg.find("register_fault_site"), std::string::npos) << msg;
  }
}

TEST(FaultInjection, KnownSitesIntrospection) {
  const std::vector<std::string_view> sites = FaultInjector::known_sites();
  const auto has = [&](std::string_view s) {
    return std::find(sites.begin(), sites.end(), s) != sites.end();
  };
  // Catalog sites plus this file's registered scratch sites.
  EXPECT_TRUE(has(pe::fault_sites::kKernelCall));
  EXPECT_TRUE(has(pe::fault_sites::kServiceAdmit));
  EXPECT_TRUE(has(pe::fault_sites::kServiceDequeue));
  EXPECT_TRUE(has(pe::fault_sites::kServiceCache));
  EXPECT_TRUE(has("s"));
  EXPECT_TRUE(has("c"));
  EXPECT_TRUE(pe::is_known_fault_site("kernel.call"));
  EXPECT_FALSE(pe::is_known_fault_site("no.such.site"));
  // Re-registration is idempotent: no duplicate entries.
  pe::register_fault_site("s");
  const auto again = FaultInjector::known_sites();
  EXPECT_EQ(std::count(again.begin(), again.end(),
                       std::string_view("s")),
            1);
}

TEST(FaultInjection, PlanValidation) {
  FaultPlan bad_site;
  bad_site.faults.push_back({.site = ""});
  EXPECT_THROW(pe::resilience::FaultInjector{bad_site}, pe::Error);

  FaultPlan bad_prob;
  bad_prob.faults.push_back({.site = "s", .probability = 1.5});
  EXPECT_THROW(pe::resilience::FaultInjector{bad_prob}, pe::Error);

  FaultPlan duplicate;
  duplicate.faults.push_back({.site = "s"});
  duplicate.faults.push_back({.site = "s", .kind = FaultKind::kDelay});
  EXPECT_THROW(pe::resilience::FaultInjector{duplicate}, pe::Error);
}

}  // namespace
