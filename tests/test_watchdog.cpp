// Tests for the wall-clock watchdog and structured measurement errors.
#include "perfeng/resilience/watchdog.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "perfeng/measure/timer.hpp"

namespace {

using pe::resilience::FailureKind;
using pe::resilience::MeasurementError;
using pe::resilience::run_with_deadline;

TEST(Watchdog, ZeroDeadlineRunsInline) {
  int calls = 0;
  run_with_deadline(0.0, [&] { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(Watchdog, FastWorkCompletesUnderDeadline) {
  std::atomic<int> calls{0};
  run_with_deadline(5.0, [&] { ++calls; });
  EXPECT_EQ(calls.load(), 1);
}

TEST(Watchdog, NonTerminatingWorkTimesOutStructured) {
  // The spin flag is shared-owned so the abandoned helper thread can keep
  // reading it safely after this test frame unwinds.
  auto stop = std::make_shared<std::atomic<bool>>(false);
  const pe::WallTimer t;
  try {
    run_with_deadline(
        0.25,
        [stop] {
          while (!stop->load(std::memory_order_relaxed)) {
          }
        },
        "runaway");
    FAIL() << "expected MeasurementError";
  } catch (const MeasurementError& e) {
    EXPECT_EQ(e.kind(), FailureKind::kTimeout);
    EXPECT_EQ(e.label(), "runaway");
    EXPECT_EQ(e.attempts(), 1);
    EXPECT_NE(std::string(e.what()).find("timeout"), std::string::npos);
  }
  // It threw because the deadline expired, not because the work finished.
  EXPECT_GE(t.elapsed(), 0.2);
  EXPECT_LT(t.elapsed(), 5.0);  // ...and it did not hang
  stop->store(true);  // let the abandoned helper exit
}

TEST(Watchdog, WorkExceptionsRethrownOnCaller) {
  EXPECT_THROW(
      run_with_deadline(5.0, [] { throw std::runtime_error("inner"); }),
      std::runtime_error);
}

TEST(Watchdog, NullWorkRejected) {
  EXPECT_THROW(run_with_deadline(1.0, std::function<void()>{}), pe::Error);
}

TEST(MeasurementErrorTest, CarriesStructuredFields) {
  const MeasurementError e(FailureKind::kUnstable, "spmv", 4, 1.5,
                           "CV too high");
  EXPECT_EQ(e.kind(), FailureKind::kUnstable);
  EXPECT_EQ(e.label(), "spmv");
  EXPECT_EQ(e.attempts(), 4);
  EXPECT_DOUBLE_EQ(e.elapsed_seconds(), 1.5);
  const std::string what = e.what();
  EXPECT_NE(what.find("spmv"), std::string::npos);
  EXPECT_NE(what.find("unstable"), std::string::npos);
  EXPECT_NE(what.find("4 attempts"), std::string::npos);
  EXPECT_NE(what.find("CV too high"), std::string::npos);
}

TEST(MeasurementErrorTest, KindNames) {
  EXPECT_EQ(pe::resilience::to_string(FailureKind::kTimeout), "timeout");
  EXPECT_EQ(pe::resilience::to_string(FailureKind::kFault), "fault");
  EXPECT_EQ(pe::resilience::to_string(FailureKind::kUnstable), "unstable");
}

}  // namespace
