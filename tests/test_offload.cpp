// Tests for the accelerator-offload model in perfeng/models/offload.hpp.
#include "perfeng/models/offload.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "perfeng/common/error.hpp"

namespace {

using namespace pe::models;

// A GPU-ish device: 10x host FLOPS, 5x host bandwidth, over a slow link.
OffloadModel typical() {
  OffloadModel m;
  m.host = {1e10, 2e10};
  m.device = {1e11, 1e11};
  m.link = {1e-5, 1e-10};  // 10 us latency, 10 GB/s
  return m;
}

TEST(DeviceModel, RooflineKernelTime) {
  const DeviceModel d{1e9, 1e10};
  EXPECT_DOUBLE_EQ(d.kernel_time(1e9, 1e6), 1.0);     // compute-bound
  EXPECT_DOUBLE_EQ(d.kernel_time(1e3, 1e10), 1.0);    // memory-bound
  EXPECT_THROW((void)d.kernel_time(-1.0, 0.0), pe::Error);
}

TEST(TransferLink, AlphaBetaCost) {
  const TransferLink l{1e-5, 1e-10};
  EXPECT_DOUBLE_EQ(l.transfer_time(0), 0.0);  // nothing to copy
  EXPECT_DOUBLE_EQ(l.transfer_time(1e10), 1e-5 + 1.0);
}

TEST(Offload, TinyKernelsStayOnTheHost) {
  const auto m = typical();
  // 1000 FLOPs on 1 KiB: transfers dwarf the work.
  EXPECT_LT(m.offload_speedup(1e3, 512, 512), 1.0);
}

TEST(Offload, BigKernelsWin) {
  const auto m = typical();
  // 2e12 FLOPs on 24 MB: device 10x compute advantage dominates.
  EXPECT_GT(m.offload_speedup(2e12, 1.6e7, 8e6), 5.0);
}

TEST(Offload, OffloadTimeDecomposes) {
  const auto m = typical();
  const double flops = 1e9, in = 1e6, out = 1e6;
  const double expected = m.link.transfer_time(in) +
                          m.device.kernel_time(flops, in + out) +
                          m.link.transfer_time(out);
  EXPECT_DOUBLE_EQ(m.offload_time(flops, in, out), expected);
}

TEST(Offload, BreakevenMatmulIsMonotone) {
  const auto m = typical();
  const std::size_t breakeven = offload_breakeven_matmul(m, 8, 4096);
  ASSERT_GT(breakeven, 8u);   // tiny matrices must not offload
  ASSERT_LT(breakeven, 4096u);  // big ones must
  // Above the break-even point offload keeps winning.
  const double nd = static_cast<double>(breakeven) * 2.0;
  EXPECT_GT(m.offload_speedup(2.0 * nd * nd * nd, 2.0 * nd * nd * 8.0,
                              nd * nd * 8.0),
            1.0);
}

TEST(Offload, NoBreakevenWhenDeviceIsSlower) {
  OffloadModel m = typical();
  m.device = {1e9, 1e9};  // slower than the host
  EXPECT_EQ(offload_breakeven_matmul(m, 8, 512), 0u);
}

TEST(Amortization, FiniteWhenDeviceFasterPerKernel) {
  const auto m = typical();
  const double w =
      m.amortization_factor(1e8, 1e6, /*in=*/1e7, /*out=*/1e7);
  EXPECT_GT(w, 0.0);
  EXPECT_TRUE(std::isfinite(w));
  // At w kernels, host time equals offload time by construction.
  const double host = w * m.host.kernel_time(1e8, 1e6);
  const double dev = m.link.transfer_time(1e7) + m.link.transfer_time(1e7) +
                     w * m.device.kernel_time(1e8, 1e6);
  EXPECT_NEAR(host, dev, host * 1e-9);
}

TEST(Amortization, InfiniteWhenDeviceSlower) {
  OffloadModel m = typical();
  m.device = {1e8, 1e8};
  EXPECT_TRUE(std::isinf(m.amortization_factor(1e8, 1e6, 1e6, 1e6)));
}

TEST(Offload, SearchRangeValidated) {
  EXPECT_THROW((void)offload_breakeven_matmul(typical(), 0, 10), pe::Error);
  EXPECT_THROW((void)offload_breakeven_matmul(typical(), 10, 5), pe::Error);
}

}  // namespace
