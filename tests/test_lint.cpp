// Tests for the pe::lint static-analysis subsystem: the comment/string/
// raw-string-aware lexer, the declared-DAG repo model, the three
// whole-program passes against seeded positive/negative fixture twins
// (tests/lint_fixtures/), the waiver grammar, the baseline diff, and the
// SARIF 2.1.0 render shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "perfeng/lint/baseline.hpp"
#include "perfeng/lint/driver.hpp"
#include "perfeng/lint/lexer.hpp"
#include "perfeng/lint/render.hpp"
#include "perfeng/lint/repo_model.hpp"
#include "perfeng/lint/source.hpp"

namespace {

using pe::lint::Baseline;
using pe::lint::Finding;
using pe::lint::LintResult;
using pe::lint::RepoModel;
using pe::lint::ScanOptions;
using pe::lint::Severity;
using pe::lint::SourceFile;

// Compile definition from tests/CMakeLists.txt: absolute path of
// tests/lint_fixtures.
const std::string kFixtures = PE_LINT_FIXTURES;

LintResult lint_fixture(const std::string& tree,
                        const std::vector<std::string>& rules) {
  ScanOptions opts;
  opts.root = kFixtures + "/" + tree;
  opts.skip_substrings.clear();  // the fixture tree IS the repo here
  return pe::lint::lint_repo(opts, rules);
}

std::vector<Finding> with_rule(const LintResult& result,
                               const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : result.findings)
    if (f.rule == rule) out.push_back(f);
  return out;
}

// ---------------------------------------------------------------- lexer

TEST(LintLexer, CooksCommentsAndStringsButKeepsLineStructure) {
  const std::vector<std::string> raw = {
      "int a = 1; // trailing comment with volatile",
      "const char* s = \"volatile in a string\";",
      "/* block", "   still block */ int b = 2;",
  };
  const auto cooked = pe::lint::cook_lines(raw);
  ASSERT_EQ(cooked.size(), raw.size());
  EXPECT_EQ(cooked[0].find("volatile"), std::string::npos);
  EXPECT_EQ(cooked[1].find("volatile"), std::string::npos);
  EXPECT_NE(cooked[1].find('"'), std::string::npos);  // delimiters stay
  EXPECT_EQ(cooked[2].find("block"), std::string::npos);
  EXPECT_NE(cooked[3].find("int b = 2;"), std::string::npos);
}

TEST(LintLexer, RawStringsSpanLinesAndIgnoreFakeTerminators) {
  const std::vector<std::string> raw = {
      "auto s = R\"x(first \" not a close",
      "still raw )\" nope",
      "done )x\"; int after = 1;",
  };
  const auto cooked = pe::lint::cook_lines(raw);
  EXPECT_EQ(cooked[1].find("still"), std::string::npos);
  EXPECT_EQ(cooked[2].find("done"), std::string::npos);
  EXPECT_NE(cooked[2].find("int after = 1;"), std::string::npos);
}

TEST(LintLexer, LineSplicedCommentExtendsToNextPhysicalLine) {
  const std::vector<std::string> raw = {
      "int a = 1; // comment continues \\",
      "volatile int hidden = 2;",
      "int b = 3;",
  };
  const auto cooked = pe::lint::cook_lines(raw);
  // Physical line 2 is still inside the spliced // comment.
  EXPECT_EQ(cooked[1].find("volatile"), std::string::npos);
  EXPECT_NE(cooked[2].find("int b = 3;"), std::string::npos);
}

TEST(LintLexer, DigitSeparatorsAreNotCharLiterals) {
  const std::vector<std::string> raw = {
      "std::size_t n = 1'000'000; volatile int tripwire = 0;",
  };
  const auto cooked = pe::lint::cook_lines(raw);
  // A naive char-literal scanner would swallow from 1'0...' onward and
  // blank the volatile; the lexer must keep it visible.
  EXPECT_NE(cooked[0].find("volatile"), std::string::npos);
}

TEST(LintLexer, IncludeDirectivesParsePathsAndSkipComments) {
  const std::vector<std::string> raw = {
      "#include <vector>",
      "#include \"perfeng/common/error.hpp\"",
      "/*",
      "#include \"perfeng/fake/commented_out.hpp\"",
      "*/",
      "#include \\",
      "  <atomic>",
  };
  const auto incs = pe::lint::include_directives(raw);
  ASSERT_EQ(incs.size(), 3u);
  EXPECT_TRUE(incs[0].angled);
  EXPECT_EQ(incs[0].path, "vector");
  EXPECT_FALSE(incs[1].angled);
  EXPECT_EQ(incs[1].path, "perfeng/common/error.hpp");
  EXPECT_EQ(incs[2].path, "atomic");  // spliced directive joined
}

// -------------------------------------------------------------- waivers

TEST(LintSource, WaiversApplyToLineAndLineAbove) {
  const SourceFile f = pe::lint::make_source_file(
      "src/x/src/x.cpp",
      {
          "int a;  // perfeng-lint: allow(no-volatile)",
          "// perfeng-lint: allow(no-std-rand) — fixture rationale",
          "int b;",
          "int c;",
      });
  EXPECT_TRUE(pe::lint::line_allows(f, 0, "no-volatile"));
  EXPECT_TRUE(pe::lint::line_allows(f, 2, "no-std-rand"));
  EXPECT_FALSE(pe::lint::line_allows(f, 3, "no-std-rand"));
  EXPECT_FALSE(pe::lint::file_allows(f, "no-volatile"));
}

// ----------------------------------------------------------- repo model

TEST(LintRepoModel, ParsesDeclaredDagFromFixtureCMake) {
  const RepoModel model = RepoModel::build(kFixtures + "/bad");
  ASSERT_NE(model.by_name("alpha"), nullptr);
  ASSERT_NE(model.by_target("perfeng_beta"), nullptr);
  // alpha declares no dependency on beta in the bad tree.
  EXPECT_FALSE(model.depends_on("alpha", "beta"));
  EXPECT_TRUE(model.depends_on("alpha", "alpha"));
  EXPECT_EQ(model.owner_of_header("perfeng/beta/b.hpp"), "beta");
  EXPECT_EQ(model.owner_of_header("perfeng/nowhere/x.hpp"), "");
  // gamma <-> delta is a declared cycle, reported exactly once.
  EXPECT_EQ(model.declared_cycles().size(), 1u);

  const RepoModel clean = RepoModel::build(kFixtures + "/clean");
  EXPECT_TRUE(clean.depends_on("alpha", "beta"));
  EXPECT_TRUE(clean.declared_cycles().empty());
}

// ----------------------------------------------- whole-program passes

TEST(LintLayering, FlagsUndeclaredIncludeEdgeAndDeclaredCycle) {
  const auto bad = lint_fixture("bad", {"include-layering"});
  const auto findings = with_rule(bad, "include-layering");
  ASSERT_GE(findings.size(), 2u);
  bool saw_edge = false;
  bool saw_cycle = false;
  for (const Finding& f : findings) {
    EXPECT_EQ(f.severity, Severity::kError);
    if (f.file == "src/alpha/include/perfeng/alpha/a.hpp" &&
        f.message.find("beta") != std::string::npos)
      saw_edge = true;
    if (f.message.find("cycle") != std::string::npos &&
        f.message.find("gamma") != std::string::npos &&
        f.message.find("delta") != std::string::npos)
      saw_cycle = true;
  }
  EXPECT_TRUE(saw_edge);
  EXPECT_TRUE(saw_cycle);

  const auto clean = lint_fixture("clean", {"include-layering"});
  EXPECT_TRUE(with_rule(clean, "include-layering").empty())
      << pe::lint::render_text(clean.findings, clean.files_scanned);
}

TEST(LintLockOrder, FlagsAbBaInversionWithWitnessAndClearsCleanTwin) {
  const auto bad = lint_fixture("bad", {"lock-order"});
  const auto findings = with_rule(bad, "lock-order");
  ASSERT_EQ(findings.size(), 1u);
  const Finding& f = findings.front();
  EXPECT_EQ(f.severity, Severity::kError);
  // The witness names both mutex identities and both offending functions.
  EXPECT_NE(f.message.find("Pair::ma"), std::string::npos) << f.message;
  EXPECT_NE(f.message.find("Pair::mb"), std::string::npos) << f.message;
  EXPECT_NE(f.message.find("first"), std::string::npos) << f.message;
  EXPECT_NE(f.message.find("second"), std::string::npos) << f.message;

  const auto clean = lint_fixture("clean", {"lock-order"});
  EXPECT_TRUE(with_rule(clean, "lock-order").empty())
      << pe::lint::render_text(clean.findings, clean.files_scanned);
}

TEST(LintWaitLoop, FlagsBackoffFreeSpinsAndClearsYieldingTwin) {
  const auto bad = lint_fixture("bad", {"wait-loop"});
  const auto findings = with_rule(bad, "wait-loop");
  // Both the braced busy-wait and the empty-body variant in spin.cpp.
  ASSERT_EQ(findings.size(), 2u);
  for (const Finding& f : findings)
    EXPECT_EQ(f.file, "src/alpha/src/spin.cpp");

  const auto clean = lint_fixture("clean", {"wait-loop"});
  EXPECT_TRUE(with_rule(clean, "wait-loop").empty())
      << pe::lint::render_text(clean.findings, clean.files_scanned);
}

// ------------------------------------------------------------- baseline

TEST(LintBaseline, RoundTripsAndAbsorbsExactlyTheAcceptedCounts) {
  Finding a;
  a.file = "src/x/src/x.cpp";
  a.line = 10;
  a.rule = "no-volatile";
  a.message = "volatile is not a synchronization primitive";
  Finding b = a;
  b.line = 20;  // same identity (line excluded from the key)
  Finding c;
  c.file = "src/y/src/y.cpp";
  c.line = 1;
  c.rule = "wait-loop";
  c.message = "spin without backoff";

  const std::string doc = Baseline::serialize({a, b});
  const std::string path = testing::TempDir() + "lint_baseline_rt.json";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
  }
  const Baseline base = Baseline::load(path);
  // a and b share one identity with an accepted count of 2.
  EXPECT_EQ(base.total_entries(), 2u);

  // Two accepted occurrences absorb a and b; c is new; a third
  // occurrence of the same identity overflows the budget.
  Finding d = a;
  d.line = 30;
  const auto fresh = base.new_findings({a, b, c, d});
  ASSERT_EQ(fresh.size(), 2u);
  EXPECT_TRUE(std::any_of(fresh.begin(), fresh.end(), [](const Finding& f) {
    return f.rule == "wait-loop";
  }));
  EXPECT_TRUE(std::any_of(fresh.begin(), fresh.end(), [](const Finding& f) {
    return f.rule == "no-volatile";
  }));
}

TEST(LintBaseline, MissingFileIsEmptyBaseline) {
  const Baseline base =
      Baseline::load(testing::TempDir() + "does_not_exist_baseline.json");
  EXPECT_EQ(base.total_entries(), 0u);
  Finding f;
  f.file = "a";
  f.rule = "r";
  f.message = "m";
  EXPECT_EQ(base.new_findings({f}).size(), 1u);
}

// ---------------------------------------------------------------- SARIF

TEST(LintSarif, RendersTheShapeCiAndCodeScannersExpect) {
  const auto bad = lint_fixture(
      "bad", {"include-layering", "lock-order", "wait-loop"});
  const std::string sarif =
      pe::lint::render_sarif(bad.findings, bad.rules);

  // Top-level shape.
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-schema-2.1.0"), std::string::npos);
  EXPECT_NE(sarif.find("\"runs\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"perfeng-lint\""), std::string::npos);
  // Every pass that ran appears in the driver rules array.
  EXPECT_NE(sarif.find("\"id\": \"include-layering\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\": \"lock-order\""), std::string::npos);
  EXPECT_NE(sarif.find("\"id\": \"wait-loop\""), std::string::npos);
  // Results carry ruleId + ruleIndex + a physical location with a line.
  EXPECT_NE(sarif.find("\"ruleId\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleIndex\""), std::string::npos);
  EXPECT_NE(sarif.find("\"physicalLocation\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
  // Balanced braces — cheap structural sanity without a JSON parser.
  EXPECT_EQ(std::count(sarif.begin(), sarif.end(), '{'),
            std::count(sarif.begin(), sarif.end(), '}'));
  EXPECT_EQ(std::count(sarif.begin(), sarif.end(), '['),
            std::count(sarif.begin(), sarif.end(), ']'));
}

TEST(LintRender, JsonEscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(pe::lint::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(pe::lint::json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(pe::lint::json_escape(std::string(1, '\x01')), "\\u0001");
}

}  // namespace
