// Chaos tests for the benchmark submission service: the terminal-state
// invariant (every submission reaches exactly one of Completed, Failed,
// Shed) must hold under injected faults at every service fault site,
// overload, expired deadlines, and real multi-worker concurrency — all at
// once. These run under ASan/UBSan and TSan in CI (label: chaos).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "perfeng/measure/timer.hpp"
#include "perfeng/resilience/fault_injection.hpp"
#include "perfeng/service/service.hpp"

namespace {

using pe::service::BenchmarkService;
using pe::service::ServiceConfig;
using pe::service::ServiceStats;
using pe::service::ShedReason;
using pe::service::SubmissionRequest;
using pe::service::SubmitResult;
using pe::service::TerminalState;

std::function<void()> tiny_kernel() {
  return [] {
    double x = 1.0;
    for (int i = 0; i < 64; ++i) x += 1.0 / (1.0 + x);
    pe::do_not_optimize(x);
  };
}

SubmissionRequest request_of(const std::string& tenant,
                             const std::string& key,
                             std::function<void()> kernel = tiny_kernel(),
                             double deadline = 0.0) {
  SubmissionRequest request;
  request.tenant = tenant;
  request.workload_key = key;
  request.kernel = std::move(kernel);
  request.deadline_seconds = deadline;
  return request;
}

TEST(ServiceChaos, TerminalStateInvariantUnderCombinedChaos) {
  // Faults at every service site plus kernel faults, a deliberately tiny
  // queue, impossible deadlines on a third of the work, four tenants, and
  // real worker concurrency. The test does not care *which* terminal
  // state each submission reaches — only that each reaches exactly one,
  // and that the stats ledger partitions the campaign exactly.
  pe::resilience::FaultPlan plan;
  plan.seed = 99;
  plan.faults.push_back(
      {.site = std::string(pe::fault_sites::kServiceAdmit),
       .probability = 0.15});
  plan.faults.push_back(
      {.site = std::string(pe::fault_sites::kServiceDequeue),
       .probability = 0.15});
  plan.faults.push_back(
      {.site = std::string(pe::fault_sites::kServiceCache),
       .probability = 0.25});
  // kernel.call is visited thousands of times per run (batch calibration),
  // so an unbounded per-call probability would fail *every* run; a bounded
  // fire budget injects a handful of kernel faults and lets the rest of
  // the campaign breathe.
  plan.faults.push_back(
      {.site = std::string(pe::fault_sites::kKernelCall),
       .probability = 0.02,
       .max_fires = 5});
  pe::resilience::ScopedFaultInjection scope(std::move(plan));

  ServiceConfig config;
  config.workers = 4;
  config.queue.capacity = 8;        // overload is part of the campaign
  config.queue.tenant_capacity = 4;
  config.breaker.failure_threshold = 3;
  config.breaker.cooldown.initial_backoff_seconds = 1e-3;
  constexpr int kSubmissions = 200;
  std::vector<SubmitResult> results;
  ServiceStats stats;
  {
    BenchmarkService service(config);
    for (int i = 0; i < kSubmissions; ++i) {
      // A small key space exercises coalescing and the done cache; the
      // impossible deadline on every third submission exercises
      // expired-in-queue shedding.
      const double deadline = i % 3 == 0 ? 1e-9 : 0.0;
      results.push_back(service.submit(
          request_of("tenant" + std::to_string(i % 4),
                     "w" + std::to_string(i % 25), tiny_kernel(),
                     deadline)));
    }
    // Recovery phase: the flood above may burn every executing run on
    // the bounded kernel-fault budget and trip every flooded tenant's
    // breaker. A service that survived the storm must complete ordinary
    // work again. Let the backlog drain first (instant-shed probes would
    // otherwise race the queue and see it full for the whole phase), then
    // submit sequentially, each probe under a fresh tenant so no single
    // breaker's cooldown serializes the phase, until a completion lands.
    while (service.queue_depth() > 0) std::this_thread::yield();
    for (int i = 0; i < 50 && service.stats().completed == 0; ++i) {
      results.push_back(service.submit(
          request_of("fresh" + std::to_string(i),
                     "recovery" + std::to_string(i))));
      (void)results.back().outcome.get();
    }
    // Every future is valid and resolves — no lost submissions.
    for (const SubmitResult& r : results) {
      ASSERT_TRUE(r.outcome.valid());
      (void)r.outcome.get();
    }
    stats = service.stats();
  }  // service destructor: joins drains; must not hang or break promises

  EXPECT_EQ(stats.submitted, results.size());
  // Ledger identity 1: admission decisions partition the submissions.
  EXPECT_EQ(stats.submitted, stats.admitted + stats.coalesced +
                                 stats.cache_hits +
                                 stats.shed_at_admission());
  // Ledger identity 2: every admitted submission retired exactly once.
  EXPECT_EQ(stats.admitted, stats.completed + stats.failed +
                                stats.shed_deadline +
                                stats.shed_shutdown_queued);
  // Ledger identity 3: terminal outcomes cover the whole campaign.
  EXPECT_EQ(stats.terminal(), results.size());
  // The cache never causes extra runs.
  EXPECT_LE(stats.workloads_run, stats.admitted);
  // The campaign actually exercised what it claims to exercise.
  EXPECT_GT(stats.shed_deadline + stats.shed_at_admission(), 0u);
  EXPECT_GT(stats.completed, 0u);
}

TEST(ServiceChaos, SingleFlightCoalescesConcurrentIdenticalSubmissions) {
  ServiceConfig config;
  config.workers = 1;
  BenchmarkService service(config);

  // The leader blocks inside its kernel, pinning the key in flight.
  auto release = std::make_shared<std::atomic<bool>>(false);
  auto runs = std::make_shared<std::atomic<int>>(0);
  const auto blocking = [release, runs] {
    runs->fetch_add(1);
    while (!release->load()) std::this_thread::yield();
  };
  const SubmitResult leader =
      service.submit(request_of("alice", "shared", blocking));
  ASSERT_TRUE(leader.admitted);

  // Identical concurrent submissions (any tenant) join the leader's run
  // instead of queueing duplicates.
  std::vector<SubmitResult> joiners;
  for (int i = 0; i < 5; ++i) {
    joiners.push_back(service.submit(
        request_of("tenant" + std::to_string(i), "shared", blocking)));
  }
  for (const SubmitResult& r : joiners) {
    EXPECT_TRUE(r.coalesced);
    EXPECT_FALSE(r.admitted);
  }
  release->store(true);

  EXPECT_EQ(leader.outcome.get().state, TerminalState::kCompleted);
  for (const SubmitResult& r : joiners) {
    EXPECT_EQ(r.outcome.get().state, TerminalState::kCompleted);
  }
  // One run served all six submissions; a seventh is a pure cache hit.
  EXPECT_EQ(service.stats().workloads_run, 1u);
  EXPECT_EQ(service.cache_stats().joins, 5u);
  const SubmitResult late =
      service.submit(request_of("late", "shared", blocking));
  EXPECT_TRUE(late.cache_hit);
  EXPECT_EQ(late.outcome.get().state, TerminalState::kCompleted);
  EXPECT_EQ(service.stats().workloads_run, 1u);
}

TEST(ServiceChaos, CacheFaultDegradesToUncachedRuns) {
  // With the cache faulting on every lookup, identical submissions just
  // run twice — slower, never wrong, never lost.
  pe::resilience::FaultPlan plan;
  plan.faults.push_back(
      {.site = std::string(pe::fault_sites::kServiceCache),
       .probability = 1.0});
  pe::resilience::ScopedFaultInjection scope(std::move(plan));
  ServiceConfig config;
  config.workers = 1;
  {
    BenchmarkService service(config);
    const SubmitResult a = service.submit(request_of("t", "same"));
    const SubmitResult b = service.submit(request_of("t", "same"));
    EXPECT_EQ(a.outcome.get().state, TerminalState::kCompleted);
    EXPECT_EQ(b.outcome.get().state, TerminalState::kCompleted);
    EXPECT_FALSE(b.cache_hit);
    EXPECT_FALSE(b.coalesced);
    EXPECT_EQ(service.stats().workloads_run, 2u);
    EXPECT_EQ(service.cache_stats().bypasses, 2u);
  }
}

TEST(ServiceChaos, AdmissionFaultIsExplicitBackpressure) {
  pe::resilience::FaultPlan plan;
  plan.faults.push_back(
      {.site = std::string(pe::fault_sites::kServiceAdmit),
       .probability = 1.0});
  pe::resilience::ScopedFaultInjection scope(std::move(plan));
  ServiceConfig config;
  config.workers = 1;
  {
    BenchmarkService service(config);
    const SubmitResult r = service.submit(request_of("t", "k"));
    EXPECT_FALSE(r.admitted);
    EXPECT_EQ(r.shed_reason, ShedReason::kAdmissionFault);
    const auto outcome = r.outcome.get();
    EXPECT_EQ(outcome.state, TerminalState::kShed);
    EXPECT_EQ(outcome.shed_reason, ShedReason::kAdmissionFault);
    EXPECT_EQ(service.stats().shed_admission_fault, 1u);
    EXPECT_EQ(service.stats().workloads_run, 0u);
  }
}

TEST(ServiceChaos, DequeueFaultFailsTheSubmissionStructurally) {
  pe::resilience::FaultPlan plan;
  plan.faults.push_back(
      {.site = std::string(pe::fault_sites::kServiceDequeue),
       .probability = 1.0});
  pe::resilience::ScopedFaultInjection scope(std::move(plan));
  ServiceConfig config;
  config.workers = 1;
  {
    BenchmarkService service(config);
    const SubmitResult r = service.submit(request_of("t", "k"));
    EXPECT_TRUE(r.admitted);
    const auto outcome = r.outcome.get();
    EXPECT_EQ(outcome.state, TerminalState::kFailed);
    EXPECT_EQ(outcome.failure_kind, pe::resilience::FailureKind::kFault);
    EXPECT_NE(outcome.error.find("service.dequeue"), std::string::npos);
    EXPECT_EQ(service.stats().failed, 1u);
    EXPECT_EQ(service.stats().workloads_run, 0u);
  }
}

TEST(ServiceChaos, DestructionMidCampaignLosesNothing) {
  // Stop-the-world while work is queued and running: in-flight runs
  // finish, queued work sheds as kShutdown, nothing hangs or breaks.
  ServiceConfig config;
  config.workers = 1;
  auto release = std::make_shared<std::atomic<bool>>(false);
  const auto blocking = [release] {
    while (!release->load()) std::this_thread::yield();
  };
  std::vector<SubmitResult> results;
  {
    BenchmarkService service(config);
    results.push_back(service.submit(request_of("t", "block", blocking)));
    while (service.stats().workloads_run == 0) std::this_thread::yield();
    for (int i = 0; i < 4; ++i) {
      results.push_back(
          service.submit(request_of("t", "q" + std::to_string(i))));
    }
    service.stop();
    release->store(true);
  }  // destructor joins everything
  ASSERT_EQ(results.size(), 5u);
  EXPECT_EQ(results[0].outcome.get().state, TerminalState::kCompleted);
  for (std::size_t i = 1; i < results.size(); ++i) {
    const auto outcome = results[i].outcome.get();
    EXPECT_EQ(outcome.state, TerminalState::kShed);
    EXPECT_EQ(outcome.shed_reason, ShedReason::kShutdown);
  }
}

}  // namespace
