// Tests for the error-handling primitives in perfeng/common/error.hpp.
#include "perfeng/common/error.hpp"

#include <gtest/gtest.h>

namespace {

void guarded(int v) { PE_REQUIRE(v > 0, "v must be positive"); }

TEST(Error, RequirePassesOnTrueCondition) {
  EXPECT_NO_THROW(guarded(1));
  EXPECT_NO_THROW(guarded(100));
}

TEST(Error, RequireThrowsPeError) {
  EXPECT_THROW(guarded(0), pe::Error);
  EXPECT_THROW(guarded(-5), pe::Error);
}

TEST(Error, ErrorIsARuntimeError) {
  EXPECT_THROW(guarded(0), std::runtime_error);
}

TEST(Error, MessageContainsConditionAndContext) {
  try {
    guarded(-1);
    FAIL() << "expected throw";
  } catch (const pe::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("v > 0"), std::string::npos) << what;
    EXPECT_NE(what.find("v must be positive"), std::string::npos) << what;
  }
}

TEST(Error, AssertBehavesLikeRequireByDefault) {
  auto checked = [](int v) { PE_ASSERT(v != 42, "not the answer"); };
  EXPECT_NO_THROW(checked(1));
  EXPECT_THROW(checked(42), pe::Error);
}

TEST(Error, ConstructibleFromString) {
  const pe::Error e("custom message");
  EXPECT_STREQ(e.what(), "custom message");
}

}  // namespace
