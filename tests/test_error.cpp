// Tests for the error-handling primitives in perfeng/common/error.hpp.
#include "perfeng/common/error.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

namespace {

void guarded(int v) { PE_REQUIRE(v > 0, "v must be positive"); }

TEST(Error, RequirePassesOnTrueCondition) {
  EXPECT_NO_THROW(guarded(1));
  EXPECT_NO_THROW(guarded(100));
}

TEST(Error, RequireThrowsPeError) {
  EXPECT_THROW(guarded(0), pe::Error);
  EXPECT_THROW(guarded(-5), pe::Error);
}

TEST(Error, ErrorIsARuntimeError) {
  EXPECT_THROW(guarded(0), std::runtime_error);
}

TEST(Error, MessageContainsConditionAndContext) {
  try {
    guarded(-1);
    FAIL() << "expected throw";
  } catch (const pe::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("v > 0"), std::string::npos) << what;
    EXPECT_NE(what.find("v must be positive"), std::string::npos) << what;
  }
}

TEST(Error, AssertBehavesLikeRequireByDefault) {
  auto checked = [](int v) { PE_ASSERT(v != 42, "not the answer"); };
  EXPECT_NO_THROW(checked(1));
  EXPECT_THROW(checked(42), pe::Error);
}

TEST(Error, ConstructibleFromString) {
  const pe::Error e("custom message");
  EXPECT_STREQ(e.what(), "custom message");
}

struct Named {
  std::string name;
};

TEST(RequireUniqueName, PassesWhenNameIsAbsent) {
  const std::vector<Named> items = {{"alpha"}, {"beta"}};
  EXPECT_NO_THROW(pe::require_unique_name(items, "gamma", "item"));
  EXPECT_NO_THROW(pe::require_unique_name(std::vector<Named>{}, "x", "item"));
}

TEST(RequireUniqueName, ThrowsNamingTheDuplicate) {
  const std::vector<Named> items = {{"alpha"}, {"beta"}};
  try {
    pe::require_unique_name(items, "beta", "factor");
    FAIL() << "expected throw";
  } catch (const pe::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate factor"), std::string::npos) << what;
    EXPECT_NE(what.find("'beta'"), std::string::npos) << what;
  }
}

TEST(RequireUniqueName, SupportsCustomProjection) {
  const std::map<std::string, int> by_key = {{"a", 1}, {"b", 2}};
  auto key = [](const auto& kv) -> const std::string& { return kv.first; };
  EXPECT_NO_THROW(pe::require_unique_name(by_key, "c", "site", key));
  EXPECT_THROW(pe::require_unique_name(by_key, "a", "site", key), pe::Error);
}

}  // namespace
