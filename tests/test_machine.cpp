// Tests for the machine description layer: validation, lossless and
// byte-stable JSON serialization, the preset registry, the PERFENG_MACHINE
// resolver, and the probe bridge.
#include "perfeng/machine/machine.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "perfeng/common/error.hpp"
#include "perfeng/machine/registry.hpp"
#include "perfeng/microbench/machine_probe.hpp"

namespace {

using pe::machine::Machine;
using pe::machine::MemoryLevel;

Machine sample_machine() {
  Machine m;
  m.name = "test-node";
  m.description = "a machine invented for the tests";
  m.source = "preset";
  m.peak_flops = 3.2e10;
  m.cores = 8;
  m.hierarchy = {
      {"L1", 8e11, 1.2e-9, 32 * 1024, 64},
      {"L2", 4e11, 4.0e-9, 256 * 1024, 64},
      {"DRAM", 6e10, 9e-8, 0, 64},
  };
  m.static_watts = 12.0;
  m.peak_dynamic_watts = 48.0;
  m.link_alpha = 2e-6;
  m.link_beta = 1.0 / 1e10;
  return m;
}

// --- validation -------------------------------------------------------------

TEST(Machine, CheckAcceptsSample) { EXPECT_NO_THROW(sample_machine().check()); }

TEST(Machine, CheckRejectsEmptyName) {
  Machine m = sample_machine();
  m.name.clear();
  EXPECT_THROW(m.check(), pe::Error);
}

TEST(Machine, CheckRejectsZeroPeak) {
  Machine m = sample_machine();
  m.peak_flops = 0.0;
  EXPECT_THROW(m.check(), pe::Error);
}

TEST(Machine, CheckRejectsZeroCores) {
  Machine m = sample_machine();
  m.cores = 0;
  EXPECT_THROW(m.check(), pe::Error);
}

TEST(Machine, CheckRejectsEmptyHierarchy) {
  Machine m = sample_machine();
  m.hierarchy.clear();
  EXPECT_THROW(m.check(), pe::Error);
}

TEST(Machine, CheckRejectsDuplicateLevelNames) {
  Machine m = sample_machine();
  m.hierarchy[1].name = "L1";
  EXPECT_THROW(m.check(), pe::Error);
}

TEST(Machine, CheckRejectsBandwidthIncreasingTowardMemory) {
  Machine m = sample_machine();
  m.hierarchy[2].bandwidth = m.hierarchy[0].bandwidth * 2.0;
  EXPECT_THROW(m.check(), pe::Error);
}

TEST(Machine, CheckRejectsNonIncreasingCapacity) {
  Machine m = sample_machine();
  m.hierarchy[1].capacity = m.hierarchy[0].capacity;
  EXPECT_THROW(m.check(), pe::Error);
}

TEST(Machine, CheckRejectsLatencyDecreasingTowardMemory) {
  Machine m = sample_machine();
  m.hierarchy[2].latency = m.hierarchy[0].latency / 2.0;
  EXPECT_THROW(m.check(), pe::Error);
}

TEST(Machine, CheckRejectsCacheLevelWithoutCapacity) {
  Machine m = sample_machine();
  m.hierarchy[0].capacity = 0;  // only the last level may be unbounded
  EXPECT_THROW(m.check(), pe::Error);
}

// --- derived views ----------------------------------------------------------

TEST(Machine, DerivedViews) {
  const Machine m = sample_machine();
  EXPECT_EQ(m.dram().name, "DRAM");
  EXPECT_EQ(m.fastest().name, "L1");
  EXPECT_DOUBLE_EQ(m.dram_bandwidth(), 6e10);
  EXPECT_DOUBLE_EQ(m.cache_bandwidth(), 8e11);
  EXPECT_EQ(m.largest_cache_bytes(), 256u * 1024u);
  EXPECT_DOUBLE_EQ(m.total_peak_flops(), 3.2e10 * 8.0);
  EXPECT_DOUBLE_EQ(m.ridge_intensity(), 3.2e10 / 6e10);
  EXPECT_TRUE(m.has_energy());
  EXPECT_TRUE(m.has_link());
}

// --- serialization ----------------------------------------------------------

TEST(MachineJson, RoundTripEquality) {
  const Machine m = sample_machine();
  const Machine back = pe::machine::from_json(pe::machine::to_json(m));
  EXPECT_EQ(back, m);
}

TEST(MachineJson, RoundTripIsByteStable) {
  const Machine m = sample_machine();
  const std::string once = pe::machine::to_json(m);
  const std::string twice = pe::machine::to_json(pe::machine::from_json(once));
  EXPECT_EQ(once, twice);
}

TEST(MachineJson, RoundTripSurvivesAwkwardDoubles) {
  Machine m = sample_machine();
  m.peak_flops = 0.1 + 0.2;             // classic non-representable sum
  m.hierarchy[0].bandwidth = 1.0 / 3.0;
  m.hierarchy[0].latency = 1e-300;      // subnormal-adjacent magnitude
  m.hierarchy[1].bandwidth = 0.3;
  m.hierarchy[1].latency = 2.0;
  m.hierarchy[2].bandwidth = 0.25;
  m.hierarchy[2].latency = 3.0;
  const Machine back = pe::machine::from_json(pe::machine::to_json(m));
  EXPECT_EQ(back, m);
  EXPECT_EQ(pe::machine::to_json(back), pe::machine::to_json(m));
}

TEST(MachineJson, OmitsEnergyAndLinkWhenAbsent) {
  Machine m = sample_machine();
  m.static_watts = m.peak_dynamic_watts = 0.0;
  m.link_alpha = m.link_beta = 0.0;
  const std::string text = pe::machine::to_json(m);
  EXPECT_EQ(text.find("energy"), std::string::npos);
  EXPECT_EQ(text.find("link"), std::string::npos);
  EXPECT_EQ(pe::machine::from_json(text), m);
}

TEST(MachineJson, EscapesQuotesAndBackslashes) {
  Machine m = sample_machine();
  m.description = "a \"quoted\" name with a \\ backslash";
  const Machine back = pe::machine::from_json(pe::machine::to_json(m));
  EXPECT_EQ(back.description, m.description);
}

// --- malformed input: pe::Error with source + line --------------------------

std::string error_message(const std::string& text,
                          const std::string& source = "input.json") {
  try {
    (void)pe::machine::from_json(text, source);
  } catch (const pe::Error& e) {
    return e.what();
  }
  return {};
}

TEST(MachineJson, MalformedSyntaxReportsSourceAndLine) {
  const std::string msg = error_message("{\n  \"name\": \"x\",\n  oops\n}");
  EXPECT_NE(msg.find("machine:"), std::string::npos);
  EXPECT_NE(msg.find("input.json"), std::string::npos);
  EXPECT_NE(msg.find("line 3"), std::string::npos);
}

TEST(MachineJson, UnknownKeyReportsItsLine) {
  const std::string msg = error_message(
      "{\n  \"name\": \"x\",\n  \"warp_drive\": 9\n}");
  EXPECT_NE(msg.find("warp_drive"), std::string::npos);
  EXPECT_NE(msg.find("line 3"), std::string::npos);
}

TEST(MachineJson, WrongTypeReportsKeyAndLine) {
  const std::string msg =
      error_message("{\n  \"name\": 42,\n  \"peak_flops\": 1\n}");
  EXPECT_NE(msg.find("'name'"), std::string::npos);
  EXPECT_NE(msg.find("line 2"), std::string::npos);
}

TEST(MachineJson, PartialFileRejected) {
  // Syntactically valid but incomplete: no hierarchy.
  EXPECT_THROW(
      (void)pe::machine::from_json("{\"name\": \"x\", \"peak_flops\": 1e9}"),
      pe::Error);
  // Hierarchy entry without a bandwidth.
  EXPECT_THROW((void)pe::machine::from_json(
                   "{\"name\": \"x\", \"peak_flops\": 1e9,"
                   " \"hierarchy\": [{\"level\": \"DRAM\"}]}"),
               pe::Error);
  // Parses but fails check(): negative-capability machine.
  EXPECT_THROW((void)pe::machine::from_json(
                   "{\"name\": \"x\", \"peak_flops\": -1,"
                   " \"hierarchy\": [{\"level\": \"DRAM\","
                   " \"bandwidth\": 1e9}]}"),
               pe::Error);
}

TEST(MachineJson, TruncatedFileRejected) {
  EXPECT_THROW((void)pe::machine::from_json("{\"name\": \"x\","), pe::Error);
  EXPECT_THROW((void)pe::machine::from_json(""), pe::Error);
}

// --- file IO ----------------------------------------------------------------

TEST(MachineJson, SaveAndLoadFile) {
  const Machine m = sample_machine();
  const std::string path = ::testing::TempDir() + "pe_machine_roundtrip.json";
  pe::machine::save_json_file(m, path);
  const Machine back = pe::machine::load_json_file(path);
  EXPECT_EQ(back, m);
  std::remove(path.c_str());
}

TEST(MachineJson, LoadMissingFileThrows) {
  EXPECT_THROW((void)pe::machine::load_json_file("/nonexistent/machine.json"),
               pe::Error);
}

TEST(MachineJson, LoadMalformedFileNamesThePath) {
  const std::string path = ::testing::TempDir() + "pe_machine_bad.json";
  {
    std::ofstream out(path);
    out << "{\n  \"name\": \"x\"\n  \"peak_flops\": 1\n}\n";  // missing comma
  }
  try {
    (void)pe::machine::load_json_file(path);
    FAIL() << "expected pe::Error";
  } catch (const pe::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path), std::string::npos);
    EXPECT_NE(msg.find("line"), std::string::npos);
  }
  std::remove(path.c_str());
}

// --- calibration hash -------------------------------------------------------

TEST(Machine, CalibrationHashIsStableAndSensitive) {
  const Machine m = sample_machine();
  EXPECT_EQ(m.calibration_hash().size(), 16u);
  EXPECT_EQ(m.calibration_hash(), sample_machine().calibration_hash());
  Machine changed = m;
  changed.peak_flops *= 1.0000001;
  EXPECT_NE(changed.calibration_hash(), m.calibration_hash());
}

// --- scheduler calibration --------------------------------------------------

TEST(MachineScheduler, RoundTripsThroughJson) {
  Machine m = sample_machine();
  m.sched_submit_ns = 541.75;
  m.sched_bulk_ns = 11.125;
  EXPECT_TRUE(m.has_scheduler());
  const std::string text = pe::machine::to_json(m);
  EXPECT_NE(text.find("\"scheduler\""), std::string::npos);
  EXPECT_NE(text.find("\"submit_ns\""), std::string::npos);
  const Machine back = pe::machine::from_json(text);
  EXPECT_EQ(back, m);
  EXPECT_EQ(pe::machine::to_json(back), text);
}

TEST(MachineScheduler, OmittedWhenUnset) {
  const Machine m = sample_machine();
  EXPECT_FALSE(m.has_scheduler());
  EXPECT_EQ(pe::machine::to_json(m).find("\"scheduler\""),
            std::string::npos);
}

TEST(MachineScheduler, AffectsCalibrationHash) {
  Machine m = sample_machine();
  const std::string before = m.calibration_hash();
  m.sched_submit_ns = 500.0;
  m.sched_bulk_ns = 10.0;
  EXPECT_NE(m.calibration_hash(), before);
}

TEST(MachineScheduler, NegativeValuesRejected) {
  Machine m = sample_machine();
  m.sched_submit_ns = -1.0;
  EXPECT_THROW(m.check(), pe::Error);
  m.sched_submit_ns = 10.0;
  m.sched_bulk_ns = -0.5;
  EXPECT_THROW(m.check(), pe::Error);
}

TEST(MachineScheduler, UnknownSchedulerKeyRejected) {
  Machine m = sample_machine();
  m.sched_submit_ns = 500.0;
  m.sched_bulk_ns = 10.0;
  std::string text = pe::machine::to_json(m);
  const auto pos = text.find("\"submit_ns\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 11, "\"submit_xx\"");
  EXPECT_THROW((void)pe::machine::from_json(text), pe::Error);
}

// --- simd calibration -------------------------------------------------------

TEST(MachineSimd, RoundTripsThroughJson) {
  Machine m = sample_machine();
  m.simd_width_bits = 256;
  m.simd_fma = true;
  EXPECT_TRUE(m.has_simd());
  EXPECT_EQ(m.simd_double_lanes(), 4u);
  const std::string text = pe::machine::to_json(m);
  EXPECT_NE(text.find("\"simd\""), std::string::npos);
  EXPECT_NE(text.find("\"width_bits\""), std::string::npos);
  const Machine back = pe::machine::from_json(text);
  EXPECT_EQ(back, m);
  EXPECT_EQ(pe::machine::to_json(back), text);  // byte-stable
}

TEST(MachineSimd, OmittedWhenUnset) {
  const Machine m = sample_machine();
  EXPECT_FALSE(m.has_simd());
  EXPECT_EQ(m.simd_double_lanes(), 1u);  // scalar = one lane
  EXPECT_EQ(pe::machine::to_json(m).find("\"simd\""), std::string::npos);
}

TEST(MachineSimd, AffectsCalibrationHash) {
  Machine m = sample_machine();
  const std::string before = m.calibration_hash();
  m.simd_width_bits = 256;
  m.simd_fma = true;
  EXPECT_NE(m.calibration_hash(), before);
  // Width alone vs width+fma hash differently too — fma changes what a
  // flop costs, so it must pin measurements.
  Machine no_fma = m;
  no_fma.simd_fma = false;
  EXPECT_NE(no_fma.calibration_hash(), m.calibration_hash());
}

TEST(MachineSimd, InvalidCombinationsRejected) {
  Machine m = sample_machine();
  m.simd_width_bits = 100;  // not a multiple of 64
  EXPECT_THROW(m.check(), pe::Error);
  m.simd_width_bits = 0;
  m.simd_fma = true;  // FMA with no vector unit recorded
  EXPECT_THROW(m.check(), pe::Error);
  m.simd_width_bits = 128;
  EXPECT_NO_THROW(m.check());
  EXPECT_EQ(m.simd_double_lanes(), 2u);
}

TEST(MachineSimd, UnknownSimdKeyRejected) {
  Machine m = sample_machine();
  m.simd_width_bits = 256;
  std::string text = pe::machine::to_json(m);
  const auto pos = text.find("\"width_bits\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 12, "\"width_bitz\"");
  EXPECT_THROW((void)pe::machine::from_json(text), pe::Error);
}

TEST(MachineSimd, NonBooleanFmaRejected) {
  Machine m = sample_machine();
  m.simd_width_bits = 256;
  m.simd_fma = true;
  std::string text = pe::machine::to_json(m);
  const auto pos = text.find("\"fma\": true");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 11, "\"fma\": 1.00");
  EXPECT_THROW((void)pe::machine::from_json(text), pe::Error);
}

TEST(MachineSimd, PresetsCarryHonestVectorWidths) {
  const auto& reg = pe::machine::MachineRegistry::builtin();
  // Every CPU preset records its vector hardware; das5-node (Haswell
  // E5-2630v3) and cloud-smt have FMA, the conservative laptop preset
  // does not claim it.
  EXPECT_EQ(reg.get("das5-node").simd_width_bits, 256u);
  EXPECT_TRUE(reg.get("das5-node").simd_fma);
  EXPECT_EQ(reg.get("laptop-x86").simd_width_bits, 256u);
  EXPECT_FALSE(reg.get("laptop-x86").simd_fma);
  EXPECT_TRUE(reg.get("cloud-smt").simd_fma);
}

// --- registry + resolver ----------------------------------------------------

TEST(MachineRegistry, BuiltinPresetsValidate) {
  const auto& reg = pe::machine::MachineRegistry::builtin();
  EXPECT_GE(reg.size(), 4u);
  for (const std::string& name : reg.names())
    EXPECT_NO_THROW(reg.get(name).check()) << name;
  EXPECT_TRUE(reg.contains("das5-node"));
  EXPECT_TRUE(reg.contains("laptop-x86"));
}

TEST(MachineRegistry, RejectsDuplicateNames) {
  pe::machine::MachineRegistry reg;
  reg.add(sample_machine());
  EXPECT_THROW(reg.add(sample_machine()), pe::Error);
}

TEST(MachineRegistry, GetUnknownNameThrows) {
  EXPECT_THROW((void)pe::machine::MachineRegistry::builtin().get("no-such"),
               pe::Error);
}

TEST(MachineResolver, ResolvesPresetAndFile) {
  const Machine preset = pe::machine::resolve("das5-node");
  EXPECT_EQ(preset.name, "das5-node");

  const std::string path = ::testing::TempDir() + "pe_machine_resolve.json";
  pe::machine::save_json_file(sample_machine(), path);
  const Machine from_file = pe::machine::resolve(path);
  EXPECT_EQ(from_file, sample_machine());
  std::remove(path.c_str());

  EXPECT_THROW((void)pe::machine::resolve("neither-preset-nor-file"),
               pe::Error);
}

TEST(MachineResolver, EnvOverridesPreset) {
  ASSERT_EQ(::setenv(pe::machine::kMachineEnv, "das5-gpu", 1), 0);
  EXPECT_EQ(pe::machine::resolve_or_preset("das5-node").name, "das5-gpu");
  ASSERT_TRUE(pe::machine::machine_from_env().has_value());

  ASSERT_EQ(::unsetenv(pe::machine::kMachineEnv), 0);
  EXPECT_EQ(pe::machine::resolve_or_preset("das5-node").name, "das5-node");
  EXPECT_FALSE(pe::machine::machine_from_env().has_value());
}

// --- probe bridge -----------------------------------------------------------

TEST(MachineFromProbe, MapsCharacterizationFields) {
  pe::microbench::MachineCharacterization probe;
  probe.peak_flops = 2e10;
  probe.memory_bandwidth = 3e10;
  probe.cache_bandwidth = 3e11;
  probe.memory_latency = 8e-8;
  probe.cache_latency = 2e-9;
  probe.cache_level_bytes = {32 * 1024, 1 << 20};

  const Machine m = pe::machine::from_probe(probe, "bridge-test");
  EXPECT_NO_THROW(m.check());
  EXPECT_EQ(m.name, "bridge-test");
  EXPECT_EQ(m.source, "probe");
  EXPECT_DOUBLE_EQ(m.peak_flops, 2e10);
  EXPECT_GE(m.cores, 1u);
  ASSERT_EQ(m.hierarchy.size(), 3u);  // two cache levels + DRAM
  EXPECT_DOUBLE_EQ(m.hierarchy.front().bandwidth, 3e11);
  EXPECT_DOUBLE_EQ(m.hierarchy.front().latency, 2e-9);
  EXPECT_EQ(m.hierarchy.front().capacity, 32u * 1024u);
  EXPECT_EQ(m.hierarchy.back().name, "DRAM");
  EXPECT_DOUBLE_EQ(m.hierarchy.back().bandwidth, 3e10);
  EXPECT_DOUBLE_EQ(m.hierarchy.back().latency, 8e-8);
}

TEST(MachineFromProbe, NoDetectedCachesStillValidates) {
  pe::microbench::MachineCharacterization probe;
  probe.peak_flops = 1e10;
  probe.memory_bandwidth = 2e10;
  probe.cache_bandwidth = 1e11;
  const Machine m = pe::machine::from_probe(probe);
  EXPECT_NO_THROW(m.check());
  EXPECT_EQ(m.hierarchy.back().name, "DRAM");
}

TEST(MachineFromProbe, NoisyProbeIsClampedMonotone) {
  pe::microbench::MachineCharacterization probe;
  probe.peak_flops = 1e10;
  probe.memory_bandwidth = 9e10;  // "faster" DRAM than cache: noisy probe
  probe.cache_bandwidth = 8e10;
  probe.memory_latency = 1e-9;    // and a latency inversion
  probe.cache_latency = 5e-9;
  probe.cache_level_bytes = {64 * 1024};
  EXPECT_NO_THROW(pe::machine::from_probe(probe).check());
}

}  // namespace
