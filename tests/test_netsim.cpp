// Tests for the message-passing simulator in perfeng/sim/netsim.hpp,
// cross-validated against the alpha-beta closed forms.
#include "perfeng/sim/netsim.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"
#include "perfeng/models/network.hpp"

namespace {

using pe::sim::MessageNetwork;
using pe::sim::NetworkCost;

NetworkCost cost() { return {1e-6, 1e-9}; }  // 1 us latency, 1 GB/s

TEST(Netsim, P2pDeliveryTiming) {
  MessageNetwork net(2, cost());
  net.send(0, 1, 1000);
  net.recv(1, 0);
  // Arrival = 0 + alpha + beta*1000 = 2e-6.
  EXPECT_DOUBLE_EQ(net.clock(1), 1e-6 + 1e-9 * 1000);
  EXPECT_DOUBLE_EQ(net.clock(0), 1e-6);  // sender pays alpha only
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.bytes_sent(), 1000u);
}

TEST(Netsim, RecvAfterLocalComputeTakesMax) {
  MessageNetwork net(2, cost());
  net.send(0, 1, 100);
  net.compute(1, 1.0);  // receiver is busy long past the arrival
  net.recv(1, 0);
  EXPECT_DOUBLE_EQ(net.clock(1), 1.0);
}

TEST(Netsim, FifoMatchingPerChannel) {
  MessageNetwork net(2, cost());
  net.send(0, 1, 10, /*tag=*/7);
  net.compute(0, 1.0);
  net.send(0, 1, 10, /*tag=*/7);
  net.recv(1, 0, 7);  // matches the first (early) message
  const double first = net.clock(1);
  EXPECT_LT(first, 1e-3);
  net.recv(1, 0, 7);  // second arrives after the compute
  EXPECT_GT(net.clock(1), 1.0);
}

TEST(Netsim, TagsKeepChannelsSeparate) {
  MessageNetwork net(2, cost());
  net.send(0, 1, 10, 1);
  EXPECT_THROW(net.recv(1, 0, /*tag=*/2), pe::Error);
  net.recv(1, 0, 1);
}

TEST(Netsim, UnreceivedMessageFailsFinish) {
  MessageNetwork net(2, cost());
  net.send(0, 1, 10);
  EXPECT_THROW((void)net.finish_time(), pe::Error);
  net.recv(1, 0);
  EXPECT_NO_THROW((void)net.finish_time());
}

TEST(Netsim, SelfSendRejected) {
  MessageNetwork net(2, cost());
  EXPECT_THROW(net.send(0, 0, 10), pe::Error);
}

TEST(Netsim, BroadcastMatchesLogTreeModel) {
  for (unsigned p : {2u, 4u, 8u, 16u}) {
    MessageNetwork net(p, cost());
    const double simulated = pe::sim::simulate_broadcast(net, 4096);
    pe::models::AlphaBetaModel model{cost().alpha, cost().beta};
    const double predicted = model.broadcast(p, 4096);
    // The simulated tree pipeline may beat the serial-steps closed form
    // slightly; they must agree within a small factor.
    EXPECT_NEAR(simulated, predicted, predicted * 0.5) << "p=" << p;
  }
}

TEST(Netsim, RingAllreduceMatchesModelShape) {
  for (unsigned p : {2u, 4u, 8u}) {
    MessageNetwork net(p, cost());
    const double simulated = pe::sim::simulate_ring_allreduce(net, 1 << 20);
    pe::models::AlphaBetaModel model{cost().alpha, cost().beta};
    const double predicted = model.ring_allreduce(p, 1 << 20);
    EXPECT_NEAR(simulated, predicted, predicted * 0.5) << "p=" << p;
  }
}

TEST(Netsim, RingAllreduceBandwidthTermDominatesForLargeMessages) {
  // For large m the ring moves ~2m bytes regardless of p: times for p=4
  // and p=8 should be close (the celebrated bandwidth-optimality).
  MessageNetwork n4(4, cost()), n8(8, cost());
  const double t4 = pe::sim::simulate_ring_allreduce(n4, 8 << 20);
  const double t8 = pe::sim::simulate_ring_allreduce(n8, 8 << 20);
  EXPECT_NEAR(t4, t8, t4 * 0.35);
}

TEST(Netsim, HaloExchangeCostIndependentOfRanks) {
  MessageNetwork small(4, cost()), large(16, cost());
  const double ts = pe::sim::simulate_halo_exchange(small, 8192, 1e-3);
  const double tl = pe::sim::simulate_halo_exchange(large, 8192, 1e-3);
  EXPECT_NEAR(ts, tl, ts * 0.05);
}

TEST(Netsim, HaloExchangeSingleRankIsComputeOnly) {
  MessageNetwork net(1, cost());
  EXPECT_DOUBLE_EQ(pe::sim::simulate_halo_exchange(net, 1024, 0.5), 0.5);
}

TEST(Netsim, ComputeAdvancesOnlyOneRank) {
  MessageNetwork net(3, cost());
  net.compute(1, 2.0);
  EXPECT_DOUBLE_EQ(net.clock(0), 0.0);
  EXPECT_DOUBLE_EQ(net.clock(1), 2.0);
  EXPECT_DOUBLE_EQ(net.clock(2), 0.0);
}

TEST(Netsim, RankBoundsChecked) {
  MessageNetwork net(2, cost());
  EXPECT_THROW(net.compute(2, 1.0), pe::Error);
  EXPECT_THROW(net.send(0, 5, 1), pe::Error);
  EXPECT_THROW((void)net.clock(9), pe::Error);
}

}  // namespace
