// Tests for the Figure 1 / Table 1 / Table 2 generators in perfeng/course.
#include "perfeng/course/tables.hpp"

#include <gtest/gtest.h>

#include "perfeng/course/data.hpp"

namespace {

using namespace pe::course;

TEST(Figure1, TableHasOneRowPerYearPlusTotal) {
  const auto t = figure1_table();
  EXPECT_EQ(t.rows(), 8u);
  EXPECT_EQ(t.columns(), 4u);
  const std::string out = t.render();
  EXPECT_NE(out.find("2017"), std::string::npos);
  EXPECT_NE(out.find("2023"), std::string::npos);
  EXPECT_NE(out.find("146"), std::string::npos);
  EXPECT_NE(out.find("93"), std::string::npos);
  EXPECT_NE(out.find("41"), std::string::npos);
}

TEST(Figure1, MissingEvaluationsRenderAsNa) {
  const std::string out = figure1_table().render();
  EXPECT_NE(out.find("n/a"), std::string::npos);
}

TEST(Figure1, AsciiChartShowsEveryYear) {
  const std::string chart = figure1_ascii();
  for (int year = 2017; year <= 2023; ++year) {
    EXPECT_NE(chart.find(std::to_string(year)), std::string::npos) << year;
  }
  EXPECT_NE(chart.find("Figure 1"), std::string::npos);
  // Growth: the 2023 bar must be longer than the 2017 bar.
  const auto line_of = [&](const std::string& year) {
    const auto pos = chart.find(year);
    const auto end = chart.find('\n', pos);
    return chart.substr(pos, end - pos);
  };
  EXPECT_GT(line_of("2023").size(), line_of("2017").size());
}

TEST(Table1Render, HasAllTopicsAndAxisHeaders) {
  const auto t = table1();
  EXPECT_EQ(t.rows(), topic_coverage().size());
  EXPECT_EQ(t.columns(), 1u + 7u + 8u);
  const std::string out = t.render();
  EXPECT_NE(out.find("Roofline model and extensions"), std::string::npos);
  EXPECT_NE(out.find("S1"), std::string::npos);
  EXPECT_NE(out.find("O8"), std::string::npos);
}

TEST(Table1Render, ChecksMatchTheData) {
  const std::string csv = table1().render_csv();
  // "Queuing theory" covers stage 3: its row must contain an x in S3.
  const auto pos = csv.find("Queuing theory");
  ASSERT_NE(pos, std::string::npos);
  const auto line = csv.substr(pos, csv.find('\n', pos) - pos);
  // Columns: topic,S1..S7,O1..O8 -> S3 is field index 3.
  std::vector<std::string> fields;
  std::size_t start = 0;
  for (std::size_t comma = line.find(',');;
       comma = line.find(',', start)) {
    fields.push_back(line.substr(start, comma - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  EXPECT_EQ(fields[3], "x");   // S3
  EXPECT_EQ(fields[1], "");    // S1 not covered by queuing theory
}

TEST(Table2Render, AgreementTableMatchesPaperShape) {
  const auto t = table2a();
  EXPECT_EQ(t.rows(), 13u);
  const std::string out = t.render();
  EXPECT_NE(out.find("Taught me a lot"), std::string::npos);
  EXPECT_NE(out.find("Assignment 4"), std::string::npos);
  EXPECT_NE(out.find("4.5"), std::string::npos);
}

TEST(Table2Render, LevelTableHasWorkloadAndLevel) {
  const auto t = table2b();
  EXPECT_EQ(t.rows(), 2u);
  const std::string out = t.render();
  EXPECT_NE(out.find("Workload"), std::string::npos);
  EXPECT_NE(out.find("4.0"), std::string::npos);
  EXPECT_NE(out.find("3.7"), std::string::npos);
}

TEST(Table2Render, RecomputedMeansShownNextToPaperMeans) {
  const std::string out = table2a().render();
  EXPECT_NE(out.find("M (paper)"), std::string::npos);
  EXPECT_NE(out.find("M (recomputed)"), std::string::npos);
}

}  // namespace
