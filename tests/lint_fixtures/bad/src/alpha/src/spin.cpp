// Fixture: backoff-free spin on an atomic — the wait-loop pass must flag
// both the braced busy-wait and the empty-body variant.
#include <atomic>

namespace pe {

std::atomic<bool> ready{false};
std::atomic<int> turns{0};

int spin_wait() {
  while (!ready.load(std::memory_order_acquire)) {
  }
  return 1;
}

void spin_empty() {
  while (turns.load(std::memory_order_relaxed) < 8);
}

}  // namespace pe
