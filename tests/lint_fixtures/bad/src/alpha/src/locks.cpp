// Fixture: classic AB/BA inversion on two mutex members — the lock-order
// pass must report a cycle whose witness names both functions.
#include <mutex>

#include "perfeng/alpha/a.hpp"

namespace pe {

struct Pair {
  std::mutex ma;
  std::mutex mb;

  void first() {
    std::lock_guard<std::mutex> ga(ma);
    std::lock_guard<std::mutex> gb(mb);
  }

  void second() {
    std::lock_guard<std::mutex> gb(mb);
    std::lock_guard<std::mutex> ga(ma);
  }
};

}  // namespace pe
