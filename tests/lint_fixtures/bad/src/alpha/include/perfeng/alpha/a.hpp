#pragma once
#include "perfeng/beta/b.hpp"
namespace pe {
inline int a() { return b(); }
}  // namespace pe
