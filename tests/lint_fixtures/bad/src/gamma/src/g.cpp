namespace pe {
int g() { return 3; }
}  // namespace pe
