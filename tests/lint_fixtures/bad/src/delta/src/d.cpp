namespace pe {
int d() { return 4; }
}  // namespace pe
