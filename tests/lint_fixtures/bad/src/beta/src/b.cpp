#include "perfeng/beta/b.hpp"
