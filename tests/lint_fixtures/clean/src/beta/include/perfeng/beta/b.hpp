#pragma once
namespace pe {
inline int b() { return 2; }
}  // namespace pe
