// Clean twin: both paths acquire ma before mb — a consistent global
// order, no cycle.
#include <mutex>

#include "perfeng/alpha/a.hpp"

namespace pe {

struct Pair {
  std::mutex ma;
  std::mutex mb;

  void first() {
    std::lock_guard<std::mutex> ga(ma);
    std::lock_guard<std::mutex> gb(mb);
  }

  void second() {
    std::scoped_lock both(ma, mb);
  }
};

}  // namespace pe
