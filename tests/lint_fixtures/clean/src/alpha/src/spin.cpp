// Clean twin: the wait loop yields each iteration — pacified.
#include <atomic>
#include <thread>

namespace pe {

std::atomic<bool> ready{false};

int polite_wait() {
  while (!ready.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  return 1;
}

}  // namespace pe
