// Tests for CSR graph processing in perfeng/kernels/graph.hpp.
#include "perfeng/kernels/graph.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "perfeng/common/error.hpp"

namespace {

using pe::kernels::Graph;

Graph diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 4
  return Graph::from_edges(5, {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}});
}

TEST(Graph, FromEdgesBuildsCsr) {
  const Graph g = diamond();
  EXPECT_EQ(g.vertices(), 5u);
  EXPECT_EQ(g.edges(), 5u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(4), 0u);
  const auto n0 = g.neighbours(0);
  EXPECT_EQ(std::vector<std::uint32_t>(n0.begin(), n0.end()),
            (std::vector<std::uint32_t>{1, 2}));
}

TEST(Graph, DuplicateEdgesRemoved) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.edges(), 2u);
}

TEST(Graph, OutOfBoundsEdgeRejected) {
  EXPECT_THROW((void)Graph::from_edges(2, {{0, 5}}), pe::Error);
}

TEST(Bfs, DistancesOnDiamond) {
  const auto dist = pe::kernels::bfs(diamond(), 0);
  EXPECT_EQ(dist, (std::vector<std::uint32_t>{0, 1, 1, 2, 3}));
}

TEST(Bfs, UnreachableVerticesAreMarked) {
  const Graph g = Graph::from_edges(4, {{0, 1}});
  const auto dist = pe::kernels::bfs(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], UINT32_MAX);
  EXPECT_EQ(dist[3], UINT32_MAX);
}

TEST(Bfs, SourceValidated) {
  EXPECT_THROW((void)pe::kernels::bfs(diamond(), 9), pe::Error);
}

TEST(Pagerank, SumsToOne) {
  const auto pr = pe::kernels::pagerank(diamond());
  const double total = std::accumulate(pr.begin(), pr.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Pagerank, SinkAccumulatesRank) {
  // In the diamond, 4 is a sink fed by the whole graph; it outranks 1 / 2.
  const auto pr = pe::kernels::pagerank(diamond());
  EXPECT_GT(pr[4], pr[1]);
  EXPECT_GT(pr[3], pr[1]);
  EXPECT_NEAR(pr[1], pr[2], 1e-12);  // symmetric positions
}

TEST(Pagerank, CycleIsUniform) {
  const Graph ring = Graph::from_edges(
      4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const auto pr = pe::kernels::pagerank(ring);
  for (double r : pr) EXPECT_NEAR(r, 0.25, 1e-9);
}

TEST(Pagerank, DanglingMassRedistributed) {
  // 0 -> 1; 1 dangles. Ranks must still sum to 1.
  const Graph g = Graph::from_edges(2, {{0, 1}});
  const auto pr = pe::kernels::pagerank(g);
  EXPECT_NEAR(pr[0] + pr[1], 1.0, 1e-9);
  EXPECT_GT(pr[1], pr[0]);
}

TEST(Pagerank, ParallelMatchesSerial) {
  pe::Rng rng(13);
  const Graph g = pe::kernels::generate_uniform_graph(300, 2000, rng);
  const auto serial = pe::kernels::pagerank(g);
  pe::ThreadPool pool(4);
  const auto parallel = pe::kernels::pagerank_parallel(g, pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t v = 0; v < serial.size(); ++v)
    EXPECT_NEAR(serial[v], parallel[v], 1e-9);
}

TEST(Pagerank, ParameterValidation) {
  EXPECT_THROW((void)pe::kernels::pagerank(diamond(), 1.5), pe::Error);
  EXPECT_THROW((void)pe::kernels::pagerank(diamond(), 0.85, -1.0),
               pe::Error);
  EXPECT_THROW((void)pe::kernels::pagerank(diamond(), 0.85, 1e-8, 0),
               pe::Error);
}

TEST(Generators, UniformGraphHasRequestedShape) {
  pe::Rng rng(17);
  const Graph g = pe::kernels::generate_uniform_graph(100, 500, rng);
  EXPECT_EQ(g.vertices(), 100u);
  EXPECT_LE(g.edges(), 500u);   // duplicates removed
  EXPECT_GT(g.edges(), 400u);
}

TEST(Generators, PowerLawConcentratesInDegrees) {
  pe::Rng rng(19);
  const std::size_t n = 500;
  const Graph uniform = pe::kernels::generate_uniform_graph(n, 3000, rng);
  const Graph skewed =
      pe::kernels::generate_powerlaw_graph(n, 3000, 1.1, rng);

  // Compare in-degree concentration: top-10 targets' share.
  auto top10_share = [n](const Graph& g) {
    std::vector<std::size_t> indeg(n, 0);
    for (std::uint32_t v = 0; v < n; ++v)
      for (auto w : g.neighbours(v)) ++indeg[w];
    std::sort(indeg.begin(), indeg.end(), std::greater<>());
    const double total = std::accumulate(indeg.begin(), indeg.end(), 0.0);
    const double top = std::accumulate(indeg.begin(), indeg.begin() + 10,
                                       0.0);
    return top / total;
  };
  EXPECT_GT(top10_share(skewed), top10_share(uniform) * 3.0);
}

}  // namespace
