// Tests for AlignedBuffer in perfeng/common/aligned_buffer.hpp.
#include "perfeng/common/aligned_buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "perfeng/common/error.hpp"

namespace {

TEST(AlignedBuffer, DefaultAlignmentIsCacheLine) {
  pe::AlignedBuffer<double> buf(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) %
                pe::kCacheLineBytes,
            0u);
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_FALSE(buf.empty());
}

TEST(AlignedBuffer, CustomAlignmentHonored) {
  pe::AlignedBuffer<double> buf(16, 4096);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 4096, 0u);
  EXPECT_EQ(buf.alignment(), 4096u);
}

TEST(AlignedBuffer, ElementsValueInitialized) {
  pe::AlignedBuffer<double> buf(64);
  for (double v : buf) EXPECT_EQ(v, 0.0);
}

TEST(AlignedBuffer, IndexingReadsAndWrites) {
  pe::AlignedBuffer<int> buf(8);
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<int>(i);
  EXPECT_EQ(buf[7], 7);
  EXPECT_EQ(buf.span()[3], 3);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  pe::AlignedBuffer<int> a(4);
  a[0] = 99;
  const int* data = a.data();
  pe::AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(b[0], 99);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
}

TEST(AlignedBuffer, MoveAssignReleasesOldStorage) {
  pe::AlignedBuffer<int> a(4), b(8);
  b = std::move(a);
  EXPECT_EQ(b.size(), 4u);
}

TEST(AlignedBuffer, EmptyBufferIsValid) {
  pe::AlignedBuffer<double> buf(0);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.begin(), buf.end());
}

TEST(AlignedBuffer, RejectsNonPowerOfTwoAlignment) {
  EXPECT_THROW((pe::AlignedBuffer<double>(8, 48)), pe::Error);
}

TEST(AlignedBuffer, RejectsUnderAlignment) {
  EXPECT_THROW((pe::AlignedBuffer<double>(8, 4)), pe::Error);
}

}  // namespace
