// Chaos acceptance tests: a fault campaign over a whole benchmark suite
// must be survivable (the suite completes and scores the survivors) and
// deterministic (the same seed produces the same failure set).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "perfeng/counters/collector.hpp"
#include "perfeng/measure/suite.hpp"
#include "perfeng/resilience/fault_injection.hpp"

namespace {

using pe::BenchmarkRunner;
using pe::BenchmarkSuite;
using pe::MeasurementConfig;
using pe::SuiteScore;
using pe::resilience::FaultPlan;
using pe::resilience::ScopedFaultInjection;

BenchmarkSuite make_suite(int members) {
  BenchmarkSuite suite("chaos");
  for (int i = 0; i < members; ++i) {
    volatile static double sink = 0.0;
    suite.add({"member" + std::to_string(i), [] { sink = sink + 1.0; },
               1e-6});
  }
  return suite;
}

BenchmarkRunner fast_runner() {
  MeasurementConfig cfg;
  cfg.warmup_runs = 0;
  cfg.repetitions = 2;
  cfg.min_batch_seconds = 1e-9;
  return BenchmarkRunner(cfg);
}

std::vector<std::string> failed_names(const SuiteScore& score) {
  std::vector<std::string> names;
  names.reserve(score.failed.size());
  for (const auto& f : score.failed) names.push_back(f.name);
  return names;
}

TEST(Chaos, SuiteSurvivesInjectedKernelFaults) {
  const auto suite = make_suite(6);
  const auto runner = fast_runner();
  FaultPlan plan;
  plan.faults.push_back(
      {.site = std::string(pe::fault_sites::kKernelCall), .max_fires = 2});
  ScopedFaultInjection scope(std::move(plan));
  const SuiteScore score = suite.run(runner);

  // With p=1 and a budget of two fires, each member's very first kernel
  // visit decides its fate: exactly the first two members fail.
  EXPECT_EQ(failed_names(score),
            (std::vector<std::string>{"member0", "member1"}));
  EXPECT_FALSE(score.complete());
  ASSERT_EQ(score.results.size(), 4u);
  for (const auto& r : score.results) EXPECT_GT(r.ratio, 0.0);
  EXPECT_GT(score.geometric_mean_ratio, 0.0);  // partial score, survivors
  for (const auto& f : score.failed)
    EXPECT_NE(f.error.find("injected fault"), std::string::npos);
}

TEST(Chaos, SameSeedSameFailureSet) {
  const auto suite = make_suite(8);
  const auto runner = fast_runner();
  const auto campaign = [&](std::uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.faults.push_back(
        {.site = std::string(pe::fault_sites::kKernelCall),
         .probability = 0.3});
    ScopedFaultInjection scope(std::move(plan));
    return failed_names(suite.run(runner));
  };
  const auto a = campaign(1234);
  const auto b = campaign(1234);
  EXPECT_EQ(a, b);  // the chaos contract: reproducible failure sets
}

TEST(Chaos, AllMembersFailingYieldsEmptyScore) {
  const auto suite = make_suite(3);
  const auto runner = fast_runner();
  FaultPlan plan;
  plan.faults.push_back(
      {.site = std::string(pe::fault_sites::kKernelCall)});
  ScopedFaultInjection scope(std::move(plan));
  const SuiteScore score = suite.run(runner);
  EXPECT_EQ(score.failed.size(), 3u);
  EXPECT_TRUE(score.results.empty());
  EXPECT_EQ(score.geometric_mean_ratio, 0.0);
  EXPECT_EQ(score.arithmetic_mean_ratio, 0.0);
}

TEST(Chaos, CombinedCampaignAcrossKernelAndCounterSites) {
  // The acceptance scenario: one plan attacking both kernel.call and
  // counters.read. The suite completes and reports its failures, the
  // counter collector degrades instead of dying, and the same seed
  // reproduces the identical failure set.
  const auto suite = make_suite(6);
  const auto runner = fast_runner();
  const pe::counters::CounterCollector collector;
  const auto campaign = [&] {
    FaultPlan plan;
    plan.seed = 99;
    plan.faults.push_back(
        {.site = std::string(pe::fault_sites::kKernelCall),
         .probability = 0.4});
    plan.faults.push_back(
        {.site = std::string(pe::fault_sites::kCountersRead)});
    ScopedFaultInjection scope(std::move(plan));
    const SuiteScore score = suite.run(runner);
    const auto counters = collector.collect([] {
      volatile double sink = 0.0;
      for (int i = 0; i < 100; ++i) sink = sink + 1.0;
    });
    EXPECT_TRUE(counters.degraded);  // counters.read faulted, not fatal
    EXPECT_EQ(counters.backend, "simulated");
    EXPECT_EQ(score.results.size() + score.failed.size(), 6u);
    return failed_names(score);
  };
  const auto a = campaign();
  const auto b = campaign();
  EXPECT_EQ(a, b);
}

TEST(Chaos, NoPlanNoInterference) {
  // Without an active scope the suite runs exactly as before the
  // resilience work: complete score, no failures.
  const auto suite = make_suite(3);
  const SuiteScore score = suite.run(fast_runner());
  EXPECT_TRUE(score.complete());
  EXPECT_EQ(score.results.size(), 3u);
}

}  // namespace
