// Tests for the per-tenant circuit breaker in perfeng/service.
// Time is injected, so the whole state machine runs without sleeping.
#include "perfeng/service/circuit_breaker.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "perfeng/common/error.hpp"

namespace {

using pe::service::CircuitBreaker;
using pe::service::CircuitBreakerConfig;
using State = pe::service::CircuitBreaker::State;

/// A breaker plus the hand-advanced clock it reads.
struct Harness {
  explicit Harness(CircuitBreakerConfig config = tuned())
      : time(std::make_shared<double>(0.0)),
        breaker(config, [t = time] { return *t; }) {}

  static CircuitBreakerConfig tuned() {
    CircuitBreakerConfig config;
    config.failure_threshold = 3;
    config.half_open_probes = 1;
    config.successes_to_close = 1;
    config.cooldown.initial_backoff_seconds = 1.0;
    config.cooldown.backoff_multiplier = 2.0;
    config.cooldown.max_backoff_seconds = 30.0;
    return config;
  }

  void advance(double seconds) { *time += seconds; }

  std::shared_ptr<double> time;
  CircuitBreaker breaker;
};

TEST(CircuitBreaker, StartsClosedAndAllows) {
  Harness h;
  EXPECT_EQ(h.breaker.state(), State::kClosed);
  EXPECT_TRUE(h.breaker.allow());
  EXPECT_EQ(h.breaker.trips(), 0u);
}

TEST(CircuitBreaker, TripsOnConsecutiveFailuresOnly) {
  Harness h;
  h.breaker.on_failure();
  h.breaker.on_failure();
  EXPECT_EQ(h.breaker.consecutive_failures(), 2);
  h.breaker.on_success();  // a success resets the streak
  EXPECT_EQ(h.breaker.consecutive_failures(), 0);
  h.breaker.on_failure();
  h.breaker.on_failure();
  EXPECT_EQ(h.breaker.state(), State::kClosed);
  h.breaker.on_failure();  // third consecutive: trip
  EXPECT_EQ(h.breaker.state(), State::kOpen);
  EXPECT_FALSE(h.breaker.allow());
  EXPECT_EQ(h.breaker.trips(), 1u);
}

TEST(CircuitBreaker, HalfOpenAfterCooldownAdmitsBoundedProbes) {
  Harness h;
  for (int i = 0; i < 3; ++i) h.breaker.on_failure();
  ASSERT_EQ(h.breaker.state(), State::kOpen);
  h.advance(0.5);
  EXPECT_FALSE(h.breaker.allow());  // cooldown (1.0s) not elapsed
  h.advance(0.6);
  EXPECT_EQ(h.breaker.state(), State::kHalfOpen);
  EXPECT_TRUE(h.breaker.allow());   // the one probe slot
  EXPECT_FALSE(h.breaker.allow());  // no second probe while it is out
}

TEST(CircuitBreaker, ProbeSuccessCloses) {
  Harness h;
  for (int i = 0; i < 3; ++i) h.breaker.on_failure();
  h.advance(1.0);
  ASSERT_TRUE(h.breaker.allow());
  h.breaker.on_success();
  EXPECT_EQ(h.breaker.state(), State::kClosed);
  EXPECT_TRUE(h.breaker.allow());
  EXPECT_EQ(h.breaker.consecutive_failures(), 0);
}

TEST(CircuitBreaker, ProbeFailureReopensWithLongerCooldown) {
  Harness h;
  for (int i = 0; i < 3; ++i) h.breaker.on_failure();
  h.advance(1.0);  // first cooldown: 1.0s
  ASSERT_TRUE(h.breaker.allow());
  h.breaker.on_failure();  // probe failed: re-trip
  EXPECT_EQ(h.breaker.state(), State::kOpen);
  EXPECT_EQ(h.breaker.trips(), 2u);
  h.advance(1.0);
  EXPECT_FALSE(h.breaker.allow());  // second cooldown doubled to 2.0s
  h.advance(1.0);
  EXPECT_TRUE(h.breaker.allow());
}

TEST(CircuitBreaker, CloseResetsTheCooldownSchedule) {
  Harness h;
  // Trip twice (cooldowns 1.0s then 2.0s), then recover fully.
  for (int i = 0; i < 3; ++i) h.breaker.on_failure();
  h.advance(1.0);
  ASSERT_TRUE(h.breaker.allow());
  h.breaker.on_failure();
  h.advance(2.0);
  ASSERT_TRUE(h.breaker.allow());
  h.breaker.on_success();
  ASSERT_EQ(h.breaker.state(), State::kClosed);
  // A fresh trip starts over at the base cooldown, not at 4.0s.
  for (int i = 0; i < 3; ++i) h.breaker.on_failure();
  h.advance(1.0);
  EXPECT_EQ(h.breaker.state(), State::kHalfOpen);
}

TEST(CircuitBreaker, AbandonedProbeReleasesTheSlot) {
  // A probe that sheds downstream (full queue, cache hit) carries no
  // health evidence; without on_abandoned the breaker would stay
  // half-open with zero free probe slots forever.
  Harness h;
  for (int i = 0; i < 3; ++i) h.breaker.on_failure();
  h.advance(1.0);
  ASSERT_TRUE(h.breaker.allow());
  EXPECT_FALSE(h.breaker.allow());
  h.breaker.on_abandoned();
  EXPECT_TRUE(h.breaker.allow());  // the slot is usable again
}

TEST(CircuitBreaker, MultipleProbesNeedMultipleSuccesses) {
  CircuitBreakerConfig config = Harness::tuned();
  config.half_open_probes = 2;
  config.successes_to_close = 2;
  Harness h(config);
  for (int i = 0; i < 3; ++i) h.breaker.on_failure();
  h.advance(1.0);
  ASSERT_TRUE(h.breaker.allow());
  ASSERT_TRUE(h.breaker.allow());
  EXPECT_FALSE(h.breaker.allow());
  h.breaker.on_success();
  EXPECT_EQ(h.breaker.state(), State::kHalfOpen);  // one is not enough
  h.breaker.on_success();
  EXPECT_EQ(h.breaker.state(), State::kClosed);
}

TEST(CircuitBreaker, LateResultsWhileOpenAreIgnored) {
  Harness h;
  for (int i = 0; i < 3; ++i) h.breaker.on_failure();
  ASSERT_EQ(h.breaker.state(), State::kOpen);
  // Results of work admitted before the trip trickle in; the cooldown
  // stands either way.
  h.breaker.on_success();
  h.breaker.on_failure();
  EXPECT_EQ(h.breaker.state(), State::kOpen);
  EXPECT_EQ(h.breaker.trips(), 1u);
}

TEST(CircuitBreaker, ToStringNamesStates) {
  EXPECT_STREQ(pe::service::to_string(State::kClosed), "closed");
  EXPECT_STREQ(pe::service::to_string(State::kOpen), "open");
  EXPECT_STREQ(pe::service::to_string(State::kHalfOpen), "half-open");
}

TEST(CircuitBreaker, ValidationRejectsNonsense) {
  CircuitBreakerConfig config;
  config.failure_threshold = 0;
  EXPECT_THROW(pe::service::validate(config), pe::Error);
  config = {};
  config.half_open_probes = 0;
  EXPECT_THROW(pe::service::validate(config), pe::Error);
  config = {};
  config.successes_to_close = 0;
  EXPECT_THROW(pe::service::validate(config), pe::Error);
  config = {};
  config.cooldown.backoff_multiplier = 0.5;
  EXPECT_THROW(pe::service::validate(config), pe::Error);
  EXPECT_NO_THROW(pe::service::validate(CircuitBreakerConfig{}));
}

}  // namespace
