// Tests for the deterministic RNG in perfeng/common/rng.hpp.
#include "perfeng/common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "perfeng/common/error.hpp"

namespace {

TEST(Rng, SameSeedSameSequence) {
  pe::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  pe::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  pe::Rng rng(9);
  const auto first = rng.next_u64();
  rng.next_u64();
  rng.reseed(9);
  EXPECT_EQ(rng.next_u64(), first);
}

TEST(Rng, DoubleInUnitInterval) {
  pe::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  pe::Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, RangeIsInclusive) {
  pe::Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RangeSingletonAndInvalid) {
  pe::Rng rng(5);
  EXPECT_EQ(rng.next_range(42, 42), 42u);
  EXPECT_THROW(rng.next_range(5, 3), pe::Error);
}

TEST(Rng, RangeIsRoughlyUniform) {
  pe::Rng rng(21);
  std::vector<int> bins(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++bins[rng.next_range(0, 9)];
  for (int count : bins) {
    EXPECT_GT(count, n / 10 * 0.9);
    EXPECT_LT(count, n / 10 * 1.1);
  }
}

TEST(Rng, NormalMomentsMatch) {
  pe::Rng rng(31);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  pe::Rng rng(41);
  const double lambda = 2.5;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  pe::Rng rng(1);
  EXPECT_THROW(rng.next_exponential(0.0), pe::Error);
  EXPECT_THROW(rng.next_exponential(-1.0), pe::Error);
}

TEST(Rng, ZipfStaysInDomain) {
  pe::Rng rng(51);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(rng.next_zipf(100, 1.2), 100u);
  }
}

TEST(Rng, ZipfZeroSkewIsUniform) {
  pe::Rng rng(61);
  std::vector<int> bins(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++bins[rng.next_zipf(8, 0.0)];
  for (int count : bins) EXPECT_NEAR(count, n / 8, n / 8 * 0.1);
}

TEST(Rng, ZipfSkewConcentratesOnLowRanks) {
  pe::Rng rng(71);
  const int n = 50000;
  int top = 0;
  for (int i = 0; i < n; ++i)
    if (rng.next_zipf(1000, 1.2) < 10) ++top;
  // With skew 1.2 the top-10 of 1000 ranks should hold a large share.
  EXPECT_GT(static_cast<double>(top) / n, 0.4);
}

TEST(Rng, ZipfSingletonDomain) {
  pe::Rng rng(81);
  EXPECT_EQ(rng.next_zipf(1, 1.5), 0u);
  EXPECT_THROW(rng.next_zipf(0, 1.0), pe::Error);
}

TEST(Rng, ShuffleIsAPermutation) {
  pe::Rng rng(91);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

class RngRangeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngRangeSweep, BoundedByParam) {
  pe::Rng rng(GetParam());
  const std::uint64_t hi = GetParam();
  for (int i = 0; i < 2000; ++i) EXPECT_LE(rng.next_range(0, hi), hi);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngRangeSweep,
                         ::testing::Values(1, 2, 7, 63, 64, 1000,
                                           UINT64_MAX / 2));

}  // namespace
