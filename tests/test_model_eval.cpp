// Tests for the common model-evaluation interface (model_eval.hpp) and
// the eval adapters retrofitted onto the model zoo: every adapter must
// report exactly what the underlying closed form predicts, so wrapping a
// model as a composition leaf never changes its answer.
#include "perfeng/models/model_eval.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"
#include "perfeng/models/energy.hpp"
#include "perfeng/models/gpu.hpp"
#include "perfeng/models/interference.hpp"
#include "perfeng/models/network.hpp"
#include "perfeng/models/offload.hpp"
#include "perfeng/models/queuing.hpp"
#include "perfeng/models/scaling.hpp"

namespace {

using namespace pe::models;

TEST(Footprint, AbsorbSumsTimeLikeFieldsAndMaxesCores) {
  Footprint a{.flops = 10.0, .bytes = 100.0, .cores = 2.0, .joules = 1.0};
  const Footprint b{
      .flops = 5.0, .bytes = 50.0, .cores = 8.0, .joules = 0.5};
  a.absorb(b);
  EXPECT_DOUBLE_EQ(a.flops, 15.0);
  EXPECT_DOUBLE_EQ(a.bytes, 150.0);
  EXPECT_DOUBLE_EQ(a.cores, 8.0);
  EXPECT_DOUBLE_EQ(a.joules, 1.5);
}

TEST(ModelEval, ConstantReturnsTheCapturedEvaluation) {
  Evaluation e;
  e.seconds = 0.25;
  e.footprint.flops = 7.0;
  const ModelEval m = ModelEval::constant("test.constant", e);
  EXPECT_EQ(m.name(), "test.constant");
  EXPECT_EQ(m.evaluate(), e);
  EXPECT_EQ(m.evaluate(), m.evaluate());  // pure: stable across calls
}

TEST(ModelEval, RejectsEmptyNameAndMissingFunction) {
  EXPECT_THROW(ModelEval("", [] { return Evaluation{}; }), pe::Error);
  EXPECT_THROW(ModelEval("named", nullptr), pe::Error);
}

TEST(EvalAdapters, NetworkMatchesClosedForms) {
  const AlphaBetaModel net{1e-6, 1e-9};
  EXPECT_EQ(net.eval_p2p(1000).name(), "network.p2p");
  EXPECT_DOUBLE_EQ(net.eval_p2p(1000).evaluate().seconds, net.p2p(1000));
  EXPECT_DOUBLE_EQ(net.eval_broadcast(8, 256).evaluate().seconds,
                   net.broadcast(8, 256));
  EXPECT_DOUBLE_EQ(net.eval_allreduce(4, 4096).evaluate().seconds,
                   net.ring_allreduce(4, 4096));
  EXPECT_DOUBLE_EQ(net.eval_allreduce(4, 4096).evaluate().footprint.cores,
                   4.0);
}

TEST(EvalAdapters, ScalingProjectsTheSerialRuntime) {
  const SpeedupProjection proj{16.0};
  const Evaluation amdahl = proj.eval_amdahl(10.0, 0.1).evaluate();
  EXPECT_DOUBLE_EQ(amdahl.seconds, 10.0 / proj.amdahl(0.1));
  EXPECT_DOUBLE_EQ(amdahl.footprint.cores, 16.0);
  const Evaluation usl = proj.eval_usl(10.0, 0.05, 0.001).evaluate();
  EXPECT_DOUBLE_EQ(usl.seconds, 10.0 / proj.usl(0.05, 0.001));
}

TEST(EvalAdapters, QueuingWaitAndServiceMatchMmc) {
  const ServiceModel svc{100.0, 4};
  const Evaluation wait = svc.eval_wait(250.0).evaluate();
  EXPECT_DOUBLE_EQ(wait.seconds, svc.mmc(250.0).mean_wait);
  EXPECT_DOUBLE_EQ(wait.footprint.cores, 4.0);
  EXPECT_DOUBLE_EQ(svc.eval_service().evaluate().seconds, 1.0 / 100.0);
}

TEST(EvalAdapters, EnergyCarriesJoulesInTheFootprint) {
  const PowerModel power{20.0, 60.0};
  const Evaluation e = power.eval(2.0, 0.5, 1e9).evaluate();
  EXPECT_DOUBLE_EQ(e.seconds, 2.0);
  EXPECT_DOUBLE_EQ(e.footprint.joules, power.energy(2.0, 0.5));
  EXPECT_DOUBLE_EQ(e.footprint.flops, 1e9);
}

TEST(EvalAdapters, OffloadHostVsDeviceMatchTheDecisionModel) {
  const OffloadModel m{{1e9, 1e10}, {1e10, 1e11}, {1e-5, 1e-10}};
  const double flops = 2e9, in = 1e6, out = 5e5;
  EXPECT_DOUBLE_EQ(m.eval_host(flops, in + out).evaluate().seconds,
                   m.host_time(flops, in + out));
  EXPECT_DOUBLE_EQ(m.eval_offload(flops, in, out).evaluate().seconds,
                   m.offload_time(flops, in, out));
  EXPECT_EQ(m.eval_offload(flops, in, out).name(), "offload.device");
}

TEST(EvalAdapters, InterferencePricesCoRunners) {
  const SharedSystemModel shared{1e10, 2e10};
  const double flops = 1e8, bytes = 1e9;
  const ModelEval alone = shared.eval(flops, bytes, 1);
  const ModelEval crowded = shared.eval(flops, bytes, 4);
  EXPECT_DOUBLE_EQ(alone.evaluate().seconds,
                   shared.kernel_time(flops, bytes, 1));
  EXPECT_DOUBLE_EQ(crowded.evaluate().seconds,
                   shared.kernel_time(flops, bytes, 4));
  EXPECT_GT(crowded.evaluate().seconds, alone.evaluate().seconds);
}

TEST(EvalAdapters, GpuStreamTimeFollowsAchievableBandwidth) {
  const LatencyHidingModel gpu{8e11, 400e-9, 80};
  const double bytes = 1e9;
  const Evaluation e = gpu.eval(bytes, 8, 128).evaluate();
  EXPECT_DOUBLE_EQ(e.seconds, bytes / gpu.achievable(8, 128));
  EXPECT_DOUBLE_EQ(e.footprint.cores, 80.0);
}

}  // namespace
