// Tests for the 2D Jacobi stencil in perfeng/kernels/stencil.hpp.
#include "perfeng/kernels/stencil.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"
#include "perfeng/common/rng.hpp"

namespace {

using pe::kernels::Grid2D;

Grid2D random_grid(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Grid2D g(rows, cols);
  pe::Rng rng(seed);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      g.at(r, c) = rng.next_range_double(0.0, 100.0);
  return g;
}

TEST(Grid2D, NeedsAnInterior) {
  EXPECT_THROW(Grid2D(2, 10), pe::Error);
  EXPECT_NO_THROW(Grid2D(3, 3));
}

TEST(Stencil, InteriorIsNeighborAverage) {
  Grid2D in(3, 3, 0.0), out(3, 3);
  in.at(1, 1) = 5.0;
  in.at(0, 1) = 10.0;
  in.at(2, 1) = 20.0;
  in.at(1, 0) = 30.0;
  in.at(1, 2) = 40.0;
  pe::kernels::stencil_step_naive(in, out);
  EXPECT_DOUBLE_EQ(out.at(1, 1), (5.0 + 10.0 + 20.0 + 30.0 + 40.0) / 5.0);
}

TEST(Stencil, BoundaryIsCopiedThrough) {
  const Grid2D in = random_grid(6, 7, 1);
  Grid2D out(6, 7);
  pe::kernels::stencil_step_naive(in, out);
  for (std::size_t c = 0; c < in.cols(); ++c) {
    EXPECT_DOUBLE_EQ(out.at(0, c), in.at(0, c));
    EXPECT_DOUBLE_EQ(out.at(5, c), in.at(5, c));
  }
  for (std::size_t r = 0; r < in.rows(); ++r) {
    EXPECT_DOUBLE_EQ(out.at(r, 0), in.at(r, 0));
    EXPECT_DOUBLE_EQ(out.at(r, 6), in.at(r, 6));
  }
}

class StencilSizes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(StencilSizes, BlockedAndParallelMatchNaive) {
  const auto [rows, cols] = GetParam();
  const Grid2D in = random_grid(rows, cols, rows * 31 + cols);
  Grid2D naive(rows, cols), blocked(rows, cols), parallel(rows, cols);
  pe::kernels::stencil_step_naive(in, naive);

  pe::kernels::stencil_step_blocked(in, blocked, 5);
  EXPECT_DOUBLE_EQ(naive.max_abs_diff(blocked), 0.0);

  pe::ThreadPool pool(3);
  pe::kernels::stencil_step_parallel(in, parallel, pool);
  EXPECT_DOUBLE_EQ(naive.max_abs_diff(parallel), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, StencilSizes,
    ::testing::Values(std::make_pair(3, 3), std::make_pair(8, 8),
                      std::make_pair(17, 9), std::make_pair(33, 65)));

TEST(Stencil, RunPingPongsBuffers) {
  Grid2D start(5, 5, 0.0);
  start.at(2, 2) = 100.0;
  const Grid2D after2 = pe::kernels::stencil_run(
      start, 2, pe::kernels::stencil_step_naive);
  // Manually compute the two steps.
  Grid2D a(5, 5), b(5, 5);
  pe::kernels::stencil_step_naive(start, a);
  pe::kernels::stencil_step_naive(a, b);
  EXPECT_DOUBLE_EQ(after2.max_abs_diff(b), 0.0);
}

TEST(Stencil, ZeroStepsReturnsInput) {
  const Grid2D start = random_grid(4, 4, 2);
  const Grid2D same = pe::kernels::stencil_run(
      start, 0, pe::kernels::stencil_step_naive);
  EXPECT_DOUBLE_EQ(start.max_abs_diff(same), 0.0);
}

TEST(Stencil, JacobiConverges) {
  // Fixed hot boundary, cold interior: successive residuals shrink.
  Grid2D g(16, 16, 0.0);
  for (std::size_t c = 0; c < 16; ++c) g.at(0, c) = 100.0;
  Grid2D next(16, 16);
  pe::kernels::stencil_step_naive(g, next);
  const double r1 = pe::kernels::stencil_residual(g, next);
  Grid2D prev = next;
  for (int i = 0; i < 50; ++i) {
    pe::kernels::stencil_step_naive(prev, next);
    std::swap(prev, next);
  }
  pe::kernels::stencil_step_naive(prev, next);
  const double r2 = pe::kernels::stencil_residual(prev, next);
  EXPECT_LT(r2, r1 * 0.5);
}

TEST(Stencil, FlopAccounting) {
  EXPECT_DOUBLE_EQ(pe::kernels::stencil_flops(10, 10), 5.0 * 8 * 8);
  EXPECT_THROW((void)pe::kernels::stencil_flops(2, 10), pe::Error);
}

TEST(Stencil, ShapeMismatchRejected) {
  Grid2D in(4, 4), out(5, 4);
  EXPECT_THROW(pe::kernels::stencil_step_naive(in, out), pe::Error);
}

}  // namespace
