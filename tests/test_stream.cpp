// Tests for the STREAM microbenchmarks in perfeng/microbench/stream.hpp
// and the exactness contract of the vectorized loop bodies in
// perfeng/microbench/stream_kernels.hpp.
#include "perfeng/microbench/stream.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "perfeng/common/error.hpp"
#include "perfeng/common/rng.hpp"
#include "perfeng/microbench/stream_kernels.hpp"
#include "perfeng/simd/vec.hpp"

namespace {

using pe::microbench::StreamKernel;

pe::BenchmarkRunner fast_runner() {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 3;
  cfg.min_batch_seconds = 1e-4;
  return pe::BenchmarkRunner(cfg);
}

TEST(Stream, KernelNames) {
  EXPECT_EQ(pe::microbench::stream_kernel_name(StreamKernel::kCopy), "Copy");
  EXPECT_EQ(pe::microbench::stream_kernel_name(StreamKernel::kTriad),
            "Triad");
}

TEST(Stream, TrafficAccountingFollowsMcCalpin) {
  EXPECT_EQ(pe::microbench::stream_bytes_per_element(StreamKernel::kCopy),
            16u);
  EXPECT_EQ(pe::microbench::stream_bytes_per_element(StreamKernel::kScale),
            16u);
  EXPECT_EQ(pe::microbench::stream_bytes_per_element(StreamKernel::kAdd),
            24u);
  EXPECT_EQ(pe::microbench::stream_bytes_per_element(StreamKernel::kTriad),
            24u);
}

TEST(Stream, FlopAccounting) {
  EXPECT_EQ(pe::microbench::stream_flops_per_element(StreamKernel::kCopy),
            0u);
  EXPECT_EQ(pe::microbench::stream_flops_per_element(StreamKernel::kScale),
            1u);
  EXPECT_EQ(pe::microbench::stream_flops_per_element(StreamKernel::kAdd),
            1u);
  EXPECT_EQ(pe::microbench::stream_flops_per_element(StreamKernel::kTriad),
            2u);
}

class StreamKernels : public ::testing::TestWithParam<StreamKernel> {};

TEST_P(StreamKernels, MeasuresPositiveBandwidth) {
  const auto runner = fast_runner();
  const auto r = pe::microbench::run_stream(GetParam(), 1 << 14, runner);
  EXPECT_GT(r.best_bandwidth, 0.0);
  EXPECT_GT(r.median_bandwidth, 0.0);
  EXPECT_GE(r.best_bandwidth, r.median_bandwidth * 0.5);
  EXPECT_EQ(r.elements, std::size_t{1} << 14);
}

INSTANTIATE_TEST_SUITE_P(All, StreamKernels,
                         ::testing::Values(StreamKernel::kCopy,
                                           StreamKernel::kScale,
                                           StreamKernel::kAdd,
                                           StreamKernel::kTriad));

TEST(Stream, SuiteRunsAllFour) {
  const auto runner = fast_runner();
  const auto suite = pe::microbench::run_stream_suite(1 << 13, runner);
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_EQ(suite[0].kernel, StreamKernel::kCopy);
  EXPECT_EQ(suite[3].kernel, StreamKernel::kTriad);
}

TEST(Stream, SustainableBandwidthIsSuiteMax) {
  const auto runner = fast_runner();
  const double bw = pe::microbench::sustainable_bandwidth(1 << 13, runner);
  EXPECT_GT(bw, 1e6);  // any machine moves more than 1 MB/s
}

// The vectorized loop bodies must equal their scalar references exactly
// (operator==) at every length — including remainder lengths that leave a
// scalar tail, the empty case, and lengths below one vector. Triad is the
// exception the contract documents: with a fused backend every element is
// std::fma (one rounding), so its reference is kFusedMulAdd-aware.
TEST(StreamKernelsExactness, VectorizedBodiesMatchScalarReferences) {
  pe::Rng rng(77);
  // Around the lane boundary (lanes=4): 0..9 covers empty, sub-vector,
  // exact multiples and every tail length; 1023/1025 cover big + tail.
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
        std::size_t{4}, std::size_t{5}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{1023}, std::size_t{1025}}) {
    std::vector<double> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.next_range_double(-5.0, 5.0);
      b[i] = rng.next_range_double(-5.0, 5.0);
    }
    const double s = 3.25;
    std::vector<double> got(n, -1.0), want(n, -2.0);

    pe::microbench::stream_copy(a.data(), got.data(), n);
    pe::microbench::stream_copy_scalar(a.data(), want.data(), n);
    EXPECT_EQ(got, want) << "copy n=" << n;

    pe::microbench::stream_scale(a.data(), got.data(), s, n);
    pe::microbench::stream_scale_scalar(a.data(), want.data(), s, n);
    EXPECT_EQ(got, want) << "scale n=" << n;

    pe::microbench::stream_add(a.data(), b.data(), got.data(), n);
    pe::microbench::stream_add_scalar(a.data(), b.data(), want.data(), n);
    EXPECT_EQ(got, want) << "add n=" << n;

    pe::microbench::stream_triad(a.data(), b.data(), got.data(), s, n);
    if constexpr (pe::simd::VecD::kFusedMulAdd) {
      for (std::size_t i = 0; i < n; ++i)
        want[i] = std::fma(s, b[i], a[i]);
    } else {
      pe::microbench::stream_triad_scalar(a.data(), b.data(), want.data(),
                                          s, n);
    }
    EXPECT_EQ(got, want) << "triad n=" << n;
  }
}

TEST(StreamKernelsExactness, TriadFusionStaysWithinOneUlpOfScalar) {
  // Whatever the backend, the fused and unfused triads agree to ~1 ulp —
  // the documented envelope callers get to rely on without knowing the
  // backend.
  const std::size_t n = 257;
  pe::Rng rng(78);
  std::vector<double> a(n), b(n), fused(n), plain(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.next_range_double(-1.0, 1.0);
    b[i] = rng.next_range_double(-1.0, 1.0);
  }
  pe::microbench::stream_triad(a.data(), b.data(), fused.data(), 3.0, n);
  pe::microbench::stream_triad_scalar(a.data(), b.data(), plain.data(), 3.0,
                                      n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ulp =
        std::nextafter(std::abs(plain[i]),
                       std::numeric_limits<double>::infinity()) -
        std::abs(plain[i]);
    EXPECT_NEAR(fused[i], plain[i], ulp) << i;
  }
}

TEST(Stream, TinyVectorsRejected) {
  const auto runner = fast_runner();
  EXPECT_THROW(
      (void)pe::microbench::run_stream(StreamKernel::kCopy, 4, runner),
      pe::Error);
}

}  // namespace
