// Tests for the STREAM microbenchmarks in perfeng/microbench/stream.hpp.
#include "perfeng/microbench/stream.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

using pe::microbench::StreamKernel;

pe::BenchmarkRunner fast_runner() {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 3;
  cfg.min_batch_seconds = 1e-4;
  return pe::BenchmarkRunner(cfg);
}

TEST(Stream, KernelNames) {
  EXPECT_EQ(pe::microbench::stream_kernel_name(StreamKernel::kCopy), "Copy");
  EXPECT_EQ(pe::microbench::stream_kernel_name(StreamKernel::kTriad),
            "Triad");
}

TEST(Stream, TrafficAccountingFollowsMcCalpin) {
  EXPECT_EQ(pe::microbench::stream_bytes_per_element(StreamKernel::kCopy),
            16u);
  EXPECT_EQ(pe::microbench::stream_bytes_per_element(StreamKernel::kScale),
            16u);
  EXPECT_EQ(pe::microbench::stream_bytes_per_element(StreamKernel::kAdd),
            24u);
  EXPECT_EQ(pe::microbench::stream_bytes_per_element(StreamKernel::kTriad),
            24u);
}

TEST(Stream, FlopAccounting) {
  EXPECT_EQ(pe::microbench::stream_flops_per_element(StreamKernel::kCopy),
            0u);
  EXPECT_EQ(pe::microbench::stream_flops_per_element(StreamKernel::kScale),
            1u);
  EXPECT_EQ(pe::microbench::stream_flops_per_element(StreamKernel::kAdd),
            1u);
  EXPECT_EQ(pe::microbench::stream_flops_per_element(StreamKernel::kTriad),
            2u);
}

class StreamKernels : public ::testing::TestWithParam<StreamKernel> {};

TEST_P(StreamKernels, MeasuresPositiveBandwidth) {
  const auto runner = fast_runner();
  const auto r = pe::microbench::run_stream(GetParam(), 1 << 14, runner);
  EXPECT_GT(r.best_bandwidth, 0.0);
  EXPECT_GT(r.median_bandwidth, 0.0);
  EXPECT_GE(r.best_bandwidth, r.median_bandwidth * 0.5);
  EXPECT_EQ(r.elements, std::size_t{1} << 14);
}

INSTANTIATE_TEST_SUITE_P(All, StreamKernels,
                         ::testing::Values(StreamKernel::kCopy,
                                           StreamKernel::kScale,
                                           StreamKernel::kAdd,
                                           StreamKernel::kTriad));

TEST(Stream, SuiteRunsAllFour) {
  const auto runner = fast_runner();
  const auto suite = pe::microbench::run_stream_suite(1 << 13, runner);
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_EQ(suite[0].kernel, StreamKernel::kCopy);
  EXPECT_EQ(suite[3].kernel, StreamKernel::kTriad);
}

TEST(Stream, SustainableBandwidthIsSuiteMax) {
  const auto runner = fast_runner();
  const double bw = pe::microbench::sustainable_bandwidth(1 << 13, runner);
  EXPECT_GT(bw, 1e6);  // any machine moves more than 1 MB/s
}

TEST(Stream, TinyVectorsRejected) {
  const auto runner = fast_runner();
  EXPECT_THROW(
      (void)pe::microbench::run_stream(StreamKernel::kCopy, 4, runner),
      pe::Error);
}

}  // namespace
