// Tests for the pe::analysis race lint: overlapping-write detection with
// exact chunk provenance, the false-positive guard (disjoint partitions
// report clean), the reduce-ordered tree access pattern, checked_span
// semantics, and a chaos-labelled FaultInjector + checker combination.
#include "perfeng/analysis/access_checker.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <string>
#include <vector>

#include "perfeng/analysis/checked_span.hpp"
#include "perfeng/common/error.hpp"
#include "perfeng/common/fault_hook.hpp"
#include "perfeng/parallel/parallel_for.hpp"
#include "perfeng/resilience/fault_injection.hpp"

namespace {

using pe::analysis::AccessChecker;
using pe::analysis::checked_span;
using pe::analysis::Conflict;
using pe::analysis::RaceReport;
using pe::analysis::ScopedAccessCheck;

TEST(AccessChecker, DisjointStaticPartitionReportsClean) {
  pe::ThreadPool pool(4);
  std::vector<double> out(400, 0.0);
  AccessChecker checker;
  {
    ScopedAccessCheck guard(checker);
    checked_span<double> span(out.data(), out.size(), "out");
    pe::parallel_for_chunks(
        pool, 0, out.size(),
        [&](std::size_t lo, std::size_t hi, std::size_t /*lane*/) {
          for (std::size_t i = lo; i < hi; ++i) span[i] = double(i);
        });
  }
  const RaceReport report = checker.report();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(report.loops, 1u);
  EXPECT_GE(report.chunks, 2u);
  EXPECT_GE(report.intervals, report.chunks);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], double(i));
}

TEST(AccessChecker, DynamicScheduleReportsClean) {
  pe::ThreadPool pool(4);
  std::vector<double> out(1000, 0.0);
  AccessChecker checker;
  {
    ScopedAccessCheck guard(checker);
    checked_span<double> span(out.data(), out.size(), "out");
    pe::parallel_for(
        pool, 0, out.size(), [&](std::size_t i) { span[i] = 1.0; },
        pe::Schedule::kDynamic, 64);
  }
  const RaceReport report = checker.report();
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(AccessChecker, OverlappingWritePartitionNamesTheChunkPair) {
  pe::ThreadPool pool(4);
  constexpr std::size_t kN = 40;       // 4 static blocks of 10
  constexpr std::size_t kBleed = 5;    // each chunk overruns by 5
  std::vector<double> out(kN + kBleed, 0.0);
  AccessChecker checker;
  {
    ScopedAccessCheck guard(checker);
    checked_span<double> span(out.data(), out.size(), "out");
    pe::parallel_for_chunks(
        pool, 0, kN,
        [&](std::size_t lo, std::size_t hi, std::size_t /*lane*/) {
          // Deliberately broken partition: every chunk writes kBleed
          // elements past its claimed range.
          for (std::size_t i = lo; i < hi + kBleed; ++i) span[i] = 1.0;
        },
        pe::Schedule::kStatic);
  }
  const RaceReport report = checker.report();
  ASSERT_EQ(report.chunks, 4u);
  // Each chunk bleeds into exactly its successor: 3 conflicting pairs.
  ASSERT_EQ(report.conflicts.size(), 3u) << report.to_string();
  std::vector<Conflict> by_range = report.conflicts;
  std::sort(by_range.begin(), by_range.end(),
            [](const Conflict& a, const Conflict& b) {
              return a.lo_byte < b.lo_byte;
            });
  for (std::size_t p = 0; p < by_range.size(); ++p) {
    const Conflict& c = by_range[p];
    EXPECT_TRUE(c.write_write);
    EXPECT_EQ(c.buffer, "out");
    EXPECT_EQ(c.base, out.data());
    // The overlap is the kBleed elements the lower chunk stole from the
    // one claiming [10(p+1), 10(p+2)).
    const std::size_t boundary = 10 * (p + 1);
    EXPECT_EQ(c.lo_byte, boundary * sizeof(double));
    EXPECT_EQ(c.hi_byte, (boundary + kBleed) * sizeof(double));
    // Provenance identifies the two adjacent blocks exactly.
    const auto [lo_chunk, hi_chunk] =
        c.first.lo < c.second.lo ? std::pair(c.first, c.second)
                                 : std::pair(c.second, c.first);
    EXPECT_EQ(lo_chunk.lo, boundary - 10);
    EXPECT_EQ(lo_chunk.hi, boundary);
    EXPECT_EQ(hi_chunk.lo, boundary);
    EXPECT_EQ(hi_chunk.hi, boundary + 10);
    EXPECT_NE(c.first_where.find("test_access_checker"), std::string::npos);
  }
}

TEST(AccessChecker, WriteReadConflictAcrossChunksIsDetected) {
  pe::ThreadPool pool(4);
  std::vector<double> buf(40, 1.0);
  AccessChecker checker;
  {
    ScopedAccessCheck guard(checker);
    checked_span<double> span(buf.data(), buf.size(), "buf");
    pe::parallel_for_chunks(
        pool, 0, buf.size(),
        [&](std::size_t lo, std::size_t hi, std::size_t /*lane*/) {
          // Writes its own block, but also reads element 0 — a
          // write/read conflict with whichever chunk owns block 0.
          if (lo != 0) span.note(0, 1, false);
          for (std::size_t i = lo; i < hi; ++i) span[i] = 2.0;
        },
        pe::Schedule::kStatic);
  }
  const RaceReport report = checker.report();
  ASSERT_FALSE(report.clean());
  bool found_write_read = false;
  for (const Conflict& c : report.conflicts)
    if (!c.write_write) found_write_read = true;
  EXPECT_TRUE(found_write_read) << report.to_string();
}

TEST(AccessChecker, ReadOnlyOverlapIsNotAConflict) {
  pe::ThreadPool pool(4);
  std::vector<double> in(100, 3.0);
  std::vector<double> out(100, 0.0);
  AccessChecker checker;
  {
    ScopedAccessCheck guard(checker);
    checked_span<const double> src(in.data(), in.size(), "in");
    checked_span<double> dst(out.data(), out.size(), "out");
    pe::parallel_for(pool, 0, in.size(), [&](std::size_t i) {
      // Every chunk reads the whole input: overlapping reads, no race.
      src.note(0, src.size(), false);
      dst[i] = src.read(i) * 2.0;
    });
  }
  const RaceReport report = checker.report();
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(AccessChecker, SequentialLoopsDoNotConflictWithEachOther) {
  pe::ThreadPool pool(4);
  std::vector<double> buf(64, 0.0);
  AccessChecker checker;
  {
    ScopedAccessCheck guard(checker);
    checked_span<double> span(buf.data(), buf.size(), "buf");
    // Two barrier-separated loops both write the whole buffer — ordered,
    // not racy.
    for (int pass = 0; pass < 2; ++pass)
      pe::parallel_for(pool, 0, buf.size(),
                       [&](std::size_t i) { span[i] = double(pass); });
  }
  const RaceReport report = checker.report();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(report.loops, 2u);
}

// Regression: under the old flat-epoch model every nested loop opened its
// own concurrency scope, so inner loops launched from *concurrently
// running* chunks of one outer loop were never diffed against each other
// — this exact overlap slipped through. The nesting-path model must flag
// it: the two inner loops' paths first diverge at the outer loop, in
// different outer chunks.
TEST(AccessChecker, NestedLoopsFromConcurrentOuterChunksAreCrossDiffed) {
  pe::ThreadPool pool(2);
  std::vector<double> buf(64, 0.0);
  AccessChecker checker;
  {
    ScopedAccessCheck guard(checker);
    checked_span<double> span(buf.data(), buf.size(), "buf");
    // Outer static loop over [0, 2) on a 2-worker pool: exactly two
    // chunks, eligible to run concurrently. Each launches an inner loop
    // whose chunks together claim the WHOLE buffer — so the two inner
    // loops' partitions fully overlap across the outer-chunk boundary.
    pe::parallel_for_chunks(
        pool, 0, 2, [&](std::size_t, std::size_t, std::size_t) {
          pe::parallel_for_chunks(
              pool, 0, buf.size(),
              [&](std::size_t lo, std::size_t hi, std::size_t) {
                span.note(lo, hi, /*is_write=*/true);
              });
        });
  }
  const RaceReport report = checker.report();
  ASSERT_FALSE(report.clean()) << report.to_string();
  EXPECT_EQ(report.loops, 3u);  // outer + two inner
  // The offending pair sits in two *different* inner loops nested under
  // different chunks of the shared outer loop.
  const Conflict& c = report.conflicts.front();
  EXPECT_NE(c.first.loop, c.second.loop);
  ASSERT_EQ(c.first.path.size(), 2u);
  ASSERT_EQ(c.second.path.size(), 2u);
  EXPECT_EQ(c.first.path.front().loop, c.second.path.front().loop);
  EXPECT_NE(c.first.path.front().chunk, c.second.path.front().chunk);
  EXPECT_NE(report.to_string().find("nested via"), std::string::npos);
}

// Negative twin: the same doubly-overlapping inner loops are fine when
// they are launched back-to-back from ONE outer chunk — the first inner
// loop's completion barrier orders them. The enclosing chunk writing the
// buffer itself is also fine: it blocks until its nested loops drain.
TEST(AccessChecker, SequentialNestedLoopsFromOneChunkReportClean) {
  pe::ThreadPool pool(2);
  std::vector<double> buf(64, 0.0);
  AccessChecker checker;
  {
    ScopedAccessCheck guard(checker);
    checked_span<double> span(buf.data(), buf.size(), "buf");
    // [0, 1): a single outer chunk, so the two inner loops inside it are
    // barrier-separated, never concurrent.
    pe::parallel_for_chunks(
        pool, 0, 1, [&](std::size_t, std::size_t, std::size_t) {
          span.note(0, span.size(), /*is_write=*/true);
          for (int pass = 0; pass < 2; ++pass)
            pe::parallel_for_chunks(
                pool, 0, buf.size(),
                [&](std::size_t lo, std::size_t hi, std::size_t) {
                  span.note(lo, hi, /*is_write=*/true);
                });
        });
  }
  const RaceReport report = checker.report();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(report.loops, 3u);
}

TEST(AccessChecker, ReduceOrderedTreePatternReportsClean) {
  pe::ThreadPool pool(4);
  std::vector<double> data(5000);
  std::iota(data.begin(), data.end(), 1.0);
  AccessChecker checker;
  double sum = 0.0;
  {
    ScopedAccessCheck guard(checker);
    checked_span<const double> span(data.data(), data.size(), "data");
    sum = pe::parallel_reduce_ordered(
        pool, std::size_t{0}, data.size(), 0.0,
        [&](std::size_t i) { return span.read(i); },
        [](double a, double b) { return a + b; }, 256);
  }
  EXPECT_DOUBLE_EQ(sum, 5000.0 * 5001.0 / 2.0);
  const RaceReport report = checker.report();
  // Disjoint read blocks folded into per-block partials: clean by
  // construction, and the checker must agree.
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_GE(report.chunks, 2u);
}

TEST(AccessChecker, ToStringDescribesConflicts) {
  pe::ThreadPool pool(2);
  std::vector<double> buf(8, 0.0);
  AccessChecker checker;
  {
    ScopedAccessCheck guard(checker);
    checked_span<double> span(buf.data(), buf.size(), "shared");
    pe::parallel_for_chunks(
        pool, 0, buf.size(),
        [&](std::size_t, std::size_t, std::size_t) {
          // Every chunk writes the whole buffer.
          span.note(0, span.size(), true);
        },
        pe::Schedule::kStatic);
  }
  const RaceReport report = checker.report();
  ASSERT_FALSE(report.clean());
  const std::string text = report.to_string();
  EXPECT_NE(text.find("write/write"), std::string::npos) << text;
  EXPECT_NE(text.find("'shared'"), std::string::npos) << text;
  EXPECT_NE(text.find("chunk #"), std::string::npos) << text;
}

TEST(AccessChecker, RecordsOutsideAnyChunkAreIgnored) {
  std::vector<double> buf(16, 0.0);
  AccessChecker checker;
  {
    ScopedAccessCheck guard(checker);
    checked_span<double> span(buf.data(), buf.size(), "buf");
    span[3] = 1.0;  // no loop running: sequential, not a race
  }
  const RaceReport report = checker.report();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.unscoped_records, 1u);
  EXPECT_EQ(buf[3], 1.0);
}

TEST(AccessChecker, ResetClearsHistory) {
  pe::ThreadPool pool(2);
  std::vector<double> buf(32, 0.0);
  AccessChecker checker;
  {
    ScopedAccessCheck guard(checker);
    checked_span<double> span(buf.data(), buf.size(), "buf");
    pe::parallel_for_chunks(
        pool, 0, buf.size(),
        [&](std::size_t, std::size_t, std::size_t) {
          span.note(0, span.size(), true);
        });
  }
  ASSERT_FALSE(checker.report().clean());
  checker.reset();
  const RaceReport report = checker.report();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.chunks, 0u);
  EXPECT_EQ(report.loops, 0u);
}

TEST(AccessChecker, NestedScopesAreRejected) {
  AccessChecker a;
  AccessChecker b;
  ScopedAccessCheck guard(a);
  EXPECT_THROW(ScopedAccessCheck inner(b), pe::Error);
}

TEST(CheckedSpan, ProxyReadsWritesAndCompoundAssign) {
  std::vector<double> buf{1.0, 2.0, 3.0};
  checked_span<double> span(buf.data(), buf.size(), "buf");
  span[0] = 10.0;
  span[1] += 5.0;
  const double v = span[2];
  EXPECT_EQ(buf[0], 10.0);
  EXPECT_EQ(buf[1], 7.0);
  EXPECT_EQ(v, 3.0);
  EXPECT_EQ(span.read(0), 10.0);
  span.write(2, -1.0);
  EXPECT_EQ(buf[2], -1.0);
}

TEST(CheckedSpan, OutOfBoundsNoteThrows) {
  std::vector<double> buf(4, 0.0);
  checked_span<double> span(buf.data(), buf.size(), "buf");
  EXPECT_THROW(span.note(0, 5, true), pe::Error);
  EXPECT_THROW((void)span[4], pe::Error);
}

// Chaos: chunks that throw injected faults must not wedge the checker —
// chunk scopes close via RAII, and the partition verdict on the surviving
// records is still correct.
TEST(AccessCheckerChaos, FaultedChunksStillProduceAConsistentReport) {
  pe::ThreadPool pool(4);
  std::vector<double> out(400, 0.0);
  pe::resilience::FaultPlan plan;
  plan.seed = 42;
  pe::resilience::FaultSpec spec;
  spec.site = "kernel.call";
  spec.kind = pe::resilience::FaultKind::kThrow;
  spec.probability = 0.5;
  plan.faults.push_back(spec);
  AccessChecker checker;
  bool threw = false;
  {
    pe::resilience::ScopedFaultInjection chaos(plan);
    ScopedAccessCheck guard(checker);
    checked_span<double> span(out.data(), out.size(), "out");
    try {
      pe::parallel_for_chunks(
          pool, 0, out.size(),
          [&](std::size_t lo, std::size_t hi, std::size_t /*lane*/) {
            pe::fault_point(pe::fault_sites::kKernelCall);
            for (std::size_t i = lo; i < hi; ++i) span[i] = 1.0;
          },
          pe::Schedule::kDynamic, 16);
    } catch (const pe::resilience::FaultInjected&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw);  // p=0.5 over ~25 chunks: fires with near-certainty
  const RaceReport report = checker.report();
  // Surviving chunks wrote disjoint dynamic blocks: still clean.
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_GE(report.chunks, 1u);
}

}  // namespace
