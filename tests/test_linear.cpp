// Tests for linear/polynomial regression in perfeng/statmodel/linear.hpp.
#include "perfeng/statmodel/linear.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"
#include "perfeng/common/rng.hpp"
#include "perfeng/parallel/thread_pool.hpp"

namespace {

using pe::statmodel::Dataset;
using pe::statmodel::LinearRegression;

TEST(SolveLinearSystem, SolvesKnownSystem) {
  // 2x + y = 5; x - y = 1 -> x = 2, y = 1.
  const auto x = pe::statmodel::solve_linear_system(
      {{2.0, 1.0}, {1.0, -1.0}}, {5.0, 1.0});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveLinearSystem, PivotsWhenLeadingZero) {
  const auto x = pe::statmodel::solve_linear_system(
      {{0.0, 1.0}, {1.0, 0.0}}, {3.0, 4.0});
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinearSystem, SingularThrows) {
  EXPECT_THROW((void)pe::statmodel::solve_linear_system(
                   {{1.0, 2.0}, {2.0, 4.0}}, {1.0, 2.0}),
               pe::Error);
}

TEST(LinearRegression, RecoversExactLinearRelation) {
  Dataset d({"x1", "x2"});
  pe::Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    const double x1 = rng.next_range_double(-5.0, 5.0);
    const double x2 = rng.next_range_double(-5.0, 5.0);
    d.add_row({x1, x2}, 7.0 + 2.0 * x1 - 3.0 * x2);
  }
  LinearRegression model;
  model.fit(d);
  const auto& w = model.coefficients();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_NEAR(w[0], 7.0, 1e-9);
  EXPECT_NEAR(w[1], 2.0, 1e-9);
  EXPECT_NEAR(w[2], -3.0, 1e-9);
  EXPECT_NEAR(model.predict({1.0, 1.0}), 6.0, 1e-9);
}

TEST(LinearRegression, PredictBeforeFitThrows) {
  LinearRegression model;
  EXPECT_THROW((void)model.predict({1.0}), pe::Error);
  EXPECT_THROW((void)model.coefficients(), pe::Error);
}

TEST(LinearRegression, NeedsMoreRowsThanCoefficients) {
  Dataset d({"a", "b", "c"});
  d.add_row({1, 2, 3}, 1.0);
  d.add_row({2, 3, 4}, 2.0);
  LinearRegression model;
  EXPECT_THROW(model.fit(d), pe::Error);
}

TEST(LinearRegression, RidgeShrinksCoefficients) {
  Dataset d({"x"});
  pe::Rng rng(17);
  for (int i = 0; i < 30; ++i) {
    const double x = rng.next_range_double(-1.0, 1.0);
    d.add_row({x}, 10.0 * x);
  }
  LinearRegression ols(0.0), ridge(100.0);
  ols.fit(d);
  ridge.fit(d);
  EXPECT_LT(std::abs(ridge.coefficients()[1]),
            std::abs(ols.coefficients()[1]));
  EXPECT_GT(std::abs(ridge.coefficients()[1]), 0.0);
}

TEST(LinearRegression, RidgeHandlesDuplicatedFeatures) {
  // Perfectly collinear features make OLS singular; ridge regularizes.
  Dataset d({"x", "x_copy"});
  for (int i = 0; i < 20; ++i) {
    const double x = i;
    d.add_row({x, x}, 3.0 * x);
  }
  LinearRegression ridge(1e-3);
  EXPECT_NO_THROW(ridge.fit(d));
  EXPECT_NEAR(ridge.predict({10.0, 10.0}), 30.0, 0.1);
}

TEST(LinearRegression, Describe) {
  EXPECT_EQ(LinearRegression(0.0).describe(), "ols");
  EXPECT_NE(LinearRegression(0.5).describe().find("ridge"),
            std::string::npos);
}

TEST(PolynomialExpand, GeneratesPowers) {
  const auto row = pe::statmodel::polynomial_expand_row({2.0, 3.0}, 3);
  EXPECT_EQ(row, (std::vector<double>{2.0, 4.0, 8.0, 3.0, 9.0, 27.0}));
}

TEST(PolynomialExpand, NamesAreSuffixed) {
  Dataset d({"n"});
  d.add_row({2.0}, 1.0);
  const auto expanded = pe::statmodel::polynomial_expand(d, 3);
  EXPECT_EQ(expanded.feature_names(),
            (std::vector<std::string>{"n", "n^2", "n^3"}));
  EXPECT_EQ(expanded.rows(), 1u);
}

TEST(PolynomialExpand, CubicModelFitsCubicRuntime) {
  // The Assignment 2/3 crossover: matmul runtime ~ c * n^3.
  Dataset d({"n"});
  for (double n = 4; n <= 40; n += 2) d.add_row({n}, 1e-9 * n * n * n);
  const auto cubic = pe::statmodel::polynomial_expand(d, 3);
  LinearRegression model;
  model.fit(cubic);
  const double predicted =
      model.predict(pe::statmodel::polynomial_expand_row({50.0}, 3));
  EXPECT_NEAR(predicted, 1e-9 * 50 * 50 * 50, 1e-9 * 50 * 50 * 50 * 0.01);
}

TEST(PolynomialExpand, DegreeValidated) {
  Dataset d({"n"});
  d.add_row({1.0}, 1.0);
  EXPECT_THROW((void)pe::statmodel::polynomial_expand(d, 0), pe::Error);
}

Dataset noisy_dataset(std::size_t rows) {
  Dataset d({"x1", "x2", "x3"});
  pe::Rng rng(101);
  for (std::size_t i = 0; i < rows; ++i) {
    const double x1 = rng.next_range_double(-5.0, 5.0);
    const double x2 = rng.next_range_double(-5.0, 5.0);
    const double x3 = rng.next_range_double(-5.0, 5.0);
    const double noise = rng.next_range_double(-0.01, 0.01);
    d.add_row({x1, x2, x3}, 1.5 - 2.0 * x1 + 0.5 * x2 + 4.0 * x3 + noise);
  }
  return d;
}

TEST(LinearRegressionParallel, MatchesSerialFitClosely) {
  const Dataset d = noisy_dataset(4000);
  LinearRegression serial, parallel;
  serial.fit(d);
  pe::ThreadPool pool(3);
  parallel.fit(d, pool);
  ASSERT_EQ(parallel.coefficients().size(), serial.coefficients().size());
  for (std::size_t i = 0; i < serial.coefficients().size(); ++i)
    EXPECT_NEAR(parallel.coefficients()[i], serial.coefficients()[i], 1e-9)
        << i;
}

// The parallel fit uses the ordered reduction, so the accumulated normal
// equations — and therefore the coefficients — are bit-identical no matter
// how many workers the pool has or how chunks interleave between runs.
TEST(LinearRegressionParallel, BitIdenticalAcrossPoolSizesAndRuns) {
  const Dataset d = noisy_dataset(3000);
  std::vector<std::vector<double>> results;
  for (std::size_t workers : {1u, 2u, 4u}) {
    pe::ThreadPool pool(workers);
    for (int rep = 0; rep < 3; ++rep) {
      LinearRegression model;
      model.fit(d, pool);
      results.push_back(model.coefficients());
    }
  }
  for (const auto& coeffs : results) {
    ASSERT_EQ(coeffs.size(), results.front().size());
    for (std::size_t i = 0; i < coeffs.size(); ++i)
      EXPECT_EQ(coeffs[i], results.front()[i]) << i;
  }
}

TEST(LinearRegressionParallel, ValidatesLikeSerial) {
  Dataset d({"a", "b", "c"});
  d.add_row({1, 2, 3}, 1.0);
  d.add_row({2, 3, 4}, 2.0);
  LinearRegression model;
  pe::ThreadPool pool(2);
  EXPECT_THROW(model.fit(d, pool), pe::Error);
}

}  // namespace
