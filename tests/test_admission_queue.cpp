// Tests for the bounded multi-tenant admission queue in perfeng/service.
#include "perfeng/service/admission_queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "perfeng/common/error.hpp"

namespace {

using pe::service::AdmissionQueue;
using pe::service::AdmissionQueueConfig;
using pe::service::AdmissionVerdict;

AdmissionQueueConfig sized(std::size_t capacity, std::size_t tenant) {
  AdmissionQueueConfig config;
  config.capacity = capacity;
  config.tenant_capacity = tenant;
  return config;
}

AdmissionVerdict push(AdmissionQueue<int>& q, const std::string& tenant,
                      int value) {
  return q.try_push(tenant, value);
}

TEST(AdmissionQueue, AdmitsUpToGlobalCapacity) {
  AdmissionQueue<int> q(sized(3, 3));
  EXPECT_EQ(push(q, "a", 1), AdmissionVerdict::kAdmitted);
  EXPECT_EQ(push(q, "a", 2), AdmissionVerdict::kAdmitted);
  EXPECT_EQ(push(q, "a", 3), AdmissionVerdict::kAdmitted);
  EXPECT_EQ(push(q, "a", 4), AdmissionVerdict::kQueueFull);
  EXPECT_EQ(q.size(), 3u);
  // Popping frees capacity again: backpressure, not a death sentence.
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_EQ(push(q, "a", 4), AdmissionVerdict::kAdmitted);
}

TEST(AdmissionQueue, TenantShareBoundsBeforeGlobalCapacity) {
  AdmissionQueue<int> q(sized(10, 2));
  EXPECT_EQ(push(q, "flood", 1), AdmissionVerdict::kAdmitted);
  EXPECT_EQ(push(q, "flood", 2), AdmissionVerdict::kAdmitted);
  // The flooding tenant hits its share while the queue has room...
  EXPECT_EQ(push(q, "flood", 3), AdmissionVerdict::kTenantOverShare);
  // ...and other tenants are unaffected: that is the fairness point.
  EXPECT_EQ(push(q, "polite", 1), AdmissionVerdict::kAdmitted);
  EXPECT_EQ(q.tenant_depth("flood"), 2u);
  EXPECT_EQ(q.tenant_depth("polite"), 1u);
  EXPECT_EQ(q.tenant_depth("never-seen"), 0u);
}

TEST(AdmissionQueue, RejectedValueStaysWithTheCaller) {
  // The service queues unique_ptrs; a rejected push must not consume the
  // value (the caller still owes it a terminal state).
  AdmissionQueue<std::unique_ptr<int>> q(sized(1, 1));
  auto first = std::make_unique<int>(1);
  EXPECT_EQ(q.try_push("a", first), AdmissionVerdict::kAdmitted);
  EXPECT_EQ(first, nullptr);  // admitted: moved from
  auto second = std::make_unique<int>(2);
  EXPECT_EQ(q.try_push("a", second), AdmissionVerdict::kQueueFull);
  ASSERT_NE(second, nullptr);  // rejected: still ours
  EXPECT_EQ(*second, 2);
}

TEST(AdmissionQueue, DequeueIsRoundRobinAcrossTenants) {
  AdmissionQueue<int> q(sized(16, 8));
  // Tenant a floods first; b and c each queue one item afterwards.
  (void)push(q, "a", 1);
  (void)push(q, "a", 2);
  (void)push(q, "a", 3);
  (void)push(q, "b", 10);
  (void)push(q, "c", 20);
  std::vector<int> order;
  while (auto v = q.try_pop()) order.push_back(*v);
  // Round-robin interleaves tenants: b and c are served before a's
  // backlog, even though a queued everything first.
  EXPECT_EQ(order, (std::vector<int>{1, 10, 20, 2, 3}));
}

TEST(AdmissionQueue, PerTenantOrderIsFifo) {
  AdmissionQueue<int> q(sized(8, 8));
  (void)push(q, "a", 1);
  (void)push(q, "a", 2);
  (void)push(q, "a", 3);
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_EQ(q.try_pop().value(), 3);
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(AdmissionQueue, DrainReturnsEverythingAndEmpties) {
  AdmissionQueue<int> q(sized(8, 8));
  (void)push(q, "a", 1);
  (void)push(q, "b", 2);
  (void)push(q, "a", 3);
  const std::vector<int> drained = q.drain();
  EXPECT_EQ(drained.size(), 3u);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.try_pop(), std::nullopt);
  // The queue is reusable after a drain.
  EXPECT_EQ(push(q, "a", 4), AdmissionVerdict::kAdmitted);
}

TEST(AdmissionQueue, PopOnEmptyReturnsNothing) {
  AdmissionQueue<int> q;
  EXPECT_EQ(q.try_pop(), std::nullopt);
  EXPECT_EQ(q.size(), 0u);
}

TEST(AdmissionQueue, ConfigValidation) {
  EXPECT_THROW(AdmissionQueue<int>(sized(0, 1)), pe::Error);
  EXPECT_THROW(AdmissionQueue<int>(sized(1, 0)), pe::Error);
  EXPECT_NO_THROW(AdmissionQueue<int>(sized(1, 1)));
}

}  // namespace
