// Tests for the retry/backoff policy in perfeng/resilience/retry.hpp.
#include "perfeng/resilience/retry.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

using pe::resilience::backoff_seconds;
using pe::resilience::RetryPolicy;

TEST(Retry, FirstAttemptNeverSleeps) {
  RetryPolicy p;
  p.initial_backoff_seconds = 0.5;
  EXPECT_DOUBLE_EQ(backoff_seconds(p, 1), 0.0);
}

TEST(Retry, BackoffGrowsExponentially) {
  RetryPolicy p;
  p.initial_backoff_seconds = 0.1;
  p.backoff_multiplier = 2.0;
  p.max_backoff_seconds = 10.0;
  EXPECT_DOUBLE_EQ(backoff_seconds(p, 2), 0.1);
  EXPECT_DOUBLE_EQ(backoff_seconds(p, 3), 0.2);
  EXPECT_DOUBLE_EQ(backoff_seconds(p, 4), 0.4);
}

TEST(Retry, BackoffIsCapped) {
  RetryPolicy p;
  p.initial_backoff_seconds = 1.0;
  p.backoff_multiplier = 10.0;
  p.max_backoff_seconds = 2.5;
  EXPECT_DOUBLE_EQ(backoff_seconds(p, 5), 2.5);
}

TEST(Retry, ZeroInitialBackoffDisablesSleeping) {
  RetryPolicy p;  // defaults: initial backoff 0
  EXPECT_DOUBLE_EQ(backoff_seconds(p, 7), 0.0);
}

TEST(Retry, ValidationRejectsNonsense) {
  RetryPolicy p;
  p.max_attempts = 0;
  EXPECT_THROW(pe::resilience::validate(p), pe::Error);
  p = {};
  p.cv_threshold = -0.1;
  EXPECT_THROW(pe::resilience::validate(p), pe::Error);
  p = {};
  p.backoff_multiplier = 0.5;
  EXPECT_THROW(pe::resilience::validate(p), pe::Error);
  p = {};
  p.initial_backoff_seconds = -1.0;
  EXPECT_THROW(pe::resilience::validate(p), pe::Error);
  p = {};
  EXPECT_NO_THROW(pe::resilience::validate(p));
}

TEST(Retry, SleepForSecondsToleratesNonPositive) {
  EXPECT_NO_THROW(pe::resilience::sleep_for_seconds(0.0));
  EXPECT_NO_THROW(pe::resilience::sleep_for_seconds(-1.0));
}

}  // namespace
