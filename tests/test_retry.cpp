// Tests for the retry/backoff policy in perfeng/resilience/retry.hpp.
#include "perfeng/resilience/retry.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "perfeng/common/error.hpp"

namespace {

using pe::resilience::backoff_seconds;
using pe::resilience::RetryPolicy;

TEST(Retry, FirstAttemptNeverSleeps) {
  RetryPolicy p;
  p.initial_backoff_seconds = 0.5;
  EXPECT_DOUBLE_EQ(backoff_seconds(p, 1), 0.0);
}

TEST(Retry, BackoffGrowsExponentially) {
  RetryPolicy p;
  p.initial_backoff_seconds = 0.1;
  p.backoff_multiplier = 2.0;
  p.max_backoff_seconds = 10.0;
  EXPECT_DOUBLE_EQ(backoff_seconds(p, 2), 0.1);
  EXPECT_DOUBLE_EQ(backoff_seconds(p, 3), 0.2);
  EXPECT_DOUBLE_EQ(backoff_seconds(p, 4), 0.4);
}

TEST(Retry, BackoffIsCapped) {
  RetryPolicy p;
  p.initial_backoff_seconds = 1.0;
  p.backoff_multiplier = 10.0;
  p.max_backoff_seconds = 2.5;
  EXPECT_DOUBLE_EQ(backoff_seconds(p, 5), 2.5);
}

TEST(Retry, ZeroInitialBackoffDisablesSleeping) {
  RetryPolicy p;  // defaults: initial backoff 0
  EXPECT_DOUBLE_EQ(backoff_seconds(p, 7), 0.0);
}

TEST(Retry, ValidationRejectsNonsense) {
  RetryPolicy p;
  p.max_attempts = 0;
  EXPECT_THROW(pe::resilience::validate(p), pe::Error);
  p = {};
  p.cv_threshold = -0.1;
  EXPECT_THROW(pe::resilience::validate(p), pe::Error);
  p = {};
  p.backoff_multiplier = 0.5;
  EXPECT_THROW(pe::resilience::validate(p), pe::Error);
  p = {};
  p.initial_backoff_seconds = -1.0;
  EXPECT_THROW(pe::resilience::validate(p), pe::Error);
  p = {};
  EXPECT_NO_THROW(pe::resilience::validate(p));
}

TEST(Retry, SleepForSecondsToleratesNonPositive) {
  EXPECT_NO_THROW(pe::resilience::sleep_for_seconds(0.0));
  EXPECT_NO_THROW(pe::resilience::sleep_for_seconds(-1.0));
}

TEST(BackoffSchedule, NoneJitterReproducesClosedForm) {
  RetryPolicy p;
  p.initial_backoff_seconds = 0.1;
  p.backoff_multiplier = 2.0;
  p.max_backoff_seconds = 10.0;
  pe::resilience::BackoffSchedule schedule(p);
  // next() call k precedes attempt k+1 — exactly backoff_seconds(p, k+1),
  // so adopting the schedule changes nothing for un-jittered policies.
  for (int attempt = 2; attempt <= 8; ++attempt) {
    EXPECT_DOUBLE_EQ(schedule.next(), backoff_seconds(p, attempt));
  }
}

TEST(BackoffSchedule, DecorrelatedIsSeedDeterministic) {
  RetryPolicy p;
  p.initial_backoff_seconds = 0.1;
  p.max_backoff_seconds = 5.0;
  p.jitter = pe::resilience::BackoffJitter::kDecorrelated;
  p.jitter_seed = 42;
  pe::resilience::BackoffSchedule a(p);
  pe::resilience::BackoffSchedule b(p);
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(a.next(), b.next());  // same seed, same sleeps
  }
  p.jitter_seed = 43;
  pe::resilience::BackoffSchedule c(p);
  pe::resilience::BackoffSchedule d(p);
  bool any_differ = false;
  c.reset();
  for (int i = 0; i < 16; ++i) {
    if (c.next() != d.next()) any_differ = true;
  }
  EXPECT_FALSE(any_differ);  // reset() replays the stream from scratch
}

TEST(BackoffSchedule, DecorrelatedStaysWithinBaseAndCap) {
  RetryPolicy p;
  p.initial_backoff_seconds = 0.25;
  p.max_backoff_seconds = 1.0;
  p.jitter = pe::resilience::BackoffJitter::kDecorrelated;
  p.jitter_seed = 7;
  pe::resilience::BackoffSchedule schedule(p);
  for (int i = 0; i < 64; ++i) {
    const double sleep = schedule.next();
    EXPECT_GE(sleep, p.initial_backoff_seconds);
    EXPECT_LE(sleep, p.max_backoff_seconds);
  }
}

TEST(BackoffSchedule, ResetReplaysTheSameSequence) {
  RetryPolicy p;
  p.initial_backoff_seconds = 0.1;
  p.max_backoff_seconds = 3.0;
  p.jitter = pe::resilience::BackoffJitter::kDecorrelated;
  p.jitter_seed = 11;
  pe::resilience::BackoffSchedule schedule(p);
  std::vector<double> first;
  for (int i = 0; i < 8; ++i) first.push_back(schedule.next());
  schedule.reset();
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(schedule.next(), first[static_cast<std::size_t>(i)]);
  }
}

TEST(BackoffSchedule, ZeroInitialBackoffNeverSleeps) {
  RetryPolicy p;  // defaults: initial backoff 0
  p.jitter = pe::resilience::BackoffJitter::kDecorrelated;
  pe::resilience::BackoffSchedule schedule(p);
  for (int i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(schedule.next(), 0.0);
}

}  // namespace
