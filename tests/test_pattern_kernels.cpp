// Tests for the synthetic performance-pattern kernels in
// perfeng/kernels/pattern_kernels.hpp: broken and fixed variants must be
// semantically identical (that equality is the point of the exercise).
#include "perfeng/kernels/pattern_kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "perfeng/common/error.hpp"

namespace {

TEST(StridedSum, TouchesEveryElementOnce) {
  std::vector<double> data(100);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = double(i);
  const double expected = 99.0 * 100.0 / 2.0;
  for (std::size_t stride : {1u, 2u, 7u, 16u, 99u}) {
    EXPECT_NEAR(pe::kernels::strided_sum(data, stride), expected, 1e-9)
        << "stride " << stride;
  }
  EXPECT_NEAR(pe::kernels::sequential_sum(data), expected, 1e-9);
}

TEST(StridedSum, Validation) {
  EXPECT_THROW((void)pe::kernels::strided_sum({}, 1), pe::Error);
  EXPECT_THROW((void)pe::kernels::strided_sum({1.0}, 0), pe::Error);
}

TEST(FalseSharing, BothLayoutsCountTheSameTotal) {
  pe::ThreadPool pool(4);
  const std::uint64_t iterations = 20000;
  EXPECT_EQ(pe::kernels::false_sharing_counters(pool, iterations),
            4 * iterations);
  EXPECT_EQ(pe::kernels::padded_counters(pool, iterations),
            4 * iterations);
}

TEST(FalseSharing, SingleWorkerDegenerateCase) {
  pe::ThreadPool pool(1);
  EXPECT_EQ(pe::kernels::false_sharing_counters(pool, 1000), 1000u);
  EXPECT_EQ(pe::kernels::padded_counters(pool, 1000), 1000u);
}

TEST(LoadImbalance, BothSchedulesComputeTheSameValues) {
  pe::ThreadPool pool(3);
  std::vector<double> s, d;
  pe::kernels::imbalanced_static(pool, 200, s);
  pe::kernels::imbalanced_dynamic(pool, 200, d);
  ASSERT_EQ(s.size(), 200u);
  EXPECT_EQ(s, d);
}

TEST(LoadImbalance, TaskCostGrowsWithIndex) {
  // The value encodes the iteration count; later tasks drift further from
  // the initial 1.0.
  pe::ThreadPool pool(2);
  std::vector<double> out;
  pe::kernels::imbalanced_static(pool, 100, out);
  EXPECT_DOUBLE_EQ(out[0], 1.0);  // zero iterations
  EXPECT_NE(out[99], 1.0);
}

TEST(BranchySum, BranchyAndBranchlessAgree) {
  pe::Rng rng(21);
  const auto data = pe::kernels::random_doubles(10000, rng);
  const double a = pe::kernels::branchy_sum(data, 0.5);
  const double b = pe::kernels::branchless_sum(data, 0.5);
  EXPECT_NEAR(a, b, 1e-9);
  EXPECT_GT(a, 0.0);
}

TEST(BranchySum, SortingPreservesTheResult) {
  pe::Rng rng(22);
  const auto random = pe::kernels::random_doubles(5000, rng);
  auto sorted = random;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NEAR(pe::kernels::branchy_sum(random, 0.5),
              pe::kernels::branchy_sum(sorted, 0.5), 1e-9);
}

TEST(BranchySum, ThresholdAtExtremes) {
  pe::Rng rng(23);
  const auto data = pe::kernels::random_doubles(100, rng);
  EXPECT_DOUBLE_EQ(pe::kernels::branchy_sum(data, 2.0), 0.0);
  EXPECT_NEAR(pe::kernels::branchy_sum(data, -1.0),
              pe::kernels::sequential_sum(data), 1e-12);
}

TEST(Generators, SortedIsSorted) {
  pe::Rng rng(24);
  const auto sorted = pe::kernels::sorted_doubles(1000, rng);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  EXPECT_EQ(sorted.size(), 1000u);
}

}  // namespace
