// Tests for kernel trace replay in perfeng/kernels/traces.hpp — the
// qualitative behaviours Assignment 4 relies on must hold in simulation.
#include "perfeng/kernels/traces.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/rng.hpp"
#include "perfeng/kernels/histogram.hpp"
#include "perfeng/kernels/pattern_kernels.hpp"
#include "perfeng/kernels/sparse.hpp"

namespace {

using pe::kernels::TraceVariant;
using pe::sim::CacheHierarchy;

CacheHierarchy small_hierarchy() {
  // A deliberately small 2 KiB L1 (32 lines) + 64 KiB L2: a 48-deep
  // column walk (48 distinct lines) thrashes the L1 while sequential
  // streams still enjoy line reuse — scaled-down but faithful geometry.
  std::vector<pe::sim::LevelSpec> specs;
  specs.push_back({pe::sim::CacheConfig{"L1", 2 * 1024, 64, 8}, 4.0});
  specs.push_back({pe::sim::CacheConfig{"L2", 64 * 1024, 64, 8}, 12.0});
  return CacheHierarchy(std::move(specs), 200.0);
}

TEST(TraceMatmul, LoopOrderChangesMissesNotAccesses) {
  const std::size_t n = 48;
  CacheHierarchy naive = small_hierarchy();
  CacheHierarchy ikj = small_hierarchy();
  pe::kernels::trace_matmul(naive, n, TraceVariant::kNaiveIjk);
  pe::kernels::trace_matmul(ikj, n, TraceVariant::kInterchangedIkj);

  const auto sn = naive.stats();
  const auto si = ikj.stats();
  // The interchanged variant issues more accesses (C is re-read), yet
  // misses far less: that contrast is the Assignment 1 lesson.
  EXPECT_GT(si.total_accesses, sn.total_accesses);
  EXPECT_LT(si.levels[0].misses() * 2, sn.levels[0].misses());
  EXPECT_LT(si.total_cycles, sn.total_cycles);
}

TEST(TraceMatmul, TilingBeatsInterchangeInL1Misses) {
  // A fully-associative 4 KiB L1 isolates the *capacity* effect tiling
  // targets; in the 4-set toy cache above, the tile rows (which stride by
  // whole lines) all collide in one set and drown the signal — itself a
  // realistic lesson about conflict misses.
  auto fully_assoc = [] {
    std::vector<pe::sim::LevelSpec> specs;
    specs.push_back({pe::sim::CacheConfig{"L1", 4 * 1024, 64, 64}, 4.0});
    specs.push_back({pe::sim::CacheConfig{"L2", 64 * 1024, 64, 8}, 12.0});
    return CacheHierarchy(std::move(specs), 200.0);
  };
  const std::size_t n = 64;
  CacheHierarchy ikj = fully_assoc();
  CacheHierarchy tiled = fully_assoc();
  pe::kernels::trace_matmul(ikj, n, TraceVariant::kInterchangedIkj);
  pe::kernels::trace_matmul(tiled, n, TraceVariant::kTiled, 8);
  EXPECT_LT(tiled.stats().levels[0].misses(),
            ikj.stats().levels[0].misses());
}

TEST(TraceMatmul, AccessCountsAreExact) {
  // ijk: per (i,j): n reads of A, n reads of B, 1 write of C.
  const std::size_t n = 8;
  CacheHierarchy h = small_hierarchy();
  pe::kernels::trace_matmul(h, n, TraceVariant::kNaiveIjk);
  EXPECT_EQ(h.stats().total_accesses, n * n * (2 * n + 1));
}

TEST(TraceStrided, LargerStridesMissMore) {
  const std::size_t elements = 1 << 15;  // 256 KiB of doubles > L2
  std::uint64_t previous = 0;
  for (std::size_t stride : {1u, 2u, 4u, 8u}) {
    CacheHierarchy h = small_hierarchy();
    pe::kernels::trace_strided(h, elements, stride);
    const auto misses = h.stats().levels[0].misses();
    EXPECT_GT(misses, previous) << "stride " << stride;
    previous = misses;
  }
}

TEST(TraceStrided, UnitStrideMissesOncePerLine) {
  const std::size_t elements = 1 << 12;
  CacheHierarchy h = small_hierarchy();
  pe::kernels::trace_strided(h, elements, 1);
  // 8 doubles per 64-byte line.
  EXPECT_EQ(h.stats().levels[0].misses(), elements / 8);
}

TEST(TraceStrided, LineSizedStrideMissesEveryAccess) {
  // Stride 8 doubles = one access per line per pass over a working set
  // far beyond every cache level: all accesses miss.
  const std::size_t elements = 1 << 15;
  CacheHierarchy h = small_hierarchy();
  pe::kernels::trace_strided(h, elements, 8);
  EXPECT_EQ(h.stats().levels[0].misses(), elements);
}

TEST(TraceHistogram, SkewedInputsMissLess) {
  pe::Rng rng(31);
  const std::size_t bins = 1 << 15;  // 256 KiB of counters > L2
  const auto uniform =
      pe::kernels::generate_uniform_indices(40000, bins, rng);
  const auto zipf =
      pe::kernels::generate_zipf_indices(40000, bins, 1.2, rng);

  CacheHierarchy hu = small_hierarchy();
  CacheHierarchy hz = small_hierarchy();
  pe::kernels::trace_histogram(hu, uniform, bins);
  pe::kernels::trace_histogram(hz, zipf, bins);
  EXPECT_LT(hz.stats().dram_accesses, hu.stats().dram_accesses / 2);
}

TEST(TraceSpmv, BandedBeatsScatteredOnXGathers) {
  pe::Rng rng(32);
  const auto banded = pe::kernels::coo_to_csr(pe::kernels::generate_sparse(
      2000, 2000, 0.005, pe::kernels::SparsityPattern::kUniform, rng));
  const auto local = pe::kernels::coo_to_csr(pe::kernels::generate_sparse(
      2000, 2000, 0.005, pe::kernels::SparsityPattern::kBanded, rng));

  CacheHierarchy hs = small_hierarchy();
  CacheHierarchy hb = small_hierarchy();
  pe::kernels::trace_spmv_csr(hs, banded.rows, banded.cols, banded.row_ptr,
                              banded.col_idx);
  pe::kernels::trace_spmv_csr(hb, local.rows, local.cols, local.row_ptr,
                              local.col_idx);
  EXPECT_LT(hb.stats().levels[0].miss_rate(),
            hs.stats().levels[0].miss_rate());
}

TEST(TraceBranchy, RandomDataDefeatsPredictorSortedDoesNot) {
  pe::Rng rng(33);
  const auto random = pe::kernels::random_doubles(20000, rng);
  const auto sorted = pe::kernels::sorted_doubles(20000, rng);

  pe::sim::BranchPredictor random_pred, sorted_pred;
  pe::kernels::trace_branchy(random_pred, random, 0.5);
  pe::kernels::trace_branchy(sorted_pred, sorted, 0.5);

  EXPECT_GT(random_pred.stats().misprediction_rate(), 0.35);
  EXPECT_LT(sorted_pred.stats().misprediction_rate(), 0.01);
}

}  // namespace
