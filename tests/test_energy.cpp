// Tests for the energy models in perfeng/models/energy.hpp.
#include "perfeng/models/energy.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

using namespace pe::models;
using namespace pe::counters;

PowerModel power() { return {10.0, 30.0}; }

TEST(PowerModel, LinearInUtilization) {
  EXPECT_DOUBLE_EQ(power().power(0.0), 10.0);
  EXPECT_DOUBLE_EQ(power().power(1.0), 40.0);
  EXPECT_DOUBLE_EQ(power().power(0.5), 25.0);
}

TEST(PowerModel, EnergyIntegratesOverTime) {
  EXPECT_DOUBLE_EQ(power().energy(2.0, 1.0), 80.0);
  EXPECT_DOUBLE_EQ(power().energy(0.0, 1.0), 0.0);
}

TEST(PowerModel, UtilizationValidated) {
  EXPECT_THROW((void)power().power(-0.1), pe::Error);
  EXPECT_THROW((void)power().power(1.1), pe::Error);
  EXPECT_THROW((void)power().energy(-1.0, 0.5), pe::Error);
}

TEST(EventEnergy, AttributesPerEvent) {
  EventEnergyModel m;
  m.joules_per_instruction = 1.0;
  m.joules_per_l1_access = 2.0;
  m.joules_per_l2_access = 4.0;
  m.joules_per_l3_access = 8.0;
  m.joules_per_dram_access = 16.0;
  CounterSet c;
  c.set(kInstructions, 10);
  c.set(kMemAccesses, 5);
  c.set(kL1Misses, 3);
  c.set(kL2Misses, 2);
  c.set(kDramAccesses, 1);
  EXPECT_DOUBLE_EQ(m.energy(c), 10.0 + 10.0 + 12.0 + 16.0 + 16.0);
}

TEST(EventEnergy, MissingCountersContributeNothing) {
  EventEnergyModel m;
  EXPECT_DOUBLE_EQ(m.energy(CounterSet{}), 0.0);
}

TEST(EventEnergy, DramDominatesCacheFriendlyVsHostile) {
  // Same instruction count, one run with 100x the DRAM traffic.
  EventEnergyModel m;
  CounterSet friendly, hostile;
  for (auto* c : {&friendly, &hostile}) {
    c->set(kInstructions, 1000000);
    c->set(kMemAccesses, 500000);
  }
  friendly.set(kDramAccesses, 1000);
  hostile.set(kDramAccesses, 100000);
  EXPECT_GT(m.energy(hostile), m.energy(friendly) * 2.0);
}

TEST(EnergyReport, DerivedMetrics) {
  EnergyReport r;
  r.seconds = 2.0;
  r.joules = 80.0;
  r.flops = 1.6e9;
  EXPECT_DOUBLE_EQ(r.watts(), 40.0);
  EXPECT_DOUBLE_EQ(r.flops_per_joule(), 2e7);
  EXPECT_DOUBLE_EQ(r.energy_delay_product(), 160.0);
}

TEST(EnergyReport, FromPowerAndFromEventsAgreeOnStructure) {
  const auto rp = report_from_power(power(), 1.0, 0.5, 1e9);
  EXPECT_DOUBLE_EQ(rp.joules, 25.0);
  EXPECT_DOUBLE_EQ(rp.flops_per_joule(), 1e9 / 25.0);

  CounterSet c;
  c.set(kInstructions, 1000);
  EventEnergyModel events;
  events.joules_per_instruction = 0.001;
  const auto re = report_from_events(events, c, 1.0, 1e9);
  EXPECT_DOUBLE_EQ(re.joules, 1.0);
}

TEST(RaceToIdle, FasterAtHigherUtilizationCanStillSaveEnergy) {
  // 2x faster at full utilization vs baseline at 50%:
  // optimized 1 s * 40 W = 40 J vs baseline 2 s * 25 W = 50 J.
  const double ratio = race_to_idle_ratio(power(), 2.0, 0.5, 1.0, 1.0);
  EXPECT_NEAR(ratio, 0.8, 1e-12);
  EXPECT_LT(ratio, 1.0);
}

TEST(RaceToIdle, SlowerNeverSavesUnderThisModel) {
  EXPECT_GT(race_to_idle_ratio(power(), 1.0, 0.5, 3.0, 0.5), 1.0);
}

}  // namespace
