// Tests for the benchmark submission service in perfeng/service.
//
// Time is injected wherever a test needs to reason about deadlines or
// breaker cooldowns, and fault plans are seeded, so everything here is
// deterministic — no wall-clock races decide a verdict.
#include "perfeng/service/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "perfeng/common/error.hpp"
#include "perfeng/measure/timer.hpp"
#include "perfeng/resilience/fault_injection.hpp"

namespace {

using pe::service::BenchmarkService;
using pe::service::CircuitBreaker;
using pe::service::ServiceConfig;
using pe::service::ShedReason;
using pe::service::SubmissionRequest;
using pe::service::SubmitResult;
using pe::service::TerminalState;

/// A tiny kernel that does real, optimizer-proof work.
std::function<void()> tiny_kernel() {
  return [] {
    double x = 1.0;
    for (int i = 0; i < 64; ++i) x += 1.0 / (1.0 + x);
    pe::do_not_optimize(x);
  };
}

/// Single-worker service with a hand-advanced clock: submissions retire
/// in admission order and the test controls every timestamp.
struct Harness {
  explicit Harness(ServiceConfig config = {})
      : time(std::make_shared<std::atomic<double>>(0.0)) {
    config.workers = 1;
    config.now = [t = time] { return t->load(); };
    service = std::make_unique<BenchmarkService>(std::move(config));
  }

  void advance(double seconds) {
    double old = time->load();
    while (!time->compare_exchange_weak(old, old + seconds)) {
    }
  }

  SubmitResult submit(const std::string& tenant, const std::string& key,
                      std::function<void()> kernel = tiny_kernel(),
                      double deadline = 0.0) {
    SubmissionRequest request;
    request.tenant = tenant;
    request.workload_key = key;
    request.kernel = std::move(kernel);
    request.deadline_seconds = deadline;
    return service->submit(std::move(request));
  }

  std::shared_ptr<std::atomic<double>> time;
  std::unique_ptr<BenchmarkService> service;
};

TEST(Service, CompletesASimpleSubmission) {
  Harness h;
  const SubmitResult r = h.submit("alice", "tiny");
  EXPECT_TRUE(r.admitted);
  EXPECT_EQ(r.ticket, 1u);
  const auto outcome = r.outcome.get();
  EXPECT_EQ(outcome.state, TerminalState::kCompleted);
  EXPECT_GT(outcome.measurement.seconds.size(), 0u);
  const auto stats = h.service->stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.workloads_run, 1u);
}

TEST(Service, RejectsMalformedSubmissions) {
  Harness h;
  SubmissionRequest no_tenant;
  no_tenant.workload_key = "k";
  no_tenant.kernel = tiny_kernel();
  EXPECT_THROW((void)h.service->submit(std::move(no_tenant)), pe::Error);
  SubmissionRequest no_kernel;
  no_kernel.tenant = "t";
  no_kernel.workload_key = "k";
  EXPECT_THROW((void)h.service->submit(std::move(no_kernel)), pe::Error);
  SubmissionRequest bad_deadline;
  bad_deadline.tenant = "t";
  bad_deadline.workload_key = "k";
  bad_deadline.kernel = tiny_kernel();
  bad_deadline.deadline_seconds = -1.0;
  EXPECT_THROW((void)h.service->submit(std::move(bad_deadline)), pe::Error);
}

TEST(Service, CacheHitServesWithoutRerunning) {
  Harness h;
  auto runs = std::make_shared<std::atomic<int>>(0);
  const auto counting = [runs] {
    runs->fetch_add(1);
    pe::do_not_optimize(runs);
  };
  const SubmitResult first = h.submit("alice", "counted", counting);
  ASSERT_EQ(first.outcome.get().state, TerminalState::kCompleted);
  const int invocations_after_first = runs->load();
  ASSERT_GT(invocations_after_first, 0);

  // Identical key (even from another tenant): served from cache, the
  // kernel is never invoked again.
  const SubmitResult second = h.submit("bob", "counted", counting);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_FALSE(second.admitted);
  EXPECT_EQ(second.outcome.get().state, TerminalState::kCompleted);
  EXPECT_EQ(runs->load(), invocations_after_first);
  const auto stats = h.service->stats();
  EXPECT_EQ(stats.workloads_run, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
}

TEST(Service, DeadlineExpiredInQueueShedsWithoutRunning) {
  Harness h;
  // Occupy the single worker with a kernel that blocks until released.
  auto release = std::make_shared<std::atomic<bool>>(false);
  const auto blocking = [release] {
    while (!release->load()) std::this_thread::yield();
  };
  const SubmitResult blocker = h.submit("blocker", "block", blocking);
  ASSERT_TRUE(blocker.admitted);
  // Wait until the blocker is actually running, so the next submission
  // stays queued until we say otherwise.
  while (h.service->stats().workloads_run == 0) std::this_thread::yield();

  auto runs = std::make_shared<std::atomic<int>>(0);
  const auto counting = [runs] { runs->fetch_add(1); };
  const SubmitResult doomed =
      h.submit("alice", "doomed", counting, /*deadline=*/5.0);
  ASSERT_TRUE(doomed.admitted);

  h.advance(10.0);  // the deadline expires while the work is queued
  release->store(true);

  const auto outcome = doomed.outcome.get();
  EXPECT_EQ(outcome.state, TerminalState::kShed);
  EXPECT_EQ(outcome.shed_reason, ShedReason::kDeadlineExpired);
  EXPECT_GE(outcome.queue_seconds, 5.0);
  EXPECT_EQ(runs->load(), 0);  // expired work is never run
  EXPECT_EQ(blocker.outcome.get().state, TerminalState::kCompleted);
  EXPECT_EQ(h.service->stats().shed_deadline, 1u);
}

TEST(Service, TenantFloodIsShedWhileOthersAreServed) {
  ServiceConfig config;
  config.queue.capacity = 16;
  config.queue.tenant_capacity = 2;
  Harness h(std::move(config));
  // Hold the worker so admission verdicts are decided with a full queue.
  auto release = std::make_shared<std::atomic<bool>>(false);
  const auto blocking = [release] {
    while (!release->load()) std::this_thread::yield();
  };
  ASSERT_TRUE(h.submit("blocker", "block", blocking).admitted);
  while (h.service->stats().workloads_run == 0) std::this_thread::yield();

  // The flooding tenant gets its fair share and not one slot more...
  const SubmitResult f1 = h.submit("flood", "f1");
  const SubmitResult f2 = h.submit("flood", "f2");
  const SubmitResult f3 = h.submit("flood", "f3");
  EXPECT_TRUE(f1.admitted);
  EXPECT_TRUE(f2.admitted);
  EXPECT_FALSE(f3.admitted);
  EXPECT_EQ(f3.shed_reason, ShedReason::kTenantOverShare);
  EXPECT_EQ(f3.outcome.get().state, TerminalState::kShed);
  // ...while a polite tenant is still admitted.
  const SubmitResult polite = h.submit("polite", "p1");
  EXPECT_TRUE(polite.admitted);

  release->store(true);
  EXPECT_EQ(polite.outcome.get().state, TerminalState::kCompleted);
  EXPECT_EQ(f1.outcome.get().state, TerminalState::kCompleted);
  EXPECT_EQ(f2.outcome.get().state, TerminalState::kCompleted);
  const auto stats = h.service->stats();
  EXPECT_EQ(stats.shed_tenant_share, 1u);
  EXPECT_EQ(stats.submitted, stats.admitted + stats.shed_at_admission());
}

TEST(Service, BreakerTripsShedsAndRecovers) {
  ServiceConfig config;
  config.breaker.failure_threshold = 2;
  config.breaker.cooldown.initial_backoff_seconds = 1.0;
  Harness h(std::move(config));
  const auto faulty = [] { throw std::runtime_error("kernel exploded"); };

  // Two consecutive failures trip alice's breaker...
  EXPECT_EQ(h.submit("alice", "bad1", faulty).outcome.get().state,
            TerminalState::kFailed);
  EXPECT_EQ(h.submit("alice", "bad2", faulty).outcome.get().state,
            TerminalState::kFailed);
  EXPECT_EQ(h.service->breaker_state("alice"),
            CircuitBreaker::State::kOpen);
  // ...so her next submission is shed at the door, unrun.
  const SubmitResult shed = h.submit("alice", "bad3", faulty);
  EXPECT_FALSE(shed.admitted);
  EXPECT_EQ(shed.shed_reason, ShedReason::kBreakerOpen);
  EXPECT_EQ(shed.outcome.get().shed_reason, ShedReason::kBreakerOpen);
  // Other tenants are isolated from alice's breaker.
  EXPECT_EQ(h.submit("bob", "good", tiny_kernel()).outcome.get().state,
            TerminalState::kCompleted);

  // After the cooldown a half-open probe that succeeds re-closes it.
  h.advance(1.5);
  const SubmitResult probe = h.submit("alice", "good2", tiny_kernel());
  EXPECT_TRUE(probe.admitted);
  EXPECT_EQ(probe.outcome.get().state, TerminalState::kCompleted);
  EXPECT_EQ(h.service->breaker_state("alice"),
            CircuitBreaker::State::kClosed);
  EXPECT_EQ(h.service->stats().shed_breaker, 1u);
}

TEST(Service, StopShedsQueuedWorkAndRefusesNewWork) {
  Harness h;
  auto release = std::make_shared<std::atomic<bool>>(false);
  const auto blocking = [release] {
    while (!release->load()) std::this_thread::yield();
  };
  const SubmitResult running = h.submit("t", "block", blocking);
  while (h.service->stats().workloads_run == 0) std::this_thread::yield();
  const SubmitResult queued = h.submit("t", "queued");

  h.service->stop();
  const SubmitResult late = h.submit("t", "late");
  EXPECT_FALSE(late.admitted);
  EXPECT_EQ(late.shed_reason, ShedReason::kShutdown);

  release->store(true);
  // In-flight work finishes; queued work is shed with a reason, not lost.
  EXPECT_EQ(running.outcome.get().state, TerminalState::kCompleted);
  const auto queued_outcome = queued.outcome.get();
  EXPECT_EQ(queued_outcome.state, TerminalState::kShed);
  EXPECT_EQ(queued_outcome.shed_reason, ShedReason::kShutdown);
  h.service.reset();  // destructor path: no hangs, no broken promises
}

/// One seeded campaign: N submissions under admission and dequeue faults,
/// returning the terminal state sequence in submission order.
std::vector<std::string> campaign(std::uint64_t seed) {
  pe::resilience::FaultPlan plan;
  plan.seed = seed;
  plan.faults.push_back(
      {.site = std::string(pe::fault_sites::kServiceAdmit),
       .probability = 0.25});
  plan.faults.push_back(
      {.site = std::string(pe::fault_sites::kServiceDequeue),
       .probability = 0.25});
  pe::resilience::ScopedFaultInjection scope(std::move(plan));

  ServiceConfig config;
  // A huge threshold keeps the breaker out of this test's way; the
  // breaker path has its own deterministic tests.
  config.breaker.failure_threshold = 1000000;
  Harness h(std::move(config));
  std::vector<SubmitResult> results;
  for (int i = 0; i < 40; ++i) {
    results.push_back(h.submit("t", "w" + std::to_string(i)));
  }
  std::vector<std::string> states;
  for (const SubmitResult& r : results) {
    const auto outcome = r.outcome.get();
    states.push_back(std::string(to_string(outcome.state)) + "/" +
                     std::string(to_string(outcome.shed_reason)));
  }
  h.service.reset();  // join drains before the injection scope dies
  return states;
}

TEST(Service, SameSeedSameTerminalStateSequence) {
  // The chaos contract, end to end: the service's fault sites are visited
  // exactly once per submission in submission order (single worker), so a
  // seeded plan reproduces the same terminal-state sequence bit for bit.
  const auto a = campaign(17);
  const auto b = campaign(17);
  EXPECT_EQ(a, b);
  const auto c = campaign(18);
  EXPECT_NE(a, c);  // a different seed attacks a different subset
  // Both fault kinds actually appeared (p = 0.25 over 40 submissions).
  EXPECT_NE(std::count(a.begin(), a.end(), "shed/admission-fault"), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), "failed/none"), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), "completed/none"), 0);
}

}  // namespace
