// Tests for Dataset in perfeng/statmodel/dataset.hpp.
#include "perfeng/statmodel/dataset.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

using pe::statmodel::Dataset;

Dataset small() {
  Dataset d({"a", "b"});
  d.add_row({1.0, 10.0}, 100.0);
  d.add_row({2.0, 20.0}, 200.0);
  d.add_row({3.0, 30.0}, 300.0);
  d.add_row({4.0, 40.0}, 400.0);
  return d;
}

TEST(Dataset, ShapeAndAccess) {
  const auto d = small();
  EXPECT_EQ(d.rows(), 4u);
  EXPECT_EQ(d.features(), 2u);
  EXPECT_EQ(d.feature_names()[1], "b");
  EXPECT_EQ(d.row(2)[0], 3.0);
  EXPECT_EQ(d.target(2), 300.0);
  EXPECT_THROW((void)d.row(4), pe::Error);
}

TEST(Dataset, RowWidthValidated) {
  Dataset d({"a", "b"});
  EXPECT_THROW(d.add_row({1.0}, 1.0), pe::Error);
}

TEST(Dataset, EmptyFeaturesRejected) {
  EXPECT_THROW(Dataset(std::vector<std::string>{}), pe::Error);
}

TEST(Dataset, SplitPreservesRowsInOrder) {
  const auto split = small().train_test_split(0.25);
  EXPECT_EQ(split.train.rows(), 3u);
  EXPECT_EQ(split.test.rows(), 1u);
  EXPECT_EQ(split.test.target(0), 400.0);
}

TEST(Dataset, SplitAlwaysLeavesBothSidesNonEmpty) {
  Dataset d({"x"});
  d.add_row({1.0}, 1.0);
  d.add_row({2.0}, 2.0);
  const auto split = d.train_test_split(0.01);
  EXPECT_EQ(split.train.rows(), 1u);
  EXPECT_EQ(split.test.rows(), 1u);
}

TEST(Dataset, SplitFractionValidated) {
  EXPECT_THROW((void)small().train_test_split(0.0), pe::Error);
  EXPECT_THROW((void)small().train_test_split(1.0), pe::Error);
}

TEST(Dataset, ShuffleKeepsRowTargetPairsTogether) {
  auto d = small();
  pe::Rng rng(5);
  d.shuffle(rng);
  EXPECT_EQ(d.rows(), 4u);
  for (std::size_t i = 0; i < d.rows(); ++i) {
    // Target is always 100x the first feature in this dataset.
    EXPECT_DOUBLE_EQ(d.target(i), d.row(i)[0] * 100.0);
  }
}

TEST(Dataset, StandardizerZeroMeanUnitVariance) {
  const auto d = small();
  const auto s = d.fit_standardizer();
  const auto z = d.standardized(s);
  double mean0 = 0.0;
  for (std::size_t i = 0; i < z.rows(); ++i) mean0 += z.row(i)[0];
  EXPECT_NEAR(mean0 / z.rows(), 0.0, 1e-12);
  double var0 = 0.0;
  for (std::size_t i = 0; i < z.rows(); ++i) var0 += z.row(i)[0] * z.row(i)[0];
  EXPECT_NEAR(var0 / (z.rows() - 1), 1.0, 1e-12);
}

TEST(Dataset, StandardizerConstantFeatureMapsToZero) {
  Dataset d({"c"});
  d.add_row({7.0}, 1.0);
  d.add_row({7.0}, 2.0);
  const auto s = d.fit_standardizer();
  const auto z = d.standardized(s);
  EXPECT_DOUBLE_EQ(z.row(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(z.row(1)[0], 0.0);
}

TEST(Dataset, StandardizerAppliesToNewRows) {
  const auto s = small().fit_standardizer();
  std::vector<double> row = {2.5, 25.0};  // the feature means
  s.apply(row);
  EXPECT_NEAR(row[0], 0.0, 1e-12);
  EXPECT_NEAR(row[1], 0.0, 1e-12);
}

}  // namespace
