// Tests for CounterSet in perfeng/counters/counter_set.hpp.
#include "perfeng/counters/counter_set.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

using namespace pe::counters;

TEST(CounterSet, SetAndGet) {
  CounterSet c;
  c.set(kCycles, 1000);
  EXPECT_EQ(c.get(kCycles), 1000u);
  EXPECT_TRUE(c.has(kCycles));
  EXPECT_FALSE(c.has(kInstructions));
}

TEST(CounterSet, MissingCounterThrowsOrZero) {
  CounterSet c;
  EXPECT_THROW((void)c.get("nope"), pe::Error);
  EXPECT_EQ(c.get_or_zero("nope"), 0u);
}

TEST(CounterSet, AddAccumulates) {
  CounterSet c;
  c.add(kBranches, 10);
  c.add(kBranches, 5);
  EXPECT_EQ(c.get(kBranches), 15u);
}

TEST(CounterSet, SetOverwrites) {
  CounterSet c;
  c.set(kCycles, 10);
  c.set(kCycles, 3);
  EXPECT_EQ(c.get(kCycles), 3u);
}

TEST(CounterSet, RatioHandlesZeroDenominator) {
  CounterSet c;
  c.set(kInstructions, 100);
  EXPECT_EQ(c.ratio(kInstructions, kCycles), 0.0);
  c.set(kCycles, 50);
  EXPECT_DOUBLE_EQ(c.ratio(kInstructions, kCycles), 2.0);
}

TEST(CounterSet, DerivedMetrics) {
  CounterSet c;
  c.set(kInstructions, 2000);
  c.set(kCycles, 1000);
  c.set(kMemAccesses, 500);
  c.set(kL1Misses, 50);
  c.set(kBranches, 400);
  c.set(kBranchMisses, 100);
  c.set(kDramAccesses, 20);
  EXPECT_DOUBLE_EQ(c.ipc(), 2.0);
  EXPECT_DOUBLE_EQ(c.l1_miss_rate(), 0.1);
  EXPECT_DOUBLE_EQ(c.branch_miss_rate(), 0.25);
  EXPECT_DOUBLE_EQ(c.dram_per_instruction(), 0.01);
}

TEST(CounterSet, MergeSums) {
  CounterSet a, b;
  a.set(kCycles, 100);
  a.set(kBranches, 10);
  b.set(kCycles, 50);
  b.set(kL1Misses, 7);
  a.merge(b);
  EXPECT_EQ(a.get(kCycles), 150u);
  EXPECT_EQ(a.get(kBranches), 10u);
  EXPECT_EQ(a.get(kL1Misses), 7u);
}

TEST(CounterSet, ValuesExposesAll) {
  CounterSet c;
  c.set("a", 1);
  c.set("b", 2);
  EXPECT_EQ(c.values().size(), 2u);
}

}  // namespace
