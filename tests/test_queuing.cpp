// Tests for the queuing-theory closed forms in perfeng/models/queuing.hpp.
#include "perfeng/models/queuing.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

TEST(Mm1, TextbookValues) {
  // lambda = 0.5, mu = 1: rho = 0.5, W = 2, Wq = 1, L = 1, Lq = 0.5.
  const auto m = pe::models::mm1(0.5, 1.0);
  EXPECT_DOUBLE_EQ(m.utilization, 0.5);
  EXPECT_DOUBLE_EQ(m.mean_response, 2.0);
  EXPECT_DOUBLE_EQ(m.mean_wait, 1.0);
  EXPECT_DOUBLE_EQ(m.mean_in_system, 1.0);
  EXPECT_DOUBLE_EQ(m.mean_queue_length, 0.5);
}

TEST(Mm1, WaitExplodesNearSaturation) {
  EXPECT_GT(pe::models::mm1(0.99, 1.0).mean_wait,
            pe::models::mm1(0.5, 1.0).mean_wait * 20.0);
}

TEST(Mm1, RequiresStability) {
  EXPECT_THROW((void)pe::models::mm1(1.0, 1.0), pe::Error);
  EXPECT_THROW((void)pe::models::mm1(2.0, 1.0), pe::Error);
  EXPECT_THROW((void)pe::models::mm1(0.0, 1.0), pe::Error);
}

TEST(ErlangC, SingleServerReducesToRho) {
  // For c = 1 the probability of waiting is exactly rho.
  EXPECT_NEAR(pe::models::erlang_c(0.6, 1.0, 1), 0.6, 1e-12);
}

TEST(ErlangC, KnownTwoServerValue) {
  // a = 1, c = 2, rho = 0.5: Pw = (a^2/2!)/(1-rho) / (1 + a + ...) = 1/3.
  EXPECT_NEAR(pe::models::erlang_c(1.0, 1.0, 2), 1.0 / 3.0, 1e-12);
}

TEST(ErlangC, MoreServersWaitLess) {
  const double pw2 = pe::models::erlang_c(1.5, 1.0, 2);
  const double pw4 = pe::models::erlang_c(1.5, 1.0, 4);
  EXPECT_GT(pw2, pw4);
}

TEST(Mmc, SingleServerMatchesMm1) {
  const auto a = pe::models::mm1(0.7, 1.0);
  const auto b = pe::models::mmc(0.7, 1.0, 1);
  EXPECT_NEAR(a.mean_wait, b.mean_wait, 1e-12);
  EXPECT_NEAR(a.mean_response, b.mean_response, 1e-12);
  EXPECT_NEAR(a.mean_in_system, b.mean_in_system, 1e-12);
}

TEST(Mmc, LittlesLawInternalConsistency) {
  const auto m = pe::models::mmc(3.0, 1.0, 4);
  EXPECT_NEAR(m.mean_in_system, 3.0 * m.mean_response, 1e-12);
  EXPECT_NEAR(m.mean_queue_length, 3.0 * m.mean_wait, 1e-12);
}

TEST(Mmc, PoolingBeatsSeparateQueues) {
  // One fast pooled system vs separate queues: 2 servers with lambda 1.4
  // beats one server at lambda 0.7 in waiting time.
  const auto pooled = pe::models::mmc(1.4, 1.0, 2);
  const auto single = pe::models::mm1(0.7, 1.0);
  EXPECT_LT(pooled.mean_wait, single.mean_wait);
}

TEST(Mg1, ExponentialServiceMatchesMm1) {
  const auto pk = pe::models::mg1(0.6, 1.0, 1.0);
  const auto mm = pe::models::mm1(0.6, 1.0);
  EXPECT_NEAR(pk.mean_wait, mm.mean_wait, 1e-12);
}

TEST(Mg1, DeterministicServiceHalvesWait) {
  const auto det = pe::models::mg1(0.6, 1.0, 0.0);
  const auto exp = pe::models::mg1(0.6, 1.0, 1.0);
  EXPECT_NEAR(det.mean_wait, exp.mean_wait / 2.0, 1e-12);
}

TEST(Mg1, HighVarianceHurts) {
  EXPECT_GT(pe::models::mg1(0.6, 1.0, 4.0).mean_wait,
            pe::models::mg1(0.6, 1.0, 1.0).mean_wait);
}

TEST(LittlesLaw, Occupancy) {
  EXPECT_DOUBLE_EQ(pe::models::littles_law_occupancy(100.0, 0.05), 5.0);
}

TEST(InteractiveLaw, ResponseTime) {
  // N = 20 users, X = 2 req/s, Z = 5 s think -> R = 10 - 5 = 5 s.
  EXPECT_DOUBLE_EQ(pe::models::interactive_response_time(20.0, 2.0, 5.0),
                   5.0);
  EXPECT_THROW(
      (void)pe::models::interactive_response_time(0.0, 1.0, 1.0),
      pe::Error);
}

}  // namespace
