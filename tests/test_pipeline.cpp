// Tests for the seven-stage pipeline in perfeng/core/pipeline.hpp.
#include "perfeng/core/pipeline.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "perfeng/common/error.hpp"

namespace {

using pe::core::Pipeline;
using pe::core::Requirement;
using pe::core::Variant;
using pe::models::KernelCharacterization;
using pe::models::RooflineModel;

pe::BenchmarkRunner fast_runner() {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 0;
  cfg.repetitions = 3;
  cfg.min_batch_seconds = 1e-4;
  return pe::BenchmarkRunner(cfg);
}

RooflineModel machine() { return RooflineModel(1e11, 1e10); }

KernelCharacterization characterization() {
  return {"toy", 1e6, 1e6};  // intensity 1 FLOP/B, memory-bound
}

// Busy-wait kernels: deterministic CPU work is far more stable than
// sleep_for on loaded machines (itself a measurement lesson).
void spin(std::size_t iterations) {
  volatile double acc = 1.0;
  for (std::size_t i = 0; i < iterations; ++i)
    acc = acc * 1.0000001 + 1e-9;
}
void slow_kernel() { spin(1000000); }
void fast_kernel() { spin(200000); }

TEST(Pipeline, RequiresStagesInOrder) {
  Pipeline p(machine(), fast_runner());
  EXPECT_THROW((void)p.run(), pe::Error);  // no requirement
  p.set_requirement({"go faster", 1.5});
  EXPECT_THROW((void)p.run(), pe::Error);  // no baseline
}

TEST(Pipeline, ValidatesInputs) {
  Pipeline p(machine(), fast_runner());
  EXPECT_THROW(p.set_requirement({"shrink", 0.5}), pe::Error);
  EXPECT_THROW(p.set_baseline({"b", "", nullptr}, characterization()),
               pe::Error);
  EXPECT_THROW(
      p.set_baseline({"b", "", [] {}}, KernelCharacterization{"x", 0, 1}),
      pe::Error);
  EXPECT_THROW(p.add_variant({"v", "", nullptr}), pe::Error);
}

TEST(Pipeline, MeasuresVariantsAndPicksBest) {
  Pipeline p(machine(), fast_runner());
  p.set_requirement({"2x faster toy kernel", 2.0});
  p.set_baseline({"baseline", "original", slow_kernel},
                 characterization());
  p.add_variant({"optimized", "sleeps less", fast_kernel});

  const auto report = p.run();
  ASSERT_EQ(report.variants.size(), 2u);
  EXPECT_EQ(report.variants[0].name, "baseline");
  EXPECT_NEAR(report.variants[0].speedup, 1.0, 1e-9);
  EXPECT_GT(report.variants[1].speedup, 1.5);
  EXPECT_EQ(report.best_variant, "optimized");
  EXPECT_GT(report.best_speedup, 1.5);
  EXPECT_TRUE(report.variants[1].meets_requirement);
}

TEST(Pipeline, FeasibilityUsesRooflineBound) {
  // The toy kernel "runs" ~300 us; at intensity 1 FLOP/B the attainable
  // rate is 1e10 FLOP/s, so the model-attainable time is 1e6/1e10 =
  // 100 us: roughly a 3x model speedup, so a 2x target is feasible.
  Pipeline p(machine(), fast_runner());
  p.set_requirement({"2x", 2.0});
  p.set_baseline({"baseline", "", slow_kernel}, characterization());
  const auto report = p.run();
  EXPECT_TRUE(report.feasibility.target_feasible);
  EXPECT_GT(report.feasibility.max_model_speedup, 2.0);
  EXPECT_NE(report.feasibility.rationale.find("feasible"),
            std::string::npos);
}

TEST(Pipeline, InfeasibleTargetFlagged) {
  // A baseline already at the roofline: any >1 target is infeasible.
  // Model attainable time for 1e10 FLOPs at intensity 1 is 1 s; the
  // kernel "takes" ~300 us, so the model bound is far *below* measured...
  // so instead pick a characterization with tiny flops: attainable time
  // 1e2/1e10 = 1e-8 s is impossible to beat 1000000x.
  Pipeline p(machine(), fast_runner());
  p.set_requirement({"a million times faster", 1e6});
  p.set_baseline({"baseline", "", fast_kernel},
                 KernelCharacterization{"toy", 1e6, 1e6});
  const auto report = p.run();
  // max_model_speedup ~ measured/1e-7 which is ~1000, well under 1e6.
  EXPECT_FALSE(report.feasibility.target_feasible);
}

TEST(Pipeline, PerVariantCharacterizationOverride) {
  Pipeline p(machine(), fast_runner());
  p.set_requirement({"any", 1.0});
  p.set_baseline({"baseline", "", slow_kernel}, characterization());
  // A tiling-style variant that halves traffic: intensity doubles.
  p.add_variant({"tiled", "halves traffic", fast_kernel},
                KernelCharacterization{"toy", 1e6, 5e5});
  const auto report = p.run();
  ASSERT_EQ(report.variants.size(), 2u);
  // Efficiency is computed against a different attainable value; with
  // double the intensity the attainable FLOP/s doubles (memory-bound), so
  // the variant's efficiency is lower than it would be at baseline AI.
  EXPECT_GT(report.variants[1].roofline_efficiency, 0.0);
}

TEST(Pipeline, ReportRenderMentionsAllStages) {
  Pipeline p(machine(), fast_runner());
  p.set_requirement({"document me", 1.0});
  p.set_baseline({"baseline", "original", fast_kernel},
                 characterization());
  const auto text = p.run().render();
  for (const char* needle :
       {"Stage 1", "Stage 2", "Stage 3", "Stages 4-6", "Stage 7",
        "baseline", "document me"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
