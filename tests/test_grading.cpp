// Tests for the grading formulas (Equations 1-3) in perfeng/course.
#include "perfeng/course/grading.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

using namespace pe::course;

TEST(Equation1, WeightsMatchThePaper) {
  // 0.5*Gp + 0.3*Ga + 0.3*(Ge + Sq/70)
  EXPECT_NEAR(final_grade(8.0, 8.0, 8.0, 0.0), 0.5 * 8 + 0.3 * 8 + 0.3 * 8,
              1e-12);
  EXPECT_NEAR(final_grade(10.0, 5.0, 6.0, 0.0),
              0.5 * 10 + 0.3 * 5 + 0.3 * 6, 1e-12);
}

TEST(Equation1, QuizPointsAreBonus) {
  const double without = final_grade(7.0, 7.0, 7.0, 0.0);
  const double with_quiz = final_grade(7.0, 7.0, 7.0, 35.0);
  EXPECT_NEAR(with_quiz - without, 0.3 * 0.5, 1e-12);
}

TEST(Equation1, ClampsToTen) {
  EXPECT_DOUBLE_EQ(final_grade(10.0, 10.0, 10.0, 70.0), 10.0);
}

TEST(Equation1, ClampsToOne) {
  EXPECT_DOUBLE_EQ(final_grade(1.0, 1.0, 1.0, 0.0),
                   std::max(1.0, 0.5 + 0.3 + 0.3));
  // All-minimum inputs stay at the floor of 1.
  EXPECT_GE(final_grade(1.0, 1.0, 1.0, 0.0), 1.0);
}

TEST(Equation1, InputsValidated) {
  EXPECT_THROW((void)final_grade(0.5, 5.0, 5.0, 0.0), pe::Error);
  EXPECT_THROW((void)final_grade(5.0, 11.0, 5.0, 0.0), pe::Error);
  EXPECT_THROW((void)final_grade(5.0, 5.0, 5.0, -1.0), pe::Error);
}

TEST(Equation1, MonotoneInEveryComponent) {
  for (double g = 2.0; g <= 9.0; g += 1.0) {
    EXPECT_LE(final_grade(g, 5, 5, 0), final_grade(g + 1, 5, 5, 0));
    EXPECT_LE(final_grade(5, g, 5, 0), final_grade(5, g + 1, 5, 0));
    EXPECT_LE(final_grade(5, 5, g, 0), final_grade(5, 5, g + 1, 0));
  }
}

TEST(Equation1, ProjectWeighsMost) {
  // +1 on the project moves the grade more than +1 elsewhere.
  const double base = final_grade(5, 5, 5, 0);
  EXPECT_GT(final_grade(6, 5, 5, 0) - base,
            final_grade(5, 6, 5, 0) - base);
}

TEST(Equation2, ProjectComposition) {
  EXPECT_NEAR(project_grade(8.0, 7.0, 9.0), 0.4 * 8 + 0.3 * 7 + 0.3 * 9,
              1e-12);
  EXPECT_DOUBLE_EQ(project_grade(10.0, 10.0, 10.0), 10.0);
  EXPECT_THROW((void)project_grade(0.0, 5.0, 5.0), pe::Error);
}

TEST(Equation3, NormalizersMatchThePaper) {
  EXPECT_DOUBLE_EQ(assignment_normalizer(1), 32.0);
  EXPECT_DOUBLE_EQ(assignment_normalizer(2), 36.0);
  EXPECT_DOUBLE_EQ(assignment_normalizer(3), 40.0);
  EXPECT_DOUBLE_EQ(assignment_normalizer(4), 40.0);
  EXPECT_THROW((void)assignment_normalizer(0), pe::Error);
  EXPECT_THROW((void)assignment_normalizer(5), pe::Error);
}

TEST(Equation3, FullMarksForSoloStudentExceedTen) {
  // 42 points / 32 = 13.1 -> clamped to 10: solo students get slack.
  EXPECT_DOUBLE_EQ(assignments_grade({10, 9, 11, 12}, 1), 10.0);
}

TEST(Equation3, FullMarksForBigTeamland) {
  // 42 / 40 = 10.5 -> clamped to 10.
  EXPECT_DOUBLE_EQ(assignments_grade({10, 9, 11, 12}, 4), 10.0);
}

TEST(Equation3, PartialPoints) {
  // 20 points in a team of 2: 10 * 20/36 = 5.55...
  EXPECT_NEAR(assignments_grade({5, 5, 5, 5}, 2), 10.0 * 20.0 / 36.0,
              1e-12);
}

TEST(Equation3, PointsClampedToAssignmentMaxima) {
  // Over-scored assignments cannot exceed their published maxima.
  EXPECT_DOUBLE_EQ(assignments_grade({100, 100, 100, 100}, 4),
                   assignments_grade({10, 9, 11, 12}, 4));
}

TEST(Equation3, SmallerTeamsGetHigherGradeForSamePoints) {
  EXPECT_GT(assignments_grade({5, 5, 5, 5}, 1),
            assignments_grade({5, 5, 5, 5}, 2));
  EXPECT_GT(assignments_grade({5, 5, 5, 5}, 2),
            assignments_grade({5, 5, 5, 5}, 3));
}

TEST(Equation3, NegativePointsRejected) {
  EXPECT_THROW((void)assignments_grade({-1, 5, 5, 5}, 2), pe::Error);
}

TEST(Passing, ThresholdIsFiveAndAHalf) {
  EXPECT_TRUE(passes(5.5));
  EXPECT_TRUE(passes(8.0));
  EXPECT_FALSE(passes(5.49));
}

TEST(Scenario, TypicalStudentFromThePaper) {
  // Paper averages: project ~8, assignments ~8, exam ~7.5. The final
  // grade should land around the reported average of 8.
  const double gp = project_grade(8.0, 8.0, 8.0);
  const double g = final_grade(gp, 8.0, 7.5, 20.0);
  EXPECT_GT(g, 7.5);
  EXPECT_LT(g, 9.0);
  EXPECT_TRUE(passes(g));
}

}  // namespace
