// Tests for decision-tree and random-forest regression in
// perfeng/statmodel/tree.hpp.
#include "perfeng/statmodel/tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "perfeng/common/error.hpp"
#include "perfeng/common/rng.hpp"

namespace {

using pe::statmodel::Dataset;
using pe::statmodel::DecisionTreeRegressor;
using pe::statmodel::RandomForestRegressor;
using pe::statmodel::TreeConfig;

Dataset step_function() {
  // y = 1 for x < 5, y = 9 for x >= 5: one split recovers it exactly.
  Dataset d({"x"});
  for (double x = 0.0; x < 10.0; x += 0.5)
    d.add_row({x}, x < 5.0 ? 1.0 : 9.0);
  return d;
}

TEST(Tree, RecoversStepFunctionExactly) {
  DecisionTreeRegressor tree;
  tree.fit(step_function());
  EXPECT_DOUBLE_EQ(tree.predict({2.0}), 1.0);
  EXPECT_DOUBLE_EQ(tree.predict({7.0}), 9.0);
}

TEST(Tree, SingleLeafForConstantTarget) {
  Dataset d({"x"});
  for (double x = 0; x < 10; ++x) d.add_row({x}, 5.0);
  DecisionTreeRegressor tree;
  tree.fit(d);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict({100.0}), 5.0);
}

TEST(Tree, MaxDepthLimitsGrowth) {
  Dataset d({"x"});
  pe::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.next_range_double(0, 10);
    d.add_row({x}, x * x);
  }
  DecisionTreeRegressor shallow(TreeConfig{2, 1, 2});
  shallow.fit(d);
  EXPECT_LE(shallow.depth(), 2u);
  DecisionTreeRegressor deep(TreeConfig{8, 1, 2});
  deep.fit(d);
  EXPECT_GT(deep.node_count(), shallow.node_count());
}

TEST(Tree, DeeperTreesFitBetter) {
  Dataset d({"x"});
  pe::Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    const double x = rng.next_range_double(0, 10);
    d.add_row({x}, std::sin(x) * 10.0);
  }
  auto sse = [&](pe::statmodel::Regressor& model) {
    model.fit(d);
    double acc = 0.0;
    for (std::size_t i = 0; i < d.rows(); ++i) {
      const double e = model.predict(d.row(i)) - d.target(i);
      acc += e * e;
    }
    return acc;
  };
  DecisionTreeRegressor shallow(TreeConfig{2, 2, 4});
  DecisionTreeRegressor deep(TreeConfig{10, 2, 4});
  EXPECT_LT(sse(deep), sse(shallow));
}

TEST(Tree, SplitsOnTheInformativeFeature) {
  // Feature 0 is noise; feature 1 carries the signal.
  Dataset d({"noise", "signal"});
  pe::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const double noise = rng.next_range_double(0, 1);
    const double signal = rng.next_range_double(0, 10);
    d.add_row({noise, signal}, signal > 5.0 ? 100.0 : 0.0);
  }
  DecisionTreeRegressor tree(TreeConfig{1000, 1, 2});
  tree.fit(d);
  EXPECT_DOUBLE_EQ(tree.predict({0.5, 9.0}), 100.0);
  EXPECT_DOUBLE_EQ(tree.predict({0.5, 1.0}), 0.0);
}

TEST(Tree, PredictBeforeFitThrows) {
  DecisionTreeRegressor tree;
  EXPECT_THROW((void)tree.predict({1.0}), pe::Error);
}

TEST(Tree, ConfigValidation) {
  EXPECT_THROW(DecisionTreeRegressor(TreeConfig{0, 1, 2}), pe::Error);
  EXPECT_THROW(DecisionTreeRegressor(TreeConfig{2, 2, 2}), pe::Error);
}

TEST(Forest, PredictsSmoothAverageOfTrees) {
  Dataset d = step_function();
  RandomForestRegressor forest(16);
  forest.fit(d);
  EXPECT_NEAR(forest.predict({2.0}), 1.0, 1.5);
  EXPECT_NEAR(forest.predict({8.0}), 9.0, 1.5);
  EXPECT_EQ(forest.tree_count(), 16u);
}

TEST(Forest, DeterministicGivenSeed) {
  RandomForestRegressor a(8, TreeConfig{}, 42), b(8, TreeConfig{}, 42);
  a.fit(step_function());
  b.fit(step_function());
  EXPECT_DOUBLE_EQ(a.predict({3.3}), b.predict({3.3}));
}

TEST(Forest, SeedsChangePredictionsSlightly) {
  RandomForestRegressor a(8, TreeConfig{}, 1), b(8, TreeConfig{}, 2);
  Dataset d({"x"});
  pe::Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.next_range_double(0, 10);
    d.add_row({x}, x * 3.0 + rng.next_normal());
  }
  a.fit(d);
  b.fit(d);
  EXPECT_NE(a.predict({5.5}), b.predict({5.5}));
  EXPECT_NEAR(a.predict({5.5}), b.predict({5.5}), 3.0);
}

TEST(Forest, Validation) {
  EXPECT_THROW(RandomForestRegressor(0), pe::Error);
  RandomForestRegressor f(2);
  EXPECT_THROW((void)f.predict({1.0}), pe::Error);  // before fit
}

TEST(Forest, Describe) {
  EXPECT_NE(RandomForestRegressor(4).describe().find("forest"),
            std::string::npos);
}

}  // namespace
