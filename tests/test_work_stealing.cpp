// Stress tests for the work-stealing scheduler: forced imbalance, nested
// loops from inside tasks, 1-worker pools, and chaos-injected worker
// faults against the bulk completion protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "perfeng/parallel/parallel_for.hpp"
#include "perfeng/parallel/thread_pool.hpp"
#include "perfeng/resilience/fault_injection.hpp"

namespace {

// Pin one worker inside a spinning task while it owns a deque full of
// work: every queued task can only complete by being stolen.
TEST(WorkStealing, IdleWorkersStealFromBusyOwner) {
  pe::ThreadPool pool(2);
  std::atomic<int> done{0};
  constexpr int kTasks = 100;
  auto spinner = pool.submit([&] {
    for (int i = 0; i < kTasks; ++i)
      pool.submit([&done] { done.fetch_add(1); });
    // Worker-submitted tasks land in this worker's own deque; spin here so
    // the owner never pops them — the other worker must steal all of them.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (done.load() < kTasks &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::yield();
  });
  spinner.get();
  EXPECT_EQ(done.load(), kTasks);
  EXPECT_GE(pool.steals(), static_cast<std::size_t>(kTasks));
}

TEST(WorkStealing, NestedParallelForInsideSubmittedTasks) {
  pe::ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  std::vector<std::future<void>> futures;
  for (int t = 0; t < 8; ++t) {
    futures.push_back(pool.submit([&] {
      pe::parallel_for(
          pool, 0, 256, [&](std::size_t) { total.fetch_add(1); },
          pe::Schedule::kDynamic, 16);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(total.load(), 8u * 256u);
}

TEST(WorkStealing, SingleWorkerPoolNeverDeadlocks) {
  pe::ThreadPool pool(1);
  std::atomic<std::size_t> total{0};
  // Tasks submitting tasks, and loops nested three deep, on one worker.
  auto outer = pool.submit([&] {
    pe::parallel_for(pool, 0, 4, [&](std::size_t) {
      pe::parallel_for(pool, 0, 8, [&](std::size_t) {
        total.fetch_add(1);
      });
    });
    return pool.submit([] { return 11; });
  });
  EXPECT_EQ(outer.get().get(), 11);
  EXPECT_EQ(total.load(), 4u * 8u);
}

TEST(WorkStealing, ExceptionFromStolenChunkPropagatesOnce) {
  pe::ThreadPool pool(4);
  std::atomic<int> caught{0};
  for (int round = 0; round < 5; ++round) {
    try {
      pe::parallel_for(
          pool, 0, 1024,
          [](std::size_t i) {
            if (i % 97 == 13) throw std::runtime_error("stolen chunk");
          },
          pe::Schedule::kDynamic, 1);
    } catch (const std::runtime_error&) {
      caught.fetch_add(1);
    }
  }
  EXPECT_EQ(caught.load(), 5);
  // The loop record absorbed the throws; none escaped into a worker.
  EXPECT_EQ(pool.escaped_exceptions(), 0u);
}

// Chaos: injected pool.worker faults must be absorbed without dropping a
// bulk job copy — a dropped copy would leave the loop's completion count
// short and wedge the submitting thread forever.
TEST(WorkStealing, InjectedWorkerFaultsDoNotWedgeBulkCompletion) {
  pe::resilience::FaultPlan plan;
  plan.faults.push_back(
      {.site = std::string(pe::fault_sites::kPoolWorker), .max_fires = 3});
  pe::resilience::ScopedFaultInjection scope(std::move(plan));
  pe::ThreadPool pool(2);
  // The site only fires when a worker pops a bulk copy; with a trivial body
  // the caller can drain the whole loop before a parked worker wakes. Burn
  // a little time per index and repeat rounds until all three planned
  // faults have fired — each round must still visit every index once.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (pool.absorbed_faults() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::vector<std::atomic<int>> visits(2000);
    pe::parallel_for(
        pool, 0, visits.size(),
        [&](std::size_t i) {
          visits[i].fetch_add(1);
          volatile int sink = 0;
          for (int k = 0; k < 64; ++k) sink = sink + k;
        },
        pe::Schedule::kDynamic, 8);
    for (const auto& v : visits) ASSERT_EQ(v.load(), 1);
  }
  EXPECT_EQ(pool.absorbed_faults(), 3u);
}

TEST(WorkStealing, ChaosFaultsDoNotWedgeGuidedOrStaticLoops) {
  pe::resilience::FaultPlan plan;
  plan.faults.push_back(
      {.site = std::string(pe::fault_sites::kPoolWorker), .max_fires = 4});
  pe::resilience::ScopedFaultInjection scope(std::move(plan));
  pe::ThreadPool pool(3);
  for (const auto schedule :
       {pe::Schedule::kStatic, pe::Schedule::kGuided}) {
    std::atomic<std::size_t> total{0};
    pe::parallel_for(
        pool, 0, 1000, [&](std::size_t) { total.fetch_add(1); }, schedule);
    EXPECT_EQ(total.load(), 1000u);
  }
}

TEST(WorkStealing, ThisLaneDistinguishesWorkersFromExternalThreads) {
  pe::ThreadPool pool(2);
  EXPECT_EQ(pool.this_lane(), pool.size());  // external caller: last slot
  auto lane = pool.submit([&pool] { return pool.this_lane(); });
  EXPECT_LT(lane.get(), pool.size());  // worker: its own index
}

}  // namespace
