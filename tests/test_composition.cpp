// Tests for the compositional prediction system (models/composition):
// the algebra identities ISSUE 8 pins — a single leaf is the flat model,
// serial maps are sums, pipelines nest associatively, evaluation is
// deterministic — plus the machine-aware pieces (dispatch charging, comm
// pricing, Context::from_machine).
//
// Dyadic constants (1.0, 2.0, 4.0, 0.5) keep every fold exactly
// representable, so the identities can be asserted with EXPECT_DOUBLE_EQ
// rather than tolerances.
#include "perfeng/models/composition/patterns.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "perfeng/common/error.hpp"
#include "perfeng/machine/machine.hpp"
#include "perfeng/models/composition/node.hpp"
#include "perfeng/models/network.hpp"

namespace {

namespace comp = pe::models::composition;
using comp::Context;
using comp::NodePtr;
using comp::Prediction;
using pe::models::Evaluation;
using pe::models::ModelEval;

/// A leaf taking `seconds` with seconds-worth of flops, for footprint
/// accounting checks.
NodePtr task(const std::string& name, double seconds) {
  Evaluation e;
  e.seconds = seconds;
  e.footprint.flops = seconds * 1e9;
  return comp::leaf(ModelEval::constant(name, e));
}

Context serial_ctx() { return Context{.workers = 1}; }

Context parallel_ctx(unsigned workers, double dispatch = 0.0) {
  return Context{.workers = workers, .dispatch_seconds = dispatch};
}

pe::machine::Machine test_machine() {
  pe::machine::Machine m;
  m.name = "test-node";
  m.description = "synthetic fixture";
  m.source = "test";
  m.peak_flops = 4e9;
  m.cores = 8;
  m.hierarchy = {{"L1", 8e10, 1e-9, 32768, 64},
                 {"DRAM", 2e10, 8e-8, 0, 64}};
  m.link_alpha = 1e-6;
  m.link_beta = 1e-9;
  m.sched_bulk_ns = 250.0;
  return m;
}

TEST(Composition, SingleLeafIsTheFlatModel) {
  // Wrapping a model as a one-node tree must not change its answer, on
  // any context.
  const pe::models::AlphaBetaModel net{1e-6, 1e-9};
  const NodePtr n = comp::leaf(net.eval_p2p(4096));
  for (const Context& ctx : {serial_ctx(), parallel_ctx(8, 0.5)}) {
    const Prediction p = n->predict(ctx);
    EXPECT_DOUBLE_EQ(p.seconds, net.p2p(4096));
    EXPECT_DOUBLE_EQ(p.work_seconds, p.seconds);
    EXPECT_DOUBLE_EQ(p.span_seconds, p.seconds);
    EXPECT_DOUBLE_EQ(p.dispatch_seconds, 0.0);
  }
}

TEST(Composition, SerialMapIsTheSumOfItsChildren) {
  const NodePtr n =
      comp::map({task("a", 1.0), task("b", 2.0), task("c", 4.0)});
  const Prediction p = n->predict(serial_ctx());
  EXPECT_DOUBLE_EQ(p.seconds, 7.0);
  EXPECT_DOUBLE_EQ(p.work_seconds, 7.0);
  EXPECT_DOUBLE_EQ(p.span_seconds, 4.0);
  EXPECT_DOUBLE_EQ(p.dispatch_seconds, 0.0);  // no parallel region opened
}

TEST(Composition, ParallelMapFollowsTheGrahamBound) {
  // Four equal unit tasks on four workers: W/P + (1 - 1/P) S.
  const NodePtr n = comp::map(task("t", 1.0), 4);
  const Prediction p = n->predict(parallel_ctx(4));
  EXPECT_DOUBLE_EQ(p.seconds, 4.0 / 4.0 + (1.0 - 0.25) * 1.0);
  EXPECT_DOUBLE_EQ(p.work_seconds, 4.0);
  EXPECT_DOUBLE_EQ(p.span_seconds, 1.0);
}

TEST(Composition, MapNestingIsAssociative) {
  // Sums and maxes compose, so grouping map children does not change the
  // prediction (dispatch-free context: grouping adds a region).
  const NodePtr flat =
      comp::map({task("a", 1.0), task("b", 2.0), task("c", 4.0)});
  const NodePtr nested = comp::map(
      {comp::map({task("a", 1.0), task("b", 2.0)}), task("c", 4.0)});
  for (unsigned workers : {1u, 4u, 64u}) {
    const Context ctx = parallel_ctx(workers);
    EXPECT_DOUBLE_EQ(nested->predict(ctx).seconds,
                     flat->predict(ctx).seconds);
  }
}

TEST(Composition, DispatchChargedOncePerParallelRegion) {
  const NodePtr n = comp::map(task("t", 1.0), 4);
  const Context ctx = parallel_ctx(4, /*dispatch=*/0.5);
  const Prediction p = n->predict(ctx);
  // W = 4 + 0.5, S = 1 + 0.5, P = 4.
  EXPECT_DOUBLE_EQ(p.seconds, 4.5 / 4.0 + 0.75 * 1.5);
  EXPECT_DOUBLE_EQ(p.dispatch_seconds, 0.5);
  // The serial restriction of the same context charges nothing.
  const Prediction s = n->predict(ctx.serial());
  EXPECT_DOUBLE_EQ(s.seconds, 4.0);
  EXPECT_DOUBLE_EQ(s.dispatch_seconds, 0.0);
}

TEST(Composition, PipelineSingleItemIsTheStageSum) {
  const NodePtr n = comp::pipeline(
      {task("s1", 1.0), task("s2", 2.0), task("s3", 4.0)});
  const Prediction p = n->predict(parallel_ctx(8));
  EXPECT_DOUBLE_EQ(p.seconds, 7.0);
  EXPECT_DOUBLE_EQ(p.latency_seconds, 7.0);
  EXPECT_DOUBLE_EQ(p.bottleneck_seconds, 4.0);
}

TEST(Composition, PipelineThroughputIsBottleneckBound) {
  const NodePtr n = comp::pipeline(
      {task("s1", 1.0), task("s2", 2.0), task("s3", 4.0)}, /*items=*/11);
  const Prediction p = n->predict(parallel_ctx(8));
  // Fill (7 s) then drain ten more items at the 4 s bottleneck.
  EXPECT_DOUBLE_EQ(p.seconds, 7.0 + 10.0 * 4.0);
  EXPECT_DOUBLE_EQ(p.work_seconds, 11.0 * 7.0);
}

TEST(Composition, SerialPipelineDegeneratesToTheSerialSum) {
  // One worker cannot overlap stages: the drain interval becomes the
  // whole item's work, so the stream costs exactly items * stage-sum.
  const NodePtr n = comp::pipeline(
      {task("s1", 1.0), task("s2", 2.0), task("s3", 4.0)}, /*items=*/16);
  const Prediction p = n->predict(serial_ctx());
  EXPECT_DOUBLE_EQ(p.seconds, 16.0 * 7.0);
  // Two workers: the CPU-bound interval 7/2 stays below the slowest
  // stage, so the 4.0 bottleneck still sets the drain rate.
  EXPECT_DOUBLE_EQ(n->predict(parallel_ctx(2)).seconds,
                   7.0 + 15.0 * 4.0);
  // Plenty of workers: the slowest stage sets the drain rate.
  EXPECT_DOUBLE_EQ(n->predict(parallel_ctx(8)).seconds,
                   7.0 + 15.0 * 4.0);
}

TEST(Composition, PipelineNestingIsAssociative) {
  // A single-item pipeline used as a stage must fold exactly like its
  // stages spliced inline.
  const NodePtr flat = comp::pipeline(
      {task("s1", 1.0), task("s2", 2.0), task("s3", 4.0)}, /*items=*/16);
  const NodePtr nested = comp::pipeline(
      {task("s1", 1.0),
       comp::pipeline({task("s2", 2.0), task("s3", 4.0)})},
      /*items=*/16);
  for (const Context& ctx : {serial_ctx(), parallel_ctx(8, 0.5)}) {
    const Prediction a = flat->predict(ctx);
    const Prediction b = nested->predict(ctx);
    EXPECT_DOUBLE_EQ(b.seconds, a.seconds);
    EXPECT_DOUBLE_EQ(b.latency_seconds, a.latency_seconds);
    EXPECT_DOUBLE_EQ(b.bottleneck_seconds, a.bottleneck_seconds);
    EXPECT_DOUBLE_EQ(b.work_seconds, a.work_seconds);
  }
}

TEST(Composition, FarmWidthIsCappedByReplicasAndWorkers) {
  const NodePtr n = comp::farm(task("job", 1.0), /*jobs=*/8,
                               /*replicas=*/4);
  // Two workers available: width 2.
  const Prediction narrow = n->predict(parallel_ctx(2));
  EXPECT_DOUBLE_EQ(narrow.seconds, 8.0 / 2.0 + 0.5 * 1.0);
  EXPECT_DOUBLE_EQ(narrow.bottleneck_seconds, 1.0 / 2.0);
  // Sixteen workers: still only four replicas.
  const Prediction wide = n->predict(parallel_ctx(16));
  EXPECT_DOUBLE_EQ(wide.seconds, 8.0 / 4.0 + 0.75 * 1.0);
  EXPECT_DOUBLE_EQ(wide.bottleneck_seconds, 1.0 / 4.0);
}

TEST(Composition, ReduceTreeHasLogarithmicSpan) {
  const NodePtr n = comp::reduce(task("combine", 1.0), /*leaves=*/8);
  // Seven combines, three levels.
  const Prediction serial = n->predict(serial_ctx());
  EXPECT_DOUBLE_EQ(serial.seconds, 7.0);
  const Prediction par = n->predict(parallel_ctx(4));
  EXPECT_DOUBLE_EQ(par.work_seconds, 7.0);
  EXPECT_DOUBLE_EQ(par.span_seconds, 3.0);
  EXPECT_DOUBLE_EQ(par.seconds, 7.0 / 4.0 + 0.75 * 3.0);
  // One input needs no combining at all.
  EXPECT_DOUBLE_EQ(
      comp::reduce(task("c", 1.0), 1)->predict(parallel_ctx(4)).seconds,
      0.0);
}

TEST(Composition, DivideAndConquerCountsEveryLevel) {
  const NodePtr n = comp::divide_and_conquer(
      task("divide", 1.0), task("base", 4.0), task("merge", 1.0),
      /*branching=*/2, /*depth=*/2);
  // Internal nodes 1 + 2 = 3, leaves 4:
  //   W = 3 * (1 + 1) + 4 * 4 = 22, S = 2 * (1 + 1) + 4 = 8.
  const Prediction serial = n->predict(serial_ctx());
  EXPECT_DOUBLE_EQ(serial.seconds, 22.0);
  const Prediction par = n->predict(parallel_ctx(2));
  EXPECT_DOUBLE_EQ(par.seconds, 22.0 / 2.0 + 0.5 * 8.0);
  // Depth zero degenerates to the base case alone.
  const NodePtr base_only = comp::divide_and_conquer(
      task("divide", 1.0), task("base", 4.0), task("merge", 1.0), 2, 0);
  EXPECT_DOUBLE_EQ(base_only->predict(serial_ctx()).seconds, 4.0);
}

TEST(Composition, CommNodesPriceTheContextLink) {
  const NodePtr n = comp::comm("halo", 1000.0);
  Context ctx = parallel_ctx(4);
  ctx.link_alpha = 1e-6;
  ctx.link_beta = 1e-9;
  const Prediction p = n->predict(ctx);
  EXPECT_DOUBLE_EQ(p.seconds, 1e-6 + 1e-9 * 1000.0);
  EXPECT_DOUBLE_EQ(p.comm_seconds, p.seconds);
  // No link calibration (or nothing to move): free.
  EXPECT_DOUBLE_EQ(n->predict(parallel_ctx(4)).seconds, 0.0);
  EXPECT_DOUBLE_EQ(comp::comm("empty", 0.0)->predict(ctx).seconds, 0.0);
}

TEST(Composition, CommRidesInsidePatterns) {
  Context ctx = serial_ctx();
  ctx.link_alpha = 0.5;
  ctx.link_beta = 0.0;
  const NodePtr n = comp::pipeline(
      {task("produce", 1.0), comp::comm("ship", 64.0), task("consume", 2.0)});
  const Prediction p = n->predict(ctx);
  EXPECT_DOUBLE_EQ(p.seconds, 1.0 + 0.5 + 2.0);
  EXPECT_DOUBLE_EQ(p.comm_seconds, 0.5);
}

TEST(Composition, EvaluationIsDeterministic) {
  const NodePtr n = comp::pipeline(
      {comp::map(task("tile", 1.0), 16),
       comp::farm(task("job", 2.0), 32, 4),
       comp::reduce(task("combine", 0.5), 8)},
      /*items=*/4);
  const Context ctx = parallel_ctx(8, 0.5);
  const Prediction a = n->predict(ctx);
  const Prediction b = n->predict(ctx);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.footprint, b.footprint);
  EXPECT_EQ(a.breakdown, b.breakdown);
}

TEST(Composition, FootprintsAggregateUpward) {
  // task() attaches 1e9 flops per second of work.
  const NodePtr n = comp::map({task("a", 1.0), task("b", 2.0)});
  const Prediction p = n->predict(parallel_ctx(4));
  EXPECT_DOUBLE_EQ(p.footprint.flops, 3e9);
  EXPECT_DOUBLE_EQ(p.footprint.cores, 2.0);  // two tasks, four workers
  const Prediction farmed =
      comp::farm(task("j", 1.0), 10, 4)->predict(parallel_ctx(4));
  EXPECT_DOUBLE_EQ(farmed.footprint.flops, 10e9);
  EXPECT_DOUBLE_EQ(farmed.footprint.cores, 4.0);
}

TEST(Composition, BreakdownPathsNameTheStructure) {
  const NodePtr n = comp::map({task("a", 1.0), task("b", 2.0)});
  const Prediction p = n->predict(serial_ctx());
  ASSERT_EQ(p.breakdown.size(), 2u);
  EXPECT_EQ(p.breakdown[0].path, "map[2]/leaf:a");
  EXPECT_EQ(p.breakdown[1].path, "map[2]/leaf:b");
  EXPECT_DOUBLE_EQ(p.breakdown[1].seconds, 2.0);
  EXPECT_FALSE(comp::format_prediction(p).empty());
}

TEST(Composition, ContextFromMachineReadsTheCalibration) {
  const pe::machine::Machine m = test_machine();
  const Context ctx = Context::from_machine(m);
  EXPECT_EQ(ctx.workers, 8u);
  EXPECT_DOUBLE_EQ(ctx.dispatch_seconds, 250.0 * 1e-9);
  EXPECT_DOUBLE_EQ(ctx.link_alpha, 1e-6);
  EXPECT_DOUBLE_EQ(ctx.link_beta, 1e-9);
  const Context serial = ctx.serial();
  EXPECT_EQ(serial.workers, 1u);
  EXPECT_DOUBLE_EQ(serial.dispatch_seconds, ctx.dispatch_seconds);
}

TEST(Composition, MalformedTreesAreRejected) {
  EXPECT_THROW(comp::map(std::vector<NodePtr>{}), pe::Error);
  EXPECT_THROW(comp::map({task("a", 1.0), nullptr}), pe::Error);
  EXPECT_THROW(comp::map(nullptr, 4), pe::Error);
  EXPECT_THROW(comp::map(task("a", 1.0), 0), pe::Error);
  EXPECT_THROW(comp::farm(task("a", 1.0), 0, 4), pe::Error);
  EXPECT_THROW(comp::farm(task("a", 1.0), 4, 0), pe::Error);
  EXPECT_THROW(comp::pipeline({}, 4), pe::Error);
  EXPECT_THROW(comp::pipeline({task("a", 1.0)}, 0), pe::Error);
  EXPECT_THROW(comp::reduce(task("a", 1.0), 0), pe::Error);
  EXPECT_THROW(comp::divide_and_conquer(nullptr, task("b", 1.0),
                                        task("m", 1.0), 2, 2),
               pe::Error);
  EXPECT_THROW(comp::comm("", 10.0), pe::Error);
  EXPECT_THROW(comp::comm("negative", -1.0), pe::Error);
}

}  // namespace
