// Tests for the transpose kernels in perfeng/kernels/transpose.hpp.
#include "perfeng/kernels/transpose.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

using pe::kernels::Matrix;

Matrix random_matrix(std::size_t rows, std::size_t cols,
                     std::uint64_t seed) {
  Matrix m(rows, cols);
  pe::Rng rng(seed);
  m.randomize(rng);
  return m;
}

TEST(Transpose, NaiveTransposesCorrectly) {
  const Matrix in = random_matrix(5, 7, 1);
  Matrix out(7, 5);
  pe::kernels::transpose_naive(in, out);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 7; ++c)
      EXPECT_DOUBLE_EQ(out(c, r), in(r, c));
}

class TransposeShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(TransposeShapes, BlockedMatchesNaive) {
  const auto [rows, cols] = GetParam();
  const Matrix in = random_matrix(rows, cols, rows * 17 + cols);
  Matrix naive(cols, rows), blocked(cols, rows);
  pe::kernels::transpose_naive(in, naive);
  for (std::size_t block : {1u, 3u, 8u, 64u}) {
    pe::kernels::transpose_blocked(in, blocked, block);
    EXPECT_DOUBLE_EQ(naive.max_abs_diff(blocked), 0.0) << "block " << block;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TransposeShapes,
    ::testing::Values(std::make_pair(1, 1), std::make_pair(1, 9),
                      std::make_pair(16, 16), std::make_pair(33, 17),
                      std::make_pair(64, 65)));

TEST(Transpose, InplaceMatchesOutOfPlace) {
  Matrix m = random_matrix(20, 20, 3);
  Matrix expected(20, 20);
  pe::kernels::transpose_naive(m, expected);
  pe::kernels::transpose_inplace(m);
  EXPECT_DOUBLE_EQ(m.max_abs_diff(expected), 0.0);
}

TEST(Transpose, InplaceIsAnInvolution) {
  Matrix m = random_matrix(12, 12, 4);
  const Matrix original = m;
  pe::kernels::transpose_inplace(m);
  pe::kernels::transpose_inplace(m);
  EXPECT_EQ(m, original);
}

TEST(Transpose, ShapeValidation) {
  const Matrix in = random_matrix(3, 4, 5);
  Matrix wrong(3, 4);
  EXPECT_THROW(pe::kernels::transpose_naive(in, wrong), pe::Error);
  Matrix rect = random_matrix(3, 4, 6);
  EXPECT_THROW(pe::kernels::transpose_inplace(rect), pe::Error);
}

TEST(Transpose, MinBytesAccounting) {
  EXPECT_DOUBLE_EQ(pe::kernels::transpose_min_bytes(10, 20), 3200.0);
}

TEST(TransposeTrace, BlockingCutsMissesBeyondCache) {
  // 256x256 doubles = 512 KiB per matrix, far beyond a 2 KiB L1 and a
  // 64 KiB L2: the naive scattered writes miss every line repeatedly.
  auto make_hierarchy = [] {
    std::vector<pe::sim::LevelSpec> specs;
    specs.push_back({pe::sim::CacheConfig{"L1", 2 * 1024, 64, 8}, 4.0});
    specs.push_back({pe::sim::CacheConfig{"L2", 64 * 1024, 64, 8}, 12.0});
    return pe::sim::CacheHierarchy(std::move(specs), 200.0);
  };
  auto naive = make_hierarchy();
  auto blocked = make_hierarchy();
  pe::kernels::trace_transpose(naive, 256, 256, 0);
  pe::kernels::trace_transpose(blocked, 256, 256, 8);
  EXPECT_EQ(naive.stats().total_accesses,
            blocked.stats().total_accesses);  // same work
  EXPECT_LT(blocked.stats().levels[0].misses() * 2,
            naive.stats().levels[0].misses());
  EXPECT_LT(blocked.stats().total_cycles, naive.stats().total_cycles);
}

TEST(TransposeTrace, SmallMatricesAreInsensitive) {
  auto make_hierarchy = [] {
    return pe::sim::CacheHierarchy::typical_desktop();
  };
  auto naive = make_hierarchy();
  auto blocked = make_hierarchy();
  pe::kernels::trace_transpose(naive, 16, 16, 0);
  pe::kernels::trace_transpose(blocked, 16, 16, 8);
  // Everything fits in L1: both orders are compulsory-miss only.
  EXPECT_EQ(naive.stats().levels[0].misses(),
            blocked.stats().levels[0].misses());
}

}  // namespace
