// Tests for WallTimer and helpers in perfeng/measure/timer.hpp.
#include "perfeng/measure/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace {

TEST(WallTimer, ElapsedIsNonNegativeAndMonotone) {
  pe::WallTimer t;
  const double a = t.elapsed();
  const double b = t.elapsed();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(WallTimer, MeasuresSleeps) {
  pe::WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = t.elapsed();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 2.0);  // generous upper bound for loaded CI machines
}

TEST(WallTimer, ResetRestartsTheClock) {
  pe::WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.reset();
  EXPECT_LT(t.elapsed(), 0.01);
}

TEST(TimerResolution, PositiveAndSane) {
  const double res = pe::estimate_timer_resolution(50);
  EXPECT_GT(res, 0.0);
  EXPECT_LT(res, 1e-3);  // any modern steady clock resolves below 1 ms
}

TEST(DoNotOptimize, CompilesForCommonTypes) {
  int x = 5;
  double y = 2.0;
  pe::do_not_optimize(x);
  pe::do_not_optimize(y);
  pe::clobber_memory();
  SUCCEED();
}

}  // namespace
