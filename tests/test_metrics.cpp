// Tests for the derived metrics in perfeng/measure/metrics.hpp.
#include "perfeng/measure/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "perfeng/common/error.hpp"

namespace {

TEST(Metrics, FlopsRate) {
  EXPECT_DOUBLE_EQ(pe::flops_rate(2e9, 2.0), 1e9);
  EXPECT_THROW(pe::flops_rate(1.0, 0.0), pe::Error);
  EXPECT_THROW(pe::flops_rate(-1.0, 1.0), pe::Error);
}

TEST(Metrics, Bandwidth) {
  EXPECT_DOUBLE_EQ(pe::bandwidth(1e9, 0.5), 2e9);
  EXPECT_THROW(pe::bandwidth(1.0, -1.0), pe::Error);
}

TEST(Metrics, ArithmeticIntensity) {
  // Classic triad: 2 FLOPs per 24 bytes.
  EXPECT_NEAR(pe::arithmetic_intensity(2.0, 24.0), 1.0 / 12.0, 1e-15);
  EXPECT_THROW(pe::arithmetic_intensity(1.0, 0.0), pe::Error);
}

TEST(Metrics, SpeedupAndEfficiency) {
  EXPECT_DOUBLE_EQ(pe::speedup(10.0, 2.5), 4.0);
  EXPECT_DOUBLE_EQ(pe::parallel_efficiency(4.0, 4), 1.0);
  EXPECT_DOUBLE_EQ(pe::parallel_efficiency(3.0, 4), 0.75);
  EXPECT_THROW(pe::speedup(0.0, 1.0), pe::Error);
  EXPECT_THROW(pe::parallel_efficiency(1.0, 0), pe::Error);
}

TEST(Metrics, RelativeError) {
  EXPECT_DOUBLE_EQ(pe::relative_error(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(pe::relative_error(90.0, 100.0), -0.1);
  EXPECT_THROW(pe::relative_error(1.0, 0.0), pe::Error);
}

TEST(Metrics, Mape) {
  const std::vector<double> pred = {110.0, 90.0};
  const std::vector<double> obs = {100.0, 100.0};
  EXPECT_NEAR(pe::mape(pred, obs), 0.1, 1e-15);
  EXPECT_THROW(pe::mape(pred, std::vector<double>{1.0}), pe::Error);
}

TEST(Metrics, Rmse) {
  const std::vector<double> pred = {1.0, 2.0, 3.0};
  const std::vector<double> obs = {1.0, 2.0, 5.0};
  EXPECT_NEAR(pe::rmse(pred, obs), std::sqrt(4.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(pe::rmse(obs, obs), 0.0);
}

TEST(Metrics, RSquared) {
  const std::vector<double> obs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(pe::r_squared(obs, obs), 1.0);
  // Predicting the mean gives exactly 0.
  const std::vector<double> mean_pred = {2.5, 2.5, 2.5, 2.5};
  EXPECT_NEAR(pe::r_squared(mean_pred, obs), 0.0, 1e-12);
  // Worse than the mean goes negative.
  const std::vector<double> bad = {4.0, 3.0, 2.0, 1.0};
  EXPECT_LT(pe::r_squared(bad, obs), 0.0);
}

}  // namespace
