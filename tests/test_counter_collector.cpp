// Tests for the degrading counter collector: perf backend first, simulated
// fallback tagged `degraded` when the backend is missing or faulted.
#include "perfeng/counters/collector.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "perfeng/resilience/fault_injection.hpp"

namespace {

using pe::counters::CollectedCounters;
using pe::counters::CounterCollector;
using pe::counters::SimulatedMachineModel;
using pe::resilience::FaultKind;
using pe::resilience::FaultPlan;
using pe::resilience::ScopedFaultInjection;

void small_work() {
  volatile double sink = 0.0;
  for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
}

TEST(CounterCollector, ModelValidation) {
  SimulatedMachineModel m;
  m.clock_ghz = 0.0;
  EXPECT_THROW(CounterCollector{m}, pe::Error);
  m = {};
  m.branch_fraction = 1.5;
  EXPECT_THROW(CounterCollector{m}, pe::Error);
}

TEST(CounterCollector, NullWorkRejected) {
  const CounterCollector c;
  EXPECT_THROW((void)c.collect(std::function<void()>{}), pe::Error);
}

TEST(CounterCollector, InjectedBackendFaultDegradesToSimulated) {
  const CounterCollector c;
  FaultPlan plan;
  plan.faults.push_back(
      {.site = std::string(pe::fault_sites::kCountersRead),
       .message = "counter backend melted"});
  ScopedFaultInjection scope(std::move(plan));
  const CollectedCounters out = c.collect(small_work);
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.backend, "simulated");
  EXPECT_NE(out.note.find("melted"), std::string::npos);
  // The synthesized counters respect the machine model's structure.
  EXPECT_GT(out.counters.get(pe::counters::kCycles), 0u);
  EXPECT_GT(out.counters.get(pe::counters::kInstructions), 0u);
  EXPECT_LE(out.counters.get(pe::counters::kBranchMisses),
            out.counters.get(pe::counters::kBranches));
  EXPECT_LE(out.counters.get(pe::counters::kBranches),
            out.counters.get(pe::counters::kInstructions));
}

TEST(CounterCollector, DegradedResultCarriesReason) {
  const CounterCollector c;
  const CollectedCounters out = c.collect(small_work);
  if (!out.degraded) {
    GTEST_SKIP() << "live perf backend on this host; fallback not exercised";
  }
  EXPECT_EQ(out.backend, "simulated");
  EXPECT_FALSE(out.note.empty());  // the reason for degrading is recorded
}

TEST(CounterCollector, WorkloadRunsExactlyOncePerCollect) {
  // Holds on both paths: the perf path runs the work inside the backend,
  // and the degraded path reuses the wall time recorded there instead of
  // re-executing a possibly side-effecting workload.
  const CounterCollector c;
  int runs = 0;
  (void)c.collect([&] {
    ++runs;
    small_work();
  });
  EXPECT_EQ(runs, 1);
}

TEST(CounterCollector, ThrowingWorkloadPropagatesWithoutRerun) {
  // A workload that throws is not backend trouble: the exception escapes
  // collect() and the fallback must not run the broken workload again.
  const CounterCollector c;
  int runs = 0;
  EXPECT_THROW((void)c.collect([&] {
                 ++runs;
                 throw std::runtime_error("workload bug");
               }),
               std::runtime_error);
  EXPECT_EQ(runs, 1);
}

TEST(CounterCollector, CorruptedTimingPoisonsSimulatedCounters) {
  const CounterCollector base;
  if (!base.collect(small_work).degraded) {
    GTEST_SKIP() << "live perf backend on this host; fallback not exercised";
  }
  // Degraded-path timing flows through the counters.read fault site, so a
  // corrupt-value fault inflates the synthesized cycle count ~1000x.
  const auto honest = base.collect(small_work);
  FaultPlan plan;
  plan.faults.push_back(
      {.site = std::string(pe::fault_sites::kCountersRead),
       .kind = FaultKind::kCorruptValue,
       .corrupt_scale = 1000.0});
  ScopedFaultInjection scope(std::move(plan));
  const auto corrupted = base.collect(small_work);
  EXPECT_GT(corrupted.counters.get(pe::counters::kCycles),
            10 * honest.counters.get(pe::counters::kCycles));
}

TEST(CounterCollector, ModelScalesSynthesizedCounters) {
  SimulatedMachineModel m;
  m.clock_ghz = 1.0;
  m.assumed_ipc = 2.0;
  m.branch_fraction = 0.5;
  m.branch_miss_rate = 0.1;
  const CounterCollector c(m);
  FaultPlan plan;  // force the simulated path regardless of host perf
  plan.faults.push_back(
      {.site = std::string(pe::fault_sites::kCountersRead)});
  ScopedFaultInjection scope(std::move(plan));
  const auto out = c.collect(small_work);
  const auto cycles = out.counters.get(pe::counters::kCycles);
  const auto instructions = out.counters.get(pe::counters::kInstructions);
  // IPC 2.0: about twice as many instructions as cycles.
  EXPECT_NEAR(static_cast<double>(instructions),
              2.0 * static_cast<double>(cycles),
              0.01 * static_cast<double>(instructions) + 4.0);
}

}  // namespace
