// Tests for the bimodal branch predictor in perfeng/sim.
#include "perfeng/sim/branch_predictor.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"
#include "perfeng/common/rng.hpp"

namespace {

using pe::sim::BranchPredictor;

TEST(BranchPredictor, AlwaysTakenConvergesFast) {
  BranchPredictor p(256);
  for (int i = 0; i < 100; ++i) p.record(0x10, true);
  // From the weakly-not-taken start, only the first prediction may miss.
  EXPECT_LE(p.stats().mispredictions, 1u);
  EXPECT_EQ(p.stats().predictions, 100u);
}

TEST(BranchPredictor, AlwaysNotTakenConverges) {
  BranchPredictor p(256);
  for (int i = 0; i < 100; ++i) p.record(0x10, false);
  EXPECT_EQ(p.stats().mispredictions, 0u);  // starts predicting not-taken
}

TEST(BranchPredictor, AlternatingPatternDefeatsBimodal) {
  BranchPredictor p(256);
  for (int i = 0; i < 1000; ++i) p.record(0x20, i % 2 == 0);
  // A strict T/NT alternation keeps a 2-bit counter near the boundary.
  EXPECT_GT(p.stats().misprediction_rate(), 0.4);
}

TEST(BranchPredictor, RandomOutcomesNearFiftyPercent) {
  BranchPredictor p(256);
  pe::Rng rng(3);
  for (int i = 0; i < 20000; ++i) p.record(0x30, rng.next_double() < 0.5);
  EXPECT_NEAR(p.stats().misprediction_rate(), 0.5, 0.05);
}

TEST(BranchPredictor, BiasedOutcomesMostlyPredicted) {
  BranchPredictor p(256);
  pe::Rng rng(4);
  for (int i = 0; i < 20000; ++i) p.record(0x40, rng.next_double() < 0.95);
  EXPECT_LT(p.stats().misprediction_rate(), 0.15);
}

TEST(BranchPredictor, DistinctPcsTrainIndependently) {
  BranchPredictor p(256);
  for (int i = 0; i < 50; ++i) {
    p.record(0x1, true);
    p.record(0x2, false);
  }
  EXPECT_LE(p.stats().mispredictions, 1u);
}

TEST(BranchPredictor, ResetClearsTrainingAndStats) {
  BranchPredictor p(256);
  for (int i = 0; i < 10; ++i) p.record(0x1, true);
  p.reset();
  EXPECT_EQ(p.stats().predictions, 0u);
  // After reset the counter is weakly-not-taken again.
  EXPECT_FALSE(p.record(0x1, true));
}

TEST(BranchPredictor, TableSizeMustBePowerOfTwo) {
  EXPECT_THROW(BranchPredictor(100), pe::Error);
  EXPECT_NO_THROW(BranchPredictor(128));
}

TEST(BranchPredictor, ZeroRateOnFreshPredictor) {
  BranchPredictor p(64);
  EXPECT_EQ(p.stats().misprediction_rate(), 0.0);
}

}  // namespace
