// Tests for the estimators in perfeng/measure/statistics.hpp.
#include "perfeng/measure/statistics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "perfeng/common/error.hpp"

namespace {

const std::vector<double> kSample = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};

TEST(Statistics, Mean) {
  EXPECT_DOUBLE_EQ(pe::mean(kSample), 5.0);
  EXPECT_DOUBLE_EQ(pe::mean(std::vector<double>{}), 0.0);
}

TEST(Statistics, SampleStddev) {
  // Known dataset: population sd = 2, sample sd = sqrt(32/7).
  EXPECT_NEAR(pe::stddev(kSample), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(pe::stddev(std::vector<double>{1.0}), 0.0);
}

TEST(Statistics, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(pe::median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(pe::median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_THROW(pe::median(std::vector<double>{}), pe::Error);
}

TEST(Statistics, PercentileInterpolates) {
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(pe::percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(pe::percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(pe::percentile(v, 50.0), 25.0);
  EXPECT_THROW(pe::percentile(v, -1.0), pe::Error);
  EXPECT_THROW(pe::percentile(v, 101.0), pe::Error);
}

class PercentileSweep : public ::testing::TestWithParam<double> {};

TEST_P(PercentileSweep, MonotoneInQ) {
  const std::vector<double> v = {5.0, 1.0, 9.0, 3.0, 7.0, 2.0};
  const double q = GetParam();
  EXPECT_LE(pe::percentile(v, q), pe::percentile(v, std::min(100.0, q + 10)));
}

INSTANTIATE_TEST_SUITE_P(Quantiles, PercentileSweep,
                         ::testing::Values(0.0, 10.0, 25.0, 50.0, 75.0,
                                           90.0));

TEST(Statistics, MedianAbsDeviation) {
  const std::vector<double> v = {1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0};
  EXPECT_DOUBLE_EQ(pe::median_abs_deviation(v), 1.0);
}

TEST(Statistics, GeometricMean) {
  EXPECT_NEAR(pe::geometric_mean(std::vector<double>{1.0, 4.0, 16.0}), 4.0,
              1e-12);
  EXPECT_THROW(pe::geometric_mean(std::vector<double>{1.0, -1.0}), pe::Error);
}

TEST(Statistics, HarmonicMean) {
  EXPECT_NEAR(pe::harmonic_mean(std::vector<double>{1.0, 2.0, 4.0}),
              3.0 / (1.0 + 0.5 + 0.25), 1e-12);
  EXPECT_THROW(pe::harmonic_mean(std::vector<double>{0.0}), pe::Error);
}

TEST(Statistics, MeanInequalityHolds) {
  // HM <= GM <= AM for positive values.
  const std::vector<double> v = {1.3, 2.7, 3.1, 8.9, 0.4};
  EXPECT_LE(pe::harmonic_mean(v), pe::geometric_mean(v) + 1e-12);
  EXPECT_LE(pe::geometric_mean(v), pe::mean(v) + 1e-12);
}

TEST(Statistics, TCriticalKnownValues) {
  EXPECT_NEAR(pe::t_critical_95(1), 12.706, 1e-3);
  EXPECT_NEAR(pe::t_critical_95(10), 2.228, 1e-3);
  EXPECT_NEAR(pe::t_critical_95(30), 2.042, 1e-3);
  EXPECT_NEAR(pe::t_critical_95(1000), 1.980, 1e-2);
}

TEST(Statistics, TCriticalDecreasesWithDof) {
  for (std::size_t dof = 1; dof < 40; ++dof)
    EXPECT_GE(pe::t_critical_95(dof), pe::t_critical_95(dof + 1));
}

TEST(Statistics, Ci95HalfwidthShrinksWithSamples) {
  std::vector<double> small = {1.0, 2.0, 3.0};
  std::vector<double> large;
  for (int i = 0; i < 30; ++i) large.insert(large.end(), small.begin(),
                                            small.end());
  EXPECT_GT(pe::ci95_halfwidth(small), pe::ci95_halfwidth(large));
  EXPECT_EQ(pe::ci95_halfwidth(std::vector<double>{5.0}), 0.0);
}

TEST(Statistics, PearsonCorrelation) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y_pos = {2.0, 4.0, 6.0, 8.0};
  const std::vector<double> y_neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pe::pearson_correlation(x, y_pos), 1.0, 1e-12);
  EXPECT_NEAR(pe::pearson_correlation(x, y_neg), -1.0, 1e-12);
  const std::vector<double> constant = {3.0, 3.0, 3.0, 3.0};
  EXPECT_EQ(pe::pearson_correlation(x, constant), 0.0);
}

TEST(Statistics, LineFitRecoversSlopeIntercept) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.5 * i);
  }
  const auto fit = pe::fit_line(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.5, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Statistics, LineFitNeedsVariance) {
  const std::vector<double> x = {2.0, 2.0, 2.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_THROW(pe::fit_line(x, y), pe::Error);
}

TEST(Statistics, SummarizeBundlesEverything) {
  const auto s = pe::summarize(kSample);
  EXPECT_EQ(s.count, kSample.size());
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_GT(s.stddev, 0.0);
  EXPECT_GT(s.ci95_half, 0.0);
  EXPECT_LE(s.p05, s.median);
  EXPECT_GE(s.p95, s.median);
}

TEST(Statistics, SummarizeEmptySample) {
  const auto s = pe::summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(CompareSamples, DetectsAClearDifference) {
  const std::vector<double> a = {10.0, 10.1, 9.9, 10.05, 9.95};
  const std::vector<double> b = {8.0, 8.1, 7.9, 8.05, 7.95};
  const auto r = pe::compare_samples(a, b);
  EXPECT_TRUE(r.significant);
  EXPECT_NEAR(r.mean_difference, -2.0, 0.01);
  EXPECT_NEAR(r.relative_change, -0.2, 0.01);
  EXPECT_LT(r.t_statistic, 0.0);
}

TEST(CompareSamples, NoiseIsNotSignificant) {
  // Two samples from the same distribution (interleaved values).
  const std::vector<double> a = {10.0, 10.4, 9.8, 10.2, 9.6};
  const std::vector<double> b = {10.1, 9.7, 10.3, 9.9, 10.1};
  const auto r = pe::compare_samples(a, b);
  EXPECT_FALSE(r.significant);
  EXPECT_GT(r.ci95_half, std::abs(r.mean_difference));
}

TEST(CompareSamples, UnequalSizesSupported) {
  const std::vector<double> a = {1.0, 1.1, 0.9};
  const std::vector<double> b = {2.0, 2.1, 1.9, 2.05, 1.95, 2.0};
  const auto r = pe::compare_samples(a, b);
  EXPECT_TRUE(r.significant);
  EXPECT_GT(r.dof, 1.0);
}

TEST(CompareSamples, ZeroVarianceExactDifference) {
  const std::vector<double> a = {5.0, 5.0, 5.0};
  const std::vector<double> b = {6.0, 6.0, 6.0};
  EXPECT_TRUE(pe::compare_samples(a, b).significant);
  EXPECT_FALSE(pe::compare_samples(a, a).significant);
}

TEST(FilterOutliers, DropsTheJitterSpike) {
  // Nine tight measurements and one preempted outlier.
  const std::vector<double> xs = {1.0, 1.01, 0.99, 1.02, 0.98,
                                  1.0, 1.01, 0.99, 1.0,  5.0};
  const auto kept = pe::filter_outliers(xs);
  EXPECT_EQ(kept.size(), 9u);
  for (double v : kept) EXPECT_LT(v, 2.0);
}

TEST(FilterOutliers, KeepsCleanSamplesIntact) {
  const std::vector<double> xs = {1.0, 1.1, 0.9, 1.05, 0.95, 1.02};
  const auto kept = pe::filter_outliers(xs);
  EXPECT_EQ(kept.size(), xs.size());
}

TEST(FilterOutliers, PreservesOriginalOrder) {
  const std::vector<double> xs = {3.0, 1.0, 100.0, 2.0, 2.5, 1.5, 2.2,
                                  1.8};
  const auto kept = pe::filter_outliers(xs);
  EXPECT_EQ(kept.front(), 3.0);
  EXPECT_TRUE(std::find(kept.begin(), kept.end(), 100.0) == kept.end());
}

TEST(FilterOutliers, TinySamplesPassThrough) {
  const std::vector<double> xs = {1.0, 99.0};
  EXPECT_EQ(pe::filter_outliers(xs).size(), 2u);
}

TEST(FilterOutliers, WiderFenceKeepsMore) {
  const std::vector<double> xs = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.6};
  EXPECT_LE(pe::filter_outliers(xs, 1.5).size(),
            pe::filter_outliers(xs, 100.0).size());
  EXPECT_THROW((void)pe::filter_outliers(xs, -1.0), pe::Error);
}

TEST(CompareSamples, Validation) {
  const std::vector<double> one = {1.0};
  const std::vector<double> two = {1.0, 2.0};
  EXPECT_THROW((void)pe::compare_samples(one, two), pe::Error);
}

TEST(Statistics, CoefficientOfVariation) {
  EXPECT_NEAR(pe::coefficient_of_variation(kSample),
              std::sqrt(32.0 / 7.0) / 5.0, 1e-12);
  EXPECT_EQ(pe::coefficient_of_variation(std::vector<double>{0.0, 0.0}),
            0.0);
}

}  // namespace
