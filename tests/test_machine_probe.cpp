// Tests for the one-call machine characterization in perfeng/microbench.
#include "perfeng/microbench/machine_probe.hpp"

#include <gtest/gtest.h>

namespace {

TEST(MachineProbe, ProducesConsistentCharacterization) {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 0;
  cfg.repetitions = 2;
  cfg.min_batch_seconds = 5e-5;
  const pe::BenchmarkRunner runner(cfg);

  pe::microbench::ProbeConfig probe;
  probe.stream_elements = 1 << 16;       // keep the test fast
  probe.cache_stream_elements = 1 << 11;
  probe.latency_min_bytes = 1 << 12;
  probe.latency_max_bytes = 1 << 16;

  const auto mc = pe::microbench::probe_machine(runner, probe);
  EXPECT_GT(mc.peak_flops, 1e6);
  EXPECT_GT(mc.memory_bandwidth, 1e6);
  EXPECT_GT(mc.cache_bandwidth, 1e6);
  EXPECT_GT(mc.cache_latency, 0.0);
  EXPECT_GT(mc.memory_latency, 0.0);
  EXPECT_GT(mc.ridge_intensity(), 0.0);

  const std::string s = mc.summary();
  EXPECT_NE(s.find("peak"), std::string::npos);
  EXPECT_NE(s.find("ridge"), std::string::npos);
}

TEST(MachineProbe, RidgeIsZeroWithoutBandwidth) {
  pe::microbench::MachineCharacterization mc;
  mc.peak_flops = 1e9;
  mc.memory_bandwidth = 0.0;
  EXPECT_EQ(mc.ridge_intensity(), 0.0);
}

}  // namespace
