// Tests for the one-call machine characterization in perfeng/microbench.
#include "perfeng/microbench/machine_probe.hpp"

#include <gtest/gtest.h>

#include <string>

#include "perfeng/machine/registry.hpp"
#include "perfeng/microbench/scheduler.hpp"
#include "perfeng/simd/caps.hpp"
#include "perfeng/simd/vec.hpp"

namespace {

TEST(MachineProbe, ProducesConsistentCharacterization) {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 0;
  cfg.repetitions = 2;
  cfg.min_batch_seconds = 5e-5;
  const pe::BenchmarkRunner runner(cfg);

  pe::microbench::ProbeConfig probe;
  probe.stream_elements = 1 << 16;       // keep the test fast
  probe.cache_stream_elements = 1 << 11;
  probe.latency_min_bytes = 1 << 12;
  probe.latency_max_bytes = 1 << 16;

  const auto mc = pe::microbench::probe_machine(runner, probe);
  EXPECT_GT(mc.peak_flops, 1e6);
  EXPECT_GT(mc.memory_bandwidth, 1e6);
  EXPECT_GT(mc.cache_bandwidth, 1e6);
  EXPECT_GT(mc.cache_latency, 0.0);
  EXPECT_GT(mc.memory_latency, 0.0);
  EXPECT_GT(mc.ridge_intensity(), 0.0);

  const std::string s = mc.summary();
  EXPECT_NE(s.find("peak"), std::string::npos);
  EXPECT_NE(s.find("ridge"), std::string::npos);

  // The probe records the host's vector capability from the runtime caps
  // probe, and the machine bridge must carry it into the calibration (so
  // calibration_hash pins which vector hardware measured the numbers).
  EXPECT_EQ(mc.simd_width_bits, pe::simd::runtime_simd_caps().width_bits());
  EXPECT_EQ(mc.simd_fma, pe::simd::runtime_simd_caps().fma &&
                             mc.simd_width_bits > 0);
  const pe::machine::Machine m = pe::machine::from_probe(mc, "probe-test");
  EXPECT_NO_THROW(m.check());
  EXPECT_EQ(m.simd_width_bits, mc.simd_width_bits);
  EXPECT_EQ(m.simd_fma, mc.simd_fma);
  // A binary compiled against the AVX2 backend can only be running on a
  // host whose probe reports at least 256-bit vectors.
  if (pe::simd::compiled_width_bits() > 0) {
    EXPECT_GE(m.simd_width_bits, pe::simd::compiled_width_bits());
  }
}

TEST(MachineProbe, RidgeIsZeroWithoutBandwidth) {
  pe::microbench::MachineCharacterization mc;
  mc.peak_flops = 1e9;
  mc.memory_bandwidth = 0.0;
  EXPECT_EQ(mc.ridge_intensity(), 0.0);
}

TEST(SchedulerProbe, MeasuresBothDispatchPaths) {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 0;
  cfg.repetitions = 2;
  cfg.min_batch_seconds = 5e-5;
  const pe::BenchmarkRunner runner(cfg);

  pe::microbench::SchedulerProbeConfig probe;
  probe.tasks = 256;  // keep the test fast
  const auto sc = pe::microbench::probe_scheduler(runner, probe);
  EXPECT_GT(sc.submit_ns, 0.0);
  EXPECT_GT(sc.bulk_ns, 0.0);
  EXPECT_EQ(sc.tasks, 256u);
  EXPECT_GE(sc.pool_threads, 2u);  // probe floors at two workers

  const std::string s = sc.summary();
  EXPECT_NE(s.find("submit"), std::string::npos);
  EXPECT_NE(s.find("bulk"), std::string::npos);
}

TEST(SchedulerProbe, AppliesToMachineCalibration) {
  pe::microbench::SchedulerCharacterization sc;
  sc.submit_ns = 500.0;
  sc.bulk_ns = 12.5;
  sc.tasks = 1024;
  sc.pool_threads = 4;
  EXPECT_DOUBLE_EQ(sc.bulk_speedup(), 40.0);

  pe::machine::Machine m = pe::machine::resolve_or_preset("laptop-x86");
  ASSERT_FALSE(m.has_scheduler());
  const std::string before = m.calibration_hash();
  pe::microbench::apply_scheduler_probe(m, sc);
  EXPECT_TRUE(m.has_scheduler());
  EXPECT_DOUBLE_EQ(m.sched_submit_ns, 500.0);
  EXPECT_DOUBLE_EQ(m.sched_bulk_ns, 12.5);
  EXPECT_NE(m.calibration_hash(), before);
  EXPECT_NO_THROW(m.check());
}

}  // namespace
