// Tests for the per-operation cost table in perfeng/microbench/op_costs.hpp.
#include "perfeng/microbench/op_costs.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

using pe::microbench::Op;
using pe::microbench::OpCost;
using pe::microbench::OpCostTable;

pe::BenchmarkRunner fast_runner() {
  pe::MeasurementConfig cfg;
  cfg.warmup_runs = 1;
  cfg.repetitions = 2;
  cfg.min_batch_seconds = 1e-4;
  return pe::BenchmarkRunner(cfg);
}

TEST(OpCosts, OpNames) {
  EXPECT_EQ(pe::microbench::op_name(Op::kFadd), "fadd");
  EXPECT_EQ(pe::microbench::op_name(Op::kFdiv), "fdiv");
  EXPECT_EQ(pe::microbench::op_name(Op::kImul), "imul");
}

TEST(OpCosts, SetAndGet) {
  OpCostTable t;
  t.set_cost(Op::kFadd, {3e-9, 1e-9});
  EXPECT_DOUBLE_EQ(t.cost(Op::kFadd).latency_seconds, 3e-9);
  EXPECT_DOUBLE_EQ(t.cost(Op::kFadd).throughput_seconds, 1e-9);
}

TEST(OpCosts, MissingOpThrows) {
  OpCostTable t;
  EXPECT_THROW((void)t.cost(Op::kFma), pe::Error);
}

TEST(OpCosts, MeasureCoversAllOps) {
  const auto runner = fast_runner();
  const OpCostTable t = OpCostTable::measure(runner);
  for (Op op : {Op::kFadd, Op::kFmul, Op::kFma, Op::kFdiv, Op::kIadd,
                Op::kImul}) {
    const OpCost& c = t.cost(op);
    EXPECT_GT(c.latency_seconds, 0.0) << pe::microbench::op_name(op);
    EXPECT_GT(c.throughput_seconds, 0.0) << pe::microbench::op_name(op);
  }
  EXPECT_EQ(t.entries().size(), 6u);
}

TEST(OpCosts, DivisionSlowerThanAddition) {
  // The one per-op ordering that holds on every real and simulated core.
  const auto runner = fast_runner();
  const OpCostTable t = OpCostTable::measure(runner);
  EXPECT_GT(t.cost(Op::kFdiv).latency_seconds,
            t.cost(Op::kFadd).latency_seconds);
}

TEST(OpCosts, ThroughputNotSlowerThanLatency) {
  // Independent chains can only help; allow 30% measurement noise.
  const auto runner = fast_runner();
  const OpCostTable t = OpCostTable::measure(runner);
  for (const auto& [op, cost] : t.entries()) {
    EXPECT_LT(cost.throughput_seconds, cost.latency_seconds * 1.3)
        << pe::microbench::op_name(op);
  }
}

}  // namespace
