// Integration test: the Assignment 3 flow — build a training corpus of
// SpMV configurations, fit statistical models, and validate that the
// black-box models predict unseen configurations well.
#include <gtest/gtest.h>

#include "perfeng/kernels/sparse.hpp"
#include "perfeng/models/analytical.hpp"
#include "perfeng/statmodel/linear.hpp"
#include "perfeng/statmodel/tree.hpp"
#include "perfeng/statmodel/validation.hpp"

namespace {

using pe::kernels::SparsityPattern;

// A synthetic "runtime" with the analytical model's structure plus noise:
// the statistical models must learn it from features alone. Using the
// analytical model as the data generator keeps this integration test
// fast and deterministic while exercising the full modeling pipeline.
double synthetic_runtime(const pe::kernels::CsrMatrix& m, pe::Rng& rng) {
  pe::models::Calibration calib;
  const pe::models::SpmvModel model(m.rows, m.cols, m.nnz(),
                                    pe::models::SpmvFormat::kCsr, 0.5,
                                    calib);
  return model.predict() * rng.next_range_double(0.95, 1.05);
}

TEST(Assignment3, StatisticalModelsPredictSpmvRuntime) {
  pe::Rng rng(2024);
  pe::statmodel::Dataset data(pe::kernels::sparse_feature_names());

  for (const auto pattern :
       {SparsityPattern::kUniform, SparsityPattern::kBanded,
        SparsityPattern::kPowerLaw}) {
    for (std::size_t size : {100u, 200u, 400u, 800u}) {
      for (double density : {0.005, 0.01, 0.02, 0.04}) {
        const auto coo =
            pe::kernels::generate_sparse(size, size, density, pattern, rng);
        const auto csr = pe::kernels::coo_to_csr(coo);
        data.add_row(pe::kernels::sparse_features(csr),
                     synthetic_runtime(csr, rng));
      }
    }
  }
  ASSERT_EQ(data.rows(), 48u);
  data.shuffle(rng);

  // Standardize using train statistics only (the assignment's lesson).
  const auto split = data.train_test_split(0.25);
  const auto standardizer = split.train.fit_standardizer();
  const auto train = split.train.standardized(standardizer);
  const auto test = split.test.standardized(standardizer);

  // Square matrices make rows == cols exactly collinear; a whisper of
  // ridge keeps the normal equations well-posed (itself an Assignment 3
  // lesson about engineered features).
  pe::statmodel::LinearRegression linear(1e-6);
  const auto linear_result = pe::statmodel::evaluate(linear, train, test);
  pe::statmodel::RandomForestRegressor forest(32);
  const auto forest_result = pe::statmodel::evaluate(forest, train, test);

  // Runtime is ~linear in nnz (the dominant feature), so OLS over the raw
  // features must do well: the paper's point that simple statistical
  // models already predict performance usefully.
  EXPECT_LT(linear_result.mape, 0.25) << "OLS MAPE too high";
  EXPECT_GT(linear_result.r2, 0.8);
  EXPECT_GT(forest_result.r2, 0.5);
}

TEST(Assignment3, AnalyticalModelRanksFormatsLikeTrafficSays) {
  // The analytical baseline the statistical models are compared against:
  // COO > CSR in traffic for the same matrix.
  pe::models::Calibration calib;
  pe::Rng rng(7);
  const auto csr = pe::kernels::coo_to_csr(pe::kernels::generate_sparse(
      500, 500, 0.01, SparsityPattern::kUniform, rng));
  const pe::models::SpmvModel csr_model(csr.rows, csr.cols, csr.nnz(),
                                        pe::models::SpmvFormat::kCsr, 0.5,
                                        calib);
  const pe::models::SpmvModel coo_model(csr.rows, csr.cols, csr.nnz(),
                                        pe::models::SpmvFormat::kCoo, 0.5,
                                        calib);
  EXPECT_GT(coo_model.predict(), csr_model.predict() * 0.99);
}

}  // namespace
