// Tests for the FFT kernels in perfeng/kernels/fft.hpp.
#include "perfeng/kernels/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "perfeng/common/error.hpp"
#include "perfeng/common/rng.hpp"

namespace {

using pe::kernels::Complex;

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  pe::Rng rng(seed);
  std::vector<Complex> out(n);
  for (auto& v : out)
    v = {rng.next_range_double(-1, 1), rng.next_range_double(-1, 1)};
  return out;
}

TEST(Fft, ImpulseHasFlatSpectrum) {
  std::vector<Complex> x(8, {0.0, 0.0});
  x[0] = {1.0, 0.0};
  const auto spectrum = pe::kernels::fft(x);
  for (const auto& bin : spectrum) {
    EXPECT_NEAR(bin.real(), 1.0, 1e-12);
    EXPECT_NEAR(bin.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantSignalIsDcOnly) {
  const std::vector<Complex> x(16, {1.0, 0.0});
  const auto spectrum = pe::kernels::fft(x);
  EXPECT_NEAR(spectrum[0].real(), 16.0, 1e-12);
  for (std::size_t k = 1; k < 16; ++k)
    EXPECT_NEAR(std::abs(spectrum[k]), 0.0, 1e-12);
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<Complex> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double angle = 2.0 * M_PI * 5.0 * t / n;
    x[t] = {std::cos(angle), std::sin(angle)};
  }
  const auto spectrum = pe::kernels::fft(x);
  EXPECT_NEAR(std::abs(spectrum[5]), double(n), 1e-9);
  for (std::size_t k = 0; k < n; ++k) {
    if (k != 5) EXPECT_NEAR(std::abs(spectrum[k]), 0.0, 1e-9) << k;
  }
}

class FftVsDft : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftVsDft, AgreesWithNaiveDft) {
  const auto x = random_signal(GetParam(), GetParam());
  const auto fast = pe::kernels::fft(x);
  const auto slow = pe::kernels::dft(x);
  EXPECT_LT(pe::kernels::spectrum_diff(fast, slow), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Pow2Sizes, FftVsDft,
                         ::testing::Values(2, 4, 8, 32, 128, 512));

TEST(Fft, InverseRoundTrips) {
  const auto x = random_signal(256, 77);
  const auto back = pe::kernels::ifft(pe::kernels::fft(x));
  EXPECT_LT(pe::kernels::spectrum_diff(back, x), 1e-12);
}

TEST(Fft, ParsevalHolds) {
  const auto x = random_signal(128, 99);
  const auto spectrum = pe::kernels::fft(x);
  double time_energy = 0.0, freq_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  for (const auto& v : spectrum) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * 128.0, 1e-8);
}

TEST(Fft, LinearityHolds) {
  const auto a = random_signal(64, 1);
  const auto b = random_signal(64, 2);
  std::vector<Complex> sum(64);
  for (std::size_t i = 0; i < 64; ++i) sum[i] = a[i] + 2.0 * b[i];
  const auto fa = pe::kernels::fft(a);
  const auto fb = pe::kernels::fft(b);
  const auto fsum = pe::kernels::fft(sum);
  for (std::size_t k = 0; k < 64; ++k)
    EXPECT_LT(std::abs(fsum[k] - (fa[k] + 2.0 * fb[k])), 1e-10);
}

TEST(Fft, NonPowerOfTwoRejected) {
  EXPECT_THROW((void)pe::kernels::fft(random_signal(12, 3)), pe::Error);
  EXPECT_THROW((void)pe::kernels::fft({}), pe::Error);
}

TEST(Dft, HandlesAnyLength) {
  const auto x = random_signal(12, 5);
  const auto spectrum = pe::kernels::dft(x);
  EXPECT_EQ(spectrum.size(), 12u);
}

TEST(Fft, FlopEstimate) {
  EXPECT_DOUBLE_EQ(pe::kernels::fft_flops(1024), 5.0 * 1024 * 10);
  EXPECT_THROW((void)pe::kernels::fft_flops(1), pe::Error);
}

TEST(SpectrumDiff, LengthMismatchRejected) {
  EXPECT_THROW(
      (void)pe::kernels::spectrum_diff(random_signal(4, 1),
                                       random_signal(8, 1)),
      pe::Error);
}

}  // namespace
