// Tests for the histogram kernel in perfeng/kernels/histogram.hpp.
#include "perfeng/kernels/histogram.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

TEST(HistogramGen, UniformIndicesInRange) {
  pe::Rng rng(1);
  const auto idx = pe::kernels::generate_uniform_indices(10000, 64, rng);
  EXPECT_EQ(idx.size(), 10000u);
  for (auto i : idx) EXPECT_LT(i, 64u);
}

TEST(HistogramGen, UniformCoversAllBins) {
  pe::Rng rng(2);
  const auto idx = pe::kernels::generate_uniform_indices(10000, 16, rng);
  std::vector<std::uint64_t> counts(16, 0);
  pe::kernels::histogram_serial(idx, counts);
  for (auto c : counts) EXPECT_GT(c, 400u);  // expected 625 each
}

TEST(HistogramGen, ZipfConcentratesMass) {
  pe::Rng rng(3);
  const std::size_t bins = 4096;
  const auto idx = pe::kernels::generate_zipf_indices(20000, bins, 1.2, rng);
  std::vector<std::uint64_t> counts(bins, 0);
  pe::kernels::histogram_serial(idx, counts);
  std::sort(counts.begin(), counts.end(), std::greater<>());
  std::uint64_t top10 = 0;
  for (int i = 0; i < 10; ++i) top10 += counts[i];
  EXPECT_GT(top10, 20000u * 30 / 100);  // top 10 bins hold > 30%
}

TEST(HistogramGen, ZipfZeroSkewIsRoughlyUniform) {
  pe::Rng rng(4);
  const auto idx = pe::kernels::generate_zipf_indices(20000, 8, 0.0, rng);
  std::vector<std::uint64_t> counts(8, 0);
  pe::kernels::histogram_serial(idx, counts);
  for (auto c : counts) EXPECT_NEAR(double(c), 2500.0, 350.0);
}

TEST(Histogram, SerialCountsEveryElement) {
  const std::vector<std::uint32_t> idx = {0, 1, 1, 2, 2, 2};
  std::vector<std::uint64_t> counts(4, 0);
  pe::kernels::histogram_serial(idx, counts);
  EXPECT_EQ(counts, (std::vector<std::uint64_t>{1, 2, 3, 0}));
  EXPECT_EQ(pe::kernels::histogram_total(counts), 6u);
}

TEST(Histogram, SerialAccumulatesOntoExisting) {
  const std::vector<std::uint32_t> idx = {0, 0};
  std::vector<std::uint64_t> counts = {5, 1};
  pe::kernels::histogram_serial(idx, counts);
  EXPECT_EQ(counts[0], 7u);
}

TEST(Histogram, ParallelMatchesSerial) {
  pe::Rng rng(7);
  const std::size_t bins = 128;
  const auto idx = pe::kernels::generate_uniform_indices(50000, bins, rng);
  std::vector<std::uint64_t> serial(bins, 0), parallel(bins, 0);
  pe::kernels::histogram_serial(idx, serial);
  pe::ThreadPool pool(4);
  pe::kernels::histogram_parallel_private(idx, parallel, pool);
  EXPECT_EQ(serial, parallel);
}

TEST(Histogram, AtomicVariantMatchesSerial) {
  pe::Rng rng(9);
  const std::size_t bins = 64;
  const auto idx = pe::kernels::generate_zipf_indices(30000, bins, 1.0, rng);
  std::vector<std::uint64_t> serial(bins, 0), atomic(bins, 0);
  pe::kernels::histogram_serial(idx, serial);
  pe::ThreadPool pool(4);
  pe::kernels::histogram_parallel_atomic(idx, atomic, pool);
  EXPECT_EQ(serial, atomic);
}

TEST(Histogram, AtomicVariantAccumulatesOntoExisting) {
  std::vector<std::uint64_t> counts = {5, 0};
  pe::ThreadPool pool(2);
  pe::kernels::histogram_parallel_atomic({0, 0, 1}, counts, pool);
  EXPECT_EQ(counts, (std::vector<std::uint64_t>{7, 1}));
}

TEST(Histogram, ParallelWithSingleWorker) {
  pe::Rng rng(8);
  const auto idx = pe::kernels::generate_uniform_indices(1000, 8, rng);
  std::vector<std::uint64_t> a(8, 0), b(8, 0);
  pe::kernels::histogram_serial(idx, a);
  pe::ThreadPool pool(1);
  pe::kernels::histogram_parallel_private(idx, b, pool);
  EXPECT_EQ(a, b);
}

TEST(Histogram, EmptyInputLeavesCountsUntouched) {
  std::vector<std::uint64_t> counts(4, 9);
  pe::kernels::histogram_serial({}, counts);
  EXPECT_EQ(pe::kernels::histogram_total(counts), 36u);
}

TEST(Histogram, EmptyCounterTableRejected) {
  std::vector<std::uint64_t> counts;
  EXPECT_THROW(pe::kernels::histogram_serial({0}, counts), pe::Error);
}

}  // namespace
