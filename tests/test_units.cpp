// Tests for quantity formatting in perfeng/common/units.hpp.
#include "perfeng/common/units.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Units, TimeScalesAutomatically) {
  EXPECT_EQ(pe::format_time(0.0), "0 s");
  EXPECT_EQ(pe::format_time(2.5e-9), "2.5 ns");
  EXPECT_EQ(pe::format_time(3.2e-6), "3.2 us");
  EXPECT_EQ(pe::format_time(1.5e-3), "1.5 ms");
  EXPECT_EQ(pe::format_time(2.0), "2 s");
}

TEST(Units, BytesUseBinaryPrefixes) {
  EXPECT_EQ(pe::format_bytes(512), "512 B");
  EXPECT_EQ(pe::format_bytes(2048), "2 KiB");
  EXPECT_EQ(pe::format_bytes(3 * 1024 * 1024), "3 MiB");
  EXPECT_EQ(pe::format_bytes(std::uint64_t{5} << 30), "5 GiB");
}

TEST(Units, BandwidthUsesDecimalPrefixes) {
  EXPECT_EQ(pe::format_bandwidth(1.0e3), "1 kB/s");
  EXPECT_EQ(pe::format_bandwidth(2.5e9), "2.5 GB/s");
}

TEST(Units, FlopsUsesDecimalPrefixes) {
  EXPECT_EQ(pe::format_flops(3.0e9), "3 GFLOP/s");
  EXPECT_EQ(pe::format_flops(1.2e6), "1.2 MFLOP/s");
}

TEST(Units, CountScales) {
  EXPECT_EQ(pe::format_count(999), "999");
  EXPECT_EQ(pe::format_count(1.5e6), "1.5 M");
}

}  // namespace
