// Tests for the ASCII table renderer in perfeng/common/table.hpp.
#include "perfeng/common/table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "perfeng/common/error.hpp"

namespace {

TEST(Table, RendersHeadersAndRows) {
  pe::Table t({"kernel", "time"});
  t.add_row({"matmul", "1.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("kernel"), std::string::npos);
  EXPECT_NE(out.find("matmul"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(Table, RowWidthMustMatchHeader) {
  pe::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), pe::Error);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), pe::Error);
}

TEST(Table, EmptyHeadersRejected) {
  pe::Table t;
  EXPECT_THROW(t.set_headers({}), pe::Error);
}

TEST(Table, CountsRowsAndColumns) {
  pe::Table t({"x", "y", "z"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  t.add_row({"4", "5", "6"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, VariadicAddFormatsNumbers) {
  pe::Table t({"name", "value", "count"});
  t.add("pi", 3.14159, 42);
  const std::string out = t.render();
  EXPECT_NE(out.find("3.142"), std::string::npos);  // 4 significant digits
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(Table, AlignmentControlsPadding) {
  pe::Table t({"l", "r"});
  t.set_alignment({pe::Align::kLeft, pe::Align::kRight});
  t.add_row({"a", "b"});
  t.add_row({"long", "word"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| a    |"), std::string::npos);
  EXPECT_NE(out.find("|    b |"), std::string::npos);
}

TEST(Table, AlignmentWidthValidated) {
  pe::Table t({"a", "b"});
  EXPECT_THROW(t.set_alignment({pe::Align::kLeft}), pe::Error);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  pe::Table t({"name", "note"});
  t.add_row({"with,comma", "with \"quote\""});
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with \"\"quote\"\"\""), std::string::npos);
}

TEST(FormatSig, SignificantDigits) {
  EXPECT_EQ(pe::format_sig(1234.5678, 4), "1235");
  EXPECT_EQ(pe::format_sig(0.00012345, 3), "0.000123");
  EXPECT_EQ(pe::format_sig(2.0, 4), "2");
}

TEST(FormatSig, HandlesNonFinite) {
  EXPECT_EQ(pe::format_sig(std::nan(""), 4), "nan");
  EXPECT_EQ(pe::format_sig(std::numeric_limits<double>::infinity(), 4), "inf");
  EXPECT_EQ(pe::format_sig(-std::numeric_limits<double>::infinity(), 4), "-inf");
}

TEST(FormatFixed, FixedDecimals) {
  EXPECT_EQ(pe::format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(pe::format_fixed(2.0, 1), "2.0");
  EXPECT_EQ(pe::format_fixed(4.55, 1), "4.5");  // round-to-even edge noted
}

}  // namespace
