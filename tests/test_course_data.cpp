// Tests for the embedded paper data artifacts (DATA-1, DATA-2, Table 1)
// in perfeng/course/data.hpp. These assert fidelity against the numbers
// printed in the paper.
#include "perfeng/course/data.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/csv.hpp"

namespace {

using namespace pe::course;

TEST(Data1, SevenYears) {
  const auto& h = student_history();
  ASSERT_EQ(h.size(), 7u);
  EXPECT_EQ(h.front().year, 2017);
  EXPECT_EQ(h.back().year, 2023);
}

TEST(Data1, TotalsMatchThePaperExactly) {
  int enrolled = 0, passing = 0, respondents = 0;
  for (const auto& y : student_history()) {
    enrolled += y.enrolled;
    passing += y.passing;
    respondents += y.respondents;
  }
  EXPECT_EQ(enrolled, kTotalEnrolled);      // 146
  EXPECT_EQ(passing, kTotalPassing);        // 93
  EXPECT_EQ(respondents, kTotalRespondents);  // 41
}

TEST(Data1, EvaluationsMissingFor2019And2022) {
  for (const auto& y : student_history()) {
    const bool should_be_missing = (y.year == 2019 || y.year == 2022);
    EXPECT_EQ(!y.evaluation_available, should_be_missing) << y.year;
    if (!y.evaluation_available) EXPECT_EQ(y.respondents, 0);
  }
}

TEST(Data1, DropoutBandMatchesThePaper) {
  // "15-50% drop out": passing is between 50% and 85% of enrolled.
  for (const auto& y : student_history()) {
    const double rate = double(y.passing) / y.enrolled;
    EXPECT_GE(rate, 0.5) << y.year;
    EXPECT_LE(rate, 0.85) << y.year;
  }
}

TEST(Data1, EnrollmentGrowsOverTheYears) {
  const auto& h = student_history();
  for (std::size_t i = 1; i < h.size(); ++i)
    EXPECT_GE(h[i].enrolled, h[i - 1].enrolled);
}

TEST(Data1, CsvParsesBack) {
  const auto doc = pe::parse_csv(students_csv());
  EXPECT_EQ(doc.rows.size(), 7u);
  EXPECT_EQ(doc.header.size(), 5u);
  EXPECT_EQ(doc.rows[0][doc.column("year")], "2017");
}

TEST(Data2, ThirteenAgreementItems) {
  EXPECT_EQ(evaluation_agreement().size(), 13u);
  EXPECT_EQ(evaluation_level().size(), 2u);
}

TEST(Data2, EveryHistogramReproducesThePaperMean) {
  // The strongest fidelity check available: each row's five counts must
  // recompute to the printed M within the paper's one-decimal rounding.
  auto check = [](const EvaluationItem& item) {
    EXPECT_NEAR(item.mean(), item.paper_mean, 0.05)
        << item.statement << ": counts give " << item.mean()
        << " but paper prints " << item.paper_mean;
  };
  for (const auto& item : evaluation_agreement()) check(item);
  for (const auto& item : evaluation_level()) check(item);
}

TEST(Data2, KnownRowsVerbatim) {
  const auto& items = evaluation_agreement();
  EXPECT_EQ(items[0].statement, "Taught me a lot");
  EXPECT_EQ(items[0].counts, (std::array<int, 5>{0, 0, 1, 17, 18}));
  EXPECT_DOUBLE_EQ(items[0].paper_mean, 4.5);
  EXPECT_EQ(items[6].statement, "To apply subject matter");
  EXPECT_DOUBLE_EQ(items[6].paper_mean, 4.8);  // the course's best score
}

TEST(Data2, WorkloadIsTheHighestLevelScore) {
  // The paper's "students are critical of the high workload" shows up as
  // Workload (4.0) > Level (3.7).
  const auto& level = evaluation_level();
  EXPECT_EQ(level[0].statement, "Workload");
  EXPECT_GT(level[0].mean(), level[1].mean());
}

TEST(Data2, RespondentCountsPlausible) {
  // Each statement was answered by at most the total respondent pool and
  // by at least half of it.
  for (const auto& item : evaluation_agreement()) {
    EXPECT_LE(item.total(), kTotalRespondents);
    EXPECT_GE(item.total(), kTotalRespondents / 2);
  }
}

TEST(Data2, AssignmentsAllScoreAboveFour) {
  // "helped me understand the subject" >= 4.1 for all four assignments.
  for (const auto& item : evaluation_agreement()) {
    if (item.section.find("helped me understand") != std::string::npos)
      EXPECT_GE(item.paper_mean, 4.1) << item.statement;
  }
}

TEST(Data2, CsvParsesBack) {
  const auto doc = pe::parse_csv(metrics_csv());
  EXPECT_EQ(doc.rows.size(), 15u);  // 13 agreement + 2 level
  EXPECT_EQ(doc.rows[0][doc.column("statement")], "Taught me a lot");
}

TEST(Table1, ElevenTopicsInPaperOrder) {
  const auto& topics = topic_coverage();
  ASSERT_EQ(topics.size(), 11u);
  EXPECT_EQ(topics.front().topic, "Basics of performance");
  EXPECT_EQ(topics.back().topic, "Polyhedral model");
}

TEST(Table1, EveryTopicServesAStageAndAnObjective) {
  for (const auto& t : topic_coverage()) {
    EXPECT_FALSE(t.stages.empty()) << t.topic;
    EXPECT_FALSE(t.objectives.empty()) << t.topic;
    for (int s : t.stages) {
      EXPECT_GE(s, 1);
      EXPECT_LE(s, 7);
    }
    for (int o : t.objectives) {
      EXPECT_GE(o, 1);
      EXPECT_LE(o, 8);
    }
  }
}

TEST(Table1, PracticalStagesAreAllCovered) {
  // The practical part of the course targets stages 2-6.
  for (int stage = 2; stage <= 6; ++stage) {
    bool covered = false;
    for (const auto& t : topic_coverage())
      for (int s : t.stages)
        if (s == stage) covered = true;
    EXPECT_TRUE(covered) << "stage " << stage;
  }
}

TEST(Table1, EveryLearningObjectiveIsCovered) {
  for (int objective = 1; objective <= 8; ++objective) {
    bool covered = false;
    for (const auto& t : topic_coverage())
      for (int o : t.objectives)
        if (o == objective) covered = true;
    EXPECT_TRUE(covered) << "objective " << objective;
  }
}

}  // namespace
