// pe::observe unit tests: ring overflow accounting, the disabled-hook
// fast path, latency analysis under a simulated clock, exporter validity,
// capture round-trips, and (chaos-labelled) trace coherence while the
// fault injector attacks the pool workers mid-loop.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "perfeng/common/error.hpp"
#include "perfeng/common/trace_hook.hpp"
#include "perfeng/measure/experiment.hpp"
#include "perfeng/observe/analysis.hpp"
#include "perfeng/observe/export.hpp"
#include "perfeng/observe/ring_buffer.hpp"
#include "perfeng/observe/sampler.hpp"
#include "perfeng/observe/trace.hpp"
#include "perfeng/observe/tracer.hpp"
#include "perfeng/parallel/parallel_for.hpp"
#include "perfeng/parallel/thread_pool.hpp"
#include "perfeng/resilience/fault_injection.hpp"

namespace {

using pe::TraceEventKind;
using pe::observe::EventRing;
using pe::observe::Trace;
using pe::observe::TraceRecord;
using pe::observe::Tracer;
using pe::observe::TracerConfig;

// Deterministic tracer clock: tests advance it explicitly. A plain
// function (TracerConfig::now_ns is a function pointer), so the cursor
// is file-scope state.
std::atomic<std::uint64_t> g_sim_now{0};
std::uint64_t sim_now() { return g_sim_now.load(std::memory_order_relaxed); }

TraceRecord make_record(std::uint64_t ns) {
  TraceRecord r;
  r.ns = ns;
  r.kind = TraceEventKind::kSubmit;
  return r;
}

TEST(EventRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventRing(2).capacity(), 2u);
  EXPECT_EQ(EventRing(5).capacity(), 8u);
  EXPECT_EQ(EventRing(64).capacity(), 64u);
  EXPECT_EQ(EventRing(65).capacity(), 128u);
}

TEST(EventRingTest, DrainBelowCapacityKeepsEverythingInOrder) {
  EventRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) ring.push(make_record(i));
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 0u);
  std::vector<TraceRecord> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 5u);
  for (std::uint64_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].ns, i);
}

TEST(EventRingTest, WraparoundKeepsTailAndCountsDropped) {
  EventRing ring(8);
  for (std::uint64_t i = 0; i < 20; ++i) ring.push(make_record(i));
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);  // 20 pushed - 8 surviving slots
  std::vector<TraceRecord> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 8u);
  // The survivors are exactly the newest 8, oldest first.
  for (std::uint64_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i].ns, 12u + i);
}

TEST(EventRingTest, ResetForgetsHistory) {
  EventRing ring(4);
  for (std::uint64_t i = 0; i < 9; ++i) ring.push(make_record(i));
  ring.reset();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  std::vector<TraceRecord> out;
  ring.drain(out);
  EXPECT_TRUE(out.empty());
}

TEST(TracerTest, DisabledHookPathRecordsNothing) {
  ASSERT_EQ(pe::trace_hook(), nullptr)
      << "another test leaked an installed hook";
  // With no hook installed the macros must be inert no-ops.
  PE_TRACE_EMIT(TraceEventKind::kSubmit, nullptr, 0, 0, 0);
  PE_TRACE_EMIT_SITE(TraceEventKind::kLoopBegin, nullptr, 0, 1, 0, "f", 1);
  pe::TraceHook* const cached = pe::detail::trace_hook_fast();
  EXPECT_EQ(cached, nullptr);
  PE_TRACE_EMIT_CACHED(cached, TraceEventKind::kChunkStart, nullptr, 0, 1, 0,
                       nullptr, 0);
}

TEST(TracerTest, ScopedTraceInstallsAndRemovesTheHook) {
  Tracer tracer;
  EXPECT_EQ(pe::trace_hook(), nullptr);
  {
    pe::observe::ScopedTrace scope(tracer);
    EXPECT_EQ(pe::trace_hook(), &tracer);
    // Overlapping trace scopes are a harness bug and must throw.
    EXPECT_THROW(pe::observe::ScopedTrace nested(tracer), pe::Error);
  }
  EXPECT_EQ(pe::trace_hook(), nullptr);
}

TEST(TracerTest, OutOfRangeLanesShareTheLastRing) {
  TracerConfig cfg;
  cfg.lanes = 2;
  cfg.ring_capacity = 16;
  cfg.now_ns = sim_now;
  Tracer tracer(cfg);
  tracer.on_event(TraceEventKind::kSubmit, nullptr, 0, 0, /*lane=*/99,
                  nullptr, 0);
  const Trace trace = tracer.take();
  // The event is not lost: it lands in the last ring, and the record
  // keeps the raw lane id for attribution.
  ASSERT_EQ(trace.events.size(), 1u);
  EXPECT_EQ(trace.events[0].lane, 99u);
}

TEST(LatencyTest, SimulatedClockGapsReportedExactly) {
  TracerConfig cfg;
  cfg.lanes = 2;
  cfg.now_ns = sim_now;
  Tracer tracer(cfg);

  // 100 submit->start pairs, every gap exactly 5000 ns: the whole
  // distribution collapses to one value, so every percentile must be it.
  int keys[100];
  g_sim_now = 0;
  for (int i = 0; i < 100; ++i) {
    g_sim_now = 10000u * static_cast<std::uint64_t>(i);
    tracer.on_event(TraceEventKind::kSubmit, &keys[i], 0, 0, 0, nullptr, 0);
    g_sim_now = 10000u * static_cast<std::uint64_t>(i) + 5000u;
    tracer.on_event(TraceEventKind::kTaskStart, &keys[i], 0, 0, 1, nullptr,
                    0);
  }
  const pe::observe::LatencyReport report =
      pe::observe::scheduler_latency(tracer.take());
  ASSERT_EQ(report.samples_ns.size(), 100u);
  EXPECT_DOUBLE_EQ(report.p50_ns, 5000.0);
  EXPECT_DOUBLE_EQ(report.p95_ns, 5000.0);
  EXPECT_DOUBLE_EQ(report.p99_ns, 5000.0);
  EXPECT_EQ(report.unmatched_starts, 0u);
}

TEST(LatencyTest, TailLatencySeparatesPercentilesMonotonically) {
  TracerConfig cfg;
  cfg.lanes = 2;
  cfg.now_ns = sim_now;
  Tracer tracer(cfg);

  // 99 fast dispatches (1 us) and one straggler (1 ms): p50 stays at the
  // fast mode, p99 must feel the tail.
  int keys[100];
  std::uint64_t t = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t gap = (i == 99) ? 1000000u : 1000u;
    g_sim_now = t;
    tracer.on_event(TraceEventKind::kSubmit, &keys[i], 0, 0, 0, nullptr, 0);
    g_sim_now = t + gap;
    tracer.on_event(TraceEventKind::kTaskStart, &keys[i], 0, 0, 1, nullptr,
                    0);
    t += 2000000u;
  }
  const pe::observe::LatencyReport report =
      pe::observe::scheduler_latency(tracer.take());
  ASSERT_EQ(report.samples_ns.size(), 100u);
  EXPECT_DOUBLE_EQ(report.p50_ns, 1000.0);
  EXPECT_LE(report.p50_ns, report.p95_ns);
  EXPECT_LE(report.p95_ns, report.p99_ns);
  EXPECT_GT(report.p99_ns, 1000.0);
}

TEST(LatencyTest, StartWithoutSubmitCountsAsUnmatched) {
  TracerConfig cfg;
  cfg.lanes = 2;
  cfg.now_ns = sim_now;
  Tracer tracer(cfg);
  int key = 0;
  g_sim_now = 100;
  tracer.on_event(TraceEventKind::kTaskStart, &key, 0, 0, 1, nullptr, 0);
  const pe::observe::LatencyReport report =
      pe::observe::scheduler_latency(tracer.take());
  EXPECT_TRUE(report.samples_ns.empty());
  EXPECT_EQ(report.unmatched_starts, 1u);
}

TEST(AnalysisTest, Log2HistogramBucketsByPowerOfTwo) {
  const auto buckets =
      pe::observe::log2_histogram({0.0, 1.0, 2.0, 3.0, 4.0, 1000.0});
  std::size_t total = 0;
  for (const auto& bucket : buckets) {
    total += bucket.count;
    if (bucket.lo_ns != 0) {
      EXPECT_EQ(bucket.lo_ns & (bucket.lo_ns - 1), 0u)
          << "bucket lower bound must be a power of two";
    }
    EXPECT_EQ(bucket.hi_ns, bucket.lo_ns == 0 ? 1 : bucket.lo_ns * 2);
  }
  EXPECT_EQ(total, 6u);  // buckets are contiguous and cover every sample
}

TEST(AnalysisTest, ContentionProfileCountsParkCyclesAndSteals) {
  TracerConfig cfg;
  cfg.lanes = 3;
  cfg.now_ns = sim_now;
  Tracer tracer(cfg);
  int pool_key = 0;
  g_sim_now = 1000;
  tracer.on_event(TraceEventKind::kPark, &pool_key, 0, 0, 1, nullptr, 0);
  g_sim_now = 4000;
  tracer.on_event(TraceEventKind::kUnpark, &pool_key, 0, 0, 1, nullptr, 0);
  tracer.on_event(TraceEventKind::kSteal, &pool_key, 0, 0, 2, nullptr, 0);
  tracer.on_event(TraceEventKind::kContended, &pool_key, 0, 0, 2, nullptr,
                  0);
  const pe::observe::ContentionReport report =
      pe::observe::contention_profile(tracer.take());
  EXPECT_EQ(report.total_parks, 1u);
  EXPECT_DOUBLE_EQ(report.total_park_ns, 3000.0);
  EXPECT_EQ(report.total_steals, 1u);
  EXPECT_EQ(report.total_contended, 1u);
}

TEST(ExportTest, CollapsedAndChromeOutputsAreWellFormed) {
  TracerConfig cfg;
  cfg.lanes = 2;
  cfg.now_ns = sim_now;
  Tracer tracer(cfg);
  static const char* const kFile = "src/kernels/src/matmul.cpp";
  int loop_key = 0;
  g_sim_now = 0;
  tracer.on_event(TraceEventKind::kLoopBegin, &loop_key, 0, 64, 0, kFile, 42);
  g_sim_now = 1000;
  tracer.on_event(TraceEventKind::kChunkStart, &loop_key, 0, 32, 1, kFile,
                  42);
  g_sim_now = 51000;
  tracer.on_event(TraceEventKind::kChunkFinish, &loop_key, 0, 32, 1, kFile,
                  42);
  g_sim_now = 52000;
  tracer.on_event(TraceEventKind::kPark, &loop_key, 0, 0, 1, nullptr, 0);
  g_sim_now = 99000;
  tracer.on_event(TraceEventKind::kUnpark, &loop_key, 0, 0, 1, nullptr, 0);
  g_sim_now = 100000;
  tracer.on_event(TraceEventKind::kLoopEnd, &loop_key, 0, 64, 0, kFile, 42);
  const Trace trace = tracer.take();

  std::ostringstream folded;
  pe::observe::write_collapsed(folded, trace);
  EXPECT_NE(folded.str().find("parallel_for@"), std::string::npos);
  EXPECT_NE(folded.str().find("matmul.cpp:42"), std::string::npos);
  EXPECT_NE(folded.str().find("idle.park"), std::string::npos);

  std::ostringstream chrome;
  pe::observe::write_chrome_trace(chrome, trace);
  const std::string json = chrome.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  long depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ExportTest, CaptureRoundTripsThroughSaveAndLoad) {
  TracerConfig cfg;
  cfg.lanes = 2;
  cfg.now_ns = sim_now;
  Tracer tracer(cfg);
  static const char* const kFile = "src/kernels/src/sparse.cpp";
  int loop_key = 0;
  g_sim_now = 7;
  tracer.on_event(TraceEventKind::kChunkStart, &loop_key, 3, 9, 1, kFile,
                  21);
  g_sim_now = 19;
  tracer.on_event(TraceEventKind::kChunkFinish, &loop_key, 3, 9, 1, kFile,
                  21);
  const Trace trace = tracer.take();

  std::stringstream io;
  trace.save(io);
  const Trace reloaded = Trace::load(io);
  ASSERT_EQ(reloaded.events.size(), trace.events.size());
  EXPECT_EQ(reloaded.recorded, trace.recorded);
  EXPECT_EQ(reloaded.dropped, trace.dropped);
  EXPECT_EQ(reloaded.lanes, trace.lanes);
  for (std::size_t i = 0; i < reloaded.events.size(); ++i) {
    EXPECT_EQ(reloaded.events[i].ns, trace.events[i].ns);
    EXPECT_EQ(reloaded.events[i].kind, trace.events[i].kind);
    EXPECT_EQ(reloaded.events[i].a, trace.events[i].a);
    EXPECT_EQ(reloaded.events[i].b, trace.events[i].b);
    EXPECT_EQ(reloaded.events[i].lane, trace.events[i].lane);
    EXPECT_EQ(reloaded.events[i].line, trace.events[i].line);
    ASSERT_NE(reloaded.events[i].file, nullptr);
    EXPECT_STREQ(reloaded.events[i].file, trace.events[i].file);
  }
}

TEST(ExportTest, LoadRejectsMalformedCaptures) {
  std::istringstream garbage("this is not a capture\n");
  EXPECT_THROW((void)Trace::load(garbage), pe::Error);
}

TEST(ProvenanceTest, AnnotateAttachesSchedulerColumns) {
  pe::observe::TraceSummary summary;
  summary.latency_p50_ns = 1234.0;
  summary.latency_p99_ns = 5678.0;
  summary.parks = 3;
  summary.steals = 7;
  summary.contended = 2;
  summary.dropped = 0;

  pe::Experiment exp("observe_provenance");
  exp.add_factor("kernel", {"k"});
  exp.set_metrics({"time_ms"});
  pe::observe::annotate(exp, summary);
  exp.record({{"kernel", "k"}}, {1.0});
  EXPECT_EQ(exp.provenance("sched_p50_ns"), "1234");
  EXPECT_EQ(exp.provenance("sched_p99_ns"), "5678");
  EXPECT_EQ(exp.provenance("steals"), "7");
  const std::string table = exp.to_table().render();
  EXPECT_NE(table.find("sched_p50_ns"), std::string::npos);
  EXPECT_NE(table.find("trace_dropped"), std::string::npos);
}

TEST(SamplerTest, SamplesPublishedActivity) {
  TracerConfig cfg;
  cfg.lanes = 2;
  cfg.now_ns = sim_now;
  Tracer tracer(cfg);
  static const char* const kFile = "src/kernels/src/stencil.cpp";
  int loop_key = 0;
  // Leave lane 1 inside an executing chunk so every snapshot sees it.
  tracer.on_event(TraceEventKind::kChunkStart, &loop_key, 0, 128, 1, kFile,
                  77);

  pe::observe::SamplerConfig scfg;
  scfg.period = std::chrono::microseconds(200);
  pe::observe::SamplingProfiler profiler(tracer, scfg);
  profiler.start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (profiler.samples() < 5 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  profiler.stop();
  ASSERT_GE(profiler.samples(), 5u);

  std::uint64_t chunk_weight = 0;
  for (const auto& [stack, weight] : profiler.folded())
    if (stack.find("stencil.cpp:77") != std::string::npos)
      chunk_weight += weight;
  EXPECT_GT(chunk_weight, 0u);
}

// Chaos coupling (ctest -L chaos): worker faults injected mid-loop must
// not corrupt the capture — every chunk that started finished, loop
// begin/end pair up, and the loop still computes the right answer
// (run_job absorbs injected faults rather than dropping the job).
TEST(ObserveChaos, TraceStaysCoherentUnderWorkerFaults) {
  pe::resilience::FaultPlan plan;
  plan.seed = 20260807;
  pe::resilience::FaultSpec spec;
  spec.site = std::string(pe::fault_sites::kPoolWorker);
  spec.kind = pe::resilience::FaultKind::kThrow;
  spec.probability = 0.5;
  plan.faults.push_back(spec);
  pe::resilience::ScopedFaultInjection chaos(plan);

  pe::ThreadPool pool(4);
  TracerConfig cfg;
  cfg.lanes = pool.size() + 1;
  Tracer tracer(cfg);
  std::atomic<std::uint64_t> sum{0};
  {
    pe::observe::ScopedTrace scope(tracer);
    for (int round = 0; round < 20; ++round) {
      pe::parallel_for(
          pool, 0, 2048, [&](std::size_t i) { sum.fetch_add(i); },
          pe::Schedule::kDynamic, 64);
    }
    // Submitted tasks always execute in run_job (broadcast loop copies can
    // be purged before a worker wakes on a loaded box), so these are the
    // guaranteed visits to the pool.worker fault site.
    std::vector<std::future<std::uint64_t>> futures;
    for (std::uint64_t t = 0; t < 64; ++t)
      futures.push_back(pool.submit([t] { return t * t; }));
    for (std::uint64_t t = 0; t < 64; ++t)
      EXPECT_EQ(futures[t].get(), t * t);
  }
  EXPECT_EQ(sum.load(), 20u * (2048u * 2047u / 2));

  const Trace trace = tracer.take();
  EXPECT_EQ(trace.dropped, 0u);
  EXPECT_EQ(trace.recorded, trace.events.size());
  EXPECT_EQ(trace.count(TraceEventKind::kChunkStart),
            trace.count(TraceEventKind::kChunkFinish));
  EXPECT_EQ(trace.count(TraceEventKind::kLoopBegin),
            trace.count(TraceEventKind::kLoopEnd));
  EXPECT_EQ(trace.count(TraceEventKind::kTaskStart),
            trace.count(TraceEventKind::kTaskFinish));
  EXPECT_EQ(trace.count(TraceEventKind::kLoopBegin), 20u);
  EXPECT_GT(pool.absorbed_faults(), 0u);
}

}  // namespace
