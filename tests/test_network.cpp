// Tests for the alpha-beta network model in perfeng/models/network.hpp.
#include "perfeng/models/network.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

using pe::models::AlphaBetaModel;

AlphaBetaModel net() { return {1e-6, 1e-9}; }

TEST(AlphaBeta, PointToPoint) {
  EXPECT_DOUBLE_EQ(net().p2p(0), 1e-6);
  EXPECT_DOUBLE_EQ(net().p2p(1000), 1e-6 + 1e-6);
}

TEST(AlphaBeta, SmallMessagesAreLatencyBound) {
  const auto m = net();
  EXPECT_NEAR(m.p2p(8), m.p2p(0), m.p2p(0) * 0.01);
}

TEST(AlphaBeta, BroadcastScalesWithLogP) {
  const auto m = net();
  EXPECT_DOUBLE_EQ(m.broadcast(1, 100), 0.0);
  EXPECT_DOUBLE_EQ(m.broadcast(2, 100), m.p2p(100));
  EXPECT_DOUBLE_EQ(m.broadcast(8, 100), 3.0 * m.p2p(100));
  EXPECT_DOUBLE_EQ(m.broadcast(9, 100), 4.0 * m.p2p(100));  // ceil(log2 9)
}

TEST(AlphaBeta, RingAllreduceSteps) {
  const auto m = net();
  EXPECT_DOUBLE_EQ(m.ring_allreduce(1, 100), 0.0);
  // p = 4, m = 400: 2*3 steps of 100 bytes.
  EXPECT_DOUBLE_EQ(m.ring_allreduce(4, 400), 6.0 * m.p2p(100));
}

TEST(AlphaBeta, RingAllreduceLatencyVsBandwidthTradeoff) {
  const auto m = net();
  // Tiny message: more ranks = more latency-bound steps = slower.
  EXPECT_LT(m.ring_allreduce(2, 8), m.ring_allreduce(32, 8));
  // Huge message: the bandwidth term is 2m(p-1)/p, so the p=16 over p=4
  // ratio converges to 1.875/1.5 = 1.25 — not the latency blowup.
  const double t4 = m.ring_allreduce(4, 64 << 20);
  const double t16 = m.ring_allreduce(16, 64 << 20);
  EXPECT_NEAR(t16 / t4, 1.25, 0.02);
}

TEST(AlphaBeta, HaloExchange) {
  const auto m = net();
  EXPECT_DOUBLE_EQ(m.halo_exchange(1000), 1e-6 + m.p2p(1000));
}

TEST(StrongScaling, ComputeShrinksCommPersists) {
  const auto m = net();
  const double t1 =
      pe::models::strong_scaling_time(m, 1e9, 1e9, 1, 1 << 16);
  const double t4 =
      pe::models::strong_scaling_time(m, 1e9, 1e9, 4, 1 << 16);
  EXPECT_DOUBLE_EQ(t1, 1.0);  // no communication on one rank
  EXPECT_LT(t4, t1);
  EXPECT_GT(t4, 0.25);  // communication keeps it above the ideal 1/p
}

TEST(StrongScaling, SweetSpotExistsForSmallProblems) {
  // A small problem on a slow network stops scaling early.
  const AlphaBetaModel slow{1e-3, 1e-6};
  const unsigned spot =
      pe::models::strong_scaling_sweet_spot(slow, 1e7, 1e9, 64, 1 << 12);
  EXPECT_LT(spot, 64u);
  EXPECT_GE(spot, 1u);
}

TEST(StrongScaling, BigProblemsScaleToTheLimit) {
  const unsigned spot =
      pe::models::strong_scaling_sweet_spot(net(), 1e12, 1e9, 64, 1 << 10);
  EXPECT_EQ(spot, 64u);
}

TEST(StrongScaling, Validation) {
  EXPECT_THROW(
      (void)pe::models::strong_scaling_time(net(), 0.0, 1.0, 1, 1),
      pe::Error);
  EXPECT_THROW(
      (void)pe::models::strong_scaling_time(net(), 1.0, 1.0, 0, 1),
      pe::Error);
}

}  // namespace
