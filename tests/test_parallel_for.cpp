// Tests for parallel_for / parallel_reduce in perfeng/parallel.
#include "perfeng/parallel/parallel_for.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "perfeng/common/error.hpp"

namespace {

class ParallelForSchedules
    : public ::testing::TestWithParam<pe::Schedule> {};

TEST_P(ParallelForSchedules, VisitsEveryIndexExactlyOnce) {
  pe::ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pe::parallel_for(
      pool, 0, visits.size(),
      [&](std::size_t i) { visits[i].fetch_add(1); }, GetParam());
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST_P(ParallelForSchedules, HonorsSubrange) {
  pe::ThreadPool pool(3);
  std::vector<std::atomic<int>> visits(100);
  pe::parallel_for(
      pool, 10, 90, [&](std::size_t i) { visits[i].fetch_add(1); },
      GetParam());
  for (std::size_t i = 0; i < visits.size(); ++i)
    EXPECT_EQ(visits[i].load(), (i >= 10 && i < 90) ? 1 : 0) << i;
}

TEST_P(ParallelForSchedules, EmptyRangeIsNoop) {
  pe::ThreadPool pool(2);
  bool called = false;
  pe::parallel_for(
      pool, 5, 5, [&](std::size_t) { called = true; }, GetParam());
  EXPECT_FALSE(called);
}

INSTANTIATE_TEST_SUITE_P(Schedules, ParallelForSchedules,
                         ::testing::Values(pe::Schedule::kStatic,
                                           pe::Schedule::kDynamic,
                                           pe::Schedule::kGuided));

TEST(ParallelFor, InvertedRangeThrows) {
  pe::ThreadPool pool(2);
  EXPECT_THROW(pe::parallel_for(pool, 10, 5, [](std::size_t) {}), pe::Error);
}

TEST(ParallelFor, ZeroChunkRejected) {
  pe::ThreadPool pool(2);
  EXPECT_THROW(pe::parallel_for(
                   pool, 0, 10, [](std::size_t) {}, pe::Schedule::kDynamic,
                   0),
               pe::Error);
}

TEST(ParallelFor, ExceptionsPropagate) {
  pe::ThreadPool pool(3);
  EXPECT_THROW(pe::parallel_for(pool, 0, 100,
                                [](std::size_t i) {
                                  if (i == 57) throw std::runtime_error("x");
                                }),
               std::runtime_error);
}

TEST(ParallelFor, SingleWorkerPoolRunsInline) {
  pe::ThreadPool pool(1);
  std::vector<int> order;
  pe::parallel_for(pool, 0, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelReduce, SumsCorrectly) {
  pe::ThreadPool pool(4);
  const auto sum = pe::parallel_reduce(
      pool, 1, 1001, std::uint64_t{0},
      [](std::size_t i) { return static_cast<std::uint64_t>(i); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sum, 500500u);
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  pe::ThreadPool pool(2);
  const auto result = pe::parallel_reduce(
      pool, 3, 3, 42, [](std::size_t) { return 1; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(result, 42);
}

TEST(ParallelReduce, MaxReduction) {
  pe::ThreadPool pool(3);
  std::vector<double> data(777);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<double>((i * 7919) % 1000);
  const double m = pe::parallel_reduce(
      pool, 0, data.size(), -1.0, [&](std::size_t i) { return data[i]; },
      [](double a, double b) { return std::max(a, b); });
  EXPECT_EQ(m, *std::max_element(data.begin(), data.end()));
}

TEST(ParallelReduce, MatchesSerialForManySizes) {
  pe::ThreadPool pool(4);
  for (std::size_t n : {1u, 2u, 3u, 7u, 64u, 1000u}) {
    const auto sum = pe::parallel_reduce(
        pool, 0, n, std::size_t{0}, [](std::size_t i) { return i; },
        [](std::size_t a, std::size_t b) { return a + b; });
    EXPECT_EQ(sum, n * (n - 1) / 2) << n;
  }
}

TEST_P(ParallelForSchedules, ExceptionsPropagateFromAnySchedule) {
  pe::ThreadPool pool(4);
  std::atomic<int> before{0};
  EXPECT_THROW(
      pe::parallel_for(
          pool, 0, 512,
          [&](std::size_t i) {
            before.fetch_add(1);
            if (i == 137) throw std::runtime_error("boom");
          },
          GetParam(), 1),
      std::runtime_error);
  EXPECT_GE(before.load(), 1);
}

TEST_P(ParallelForSchedules, NestedInsideLoopBodiesDoesNotDeadlock) {
  pe::ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  pe::parallel_for(
      pool, 0, 8,
      [&](std::size_t) {
        pe::parallel_for(
            pool, 0, 64, [&](std::size_t) { total.fetch_add(1); },
            GetParam(), 4);
      },
      GetParam(), 1);
  EXPECT_EQ(total.load(), 8u * 64u);
}

// The static-schedule tail fix: block sizes must never differ by more than
// one, even when n is slightly above a multiple of the worker count (the
// old ceil-division split could leave the last worker with no block).
TEST(ParallelForChunks, StaticBlocksAreBalanced) {
  pe::ThreadPool pool(4);
  for (std::size_t n : {13u, 16u, 17u, 97u, 100u, 101u}) {
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    pe::parallel_for_chunks(
        pool, 0, n,
        [&](std::size_t lo, std::size_t hi, std::size_t) {
          std::lock_guard lock(mu);
          chunks.emplace_back(lo, hi);
        },
        pe::Schedule::kStatic);
    std::size_t covered = 0, smallest = n, largest = 0;
    for (const auto& [lo, hi] : chunks) {
      ASSERT_LT(lo, hi);
      covered += hi - lo;
      smallest = std::min(smallest, hi - lo);
      largest = std::max(largest, hi - lo);
    }
    EXPECT_EQ(covered, n) << n;
    EXPECT_LE(largest - smallest, 1u) << n;
    EXPECT_EQ(chunks.size(), std::min<std::size_t>(pool.size(), n)) << n;
  }
}

TEST(ParallelForChunks, LanesFitLaneIndexedScratch) {
  pe::ThreadPool pool(3);
  std::atomic<bool> bad{false};
  pe::parallel_for_chunks(
      pool, 0, 10000,
      [&](std::size_t, std::size_t, std::size_t lane) {
        if (lane > pool.size()) bad.store(true);
      },
      pe::Schedule::kDynamic, 7);
  EXPECT_FALSE(bad.load());
}

TEST(ParallelReduce, DeterministicForFixedPoolSize) {
  pe::ThreadPool pool(4);
  std::vector<double> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = 1.0 / static_cast<double>(i + 1);
  const auto run = [&] {
    return pe::parallel_reduce(
        pool, 0, data.size(), 0.0, [&](std::size_t i) { return data[i]; },
        [](double a, double b) { return a + b; });
  };
  const double first = run();
  for (int rep = 0; rep < 10; ++rep) EXPECT_EQ(first, run());
}

TEST(ParallelReduceOrdered, BitIdenticalAcrossPoolSizes) {
  std::vector<double> data(9973);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = 1.0 / static_cast<double>(i + 1);
  std::vector<double> results;
  for (std::size_t workers : {1u, 2u, 3u, 4u}) {
    pe::ThreadPool pool(workers);
    for (int rep = 0; rep < 3; ++rep) {
      results.push_back(pe::parallel_reduce_ordered(
          pool, 0, data.size(), 0.0,
          [&](std::size_t i) { return data[i]; },
          [](double a, double b) { return a + b; }, 128));
    }
  }
  for (const double r : results) EXPECT_EQ(r, results.front());
}

TEST(ParallelReduceOrdered, MatchesUnorderedSumForIntegers) {
  pe::ThreadPool pool(4);
  const auto sum = pe::parallel_reduce_ordered(
      pool, 0, 5000, std::size_t{0}, [](std::size_t i) { return i; },
      [](std::size_t a, std::size_t b) { return a + b; }, 64);
  EXPECT_EQ(sum, 5000u * 4999u / 2);
}

}  // namespace
