// Tests for parallel_for / parallel_reduce in perfeng/parallel.
#include "perfeng/parallel/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "perfeng/common/error.hpp"

namespace {

class ParallelForSchedules
    : public ::testing::TestWithParam<pe::Schedule> {};

TEST_P(ParallelForSchedules, VisitsEveryIndexExactlyOnce) {
  pe::ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pe::parallel_for(
      pool, 0, visits.size(),
      [&](std::size_t i) { visits[i].fetch_add(1); }, GetParam());
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST_P(ParallelForSchedules, HonorsSubrange) {
  pe::ThreadPool pool(3);
  std::vector<std::atomic<int>> visits(100);
  pe::parallel_for(
      pool, 10, 90, [&](std::size_t i) { visits[i].fetch_add(1); },
      GetParam());
  for (std::size_t i = 0; i < visits.size(); ++i)
    EXPECT_EQ(visits[i].load(), (i >= 10 && i < 90) ? 1 : 0) << i;
}

TEST_P(ParallelForSchedules, EmptyRangeIsNoop) {
  pe::ThreadPool pool(2);
  bool called = false;
  pe::parallel_for(
      pool, 5, 5, [&](std::size_t) { called = true; }, GetParam());
  EXPECT_FALSE(called);
}

INSTANTIATE_TEST_SUITE_P(Schedules, ParallelForSchedules,
                         ::testing::Values(pe::Schedule::kStatic,
                                           pe::Schedule::kDynamic));

TEST(ParallelFor, InvertedRangeThrows) {
  pe::ThreadPool pool(2);
  EXPECT_THROW(pe::parallel_for(pool, 10, 5, [](std::size_t) {}), pe::Error);
}

TEST(ParallelFor, ZeroChunkRejected) {
  pe::ThreadPool pool(2);
  EXPECT_THROW(pe::parallel_for(
                   pool, 0, 10, [](std::size_t) {}, pe::Schedule::kDynamic,
                   0),
               pe::Error);
}

TEST(ParallelFor, ExceptionsPropagate) {
  pe::ThreadPool pool(3);
  EXPECT_THROW(pe::parallel_for(pool, 0, 100,
                                [](std::size_t i) {
                                  if (i == 57) throw std::runtime_error("x");
                                }),
               std::runtime_error);
}

TEST(ParallelFor, SingleWorkerPoolRunsInline) {
  pe::ThreadPool pool(1);
  std::vector<int> order;
  pe::parallel_for(pool, 0, 5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelReduce, SumsCorrectly) {
  pe::ThreadPool pool(4);
  const auto sum = pe::parallel_reduce(
      pool, 1, 1001, std::uint64_t{0},
      [](std::size_t i) { return static_cast<std::uint64_t>(i); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sum, 500500u);
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  pe::ThreadPool pool(2);
  const auto result = pe::parallel_reduce(
      pool, 3, 3, 42, [](std::size_t) { return 1; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(result, 42);
}

TEST(ParallelReduce, MaxReduction) {
  pe::ThreadPool pool(3);
  std::vector<double> data(777);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<double>((i * 7919) % 1000);
  const double m = pe::parallel_reduce(
      pool, 0, data.size(), -1.0, [&](std::size_t i) { return data[i]; },
      [](double a, double b) { return std::max(a, b); });
  EXPECT_EQ(m, *std::max_element(data.begin(), data.end()));
}

TEST(ParallelReduce, MatchesSerialForManySizes) {
  pe::ThreadPool pool(4);
  for (std::size_t n : {1u, 2u, 3u, 7u, 64u, 1000u}) {
    const auto sum = pe::parallel_reduce(
        pool, 0, n, std::size_t{0}, [](std::size_t i) { return i; },
        [](std::size_t a, std::size_t b) { return a + b; });
    EXPECT_EQ(sum, n * (n - 1) / 2) << n;
  }
}

}  // namespace
