// Tests for the analytical kernel models in perfeng/models/analytical.hpp.
#include "perfeng/models/analytical.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

using pe::models::Calibration;
using pe::models::HistogramModel;
using pe::models::MatmulModel;
using pe::models::MatmulVariant;
using pe::models::SpmvFormat;
using pe::models::SpmvModel;

Calibration calib() {
  Calibration c;
  c.peak_flops = 1e10;
  c.dram_bandwidth = 1e10;
  c.cache_bandwidth = 1e11;
  c.cache_bytes = 1 << 21;  // 2 MiB
  c.line_bytes = 64;
  return c;
}

TEST(TrafficTime, RooflineComposition) {
  // Compute-bound: 1e10 FLOPs at 1e10 FLOP/s = 1 s > memory 0.1 s.
  EXPECT_DOUBLE_EQ(pe::models::traffic_time(1e10, 1e9, calib()), 1.0);
  // Memory-bound.
  EXPECT_DOUBLE_EQ(pe::models::traffic_time(1e8, 1e10, calib()), 1.0);
}

TEST(MatmulModel, FlopsAreTwoNCubed) {
  const MatmulModel m(100, MatmulVariant::kNaiveIjk, calib());
  EXPECT_DOUBLE_EQ(m.flops(), 2e6);
}

TEST(MatmulModel, NaiveTrafficBlowsUpBeyondCache) {
  // n = 1024: one matrix is 8 MiB > 2 MiB cache.
  const std::size_t n = 1024;
  const MatmulModel naive(n, MatmulVariant::kNaiveIjk, calib());
  const MatmulModel ikj(n, MatmulVariant::kInterchangedIkj, calib());
  const MatmulModel tiled(n, MatmulVariant::kTiled, calib());
  // Column-walking B costs a line per element: 8x the sequential traffic.
  EXPECT_NEAR(naive.dram_bytes() / ikj.dram_bytes(), 8.0, 0.5);
  // Tiling divides the n^3 term by the tile edge.
  EXPECT_LT(tiled.dram_bytes(), ikj.dram_bytes() / 4.0);
}

TEST(MatmulModel, SmallMatricesAreCacheResident) {
  // n = 128: 128 KiB per matrix, all three fit in the 2 MiB budget.
  const MatmulModel naive(128, MatmulVariant::kNaiveIjk, calib());
  const MatmulModel ikj(128, MatmulVariant::kInterchangedIkj, calib());
  EXPECT_DOUBLE_EQ(naive.dram_bytes(), ikj.dram_bytes());
}

TEST(MatmulModel, TileEdgeFitsThreeBlocks) {
  const MatmulModel m(4096, MatmulVariant::kTiled, calib());
  const std::size_t t = m.tile_edge();
  EXPECT_GE(t, 8u);
  EXPECT_LE(3 * t * t * sizeof(double), calib().cache_bytes * 4);
  // Doubling must not fit (maximality up to the power-of-two step).
  EXPECT_GT(3 * (2 * t) * (2 * t) * sizeof(double), calib().cache_bytes);
}

TEST(MatmulModel, TileEdgeCappedByMatrixOrder) {
  const MatmulModel m(16, MatmulVariant::kTiled, calib());
  EXPECT_LE(m.tile_edge(), 16u);
}

TEST(MatmulModel, PredictionsOrderLikeTheOptimizations) {
  const std::size_t n = 2048;
  const MatmulModel naive(n, MatmulVariant::kNaiveIjk, calib());
  const MatmulModel ikj(n, MatmulVariant::kInterchangedIkj, calib());
  const MatmulModel tiled(n, MatmulVariant::kTiled, calib());
  EXPECT_GT(naive.predict_traffic(), ikj.predict_traffic());
  EXPECT_GE(ikj.predict_traffic(), tiled.predict_traffic());
  // Coarse model cannot distinguish the variants.
  EXPECT_DOUBLE_EQ(naive.predict_coarse(), tiled.predict_coarse());
}

TEST(MatmulModel, TrafficNeverBelowCoarse) {
  for (std::size_t n : {64u, 256u, 1024u}) {
    const MatmulModel m(n, MatmulVariant::kTiled, calib());
    EXPECT_GE(m.predict_traffic(), m.predict_coarse() * 0.999) << n;
  }
}

TEST(MatmulModel, InstructionLevelUsesLatencyForNaive) {
  pe::microbench::OpCostTable ops;
  ops.set_cost(pe::microbench::Op::kFma, {4e-9, 1e-9});
  const MatmulModel naive(64, MatmulVariant::kNaiveIjk, calib());
  const MatmulModel ikj(64, MatmulVariant::kInterchangedIkj, calib());
  EXPECT_DOUBLE_EQ(naive.predict_instruction(ops), 64.0 * 64 * 64 * 4e-9);
  EXPECT_DOUBLE_EQ(ikj.predict_instruction(ops), 64.0 * 64 * 64 * 1e-9);
}

// ---------------------------------------------------------------- histogram

TEST(HistogramModel, SmallTableNeverMisses) {
  const HistogramModel m(1 << 20, 1 << 10, 0.0, calib());
  EXPECT_DOUBLE_EQ(m.update_miss_probability(), 0.0);
}

TEST(HistogramModel, UniformMissesScaleWithTableExcess) {
  // Table 4x the cache: resident fraction 1/4 -> miss 3/4.
  const std::size_t bins = calib().cache_bytes / 8 * 4;
  const HistogramModel m(1 << 20, bins, 0.0, calib());
  EXPECT_NEAR(m.update_miss_probability(), 0.75, 1e-9);
}

TEST(HistogramModel, SkewReducesMisses) {
  const std::size_t bins = calib().cache_bytes / 8 * 16;
  const HistogramModel uniform(1 << 20, bins, 0.0, calib());
  const HistogramModel skewed(1 << 20, bins, 1.2, calib());
  EXPECT_LT(skewed.update_miss_probability(),
            uniform.update_miss_probability() * 0.5);
}

TEST(HistogramModel, PredictTrafficAtLeastCoarse) {
  const HistogramModel m(1 << 20, 1 << 24, 0.0, calib());
  EXPECT_GE(m.predict_traffic(), m.predict_coarse());
  // Even a tiny table pays for streaming the input from DRAM.
  const HistogramModel tiny(1 << 20, 64, 0.0, calib());
  EXPECT_GE(tiny.predict_traffic(), tiny.predict_coarse());
}

TEST(HistogramModel, Validation) {
  EXPECT_THROW(HistogramModel(0, 8, 0.0, calib()), pe::Error);
  EXPECT_THROW(HistogramModel(8, 0, 0.0, calib()), pe::Error);
  EXPECT_THROW(HistogramModel(8, 8, -0.1, calib()), pe::Error);
}

// --------------------------------------------------------------------- spmv

TEST(SpmvModel, FlopsAreTwoNnz) {
  const SpmvModel m(100, 100, 1000, SpmvFormat::kCsr, 1.0, calib());
  EXPECT_DOUBLE_EQ(m.flops(), 2000.0);
}

TEST(SpmvModel, ScatteredColumnsCostMore) {
  const SpmvModel local(10000, 10000, 100000, SpmvFormat::kCsr, 1.0,
                        calib());
  const SpmvModel scattered(10000, 10000, 100000, SpmvFormat::kCsr, 0.0,
                            calib());
  EXPECT_GT(scattered.dram_bytes(), local.dram_bytes() * 2.0);
  EXPECT_GT(scattered.predict(), local.predict());
}

TEST(SpmvModel, CscScatterPaysReadModifyWrite) {
  const SpmvModel csr(10000, 10000, 100000, SpmvFormat::kCsr, 0.0, calib());
  const SpmvModel csc(10000, 10000, 100000, SpmvFormat::kCsc, 0.0, calib());
  EXPECT_GT(csc.dram_bytes(), csr.dram_bytes());
}

TEST(SpmvModel, CooCarriesBothIndexStreams) {
  const SpmvModel csr(10000, 10000, 100000, SpmvFormat::kCsr, 1.0, calib());
  const SpmvModel coo(10000, 10000, 100000, SpmvFormat::kCoo, 1.0, calib());
  EXPECT_GT(coo.dram_bytes(), csr.dram_bytes());
}

TEST(SpmvModel, SpmvIsMemoryBoundOnThisMachine) {
  const SpmvModel m(10000, 10000, 200000, SpmvFormat::kCsr, 0.5, calib());
  const double compute_time = m.flops() / calib().peak_flops;
  EXPECT_GT(m.predict(), compute_time);
}

TEST(SpmvModel, Validation) {
  EXPECT_THROW(SpmvModel(0, 1, 1, SpmvFormat::kCsr, 0.5, calib()),
               pe::Error);
  EXPECT_THROW(SpmvModel(1, 1, 0, SpmvFormat::kCsr, 0.5, calib()),
               pe::Error);
  EXPECT_THROW(SpmvModel(1, 1, 1, SpmvFormat::kCsr, 1.5, calib()),
               pe::Error);
}

}  // namespace
