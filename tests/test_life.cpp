// Tests for the Game of Life engines in perfeng/kernels/life.hpp —
// including differential testing of the bit-packed engine against the
// byte-per-cell reference.
#include "perfeng/kernels/life.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

using pe::kernels::LifeGrid;
using pe::kernels::LifeGridPacked;

TEST(Life, BlockIsStill) {
  LifeGrid g(4, 4);
  g.set(1, 1, true);
  g.set(1, 2, true);
  g.set(2, 1, true);
  g.set(2, 2, true);
  EXPECT_EQ(g.step(), g);
}

TEST(Life, BlinkerOscillatesWithPeriodTwo) {
  LifeGrid g(5, 5);
  g.set(2, 1, true);
  g.set(2, 2, true);
  g.set(2, 3, true);
  const LifeGrid next = g.step();
  EXPECT_TRUE(next.alive(1, 2));
  EXPECT_TRUE(next.alive(2, 2));
  EXPECT_TRUE(next.alive(3, 2));
  EXPECT_FALSE(next.alive(2, 1));
  EXPECT_EQ(next.step(), g);
}

TEST(Life, LonelyCellDies) {
  LifeGrid g(3, 3);
  g.set(1, 1, true);
  EXPECT_EQ(g.step().population(), 0u);
}

TEST(Life, BirthOnExactlyThreeNeighbours) {
  LifeGrid g(3, 3);
  g.set(0, 0, true);
  g.set(0, 1, true);
  g.set(1, 0, true);
  const auto next = g.step();
  EXPECT_TRUE(next.alive(1, 1));
}

TEST(Life, GliderTravelsDiagonally) {
  LifeGrid g(10, 10);
  g.place_glider(1, 1);
  LifeGrid current = g;
  for (int i = 0; i < 4; ++i) current = current.step();
  // After 4 generations a glider moves one cell down-right.
  LifeGrid expected(10, 10);
  expected.place_glider(2, 2);
  EXPECT_EQ(current, expected);
}

TEST(Life, DeadBorderKillsEdgeRunners) {
  // A blinker jammed against the border loses cells to the void.
  LifeGrid g(3, 5);
  g.set(0, 1, true);
  g.set(0, 2, true);
  g.set(0, 3, true);
  const auto next = g.step();
  EXPECT_EQ(next.population(), 2u);  // vertical pair below the center
  EXPECT_TRUE(next.alive(0, 2));
  EXPECT_TRUE(next.alive(1, 2));
}

TEST(Life, RenderShowsPopulation) {
  LifeGrid g(2, 2);
  g.set(0, 1, true);
  EXPECT_EQ(g.render(), ".#\n..\n");
}

TEST(Life, PopulationCounts) {
  pe::Rng rng(9);
  LifeGrid g(20, 20);
  g.randomize(0.3, rng);
  std::size_t manual = 0;
  for (std::size_t r = 0; r < 20; ++r)
    for (std::size_t c = 0; c < 20; ++c)
      if (g.alive(r, c)) ++manual;
  EXPECT_EQ(g.population(), manual);
}

// ------------------------------------------------------------ bit-packed

TEST(LifePacked, RoundTripsThroughUnpack) {
  pe::Rng rng(10);
  LifeGrid g(13, 77);
  g.randomize(0.4, rng);
  const LifeGridPacked packed(g);
  EXPECT_EQ(packed.population(), g.population());
  EXPECT_EQ(packed.unpack(), g);
}

TEST(LifePacked, SetAndGet) {
  LifeGridPacked p(4, 130);  // spans three words per row
  p.set(2, 0, true);
  p.set(2, 63, true);
  p.set(2, 64, true);
  p.set(2, 129, true);
  EXPECT_TRUE(p.alive(2, 0));
  EXPECT_TRUE(p.alive(2, 63));
  EXPECT_TRUE(p.alive(2, 64));
  EXPECT_TRUE(p.alive(2, 129));
  EXPECT_FALSE(p.alive(2, 65));
  p.set(2, 64, false);
  EXPECT_FALSE(p.alive(2, 64));
  EXPECT_THROW((void)p.alive(4, 0), pe::Error);
}

class LifeDifferential
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(LifeDifferential, PackedMatchesReferenceOverManySteps) {
  const auto [rows, cols] = GetParam();
  pe::Rng rng(rows * 131 + cols);
  LifeGrid reference(rows, cols);
  reference.randomize(0.35, rng);
  LifeGridPacked packed(reference);

  for (int gen = 0; gen < 8; ++gen) {
    reference = reference.step();
    packed = packed.step();
    ASSERT_EQ(packed.unpack(), reference)
        << "diverged at generation " << gen << " for " << rows << "x"
        << cols;
  }
}

// Widths around the 64-bit word boundary are the hard cases.
INSTANTIATE_TEST_SUITE_P(
    Shapes, LifeDifferential,
    ::testing::Values(std::make_pair(8, 8), std::make_pair(5, 63),
                      std::make_pair(5, 64), std::make_pair(5, 65),
                      std::make_pair(3, 128), std::make_pair(16, 129),
                      std::make_pair(1, 200), std::make_pair(64, 1)));

TEST(LifePacked, GliderMatchesReferenceEngine) {
  LifeGrid g(12, 70);  // crosses a word boundary as it flies
  g.place_glider(1, 58);
  LifeGridPacked p(g);
  for (int gen = 0; gen < 20; ++gen) {
    g = g.step();
    p = p.step();
  }
  EXPECT_EQ(p.unpack(), g);
}

TEST(LifePacked, EmptyUniverseStaysEmpty) {
  LifeGridPacked p(6, 100);
  EXPECT_EQ(p.step().population(), 0u);
}

}  // namespace
