// Tests for the single-flight result cache in perfeng/service.
#include "perfeng/service/result_cache.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>

#include "perfeng/resilience/fault_injection.hpp"

namespace {

using pe::service::Outcome;
using pe::service::ResultCache;
using pe::service::ShedReason;
using pe::service::TerminalState;
using Role = pe::service::ResultCache::Role;

Outcome completed_outcome(const std::string& label) {
  Outcome o;
  o.state = TerminalState::kCompleted;
  o.measurement.label = label;
  return o;
}

TEST(ResultCache, FirstLookupLeads) {
  ResultCache cache;
  const auto look = cache.acquire("hash", "matmul/512");
  EXPECT_EQ(look.role, Role::kLead);
  EXPECT_TRUE(look.future.valid());
  EXPECT_EQ(cache.in_flight_entries(), 1u);
  EXPECT_EQ(cache.stats().leads, 1u);
}

TEST(ResultCache, CompleteTurnsLeadIntoHit) {
  ResultCache cache;
  (void)cache.acquire("hash", "k");
  cache.complete("hash", "k", completed_outcome("k"));
  EXPECT_EQ(cache.in_flight_entries(), 0u);
  EXPECT_EQ(cache.done_entries(), 1u);
  const auto look = cache.acquire("hash", "k");
  EXPECT_EQ(look.role, Role::kHit);
  // A hit's future is already resolved: no waiting, no re-run.
  EXPECT_EQ(look.future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(look.future.get().measurement.label, "k");
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ResultCache, ConcurrentIdenticalLookupsJoinTheLeader) {
  ResultCache cache;
  const auto lead = cache.acquire("hash", "k");
  ASSERT_EQ(lead.role, Role::kLead);
  const auto join1 = cache.acquire("hash", "k");
  const auto join2 = cache.acquire("hash", "k");
  EXPECT_EQ(join1.role, Role::kJoined);
  EXPECT_EQ(join2.role, Role::kJoined);
  EXPECT_EQ(cache.stats().joins, 2u);
  // Joiners wait on the leader's future; complete resolves all of them.
  cache.complete("hash", "k", completed_outcome("k"));
  EXPECT_EQ(join1.future.get().state, TerminalState::kCompleted);
  EXPECT_EQ(join2.future.get().state, TerminalState::kCompleted);
}

TEST(ResultCache, JoinersShareTheLeadersFateEvenWhenItSheds) {
  ResultCache cache;
  (void)cache.acquire("hash", "k");
  const auto join = cache.acquire("hash", "k");
  Outcome shed;
  shed.state = TerminalState::kShed;
  shed.shed_reason = ShedReason::kQueueFull;
  cache.complete("hash", "k", shed);
  const Outcome seen = join.future.get();
  EXPECT_EQ(seen.state, TerminalState::kShed);
  EXPECT_EQ(seen.shed_reason, ShedReason::kQueueFull);
}

TEST(ResultCache, OnlyCompletedOutcomesAreCached) {
  ResultCache cache;
  (void)cache.acquire("hash", "k");
  Outcome failed;
  failed.state = TerminalState::kFailed;
  failed.error = "kernel threw";
  cache.complete("hash", "k", failed);
  EXPECT_EQ(cache.done_entries(), 0u);
  // The key is vacated: the next submission retries fresh as a leader.
  EXPECT_EQ(cache.acquire("hash", "k").role, Role::kLead);
}

TEST(ResultCache, CalibrationHashKeepsMachinesApart) {
  ResultCache cache;
  (void)cache.acquire("laptop", "k");
  cache.complete("laptop", "k", completed_outcome("laptop-k"));
  // Same workload on a different machine calibration: not a hit.
  EXPECT_EQ(cache.acquire("cluster", "k").role, Role::kLead);
  EXPECT_EQ(cache.acquire("laptop", "k").role, Role::kHit);
}

TEST(ResultCache, FifoEvictionBoundsTheDoneCache) {
  ResultCache cache(2);
  for (const std::string key : {"a", "b", "c"}) {
    (void)cache.acquire("hash", key);
    cache.complete("hash", key, completed_outcome(key));
  }
  EXPECT_EQ(cache.done_entries(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.acquire("hash", "a").role, Role::kLead);  // evicted
  EXPECT_EQ(cache.acquire("hash", "b").role, Role::kHit);
  EXPECT_EQ(cache.acquire("hash", "c").role, Role::kHit);
}

TEST(ResultCache, InvalidateDropsCompletedEntriesOnly) {
  ResultCache cache;
  (void)cache.acquire("hash", "done");
  cache.complete("hash", "done", completed_outcome("done"));
  const auto lead = cache.acquire("hash", "running");
  ASSERT_EQ(lead.role, Role::kLead);
  cache.invalidate();
  EXPECT_EQ(cache.done_entries(), 0u);
  EXPECT_EQ(cache.in_flight_entries(), 1u);
  EXPECT_EQ(cache.acquire("hash", "done").role, Role::kLead);
  EXPECT_EQ(cache.acquire("hash", "running").role, Role::kJoined);
}

TEST(ResultCache, InjectedCacheFaultDegradesToBypass) {
  // A faulting cache must cost performance, never correctness: the
  // lookup degrades to "run without caching", and the submission lives.
  pe::resilience::FaultPlan plan;
  plan.faults.push_back({.site = std::string(pe::fault_sites::kServiceCache),
                         .probability = 1.0});
  pe::resilience::ScopedFaultInjection scope(std::move(plan));
  ResultCache cache;
  const auto look = cache.acquire("hash", "k");
  EXPECT_EQ(look.role, Role::kBypass);
  EXPECT_EQ(cache.in_flight_entries(), 0u);
  EXPECT_EQ(cache.stats().bypasses, 1u);
  // Bypass callers may call complete unconditionally; it is a no-op.
  EXPECT_NO_THROW(cache.complete("hash", "k", completed_outcome("k")));
  EXPECT_EQ(cache.done_entries(), 0u);
}

}  // namespace
