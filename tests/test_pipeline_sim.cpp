// Tests for the OSACA-style instruction-scheduler simulator in
// perfeng/sim/pipeline_sim.hpp.
#include "perfeng/sim/pipeline_sim.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

using pe::sim::Instr;
using pe::sim::PipelineSimulator;

TEST(PipelineSim, SingleCarriedChainRunsAtLatency) {
  // One accumulator, FMA latency 4: the classic 4 cycles/iteration.
  const auto report =
      PipelineSimulator::fma_reduction(1, 2, 4.0).run();
  EXPECT_NEAR(report.cycles_per_iteration, 4.0, 0.1);
  EXPECT_TRUE(report.latency_limited);
  EXPECT_NE(report.bottleneck().find("dependency"), std::string::npos);
}

TEST(PipelineSim, EnoughChainsReachPortThroughput) {
  // 8 chains on 2 ports, latency 4: 4 cycles/iteration = 0.5 per element,
  // the port-throughput limit.
  const auto report =
      PipelineSimulator::fma_reduction(8, 2, 4.0).run();
  EXPECT_NEAR(report.cycles_per_iteration, 4.0, 0.1);
  EXPECT_NEAR(report.cycles_per_iteration / 8.0, 0.5, 0.02);
  EXPECT_FALSE(report.latency_limited);
}

TEST(PipelineSim, ChainSweepReproducesTheAssignmentCurve) {
  // Per-element cost falls as latency/chains until the ports saturate.
  double previous = 1e9;
  for (int chains : {1, 2, 4, 8}) {
    const auto report =
        PipelineSimulator::fma_reduction(chains, 2, 4.0).run();
    const double per_element = report.cycles_per_iteration / chains;
    EXPECT_LE(per_element, previous + 0.02) << chains;
    previous = per_element;
  }
  EXPECT_NEAR(previous, 0.5, 0.05);  // saturated at 2 ports
}

TEST(PipelineSim, IndependentInstructionsPackOntoPorts) {
  PipelineSimulator sim(2);
  for (int i = 0; i < 6; ++i) {
    Instr add;
    add.name = "add";
    add.latency = 1.0;
    add.ports = {0, 1};
    sim.add_instr(std::move(add));
  }
  // 6 single-cycle instructions on 2 ports: 3 cycles/iteration.
  EXPECT_NEAR(sim.run().cycles_per_iteration, 3.0, 0.1);
}

TEST(PipelineSim, SinglePortInstructionSerializes) {
  PipelineSimulator sim(2);
  for (int i = 0; i < 4; ++i) {
    Instr div;
    div.name = "div";
    div.latency = 1.0;
    div.ports = {0};  // only port 0 divides
    sim.add_instr(std::move(div));
  }
  const auto report = sim.run();
  EXPECT_NEAR(report.cycles_per_iteration, 4.0, 0.1);
  EXPECT_EQ(report.critical_port, 0);
}

TEST(PipelineSim, IntraIterationChainAddsLatencyOnce) {
  // mul -> add chain, not carried: iterations overlap fully, so the
  // steady state is throughput-bound (2 instrs / 2 ports = 1/iter).
  PipelineSimulator sim(2);
  Instr mul;
  mul.name = "mul";
  mul.latency = 5.0;
  mul.ports = {0, 1};
  const int mul_id = sim.add_instr(std::move(mul));
  Instr add;
  add.name = "add";
  add.latency = 3.0;
  add.ports = {0, 1};
  add.deps = {mul_id};
  sim.add_instr(std::move(add));
  EXPECT_NEAR(sim.run().cycles_per_iteration, 1.0, 0.1);
}

TEST(PipelineSim, Validation) {
  EXPECT_THROW(PipelineSimulator(0), pe::Error);
  PipelineSimulator sim(1);
  Instr bad;
  bad.ports = {};
  EXPECT_THROW(sim.add_instr(bad), pe::Error);
  bad.ports = {5};
  EXPECT_THROW(sim.add_instr(bad), pe::Error);
  bad.ports = {0};
  bad.latency = 0.0;
  EXPECT_THROW(sim.add_instr(bad), pe::Error);
  bad.latency = 1.0;
  bad.deps = {0};  // no instruction 0 yet
  EXPECT_THROW(sim.add_instr(bad), pe::Error);
  EXPECT_THROW((void)sim.run(), pe::Error);  // empty body
}

}  // namespace
