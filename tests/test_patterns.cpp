// Tests for the performance-pattern detectors in perfeng/counters.
#include "perfeng/counters/patterns.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

using namespace pe::counters;

TEST(Patterns, Names) {
  EXPECT_EQ(pattern_name(Pattern::kFalseSharing), "false sharing");
  EXPECT_EQ(pattern_name(Pattern::kLoadImbalance), "load imbalance");
}

TEST(BadSpatialLocality, FiresOnColumnWalkingMissRates) {
  CounterSet c;
  c.set(kMemAccesses, 1000);
  c.set(kL1Misses, 900);  // ~1 miss/access vs 1/8 streaming expectation
  const auto r = detect_bad_spatial_locality(c);
  EXPECT_TRUE(r.detected);
  EXPECT_GT(r.severity, 0.5);
  EXPECT_NE(r.evidence.find("L1 miss rate"), std::string::npos);
}

TEST(BadSpatialLocality, QuietOnStreamingMissRates) {
  CounterSet c;
  c.set(kMemAccesses, 1000);
  c.set(kL1Misses, 125);  // exactly the 8-byte/64-byte streaming rate
  EXPECT_FALSE(detect_bad_spatial_locality(c).detected);
}

TEST(BandwidthSaturation, FiresNearTheRoof) {
  const auto r = detect_bandwidth_saturation(9e9, 1e10);
  EXPECT_TRUE(r.detected);
  EXPECT_NEAR(r.severity, 0.9, 1e-9);
}

TEST(BandwidthSaturation, QuietWellBelowTheRoof) {
  EXPECT_FALSE(detect_bandwidth_saturation(2e9, 1e10).detected);
}

TEST(BandwidthSaturation, Validation) {
  EXPECT_THROW((void)detect_bandwidth_saturation(1.0, 0.0), pe::Error);
  EXPECT_THROW((void)detect_bandwidth_saturation(1.0, 1.0, 1.5),
               pe::Error);
}

TEST(BranchUnpredictability, FiresOnRandomBranches) {
  CounterSet c;
  c.set(kBranches, 10000);
  c.set(kBranchMisses, 4800);
  const auto r = detect_branch_unpredictability(c);
  EXPECT_TRUE(r.detected);
  EXPECT_GT(r.severity, 0.9);
}

TEST(BranchUnpredictability, QuietOnPredictableBranches) {
  CounterSet c;
  c.set(kBranches, 10000);
  c.set(kBranchMisses, 50);
  EXPECT_FALSE(detect_branch_unpredictability(c).detected);
}

TEST(LoadImbalance, FiresWhenOneWorkerDominates) {
  const std::vector<double> times = {1.0, 1.0, 1.0, 4.0};
  const auto r = detect_load_imbalance(times);
  EXPECT_TRUE(r.detected);
  EXPECT_NE(r.evidence.find("max/mean"), std::string::npos);
}

TEST(LoadImbalance, QuietWhenBalanced) {
  const std::vector<double> times = {1.0, 1.05, 0.97, 1.02};
  EXPECT_FALSE(detect_load_imbalance(times).detected);
}

TEST(LoadImbalance, Validation) {
  EXPECT_THROW((void)detect_load_imbalance(std::vector<double>{1.0}),
               pe::Error);
  EXPECT_THROW(
      (void)detect_load_imbalance(std::vector<double>{1.0, -1.0}),
      pe::Error);
}

TEST(FalseSharing, FiresWhenPaddingHelps) {
  const auto r = detect_false_sharing(2.0, 0.5);
  EXPECT_TRUE(r.detected);
  EXPECT_NE(r.evidence.find("4"), std::string::npos);  // 4x speedup
}

TEST(FalseSharing, QuietWhenPaddingIsNeutral) {
  EXPECT_FALSE(detect_false_sharing(1.0, 0.95).detected);
}

TEST(DetectAll, RunsOnlyApplicableDetectors) {
  Diagnostics d;
  d.counters.set(kMemAccesses, 1000);
  d.counters.set(kL1Misses, 500);
  EXPECT_EQ(detect_all(d).size(), 1u);

  d.counters.set(kBranches, 100);
  d.counters.set(kBranchMisses, 50);
  EXPECT_EQ(detect_all(d).size(), 2u);

  d.per_worker_seconds = {1.0, 3.0};
  d.achieved_bandwidth = 9e9;
  d.sustainable_bandwidth = 1e10;
  d.shared_seconds = 2.0;
  d.padded_seconds = 1.0;
  const auto all = detect_all(d);
  EXPECT_EQ(all.size(), 5u);
  for (const auto& r : all) EXPECT_FALSE(r.evidence.empty());
}

TEST(DetectAll, EmptyDiagnosticsDetectNothing) {
  EXPECT_TRUE(detect_all(Diagnostics{}).empty());
}

}  // namespace
