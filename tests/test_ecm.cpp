// Tests for the ECM model in perfeng/models/ecm.hpp.
#include "perfeng/models/ecm.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

using pe::models::EcmModel;

TEST(Ecm, DataTimeSumsTransfers) {
  EcmModel m(2e-9);
  m.add_transfer("L2", "L1", 1e-9);
  m.add_transfer("L3", "L2", 1.5e-9);
  m.add_transfer("MEM", "L3", 2.5e-9);
  EXPECT_DOUBLE_EQ(m.data_seconds(), 5e-9);
  EXPECT_EQ(m.transfers().size(), 3u);
}

TEST(Ecm, OverlappedIsMaxOfCoreAndData) {
  EcmModel core_bound(10e-9);
  core_bound.add_transfer("MEM", "L1", 4e-9);
  EXPECT_DOUBLE_EQ(core_bound.predict_overlapped(), 10e-9);

  EcmModel data_bound(2e-9);
  data_bound.add_transfer("MEM", "L1", 7e-9);
  EXPECT_DOUBLE_EQ(data_bound.predict_overlapped(), 7e-9);
}

TEST(Ecm, SerialIsSum) {
  EcmModel m(3e-9);
  m.add_transfer("MEM", "L1", 4e-9);
  EXPECT_DOUBLE_EQ(m.predict_serial(), 7e-9);
}

TEST(Ecm, SerialNeverBelowOverlapped) {
  EcmModel m(1e-9);
  m.add_transfer("L2", "L1", 2e-9);
  m.add_transfer("MEM", "L2", 3e-9);
  EXPECT_GE(m.predict_serial(), m.predict_overlapped());
}

TEST(Ecm, BracketsAcceptsMeasurementBetweenBounds) {
  EcmModel m(4e-9);
  m.add_transfer("MEM", "L1", 4e-9);
  // overlapped = 4 ns, serial = 8 ns.
  EXPECT_TRUE(m.brackets(5e-9, 0.0));
  EXPECT_TRUE(m.brackets(8e-9, 0.0));
  EXPECT_FALSE(m.brackets(10e-9, 0.0));
  EXPECT_FALSE(m.brackets(2e-9, 0.0));
}

TEST(Ecm, SlackWidensBounds) {
  EcmModel m(4e-9);
  m.add_transfer("MEM", "L1", 4e-9);
  EXPECT_FALSE(m.brackets(9e-9, 0.0));
  EXPECT_TRUE(m.brackets(9e-9, 0.15));
}

TEST(Ecm, PureComputeModel) {
  const EcmModel m(5e-9);
  EXPECT_DOUBLE_EQ(m.predict_overlapped(), 5e-9);
  EXPECT_DOUBLE_EQ(m.predict_serial(), 5e-9);
}

TEST(Ecm, Validation) {
  EXPECT_THROW(EcmModel(-1e-9), pe::Error);
  EcmModel m(1e-9);
  EXPECT_THROW(m.add_transfer("a", "b", -1.0), pe::Error);
  EXPECT_THROW((void)m.brackets(0.0), pe::Error);
  EXPECT_THROW((void)m.brackets(1e-9, -0.1), pe::Error);
}

}  // namespace
