// AccessChecker adoption for the shipped parallel kernels: the packed
// matmul and the balanced SpMV run under the race lint and must prove
// their partitions disjoint-write (while still computing the right
// answer). This is the guarantee Assignment 1/3 student baselines build
// on — see docs/analysis.md.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "perfeng/analysis/access_checker.hpp"
#include "perfeng/common/rng.hpp"
#include "perfeng/kernels/graph.hpp"
#include "perfeng/kernels/histogram.hpp"
#include "perfeng/kernels/matmul.hpp"
#include "perfeng/kernels/sparse.hpp"
#include "perfeng/kernels/stencil.hpp"
#include "perfeng/kernels/transpose.hpp"
#include "perfeng/parallel/thread_pool.hpp"

namespace {

using pe::analysis::AccessChecker;
using pe::analysis::RaceReport;
using pe::analysis::ScopedAccessCheck;

TEST(KernelsUnderChecker, PackedMatmulPartitionIsDisjointWrite) {
  pe::ThreadPool pool(4);
  // Remainder shape: exercises edge tiles of the register blocking.
  pe::kernels::Matrix a(50, 70), b(70, 90), out(50, 90), reference(50, 90);
  pe::Rng rng(7);
  a.randomize(rng);
  b.randomize(rng);
  pe::kernels::matmul_interchanged(a, b, reference);

  // Small panels force several jc/pc/ic iterations, so the checker sees
  // many loops and many chunks, not one giant block.
  pe::kernels::MatmulBlocking blocking{.mc = 16, .kc = 32, .nc = 32};
  AccessChecker checker;
  {
    ScopedAccessCheck guard(checker);
    pe::kernels::matmul_parallel_packed(a, b, out, pool, blocking);
  }
  EXPECT_LT(out.max_abs_diff(reference), 1e-10);

  const RaceReport report = checker.report();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_GE(report.loops, 3u);  // zero-fill + pack-B + compute sweeps
  EXPECT_GT(report.intervals, 0u);
}

TEST(KernelsUnderChecker, BalancedSpmvPartitionIsDisjointWrite) {
  pe::ThreadPool pool(4);
  pe::Rng rng(13);
  // Power-law rows: the shape that makes the balanced partition earn its
  // keep (a few heavy rows, many light ones).
  pe::kernels::CooMatrix coo = pe::kernels::generate_sparse(
      600, 600, 0.02, pe::kernels::SparsityPattern::kPowerLaw, rng);
  const pe::kernels::CsrMatrix csr = pe::kernels::coo_to_csr(coo);
  std::vector<double> x(csr.cols, 1.0);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = double(i % 17) * 0.25;
  std::vector<double> expected(csr.rows, 0.0);
  pe::kernels::spmv_csr(csr, x, expected);

  std::vector<double> y(csr.rows, 0.0);
  AccessChecker checker;
  {
    ScopedAccessCheck guard(checker);
    pe::kernels::spmv_csr_parallel_balanced(csr, x, y, pool);
  }
  EXPECT_EQ(y, expected);  // balanced variant matches serial exactly

  const RaceReport report = checker.report();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_EQ(report.loops, 1u);
  EXPECT_GE(report.chunks, 2u);
}

TEST(KernelsUnderChecker, DynamicSpmvPartitionIsDisjointWrite) {
  pe::ThreadPool pool(3);
  pe::Rng rng(29);
  pe::kernels::CooMatrix coo = pe::kernels::generate_sparse(
      500, 500, 0.01, pe::kernels::SparsityPattern::kUniform, rng);
  const pe::kernels::CsrMatrix csr = pe::kernels::coo_to_csr(coo);
  const std::vector<double> x(csr.cols, 0.5);
  std::vector<double> y(csr.rows, 0.0);

  AccessChecker checker;
  {
    ScopedAccessCheck guard(checker);
    pe::kernels::spmv_csr_parallel(csr, x, y, pool);
  }
  const RaceReport report = checker.report();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_GE(report.chunks, 2u);
}

TEST(KernelsUnderChecker, SellSpmvChunkPartitionIsDisjointWrite) {
  pe::ThreadPool pool(4);
  pe::Rng rng(31);
  // Power-law + remainder row count: heavy chunks, a partial tail chunk.
  const auto csr = pe::kernels::coo_to_csr(pe::kernels::generate_sparse(
      517, 400, 0.02, pe::kernels::SparsityPattern::kPowerLaw, rng));
  const auto sell = pe::kernels::csr_to_sell(csr, 32);
  std::vector<double> x(csr.cols);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = double(i % 13) * 0.5;
  std::vector<double> expected(csr.rows, 0.0);
  pe::kernels::spmv_csr(csr, x, expected);

  std::vector<double> y(csr.rows, -1.0);
  AccessChecker checker;
  {
    ScopedAccessCheck guard(checker);
    pe::kernels::spmv_sell_parallel(sell, x, y, pool);
  }
  EXPECT_EQ(y, expected);  // SELL promises the exact CSR summation order

  const RaceReport report = checker.report();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_GE(report.chunks, 2u);
}

TEST(KernelsUnderChecker, EllSpmvRowPartitionIsDisjointWrite) {
  pe::ThreadPool pool(4);
  pe::Rng rng(37);
  const auto csr = pe::kernels::coo_to_csr(pe::kernels::generate_sparse(
      700, 300, 0.01, pe::kernels::SparsityPattern::kBanded, rng));
  const auto ell = pe::kernels::csr_to_ell(csr);
  std::vector<double> x(csr.cols, 0.75);
  std::vector<double> expected(csr.rows, 0.0);
  pe::kernels::spmv_csr(csr, x, expected);

  std::vector<double> y(csr.rows, -1.0);
  AccessChecker checker;
  {
    ScopedAccessCheck guard(checker);
    pe::kernels::spmv_ell_parallel(ell, x, y, pool);
  }
  EXPECT_EQ(y, expected);

  const RaceReport report = checker.report();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_GE(report.chunks, 2u);
}

TEST(KernelsUnderChecker, CooSpmvEntryPartitionIsDisjointWrite) {
  pe::ThreadPool pool(4);
  pe::Rng rng(41);
  // Power-law: many entries share heavy rows, so the entry-balanced
  // boundaries must visibly snap to row edges to stay disjoint.
  const auto coo = pe::kernels::csr_to_coo(pe::kernels::coo_to_csr(
      pe::kernels::generate_sparse(
          450, 450, 0.02, pe::kernels::SparsityPattern::kPowerLaw, rng)));
  std::vector<double> x(coo.cols);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = double(i % 7) - 3.0;
  std::vector<double> expected(coo.rows, 0.0);
  pe::kernels::spmv_coo(coo, x, expected);

  std::vector<double> y(coo.rows, -1.0);
  AccessChecker checker;
  {
    ScopedAccessCheck guard(checker);
    pe::kernels::spmv_coo_parallel(coo, x, y, pool);
  }
  EXPECT_EQ(y, expected);

  const RaceReport report = checker.report();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_GE(report.chunks, 2u);
}

TEST(KernelsUnderChecker, StencilRowPartitionIsDisjointWrite) {
  pe::ThreadPool pool(4);
  pe::kernels::Grid2D in(40, 36), out(40, 36), reference(40, 36);
  for (std::size_t r = 0; r < in.rows(); ++r)
    for (std::size_t c = 0; c < in.cols(); ++c)
      in.at(r, c) = double((r * 7 + c * 3) % 11) * 0.1;
  pe::kernels::stencil_step_naive(in, reference);

  AccessChecker checker;
  {
    ScopedAccessCheck guard(checker);
    pe::kernels::stencil_step_parallel(in, out, pool);
  }
  EXPECT_LT(out.max_abs_diff(reference), 1e-12);

  // Halo reads overlap between neighbouring chunks; writes never do.
  const RaceReport report = checker.report();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_GE(report.chunks, 2u);
}

TEST(KernelsUnderChecker, HistogramVariantsClaimTheirIndexReads) {
  pe::ThreadPool pool(4);
  pe::Rng rng(17);
  const auto indices =
      pe::kernels::generate_zipf_indices(20000, 256, 1.1, rng);
  std::vector<std::uint64_t> expected(256, 0);
  pe::kernels::histogram_serial(indices, expected);

  for (const bool atomic_variant : {true, false}) {
    std::vector<std::uint64_t> counts(256, 0);
    AccessChecker checker;
    {
      ScopedAccessCheck guard(checker);
      if (atomic_variant)
        pe::kernels::histogram_parallel_atomic(indices, counts, pool);
      else
        pe::kernels::histogram_parallel_private(indices, counts, pool);
    }
    EXPECT_EQ(counts, expected);
    const RaceReport report = checker.report();
    EXPECT_TRUE(report.clean()) << report.to_string();
    EXPECT_GT(report.intervals, 0u);
  }
}

TEST(KernelsUnderChecker, TransposeParallelOutputSlabsAreDisjoint) {
  pe::ThreadPool pool(4);
  pe::Rng rng(23);
  pe::kernels::Matrix in(45, 33), out(33, 45), reference(33, 45);
  in.randomize(rng);
  pe::kernels::transpose_naive(in, reference);

  AccessChecker checker;
  {
    ScopedAccessCheck guard(checker);
    pe::kernels::transpose_parallel(in, out, pool, /*block=*/8);
  }
  EXPECT_EQ(out, reference);

  const RaceReport report = checker.report();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_GE(report.chunks, 2u);
}

TEST(KernelsUnderChecker, PagerankPrivateAccumulatorsAreDisjoint) {
  pe::ThreadPool pool(4);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  const std::uint32_t n = 200;
  for (std::uint32_t v = 0; v < n; ++v) {
    edges.push_back({v, (v + 1) % n});
    edges.push_back({v, (v * 7 + 3) % n});
    if (v % 13 == 0) edges.push_back({v, 0});
  }
  const auto g = pe::kernels::Graph::from_edges(n, edges);
  const auto expected = pe::kernels::pagerank(g);

  std::vector<double> ranks;
  AccessChecker checker;
  {
    ScopedAccessCheck guard(checker);
    ranks = pe::kernels::pagerank_parallel(g, pool);
  }
  ASSERT_EQ(ranks.size(), expected.size());
  for (std::size_t v = 0; v < ranks.size(); ++v)
    EXPECT_NEAR(ranks[v], expected[v], 1e-9);

  const RaceReport report = checker.report();
  EXPECT_TRUE(report.clean()) << report.to_string();
  EXPECT_GE(report.loops, 1u);
}

TEST(KernelsUnderChecker, InstrumentationIsInertWithoutAChecker) {
  // No hook installed: the instrumented kernels must behave identically
  // (this also guards the fast path the perf-smoke CI job measures).
  pe::ThreadPool pool(2);
  pe::kernels::Matrix a(24, 24), b(24, 24), out(24, 24), reference(24, 24);
  pe::Rng rng(3);
  a.randomize(rng);
  b.randomize(rng);
  pe::kernels::matmul_interchanged(a, b, reference);
  pe::kernels::matmul_parallel_packed(a, b, out, pool);
  EXPECT_LT(out.max_abs_diff(reference), 1e-10);
}

}  // namespace
