// Tests for the ThreadPool substrate in perfeng/parallel/thread_pool.hpp.
#include "perfeng/parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "perfeng/common/error.hpp"

namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  pe::ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SizeMatchesConstruction) {
  pe::ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroWorkersRejected) {
  EXPECT_THROW(pe::ThreadPool(0), pe::Error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  pe::ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  pe::ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, TasksReturnValues) {
  pe::ThreadPool pool(2);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 20; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, RunOnAllUsesDistinctThreads) {
  pe::ThreadPool pool(3);
  std::mutex m;
  std::set<std::thread::id> ids;
  std::set<std::size_t> indices;
  pool.run_on_all([&](std::size_t w) {
    std::lock_guard lock(m);
    ids.insert(std::this_thread::get_id());
    indices.insert(w);
  });
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_EQ(indices, (std::set<std::size_t>{0, 1, 2}));
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    pe::ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) pool.submit([&counter] { ++counter; });
  }  // destructor must wait for all 100
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(pe::ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPool, TasksMaySubmitTasks) {
  pe::ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    return pool.submit([] { return 7; });
  });
  EXPECT_EQ(outer.get().get(), 7);
}

}  // namespace
