// Tests for the ThreadPool substrate in perfeng/parallel/thread_pool.hpp.
#include "perfeng/parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "perfeng/common/error.hpp"
#include "perfeng/resilience/fault_injection.hpp"

namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  pe::ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SizeMatchesConstruction) {
  pe::ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroWorkersRejected) {
  EXPECT_THROW(pe::ThreadPool(0), pe::Error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  pe::ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  pe::ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, TasksReturnValues) {
  pe::ThreadPool pool(2);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 20; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, RunOnAllUsesDistinctThreads) {
  pe::ThreadPool pool(3);
  std::mutex m;
  std::set<std::thread::id> ids;
  std::set<std::size_t> indices;
  pool.run_on_all([&](std::size_t w) {
    std::lock_guard lock(m);
    ids.insert(std::this_thread::get_id());
    indices.insert(w);
  });
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_EQ(indices, (std::set<std::size_t>{0, 1, 2}));
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    pe::ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) pool.submit([&counter] { ++counter; });
  }  // destructor must wait for all 100
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(pe::ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPool, TasksMaySubmitTasks) {
  pe::ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    return pool.submit([] { return 7; });
  });
  EXPECT_EQ(outer.get().get(), 7);
}

TEST(ThreadPool, ThrowingTasksLeaveEveryWorkerAlive) {
  pe::ThreadPool pool(2);
  for (int round = 0; round < 4; ++round) {
    auto bad = pool.submit([]() -> int { throw pe::Error("task failed"); });
    EXPECT_THROW(bad.get(), pe::Error);
  }
  // The pool still has both workers processing after the carnage.
  auto ok = pool.submit([] { return 5; });
  EXPECT_EQ(ok.get(), 5);
  std::mutex m;
  std::set<std::thread::id> ids;
  pool.run_on_all([&](std::size_t) {
    std::lock_guard lock(m);
    ids.insert(std::this_thread::get_id());
  });
  EXPECT_EQ(ids.size(), 2u);
  // Packaged tasks carry their own exceptions; none escaped into a worker.
  EXPECT_EQ(pool.escaped_exceptions(), 0u);
}

TEST(ThreadPool, RunOnAllRethrowsOnlyAfterEveryLaneFinishes) {
  pe::ThreadPool pool(3);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.run_on_all([&](std::size_t worker) {
    ++ran;
    if (worker == 1) throw std::runtime_error("lane down");
  }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 3);  // no lane was abandoned mid-flight
  auto f = pool.submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);  // and the pool is not wedged
}

TEST(ThreadPool, InjectedWorkerFaultsAreAbsorbedNotFatal) {
  pe::resilience::FaultPlan plan;
  plan.faults.push_back(
      {.site = std::string(pe::fault_sites::kPoolWorker), .max_fires = 2});
  pe::resilience::ScopedFaultInjection scope(std::move(plan));
  pe::ThreadPool pool(2);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 6; ++i)
    futures.push_back(pool.submit([i] { return i; }));
  for (int i = 0; i < 6; ++i) EXPECT_EQ(futures[i].get(), i);  // none dropped
  EXPECT_EQ(pool.absorbed_faults(), 2u);
}

}  // namespace
