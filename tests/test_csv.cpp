// Tests for the CSV parser/writer in perfeng/common/csv.hpp.
#include "perfeng/common/csv.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "perfeng/common/error.hpp"
#include "perfeng/resilience/fault_injection.hpp"

namespace {

TEST(Csv, ParsesHeaderAndRows) {
  const auto doc = pe::parse_csv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_EQ(doc.header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(doc.rows[1], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(Csv, HandlesMissingTrailingNewline) {
  const auto doc = pe::parse_csv("x,y\n7,8");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][1], "8");
}

TEST(Csv, HandlesCrlf) {
  const auto doc = pe::parse_csv("x,y\r\n1,2\r\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "1");
}

TEST(Csv, QuotedFieldsKeepCommasAndQuotes) {
  const auto doc = pe::parse_csv("name,note\n\"a,b\",\"he said \"\"hi\"\"\"\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "a,b");
  EXPECT_EQ(doc.rows[0][1], "he said \"hi\"");
}

TEST(Csv, QuotedFieldMayContainNewline) {
  const auto doc = pe::parse_csv("a,b\n\"line1\nline2\",x\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "line1\nline2");
}

TEST(Csv, RaggedRowThrows) {
  EXPECT_THROW(pe::parse_csv("a,b\n1\n"), pe::Error);
  EXPECT_THROW(pe::parse_csv("a,b\n1,2,3\n"), pe::Error);
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(pe::parse_csv("a\n\"oops\n"), pe::Error);
}

TEST(Csv, ColumnLookup) {
  const auto doc = pe::parse_csv("year,count\n2020,5\n");
  EXPECT_EQ(doc.column("year"), 0u);
  EXPECT_EQ(doc.column("count"), 1u);
  EXPECT_THROW(doc.column("missing"), pe::Error);
}

TEST(Csv, EmptyFieldsPreserved) {
  const auto doc = pe::parse_csv("a,b,c\n,,\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"", "", ""}));
}

TEST(Csv, ParseSingleLine) {
  const auto fields = pe::parse_csv_line("1,\"two, three\",4");
  EXPECT_EQ(fields, (std::vector<std::string>{"1", "two, three", "4"}));
}

TEST(Csv, WriteRoundTrips) {
  const std::vector<std::string> header = {"k", "v"};
  const std::vector<std::vector<std::string>> rows = {
      {"plain", "1"}, {"with,comma", "2"}, {"with\nnewline", "3"}};
  const std::string text = pe::write_csv(header, rows);
  const auto doc = pe::parse_csv(text);
  EXPECT_EQ(doc.header, header);
  EXPECT_EQ(doc.rows, rows);
}

TEST(Csv, WriteRejectsRaggedRows) {
  EXPECT_THROW(pe::write_csv({"a", "b"}, {{"only"}}), pe::Error);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(pe::read_csv_file("/nonexistent/file.csv"), pe::Error);
}

std::string error_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const pe::Error& e) {
    return e.what();
  }
  return {};
}

TEST(Csv, RaggedRowErrorNamesSourceAndLine) {
  const auto msg = error_of(
      [] { (void)pe::parse_csv("a,b\n1,2\n3\n", "experiment.csv"); });
  EXPECT_NE(msg.find("experiment.csv"), std::string::npos);
  EXPECT_NE(msg.find("line 3"), std::string::npos);
  EXPECT_NE(msg.find("ragged"), std::string::npos);
}

TEST(Csv, DefaultSourceIsMemory) {
  const auto msg = error_of([] { (void)pe::parse_csv("a,b\n1\n"); });
  EXPECT_NE(msg.find("<memory>"), std::string::npos);
  EXPECT_NE(msg.find("line 2"), std::string::npos);
}

TEST(Csv, UnterminatedQuoteReportedAtOpeningLine) {
  const auto msg = error_of(
      [] { (void)pe::parse_csv("a\nok\n\"oops\nmore\n", "bad.csv"); });
  EXPECT_NE(msg.find("bad.csv"), std::string::npos);
  EXPECT_NE(msg.find("line 3"), std::string::npos);  // where the quote opened
}

TEST(Csv, FileErrorsCarryThePath) {
  const std::string path = testing::TempDir() + "pe_test_garbage.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "a,b\n1,2,3\n";
  }
  const auto msg = error_of([&] { (void)pe::read_csv_file(path); });
  EXPECT_NE(msg.find(path), std::string::npos);
  EXPECT_NE(msg.find("line 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Csv, IoFaultSiteCoversFileReads) {
  const std::string path = testing::TempDir() + "pe_test_ok.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "a,b\n1,2\n";
  }
  pe::resilience::FaultPlan plan;
  plan.faults.push_back({.site = std::string(pe::fault_sites::kIoCsv)});
  pe::resilience::ScopedFaultInjection scope(std::move(plan));
  EXPECT_THROW((void)pe::read_csv_file(path),
               pe::resilience::FaultInjected);
  std::remove(path.c_str());
}

}  // namespace
