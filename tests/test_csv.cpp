// Tests for the CSV parser/writer in perfeng/common/csv.hpp.
#include "perfeng/common/csv.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

TEST(Csv, ParsesHeaderAndRows) {
  const auto doc = pe::parse_csv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_EQ(doc.header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(doc.rows[1], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(Csv, HandlesMissingTrailingNewline) {
  const auto doc = pe::parse_csv("x,y\n7,8");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][1], "8");
}

TEST(Csv, HandlesCrlf) {
  const auto doc = pe::parse_csv("x,y\r\n1,2\r\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "1");
}

TEST(Csv, QuotedFieldsKeepCommasAndQuotes) {
  const auto doc = pe::parse_csv("name,note\n\"a,b\",\"he said \"\"hi\"\"\"\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "a,b");
  EXPECT_EQ(doc.rows[0][1], "he said \"hi\"");
}

TEST(Csv, QuotedFieldMayContainNewline) {
  const auto doc = pe::parse_csv("a,b\n\"line1\nline2\",x\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0][0], "line1\nline2");
}

TEST(Csv, RaggedRowThrows) {
  EXPECT_THROW(pe::parse_csv("a,b\n1\n"), pe::Error);
  EXPECT_THROW(pe::parse_csv("a,b\n1,2,3\n"), pe::Error);
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(pe::parse_csv("a\n\"oops\n"), pe::Error);
}

TEST(Csv, ColumnLookup) {
  const auto doc = pe::parse_csv("year,count\n2020,5\n");
  EXPECT_EQ(doc.column("year"), 0u);
  EXPECT_EQ(doc.column("count"), 1u);
  EXPECT_THROW(doc.column("missing"), pe::Error);
}

TEST(Csv, EmptyFieldsPreserved) {
  const auto doc = pe::parse_csv("a,b,c\n,,\n");
  ASSERT_EQ(doc.rows.size(), 1u);
  EXPECT_EQ(doc.rows[0], (std::vector<std::string>{"", "", ""}));
}

TEST(Csv, ParseSingleLine) {
  const auto fields = pe::parse_csv_line("1,\"two, three\",4");
  EXPECT_EQ(fields, (std::vector<std::string>{"1", "two, three", "4"}));
}

TEST(Csv, WriteRoundTrips) {
  const std::vector<std::string> header = {"k", "v"};
  const std::vector<std::vector<std::string>> rows = {
      {"plain", "1"}, {"with,comma", "2"}, {"with\nnewline", "3"}};
  const std::string text = pe::write_csv(header, rows);
  const auto doc = pe::parse_csv(text);
  EXPECT_EQ(doc.header, header);
  EXPECT_EQ(doc.rows, rows);
}

TEST(Csv, WriteRejectsRaggedRows) {
  EXPECT_THROW(pe::write_csv({"a", "b"}, {{"only"}}), pe::Error);
}

TEST(Csv, MissingFileThrows) {
  EXPECT_THROW(pe::read_csv_file("/nonexistent/file.csv"), pe::Error);
}

}  // namespace
