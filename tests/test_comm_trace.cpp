// Tests for the communication trace recorder/analyzer in
// perfeng/sim/comm_trace.hpp.
#include "perfeng/sim/comm_trace.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"

namespace {

using pe::sim::CommEventKind;
using pe::sim::NetworkCost;
using pe::sim::TracedNetwork;

NetworkCost cost() { return {1e-6, 1e-9}; }

TEST(CommTrace, RecordsEveryCall) {
  TracedNetwork net(2, cost());
  net.compute(0, 1.0);
  net.send(0, 1, 100);
  net.recv(1, 0);
  ASSERT_EQ(net.events().size(), 3u);
  EXPECT_EQ(net.events()[0].kind, CommEventKind::kCompute);
  EXPECT_EQ(net.events()[1].kind, CommEventKind::kSend);
  EXPECT_EQ(net.events()[2].kind, CommEventKind::kRecvWait);
  EXPECT_EQ(net.events()[1].bytes, 100u);
  EXPECT_EQ(net.events()[1].peer, 1u);
}

TEST(CommTrace, ProfileSeparatesComputeSendWait) {
  TracedNetwork net(2, cost());
  net.compute(0, 2.0);
  net.send(0, 1, 1000);
  net.recv(1, 0);  // rank 1 waits the full message time
  const auto profiles = net.profile();
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_DOUBLE_EQ(profiles[0].compute_seconds, 2.0);
  EXPECT_NEAR(profiles[0].send_seconds, 1e-6, 1e-15);  // alpha
  EXPECT_DOUBLE_EQ(profiles[0].wait_seconds, 0.0);
  // Receiver blocked from t=0 until arrival at 2.0 + alpha + beta*1000.
  EXPECT_NEAR(profiles[1].wait_seconds, 2.0 + 1e-6 + 1e-6, 1e-12);
  EXPECT_EQ(profiles[1].late_senders, 1u);
}

TEST(CommTrace, EarlyArrivalIsNotALateSender) {
  TracedNetwork net(2, cost());
  net.send(0, 1, 10);
  net.compute(1, 5.0);  // message arrives long before the recv
  net.recv(1, 0);
  const auto profiles = net.profile();
  EXPECT_EQ(profiles[1].late_senders, 0u);
  EXPECT_DOUBLE_EQ(profiles[1].wait_seconds, 0.0);
}

TEST(CommTrace, KindNames) {
  EXPECT_EQ(pe::sim::comm_event_kind_name(CommEventKind::kCompute),
            "compute");
  EXPECT_EQ(pe::sim::comm_event_kind_name(CommEventKind::kRecvWait),
            "recv-wait");
}

TEST(CommTrace, TimelineShowsLanesAndLegend) {
  TracedNetwork net(3, cost());
  for (unsigned r = 0; r < 3; ++r) net.compute(r, 1.0);
  net.send(0, 1, 1 << 20);
  net.recv(1, 0);
  const std::string art = net.timeline(40);
  EXPECT_NE(art.find("rank 0"), std::string::npos);
  EXPECT_NE(art.find("rank 2"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find("legend"), std::string::npos);
}

TEST(CommTrace, TimelineWaitGlyphAppearsForBlockedReceives) {
  TracedNetwork net(2, cost());
  net.compute(0, 1.0);
  net.send(0, 1, 10);
  net.recv(1, 0);  // rank 1 idle-waits ~1 s
  const std::string art = net.timeline(40);
  // Rank 1's lane must contain wait glyphs.
  const auto lane1 = art.find("rank 1");
  ASSERT_NE(lane1, std::string::npos);
  const auto line_end = art.find('\n', lane1);
  EXPECT_NE(art.substr(lane1, line_end - lane1).find('.'),
            std::string::npos);
}

TEST(CommTrace, NarrowTimelineRejected) {
  TracedNetwork net(1, cost());
  net.compute(0, 1.0);
  EXPECT_THROW((void)net.timeline(2), pe::Error);
}

TEST(CommTrace, UnderlyingNetworkStaysUsable) {
  TracedNetwork net(4, cost());
  const double finish =
      pe::sim::simulate_ring_allreduce(net.network(), 4096);
  EXPECT_GT(finish, 0.0);
  // Collective calls on network() bypass tracing (documented behaviour).
  EXPECT_TRUE(net.events().empty());
}

TEST(CommTrace, LoadImbalanceShowsUpAsWaitTime) {
  // Rank 0 computes 4x longer; its neighbour's recv blocks on it.
  TracedNetwork net(2, cost());
  net.compute(0, 4.0);
  net.compute(1, 1.0);
  net.send(0, 1, 8);
  net.send(1, 0, 8);
  net.recv(1, 0);
  net.recv(0, 1);
  const auto profiles = net.profile();
  EXPECT_GT(profiles[1].wait_seconds, 2.9);  // the imbalance, visible
  EXPECT_LT(profiles[0].wait_seconds, 0.1);
}

}  // namespace
