// Tests for the simulated counter backend in perfeng/counters,
// exercising it with real kernel traces.
#include "perfeng/counters/simulated_counters.hpp"

#include <gtest/gtest.h>

#include "perfeng/common/error.hpp"
#include "perfeng/kernels/traces.hpp"

namespace {

using namespace pe::counters;

pe::sim::CacheHierarchy hierarchy() {
  // Small L1 so the 40-line column walk of the naive matmul thrashes.
  std::vector<pe::sim::LevelSpec> specs;
  specs.push_back({pe::sim::CacheConfig{"L1", 2 * 1024, 64, 8}, 4.0});
  specs.push_back({pe::sim::CacheConfig{"L2", 64 * 1024, 64, 8}, 12.0});
  return pe::sim::CacheHierarchy(std::move(specs), 200.0);
}

TEST(SimulatedCounters, HierarchyStatsMapToPerfNames) {
  auto h = hierarchy();
  h.access(0, 8, pe::sim::AccessType::kRead);
  h.access(0, 8, pe::sim::AccessType::kRead);
  const auto c = from_hierarchy(h.stats());
  EXPECT_EQ(c.get(kMemAccesses), 2u);
  EXPECT_EQ(c.get(kL1Misses), 1u);
  EXPECT_EQ(c.get(kL2Misses), 1u);
  EXPECT_EQ(c.get(kDramAccesses), 1u);
  EXPECT_GT(c.get(kCycles), 0u);
  EXPECT_EQ(c.get(kInstructions), 2u);  // defaults to access count
}

TEST(SimulatedCounters, ExplicitInstructionCountWins) {
  auto h = hierarchy();
  h.access(0, 8, pe::sim::AccessType::kRead);
  const auto c = from_hierarchy(h.stats(), 12345);
  EXPECT_EQ(c.get(kInstructions), 12345u);
}

TEST(SimulatedCounters, BranchStatsMap) {
  pe::sim::BranchStats s;
  s.predictions = 100;
  s.mispredictions = 37;
  const auto c = from_branches(s);
  EXPECT_EQ(c.get(kBranches), 100u);
  EXPECT_EQ(c.get(kBranchMisses), 37u);
  EXPECT_DOUBLE_EQ(c.branch_miss_rate(), 0.37);
}

TEST(SimulatedCounters, CollectResetsBetweenRuns) {
  auto h = hierarchy();
  const auto first = collect(h, [&h] {
    pe::kernels::trace_strided(h, 4096, 1);
  });
  const auto second = collect(h, [&h] {
    pe::kernels::trace_strided(h, 4096, 1);
  });
  // Identical traces from a cold cache must produce identical counters.
  EXPECT_EQ(first.values(), second.values());
}

TEST(SimulatedCounters, MatmulTraceShowsLoopOrderContrast) {
  auto h = hierarchy();
  const auto naive = collect(h, [&h] {
    pe::kernels::trace_matmul(h, 40, pe::kernels::TraceVariant::kNaiveIjk);
  });
  const auto ikj = collect(h, [&h] {
    pe::kernels::trace_matmul(
        h, 40, pe::kernels::TraceVariant::kInterchangedIkj);
  });
  EXPECT_GT(naive.l1_miss_rate(), ikj.l1_miss_rate() * 2.0);
}

TEST(SimulatedCounters, NullTraceRejected) {
  auto h = hierarchy();
  EXPECT_THROW((void)collect(h, nullptr), pe::Error);
}

}  // namespace
