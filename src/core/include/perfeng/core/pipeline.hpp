#pragma once

/// \file pipeline.hpp
/// The seven-stage performance-engineering process as an executable object —
/// the paper's primary contribution, turned into an API.
///
/// Section 2.3 of the paper defines the process:
///   1. collect performance requirements;
///   2. understand current performance;
///   3. assess feasibility of the requirements;
///   4. assess suitable approaches;
///   5. apply tuning and optimization;
///   6. assess progress and iterate (3-5);
///   7. analyse and document.
///
/// `Pipeline` drives those stages for one kernel: the user states a
/// requirement (target speedup), registers a baseline and candidate
/// optimization variants, and provides the kernel's operational
/// characterization. The pipeline measures everything (stage 2), bounds
/// the attainable speedup with the Roofline model (stage 3), ranks the
/// variants (stages 4-6), and renders a report (stage 7).

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "perfeng/measure/benchmark_runner.hpp"
#include "perfeng/models/roofline.hpp"

namespace pe::core {

/// Stage 1: the performance requirement.
struct Requirement {
  std::string description;
  double target_speedup = 1.0;  ///< versus the baseline
};

/// A candidate implementation of the kernel under study.
struct Variant {
  std::string name;
  std::string optimization;          ///< what was changed and why
  std::function<void()> kernel;      ///< one invocation of this variant
};

/// Assessment of one variant after measurement.
struct VariantOutcome {
  std::string name;
  std::string optimization;
  Measurement measurement;
  double speedup = 1.0;            ///< vs baseline (median times)
  double roofline_efficiency = 0;  ///< measured/attainable FLOP/s
  bool meets_requirement = false;
};

/// Feasibility verdict (stage 3).
struct Feasibility {
  double max_model_speedup = 0.0;  ///< roofline bound / baseline
  bool target_feasible = false;
  std::string rationale;
};

/// Full pipeline result (stage 7's raw material).
struct PipelineReport {
  Requirement requirement;
  models::RooflinePlacement baseline_placement;
  Feasibility feasibility;
  std::vector<VariantOutcome> variants;  ///< baseline first, then others
  std::string best_variant;
  double best_speedup = 1.0;

  /// Render the report as human-readable text (stage 7).
  [[nodiscard]] std::string render() const;
};

/// Drives the seven-stage process for one kernel.
class Pipeline {
 public:
  /// `machine` provides the ceilings used for the feasibility assessment.
  Pipeline(models::RooflineModel machine, BenchmarkRunner runner);

  /// Stage 1: state the requirement.
  void set_requirement(Requirement requirement);

  /// Stage 2 input: the baseline implementation and its characterization
  /// (FLOPs and bytes per invocation; shared by all variants).
  void set_baseline(Variant baseline,
                    models::KernelCharacterization characterization);

  /// Stage 5 input: register an optimization candidate.
  void add_variant(Variant variant);

  /// Optional: variants may change the kernel's traffic (e.g. tiling);
  /// supply a per-variant characterization override.
  void add_variant(Variant variant,
                   models::KernelCharacterization characterization);

  /// Stages 2-6: measure baseline and variants, assess feasibility and
  /// progress. Throws pe::Error unless a requirement and baseline are set.
  [[nodiscard]] PipelineReport run();

 private:
  struct Candidate {
    Variant variant;
    std::optional<models::KernelCharacterization> characterization;
  };

  models::RooflineModel machine_;
  BenchmarkRunner runner_;
  std::optional<Requirement> requirement_;
  std::optional<Candidate> baseline_;
  models::KernelCharacterization base_char_;
  std::vector<Candidate> variants_;
};

}  // namespace pe::core
