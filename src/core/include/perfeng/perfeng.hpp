#pragma once

/// \file perfeng.hpp
/// Umbrella header: the whole performance-engineering toolbox with one
/// include. Each area remains individually includable (and faster to
/// compile) via its own header; this exists for quick experiments and
/// student projects.

// common
#include "perfeng/common/aligned_buffer.hpp"
#include "perfeng/common/csv.hpp"
#include "perfeng/common/error.hpp"
#include "perfeng/common/rng.hpp"
#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"

// parallel substrate
#include "perfeng/parallel/parallel_for.hpp"
#include "perfeng/parallel/thread_pool.hpp"

// measurement
#include "perfeng/measure/benchmark_runner.hpp"
#include "perfeng/measure/experiment.hpp"
#include "perfeng/measure/metrics.hpp"
#include "perfeng/measure/statistics.hpp"
#include "perfeng/measure/timer.hpp"

// microbenchmarks
#include "perfeng/microbench/latency.hpp"
#include "perfeng/microbench/machine_probe.hpp"
#include "perfeng/microbench/op_costs.hpp"
#include "perfeng/microbench/peak_flops.hpp"
#include "perfeng/microbench/stream.hpp"

// models
#include "perfeng/models/analytical.hpp"
#include "perfeng/models/ecm.hpp"
#include "perfeng/models/energy.hpp"
#include "perfeng/models/gpu.hpp"
#include "perfeng/models/interference.hpp"
#include "perfeng/models/network.hpp"
#include "perfeng/models/offload.hpp"
#include "perfeng/models/queuing.hpp"
#include "perfeng/models/roofline.hpp"
#include "perfeng/models/scaling.hpp"

// the seven-stage process
#include "perfeng/core/pipeline.hpp"

namespace pe {

/// Library version (semver).
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;

}  // namespace pe
