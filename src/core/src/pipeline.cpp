#include "perfeng/core/pipeline.hpp"

#include <algorithm>
#include <sstream>

#include "perfeng/common/error.hpp"
#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"

namespace pe::core {

Pipeline::Pipeline(models::RooflineModel machine, BenchmarkRunner runner)
    : machine_(std::move(machine)), runner_(std::move(runner)) {}

void Pipeline::set_requirement(Requirement requirement) {
  PE_REQUIRE(requirement.target_speedup >= 1.0,
             "target speedup must be at least 1");
  requirement_ = std::move(requirement);
}

void Pipeline::set_baseline(Variant baseline,
                            models::KernelCharacterization characterization) {
  PE_REQUIRE(static_cast<bool>(baseline.kernel), "baseline needs a kernel");
  PE_REQUIRE(characterization.flops > 0.0 && characterization.bytes > 0.0,
             "characterization needs FLOPs and bytes");
  baseline_ = Candidate{std::move(baseline), std::nullopt};
  base_char_ = std::move(characterization);
}

void Pipeline::add_variant(Variant variant) {
  PE_REQUIRE(static_cast<bool>(variant.kernel), "variant needs a kernel");
  variants_.push_back({std::move(variant), std::nullopt});
}

void Pipeline::add_variant(Variant variant,
                           models::KernelCharacterization characterization) {
  PE_REQUIRE(static_cast<bool>(variant.kernel), "variant needs a kernel");
  variants_.push_back({std::move(variant), std::move(characterization)});
}

PipelineReport Pipeline::run() {
  PE_REQUIRE(requirement_.has_value(), "stage 1 missing: set_requirement");
  PE_REQUIRE(baseline_.has_value(), "stage 2 missing: set_baseline");

  PipelineReport report;
  report.requirement = *requirement_;

  // Stage 2: understand current performance.
  const Measurement base_meas =
      runner_.run(baseline_->variant.name, baseline_->variant.kernel);
  report.baseline_placement =
      models::place_kernel(machine_, base_char_, base_meas.typical());

  // Stage 3: feasibility — the model's attainable time bounds the speedup.
  const double bound_seconds =
      base_char_.flops / report.baseline_placement.attainable_flops;
  Feasibility feas;
  feas.max_model_speedup = base_meas.typical() / bound_seconds;
  feas.target_feasible =
      requirement_->target_speedup <= feas.max_model_speedup * 1.05;
  {
    std::ostringstream ss;
    ss << "roofline-attainable time " << format_time(bound_seconds)
       << " bounds speedup at " << format_sig(feas.max_model_speedup, 3)
       << "x; target " << format_sig(requirement_->target_speedup, 3)
       << "x is " << (feas.target_feasible ? "feasible" : "NOT feasible");
    feas.rationale = ss.str();
  }
  report.feasibility = feas;

  // Stages 4-6: measure each candidate and assess progress.
  auto assess = [&](const Candidate& cand,
                    const Measurement& meas) -> VariantOutcome {
    const auto& kc = cand.characterization.value_or(base_char_);
    VariantOutcome outcome;
    outcome.name = cand.variant.name;
    outcome.optimization = cand.variant.optimization;
    outcome.measurement = meas;
    outcome.speedup = base_meas.typical() / meas.typical();
    const auto placement = models::place_kernel(machine_, kc, meas.typical());
    outcome.roofline_efficiency = placement.efficiency;
    outcome.meets_requirement =
        outcome.speedup >= requirement_->target_speedup;
    return outcome;
  };

  report.variants.push_back(assess(*baseline_, base_meas));
  report.best_variant = baseline_->variant.name;
  report.best_speedup = 1.0;
  for (const Candidate& cand : variants_) {
    const Measurement meas =
        runner_.run(cand.variant.name, cand.variant.kernel);
    VariantOutcome outcome = assess(cand, meas);
    if (outcome.speedup > report.best_speedup) {
      report.best_speedup = outcome.speedup;
      report.best_variant = outcome.name;
    }
    report.variants.push_back(std::move(outcome));
  }
  return report;
}

std::string PipelineReport::render() const {
  std::ostringstream out;
  out << "=== Performance engineering report ===\n";
  out << "Stage 1  Requirement: " << requirement.description << " (target "
      << format_sig(requirement.target_speedup, 3) << "x)\n";
  out << "Stage 2  Baseline: "
      << format_time(baseline_placement.kernel.flops /
                     baseline_placement.measured_flops)
      << "/iter at " << format_flops(baseline_placement.measured_flops)
      << ", intensity "
      << format_sig(baseline_placement.kernel.intensity(), 3)
      << " FLOP/B ("
      << (baseline_placement.bound == models::Bound::kMemory ? "memory"
                                                             : "compute")
      << "-bound, " << format_sig(baseline_placement.efficiency * 100.0, 3)
      << "% of roofline)\n";
  out << "Stage 3  Feasibility: " << feasibility.rationale << "\n";
  out << "Stages 4-6  Variants:\n";

  Table t({"variant", "optimization", "median time", "speedup",
           "roofline %", "meets target"});
  for (const VariantOutcome& v : variants) {
    t.add_row({v.name, v.optimization,
               format_time(v.measurement.typical()),
               format_sig(v.speedup, 3),
               format_sig(v.roofline_efficiency * 100.0, 3),
               v.meets_requirement ? "yes" : "no"});
  }
  out << t.render();
  out << "Stage 7  Outcome: best variant '" << best_variant << "' at "
      << format_sig(best_speedup, 3) << "x\n";
  return out.str();
}

}  // namespace pe::core
