#include "perfeng/machine/machine.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "perfeng/common/error.hpp"
#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"

namespace pe::machine {

namespace {

// --- canonical double formatting -------------------------------------------
// Shortest decimal form that round-trips through strtod exactly, so the
// serialized form is both human-readable and lossless, and re-serializing a
// parsed machine is byte-identical (the byte-stability contract).
std::string format_double(double v) {
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

// --- minimal JSON document model -------------------------------------------
// Just enough JSON for machine files, with the 1-based line of every value
// retained so malformed input is reported the way the CSV and Matrix Market
// loaders report it: "<source>: line N: what went wrong".

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;
  std::size_t line = 1;

  [[nodiscard]] const char* kind_name() const {
    switch (kind) {
      case Kind::kNull: return "null";
      case Kind::kBool: return "bool";
      case Kind::kNumber: return "number";
      case Kind::kString: return "string";
      case Kind::kArray: return "array";
      case Kind::kObject: return "object";
    }
    return "?";
  }
};

class Parser {
 public:
  Parser(std::string_view text, std::string_view source)
      : text_(text), source_(source) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document", line_);
    return v;
  }

  [[noreturn]] void fail(const std::string& msg, std::size_t line) const {
    throw Error("machine: " + std::string(source_) + ": line " +
                std::to_string(line) + ": " + msg);
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input", line_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'",
           line_);
    }
    ++pos_;
  }

  Value parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (c == 't' || c == 'f' || c == 'n') return parse_keyword();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail(std::string("unexpected character '") + c + "'", line_);
  }

  Value parse_object() {
    Value v;
    v.kind = Value::Kind::kObject;
    v.line = line_;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      Value key = parse_string();
      expect(':');
      Value item = parse_value();
      v.object.emplace_back(std::move(key.text), std::move(item));
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object", line_);
    }
  }

  Value parse_array() {
    Value v;
    v.kind = Value::Kind::kArray;
    v.line = line_;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array", line_);
    }
  }

  Value parse_string() {
    Value v;
    v.kind = Value::Kind::kString;
    if (peek() != '"') fail("expected string", line_);
    v.line = line_;
    ++pos_;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string", v.line);
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\n') fail("newline inside string", v.line);
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape", v.line);
        const char e = text_[pos_++];
        switch (e) {
          case '"': v.text.push_back('"'); break;
          case '\\': v.text.push_back('\\'); break;
          case '/': v.text.push_back('/'); break;
          case 'n': v.text.push_back('\n'); break;
          case 't': v.text.push_back('\t'); break;
          default:
            fail(std::string("unsupported escape '\\") + e + "'", v.line);
        }
      } else {
        v.text.push_back(c);
      }
    }
  }

  Value parse_number() {
    Value v;
    v.kind = Value::Kind::kNumber;
    v.line = line_;
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    v.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || token.empty())
      fail("malformed number '" + token + "'", v.line);
    return v;
  }

  Value parse_keyword() {
    Value v;
    v.line = line_;
    auto match = [&](std::string_view word) {
      if (text_.substr(pos_, word.size()) != word) return false;
      pos_ += word.size();
      return true;
    };
    if (match("true")) {
      v.kind = Value::Kind::kBool;
      v.boolean = true;
    } else if (match("false")) {
      v.kind = Value::Kind::kBool;
    } else if (match("null")) {
      v.kind = Value::Kind::kNull;
    } else {
      fail("unexpected token", line_);
    }
    return v;
  }

  std::string_view text_;
  std::string_view source_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

// --- DOM -> Machine mapping ------------------------------------------------

double as_number(const Parser& p, const Value& v, const std::string& key) {
  if (v.kind != Value::Kind::kNumber)
    p.fail("key '" + key + "' must be a number, got " + v.kind_name(),
           v.line);
  return v.number;
}

std::string as_string(const Parser& p, const Value& v,
                      const std::string& key) {
  if (v.kind != Value::Kind::kString)
    p.fail("key '" + key + "' must be a string, got " + v.kind_name(),
           v.line);
  return v.text;
}

std::size_t as_size(const Parser& p, const Value& v, const std::string& key) {
  const double d = as_number(p, v, key);
  if (d < 0.0 || d != static_cast<double>(static_cast<std::size_t>(d)))
    p.fail("key '" + key + "' must be a non-negative integer", v.line);
  return static_cast<std::size_t>(d);
}

MemoryLevel level_from_value(const Parser& p, const Value& v) {
  if (v.kind != Value::Kind::kObject)
    p.fail("hierarchy entries must be objects", v.line);
  MemoryLevel level;
  bool saw_name = false, saw_bandwidth = false;
  for (const auto& [key, item] : v.object) {
    if (key == "level") {
      level.name = as_string(p, item, key);
      saw_name = true;
    } else if (key == "bandwidth") {
      level.bandwidth = as_number(p, item, key);
      saw_bandwidth = true;
    } else if (key == "latency") {
      level.latency = as_number(p, item, key);
    } else if (key == "capacity") {
      level.capacity = as_size(p, item, key);
    } else if (key == "line_bytes") {
      level.line_bytes = as_size(p, item, key);
    } else {
      p.fail("unknown hierarchy key '" + key + "'", item.line);
    }
  }
  if (!saw_name) p.fail("hierarchy entry missing 'level'", v.line);
  if (!saw_bandwidth) p.fail("hierarchy entry missing 'bandwidth'", v.line);
  return level;
}

}  // namespace

const MemoryLevel& Machine::dram() const {
  PE_REQUIRE(!hierarchy.empty(), "machine has no memory hierarchy");
  return hierarchy.back();
}

const MemoryLevel& Machine::fastest() const {
  PE_REQUIRE(!hierarchy.empty(), "machine has no memory hierarchy");
  return hierarchy.front();
}

std::size_t Machine::largest_cache_bytes() const {
  std::size_t best = 0;
  for (std::size_t i = 0; i + 1 < hierarchy.size(); ++i)
    if (hierarchy[i].capacity > best) best = hierarchy[i].capacity;
  return best > 0 ? best : (std::size_t{1} << 21);
}

double Machine::ridge_intensity() const {
  const double bw = dram_bandwidth();
  return bw > 0.0 ? peak_flops / bw : 0.0;
}

void Machine::check() const {
  PE_REQUIRE(!name.empty(), "machine needs a name");
  PE_REQUIRE(peak_flops > 0.0, "peak FLOP/s must be positive");
  PE_REQUIRE(cores >= 1, "machine needs at least one core");
  PE_REQUIRE(!hierarchy.empty(), "machine needs a memory hierarchy");
  PE_REQUIRE(static_watts >= 0.0 && peak_dynamic_watts >= 0.0,
             "energy coefficients must be non-negative");
  PE_REQUIRE(link_alpha >= 0.0 && link_beta >= 0.0,
             "link coefficients must be non-negative");
  PE_REQUIRE(sched_submit_ns >= 0.0 && sched_bulk_ns >= 0.0,
             "scheduler dispatch costs must be non-negative");
  PE_REQUIRE(simd_width_bits % 64 == 0,
             "SIMD width must be a whole number of 64-bit lanes");
  PE_REQUIRE(!simd_fma || simd_width_bits > 0,
             "FMA without a SIMD width is not a calibration this layer "
             "can represent");
  std::vector<MemoryLevel> seen;
  seen.reserve(hierarchy.size());
  for (std::size_t i = 0; i < hierarchy.size(); ++i) {
    const MemoryLevel& level = hierarchy[i];
    PE_REQUIRE(!level.name.empty(), "hierarchy level needs a name");
    require_unique_name(seen, level.name, "hierarchy level");
    seen.push_back(level);
    PE_REQUIRE(level.bandwidth > 0.0, "level bandwidth must be positive");
    PE_REQUIRE(level.latency >= 0.0, "level latency must be non-negative");
    PE_REQUIRE(level.line_bytes > 0, "level line size must be positive");
    const bool last = i + 1 == hierarchy.size();
    PE_REQUIRE(last || level.capacity > 0,
               "cache level needs a capacity (0 is only valid for the "
               "last level)");
    if (i > 0) {
      const MemoryLevel& faster = hierarchy[i - 1];
      PE_REQUIRE(level.bandwidth <= faster.bandwidth,
                 "hierarchy bandwidth must not increase toward memory");
      PE_REQUIRE(level.capacity == 0 || faster.capacity == 0 ||
                     level.capacity > faster.capacity,
                 "hierarchy capacity must increase toward memory");
      PE_REQUIRE(level.latency == 0.0 || faster.latency == 0.0 ||
                     level.latency >= faster.latency,
                 "hierarchy latency must not decrease toward memory");
    }
  }
}

std::string Machine::summary() const {
  std::ostringstream ss;
  ss << name << ": peak " << format_flops(peak_flops) << "/core x " << cores
     << ", DRAM " << format_bandwidth(dram_bandwidth()) << ", ridge "
     << format_sig(ridge_intensity(), 3) << " FLOP/B";
  for (std::size_t i = 0; i + 1 < hierarchy.size(); ++i) {
    ss << ", " << hierarchy[i].name << " "
       << format_bytes(hierarchy[i].capacity);
  }
  return ss.str();
}

std::string Machine::calibration_hash() const {
  // FNV-1a over the canonical JSON form: platform-stable, and any change
  // to any calibrated number changes the hash.
  const std::string canonical = to_json(*this);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : canonical) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::string to_json(const Machine& m) {
  auto quote = [](const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    out.push_back('"');
    return out;
  };
  std::ostringstream ss;
  ss << "{\n";
  ss << "  \"name\": " << quote(m.name) << ",\n";
  ss << "  \"description\": " << quote(m.description) << ",\n";
  ss << "  \"source\": " << quote(m.source) << ",\n";
  ss << "  \"peak_flops\": " << format_double(m.peak_flops) << ",\n";
  ss << "  \"cores\": " << m.cores << ",\n";
  ss << "  \"hierarchy\": [";
  for (std::size_t i = 0; i < m.hierarchy.size(); ++i) {
    const MemoryLevel& level = m.hierarchy[i];
    ss << (i == 0 ? "\n" : ",\n");
    ss << "    { \"level\": " << quote(level.name)
       << ", \"bandwidth\": " << format_double(level.bandwidth)
       << ", \"latency\": " << format_double(level.latency)
       << ", \"capacity\": " << level.capacity
       << ", \"line_bytes\": " << level.line_bytes << " }";
  }
  ss << "\n  ]";
  if (m.has_energy()) {
    ss << ",\n  \"energy\": { \"static_watts\": "
       << format_double(m.static_watts) << ", \"peak_dynamic_watts\": "
       << format_double(m.peak_dynamic_watts) << " }";
  }
  if (m.has_link()) {
    ss << ",\n  \"link\": { \"alpha\": " << format_double(m.link_alpha)
       << ", \"beta\": " << format_double(m.link_beta) << " }";
  }
  if (m.has_scheduler()) {
    ss << ",\n  \"scheduler\": { \"submit_ns\": "
       << format_double(m.sched_submit_ns)
       << ", \"bulk_ns\": " << format_double(m.sched_bulk_ns) << " }";
  }
  if (m.has_simd()) {
    ss << ",\n  \"simd\": { \"width_bits\": " << m.simd_width_bits
       << ", \"fma\": " << (m.simd_fma ? "true" : "false") << " }";
  }
  ss << "\n}\n";
  return ss.str();
}

Machine from_json(std::string_view text, std::string_view source) {
  Parser parser(text, source);
  const Value doc = parser.parse_document();
  if (doc.kind != Value::Kind::kObject)
    parser.fail("machine file must be a JSON object", doc.line);

  Machine m;
  bool saw_name = false, saw_peak = false, saw_hierarchy = false;
  for (const auto& [key, v] : doc.object) {
    if (key == "name") {
      m.name = as_string(parser, v, key);
      saw_name = true;
    } else if (key == "description") {
      m.description = as_string(parser, v, key);
    } else if (key == "source") {
      m.source = as_string(parser, v, key);
    } else if (key == "peak_flops") {
      m.peak_flops = as_number(parser, v, key);
      saw_peak = true;
    } else if (key == "cores") {
      m.cores = static_cast<unsigned>(as_size(parser, v, key));
    } else if (key == "hierarchy") {
      if (v.kind != Value::Kind::kArray)
        parser.fail("key 'hierarchy' must be an array", v.line);
      for (const Value& item : v.array)
        m.hierarchy.push_back(level_from_value(parser, item));
      saw_hierarchy = true;
    } else if (key == "energy") {
      if (v.kind != Value::Kind::kObject)
        parser.fail("key 'energy' must be an object", v.line);
      for (const auto& [ekey, ev] : v.object) {
        if (ekey == "static_watts") {
          m.static_watts = as_number(parser, ev, ekey);
        } else if (ekey == "peak_dynamic_watts") {
          m.peak_dynamic_watts = as_number(parser, ev, ekey);
        } else {
          parser.fail("unknown energy key '" + ekey + "'", ev.line);
        }
      }
    } else if (key == "link") {
      if (v.kind != Value::Kind::kObject)
        parser.fail("key 'link' must be an object", v.line);
      for (const auto& [lkey, lv] : v.object) {
        if (lkey == "alpha") {
          m.link_alpha = as_number(parser, lv, lkey);
        } else if (lkey == "beta") {
          m.link_beta = as_number(parser, lv, lkey);
        } else {
          parser.fail("unknown link key '" + lkey + "'", lv.line);
        }
      }
    } else if (key == "simd") {
      if (v.kind != Value::Kind::kObject)
        parser.fail("key 'simd' must be an object", v.line);
      for (const auto& [mkey, mv] : v.object) {
        if (mkey == "width_bits") {
          m.simd_width_bits =
              static_cast<unsigned>(as_size(parser, mv, mkey));
        } else if (mkey == "fma") {
          if (mv.kind != Value::Kind::kBool)
            parser.fail("key 'fma' must be a bool, got " +
                            std::string(mv.kind_name()),
                        mv.line);
          m.simd_fma = mv.boolean;
        } else {
          parser.fail("unknown simd key '" + mkey + "'", mv.line);
        }
      }
    } else if (key == "scheduler") {
      if (v.kind != Value::Kind::kObject)
        parser.fail("key 'scheduler' must be an object", v.line);
      for (const auto& [skey, sv] : v.object) {
        if (skey == "submit_ns") {
          m.sched_submit_ns = as_number(parser, sv, skey);
        } else if (skey == "bulk_ns") {
          m.sched_bulk_ns = as_number(parser, sv, skey);
        } else {
          parser.fail("unknown scheduler key '" + skey + "'", sv.line);
        }
      }
    } else {
      parser.fail("unknown key '" + key + "'", v.line);
    }
  }
  if (!saw_name) parser.fail("missing required key 'name'", doc.line);
  if (!saw_peak) parser.fail("missing required key 'peak_flops'", doc.line);
  if (!saw_hierarchy)
    parser.fail("missing required key 'hierarchy'", doc.line);
  m.check();
  return m;
}

void save_json_file(const Machine& m, const std::string& path) {
  m.check();
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("machine: cannot open '" + path + "' for writing");
  const std::string text = to_json(m);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) throw Error("machine: failed writing '" + path + "'");
}

Machine load_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("machine: cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return from_json(ss.str(), path);
}

}  // namespace pe::machine
