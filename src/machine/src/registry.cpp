#include "perfeng/machine/registry.hpp"

#include <cstdlib>

#include "perfeng/common/error.hpp"

namespace pe::machine {

namespace {

Machine das5_node() {
  Machine m;
  m.name = "das5-node";
  m.description =
      "DAS-5 compute node: dual 8-core Xeon E5-2630v3 (AVX2 FMA), DDR4";
  m.source = "preset";
  m.peak_flops = 3.84e10;  // 2.4 GHz x 16 DP FLOP/cycle (2x FMA-256)
  m.cores = 16;
  m.hierarchy = {
      {"L1", 8e11, 1.3e-9, 32u * 1024u, 64},
      {"L2", 4e11, 3.5e-9, 256u * 1024u, 64},
      {"L3", 2e11, 1.2e-8, 20u * 1024u * 1024u, 64},
      {"DRAM", 5.9e10, 8.5e-8, 0, 64},
  };
  m.static_watts = 65.0;
  m.peak_dynamic_watts = 170.0;
  m.link_alpha = 1.7e-6;          // FDR InfiniBand
  m.link_beta = 1.0 / 6.8e9;
  m.simd_width_bits = 256;        // the AVX2 FMA the peak_flops assumes
  m.simd_fma = true;
  return m;
}

Machine das5_gpu() {
  Machine m;
  m.name = "das5-gpu";
  m.description =
      "DAS-5 accelerator: Maxwell-class GPU behind a PCIe-3 x16 link";
  m.source = "preset";
  m.peak_flops = 2e10;  // per SM; x24 SMs ~ 480 GFLOP/s device roof
  m.cores = 24;         // streaming multiprocessors
  m.hierarchy = {
      {"L2", 3e11, 2.4e-7, 3u * 1024u * 1024u, 128},
      {"GDDR", 1e11, 5e-7, 0, 128},
  };
  m.static_watts = 15.0;
  m.peak_dynamic_watts = 235.0;
  m.link_alpha = 1e-5;            // PCIe-3 x16: 10 us + ~12 GB/s
  m.link_beta = 1.0 / 1.2e10;
  // SIMT warps are not CPU-style SIMD registers; left uncalibrated.
  return m;
}

Machine laptop_x86() {
  Machine m;
  m.name = "laptop-x86";
  m.description = "modest 4-core x86 laptop, dual-channel DDR4";
  m.source = "preset";
  m.peak_flops = 1.25e10;  // ~3.1 GHz x 4 DP FLOP/cycle
  m.cores = 4;
  m.hierarchy = {
      {"L1", 3e11, 1.2e-9, 32u * 1024u, 64},
      {"L2", 1.5e11, 4e-9, 256u * 1024u, 64},
      {"L3", 1e11, 1.5e-8, 8u * 1024u * 1024u, 64},
      {"DRAM", 2e10, 9e-8, 0, 64},
  };
  m.static_watts = 10.0;
  m.peak_dynamic_watts = 30.0;
  // 4 DP FLOP/cycle = 256-bit adds+muls without FMA; recording fma=false
  // keeps the peak honest (with FMA the same width would be 8/cycle).
  m.simd_width_bits = 256;
  m.simd_fma = false;
  return m;
}

Machine cloud_smt() {
  Machine m;
  m.name = "cloud-smt";
  m.description =
      "multi-tenant cloud node: private per-vCPU compute, shared memory";
  m.source = "preset";
  m.peak_flops = 5e10;  // per-tenant compute roof
  m.cores = 16;
  m.hierarchy = {
      {"L1", 4e11, 1.3e-9, 32u * 1024u, 64},
      {"L2", 2e11, 4e-9, 1024u * 1024u, 64},
      {"L3", 1e11, 2e-8, 32u * 1024u * 1024u, 64},
      {"DRAM", 4e10, 1e-7, 0, 64},  // shared across all tenants
  };
  m.simd_width_bits = 256;
  m.simd_fma = true;
  return m;
}

}  // namespace

const MachineRegistry& MachineRegistry::builtin() {
  static const MachineRegistry registry = [] {
    MachineRegistry r;
    r.add(das5_node());
    r.add(das5_gpu());
    r.add(laptop_x86());
    r.add(cloud_smt());
    return r;
  }();
  return registry;
}

void MachineRegistry::add(Machine m) {
  m.check();
  require_unique_name(machines_, m.name, "machine");
  machines_.push_back(std::move(m));
}

bool MachineRegistry::contains(std::string_view name) const {
  for (const Machine& m : machines_)
    if (m.name == name) return true;
  return false;
}

const Machine& MachineRegistry::get(std::string_view name) const {
  for (const Machine& m : machines_)
    if (m.name == name) return m;
  std::string known;
  for (const Machine& m : machines_) {
    if (!known.empty()) known += ", ";
    known += m.name;
  }
  throw Error("machine: no preset named '" + std::string(name) +
              "' (known: " + known + ")");
}

std::vector<std::string> MachineRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(machines_.size());
  for (const Machine& m : machines_) out.push_back(m.name);
  return out;
}

Machine resolve(const std::string& spec) {
  PE_REQUIRE(!spec.empty(), "empty machine spec");
  const MachineRegistry& presets = MachineRegistry::builtin();
  if (presets.contains(spec)) return presets.get(spec);
  // Not a preset: treat as a file path. Distinguish the two failure modes
  // so PERFENG_MACHINE=typo explains itself.
  try {
    return load_json_file(spec);
  } catch (const Error& e) {
    if (spec.find('/') == std::string::npos &&
        spec.find(".json") == std::string::npos) {
      throw Error("machine: '" + spec +
                  "' is neither a built-in preset nor a readable JSON "
                  "file (" + e.what() + ")");
    }
    throw;
  }
}

std::optional<Machine> machine_from_env() {
  const char* spec = std::getenv(kMachineEnv);
  if (spec == nullptr || spec[0] == '\0') return std::nullopt;
  return resolve(spec);
}

Machine resolve_or_preset(const std::string& preset_name) {
  if (auto m = machine_from_env()) return *m;
  return MachineRegistry::builtin().get(preset_name);
}

}  // namespace pe::machine
