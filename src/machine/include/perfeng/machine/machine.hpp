#pragma once

/// \file machine.hpp
/// The machine description layer: a first-class, serializable value type
/// for the numbers every model in the toolbox is calibrated from.
///
/// Assignments 1-3 all start from the same machine characterization (peak
/// FLOP/s, the bandwidth/latency/capacity hierarchy, core count); a
/// `Machine` captures those numbers once — probed, loaded from JSON, or
/// taken from a named preset — and every model grows a `from_machine()`
/// factory so calibrations are shared instead of re-typed as positional
/// doubles. Serialization is lossless and byte-stable (save(load(save(m)))
/// == save(m)), so a published result can carry its calibration verbatim,
/// and `calibration_hash()` gives experiments a provenance column
/// ("Benchmarking as Empirical Standard": numbers travel with how they
/// were obtained).

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace pe::machine {

/// One level of the memory hierarchy, fastest first; the last level is
/// main memory (capacity 0 = unbounded).
struct MemoryLevel {
  std::string name;            ///< e.g. "L1", "L2", "DRAM"
  double bandwidth = 0.0;      ///< sustainable bytes/s at this level
  double latency = 0.0;        ///< dependent-load seconds (0 = unknown)
  std::size_t capacity = 0;    ///< bytes; 0 on the last level = unbounded
  std::size_t line_bytes = 64; ///< transfer granularity

  bool operator==(const MemoryLevel&) const = default;
};

/// A complete machine description. All models calibrate from this.
struct Machine {
  std::string name;         ///< registry/preset identity, e.g. "das5-node"
  std::string description;  ///< one human line about the hardware
  std::string source;       ///< provenance: "preset", "probe", "file <p>"

  double peak_flops = 0.0;  ///< single-core FLOP/s roof
  unsigned cores = 1;       ///< physical cores (parallel compute roof)

  /// Memory hierarchy, fastest level first, last level = main memory.
  std::vector<MemoryLevel> hierarchy;

  /// Optional energy coefficients (0/0 = not calibrated).
  double static_watts = 0.0;        ///< idle/leakage power
  double peak_dynamic_watts = 0.0;  ///< extra power at 100% utilization

  /// Optional interconnect (Hockney alpha-beta; 0/0 = not calibrated).
  /// For a node preset this is the network link; for an accelerator
  /// preset it is the host-device transfer link.
  double link_alpha = 0.0;  ///< per-message/transfer latency (s)
  double link_beta = 0.0;   ///< per-byte time (s)

  /// Optional scheduler calibration from `probe_scheduler` (0/0 = not
  /// calibrated): per-task dispatch cost of the pool's two submission
  /// paths, in nanoseconds. Granularity models use these to pick chunk
  /// sizes large enough that dispatch is noise.
  double sched_submit_ns = 0.0;  ///< legacy submit/future path, per task
  double sched_bulk_ns = 0.0;    ///< bulk parallel_for path, per chunk

  /// Optional SIMD capability (0/false = not calibrated): widest usable
  /// vector register and whether fused multiply-add is available. Probed
  /// at runtime by pe::simd::runtime_simd_caps() (see from_probe), or set
  /// honestly in presets; peak_flops already *implies* these (the FLOP/
  /// cycle factor), so recording them makes the implication auditable and
  /// puts them under calibration_hash.
  unsigned simd_width_bits = 0;  ///< 0 = unknown/scalar-only
  bool simd_fma = false;         ///< fused multiply-add available

  bool operator==(const Machine&) const = default;

  // --- derived views the models calibrate from ---

  /// Main memory (the last hierarchy level); check() guarantees presence.
  [[nodiscard]] const MemoryLevel& dram() const;

  /// Fastest level (the first hierarchy level).
  [[nodiscard]] const MemoryLevel& fastest() const;

  [[nodiscard]] double dram_bandwidth() const { return dram().bandwidth; }
  [[nodiscard]] double cache_bandwidth() const { return fastest().bandwidth; }

  /// Capacity of the largest cache (levels before main memory); falls back
  /// to 2 MiB when the hierarchy has no cache level.
  [[nodiscard]] std::size_t largest_cache_bytes() const;

  /// Whole-machine compute roof: per-core peak times core count.
  [[nodiscard]] double total_peak_flops() const {
    return peak_flops * static_cast<double>(cores);
  }

  /// FLOPs per byte at the single-core Roofline ridge point.
  [[nodiscard]] double ridge_intensity() const;

  [[nodiscard]] bool has_energy() const {
    return static_watts > 0.0 || peak_dynamic_watts > 0.0;
  }
  [[nodiscard]] bool has_link() const {
    return link_alpha > 0.0 || link_beta > 0.0;
  }
  [[nodiscard]] bool has_scheduler() const {
    return sched_submit_ns > 0.0 || sched_bulk_ns > 0.0;
  }
  [[nodiscard]] bool has_simd() const {
    return simd_width_bits > 0 || simd_fma;
  }

  /// Double lanes per vector register (1 when SIMD is uncalibrated — the
  /// scalar "vector").
  [[nodiscard]] unsigned simd_double_lanes() const {
    return simd_width_bits >= 64 ? simd_width_bits / 64 : 1;
  }

  /// Per-chunk dispatch cost of the bulk parallel_for path, in seconds
  /// (0.0 when the scheduler was never probed). The composition layer
  /// charges this once per parallel region it predicts.
  [[nodiscard]] double bulk_dispatch_seconds() const {
    return sched_bulk_ns * 1e-9;
  }

  /// Validate the description; throws pe::Error on the first violation.
  /// Rejects: empty name, non-positive peak, zero cores, empty hierarchy,
  /// duplicate/empty level names, non-positive bandwidths or line sizes,
  /// and non-monotone hierarchies (bandwidth must not increase and
  /// capacity must strictly increase fastest -> main memory; latency,
  /// where known, must not decrease).
  void check() const;

  /// One-line human-readable summary (peaks, ridge, hierarchy).
  [[nodiscard]] std::string summary() const;

  /// Stable 16-hex-digit digest of the canonical JSON form; recorded as
  /// the provenance column next to measurements calibrated from this
  /// machine. Two equal machines hash equal on every platform.
  [[nodiscard]] std::string calibration_hash() const;
};

/// Canonical JSON form: fixed key order, two-space indent, doubles printed
/// round-trip losslessly. `from_json(to_json(m))` reproduces `m` exactly
/// and `to_json` of the reparse is byte-identical.
[[nodiscard]] std::string to_json(const Machine& m);

/// Parse a machine description. Throws pe::Error carrying `source` and the
/// 1-based line of the offending token (same contract as the CSV and
/// Matrix Market loaders) on malformed or incomplete input. The parsed
/// machine is check()ed before it is returned.
[[nodiscard]] Machine from_json(std::string_view text,
                                std::string_view source = "<memory>");

/// Save the canonical JSON form to `path`; throws pe::Error on IO failure.
void save_json_file(const Machine& m, const std::string& path);

/// Load and validate a machine from a JSON file; throws pe::Error on IO
/// failure or malformed content (with `path` and line in the message).
[[nodiscard]] Machine load_json_file(const std::string& path);

}  // namespace pe::machine
