#pragma once

/// \file registry.hpp
/// Named machine presets and the shared `PERFENG_MACHINE` resolver.
///
/// The registry holds validated machine descriptions by name; the built-in
/// instance ships the course's reference systems (the DAS-5 node and GPU
/// from the paper, a laptop baseline, a shared cloud node). Bench drivers
/// and examples resolve their machine through one spec string — a preset
/// name or a JSON file path — usually taken from the `PERFENG_MACHINE`
/// environment variable, so a probe saved once is reused by every tool
/// instead of re-run or hand-wired.

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "perfeng/machine/machine.hpp"

namespace pe::machine {

/// Environment variable every driver consults: preset name or JSON path.
inline constexpr const char* kMachineEnv = "PERFENG_MACHINE";

/// A named collection of validated machine descriptions.
class MachineRegistry {
 public:
  MachineRegistry() = default;

  /// The built-in presets (das5-node, das5-gpu, laptop-x86, cloud-smt).
  static const MachineRegistry& builtin();

  /// Register a machine; it is check()ed and its name must be unique.
  void add(Machine m);

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Look up by name; throws pe::Error listing the known names on a miss.
  [[nodiscard]] const Machine& get(std::string_view name) const;

  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const { return machines_.size(); }

 private:
  std::vector<Machine> machines_;
};

/// Resolve a machine spec: a built-in preset name, else a JSON file path.
/// Throws pe::Error when the spec is neither.
[[nodiscard]] Machine resolve(const std::string& spec);

/// Resolve `PERFENG_MACHINE` when set and non-empty; nullopt otherwise
/// (callers fall back to probing or a default preset).
[[nodiscard]] std::optional<Machine> machine_from_env();

/// The shared driver entry point: `PERFENG_MACHINE` when set, else the
/// named built-in preset.
[[nodiscard]] Machine resolve_or_preset(const std::string& preset_name);

}  // namespace pe::machine
