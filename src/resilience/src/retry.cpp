#include "perfeng/resilience/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace pe::resilience {

void validate(const RetryPolicy& policy) {
  PE_REQUIRE(policy.max_attempts >= 1, "need at least one attempt");
  PE_REQUIRE(policy.cv_threshold >= 0.0, "CV threshold must be non-negative");
  PE_REQUIRE(policy.initial_backoff_seconds >= 0.0,
             "backoff must be non-negative");
  PE_REQUIRE(policy.backoff_multiplier >= 1.0,
             "backoff multiplier must be >= 1");
  PE_REQUIRE(policy.max_backoff_seconds >= 0.0,
             "backoff cap must be non-negative");
}

double backoff_seconds(const RetryPolicy& policy, int attempt) {
  if (attempt <= 1 || policy.initial_backoff_seconds <= 0.0) return 0.0;
  const double grown =
      policy.initial_backoff_seconds *
      std::pow(policy.backoff_multiplier, static_cast<double>(attempt - 2));
  return std::min(grown, policy.max_backoff_seconds);
}

void sleep_for_seconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace pe::resilience
