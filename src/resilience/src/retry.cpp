#include "perfeng/resilience/retry.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace pe::resilience {

void validate(const RetryPolicy& policy) {
  PE_REQUIRE(policy.max_attempts >= 1, "need at least one attempt");
  PE_REQUIRE(policy.cv_threshold >= 0.0, "CV threshold must be non-negative");
  PE_REQUIRE(policy.initial_backoff_seconds >= 0.0,
             "backoff must be non-negative");
  PE_REQUIRE(policy.backoff_multiplier >= 1.0,
             "backoff multiplier must be >= 1");
  PE_REQUIRE(policy.max_backoff_seconds >= 0.0,
             "backoff cap must be non-negative");
}

double backoff_seconds(const RetryPolicy& policy, int attempt) {
  if (attempt <= 1 || policy.initial_backoff_seconds <= 0.0) return 0.0;
  const double grown =
      policy.initial_backoff_seconds *
      std::pow(policy.backoff_multiplier, static_cast<double>(attempt - 2));
  return std::min(grown, policy.max_backoff_seconds);
}

BackoffSchedule::BackoffSchedule(RetryPolicy policy)
    : policy_(policy), rng_(policy.jitter_seed) {
  validate(policy_);
}

double BackoffSchedule::next() {
  ++attempt_;
  if (policy_.initial_backoff_seconds <= 0.0) return 0.0;
  switch (policy_.jitter) {
    case BackoffJitter::kNone:
      return backoff_seconds(policy_, attempt_);
    case BackoffJitter::kDecorrelated: {
      // sleep = min(cap, uniform(base, 3 * previous)): grows roughly
      // exponentially in expectation but decorrelates concurrent retriers.
      const double base = policy_.initial_backoff_seconds;
      const double hi = std::max(base, 3.0 * previous_);
      previous_ = std::min(policy_.max_backoff_seconds,
                           rng_.next_range_double(base, hi));
      return previous_;
    }
  }
  return 0.0;  // unreachable; keeps -Wswitch quiet on exotic values
}

void BackoffSchedule::reset() {
  attempt_ = 1;
  previous_ = 0.0;
  rng_.reseed(policy_.jitter_seed);
}

void sleep_for_seconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace pe::resilience
