#include "perfeng/resilience/watchdog.hpp"

#include <string>

namespace pe::resilience::detail {

MeasurementError timeout_error(double deadline_seconds,
                               std::string_view label) {
  return MeasurementError(FailureKind::kTimeout, std::string(label),
                          /*attempts=*/1, deadline_seconds,
                          "wall-clock deadline of " +
                              std::to_string(deadline_seconds) +
                              " s exceeded; runaway thread abandoned");
}

}  // namespace pe::resilience::detail
