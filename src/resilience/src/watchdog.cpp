#include "perfeng/resilience/watchdog.hpp"

#include <chrono>
#include <future>
#include <memory>
#include <thread>

namespace pe::resilience {

void run_with_deadline(double deadline_seconds,
                       const std::function<void()>& work,
                       std::string_view label) {
  PE_REQUIRE(static_cast<bool>(work), "null work");
  if (deadline_seconds <= 0.0) {
    work();
    return;
  }

  // The promise is shared with the helper so it stays valid even after a
  // timeout abandons the thread mid-run.
  auto done = std::make_shared<std::promise<void>>();
  std::future<void> finished = done->get_future();
  std::thread helper([done, work] {
    try {
      work();
      done->set_value();
    } catch (...) {
      done->set_exception(std::current_exception());
    }
  });

  const auto status = finished.wait_for(
      std::chrono::duration<double>(deadline_seconds));
  if (status == std::future_status::ready) {
    helper.join();
    finished.get();  // rethrow the work's exception, if any
    return;
  }
  helper.detach();  // abandon the runaway; see header for the contract
  throw MeasurementError(FailureKind::kTimeout, std::string(label),
                         /*attempts=*/1, deadline_seconds,
                         "wall-clock deadline of " +
                             std::to_string(deadline_seconds) +
                             " s exceeded; runaway thread abandoned");
}

}  // namespace pe::resilience
