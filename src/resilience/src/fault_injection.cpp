#include "perfeng/resilience/fault_injection.hpp"

#include <chrono>
#include <thread>

namespace pe::resilience {

namespace {

/// FNV-1a, so per-site RNG streams are stable across platforms (std::hash
/// is implementation-defined).
std::uint64_t hash_site(std::string_view site) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FaultInjected::FaultInjected(std::string site, int visit,
                             const std::string& message)
    : Error(message.empty()
                ? "injected fault at '" + site + "' (visit " +
                      std::to_string(visit) + ")"
                : message),
      site_(std::move(site)),
      visit_(visit) {}

std::vector<std::string_view> FaultInjector::known_sites() {
  return known_fault_sites();
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (const FaultSpec& spec : plan_.faults) {
    PE_REQUIRE(!spec.site.empty(), "fault spec needs a site name");
    if (!is_known_fault_site(spec.site)) {
      std::string msg = "fault spec names unknown site '" + spec.site +
                        "'; known sites:";
      for (const std::string_view known : known_fault_sites()) {
        msg.append(" ").append(known);
      }
      msg.append(
          " (register additional sites with pe::register_fault_site)");
      throw Error(msg);
    }
    PE_REQUIRE(spec.probability >= 0.0 && spec.probability <= 1.0,
               "fault probability must be in [0, 1]");
    PE_REQUIRE(spec.skip_first >= 0, "skip_first must be non-negative");
    PE_REQUIRE(spec.delay_seconds >= 0.0, "delay must be non-negative");
    require_unique_name(sites_, spec.site, "fault spec site",
                        [](const auto& kv) -> const std::string& {
                          return kv.first;
                        });
    SiteState state;
    state.spec = &spec;
    state.rng.reseed(plan_.seed ^ hash_site(spec.site));
    sites_.emplace(spec.site, std::move(state));
  }
}

const FaultSpec* FaultInjector::roll(SiteState& state, Hook hook) {
  ++state.visits;
  const FaultSpec* spec = state.spec;
  if (spec == nullptr) return nullptr;
  if (state.visits <= spec->skip_first) return nullptr;
  // Consume one RNG draw per eligible visit — even when the hook cannot
  // execute this spec kind or max_fires already capped the rule — so the
  // per-site stream stays aligned across runs.
  const bool hit =
      spec->probability >= 1.0 || state.rng.next_double() < spec->probability;
  // A site can host both hooks (e.g. kernel.call passes fault_point and
  // fault_value); only the hook that can execute the spec may consume its
  // fire budget, so `fires` counts real faults, never no-op hits.
  const bool executable = hook == Hook::kValue
                              ? spec->kind == FaultKind::kCorruptValue
                              : spec->kind != FaultKind::kCorruptValue;
  if (!hit || !executable) return nullptr;
  if (spec->max_fires >= 0 && state.fires >= spec->max_fires) return nullptr;
  ++state.fires;
  return spec;
}

void FaultInjector::at(std::string_view site) {
  const FaultSpec* fired = nullptr;
  int visit = 0;
  {
    std::lock_guard lock(mutex_);
    auto [it, _] = sites_.try_emplace(std::string(site));
    fired = roll(it->second, Hook::kPoint);
    visit = it->second.visits;
  }
  if (fired == nullptr) return;
  switch (fired->kind) {
    case FaultKind::kThrow:
      throw FaultInjected(std::string(site), visit, fired->message);
    case FaultKind::kDelay:
      // Sleep outside the lock so a stalled site does not stall others.
      std::this_thread::sleep_for(
          std::chrono::duration<double>(fired->delay_seconds));
      return;
    case FaultKind::kCorruptValue:
      return;  // unreachable: roll() never fires corruption through at()
  }
}

double FaultInjector::corrupt(std::string_view site, double value) {
  const FaultSpec* fired = nullptr;
  {
    std::lock_guard lock(mutex_);
    auto [it, _] = sites_.try_emplace(std::string(site));
    fired = roll(it->second, Hook::kValue);
  }
  if (fired == nullptr) return value;
  return value * fired->corrupt_scale;
}

int FaultInjector::visits(std::string_view site) const {
  std::lock_guard lock(mutex_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.visits;
}

int FaultInjector::fires(std::string_view site) const {
  std::lock_guard lock(mutex_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

ScopedFaultInjection::ScopedFaultInjection(FaultPlan plan)
    : injector_(std::move(plan)) {
  PE_REQUIRE(fault_hook() == nullptr,
             "another fault injection scope is already active");
  set_fault_hook(&injector_);
}

ScopedFaultInjection::~ScopedFaultInjection() { set_fault_hook(nullptr); }

}  // namespace pe::resilience
