#include "perfeng/resilience/measurement_error.hpp"

namespace pe::resilience {

std::string_view to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kTimeout:
      return "timeout";
    case FailureKind::kFault:
      return "fault";
    case FailureKind::kUnstable:
      return "unstable";
  }
  return "unknown";
}

namespace {
std::string format_message(FailureKind kind, const std::string& label,
                           int attempts, double elapsed_seconds,
                           const std::string& detail) {
  std::string s = "measurement '" + label + "' failed (" +
                  std::string(to_string(kind)) + ") after " +
                  std::to_string(attempts) +
                  (attempts == 1 ? " attempt" : " attempts");
  s += ", " + std::to_string(elapsed_seconds) + " s elapsed";
  if (!detail.empty()) s += ": " + detail;
  return s;
}
}  // namespace

MeasurementError::MeasurementError(FailureKind kind, std::string label,
                                   int attempts, double elapsed_seconds,
                                   const std::string& detail)
    : Error(format_message(kind, label, attempts, elapsed_seconds, detail)),
      kind_(kind),
      label_(std::move(label)),
      attempts_(attempts),
      elapsed_(elapsed_seconds),
      detail_(detail) {}

}  // namespace pe::resilience
