#pragma once

/// \file retry.hpp
/// Bounded retry with exponential backoff for noisy measurements.
///
/// A sample whose coefficient of variation is too high usually means the
/// host was noisy (preemption, thermal events, a neighbour VM) — the course
/// lesson is to re-measure, not to average garbage. `RetryPolicy` bounds
/// how often and how patiently: each rejected attempt sleeps an
/// exponentially growing backoff before the next, and the attempt count is
/// recorded in the `Measurement` so reports can show how hard a number was
/// to obtain.

#include "perfeng/common/error.hpp"

namespace pe::resilience {

/// Knobs for re-measuring when a sample is too noisy.
struct RetryPolicy {
  int max_attempts = 1;          ///< total attempts (1 disables retry)
  double cv_threshold = 0.10;    ///< accept when sample CV <= this
  double initial_backoff_seconds = 0.0;  ///< sleep before attempt 2
  double backoff_multiplier = 2.0;       ///< growth per further attempt
  double max_backoff_seconds = 1.0;      ///< cap on any single sleep
  bool fail_on_unstable = false;  ///< throw MeasurementError(kUnstable)
                                  ///< instead of returning the last attempt
};

/// Validate a policy's invariants; throws pe::Error on nonsense values.
void validate(const RetryPolicy& policy);

/// Backoff before the given 1-based attempt (attempt 1 never sleeps):
/// initial * multiplier^(attempt - 2), capped at max_backoff_seconds.
[[nodiscard]] double backoff_seconds(const RetryPolicy& policy, int attempt);

/// Sleep helper used between attempts; no-op for non-positive durations.
void sleep_for_seconds(double seconds);

}  // namespace pe::resilience
