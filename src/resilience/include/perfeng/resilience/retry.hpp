#pragma once

/// \file retry.hpp
/// Bounded retry with exponential backoff for noisy measurements.
///
/// A sample whose coefficient of variation is too high usually means the
/// host was noisy (preemption, thermal events, a neighbour VM) — the course
/// lesson is to re-measure, not to average garbage. `RetryPolicy` bounds
/// how often and how patiently: each rejected attempt sleeps an
/// exponentially growing backoff before the next, and the attempt count is
/// recorded in the `Measurement` so reports can show how hard a number was
/// to obtain.

#include <cstdint>

#include "perfeng/common/error.hpp"
#include "perfeng/common/rng.hpp"

namespace pe::resilience {

/// How successive backoffs are spread out. `kNone` is the original fixed
/// exponential schedule; `kDecorrelated` is the AWS-style decorrelated
/// jitter (each sleep drawn uniformly from [initial, 3 * previous sleep],
/// capped) that keeps a fleet of retriers from thundering in lockstep.
/// Jittered schedules are seeded, so chaos tests stay bit-reproducible.
enum class BackoffJitter {
  kNone,          ///< deterministic: initial * multiplier^(attempt - 2)
  kDecorrelated,  ///< seeded decorrelated jitter over the same base/cap
};

/// Knobs for re-measuring when a sample is too noisy.
struct RetryPolicy {
  int max_attempts = 1;          ///< total attempts (1 disables retry)
  double cv_threshold = 0.10;    ///< accept when sample CV <= this
  double initial_backoff_seconds = 0.0;  ///< sleep before attempt 2
  double backoff_multiplier = 2.0;       ///< growth per further attempt
  double max_backoff_seconds = 1.0;      ///< cap on any single sleep
  bool fail_on_unstable = false;  ///< throw MeasurementError(kUnstable)
                                  ///< instead of returning the last attempt
  BackoffJitter jitter = BackoffJitter::kNone;  ///< spread of the schedule
  std::uint64_t jitter_seed = 0;  ///< seed for jittered schedules
};

/// Validate a policy's invariants; throws pe::Error on nonsense values.
void validate(const RetryPolicy& policy);

/// Backoff before the given 1-based attempt (attempt 1 never sleeps):
/// initial * multiplier^(attempt - 2), capped at max_backoff_seconds.
/// This is the un-jittered closed form; jittered schedules are stateful —
/// use a `BackoffSchedule`.
[[nodiscard]] double backoff_seconds(const RetryPolicy& policy, int attempt);

/// Stateful backoff sequence over a policy. `next()` returns the sleep
/// before the next retry (first call = before attempt 2, and so on);
/// `reset()` restarts the sequence, including the jitter stream, so a
/// reset schedule replays the same sleeps — the determinism the chaos
/// tests and the circuit breaker's trip backoff rely on. With
/// `BackoffJitter::kNone` the sequence reproduces `backoff_seconds`
/// exactly, so adopting the schedule changes nothing for existing
/// policies.
class BackoffSchedule {
 public:
  explicit BackoffSchedule(RetryPolicy policy);

  /// Sleep (seconds) before the next retry; advances the sequence.
  [[nodiscard]] double next();

  /// Restart the sequence (attempt counter and jitter stream).
  void reset();

  [[nodiscard]] const RetryPolicy& policy() const noexcept { return policy_; }

 private:
  RetryPolicy policy_;
  Rng rng_;
  int attempt_ = 1;       ///< attempt the next `next()` call precedes - 1
  double previous_ = 0.0; ///< last sleep handed out (decorrelated state)
};

/// Sleep helper used between attempts; no-op for non-positive durations.
void sleep_for_seconds(double seconds);

}  // namespace pe::resilience
