#pragma once

/// \file watchdog.hpp
/// Wall-clock deadlines around possibly-runaway work.
///
/// A mis-parameterized kernel (or a batch calibration chasing a kernel whose
/// runtime exploded) can hang an unattended campaign forever. The watchdog
/// runs the work on a helper thread and waits with a deadline: on timeout it
/// throws a structured `MeasurementError` (kind kTimeout) and *abandons* the
/// helper — the runaway thread is detached, not killed, because C++ has no
/// safe cross-thread cancellation. Consequences callers must respect:
///
///  - the abandoned thread keeps running; state it references must outlive
///    it (the closure itself is copied into the thread), and a truly
///    non-terminating kernel leaks one thread for the process lifetime;
///  - the watchdog is for *campaign survival*, not precision: the helper
///    thread adds scheduling noise, so leave `deadline_seconds` at 0 (run
///    inline, no watchdog) when measuring ultra-short kernels.

#include <functional>
#include <string_view>

#include "perfeng/resilience/measurement_error.hpp"

namespace pe::resilience {

/// Run `work` to completion, or throw MeasurementError(kTimeout) after
/// `deadline_seconds` of wall-clock time. A non-positive deadline runs the
/// work inline with no watchdog. Exceptions thrown by `work` are rethrown
/// on the calling thread. `label` names the work in the error.
void run_with_deadline(double deadline_seconds,
                       const std::function<void()>& work,
                       std::string_view label = "watchdog");

}  // namespace pe::resilience
