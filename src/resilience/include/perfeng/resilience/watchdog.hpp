#pragma once

/// \file watchdog.hpp
/// Wall-clock deadlines around possibly-runaway work.
///
/// A mis-parameterized kernel (or a batch calibration chasing a kernel whose
/// runtime exploded) can hang an unattended campaign forever. The watchdog
/// runs the work on a helper thread and waits with a deadline: on timeout it
/// throws a structured `MeasurementError` (kind kTimeout) and *abandons* the
/// helper — the runaway thread is detached, not killed, because C++ has no
/// safe cross-thread cancellation. To make abandonment safe, the callable is
/// *moved into heap state co-owned by the helper thread*, so the closure and
/// everything it captures by value stay alive after the caller's stack
/// unwinds. Consequences callers must respect:
///
///  - anything the closure captures *by reference* must outlive the
///    abandoned thread (capture by value or via shared_ptr when in doubt),
///    and a truly non-terminating kernel leaks one thread for the process
///    lifetime;
///  - the watchdog is for *campaign survival*, not precision: the helper
///    thread adds scheduling noise, so leave `deadline_seconds` at 0 (run
///    inline, no watchdog) when measuring ultra-short kernels.

#include <chrono>
#include <exception>
#include <future>
#include <memory>
#include <string_view>
#include <thread>
#include <type_traits>

#include "perfeng/resilience/measurement_error.hpp"

namespace pe::resilience {

namespace detail {

/// Builds the structured timeout error thrown when a deadline expires.
[[nodiscard]] MeasurementError timeout_error(double deadline_seconds,
                                             std::string_view label);

}  // namespace detail

/// Run `work` to completion and return its result, or throw
/// MeasurementError(kTimeout) after `deadline_seconds` of wall-clock time.
/// A non-positive deadline runs the work inline with no watchdog.
/// Exceptions thrown by `work` are rethrown on the calling thread. `label`
/// names the work in the error. The callable is moved into shared heap
/// state owned jointly with the helper thread (see the file comment for
/// the lifetime contract on reference captures).
template <typename Work>
auto run_with_deadline(double deadline_seconds, Work work,
                       std::string_view label = "watchdog")
    -> std::invoke_result_t<Work&> {
  using Result = std::invoke_result_t<Work&>;
  if constexpr (std::is_constructible_v<bool, const Work&>) {
    PE_REQUIRE(static_cast<bool>(work), "null work");
  }
  if (deadline_seconds <= 0.0) return work();

  // The helper co-owns the closure and the promise, so a timeout that
  // unwinds this frame leaves the abandoned thread with valid state.
  struct Shared {
    Work work;
    std::promise<Result> done;
    explicit Shared(Work&& w) : work(std::move(w)) {}
  };
  auto shared = std::make_shared<Shared>(std::move(work));
  std::future<Result> finished = shared->done.get_future();
  std::thread helper([shared] {
    try {
      if constexpr (std::is_void_v<Result>) {
        shared->work();
        shared->done.set_value();
      } else {
        shared->done.set_value(shared->work());
      }
    } catch (...) {
      shared->done.set_exception(std::current_exception());
    }
  });

  const auto status =
      finished.wait_for(std::chrono::duration<double>(deadline_seconds));
  if (status == std::future_status::ready) {
    helper.join();
    return finished.get();  // rethrows the work's exception, if any
  }
  helper.detach();  // abandon the runaway; see file comment for the contract
  throw detail::timeout_error(deadline_seconds, label);
}

}  // namespace pe::resilience
