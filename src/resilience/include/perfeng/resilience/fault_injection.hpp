#pragma once

/// \file fault_injection.hpp
/// Deterministic, seeded fault injection for chaos testing the harness.
///
/// A `FaultPlan` names the sites to attack (see pe::fault_sites) and how:
/// throw a `FaultInjected` error, delay the caller, or corrupt a measured
/// value. The `FaultInjector` executes the plan with one seeded RNG stream
/// per site, so a single-threaded campaign produces the *same* failure set
/// on every run with the same seed — the property the chaos tests and
/// `bench/chaos_suite.cpp` assert. Install the injector process-wide with
/// `ScopedFaultInjection`; every `pe::fault_point` call then consults it.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "perfeng/common/error.hpp"
#include "perfeng/common/fault_hook.hpp"
#include "perfeng/common/rng.hpp"

namespace pe::resilience {

/// What happens when a matching site fires.
enum class FaultKind {
  kThrow,         ///< throw FaultInjected from the site
  kDelay,         ///< sleep `delay_seconds` at the site
  kCorruptValue,  ///< scale values passing fault_value() by `corrupt_scale`
};

/// One rule of a FaultPlan: which site, what to do, and how often.
struct FaultSpec {
  std::string site;                  ///< a pe::fault_sites name
  FaultKind kind = FaultKind::kThrow;
  double probability = 1.0;          ///< chance a visit fires, in [0, 1]
  int skip_first = 0;                ///< let the first N visits pass untouched
  int max_fires = -1;                ///< stop firing after N hits (< 0: never)
  double delay_seconds = 1e-3;       ///< kDelay: how long to stall
  double corrupt_scale = 100.0;      ///< kCorruptValue: multiplier applied
  std::string message;               ///< optional throw-message override
};

/// A reproducible chaos scenario: a seed plus the fault rules.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultSpec> faults;
};

/// Error thrown by sites under a kThrow fault.
class FaultInjected : public Error {
 public:
  FaultInjected(std::string site, int visit, const std::string& message);

  [[nodiscard]] const std::string& site() const noexcept { return site_; }
  /// 1-based visit count at which the fault fired.
  [[nodiscard]] int visit() const noexcept { return visit_; }

 private:
  std::string site_;
  int visit_;
};

/// Executes a FaultPlan at the process-wide fault sites. Thread-safe;
/// determinism is per-site visit order (single-threaded campaigns are
/// exactly reproducible, concurrent sites are reproducible per site as
/// long as each site is visited from one thread at a time).
class FaultInjector final : public FaultHook {
 public:
  explicit FaultInjector(FaultPlan plan);

  void at(std::string_view site) override;
  double corrupt(std::string_view site, double value) override;

  /// Total times a site was passed (0 for unknown/unattacked sites).
  [[nodiscard]] int visits(std::string_view site) const;
  /// Times a site actually fired its fault.
  [[nodiscard]] int fires(std::string_view site) const;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Every site a plan may attack: `pe::known_fault_sites()` re-exported
  /// for chaos drivers (bench/chaos_suite enumerates injection coverage
  /// from it). The constructor validates every spec against this list and
  /// throws a pe::Error naming the known sites on a miss — a typo'd site
  /// would otherwise silently never fire.
  [[nodiscard]] static std::vector<std::string_view> known_sites();

 private:
  struct SiteState {
    const FaultSpec* spec = nullptr;  // owned by plan_
    Rng rng{0};
    int visits = 0;
    int fires = 0;
  };

  /// Which hook is consulting the site: fault_point() can execute kThrow /
  /// kDelay specs, fault_value() only kCorruptValue specs. A visit through
  /// the wrong hook must not consume the spec's fire budget.
  enum class Hook { kPoint, kValue };

  /// Returns the spec if this visit should fire through `hook`, bumping
  /// counters. Only a visit whose hook matches the spec kind can fire.
  const FaultSpec* roll(SiteState& state, Hook hook);

  FaultPlan plan_;
  mutable std::mutex mutex_;
  std::map<std::string, SiteState, std::less<>> sites_;
};

/// RAII guard: installs the injector as the process-wide hook on
/// construction and removes it on destruction. Only one may be active at a
/// time (nesting throws pe::Error — overlapping chaos plans are a test bug).
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultPlan plan);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  [[nodiscard]] FaultInjector& injector() noexcept { return injector_; }

 private:
  FaultInjector injector_;
};

}  // namespace pe::resilience
