#pragma once

/// \file measurement_error.hpp
/// Structured errors for failed measurements.
///
/// When the harness gives up on a measurement — the kernel ran past its
/// wall-clock deadline, an injected or real fault fired, or the sample never
/// stabilized within the retry budget — it throws a `MeasurementError` that
/// records *why* (kind), *what* (label), and *how hard it tried* (attempts,
/// elapsed seconds). Campaign drivers (`BenchmarkSuite`, `Experiment`) catch
/// these and degrade gracefully instead of aborting the sweep.

#include <string>
#include <string_view>

#include "perfeng/common/error.hpp"

namespace pe::resilience {

/// Why a measurement was abandoned.
enum class FailureKind {
  kTimeout,   ///< wall-clock deadline exceeded (watchdog fired)
  kFault,     ///< the kernel / backend threw
  kUnstable,  ///< sample CV stayed above threshold after all attempts
};

/// Human-readable name of a FailureKind ("timeout", "fault", "unstable").
[[nodiscard]] std::string_view to_string(FailureKind kind);

/// Structured measurement failure; `what()` embeds all fields.
class MeasurementError : public Error {
 public:
  MeasurementError(FailureKind kind, std::string label, int attempts,
                   double elapsed_seconds, const std::string& detail);

  [[nodiscard]] FailureKind kind() const noexcept { return kind_; }
  /// Label of the measurement that failed (benchmark / kernel name).
  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  /// Attempts consumed before giving up (>= 1).
  [[nodiscard]] int attempts() const noexcept { return attempts_; }
  /// Wall-clock seconds spent before giving up.
  [[nodiscard]] double elapsed_seconds() const noexcept { return elapsed_; }
  /// The bare failure description, without the formatted prefix — used
  /// when re-tagging an error with updated attempt counts.
  [[nodiscard]] const std::string& detail() const noexcept { return detail_; }

 private:
  FailureKind kind_;
  std::string label_;
  int attempts_;
  double elapsed_;
  std::string detail_;
};

}  // namespace pe::resilience
