#pragma once

/// \file stream.hpp
/// STREAM-style sustainable memory bandwidth microbenchmarks.
///
/// A from-scratch reimplementation of McCalpin's four STREAM kernels
/// (Copy, Scale, Add, Triad) used throughout the course to calibrate the
/// memory ceiling of Roofline and ECM models. Traffic accounting follows the
/// original STREAM convention: write traffic counts once (no write-allocate
/// accounting), i.e. Copy/Scale move 2N elements, Add/Triad move 3N.

#include <cstddef>
#include <string>
#include <vector>

#include "perfeng/measure/benchmark_runner.hpp"

namespace pe::microbench {

/// Which STREAM kernel.
enum class StreamKernel { kCopy, kScale, kAdd, kTriad };

/// Human-readable kernel name ("Copy", ...).
[[nodiscard]] std::string stream_kernel_name(StreamKernel k);

/// Bytes moved per element by the STREAM convention (2 or 3 doubles).
[[nodiscard]] std::size_t stream_bytes_per_element(StreamKernel k);

/// FLOPs per element (0 for Copy, 1 for Scale/Add, 2 for Triad).
[[nodiscard]] std::size_t stream_flops_per_element(StreamKernel k);

/// Result of one STREAM measurement.
struct StreamResult {
  StreamKernel kernel = StreamKernel::kCopy;
  std::size_t elements = 0;          ///< vector length N (doubles)
  double best_bandwidth = 0.0;       ///< bytes/s from the best repetition
  double median_bandwidth = 0.0;     ///< bytes/s from the median repetition
  Measurement measurement;           ///< raw timing sample
};

/// Run one STREAM kernel on vectors of `elements` doubles.
[[nodiscard]] StreamResult run_stream(StreamKernel kernel,
                                      std::size_t elements,
                                      const BenchmarkRunner& runner);

/// Run all four kernels; returns results in enum order.
[[nodiscard]] std::vector<StreamResult> run_stream_suite(
    std::size_t elements, const BenchmarkRunner& runner);

/// Best sustainable bandwidth across the suite (bytes/s) — the memory roof.
[[nodiscard]] double sustainable_bandwidth(std::size_t elements,
                                           const BenchmarkRunner& runner);

}  // namespace pe::microbench
