#pragma once

/// \file machine_probe.hpp
/// One-call machine characterization for model calibration.
///
/// Bundles the peak-FLOPS, STREAM, and latency microbenchmarks into a
/// `MachineCharacterization` — the numbers every model in `perfeng/models`
/// is calibrated from. This is "Stage 2: understand current performance"
/// applied to the *system* rather than the application.

#include <cstddef>
#include <string>
#include <vector>

#include "perfeng/machine/machine.hpp"
#include "perfeng/measure/benchmark_runner.hpp"

namespace pe::microbench {

/// Calibrated machine parameters.
struct MachineCharacterization {
  double peak_flops = 0.0;             ///< single-thread FLOP/s roof
  double memory_bandwidth = 0.0;       ///< sustainable DRAM bytes/s
  double cache_bandwidth = 0.0;        ///< small-working-set bytes/s
  double memory_latency = 0.0;         ///< dependent-load s at large sets
  double cache_latency = 0.0;          ///< dependent-load s at small sets
  std::vector<std::size_t> cache_level_bytes;  ///< detected level capacities

  /// Vector capability from pe::simd::runtime_simd_caps() — what the CPU
  /// *reports*, not a measurement (0/false when the probe skipped it).
  unsigned simd_width_bits = 0;
  bool simd_fma = false;

  /// Machine balance: FLOPs per byte at the ridge point of the Roofline.
  [[nodiscard]] double ridge_intensity() const {
    return memory_bandwidth > 0.0 ? peak_flops / memory_bandwidth : 0.0;
  }

  /// One-line human-readable summary.
  [[nodiscard]] std::string summary() const;
};

/// Probe settings; the defaults complete in a few seconds.
struct ProbeConfig {
  std::size_t stream_elements = 1u << 22;   ///< ~32 MiB/vector: DRAM-resident
  std::size_t cache_stream_elements = 1u << 12;  ///< ~32 KiB: L1-resident
  std::size_t latency_min_bytes = 1u << 12;
  std::size_t latency_max_bytes = 1u << 25;
};

/// Run the full characterization with the given measurement design.
[[nodiscard]] MachineCharacterization probe_machine(
    const BenchmarkRunner& runner, const ProbeConfig& config = {});

/// Probe and emit a serializable `pe::machine::Machine` directly — the
/// shape every model's `from_machine()` factory calibrates from. Save it
/// with `pe::machine::save_json_file` and point `PERFENG_MACHINE` at the
/// file to reuse the probe everywhere.
[[nodiscard]] machine::Machine probe_machine_description(
    const BenchmarkRunner& runner, const ProbeConfig& config = {},
    std::string name = "probed");

/// The shared driver path: the machine named by `PERFENG_MACHINE` (preset
/// or JSON file) when set, else a fresh probe of this host.
[[nodiscard]] machine::Machine resolve_or_probe(
    const BenchmarkRunner& runner, const ProbeConfig& config = {});

}  // namespace pe::microbench

namespace pe::machine {

/// Bridge a probe result into the machine layer: detected cache levels
/// become the hierarchy (bandwidth/latency interpolated geometrically
/// between the measured cache- and DRAM-resident endpoints, then clamped
/// monotone so a noisy probe still validates), DRAM closes the hierarchy,
/// and `cores` records the host's hardware concurrency. The result passes
/// `Machine::check()`.
[[nodiscard]] Machine from_probe(
    const pe::microbench::MachineCharacterization& probe,
    std::string name = "probed");

}  // namespace pe::machine
