#pragma once

/// \file latency.hpp
/// Pointer-chase memory latency microbenchmark.
///
/// A randomly permuted cyclic pointer chain defeats hardware prefetching, so
/// each load's address depends on the previous load's value and the measured
/// time per hop is the average memory access latency for the working set.
/// Sweeping the working-set size exposes the cache hierarchy as latency
/// plateaus; `detect_cache_levels` finds the knees — the course's classic
/// "discover your machine" exercise.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "perfeng/measure/benchmark_runner.hpp"

namespace pe::microbench {

/// Latency at one working-set size.
struct LatencyPoint {
  std::size_t bytes = 0;          ///< working-set size
  double seconds_per_load = 0.0;  ///< average dependent-load latency
};

/// Measure average dependent-load latency for a working set of `bytes`
/// (rounded down to a whole number of pointers; minimum 64 pointers).
[[nodiscard]] LatencyPoint run_latency(std::size_t bytes,
                                       const BenchmarkRunner& runner,
                                       std::uint64_t seed = 42);

/// Sweep working sets from `min_bytes` to `max_bytes` (doubling).
[[nodiscard]] std::vector<LatencyPoint> latency_sweep(
    std::size_t min_bytes, std::size_t max_bytes,
    const BenchmarkRunner& runner, std::uint64_t seed = 42);

/// Estimate cache-level boundaries from a latency sweep: returns the
/// working-set sizes (bytes) just before each latency jump of more than
/// `jump_ratio` (e.g. 1.4 = 40% step).
[[nodiscard]] std::vector<std::size_t> detect_cache_levels(
    const std::vector<LatencyPoint>& sweep, double jump_ratio = 1.4);

}  // namespace pe::microbench
