#pragma once

/// \file scheduler.hpp
/// Scheduler dispatch-overhead microbenchmark.
///
/// The pool has two submission paths with very different constant costs:
/// the classic `submit` (one heap-allocated `packaged_task` + future per
/// task) and the bulk `parallel_for` path (one POD broadcast per loop, one
/// atomic claim per chunk). Granularity decisions — how small a chunk is
/// worth dispatching — need both constants, so this probe measures them
/// the same way the STREAM/peak probes measure bandwidth and FLOP/s, and
/// `apply_scheduler_probe` records them in a `pe::machine::Machine` (where
/// they travel with the calibration hash).

#include <cstddef>
#include <string>
#include <vector>

#include "perfeng/machine/machine.hpp"
#include "perfeng/measure/benchmark_runner.hpp"

namespace pe::microbench {

/// Measured per-task dispatch constants of the two submission paths.
struct SchedulerCharacterization {
  double submit_ns = 0.0;  ///< legacy submit/future path, ns per task
  double bulk_ns = 0.0;    ///< bulk parallel_for path, ns per chunk
  std::size_t tasks = 0;          ///< tasks/chunks per timed batch
  std::size_t pool_threads = 0;   ///< workers in the probed pool
  /// Full per-repetition distributions (ns per task/chunk), so snapshot
  /// consumers see the spread, not just the median the `_ns` fields carry.
  std::vector<double> submit_samples_ns;
  std::vector<double> bulk_samples_ns;

  /// How many times cheaper one bulk chunk is than one legacy task.
  [[nodiscard]] double bulk_speedup() const {
    return bulk_ns > 0.0 ? submit_ns / bulk_ns : 0.0;
  }

  /// One-line human-readable summary.
  [[nodiscard]] std::string summary() const;
};

/// Probe settings; the defaults complete in a couple of seconds.
struct SchedulerProbeConfig {
  std::size_t tasks = 4096;      ///< dispatches per timed batch
  std::size_t pool_threads = 0;  ///< 0 = ThreadPool::default_thread_count()
};

/// Measure both dispatch paths with the given measurement design. The
/// per-task body is a single relaxed counter bump, so the measured time is
/// dispatch, not work.
[[nodiscard]] SchedulerCharacterization probe_scheduler(
    const BenchmarkRunner& runner, const SchedulerProbeConfig& config = {});

/// Record a probe in a machine description (fills `sched_submit_ns` /
/// `sched_bulk_ns`; the machine's calibration_hash changes accordingly).
void apply_scheduler_probe(machine::Machine& m,
                           const SchedulerCharacterization& probe);

}  // namespace pe::microbench
