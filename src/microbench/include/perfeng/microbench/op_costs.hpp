#pragma once

/// \file op_costs.hpp
/// Per-operation cost table measured on the host.
///
/// The course points students to Agner Fog's instruction tables and tools
/// like OSACA/LLVM-MCA for per-instruction latencies and throughputs; on an
/// arbitrary host we instead *measure* an equivalent table with dependent
/// (latency) and independent (throughput) operation chains. The resulting
/// `OpCostTable` calibrates the fine-granularity analytical models of
/// Assignment 2.

#include <map>
#include <string>

#include "perfeng/measure/benchmark_runner.hpp"

namespace pe::microbench {

/// Operations the table covers.
enum class Op {
  kFadd,    ///< double addition
  kFmul,    ///< double multiplication
  kFma,     ///< fused a*b+c (as written; may compile to mul+add)
  kFdiv,    ///< double division
  kIadd,    ///< 64-bit integer addition
  kImul,    ///< 64-bit integer multiplication
};

/// Human-readable operation name.
[[nodiscard]] std::string op_name(Op op);

/// Measured cost of one operation kind.
struct OpCost {
  double latency_seconds = 0.0;     ///< dependent-chain cost per op
  double throughput_seconds = 0.0;  ///< independent-stream cost per op
};

/// Cost table: operation -> measured latency/throughput.
class OpCostTable {
 public:
  /// Measure all operations. Each probe times a fixed-length chain.
  static OpCostTable measure(const BenchmarkRunner& runner);

  /// Cost entry for an operation; throws if the op was not measured.
  [[nodiscard]] const OpCost& cost(Op op) const;

  /// Insert or replace an entry (used by tests and synthetic machines).
  void set_cost(Op op, OpCost cost);

  [[nodiscard]] const std::map<Op, OpCost>& entries() const {
    return entries_;
  }

 private:
  std::map<Op, OpCost> entries_;
};

}  // namespace pe::microbench
