#pragma once

/// \file peak_flops.hpp
/// Peak floating-point throughput microbenchmark — the compute roof.
///
/// Measures achievable FLOP/s with a register-resident kernel of independent
/// fused multiply-add chains. Multiple accumulators break the dependency
/// chain so the measurement approaches the throughput limit rather than the
/// latency limit — exactly the distinction Assignment 2 asks students to
/// discover with instruction-level microbenchmarks.

#include <cstddef>

#include "perfeng/measure/benchmark_runner.hpp"

namespace pe::microbench {

/// Result of a peak-FLOPS probe.
struct PeakFlopsResult {
  std::size_t accumulators = 0;  ///< independent chains used
  double flops = 0.0;            ///< best observed FLOP/s
  Measurement measurement;
};

/// Measure FLOP/s with `accumulators` independent a = a * x + y chains
/// (2 FLOPs per element step). `accumulators` in [1, 16].
[[nodiscard]] PeakFlopsResult run_peak_flops(std::size_t accumulators,
                                             const BenchmarkRunner& runner);

/// Sweep accumulator counts {1, 2, 4, 8} and return the best FLOP/s — the
/// single-core compute roof used by the Roofline model.
[[nodiscard]] double peak_flops(const BenchmarkRunner& runner);

}  // namespace pe::microbench
