#pragma once

/// \file stream_kernels.hpp
/// The four STREAM loop bodies, explicitly vectorized through pe::simd,
/// plus the scalar references they are tested against.
///
/// The measurement harness (stream.hpp) times the `stream_*` variants;
/// the `stream_*_scalar` twins are the reference semantics. Copy, Scale
/// and Add are exactly equal to their scalar references at every length
/// (lane-wise ops, no reordering — the tail is the same scalar loop).
/// Triad uses `Vec::mul_add`, so when the binary carries the AVX2+FMA
/// backend each element is `fma(scalar, b[i], a[i])` (one rounding) while
/// the scalar reference rounds twice; tests/test_stream.cpp pins this down
/// by checking exact equality against a `kFusedMulAdd`-aware reference.
/// The scalar tail of the vectorized triad uses the same policy
/// (`std::fma` when fused) so every element of one run is computed the
/// same way regardless of its index.

#include <cmath>
#include <cstddef>

#include "perfeng/simd/vec.hpp"

namespace pe::microbench {

/// b[i] = a[i]
inline void stream_copy(const double* a, double* b, std::size_t n) {
  using simd::VecD;
  std::size_t i = 0;
  for (; i + VecD::lanes <= n; i += VecD::lanes)
    VecD::load(a + i).store(b + i);
  for (; i < n; ++i) b[i] = a[i];
}

/// b[i] = s * a[i]
inline void stream_scale(const double* a, double* b, double s,
                         std::size_t n) {
  using simd::VecD;
  const VecD vs = VecD::broadcast(s);
  std::size_t i = 0;
  for (; i + VecD::lanes <= n; i += VecD::lanes)
    (vs * VecD::load(a + i)).store(b + i);
  for (; i < n; ++i) b[i] = s * a[i];
}

/// c[i] = a[i] + b[i]
inline void stream_add(const double* a, const double* b, double* c,
                       std::size_t n) {
  using simd::VecD;
  std::size_t i = 0;
  for (; i + VecD::lanes <= n; i += VecD::lanes)
    (VecD::load(a + i) + VecD::load(b + i)).store(c + i);
  for (; i < n; ++i) c[i] = a[i] + b[i];
}

/// c[i] = a[i] + s * b[i] — fused to one rounding per element when the
/// compiled backend has FMA (see file comment).
inline void stream_triad(const double* a, const double* b, double* c,
                         double s, std::size_t n) {
  using simd::VecD;
  const VecD vs = VecD::broadcast(s);
  std::size_t i = 0;
  for (; i + VecD::lanes <= n; i += VecD::lanes)
    vs.mul_add(VecD::load(b + i), VecD::load(a + i)).store(c + i);
  if constexpr (VecD::kFusedMulAdd) {
    for (; i < n; ++i) c[i] = std::fma(s, b[i], a[i]);
  } else {
    for (; i < n; ++i) c[i] = a[i] + s * b[i];
  }
}

/// Scalar references (plain loops, two roundings for triad).
inline void stream_copy_scalar(const double* a, double* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) b[i] = a[i];
}
inline void stream_scale_scalar(const double* a, double* b, double s,
                                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) b[i] = s * a[i];
}
inline void stream_add_scalar(const double* a, const double* b, double* c,
                              std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) c[i] = a[i] + b[i];
}
inline void stream_triad_scalar(const double* a, const double* b, double* c,
                                double s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) c[i] = a[i] + s * b[i];
}

}  // namespace pe::microbench
