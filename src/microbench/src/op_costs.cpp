#include "perfeng/microbench/op_costs.hpp"

#include <array>

#include "perfeng/common/error.hpp"
#include "perfeng/measure/timer.hpp"

namespace pe::microbench {

namespace {

constexpr std::size_t kChain = 8192;

// Dependent chain: each op consumes the previous result -> latency bound.
template <typename T, typename Step>
double run_latency_chain(const BenchmarkRunner& runner, const char* label,
                         T init, Step step) {
  auto body = [init, step] {
    T acc = init;
    for (std::size_t i = 0; i < kChain; ++i) acc = step(acc);
    do_not_optimize(acc);
  };
  const Measurement m = runner.run(label, body);
  return m.best() / static_cast<double>(kChain);
}

// Four independent chains -> throughput bound (per individual op).
template <typename T, typename Step>
double run_throughput_chains(const BenchmarkRunner& runner, const char* label,
                             T init, Step step) {
  auto body = [init, step] {
    std::array<T, 4> acc = {init, init + T(1), init + T(2), init + T(3)};
    for (std::size_t i = 0; i < kChain; ++i) {
      acc[0] = step(acc[0]);
      acc[1] = step(acc[1]);
      acc[2] = step(acc[2]);
      acc[3] = step(acc[3]);
    }
    do_not_optimize(acc);
  };
  const Measurement m = runner.run(label, body);
  return m.best() / static_cast<double>(kChain * 4);
}

template <typename T, typename Step>
OpCost measure_op(const BenchmarkRunner& runner, const char* name, T init,
                  Step step) {
  OpCost c;
  c.latency_seconds = run_latency_chain(runner, name, init, step);
  c.throughput_seconds = run_throughput_chains(runner, name, init, step);
  return c;
}

}  // namespace

std::string op_name(Op op) {
  switch (op) {
    case Op::kFadd: return "fadd";
    case Op::kFmul: return "fmul";
    case Op::kFma: return "fma";
    case Op::kFdiv: return "fdiv";
    case Op::kIadd: return "iadd";
    case Op::kImul: return "imul";
  }
  return "?";
}

OpCostTable OpCostTable::measure(const BenchmarkRunner& runner) {
  OpCostTable t;
  // Step functions keep results near 1.0 so no denormals/overflow distort
  // the timing.
  t.entries_[Op::kFadd] = measure_op(
      runner, "fadd", 1.0, [](double a) { return a + 1e-9; });
  t.entries_[Op::kFmul] = measure_op(
      runner, "fmul", 1.0, [](double a) { return a * 1.000000001; });
  t.entries_[Op::kFma] = measure_op(
      runner, "fma", 1.0, [](double a) { return a * 0.999999999 + 1e-9; });
  t.entries_[Op::kFdiv] = measure_op(
      runner, "fdiv", 1.0, [](double a) { return a / 0.999999999; });
  t.entries_[Op::kIadd] = measure_op(
      runner, "iadd", std::uint64_t{1},
      [](std::uint64_t a) { return a + 12345; });
  t.entries_[Op::kImul] = measure_op(
      runner, "imul", std::uint64_t{1},
      [](std::uint64_t a) { return a * 6364136223846793005ULL + 1; });
  return t;
}

const OpCost& OpCostTable::cost(Op op) const {
  const auto it = entries_.find(op);
  PE_REQUIRE(it != entries_.end(), "operation not measured");
  return it->second;
}

void OpCostTable::set_cost(Op op, OpCost cost) { entries_[op] = cost; }

}  // namespace pe::microbench
