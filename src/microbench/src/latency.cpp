#include "perfeng/microbench/latency.hpp"

#include <numeric>

#include "perfeng/common/aligned_buffer.hpp"
#include "perfeng/common/error.hpp"
#include "perfeng/common/rng.hpp"
#include "perfeng/measure/timer.hpp"

namespace pe::microbench {

LatencyPoint run_latency(std::size_t bytes, const BenchmarkRunner& runner,
                         std::uint64_t seed) {
  const std::size_t count = std::max<std::size_t>(64, bytes / sizeof(void*));

  // Build a single random cycle (Sattolo's algorithm) so the chase visits
  // every slot exactly once before wrapping.
  std::vector<std::size_t> order(count);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  for (std::size_t i = count - 1; i > 0; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.next_range(0, i - 1));
    std::swap(order[i], order[j]);
  }
  AlignedBuffer<const void*> chain(count);
  for (std::size_t i = 0; i + 1 < count; ++i)
    chain[order[i]] = &chain[order[i + 1]];
  chain[order[count - 1]] = &chain[order[0]];

  const std::size_t hops_per_call = std::max<std::size_t>(count, 4096);
  const void* const* start = &chain[order[0]];
  auto body = [start, hops_per_call] {
    const void* p = *start;
    for (std::size_t i = 0; i < hops_per_call; ++i)
      p = *static_cast<const void* const*>(p);
    do_not_optimize(p);
  };

  const Measurement m =
      runner.run("latency " + std::to_string(bytes) + "B", body);
  LatencyPoint point;
  point.bytes = count * sizeof(void*);
  point.seconds_per_load = m.best() / static_cast<double>(hops_per_call);
  return point;
}

std::vector<LatencyPoint> latency_sweep(std::size_t min_bytes,
                                        std::size_t max_bytes,
                                        const BenchmarkRunner& runner,
                                        std::uint64_t seed) {
  PE_REQUIRE(min_bytes <= max_bytes, "empty sweep range");
  std::vector<LatencyPoint> sweep;
  for (std::size_t b = min_bytes; b <= max_bytes; b *= 2) {
    sweep.push_back(run_latency(b, runner, seed));
    if (b > max_bytes / 2) break;  // avoid overflow of b *= 2
  }
  return sweep;
}

std::vector<std::size_t> detect_cache_levels(
    const std::vector<LatencyPoint>& sweep, double jump_ratio) {
  PE_REQUIRE(jump_ratio > 1.0, "jump ratio must exceed 1");
  std::vector<std::size_t> knees;
  for (std::size_t i = 0; i + 1 < sweep.size(); ++i) {
    if (sweep[i].seconds_per_load <= 0.0) continue;
    const double ratio =
        sweep[i + 1].seconds_per_load / sweep[i].seconds_per_load;
    if (ratio >= jump_ratio) knees.push_back(sweep[i].bytes);
  }
  return knees;
}

}  // namespace pe::microbench
