#include "perfeng/microbench/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <future>
#include <sstream>
#include <vector>

#include "perfeng/common/aligned_buffer.hpp"
#include "perfeng/common/error.hpp"
#include "perfeng/common/table.hpp"
#include "perfeng/parallel/parallel_for.hpp"
#include "perfeng/parallel/thread_pool.hpp"

namespace pe::microbench {

std::string SchedulerCharacterization::summary() const {
  std::ostringstream ss;
  ss << "scheduler: submit " << format_sig(submit_ns, 3) << " ns/task, bulk "
     << format_sig(bulk_ns, 3) << " ns/chunk (" << format_sig(bulk_speedup(), 3)
     << "x cheaper), " << tasks << " tasks on " << pool_threads << " workers";
  return ss.str();
}

SchedulerCharacterization probe_scheduler(const BenchmarkRunner& runner,
                                          const SchedulerProbeConfig& config) {
  PE_REQUIRE(config.tasks >= 1, "probe needs at least one task per batch");
  // Floor of 2: a 1-worker pool executes parallel_for inline, which would
  // make the bulk path look free; two workers engage the broadcast +
  // chunk-claim machinery even on a single-core host.
  const std::size_t threads =
      config.pool_threads != 0
          ? config.pool_threads
          : std::max<std::size_t>(2, ThreadPool::default_thread_count());
  ThreadPool pool(threads);

  SchedulerCharacterization out;
  out.tasks = config.tasks;
  out.pool_threads = threads;
  const double to_ns_per_task = 1e9 / static_cast<double>(config.tasks);

  // Legacy path: one packaged_task + future per task. The task body is a
  // single relaxed increment, so the batch time is dominated by dispatch.
  {
    std::atomic<std::uint64_t> sink{0};
    std::vector<std::future<void>> futures;
    futures.reserve(config.tasks);
    const Measurement m = runner.run("scheduler.submit", [&] {
      futures.clear();
      for (std::size_t i = 0; i < config.tasks; ++i)
        futures.push_back(pool.submit(
            [&sink] { sink.fetch_add(1, std::memory_order_relaxed); }));
      for (auto& f : futures) f.get();
    });
    do_not_optimize(sink.load());
    out.submit_ns = m.typical() * to_ns_per_task;
    out.submit_samples_ns.reserve(m.seconds.size());
    for (double s : m.seconds)
      out.submit_samples_ns.push_back(s * to_ns_per_task);
  }

  // Bulk path: one broadcast per loop, one atomic claim per chunk
  // (chunk = 1 iteration, so chunks == tasks). Lane-private counters are
  // cache-line strided so the body itself stays a plain store.
  {
    constexpr std::size_t kStride = kCacheLineBytes / sizeof(std::uint64_t);
    AlignedBuffer<std::uint64_t> counts((pool.size() + 1) * kStride);
    const Measurement m = runner.run("scheduler.bulk", [&] {
      parallel_for_chunks(
          pool, 0, config.tasks,
          [&](std::size_t lo, std::size_t hi, std::size_t lane) {
            counts[lane * kStride] += hi - lo;
          },
          Schedule::kDynamic, 1);
    });
    do_not_optimize(counts[0]);
    out.bulk_ns = m.typical() * to_ns_per_task;
    out.bulk_samples_ns.reserve(m.seconds.size());
    for (double s : m.seconds)
      out.bulk_samples_ns.push_back(s * to_ns_per_task);
  }
  return out;
}

void apply_scheduler_probe(machine::Machine& m,
                           const SchedulerCharacterization& probe) {
  m.sched_submit_ns = probe.submit_ns;
  m.sched_bulk_ns = probe.bulk_ns;
}

}  // namespace pe::microbench
