#include "perfeng/microbench/peak_flops.hpp"

#include <array>

#include "perfeng/common/error.hpp"
#include "perfeng/measure/timer.hpp"

namespace pe::microbench {

namespace {

constexpr std::size_t kStepsPerCall = 4096;

// Runtime-opaque constants: reading them through volatile blocks the
// compiler from constant-folding the whole chain away. These are optimizer
// blinds read once per call, not cross-thread state.
volatile double g_fma_x = 0.999999999;     // perfeng-lint: allow(no-volatile)
volatile double g_fma_y = 1e-9;            // perfeng-lint: allow(no-volatile)
volatile double g_fma_init = 1.000000001;  // perfeng-lint: allow(no-volatile)

// One timed call performs kStepsPerCall iterations over `N` independent
// multiply-add chains: 2 FLOPs per chain per step.
template <std::size_t N>
void fma_chains() {
  std::array<double, N> acc;
  const double init = g_fma_init;
  acc.fill(init);
  const double x = g_fma_x;
  const double y = g_fma_y;
  for (std::size_t s = 0; s < kStepsPerCall; ++s) {
    for (std::size_t i = 0; i < N; ++i) acc[i] = acc[i] * x + y;
  }
  do_not_optimize(acc);
}

}  // namespace

PeakFlopsResult run_peak_flops(std::size_t accumulators,
                               const BenchmarkRunner& runner) {
  PE_REQUIRE(accumulators >= 1 && accumulators <= 16,
             "accumulators must be in [1,16]");
  std::function<void()> body;
  switch (accumulators) {
    case 1: body = fma_chains<1>; break;
    case 2: body = fma_chains<2>; break;
    case 3: body = fma_chains<3>; break;
    case 4: body = fma_chains<4>; break;
    case 5: body = fma_chains<5>; break;
    case 6: body = fma_chains<6>; break;
    case 7: body = fma_chains<7>; break;
    case 8: body = fma_chains<8>; break;
    case 9: body = fma_chains<9>; break;
    case 10: body = fma_chains<10>; break;
    case 11: body = fma_chains<11>; break;
    case 12: body = fma_chains<12>; break;
    case 13: body = fma_chains<13>; break;
    case 14: body = fma_chains<14>; break;
    case 15: body = fma_chains<15>; break;
    default: body = fma_chains<16>; break;
  }

  PeakFlopsResult result;
  result.accumulators = accumulators;
  result.measurement = runner.run(
      "peak_flops x" + std::to_string(accumulators), body);
  const double flops_per_call = 2.0 * static_cast<double>(accumulators) *
                                static_cast<double>(kStepsPerCall);
  result.flops = flops_per_call / result.measurement.best();
  return result;
}

double peak_flops(const BenchmarkRunner& runner) {
  double best = 0.0;
  for (std::size_t acc : {1u, 2u, 4u, 8u}) {
    const PeakFlopsResult r = run_peak_flops(acc, runner);
    if (r.flops > best) best = r.flops;
  }
  return best;
}

}  // namespace pe::microbench
