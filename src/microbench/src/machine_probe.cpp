#include "perfeng/microbench/machine_probe.hpp"

#include <sstream>

#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/microbench/latency.hpp"
#include "perfeng/microbench/peak_flops.hpp"
#include "perfeng/microbench/stream.hpp"

namespace pe::microbench {

std::string MachineCharacterization::summary() const {
  std::ostringstream ss;
  ss << "peak " << format_flops(peak_flops) << ", DRAM "
     << format_bandwidth(memory_bandwidth) << ", cache "
     << format_bandwidth(cache_bandwidth) << ", ridge "
     << format_sig(ridge_intensity(), 3) << " FLOP/B, mem latency "
     << format_time(memory_latency);
  return ss.str();
}

MachineCharacterization probe_machine(const BenchmarkRunner& runner,
                                      const ProbeConfig& config) {
  MachineCharacterization mc;
  mc.peak_flops = peak_flops(runner);
  mc.memory_bandwidth = sustainable_bandwidth(config.stream_elements, runner);
  mc.cache_bandwidth =
      sustainable_bandwidth(config.cache_stream_elements, runner);

  const auto sweep =
      latency_sweep(config.latency_min_bytes, config.latency_max_bytes,
                    runner);
  if (!sweep.empty()) {
    mc.cache_latency = sweep.front().seconds_per_load;
    mc.memory_latency = sweep.back().seconds_per_load;
    mc.cache_level_bytes = detect_cache_levels(sweep);
  }
  return mc;
}

}  // namespace pe::microbench
