#include "perfeng/microbench/machine_probe.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <thread>

#include "perfeng/common/error.hpp"
#include "perfeng/common/table.hpp"
#include "perfeng/common/units.hpp"
#include "perfeng/machine/registry.hpp"
#include "perfeng/microbench/latency.hpp"
#include "perfeng/microbench/peak_flops.hpp"
#include "perfeng/microbench/stream.hpp"
#include "perfeng/simd/caps.hpp"

namespace pe::microbench {

std::string MachineCharacterization::summary() const {
  std::ostringstream ss;
  ss << "peak " << format_flops(peak_flops) << ", DRAM "
     << format_bandwidth(memory_bandwidth) << ", cache "
     << format_bandwidth(cache_bandwidth) << ", ridge "
     << format_sig(ridge_intensity(), 3) << " FLOP/B, mem latency "
     << format_time(memory_latency);
  return ss.str();
}

MachineCharacterization probe_machine(const BenchmarkRunner& runner,
                                      const ProbeConfig& config) {
  MachineCharacterization mc;
  mc.peak_flops = peak_flops(runner);
  mc.memory_bandwidth = sustainable_bandwidth(config.stream_elements, runner);
  mc.cache_bandwidth =
      sustainable_bandwidth(config.cache_stream_elements, runner);

  const auto sweep =
      latency_sweep(config.latency_min_bytes, config.latency_max_bytes,
                    runner);
  if (!sweep.empty()) {
    mc.cache_latency = sweep.front().seconds_per_load;
    mc.memory_latency = sweep.back().seconds_per_load;
    mc.cache_level_bytes = detect_cache_levels(sweep);
  }

  const simd::SimdCaps caps = simd::runtime_simd_caps();
  mc.simd_width_bits = caps.width_bits();
  mc.simd_fma = caps.fma && caps.width_bits() > 0;
  return mc;
}

machine::Machine probe_machine_description(const BenchmarkRunner& runner,
                                           const ProbeConfig& config,
                                           std::string name) {
  return machine::from_probe(probe_machine(runner, config),
                             std::move(name));
}

machine::Machine resolve_or_probe(const BenchmarkRunner& runner,
                                  const ProbeConfig& config) {
  if (auto m = machine::machine_from_env()) return *m;
  return probe_machine_description(runner, config);
}

}  // namespace pe::microbench

namespace pe::machine {

Machine from_probe(const pe::microbench::MachineCharacterization& probe,
                   std::string name) {
  PE_REQUIRE(probe.peak_flops > 0.0, "probe has no peak FLOP/s");
  PE_REQUIRE(probe.memory_bandwidth > 0.0, "probe has no DRAM bandwidth");
  Machine m;
  m.name = std::move(name);
  m.description = "calibrated by the microbenchmark suite on this host";
  m.source = "probe";
  m.peak_flops = probe.peak_flops;
  m.cores = std::max(1u, std::thread::hardware_concurrency());

  // The probe measures the two hierarchy endpoints (cache-resident and
  // DRAM-resident bandwidth/latency); intermediate detected levels get
  // geometrically interpolated values, clamped monotone so a noisy probe
  // still yields a machine that passes check().
  const double cache_bw =
      probe.cache_bandwidth > 0.0 ? probe.cache_bandwidth
                                  : probe.memory_bandwidth;
  const double cache_lat =
      probe.cache_latency > 0.0 ? probe.cache_latency : probe.memory_latency;
  std::vector<std::size_t> capacities = probe.cache_level_bytes;
  std::erase(capacities, std::size_t{0});
  std::sort(capacities.begin(), capacities.end());
  capacities.erase(std::unique(capacities.begin(), capacities.end()),
                   capacities.end());
  if (capacities.empty()) capacities.push_back(std::size_t{1} << 21);

  const auto levels = static_cast<double>(capacities.size());
  double prev_bw = cache_bw;
  double prev_lat = cache_lat;
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    const double frac = static_cast<double>(i) / levels;
    double bw = cache_bw *
                std::pow(probe.memory_bandwidth / cache_bw, frac);
    double lat =
        cache_lat > 0.0 && probe.memory_latency > 0.0
            ? cache_lat * std::pow(probe.memory_latency / cache_lat, frac)
            : 0.0;
    bw = std::min(bw, prev_bw);
    lat = std::max(lat, prev_lat);
    m.hierarchy.push_back(
        {"L" + std::to_string(i + 1), bw, lat, capacities[i], 64});
    prev_bw = bw;
    prev_lat = lat;
  }
  m.hierarchy.push_back({"DRAM", std::min(probe.memory_bandwidth, prev_bw),
                         std::max(probe.memory_latency, prev_lat), 0, 64});
  // Record the host's vector capability so calibration_hash pins down
  // which SIMD hardware the measured peak belongs to.
  m.simd_width_bits = probe.simd_width_bits;
  m.simd_fma = probe.simd_fma && probe.simd_width_bits > 0;
  m.check();
  return m;
}

}  // namespace pe::machine
