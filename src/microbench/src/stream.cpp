#include "perfeng/microbench/stream.hpp"

#include <algorithm>

#include "perfeng/common/aligned_buffer.hpp"
#include "perfeng/common/error.hpp"
#include "perfeng/measure/timer.hpp"
#include "perfeng/microbench/stream_kernels.hpp"

namespace pe::microbench {

std::string stream_kernel_name(StreamKernel k) {
  switch (k) {
    case StreamKernel::kCopy: return "Copy";
    case StreamKernel::kScale: return "Scale";
    case StreamKernel::kAdd: return "Add";
    case StreamKernel::kTriad: return "Triad";
  }
  return "?";
}

std::size_t stream_bytes_per_element(StreamKernel k) {
  switch (k) {
    case StreamKernel::kCopy:
    case StreamKernel::kScale: return 2 * sizeof(double);
    case StreamKernel::kAdd:
    case StreamKernel::kTriad: return 3 * sizeof(double);
  }
  return 0;
}

std::size_t stream_flops_per_element(StreamKernel k) {
  switch (k) {
    case StreamKernel::kCopy: return 0;
    case StreamKernel::kScale:
    case StreamKernel::kAdd: return 1;
    case StreamKernel::kTriad: return 2;
  }
  return 0;
}

StreamResult run_stream(StreamKernel kernel, std::size_t elements,
                        const BenchmarkRunner& runner) {
  PE_REQUIRE(elements >= 16, "vector too small to measure");
  AlignedBuffer<double> a(elements), b(elements), c(elements);
  for (std::size_t i = 0; i < elements; ++i) {
    a[i] = 1.0;
    b[i] = 2.0;
    c[i] = 0.0;
  }
  const double scalar = 3.0;

  // Raw pointers keep the inner loops free of any abstraction the compiler
  // might fail to see through.
  double* pa = a.data();
  double* pb = b.data();
  double* pc = c.data();

  // Loop bodies live in stream_kernels.hpp, explicitly vectorized through
  // pe::simd and tested against scalar references in tests/test_stream.cpp.
  std::function<void()> body;
  switch (kernel) {
    case StreamKernel::kCopy:
      body = [pa, pb, elements] {
        stream_copy(pa, pb, elements);
        do_not_optimize(pb[0]);
      };
      break;
    case StreamKernel::kScale:
      body = [pa, pb, scalar, elements] {
        stream_scale(pa, pb, scalar, elements);
        do_not_optimize(pb[0]);
      };
      break;
    case StreamKernel::kAdd:
      body = [pa, pb, pc, elements] {
        stream_add(pa, pb, pc, elements);
        do_not_optimize(pc[0]);
      };
      break;
    case StreamKernel::kTriad:
      body = [pa, pb, pc, scalar, elements] {
        stream_triad(pa, pb, pc, scalar, elements);
        do_not_optimize(pc[0]);
      };
      break;
  }

  StreamResult result;
  result.kernel = kernel;
  result.elements = elements;
  result.measurement =
      runner.run("STREAM " + stream_kernel_name(kernel), body);
  const double bytes = static_cast<double>(elements) *
                       static_cast<double>(stream_bytes_per_element(kernel));
  result.best_bandwidth = bytes / result.measurement.best();
  result.median_bandwidth = bytes / result.measurement.typical();
  return result;
}

std::vector<StreamResult> run_stream_suite(std::size_t elements,
                                           const BenchmarkRunner& runner) {
  std::vector<StreamResult> out;
  for (StreamKernel k : {StreamKernel::kCopy, StreamKernel::kScale,
                         StreamKernel::kAdd, StreamKernel::kTriad}) {
    out.push_back(run_stream(k, elements, runner));
  }
  return out;
}

double sustainable_bandwidth(std::size_t elements,
                             const BenchmarkRunner& runner) {
  double best = 0.0;
  for (const auto& r : run_stream_suite(elements, runner))
    best = std::max(best, r.best_bandwidth);
  return best;
}

}  // namespace pe::microbench
