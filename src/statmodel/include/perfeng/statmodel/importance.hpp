#pragma once

/// \file importance.hpp
/// Permutation feature importance — the interpretability instrument for
/// black-box models.
///
/// Assignment 3 contrasts explainable analytical models with opaque
/// statistical ones; permutation importance closes part of the gap: shuffle
/// one feature column in the validation set and see how much the model's
/// error grows. A feature the model relies on (nnz for SpMV runtime) shows
/// a large increase; an ignored one (a noise column) shows none.

#include <string>
#include <vector>

#include "perfeng/common/rng.hpp"
#include "perfeng/statmodel/dataset.hpp"

namespace pe::statmodel {

/// Importance of one feature: RMSE increase when it is permuted.
struct FeatureImportance {
  std::string feature;
  double baseline_rmse = 0.0;
  double permuted_rmse = 0.0;

  /// Absolute error increase attributable to the feature.
  [[nodiscard]] double increase() const {
    return permuted_rmse - baseline_rmse;
  }
};

/// Compute permutation importance of every feature of a *fitted* model on
/// an evaluation set. `rounds` permutations are averaged per feature.
/// Results are returned in feature order (not sorted).
[[nodiscard]] std::vector<FeatureImportance> permutation_importance(
    const Regressor& model, const Dataset& eval, Rng& rng, int rounds = 5);

}  // namespace pe::statmodel
