#pragma once

/// \file knn.hpp
/// k-nearest-neighbour regression — the simplest black-box model in the
/// Assignment 3 spectrum.
///
/// Distance is Euclidean over the (ideally standardized) feature space;
/// prediction is the inverse-distance-weighted mean of the k nearest
/// training targets. No structure is learned, so kNN interpolates well
/// inside the training envelope and fails loudly outside it — exactly the
/// interpretability contrast with analytical models the course wants
/// students to notice.

#include <cstddef>
#include <string>
#include <vector>

#include "perfeng/statmodel/dataset.hpp"

namespace pe::statmodel {

/// kNN regressor with inverse-distance weighting.
class KnnRegressor : public Regressor {
 public:
  explicit KnnRegressor(std::size_t k = 5);

  void fit(const Dataset& data) override;
  [[nodiscard]] double predict(
      const std::vector<double>& features) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::size_t k_;
  std::vector<std::vector<double>> x_;
  std::vector<double> y_;
};

}  // namespace pe::statmodel
