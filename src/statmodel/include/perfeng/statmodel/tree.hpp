#pragma once

/// \file tree.hpp
/// Decision-tree and random-forest regression — the "black-box end" of the
/// Assignment 3 model spectrum.
///
/// The tree greedily splits on the (feature, threshold) pair that minimizes
/// the weighted variance of the two children; leaves predict their mean
/// target. The forest bags `trees` bootstrap resamples with per-split
/// feature subsampling and averages the predictions. Both are deterministic
/// given the seed.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "perfeng/common/rng.hpp"
#include "perfeng/statmodel/dataset.hpp"

namespace pe::statmodel {

/// Stopping rules for tree growth.
struct TreeConfig {
  std::size_t max_depth = 8;
  std::size_t min_samples_leaf = 2;
  std::size_t min_samples_split = 4;
};

/// CART-style regression tree.
class DecisionTreeRegressor : public Regressor {
 public:
  explicit DecisionTreeRegressor(TreeConfig config = {});

  void fit(const Dataset& data) override;
  [[nodiscard]] double predict(
      const std::vector<double>& features) const override;
  [[nodiscard]] std::string describe() const override;

  /// Number of nodes in the fitted tree (0 before fit).
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  /// Depth of the fitted tree (0 before fit; 1 = single leaf).
  [[nodiscard]] std::size_t depth() const;

 private:
  friend class RandomForestRegressor;

  struct Node {
    int feature = -1;          // -1 marks a leaf
    double threshold = 0.0;
    double value = 0.0;        // leaf prediction
    std::size_t left = 0;      // child indices (leaves ignore them)
    std::size_t right = 0;
    std::size_t depth = 0;
  };

  /// Fit on a row subset with optional per-split feature subsampling.
  void fit_rows(const Dataset& data, const std::vector<std::size_t>& rows,
                std::size_t features_per_split, Rng* rng);

  std::size_t build(const Dataset& data, std::vector<std::size_t>& rows,
                    std::size_t depth, std::size_t features_per_split,
                    Rng* rng);

  TreeConfig config_;
  std::vector<Node> nodes_;
};

/// Bagged forest of regression trees.
class RandomForestRegressor : public Regressor {
 public:
  RandomForestRegressor(std::size_t trees = 32, TreeConfig config = {},
                        std::uint64_t seed = 7);

  void fit(const Dataset& data) override;
  [[nodiscard]] double predict(
      const std::vector<double>& features) const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::size_t tree_count() const { return forest_.size(); }

 private:
  std::size_t trees_;
  TreeConfig config_;
  std::uint64_t seed_;
  std::vector<DecisionTreeRegressor> forest_;
};

}  // namespace pe::statmodel
