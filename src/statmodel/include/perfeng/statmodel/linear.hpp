#pragma once

/// \file linear.hpp
/// Linear and polynomial regression — the "explainable end" of Assignment
/// 3's model spectrum.
///
/// Ordinary least squares is solved via the normal equations with an
/// optional ridge penalty (which also regularizes the near-collinear
/// feature sets students tend to engineer). Polynomial feature expansion
/// turns the same solver into a polynomial regressor; for runtime modeling
/// the interesting terms are n, n^2, n^3 and nnz-like interaction terms.

#include <memory>
#include <string>
#include <vector>

#include "perfeng/statmodel/dataset.hpp"

namespace pe {
class ThreadPool;
}

namespace pe::statmodel {

/// OLS / ridge linear regression with intercept.
class LinearRegression : public Regressor {
 public:
  /// `ridge_lambda` >= 0 adds an L2 penalty (intercept is not penalized).
  explicit LinearRegression(double ridge_lambda = 0.0);

  void fit(const Dataset& data) override;

  /// Parallel fit: accumulates the normal equations over the pool with
  /// `parallel_reduce_ordered`, so the fitted coefficients are
  /// bit-identical to each other across repeated runs *and* across pool
  /// sizes (the fold grouping is fixed, never schedule-dependent).
  void fit(const Dataset& data, ThreadPool& pool);

  [[nodiscard]] double predict(
      const std::vector<double>& features) const override;
  [[nodiscard]] std::string describe() const override;

  /// Fitted coefficients (after fit): index 0 is the intercept.
  [[nodiscard]] const std::vector<double>& coefficients() const;

 private:
  double lambda_;
  std::vector<double> coef_;  // [intercept, w1, ..., wd]
  bool fitted_ = false;
};

/// Expand features with all monomials up to `degree` (no cross terms) —
/// e.g. degree 3 maps [n] to [n, n^2, n^3]. Returns a new dataset with
/// suffixed feature names.
[[nodiscard]] Dataset polynomial_expand(const Dataset& data, int degree);

/// Expand one feature vector consistently with `polynomial_expand`.
[[nodiscard]] std::vector<double> polynomial_expand_row(
    const std::vector<double>& features, int degree);

/// Solve the dense symmetric positive-definite system A w = b in place via
/// Gaussian elimination with partial pivoting (exposed for tests).
[[nodiscard]] std::vector<double> solve_linear_system(
    std::vector<std::vector<double>> a, std::vector<double> b);

}  // namespace pe::statmodel
