#pragma once

/// \file validation.hpp
/// Model validation: hold-out evaluation and k-fold cross-validation.
///
/// Assignment 3's final step is *empirical validation*: a model is only as
/// good as its error on unseen configurations. These helpers evaluate any
/// `Regressor` with the metrics from perfeng/measure/metrics.hpp and make
/// the train/test discipline explicit.

#include <cstddef>
#include <functional>
#include <memory>

#include "perfeng/statmodel/dataset.hpp"

namespace pe::statmodel {

/// Error metrics of one evaluation.
struct EvalResult {
  double mape = 0.0;
  double rmse = 0.0;
  double r2 = 0.0;
  std::size_t test_rows = 0;
};

/// Fit on `train`, evaluate on `test`.
[[nodiscard]] EvalResult evaluate(Regressor& model, const Dataset& train,
                                  const Dataset& test);

/// k-fold cross-validation: the factory builds a fresh model per fold; the
/// result averages the per-fold metrics. Rows are folded in order (shuffle
/// the dataset first for random folds).
[[nodiscard]] EvalResult cross_validate(
    const std::function<std::unique_ptr<Regressor>()>& factory,
    const Dataset& data, std::size_t folds);

}  // namespace pe::statmodel
