#pragma once

/// \file dataset.hpp
/// Feature matrix + target vector for statistical performance models.
///
/// Assignment 3 has students collect (configuration -> runtime) samples and
/// fit black-box models; `Dataset` is that table. Rows are observations,
/// columns are named features, `y` is the response (typically seconds).
/// Includes the standard preprocessing steps the assignment teaches:
/// shuffling, train/test splitting, and z-score standardization (fit on the
/// training split only — leaking test statistics is the classic mistake).

#include <cstddef>
#include <string>
#include <vector>

#include "perfeng/common/rng.hpp"

namespace pe::statmodel {

/// A labeled dataset of double features.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> feature_names);

  /// Append one observation; width must match the feature names.
  void add_row(const std::vector<double>& features, double target);

  [[nodiscard]] std::size_t rows() const { return y_.size(); }
  [[nodiscard]] std::size_t features() const { return names_.size(); }
  [[nodiscard]] const std::vector<std::string>& feature_names() const {
    return names_;
  }

  [[nodiscard]] const std::vector<double>& row(std::size_t i) const;
  [[nodiscard]] double target(std::size_t i) const;
  [[nodiscard]] const std::vector<double>& targets() const { return y_; }

  /// Deterministic shuffle of rows.
  void shuffle(Rng& rng);

  /// Split into train/test by fraction (train first). `test_fraction` in
  /// (0,1); at least one row lands on each side.
  [[nodiscard]] struct DatasetSplit train_test_split(
      double test_fraction) const;

  /// Per-feature mean/stddev computed from this dataset.
  struct Standardizer {
    std::vector<double> mean;
    std::vector<double> stddev;

    /// z-score one feature vector in place (stddev 0 maps to 0).
    void apply(std::vector<double>& features) const;
  };
  [[nodiscard]] Standardizer fit_standardizer() const;

  /// Return a standardized copy using the given (train-fitted) transform.
  [[nodiscard]] Dataset standardized(const Standardizer& s) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<double>> x_;
  std::vector<double> y_;
};

/// Result of Dataset::train_test_split.
struct DatasetSplit {
  Dataset train;
  Dataset test;
};

/// Abstract regressor fit on a Dataset. All statistical models in this
/// library implement this interface so validation code is model-agnostic.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Fit to a dataset; may be called more than once (refit).
  virtual void fit(const Dataset& data) = 0;

  /// Predict the response for one feature vector.
  [[nodiscard]] virtual double predict(
      const std::vector<double>& features) const = 0;

  /// Predict the whole dataset (convenience).
  [[nodiscard]] std::vector<double> predict_all(const Dataset& data) const;

  /// Short human-readable model description.
  [[nodiscard]] virtual std::string describe() const = 0;
};

}  // namespace pe::statmodel
