#include "perfeng/statmodel/dataset.hpp"

#include <cmath>

#include "perfeng/common/error.hpp"

namespace pe::statmodel {

Dataset::Dataset(std::vector<std::string> feature_names)
    : names_(std::move(feature_names)) {
  PE_REQUIRE(!names_.empty(), "dataset needs at least one feature");
}

void Dataset::add_row(const std::vector<double>& features, double target) {
  PE_REQUIRE(features.size() == names_.size(),
             "feature width mismatch");
  x_.push_back(features);
  y_.push_back(target);
}

const std::vector<double>& Dataset::row(std::size_t i) const {
  PE_REQUIRE(i < x_.size(), "row index out of range");
  return x_[i];
}

double Dataset::target(std::size_t i) const {
  PE_REQUIRE(i < y_.size(), "row index out of range");
  return y_[i];
}

void Dataset::shuffle(Rng& rng) {
  for (std::size_t i = rows(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.next_range(0, i - 1));
    std::swap(x_[i - 1], x_[j]);
    std::swap(y_[i - 1], y_[j]);
  }
}

DatasetSplit Dataset::train_test_split(double test_fraction) const {
  PE_REQUIRE(test_fraction > 0.0 && test_fraction < 1.0,
             "test fraction must be in (0,1)");
  PE_REQUIRE(rows() >= 2, "need at least two rows to split");
  std::size_t test_rows = static_cast<std::size_t>(
      std::round(static_cast<double>(rows()) * test_fraction));
  test_rows = std::max<std::size_t>(1, std::min(test_rows, rows() - 1));
  const std::size_t train_rows = rows() - test_rows;

  DatasetSplit split{Dataset(names_), Dataset(names_)};
  for (std::size_t i = 0; i < train_rows; ++i)
    split.train.add_row(x_[i], y_[i]);
  for (std::size_t i = train_rows; i < rows(); ++i)
    split.test.add_row(x_[i], y_[i]);
  return split;
}

void Dataset::Standardizer::apply(std::vector<double>& features) const {
  PE_REQUIRE(features.size() == mean.size(), "feature width mismatch");
  for (std::size_t f = 0; f < features.size(); ++f) {
    features[f] =
        stddev[f] > 0.0 ? (features[f] - mean[f]) / stddev[f] : 0.0;
  }
}

Dataset::Standardizer Dataset::fit_standardizer() const {
  PE_REQUIRE(rows() >= 1, "cannot standardize an empty dataset");
  Standardizer s;
  s.mean.assign(features(), 0.0);
  s.stddev.assign(features(), 0.0);
  for (const auto& r : x_)
    for (std::size_t f = 0; f < features(); ++f) s.mean[f] += r[f];
  for (double& m : s.mean) m /= static_cast<double>(rows());
  for (const auto& r : x_)
    for (std::size_t f = 0; f < features(); ++f) {
      const double d = r[f] - s.mean[f];
      s.stddev[f] += d * d;
    }
  for (double& v : s.stddev)
    v = rows() > 1 ? std::sqrt(v / static_cast<double>(rows() - 1)) : 0.0;
  return s;
}

Dataset Dataset::standardized(const Standardizer& s) const {
  Dataset out(names_);
  for (std::size_t i = 0; i < rows(); ++i) {
    std::vector<double> r = x_[i];
    s.apply(r);
    out.add_row(r, y_[i]);
  }
  return out;
}

std::vector<double> Regressor::predict_all(const Dataset& data) const {
  std::vector<double> out;
  out.reserve(data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i)
    out.push_back(predict(data.row(i)));
  return out;
}

}  // namespace pe::statmodel
