#include "perfeng/statmodel/validation.hpp"

#include "perfeng/common/error.hpp"
#include "perfeng/measure/metrics.hpp"

namespace pe::statmodel {

EvalResult evaluate(Regressor& model, const Dataset& train,
                    const Dataset& test) {
  PE_REQUIRE(test.rows() >= 1, "empty test set");
  model.fit(train);
  const std::vector<double> predicted = model.predict_all(test);
  EvalResult r;
  r.test_rows = test.rows();
  r.rmse = rmse(predicted, test.targets());
  bool any_zero = false;
  for (double y : test.targets())
    if (y == 0.0) any_zero = true;
  r.mape = any_zero ? 0.0 : mape(predicted, test.targets());
  r.r2 = test.rows() >= 2 ? r_squared(predicted, test.targets()) : 0.0;
  return r;
}

EvalResult cross_validate(
    const std::function<std::unique_ptr<Regressor>()>& factory,
    const Dataset& data, std::size_t folds) {
  PE_REQUIRE(static_cast<bool>(factory), "null factory");
  PE_REQUIRE(folds >= 2, "need at least two folds");
  PE_REQUIRE(data.rows() >= folds, "need at least one row per fold");

  EvalResult total;
  for (std::size_t fold = 0; fold < folds; ++fold) {
    Dataset train(data.feature_names());
    Dataset test(data.feature_names());
    for (std::size_t i = 0; i < data.rows(); ++i) {
      if (i % folds == fold) {
        test.add_row(data.row(i), data.target(i));
      } else {
        train.add_row(data.row(i), data.target(i));
      }
    }
    auto model = factory();
    const EvalResult r = evaluate(*model, train, test);
    total.mape += r.mape;
    total.rmse += r.rmse;
    total.r2 += r.r2;
    total.test_rows += r.test_rows;
  }
  const auto f = static_cast<double>(folds);
  total.mape /= f;
  total.rmse /= f;
  total.r2 /= f;
  return total;
}

}  // namespace pe::statmodel
