#include "perfeng/statmodel/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "perfeng/common/error.hpp"

namespace pe::statmodel {

namespace {

double subset_mean(const Dataset& data, const std::vector<std::size_t>& rows) {
  double acc = 0.0;
  for (std::size_t r : rows) acc += data.target(r);
  return acc / static_cast<double>(rows.size());
}

double subset_sse(const Dataset& data, const std::vector<std::size_t>& rows,
                  double mean) {
  double acc = 0.0;
  for (std::size_t r : rows) {
    const double d = data.target(r) - mean;
    acc += d * d;
  }
  return acc;
}

struct BestSplit {
  int feature = -1;
  double threshold = 0.0;
  double sse = std::numeric_limits<double>::infinity();
};

}  // namespace

DecisionTreeRegressor::DecisionTreeRegressor(TreeConfig config)
    : config_(config) {
  PE_REQUIRE(config.max_depth >= 1, "max depth must be at least 1");
  PE_REQUIRE(config.min_samples_leaf >= 1, "leaf minimum must be positive");
  PE_REQUIRE(config.min_samples_split >= 2 * config.min_samples_leaf,
             "split minimum must allow two valid leaves");
}

void DecisionTreeRegressor::fit(const Dataset& data) {
  std::vector<std::size_t> rows(data.rows());
  std::iota(rows.begin(), rows.end(), 0);
  fit_rows(data, rows, data.features(), nullptr);
}

void DecisionTreeRegressor::fit_rows(const Dataset& data,
                                     const std::vector<std::size_t>& rows,
                                     std::size_t features_per_split,
                                     Rng* rng) {
  PE_REQUIRE(!rows.empty(), "cannot fit to an empty subset");
  nodes_.clear();
  std::vector<std::size_t> mutable_rows = rows;
  build(data, mutable_rows, 1, features_per_split, rng);
}

std::size_t DecisionTreeRegressor::build(const Dataset& data,
                                         std::vector<std::size_t>& rows,
                                         std::size_t depth,
                                         std::size_t features_per_split,
                                         Rng* rng) {
  const std::size_t index = nodes_.size();
  nodes_.push_back({});
  nodes_[index].depth = depth;
  nodes_[index].value = subset_mean(data, rows);

  if (depth >= config_.max_depth || rows.size() < config_.min_samples_split)
    return index;

  // Candidate features: all, or a random subset for forests.
  std::vector<std::size_t> candidates(data.features());
  std::iota(candidates.begin(), candidates.end(), 0);
  if (rng != nullptr && features_per_split < data.features()) {
    rng->shuffle(candidates);
    candidates.resize(features_per_split);
  }

  const double parent_sse =
      subset_sse(data, rows, nodes_[index].value);
  BestSplit best;
  std::vector<std::pair<double, double>> sorted;  // (feature value, target)
  for (std::size_t f : candidates) {
    sorted.clear();
    sorted.reserve(rows.size());
    for (std::size_t r : rows)
      sorted.emplace_back(data.row(r)[f], data.target(r));
    std::sort(sorted.begin(), sorted.end());

    // Prefix sums allow O(1) SSE for every split position.
    double left_sum = 0.0, left_sq = 0.0;
    double total_sum = 0.0, total_sq = 0.0;
    for (const auto& [x, y] : sorted) {
      total_sum += y;
      total_sq += y * y;
    }
    const auto n = static_cast<double>(sorted.size());
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      left_sum += sorted[i].second;
      left_sq += sorted[i].second * sorted[i].second;
      if (sorted[i].first == sorted[i + 1].first) continue;  // no boundary
      const double nl = static_cast<double>(i + 1);
      const double nr = n - nl;
      if (nl < static_cast<double>(config_.min_samples_leaf) ||
          nr < static_cast<double>(config_.min_samples_leaf))
        continue;
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double sse = (left_sq - left_sum * left_sum / nl) +
                         (right_sq - right_sum * right_sum / nr);
      if (sse < best.sse) {
        best.sse = sse;
        best.feature = static_cast<int>(f);
        best.threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
      }
    }
  }

  if (best.feature < 0 || best.sse >= parent_sse) return index;  // leaf

  std::vector<std::size_t> left_rows, right_rows;
  for (std::size_t r : rows) {
    if (data.row(r)[static_cast<std::size_t>(best.feature)] <=
        best.threshold) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }
  if (left_rows.empty() || right_rows.empty()) return index;

  nodes_[index].feature = best.feature;
  nodes_[index].threshold = best.threshold;
  const std::size_t left =
      build(data, left_rows, depth + 1, features_per_split, rng);
  const std::size_t right =
      build(data, right_rows, depth + 1, features_per_split, rng);
  nodes_[index].left = left;
  nodes_[index].right = right;
  return index;
}

double DecisionTreeRegressor::predict(
    const std::vector<double>& features) const {
  PE_REQUIRE(!nodes_.empty(), "predict before fit");
  std::size_t node = 0;
  for (;;) {
    const Node& n = nodes_[node];
    if (n.feature < 0) return n.value;
    const double v = features.at(static_cast<std::size_t>(n.feature));
    node = v <= n.threshold ? n.left : n.right;
  }
}

std::size_t DecisionTreeRegressor::depth() const {
  std::size_t d = 0;
  for (const auto& n : nodes_) d = std::max(d, n.depth);
  return d;
}

std::string DecisionTreeRegressor::describe() const {
  return "tree(max_depth=" + std::to_string(config_.max_depth) + ")";
}

RandomForestRegressor::RandomForestRegressor(std::size_t trees,
                                             TreeConfig config,
                                             std::uint64_t seed)
    : trees_(trees), config_(config), seed_(seed) {
  PE_REQUIRE(trees >= 1, "forest needs at least one tree");
}

void RandomForestRegressor::fit(const Dataset& data) {
  PE_REQUIRE(data.rows() >= 2, "need at least two rows");
  forest_.clear();
  forest_.reserve(trees_);
  Rng rng(seed_);
  // sqrt(d) features per split, the standard forest heuristic.
  const auto features_per_split = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::sqrt(static_cast<double>(data.features())) + 0.5));

  for (std::size_t t = 0; t < trees_; ++t) {
    std::vector<std::size_t> bootstrap(data.rows());
    for (auto& r : bootstrap)
      r = static_cast<std::size_t>(rng.next_range(0, data.rows() - 1));
    DecisionTreeRegressor tree(config_);
    tree.fit_rows(data, bootstrap, features_per_split, &rng);
    forest_.push_back(std::move(tree));
  }
}

double RandomForestRegressor::predict(
    const std::vector<double>& features) const {
  PE_REQUIRE(!forest_.empty(), "predict before fit");
  double acc = 0.0;
  for (const auto& tree : forest_) acc += tree.predict(features);
  return acc / static_cast<double>(forest_.size());
}

std::string RandomForestRegressor::describe() const {
  return "forest(trees=" + std::to_string(trees_) + ")";
}

}  // namespace pe::statmodel
