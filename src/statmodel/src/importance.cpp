#include "perfeng/statmodel/importance.hpp"

#include "perfeng/common/error.hpp"
#include "perfeng/measure/metrics.hpp"

namespace pe::statmodel {

std::vector<FeatureImportance> permutation_importance(const Regressor& model,
                                                      const Dataset& eval,
                                                      Rng& rng, int rounds) {
  PE_REQUIRE(eval.rows() >= 2, "need at least two evaluation rows");
  PE_REQUIRE(rounds >= 1, "need at least one permutation round");

  const std::vector<double> baseline_pred = model.predict_all(eval);
  const double baseline = rmse(baseline_pred, eval.targets());

  std::vector<FeatureImportance> out;
  out.reserve(eval.features());
  std::vector<double> column(eval.rows());
  std::vector<double> row;
  std::vector<double> predictions(eval.rows());

  for (std::size_t f = 0; f < eval.features(); ++f) {
    double rmse_sum = 0.0;
    for (int round = 0; round < rounds; ++round) {
      for (std::size_t i = 0; i < eval.rows(); ++i) column[i] = eval.row(i)[f];
      rng.shuffle(column);
      for (std::size_t i = 0; i < eval.rows(); ++i) {
        row = eval.row(i);
        row[f] = column[i];
        predictions[i] = model.predict(row);
      }
      rmse_sum += rmse(predictions, eval.targets());
    }
    FeatureImportance fi;
    fi.feature = eval.feature_names()[f];
    fi.baseline_rmse = baseline;
    fi.permuted_rmse = rmse_sum / rounds;
    out.push_back(std::move(fi));
  }
  return out;
}

}  // namespace pe::statmodel
