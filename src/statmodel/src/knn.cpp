#include "perfeng/statmodel/knn.hpp"

#include <algorithm>
#include <cmath>

#include "perfeng/common/error.hpp"

namespace pe::statmodel {

KnnRegressor::KnnRegressor(std::size_t k) : k_(k) {
  PE_REQUIRE(k >= 1, "k must be at least 1");
}

void KnnRegressor::fit(const Dataset& data) {
  PE_REQUIRE(data.rows() >= 1, "cannot fit to an empty dataset");
  x_.clear();
  y_.clear();
  x_.reserve(data.rows());
  y_.reserve(data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i) {
    x_.push_back(data.row(i));
    y_.push_back(data.target(i));
  }
}

double KnnRegressor::predict(const std::vector<double>& features) const {
  PE_REQUIRE(!x_.empty(), "predict before fit");
  PE_REQUIRE(features.size() == x_.front().size(), "feature width mismatch");

  std::vector<std::pair<double, double>> dist_target;  // (d^2, y)
  dist_target.reserve(x_.size());
  for (std::size_t i = 0; i < x_.size(); ++i) {
    double d2 = 0.0;
    for (std::size_t f = 0; f < features.size(); ++f) {
      const double d = features[f] - x_[i][f];
      d2 += d * d;
    }
    dist_target.emplace_back(d2, y_[i]);
  }
  const std::size_t k = std::min(k_, dist_target.size());
  std::partial_sort(dist_target.begin(), dist_target.begin() + k,
                    dist_target.end());

  // Inverse-distance weighting; an exact match dominates.
  double weight_sum = 0.0, value_sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double d = std::sqrt(dist_target[i].first);
    if (d < 1e-12) return dist_target[i].second;
    const double w = 1.0 / d;
    weight_sum += w;
    value_sum += w * dist_target[i].second;
  }
  return value_sum / weight_sum;
}

std::string KnnRegressor::describe() const {
  return "knn(k=" + std::to_string(k_) + ")";
}

}  // namespace pe::statmodel
