#include "perfeng/statmodel/linear.hpp"

#include <cmath>
#include <utility>

#include "perfeng/common/error.hpp"
#include "perfeng/parallel/parallel_for.hpp"

namespace pe::statmodel {

namespace {

/// Accumulated normal equations: flat dim x dim X'X and dim-long X'y.
struct NormalAccum {
  std::vector<double> xtx;
  std::vector<double> xty;
};

NormalAccum make_accum(std::size_t dim) {
  return {std::vector<double>(dim * dim, 0.0),
          std::vector<double>(dim, 0.0)};
}

/// Fold rows [lo, hi) of the design matrix [1 | X] into `acc`.
void accumulate_rows(const Dataset& data, std::size_t lo, std::size_t hi,
                     std::size_t dim, NormalAccum& acc) {
  std::vector<double> row(dim);
  for (std::size_t i = lo; i < hi; ++i) {
    row[0] = 1.0;
    const auto& features = data.row(i);
    for (std::size_t f = 0; f + 1 < dim; ++f) row[f + 1] = features[f];
    for (std::size_t r = 0; r < dim; ++r) {
      for (std::size_t c = 0; c < dim; ++c)
        acc.xtx[r * dim + c] += row[r] * row[c];
      acc.xty[r] += row[r] * data.target(i);
    }
  }
}

std::vector<double> solve_normal(NormalAccum accum, std::size_t dim,
                                 double lambda) {
  std::vector<std::vector<double>> xtx(dim, std::vector<double>(dim));
  for (std::size_t r = 0; r < dim; ++r)
    for (std::size_t c = 0; c < dim; ++c) xtx[r][c] = accum.xtx[r * dim + c];
  for (std::size_t f = 1; f < dim; ++f) xtx[f][f] += lambda;
  return solve_linear_system(std::move(xtx), std::move(accum.xty));
}

}  // namespace

std::vector<double> solve_linear_system(std::vector<std::vector<double>> a,
                                        std::vector<double> b) {
  const std::size_t n = b.size();
  PE_REQUIRE(a.size() == n, "system must be square");
  for (const auto& row : a)
    PE_REQUIRE(row.size() == n, "system must be square");

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    if (std::abs(a[pivot][col]) < 1e-12)
      throw Error("linear system is singular or ill-conditioned");
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);

    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a[i][c] * x[c];
    x[i] = acc / a[i][i];
  }
  return x;
}

LinearRegression::LinearRegression(double ridge_lambda)
    : lambda_(ridge_lambda) {
  PE_REQUIRE(ridge_lambda >= 0.0, "ridge penalty must be non-negative");
}

void LinearRegression::fit(const Dataset& data) {
  const std::size_t n = data.rows();
  const std::size_t d = data.features();
  PE_REQUIRE(n >= d + 1, "need more rows than coefficients");

  // Normal equations over the design matrix [1 | X]: (X'X + λI) w = X'y.
  const std::size_t dim = d + 1;
  NormalAccum accum = make_accum(dim);
  accumulate_rows(data, 0, n, dim, accum);
  coef_ = solve_normal(std::move(accum), dim, lambda_);
  fitted_ = true;
}

void LinearRegression::fit(const Dataset& data, ThreadPool& pool) {
  const std::size_t n = data.rows();
  const std::size_t d = data.features();
  PE_REQUIRE(n >= d + 1, "need more rows than coefficients");

  // Fixed 256-row blocks folded in ascending order: the grouping (and so
  // the floating-point rounding) depends on the block size only, making
  // repeated fits bit-identical regardless of pool size or thread timing.
  const std::size_t dim = d + 1;
  constexpr std::size_t kRowsPerBlock = 256;
  const std::size_t blocks = (n + kRowsPerBlock - 1) / kRowsPerBlock;
  NormalAccum total = parallel_reduce_ordered(
      pool, 0, blocks, make_accum(dim),
      [&](std::size_t b) {
        NormalAccum acc = make_accum(dim);
        const std::size_t lo = b * kRowsPerBlock;
        accumulate_rows(data, lo, std::min(n, lo + kRowsPerBlock), dim, acc);
        return acc;
      },
      [dim](NormalAccum acc, NormalAccum next) {
        for (std::size_t k = 0; k < dim * dim; ++k) acc.xtx[k] += next.xtx[k];
        for (std::size_t k = 0; k < dim; ++k) acc.xty[k] += next.xty[k];
        return acc;
      },
      /*block=*/1);
  coef_ = solve_normal(std::move(total), dim, lambda_);
  fitted_ = true;
}

double LinearRegression::predict(const std::vector<double>& features) const {
  PE_REQUIRE(fitted_, "predict before fit");
  PE_REQUIRE(features.size() + 1 == coef_.size(), "feature width mismatch");
  double acc = coef_[0];
  for (std::size_t f = 0; f < features.size(); ++f)
    acc += coef_[f + 1] * features[f];
  return acc;
}

std::string LinearRegression::describe() const {
  if (lambda_ == 0.0) return "ols";
  return "ridge(lambda=" + std::to_string(lambda_) + ")";
}

const std::vector<double>& LinearRegression::coefficients() const {
  PE_REQUIRE(fitted_, "coefficients before fit");
  return coef_;
}

std::vector<double> polynomial_expand_row(const std::vector<double>& features,
                                          int degree) {
  PE_REQUIRE(degree >= 1, "degree must be at least 1");
  std::vector<double> out;
  out.reserve(features.size() * static_cast<std::size_t>(degree));
  for (double v : features) {
    double power = v;
    for (int deg = 1; deg <= degree; ++deg) {
      out.push_back(power);
      power *= v;
    }
  }
  return out;
}

Dataset polynomial_expand(const Dataset& data, int degree) {
  PE_REQUIRE(degree >= 1, "degree must be at least 1");
  std::vector<std::string> names;
  for (const auto& base : data.feature_names()) {
    for (int deg = 1; deg <= degree; ++deg) {
      names.push_back(deg == 1 ? base : base + "^" + std::to_string(deg));
    }
  }
  Dataset out(std::move(names));
  for (std::size_t i = 0; i < data.rows(); ++i)
    out.add_row(polynomial_expand_row(data.row(i), degree), data.target(i));
  return out;
}

}  // namespace pe::statmodel
