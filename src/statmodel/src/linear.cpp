#include "perfeng/statmodel/linear.hpp"

#include <cmath>

#include "perfeng/common/error.hpp"

namespace pe::statmodel {

std::vector<double> solve_linear_system(std::vector<std::vector<double>> a,
                                        std::vector<double> b) {
  const std::size_t n = b.size();
  PE_REQUIRE(a.size() == n, "system must be square");
  for (const auto& row : a)
    PE_REQUIRE(row.size() == n, "system must be square");

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    if (std::abs(a[pivot][col]) < 1e-12)
      throw Error("linear system is singular or ill-conditioned");
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);

    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t c = i + 1; c < n; ++c) acc -= a[i][c] * x[c];
    x[i] = acc / a[i][i];
  }
  return x;
}

LinearRegression::LinearRegression(double ridge_lambda)
    : lambda_(ridge_lambda) {
  PE_REQUIRE(ridge_lambda >= 0.0, "ridge penalty must be non-negative");
}

void LinearRegression::fit(const Dataset& data) {
  const std::size_t n = data.rows();
  const std::size_t d = data.features();
  PE_REQUIRE(n >= d + 1, "need more rows than coefficients");

  // Normal equations over the design matrix [1 | X]: (X'X + λI) w = X'y.
  const std::size_t dim = d + 1;
  std::vector<std::vector<double>> xtx(dim, std::vector<double>(dim, 0.0));
  std::vector<double> xty(dim, 0.0);
  std::vector<double> row(dim);
  for (std::size_t i = 0; i < n; ++i) {
    row[0] = 1.0;
    const auto& features = data.row(i);
    for (std::size_t f = 0; f < d; ++f) row[f + 1] = features[f];
    for (std::size_t r = 0; r < dim; ++r) {
      for (std::size_t c = 0; c < dim; ++c) xtx[r][c] += row[r] * row[c];
      xty[r] += row[r] * data.target(i);
    }
  }
  for (std::size_t f = 1; f < dim; ++f) xtx[f][f] += lambda_;

  coef_ = solve_linear_system(std::move(xtx), std::move(xty));
  fitted_ = true;
}

double LinearRegression::predict(const std::vector<double>& features) const {
  PE_REQUIRE(fitted_, "predict before fit");
  PE_REQUIRE(features.size() + 1 == coef_.size(), "feature width mismatch");
  double acc = coef_[0];
  for (std::size_t f = 0; f < features.size(); ++f)
    acc += coef_[f + 1] * features[f];
  return acc;
}

std::string LinearRegression::describe() const {
  if (lambda_ == 0.0) return "ols";
  return "ridge(lambda=" + std::to_string(lambda_) + ")";
}

const std::vector<double>& LinearRegression::coefficients() const {
  PE_REQUIRE(fitted_, "coefficients before fit");
  return coef_;
}

std::vector<double> polynomial_expand_row(const std::vector<double>& features,
                                          int degree) {
  PE_REQUIRE(degree >= 1, "degree must be at least 1");
  std::vector<double> out;
  out.reserve(features.size() * static_cast<std::size_t>(degree));
  for (double v : features) {
    double power = v;
    for (int deg = 1; deg <= degree; ++deg) {
      out.push_back(power);
      power *= v;
    }
  }
  return out;
}

Dataset polynomial_expand(const Dataset& data, int degree) {
  PE_REQUIRE(degree >= 1, "degree must be at least 1");
  std::vector<std::string> names;
  for (const auto& base : data.feature_names()) {
    for (int deg = 1; deg <= degree; ++deg) {
      names.push_back(deg == 1 ? base : base + "^" + std::to_string(deg));
    }
  }
  Dataset out(std::move(names));
  for (std::size_t i = 0; i < data.rows(); ++i)
    out.add_row(polynomial_expand_row(data.row(i), degree), data.target(i));
  return out;
}

}  // namespace pe::statmodel
