#include "perfeng/lint/driver.hpp"

#include <algorithm>
#include <fstream>

#include "perfeng/common/error.hpp"

namespace pe::lint {

namespace {

namespace fs = std::filesystem;

bool wanted_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

std::vector<std::string> read_lines(const fs::path& p) {
  std::ifstream in(p);
  if (!in) throw pe::Error("perfeng-lint: cannot read " + p.string());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(std::move(line));
  }
  return lines;
}

}  // namespace

std::vector<SourceFile> load_sources(const ScanOptions& opts) {
  std::vector<fs::path> paths;
  for (const std::string& dir : opts.dirs) {
    const fs::path base = opts.root / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !wanted_extension(entry.path()))
        continue;
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  const std::string root_str = opts.root.string();
  for (const fs::path& p : paths) {
    std::string rel = p.string();
    if (rel.rfind(root_str, 0) == 0) {
      rel = rel.substr(root_str.size());
      while (!rel.empty() && rel.front() == '/') rel.erase(rel.begin());
    }
    const bool skipped = std::any_of(
        opts.skip_substrings.begin(), opts.skip_substrings.end(),
        [&](const std::string& s) { return rel.find(s) != std::string::npos; });
    if (skipped) continue;
    files.push_back(make_source_file(std::move(rel), read_lines(p)));
  }
  return files;
}

LintResult run_passes(const PassContext& ctx,
                      const std::vector<std::unique_ptr<Pass>>& passes) {
  LintResult result;
  result.files_scanned = ctx.files != nullptr ? ctx.files->size() : 0;
  for (const auto& pass : passes) {
    result.rules.push_back(pass->rule());
    pass->run(ctx, result.findings);
  }
  sort_findings(result.findings);
  return result;
}

LintResult lint_repo(const ScanOptions& opts,
                     const std::vector<std::string>& only_rules) {
  const std::vector<SourceFile> files = load_sources(opts);
  const RepoModel model = RepoModel::build(opts.root);
  PassContext ctx;
  ctx.model = &model;
  ctx.files = &files;

  std::vector<std::unique_ptr<Pass>> passes = default_passes();
  if (!only_rules.empty()) {
    std::erase_if(passes, [&](const std::unique_ptr<Pass>& p) {
      return std::find(only_rules.begin(), only_rules.end(),
                       p->rule().id) == only_rules.end();
    });
  }
  return run_passes(ctx, passes);
}

}  // namespace pe::lint
