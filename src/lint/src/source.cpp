#include "perfeng/lint/source.hpp"

#include <algorithm>
#include <utility>

namespace pe::lint {

SourceFile make_source_file(std::string rel, std::vector<std::string> raw) {
  SourceFile f;
  f.rel = std::move(rel);
  f.raw = std::move(raw);
  f.code = cook_lines(f.raw);
  f.includes = include_directives(f.raw);

  const auto ends_with = [&](std::string_view suffix) {
    return f.rel.size() >= suffix.size() &&
           f.rel.compare(f.rel.size() - suffix.size(), suffix.size(),
                         suffix) == 0;
  };
  f.is_header = ends_with(".hpp") || ends_with(".h");
  f.in_src = f.rel.rfind("src/", 0) == 0;
  f.in_tests = f.rel.rfind("tests/", 0) == 0;
  f.in_bench = f.rel.rfind("bench/", 0) == 0;
  f.in_tools = f.rel.rfind("tools/", 0) == 0;
  f.is_public_header =
      f.is_header && f.rel.find("/include/perfeng/") != std::string::npos;
  if (f.in_src) {
    const std::size_t start = 4;  // past "src/"
    const std::size_t slash = f.rel.find('/', start);
    if (slash != std::string::npos)
      f.library = f.rel.substr(start, slash - start);
  }
  return f;
}

bool line_allows(const SourceFile& f, std::size_t idx,
                 std::string_view rule) {
  const std::string needle =
      "perfeng-lint: allow(" + std::string(rule) + ")";
  if (idx < f.raw.size() && f.raw[idx].find(needle) != std::string::npos)
    return true;
  return idx > 0 && f.raw[idx - 1].find(needle) != std::string::npos;
}

bool file_allows(const SourceFile& f, std::string_view rule) {
  const std::string needle =
      "perfeng-lint: allow-file(" + std::string(rule) + ")";
  return std::any_of(f.raw.begin(), f.raw.end(),
                     [&](const std::string& line) {
                       return line.find(needle) != std::string::npos;
                     });
}

}  // namespace pe::lint
