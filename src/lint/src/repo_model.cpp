#include "perfeng/lint/repo_model.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace pe::lint {

namespace {

namespace fs = std::filesystem;

/// Strip CMake comments and collapse the file into one token stream.
std::vector<std::string> cmake_tokens(const fs::path& file) {
  std::ifstream in(file);
  std::vector<std::string> tokens;
  if (!in) return tokens;
  std::string all;
  for (std::string line; std::getline(in, line);) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    all += line;
    all += '\n';
  }
  std::string tok;
  const auto flush = [&] {
    if (!tok.empty()) {
      tokens.push_back(tok);
      tok.clear();
    }
  };
  for (const char c : all) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      flush();
    } else if (c == '(' || c == ')') {
      flush();
      tokens.emplace_back(1, c);
    } else {
      tok.push_back(c);
    }
  }
  flush();
  return tokens;
}

bool is_cmake_keyword(const std::string& t) {
  return t == "PUBLIC" || t == "PRIVATE" || t == "INTERFACE" ||
         t == "STATIC" || t == "SHARED" || t == "OBJECT";
}

}  // namespace

const Library* RepoModel::by_name(std::string_view name) const noexcept {
  for (const Library& lib : libraries_)
    if (lib.name == name) return &lib;
  return nullptr;
}

const Library* RepoModel::by_target(
    std::string_view target) const noexcept {
  for (const Library& lib : libraries_)
    if (lib.target == target) return &lib;
  return nullptr;
}

bool RepoModel::depends_on(std::string_view from, std::string_view to) const {
  if (from == to) return true;
  const Library* start = by_name(from);
  if (start == nullptr) return false;
  std::set<std::string> seen;
  std::vector<const Library*> work = {start};
  while (!work.empty()) {
    const Library* lib = work.back();
    work.pop_back();
    for (const std::string& dep : lib->deps) {
      if (dep == to) return true;
      if (!seen.insert(dep).second) continue;
      if (const Library* next = by_name(dep)) work.push_back(next);
    }
  }
  return false;
}

std::string RepoModel::owner_of_header(
    const std::string& include_path) const {
  for (const Library& lib : libraries_) {
    const fs::path candidate =
        root_ / "src" / lib.name / "include" / include_path;
    std::error_code ec;
    if (fs::is_regular_file(candidate, ec)) return lib.name;
  }
  return {};
}

std::vector<std::vector<std::string>> RepoModel::declared_cycles() const {
  // Iterative DFS with colors; every back edge closes one reported cycle.
  std::vector<std::vector<std::string>> cycles;
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> path;
  std::set<std::string> reported;  // canonical cycle keys

  // Recursive lambda via explicit stack of (name, next_dep_index).
  for (const Library& root_lib : libraries_) {
    if (color[root_lib.name] != 0) continue;
    std::vector<std::pair<std::string, std::size_t>> stack;
    stack.emplace_back(root_lib.name, 0);
    color[root_lib.name] = 1;
    path.push_back(root_lib.name);
    while (!stack.empty()) {
      auto& [name, idx] = stack.back();
      const Library* lib = by_name(name);
      const std::vector<std::string> no_deps;
      const std::vector<std::string>& deps =
          lib != nullptr ? lib->deps : no_deps;
      if (idx >= deps.size()) {
        color[name] = 2;
        stack.pop_back();
        path.pop_back();
        continue;
      }
      const std::string dep = deps[idx++];
      if (by_name(dep) == nullptr) continue;  // external; not in the DAG
      if (color[dep] == 1) {
        // Back edge: the cycle is the path suffix from dep.
        const auto it = std::find(path.begin(), path.end(), dep);
        std::vector<std::string> cycle(it, path.end());
        cycle.push_back(dep);
        // Canonical key: rotate so the smallest name leads.
        std::vector<std::string> body(cycle.begin(), cycle.end() - 1);
        const auto min_it = std::min_element(body.begin(), body.end());
        std::rotate(body.begin(), min_it, body.end());
        std::string key;
        for (const std::string& n : body) key += n + ">";
        if (reported.insert(key).second) cycles.push_back(std::move(cycle));
        continue;
      }
      if (color[dep] == 0) {
        color[dep] = 1;
        path.push_back(dep);
        stack.emplace_back(dep, 0);
      }
    }
  }
  return cycles;
}

RepoModel RepoModel::build(const fs::path& root) {
  RepoModel model;
  model.root_ = root;
  const fs::path src = root / "src";
  std::error_code ec;
  if (!fs::is_directory(src, ec)) return model;

  std::vector<fs::path> dirs;
  for (const auto& entry : fs::directory_iterator(src)) {
    if (entry.is_directory()) dirs.push_back(entry.path());
  }
  std::sort(dirs.begin(), dirs.end());

  // First pass: find every declared target, so dep tokens can be mapped
  // back to library names afterwards.
  struct Parsed {
    Library lib;
    std::vector<std::string> dep_targets;
  };
  std::vector<Parsed> parsed;
  for (const fs::path& dir : dirs) {
    const fs::path cmake = dir / "CMakeLists.txt";
    if (!fs::is_regular_file(cmake, ec)) continue;
    const std::vector<std::string> tokens = cmake_tokens(cmake);
    Parsed p;
    p.lib.name = dir.filename().string();
    p.lib.cmake_rel = "src/" + p.lib.name + "/CMakeLists.txt";
    for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
      if (tokens[i] == "add_library" && tokens[i + 1] == "(") {
        if (p.lib.target.empty()) p.lib.target = tokens[i + 2];
      }
      if (tokens[i] == "target_link_libraries" && tokens[i + 1] == "(") {
        // Consume until the matching ')' (flat argument list).
        std::size_t j = i + 2;
        bool first = true;
        while (j < tokens.size() && tokens[j] != ")") {
          const std::string& t = tokens[j];
          if (first) {
            first = false;  // the target being linked
          } else if (!is_cmake_keyword(t) && t != "(") {
            p.dep_targets.push_back(t);
          }
          ++j;
        }
      }
    }
    if (!p.lib.target.empty()) parsed.push_back(std::move(p));
  }

  // Second pass: resolve dep targets to library names; drop externals
  // (warnings interface, Threads::Threads, GTest, ...).
  std::map<std::string, std::string> target_to_name;
  for (const Parsed& p : parsed) target_to_name[p.lib.target] = p.lib.name;
  for (Parsed& p : parsed) {
    std::set<std::string> seen;
    for (const std::string& t : p.dep_targets) {
      const auto it = target_to_name.find(t);
      if (it == target_to_name.end()) continue;
      if (it->second == p.lib.name) continue;
      if (seen.insert(it->second).second) p.lib.deps.push_back(it->second);
    }
    model.libraries_.push_back(std::move(p.lib));
  }
  return model;
}

}  // namespace pe::lint
