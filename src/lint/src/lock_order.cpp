#include "perfeng/lint/lock_order.hpp"

#include <algorithm>
#include <cctype>
#include <deque>
#include <set>

#include "perfeng/lint/lexer.hpp"

namespace pe::lint {

namespace {

// ---------------------------------------------------------------------------
// Structural model extracted from the cooked sources
// ---------------------------------------------------------------------------

struct ClassInfo {
  std::string name;
  std::set<std::string> mutex_members;
  std::map<std::string, std::string> member_types;  // member -> type text
};

struct Event {
  enum class Kind { kStmt, kOpen, kClose };
  Kind kind = Kind::kStmt;
  std::string text;
  std::size_t line = 0;
};

struct FunctionInfo {
  std::string qname;       ///< e.g. "ThreadPool::worker_loop" or "<lambda>"
  std::string base;        ///< unqualified name; empty for lambdas
  std::string class_name;  ///< enclosing class, if any
  std::set<std::string> mutex_params;  ///< names of std::mutex& parameters
  std::vector<Event> events;
  std::string file;
};

struct TuModel {
  std::vector<FunctionInfo> functions;
};

struct GlobalModel {
  std::map<std::string, ClassInfo> classes;
  std::map<std::string, std::string> global_mutexes;  // name -> identity
  std::vector<TuModel> tus;
};

std::string trim(const std::string& s) {
  std::size_t a = s.find_first_not_of(" \t\n");
  if (a == std::string::npos) return {};
  std::size_t b = s.find_last_not_of(" \t\n");
  return s.substr(a, b - a + 1);
}

std::string basename_of(const std::string& rel) {
  const std::size_t slash = rel.find_last_of('/');
  return slash == std::string::npos ? rel : rel.substr(slash + 1);
}

bool is_mutex_type(const std::string& type) {
  return contains_token(type, "mutex") &&
         type.find("condition_variable") == std::string::npos;
}

/// Split a declaration into (type text, declared name): the last
/// identifier is the name, everything before it the type.
bool split_decl(const std::string& decl, std::string& type,
                std::string& name) {
  std::size_t end = decl.size();
  while (end > 0 && !is_identifier_char(decl[end - 1])) --end;
  if (end == 0) return false;
  std::size_t start = end;
  while (start > 0 && is_identifier_char(decl[start - 1])) --start;
  name = decl.substr(start, end - start);
  type = trim(decl.substr(0, start));
  if (type.empty() || name.empty()) return false;
  if (std::isdigit(static_cast<unsigned char>(name[0])) != 0) return false;
  return true;
}

std::string strip_access_labels(std::string s) {
  for (const char* label : {"public:", "private:", "protected:"}) {
    const std::size_t pos = s.find(label);
    if (pos != std::string::npos)
      s = s.substr(pos + std::string(label).size());
  }
  return trim(s);
}

/// Top-level comma split of an argument list (no nested commas).
std::vector<std::string> split_args(const std::string& args) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (const char c : args) {
    if (c == '(' || c == '<' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == '>' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(trim(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!trim(cur).empty()) out.push_back(trim(cur));
  return out;
}

std::size_t find_matching(const std::string& s, std::size_t open, char oc,
                          char cc) {
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == oc) ++depth;
    if (s[i] == cc && --depth == 0) return i;
  }
  return std::string::npos;
}

// ---------------------------------------------------------------------------
// Phase A+B walker: one pass over a file's cooked text builds class
// records and per-function event streams.
// ---------------------------------------------------------------------------

struct Scope {
  enum class Kind { kNamespace, kClass, kFunction, kLambda, kBlock };
  Kind kind = Kind::kBlock;
  std::string name;
  std::size_t fn_index = 0;  ///< into the walker's open-function stack
};

void walk_file(const SourceFile& f, GlobalModel& model, TuModel& tu) {
  std::string text;
  for (const std::string& line : f.code) {
    text += line;
    text += '\n';
  }

  std::vector<Scope> scopes;
  std::vector<FunctionInfo> open_fns;  // innermost last
  std::string header;
  std::size_t line = 1;
  std::size_t header_line = 1;

  const auto innermost_class = [&]() -> std::string {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it)
      if (it->kind == Scope::Kind::kClass) return it->name;
    return {};
  };
  const auto in_function = [&]() { return !open_fns.empty(); };
  const auto block_like = [&](Scope::Kind k) {
    return k == Scope::Kind::kBlock;
  };
  (void)block_like;

  const auto emit_stmt = [&](const std::string& s, std::size_t at) {
    if (open_fns.empty()) return;
    const std::string t = trim(s);
    if (t.empty()) return;
    open_fns.back().events.push_back({Event::Kind::kStmt, t, at});
  };

  const auto record_member = [&](const std::string& decl) {
    const std::string cls = innermost_class();
    const std::string body = strip_access_labels(decl);
    if (body.find('(') != std::string::npos) return;  // method declaration
    std::string stripped = body;
    const std::size_t eq = stripped.find('=');
    if (eq != std::string::npos) stripped = trim(stripped.substr(0, eq));
    std::string type;
    std::string name;
    if (!split_decl(stripped, type, name)) return;
    if (cls.empty()) {
      // Namespace-scope declaration: a file-level mutex gets an identity
      // anchored to the file.
      if (is_mutex_type(type))
        model.global_mutexes.emplace(name,
                                     basename_of(f.rel) + "::" + name);
      return;
    }
    ClassInfo& info = model.classes[cls];
    info.name = cls;
    info.member_types[name] = type;
    if (is_mutex_type(type)) info.mutex_members.insert(name);
  };

  const auto classify_open = [&]() {
    const std::string h = trim(header);
    if (contains_token(h, "namespace"))
      return Scope{Scope::Kind::kNamespace, {}, 0};
    const std::size_t paren = h.find('(');
    const bool classy = contains_token(h, "class") ||
                        contains_token(h, "struct") ||
                        contains_token(h, "union");
    if (classy &&
        (paren == std::string::npos ||
         std::min({h.find("class"), h.find("struct"), h.find("union")}) <
             paren)) {
      // `struct Name final : Base` — the name follows the keyword.
      std::size_t kw = std::string::npos;
      for (const char* k : {"class", "struct", "union"}) {
        const std::size_t p = h.find(k);
        if (p != std::string::npos && p < kw)
          kw = p + std::string(k).size();
      }
      std::size_t s = kw;
      while (s < h.size() && !is_identifier_char(h[s])) ++s;
      std::size_t e = s;
      while (e < h.size() && is_identifier_char(h[e])) ++e;
      std::string name = h.substr(s, e - s);
      if (name == "final" || name == "alignas") name.clear();
      return Scope{Scope::Kind::kClass, name, 0};
    }
    if (contains_token(h, "enum")) return Scope{Scope::Kind::kBlock, {}, 0};
    if (in_function()) {
      // Inside a function the only function-like opener is a lambda.
      if (h.find("](") != std::string::npos ||
          h.find("] (") != std::string::npos ||
          (!h.empty() && h.back() == ']'))
        return Scope{Scope::Kind::kLambda, "<lambda>", 0};
      return Scope{Scope::Kind::kBlock, {}, 0};
    }
    if (paren != std::string::npos) {
      // Function definition at namespace/class scope. The name is the
      // (possibly qualified) identifier directly before the paren.
      std::size_t e = paren;
      while (e > 0 && (h[e - 1] == ' ' || h[e - 1] == '\t')) --e;
      std::size_t s = e;
      while (s > 0 && (is_identifier_char(h[s - 1]) || h[s - 1] == ':' ||
                       h[s - 1] == '~'))
        --s;
      const std::string qname = h.substr(s, e - s);
      if (qname.empty() || qname == "if" || qname == "for" ||
          qname == "while" || qname == "switch" || qname == "catch")
        return Scope{Scope::Kind::kBlock, {}, 0};
      return Scope{Scope::Kind::kFunction, qname, 0};
    }
    return Scope{Scope::Kind::kBlock, {}, 0};
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      header += ' ';
      continue;
    }
    if (c == '{') {
      Scope scope = classify_open();
      if (scope.kind == Scope::Kind::kFunction ||
          scope.kind == Scope::Kind::kLambda) {
        FunctionInfo fn;
        fn.file = f.rel;
        fn.qname = scope.name;
        fn.class_name = innermost_class();
        if (scope.kind == Scope::Kind::kFunction) {
          const std::size_t sep = scope.name.rfind("::");
          if (sep != std::string::npos) {
            fn.class_name = scope.name.substr(0, sep);
            fn.base = scope.name.substr(sep + 2);
          } else {
            fn.base = scope.name;
            if (!fn.class_name.empty())
              fn.qname = fn.class_name + "::" + fn.base;
          }
          // std::mutex& parameters mark a lock wrapper.
          const std::string h = trim(header);
          const std::size_t open = h.find('(');
          const std::size_t close =
              open == std::string::npos
                  ? std::string::npos
                  : find_matching(h, open, '(', ')');
          if (open != std::string::npos && close != std::string::npos) {
            for (const std::string& arg :
                 split_args(h.substr(open + 1, close - open - 1))) {
              if (!is_mutex_type(arg) || arg.find('&') == std::string::npos)
                continue;
              std::string type;
              std::string name;
              if (split_decl(arg, type, name)) fn.mutex_params.insert(name);
            }
          }
        }
        scope.fn_index = open_fns.size();
        open_fns.push_back(std::move(fn));
      } else if (scope.kind == Scope::Kind::kBlock && in_function()) {
        emit_stmt(header, header_line);
        open_fns.back().events.push_back({Event::Kind::kOpen, {}, line});
      }
      scopes.push_back(scope);
      header.clear();
      header_line = line;
      continue;
    }
    if (c == '}') {
      if (!scopes.empty()) {
        const Scope scope = scopes.back();
        scopes.pop_back();
        if (scope.kind == Scope::Kind::kFunction ||
            scope.kind == Scope::Kind::kLambda) {
          emit_stmt(header, header_line);
          tu.functions.push_back(std::move(open_fns.back()));
          open_fns.pop_back();
        } else if (scope.kind == Scope::Kind::kBlock && in_function()) {
          emit_stmt(header, header_line);
          open_fns.back().events.push_back({Event::Kind::kClose, {}, line});
        }
      }
      header.clear();
      header_line = line;
      continue;
    }
    if (c == ';') {
      const bool at_class_level =
          !scopes.empty() && scopes.back().kind == Scope::Kind::kClass;
      const bool at_ns_level =
          scopes.empty() || scopes.back().kind == Scope::Kind::kNamespace;
      if (in_function() && !at_class_level) {
        emit_stmt(header, header_line);
      } else if (at_class_level || at_ns_level) {
        record_member(header);
      }
      header.clear();
      header_line = line;
      continue;
    }
    if (header.empty()) header_line = line;
    header.push_back(c);
  }
}

// ---------------------------------------------------------------------------
// Identity resolution
// ---------------------------------------------------------------------------

struct Resolver {
  const GlobalModel* model = nullptr;
  const FunctionInfo* fn = nullptr;
  const std::map<std::string, std::string>* local_types = nullptr;

  std::vector<std::string> candidates_for_member(const std::string& m) const {
    std::vector<std::string> out;
    for (const auto& [name, info] : model->classes)
      if (info.mutex_members.count(m) != 0) out.push_back(name);
    return out;
  }

  /// Strip a trailing [..] index chain and call parens from an expression.
  static std::string strip_suffixes(std::string e) {
    e = trim(e);
    for (;;) {
      if (!e.empty() && (e.back() == ']' || e.back() == ')')) {
        const char close = e.back();
        const char open = close == ']' ? '[' : '(';
        int depth = 0;
        std::size_t i = e.size();
        while (i > 0) {
          --i;
          if (e[i] == close) ++depth;
          if (e[i] == open && --depth == 0) break;
        }
        if (depth == 0 && i < e.size()) {
          e = trim(e.substr(0, i));
          continue;
        }
      }
      return e;
    }
  }

  std::string resolve(std::string expr) const {
    expr = trim(expr);
    while (!expr.empty() && (expr.front() == '*' || expr.front() == '&'))
      expr = trim(expr.substr(1));
    if (expr.rfind("this->", 0) == 0) expr = trim(expr.substr(6));

    // Split at the last member access.
    std::size_t dot = expr.rfind('.');
    std::size_t arrow = expr.rfind("->");
    std::size_t sep = std::string::npos;
    std::size_t sep_len = 0;
    if (dot != std::string::npos &&
        (arrow == std::string::npos || dot > arrow + 1)) {
      sep = dot;
      sep_len = 1;
    } else if (arrow != std::string::npos) {
      sep = arrow;
      sep_len = 2;
    }

    if (sep == std::string::npos) {
      const std::string& n = expr;
      if (!fn->class_name.empty()) {
        const auto it = model->classes.find(fn->class_name);
        if (it != model->classes.end() &&
            it->second.mutex_members.count(n) != 0)
          return fn->class_name + "::" + n;
      }
      const std::vector<std::string> cands = candidates_for_member(n);
      if (cands.size() == 1) return cands.front() + "::" + n;
      const auto git = model->global_mutexes.find(n);
      if (git != model->global_mutexes.end()) return git->second;
      return basename_of(fn->file) + "::" + n;
    }

    const std::string member = trim(expr.substr(sep + sep_len));
    const std::string prefix = strip_suffixes(expr.substr(0, sep));
    const std::vector<std::string> cands = candidates_for_member(member);
    if (cands.size() == 1) return cands.front() + "::" + member;
    if (!cands.empty()) {
      // Disambiguate via the prefix's declared type: a local variable,
      // or a member of the enclosing class.
      std::string type;
      const auto lit = local_types->find(prefix);
      if (lit != local_types->end()) {
        type = lit->second;
      } else if (!fn->class_name.empty()) {
        const auto cit = model->classes.find(fn->class_name);
        if (cit != model->classes.end()) {
          const auto mit = cit->second.member_types.find(prefix);
          if (mit != cit->second.member_types.end()) type = mit->second;
        }
      }
      for (const std::string& cand : cands)
        if (contains_token(type, cand)) return cand + "::" + member;
    }
    return basename_of(fn->file) + "::" + expr;
  }
};

// ---------------------------------------------------------------------------
// Per-function simulation
// ---------------------------------------------------------------------------

struct Guard {
  std::string name;      ///< guard variable; empty for direct .lock()
  std::string identity;  ///< resolved mutex identity
  std::size_t depth = 0; ///< block depth at declaration
  bool held = false;     ///< false for defer_lock until .lock()
};

struct CallSite {
  std::string callee;  ///< base name, same-TU resolution
  std::size_t line = 0;
  std::vector<std::string> held;  ///< identities held at the call
};

struct FunctionFacts {
  const FunctionInfo* fn = nullptr;
  std::vector<LockEdge> edges;
  std::set<std::string> direct_acquires;  ///< excludes mutex& params
  std::vector<CallSite> calls;
};

bool is_std_tag(const std::string& arg) {
  return arg.find("adopt_lock") != std::string::npos ||
         arg.find("defer_lock") != std::string::npos ||
         arg.find("try_to_lock") != std::string::npos;
}

/// Parse `std::xxx_lock[<...>] NAME(args)` / `{args}` at `kw` in stmt.
/// Returns the args and the guard name via out-params.
bool parse_guard_decl(const std::string& stmt, std::size_t kw_end,
                      std::string& guard_name,
                      std::vector<std::string>& args) {
  std::size_t i = kw_end;
  while (i < stmt.size() && stmt[i] == ' ') ++i;
  if (i < stmt.size() && stmt[i] == '<') {
    const std::size_t close = find_matching(stmt, i, '<', '>');
    if (close == std::string::npos) return false;
    i = close + 1;
  }
  while (i < stmt.size() && stmt[i] == ' ') ++i;
  std::size_t s = i;
  while (i < stmt.size() && is_identifier_char(stmt[i])) ++i;
  guard_name = stmt.substr(s, i - s);
  while (i < stmt.size() && stmt[i] == ' ') ++i;
  if (i >= stmt.size() || (stmt[i] != '(' && stmt[i] != '{')) return false;
  const char open = stmt[i];
  const char close_c = open == '(' ? ')' : '}';
  const std::size_t close = find_matching(stmt, i, open, close_c);
  if (close == std::string::npos) return false;
  args = split_args(stmt.substr(i + 1, close - i - 1));
  return true;
}

void simulate(const FunctionInfo& fn, const GlobalModel& model,
              const std::set<std::string>& tu_functions,
              const std::set<std::string>& tu_wrappers,
              FunctionFacts& facts) {
  facts.fn = &fn;
  std::map<std::string, std::string> local_types;
  Resolver resolver{&model, &fn, &local_types};
  std::vector<Guard> guards;
  std::size_t depth = 1;

  const auto held_identities = [&]() {
    std::vector<std::string> out;
    for (const Guard& g : guards)
      if (g.held) out.push_back(g.identity);
    return out;
  };

  const auto acquire = [&](const std::string& expr, std::size_t line,
                           const std::string& guard_name, bool persists) {
    const std::string t = trim(expr);
    if (t.empty()) return;
    const bool is_param = fn.mutex_params.count(t) != 0;
    const std::string id =
        is_param ? "<param>::" + t : resolver.resolve(t);
    for (const std::string& h : held_identities()) {
      if (h == id) continue;
      facts.edges.push_back({h, id,
                             fn.file + ":" + std::to_string(line), fn.qname,
                             {}});
    }
    if (!is_param) facts.direct_acquires.insert(id);
    if (persists) guards.push_back({guard_name, id, depth, true});
  };

  for (const Event& ev : fn.events) {
    if (ev.kind == Event::Kind::kOpen) {
      ++depth;
      continue;
    }
    if (ev.kind == Event::Kind::kClose) {
      std::erase_if(guards, [&](const Guard& g) { return g.depth >= depth; });
      if (depth > 1) --depth;
      continue;
    }
    const std::string& stmt = ev.text;

    // Record local declarations for later type-based identity resolution:
    // `Type name = ...` / `Type& name = ...`.
    {
      const std::size_t eq = stmt.find('=');
      if (eq != std::string::npos && eq > 0 && stmt[eq - 1] != '!' &&
          stmt[eq - 1] != '<' && stmt[eq - 1] != '>' &&
          (eq + 1 >= stmt.size() || stmt[eq + 1] != '=')) {
        std::string type;
        std::string name;
        if (split_decl(trim(stmt.substr(0, eq)), type, name) &&
            type.find('(') == std::string::npos)
          local_types[name] = type;
      }
    }

    // Guard declarations.
    for (const char* kw : {"scoped_lock", "lock_guard", "unique_lock"}) {
      std::size_t pos = 0;
      while ((pos = stmt.find(kw, pos)) != std::string::npos) {
        const std::size_t end = pos + std::string(kw).size();
        const bool bounded =
            (pos == 0 || !is_identifier_char(stmt[pos - 1])) &&
            (end >= stmt.size() || !is_identifier_char(stmt[end]));
        pos = end;
        if (!bounded) continue;
        // `std::` qualification may precede; that still bounds as ':'.
        std::string guard_name;
        std::vector<std::string> args;
        if (!parse_guard_decl(stmt, end, guard_name, args)) continue;
        std::vector<std::string> mutex_args;
        bool deferred = false;
        for (const std::string& a : args) {
          if (is_std_tag(a)) {
            if (a.find("defer_lock") != std::string::npos) deferred = true;
            continue;
          }
          mutex_args.push_back(a);
        }
        if (mutex_args.empty()) continue;
        if (deferred) {
          // Registered but not held until a later guard.lock().
          const std::string t = trim(mutex_args.front());
          const bool is_param = fn.mutex_params.count(t) != 0;
          const std::string id =
              is_param ? "<param>::" + t : resolver.resolve(t);
          guards.push_back({guard_name, id, depth, false});
          continue;
        }
        // Multi-argument scoped_lock acquires its mutexes atomically with
        // a deadlock-avoidance algorithm: edges flow from already-held
        // locks to each, none between the arguments themselves.
        const std::vector<std::string> held_before = held_identities();
        std::vector<Guard> fresh;
        for (const std::string& a : mutex_args) {
          const std::string t = trim(a);
          if (t.empty()) continue;
          const bool is_param = fn.mutex_params.count(t) != 0;
          const std::string id =
              is_param ? "<param>::" + t : resolver.resolve(t);
          for (const std::string& h : held_before) {
            if (h == id) continue;
            facts.edges.push_back(
                {h, id, fn.file + ":" + std::to_string(ev.line), fn.qname,
                 {}});
          }
          if (!is_param) facts.direct_acquires.insert(id);
          fresh.push_back({guard_name, id, depth, true});
        }
        guards.insert(guards.end(), fresh.begin(), fresh.end());
      }
    }

    // Wrapper calls: `auto g = lock_traced(mu, ...)` — acquisition of the
    // first argument, guard lifetime = the assigned variable's block.
    for (const std::string& wrapper : tu_wrappers) {
      std::size_t pos = 0;
      while ((pos = stmt.find(wrapper + "(", pos)) != std::string::npos) {
        const bool bounded = pos == 0 || !is_identifier_char(stmt[pos - 1]);
        const std::size_t open = pos + wrapper.size();
        pos = open;
        if (!bounded) continue;
        const std::size_t close = find_matching(stmt, open, '(', ')');
        if (close == std::string::npos) continue;
        const std::vector<std::string> args =
            split_args(stmt.substr(open + 1, close - open - 1));
        if (args.empty()) continue;
        // Guard name: `... NAME = wrapper(...)`.
        std::string guard_name;
        const std::size_t eq = stmt.rfind('=', open);
        if (eq != std::string::npos) {
          std::string type;
          split_decl(trim(stmt.substr(0, eq)), type, guard_name);
        }
        acquire(args.front(), ev.line, guard_name, true);
      }
    }

    // guard.lock() / guard.unlock() / mutex.lock() / mutex.unlock().
    for (const char* op : {".lock()", ".unlock()"}) {
      std::size_t pos = 0;
      while ((pos = stmt.find(op, pos)) != std::string::npos) {
        // The expression is the longest identifier-ish run before the dot.
        std::size_t s = pos;
        int bracket = 0;
        while (s > 0) {
          const char ch = stmt[s - 1];
          if (ch == ']' || ch == ')') ++bracket;
          if (ch == '[' || ch == '(') {
            if (bracket == 0) break;
            --bracket;
          }
          if (bracket == 0 && !is_identifier_char(ch) && ch != '.' &&
              ch != '_' && ch != '>' && ch != '-' && ch != ']' && ch != ')')
            break;
          --s;
        }
        const std::string expr = trim(stmt.substr(s, pos - s));
        pos += std::string(op).size();
        if (expr.empty()) continue;
        const bool is_lock = std::string(op) == ".lock()";
        // A named guard?
        Guard* guard = nullptr;
        for (Guard& g : guards)
          if (!g.name.empty() && g.name == expr) guard = &g;
        if (guard != nullptr) {
          if (is_lock && !guard->held) {
            for (const std::string& h : held_identities()) {
              if (h == guard->identity) continue;
              facts.edges.push_back({h, guard->identity,
                                     fn.file + ":" + std::to_string(ev.line),
                                     fn.qname,
                                     {}});
            }
            guard->held = true;
            if (guard->identity.rfind("<param>::", 0) != 0)
              facts.direct_acquires.insert(guard->identity);
          } else if (!is_lock) {
            guard->held = false;
          }
          continue;
        }
        if (is_lock) {
          acquire(expr, ev.line, {}, true);
        } else {
          const std::string id =
              fn.mutex_params.count(expr) != 0 ? "<param>::" + expr
                                               : resolver.resolve(expr);
          for (Guard& g : guards)
            if (g.identity == id) g.held = false;
        }
      }
    }

    // Same-TU calls while holding locks.
    {
      std::size_t i = 0;
      while (i < stmt.size()) {
        if (!is_identifier_char(stmt[i])) {
          ++i;
          continue;
        }
        std::size_t s = i;
        while (i < stmt.size() && is_identifier_char(stmt[i])) ++i;
        const std::string tok = stmt.substr(s, i - s);
        if (i < stmt.size() && stmt[i] == '(' &&
            (s == 0 || (stmt[s - 1] != '.' && stmt[s - 1] != '>' &&
                        stmt[s - 1] != ':'))) {
          if (tu_functions.count(tok) != 0 && tu_wrappers.count(tok) == 0 &&
              tok != fn.base) {
            const std::vector<std::string> held = held_identities();
            if (!held.empty()) facts.calls.push_back({tok, ev.line, held});
          }
        }
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Graph + cycles
// ---------------------------------------------------------------------------

std::vector<std::vector<LockEdge>> LockOrderGraph::cycles() const {
  // For each edge u->v, find the shortest edge path v ->* u; the edge plus
  // that path is a cycle. Deduplicate on the cycle's node set.
  std::vector<std::vector<LockEdge>> out;
  std::set<std::string> reported;
  for (const LockEdge& e : edges) {
    // BFS from e.to back to e.from.
    std::map<std::string, const LockEdge*> parent_edge;
    std::deque<std::string> queue = {e.to};
    std::set<std::string> seen = {e.to};
    bool found = e.to == e.from;
    while (!queue.empty() && !found) {
      const std::string node = queue.front();
      queue.pop_front();
      for (const LockEdge& next : edges) {
        if (next.from != node || seen.count(next.to) != 0) continue;
        parent_edge[next.to] = &next;
        if (next.to == e.from) {
          found = true;
          break;
        }
        seen.insert(next.to);
        queue.push_back(next.to);
      }
    }
    if (!found) continue;
    std::vector<LockEdge> cycle = {e};
    std::string node = e.from;
    std::vector<LockEdge> back;
    while (node != e.to) {
      const LockEdge* pe_edge = parent_edge[node];
      if (pe_edge == nullptr) break;
      back.push_back(*pe_edge);
      node = pe_edge->from;
    }
    std::reverse(back.begin(), back.end());
    cycle.insert(cycle.end(), back.begin(), back.end());
    std::set<std::string> nodes;
    for (const LockEdge& ce : cycle) nodes.insert(ce.from);
    std::string key;
    for (const std::string& n : nodes) key += n + ">";
    if (reported.insert(key).second) out.push_back(std::move(cycle));
  }
  return out;
}

LockOrderGraph build_lock_order_graph(const std::vector<SourceFile>& files) {
  GlobalModel model;
  // Walk headers first so class member maps exist for every TU, then all
  // files again for function bodies (headers may hold inline methods).
  for (const SourceFile& f : files) {
    TuModel tu;
    walk_file(f, model, tu);
    model.tus.push_back(std::move(tu));
  }

  LockOrderGraph graph;
  std::set<std::pair<std::string, std::string>> edge_set;
  const auto add_edge = [&](LockEdge e) {
    if (e.from.rfind("<param>::", 0) == 0 ||
        e.to.rfind("<param>::", 0) == 0)
      return;  // wrapper internals resolve at call sites
    if (edge_set.emplace(e.from, e.to).second)
      graph.edges.push_back(std::move(e));
  };

  for (const TuModel& tu : model.tus) {
    std::set<std::string> tu_functions;
    std::set<std::string> tu_wrappers;
    for (const FunctionInfo& fn : tu.functions) {
      if (fn.base.empty()) continue;
      tu_functions.insert(fn.base);
      if (!fn.mutex_params.empty()) tu_wrappers.insert(fn.base);
    }
    std::vector<FunctionFacts> facts(tu.functions.size());
    for (std::size_t i = 0; i < tu.functions.size(); ++i)
      simulate(tu.functions[i], model, tu_functions, tu_wrappers, facts[i]);

    // Fixed point: what can each function (by base name) end up acquiring,
    // following same-TU calls.
    std::map<std::string, std::set<std::string>> may_acquire;
    for (const FunctionFacts& ff : facts)
      if (!ff.fn->base.empty())
        may_acquire[ff.fn->base].insert(ff.direct_acquires.begin(),
                                        ff.direct_acquires.end());
    bool changed = true;
    std::size_t rounds = 0;
    while (changed && rounds++ < 32) {
      changed = false;
      for (const FunctionFacts& ff : facts) {
        if (ff.fn->base.empty()) continue;
        std::set<std::string>& mine = may_acquire[ff.fn->base];
        for (const CallSite& call : ff.calls) {
          const auto it = may_acquire.find(call.callee);
          if (it == may_acquire.end()) continue;
          for (const std::string& id : it->second)
            if (mine.insert(id).second) changed = true;
        }
      }
    }

    for (const FunctionFacts& ff : facts) {
      for (const LockEdge& e : ff.edges) add_edge(e);
      for (const CallSite& call : ff.calls) {
        const auto it = may_acquire.find(call.callee);
        if (it == may_acquire.end()) continue;
        for (const std::string& h : call.held) {
          for (const std::string& a : it->second) {
            if (h == a) continue;
            add_edge({h, a,
                      ff.fn->file + ":" + std::to_string(call.line),
                      ff.fn->qname, call.callee});
          }
        }
      }
    }
  }
  return graph;
}

RuleInfo LockOrderPass::rule() const {
  return {"lock-order",
          "the global lock-order graph must be acyclic (cycle = potential "
          "deadlock)",
          Severity::kError};
}

void LockOrderPass::run(const PassContext& ctx,
                        std::vector<Finding>& out) const {
  std::vector<SourceFile> scoped;
  for (const SourceFile& f : *ctx.files)
    if (f.in_src) scoped.push_back(f);
  const LockOrderGraph graph = build_lock_order_graph(scoped);
  for (const std::vector<LockEdge>& cycle : graph.cycles()) {
    // A waiver on any participating acquisition line waives the cycle.
    bool waived = false;
    for (const LockEdge& e : cycle) {
      const std::size_t colon = e.where.rfind(':');
      if (colon == std::string::npos) continue;
      const std::string file = e.where.substr(0, colon);
      const std::size_t line =
          static_cast<std::size_t>(std::stoul(e.where.substr(colon + 1)));
      for (const SourceFile& f : scoped)
        if (f.rel == file && line > 0 && line_allows(f, line - 1,
                                                     "lock-order"))
          waived = true;
    }
    if (waived) continue;
    std::string witness;
    for (const LockEdge& e : cycle) {
      if (!witness.empty()) witness += ", then ";
      witness += e.from + " -> " + e.to + " (" + e.function;
      if (!e.via.empty()) witness += " via call to " + e.via;
      witness += " at " + e.where + ")";
    }
    const LockEdge& first = cycle.front();
    const std::size_t colon = first.where.rfind(':');
    Finding f;
    f.file = colon == std::string::npos ? first.where
                                        : first.where.substr(0, colon);
    f.line = colon == std::string::npos
                 ? 0
                 : static_cast<std::size_t>(
                       std::stoul(first.where.substr(colon + 1)));
    f.rule = rule().id;
    f.severity = rule().severity;
    f.message = "lock-order cycle (potential deadlock): " + witness;
    f.fix_hint = "acquire these mutexes in one global order, or collapse "
                 "them into a single std::scoped_lock";
    out.push_back(std::move(f));
  }
}

}  // namespace pe::lint
