#include "perfeng/lint/wait_loop.hpp"

#include <array>
#include <string>
#include <string_view>

#include "perfeng/lint/lexer.hpp"

namespace pe::lint {

namespace {

/// Anything in a loop body that either makes progress on an atomic or
/// pauses the burning core counts as pacing.
bool is_pacified(const std::string& body) {
  static constexpr std::array<std::string_view, 14> kPacify = {
      "yield",       ".wait(",       "wait_for",    "wait_until",
      "sleep_for",   "sleep_until",  "park",        "backoff",
      "compare_exchange", "fetch_add", "fetch_sub", ".store(",
      "lock(",       "unlock(",
  };
  for (const std::string_view t : kPacify)
    if (body.find(t) != std::string::npos) return true;
  return false;
}

/// Find the position of the ')' matching the '(' at `open` in the flat
/// text; npos if unbalanced.
std::size_t match_paren(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')' && --depth == 0) return i;
  }
  return std::string::npos;
}

/// Find the position of the '}' matching the '{' at `open`; npos if
/// unbalanced.
std::size_t match_brace(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '{') ++depth;
    if (text[i] == '}' && --depth == 0) return i;
  }
  return std::string::npos;
}

std::size_t line_of_offset(const std::string& text, std::size_t offset) {
  std::size_t line = 1;
  for (std::size_t i = 0; i < offset && i < text.size(); ++i)
    if (text[i] == '\n') ++line;
  return line;
}

}  // namespace

RuleInfo WaitLoopPass::rule() const {
  return {"wait-loop",
          "spin loops on atomics must pace themselves (yield/park/backoff "
          "or a futex wait)",
          Severity::kWarning};
}

void WaitLoopPass::run(const PassContext& ctx,
                       std::vector<Finding>& out) const {
  for (const SourceFile& f : *ctx.files) {
    if (!f.in_src) continue;
    // Flatten the cooked lines so loop headers and bodies spanning lines
    // are one searchable text; offsets map back to 1-based lines.
    std::string text;
    for (const std::string& line : f.code) {
      text += line;
      text += '\n';
    }

    std::size_t pos = 0;
    while (pos < text.size()) {
      // Candidate loop heads: while (...) and for (;;).
      const std::size_t w = text.find("while", pos);
      const std::size_t fo = text.find("for", pos);
      std::size_t head = std::string::npos;
      bool is_while = false;
      if (w != std::string::npos && (fo == std::string::npos || w < fo)) {
        head = w;
        is_while = true;
      } else if (fo != std::string::npos) {
        head = fo;
      }
      if (head == std::string::npos) break;
      pos = head + 3;
      // Token boundary (avoid e.g. "meanwhile" / "before").
      if (head > 0 && is_identifier_char(text[head - 1])) continue;
      const std::size_t kw_end = head + (is_while ? 5 : 3);
      if (kw_end < text.size() && is_identifier_char(text[kw_end])) continue;

      const std::size_t open = text.find('(', kw_end);
      if (open == std::string::npos) break;
      // Only immediate parens (skip whitespace) belong to this keyword.
      bool only_space = true;
      for (std::size_t i = kw_end; i < open; ++i)
        if (text[i] != ' ' && text[i] != '\n' && text[i] != '\t')
          only_space = false;
      if (!only_space) continue;
      const std::size_t close = match_paren(text, open);
      if (close == std::string::npos) continue;
      const std::string cond = text.substr(open + 1, close - open - 1);

      // do { ... } while (cond); — the trailing while has no body; its
      // enclosing do-body was already scanned. Detect via the ';' right
      // after the ')'.
      std::size_t after = close + 1;
      while (after < text.size() &&
             (text[after] == ' ' || text[after] == '\n' ||
              text[after] == '\t'))
        ++after;
      if (after < text.size() && text[after] == ';') {
        // while(cond); with an empty body IS a spin if the cond polls an
        // atomic with no pacing possible.
        if (is_while && cond.find(".load(") != std::string::npos &&
            !is_pacified(cond)) {
          const std::size_t line = line_of_offset(text, head);
          if (!line_allows(f, line - 1, "wait-loop"))
            out.push_back(
                {f.rel, line, rule().id, rule().severity,
                 "empty-body spin on an atomic load burns a core — pace "
                 "with yield/park/backoff or a futex-style .wait()",
                 "see the scheduler's spin->yield->park ladder "
                 "(docs/parallel.md)"});
        }
        continue;
      }

      // Body: either a braced block or a single statement up to ';'.
      std::string body;
      if (after < text.size() && text[after] == '{') {
        const std::size_t end = match_brace(text, after);
        if (end == std::string::npos) continue;
        body = text.substr(after + 1, end - after - 1);
      } else {
        const std::size_t end = text.find(';', after);
        if (end == std::string::npos) continue;
        body = text.substr(after, end - after);
      }

      const bool infinite =
          is_while
              ? (cond.find_first_not_of(" \n\t") == std::string::npos ||
                 cond == "true")
              : cond.find_first_not_of("; \n\t") == std::string::npos;
      bool spins = false;
      if (is_while && cond.find(".load(") != std::string::npos) {
        // Exit condition polls an atomic; the body must pace or progress.
        spins = !is_pacified(body);
      } else if (infinite && body.find(".load(") != std::string::npos) {
        // Infinite loop polling an atomic somewhere in the body.
        spins = !is_pacified(body);
      }
      if (!spins) continue;

      const std::size_t line = line_of_offset(text, head);
      if (line_allows(f, line - 1, "wait-loop")) continue;
      out.push_back(
          {f.rel, line, rule().id, rule().severity,
           "spin loop polls an atomic without yielding, parking, backing "
           "off, or making progress on it",
           "insert std::this_thread::yield() / a backoff ladder, or use "
           "std::atomic::wait()"});
    }
  }
}

}  // namespace pe::lint
