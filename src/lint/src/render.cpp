#include "perfeng/lint/render.hpp"

#include <cstdio>
#include <sstream>

namespace pe::lint {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string render_text(const std::vector<Finding>& findings,
                        std::size_t files_scanned) {
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << f.file << ':' << f.line << ": [" << f.rule << "] "
       << severity_name(f.severity) << ": " << f.message << '\n';
    if (!f.fix_hint.empty()) os << "    fix: " << f.fix_hint << '\n';
  }
  os << "perfeng-lint: " << findings.size() << " finding"
     << (findings.size() == 1 ? "" : "s") << " across " << files_scanned
     << " files\n";
  return os.str();
}

std::string render_jsonl(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << "{\"file\":\"" << json_escape(f.file) << "\",\"line\":" << f.line
       << ",\"rule\":\"" << json_escape(f.rule) << "\",\"severity\":\""
       << severity_name(f.severity) << "\",\"message\":\""
       << json_escape(f.message) << "\",\"fix_hint\":\""
       << json_escape(f.fix_hint) << "\"}\n";
  }
  return os.str();
}

namespace {

const char* sarif_level(Severity s) noexcept {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "warning";
}

}  // namespace

std::string render_sarif(const std::vector<Finding>& findings,
                         const std::vector<RuleInfo>& rules) {
  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": "
        "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
        "Schemata/sarif-schema-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"perfeng-lint\",\n"
     << "          \"informationUri\": "
        "\"https://example.invalid/perfeng/docs/lint.md\",\n"
     << "          \"rules\": [\n";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const RuleInfo& r = rules[i];
    os << "            {\"id\": \"" << json_escape(r.id)
       << "\", \"shortDescription\": {\"text\": \"" << json_escape(r.summary)
       << "\"}, \"defaultConfiguration\": {\"level\": \""
       << sarif_level(r.severity) << "\"}}"
       << (i + 1 < rules.size() ? "," : "") << '\n';
  }
  os << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    // ruleIndex into the driver rules array, if present.
    long rule_index = -1;
    for (std::size_t r = 0; r < rules.size(); ++r) {
      if (rules[r].id == f.rule) {
        rule_index = static_cast<long>(r);
        break;
      }
    }
    os << "        {\"ruleId\": \"" << json_escape(f.rule) << "\"";
    if (rule_index >= 0) os << ", \"ruleIndex\": " << rule_index;
    os << ", \"level\": \"" << sarif_level(f.severity)
       << "\", \"message\": {\"text\": \"" << json_escape(f.message);
    if (!f.fix_hint.empty()) os << " (fix: " << json_escape(f.fix_hint) << ")";
    os << "\"}, \"locations\": [{\"physicalLocation\": "
          "{\"artifactLocation\": {\"uri\": \""
       << json_escape(f.file)
       << "\"}, \"region\": {\"startLine\": " << (f.line == 0 ? 1 : f.line)
       << "}}}]}" << (i + 1 < findings.size() ? "," : "") << '\n';
  }
  os << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

}  // namespace pe::lint
