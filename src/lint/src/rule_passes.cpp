#include "perfeng/lint/rule_passes.hpp"

#include <algorithm>
#include <string_view>

#include "perfeng/lint/layering.hpp"
#include "perfeng/lint/lexer.hpp"
#include "perfeng/lint/lock_order.hpp"
#include "perfeng/lint/wait_loop.hpp"

namespace pe::lint {

namespace {

Finding make_finding(const SourceFile& f, std::size_t line,
                     const RuleInfo& rule, std::string message,
                     std::string fix_hint = {}) {
  Finding out;
  out.file = f.rel;
  out.line = line;
  out.rule = rule.id;
  out.severity = rule.severity;
  out.message = std::move(message);
  out.fix_hint = std::move(fix_hint);
  return out;
}

// --- pragma-once ------------------------------------------------------------

class PragmaOncePass final : public Pass {
 public:
  RuleInfo rule() const override {
    return {"pragma-once", "src headers start with #pragma once",
            Severity::kError};
  }
  void run(const PassContext& ctx, std::vector<Finding>& out) const override {
    for (const SourceFile& f : *ctx.files) {
      if (!f.is_header || !f.in_src) continue;
      bool decided = false;
      for (std::size_t i = 0; i < f.code.size() && !decided; ++i) {
        std::string_view line(f.code[i]);
        const std::size_t first = line.find_first_not_of(" \t");
        if (first == std::string_view::npos) continue;  // blank/comment
        decided = true;
        if (line.substr(first).rfind("#pragma once", 0) != 0)
          out.push_back(make_finding(
              f, i + 1, rule(), "header must start with #pragma once",
              "put #pragma once before any code"));
      }
      if (!decided)
        out.push_back(make_finding(f, 0, rule(),
                                   "header must contain #pragma once"));
    }
  }
};

// --- include-style ----------------------------------------------------------

class IncludeStylePass final : public Pass {
 public:
  RuleInfo rule() const override {
    return {"include-style",
            "quoted includes name \"perfeng/...\" paths only",
            Severity::kWarning};
  }
  void run(const PassContext& ctx, std::vector<Finding>& out) const override {
    for (const SourceFile& f : *ctx.files) {
      for (const IncludeDirective& inc : f.includes) {
        if (inc.angled) continue;
        if (inc.path.rfind("perfeng/", 0) == 0) continue;
        if (line_allows(f, inc.line - 1, "include-style")) continue;
        out.push_back(make_finding(
            f, inc.line, rule(),
            "quoted include \"" + inc.path +
                "\" — quoted includes must name \"perfeng/...\" paths "
                "(angle brackets for system headers)"));
      }
    }
  }
};

// --- namespace-pe -----------------------------------------------------------

class NamespacePePass final : public Pass {
 public:
  RuleInfo rule() const override {
    return {"namespace-pe", "public headers declare everything inside pe::",
            Severity::kWarning};
  }
  void run(const PassContext& ctx, std::vector<Finding>& out) const override {
    for (const SourceFile& f : *ctx.files) {
      if (!f.is_public_header) continue;
      if (file_allows(f, "namespace-pe")) continue;
      const bool has = std::any_of(
          f.code.begin(), f.code.end(), [](const std::string& line) {
            return line.find("namespace pe") != std::string::npos;
          });
      if (!has)
        out.push_back(make_finding(
            f, 0, rule(), "public header declares nothing in namespace pe"));
    }
  }
};

// --- no-using-namespace -----------------------------------------------------

class UsingNamespacePass final : public Pass {
 public:
  RuleInfo rule() const override {
    return {"no-using-namespace",
            "no `using namespace std`; none at all in headers",
            Severity::kError};
  }
  void run(const PassContext& ctx, std::vector<Finding>& out) const override {
    for (const SourceFile& f : *ctx.files) {
      for (std::size_t i = 0; i < f.code.size(); ++i) {
        const std::string& line = f.code[i];
        const std::size_t pos = line.find("using namespace");
        if (pos == std::string::npos) continue;
        if (line_allows(f, i, "no-using-namespace")) continue;
        const bool is_std =
            line.find("using namespace std", pos) != std::string::npos;
        if (is_std)
          out.push_back(make_finding(f, i + 1, rule(),
                                     "`using namespace std` is banned"));
        else if (f.is_header)
          out.push_back(make_finding(
              f, i + 1, rule(),
              "headers must not have using-namespace directives"));
      }
    }
  }
};

// --- no-std-rand ------------------------------------------------------------

class StdRandPass final : public Pass {
 public:
  RuleInfo rule() const override {
    return {"no-std-rand",
            "no std::rand/srand/random_device — use pe::Rng",
            Severity::kError};
  }
  void run(const PassContext& ctx, std::vector<Finding>& out) const override {
    for (const SourceFile& f : *ctx.files) {
      for (std::size_t i = 0; i < f.code.size(); ++i) {
        const std::string& line = f.code[i];
        if (line_allows(f, i, "no-std-rand")) continue;
        if (contains_token(line, "std::rand") ||
            contains_token(line, "srand") ||
            contains_token(line, "random_device"))
          out.push_back(make_finding(
              f, i + 1, rule(),
              "use pe::Rng (seeded, reproducible) instead of C/OS "
              "randomness"));
      }
    }
  }
};

// --- no-raw-new-array -------------------------------------------------------

class RawNewArrayPass final : public Pass {
 public:
  RuleInfo rule() const override {
    return {"no-raw-new-array",
            "no raw new[] in src/, bench/, or tools/ — AlignedBuffer or "
            "std::vector own memory",
            Severity::kError};
  }
  void run(const PassContext& ctx, std::vector<Finding>& out) const override {
    for (const SourceFile& f : *ctx.files) {
      if (!f.in_src && !f.in_bench && !f.in_tools) continue;
      for (std::size_t i = 0; i < f.code.size(); ++i) {
        const std::string& line = f.code[i];
        if (line_allows(f, i, "no-raw-new-array")) continue;
        std::size_t pos = 0;
        while ((pos = line.find("new ", pos)) != std::string::npos) {
          if (pos > 0 && is_identifier_char(line[pos - 1])) {  // e.g. renew
            pos += 4;
            continue;
          }
          std::size_t j = pos + 4;
          while (j < line.size() &&
                 (is_identifier_char(line[j]) || line[j] == ':' ||
                  line[j] == '<' || line[j] == '>' || line[j] == ' '))
            ++j;
          if (j < line.size() && line[j] == '[')
            out.push_back(make_finding(
                f, i + 1, rule(),
                "raw new[] — use AlignedBuffer or std::vector",
                "raw arrays leak on the exception paths the resilience "
                "layer exercises"));
          pos = j;
        }
      }
    }
  }
};

// --- no-volatile ------------------------------------------------------------

class VolatilePass final : public Pass {
 public:
  RuleInfo rule() const override {
    return {"no-volatile",
            "volatile is not a synchronization primitive — use std::atomic",
            Severity::kError};
  }
  void run(const PassContext& ctx, std::vector<Finding>& out) const override {
    for (const SourceFile& f : *ctx.files) {
      if (!f.in_src && !f.in_bench && !f.in_tools) continue;
      for (std::size_t i = 0; i < f.code.size(); ++i) {
        const std::string& line = f.code[i];
        if (!contains_token(line, "volatile")) continue;
        if (line.find("asm volatile") != std::string::npos) continue;
        if (line_allows(f, i, "no-volatile")) continue;
        out.push_back(make_finding(
            f, i + 1, rule(),
            "volatile is not a synchronization primitive — use std::atomic",
            "annotate compiler-barrier sinks with perfeng-lint: "
            "allow(no-volatile) + rationale"));
      }
    }
  }
};

// --- test-determinism -------------------------------------------------------

class TestDeterminismPass final : public Pass {
 public:
  RuleInfo rule() const override {
    return {"test-determinism",
            "tests never read wall-clock dates or OS entropy",
            Severity::kError};
  }
  void run(const PassContext& ctx, std::vector<Finding>& out) const override {
    for (const SourceFile& f : *ctx.files) {
      if (!f.in_tests) continue;
      for (std::size_t i = 0; i < f.code.size(); ++i) {
        const std::string& line = f.code[i];
        if (line_allows(f, i, "test-determinism")) continue;
        if (contains_token(line, "system_clock"))
          out.push_back(make_finding(
              f, i + 1, rule(),
              "tests must not read the wall clock (use steady_clock for "
              "durations, fixed seeds for data)"));
        if (line.find("time(nullptr)") != std::string::npos ||
            line.find("time(NULL)") != std::string::npos)
          out.push_back(make_finding(
              f, i + 1, rule(),
              "seeding from time() makes the test a different test every "
              "run"));
      }
    }
  }
};

// --- self-contained-includes ------------------------------------------------

struct StdTokenRule {
  std::string_view token;
  std::vector<std::string_view> providers;  // any one satisfies the rule
};

const std::vector<StdTokenRule>& std_token_rules() {
  static const std::vector<StdTokenRule> rules = {
      {"std::vector", {"vector"}},
      {"std::string", {"string"}},
      {"std::string_view", {"string_view"}},
      {"std::size_t", {"cstddef", "cstdio", "cstdlib", "cstring"}},
      {"std::ptrdiff_t", {"cstddef"}},
      {"std::uint8_t", {"cstdint"}},
      {"std::uint16_t", {"cstdint"}},
      {"std::uint32_t", {"cstdint"}},
      {"std::uint64_t", {"cstdint"}},
      {"std::int32_t", {"cstdint"}},
      {"std::int64_t", {"cstdint"}},
      {"std::atomic", {"atomic"}},
      {"std::mutex", {"mutex"}},
      {"std::lock_guard", {"mutex"}},
      {"std::unique_lock", {"mutex"}},
      {"std::scoped_lock", {"mutex"}},
      {"std::condition_variable", {"condition_variable"}},
      {"std::thread", {"thread"}},
      {"std::function", {"functional"}},
      {"std::unique_ptr", {"memory"}},
      {"std::shared_ptr", {"memory"}},
      {"std::make_unique", {"memory"}},
      {"std::make_shared", {"memory"}},
      {"std::optional", {"optional"}},
      {"std::variant", {"variant"}},
      {"std::map", {"map"}},
      {"std::unordered_map", {"unordered_map"}},
      {"std::set", {"set"}},
      {"std::deque", {"deque"}},
      {"std::array", {"array"}},
      {"std::pair", {"utility"}},
      {"std::future", {"future"}},
      {"std::promise", {"future"}},
      {"std::packaged_task", {"future"}},
      {"std::chrono", {"chrono"}},
      {"std::numeric_limits", {"limits"}},
      {"std::exception_ptr", {"exception"}},
      {"std::current_exception", {"exception"}},
      {"std::rethrow_exception", {"exception"}},
      {"std::runtime_error", {"stdexcept"}},
      {"std::source_location", {"source_location"}},
      {"std::ostream", {"ostream", "iostream", "sstream", "iosfwd"}},
      {"std::ostringstream", {"sstream"}},
      {"std::filesystem", {"filesystem"}},
  };
  return rules;
}

class SelfContainedPass final : public Pass {
 public:
  RuleInfo rule() const override {
    return {"self-contained-includes",
            "headers directly include what they use (curated std tokens)",
            Severity::kWarning};
  }
  void run(const PassContext& ctx, std::vector<Finding>& out) const override {
    for (const SourceFile& f : *ctx.files) {
      if (!f.is_header || !f.in_src) continue;
      std::vector<std::string> included;
      for (const IncludeDirective& inc : f.includes)
        if (inc.angled) included.push_back(inc.path);
      for (const StdTokenRule& token_rule : std_token_rules()) {
        const bool satisfied = std::any_of(
            token_rule.providers.begin(), token_rule.providers.end(),
            [&](std::string_view p) {
              return std::find(included.begin(), included.end(), p) !=
                     included.end();
            });
        if (satisfied) continue;
        for (std::size_t i = 0; i < f.code.size(); ++i) {
          if (!contains_token(f.code[i], std::string(token_rule.token)))
            continue;
          if (line_allows(f, i, "self-contained-includes")) continue;
          out.push_back(make_finding(
              f, i + 1, rule(),
              "uses " + std::string(token_rule.token) +
                  " but does not include <" +
                  std::string(token_rule.providers.front()) + "> directly"));
          break;  // one report per (file, token) is enough
        }
      }
    }
  }
};

// --- trace-hook-guard -------------------------------------------------------

class TraceHookGuardPass final : public Pass {
 public:
  RuleInfo rule() const override {
    return {"trace-hook-guard",
            "trace emission goes through PE_TRACE_EMIT* macros",
            Severity::kError};
  }
  void run(const PassContext& ctx, std::vector<Finding>& out) const override {
    for (const SourceFile& f : *ctx.files) {
      if (!f.in_src) continue;
      // The guard macros themselves are the one sanctioned spelling.
      if (f.rel == "src/common/include/perfeng/common/trace_hook.hpp")
        continue;
      for (std::size_t i = 0; i < f.code.size(); ++i) {
        const std::string& line = f.code[i];
        const std::size_t pos = line.find("on_event(");
        if (pos == std::string::npos || pos == 0) continue;
        const char before = line[pos - 1];
        if (before != '.' && before != '>') continue;  // declarations OK
        if (line_allows(f, i, "trace-hook-guard")) continue;
        out.push_back(make_finding(
            f, i + 1, rule(),
            "direct on_event() call — emit through PE_TRACE_EMIT / "
            "PE_TRACE_EMIT_SITE / PE_TRACE_EMIT_CACHED so the "
            "disabled-hook path stays one guarded branch"));
      }
    }
  }
};

// --- simd-isolation ---------------------------------------------------------

class SimdIsolationPass final : public Pass {
 public:
  RuleInfo rule() const override {
    return {"simd-isolation",
            "raw intrinsics live only in pe::simd backend headers",
            Severity::kError};
  }
  void run(const PassContext& ctx, std::vector<Finding>& out) const override {
    static const std::vector<std::string_view> kIntrinsicHeaders = {
        "immintrin.h", "x86intrin.h", "xmmintrin.h", "emmintrin.h",
        "smmintrin.h", "tmmintrin.h", "avxintrin.h", "arm_neon.h"};
    static const std::vector<std::string_view> kIntrinsicPrefixes = {
        "_mm", "__m128", "__m256", "__m512"};
    for (const SourceFile& f : *ctx.files) {
      if (f.rel.rfind("src/simd/include/perfeng/simd/backend_", 0) == 0)
        continue;
      if (file_allows(f, "simd-isolation")) continue;
      for (const IncludeDirective& inc : f.includes) {
        if (!inc.angled) continue;
        if (line_allows(f, inc.line - 1, "simd-isolation")) continue;
        for (std::string_view header : kIntrinsicHeaders) {
          if (inc.path == header) {
            out.push_back(make_finding(
                f, inc.line, rule(),
                "intrinsic header outside the pe::simd backend layer — "
                "include \"perfeng/simd/vec.hpp\" and use Vec<T, N>"));
            break;
          }
        }
      }
      for (std::size_t i = 0; i < f.code.size(); ++i) {
        const std::string& line = f.code[i];
        if (line.find("#include") != std::string::npos) continue;
        if (line_allows(f, i, "simd-isolation")) continue;
        for (std::string_view prefix : kIntrinsicPrefixes) {
          std::size_t pos = 0;
          bool flagged = false;
          while ((pos = line.find(prefix, pos)) != std::string::npos) {
            if (pos == 0 || !is_identifier_char(line[pos - 1])) {
              out.push_back(make_finding(
                  f, i + 1, rule(),
                  "raw SIMD intrinsic outside src/simd backend headers — "
                  "extend Vec<T, N> instead"));
              flagged = true;
              break;
            }
            pos += prefix.size();
          }
          if (flagged) break;
        }
      }
    }
  }
};

// --- model-from-machine -----------------------------------------------------

class ModelFromMachinePass final : public Pass {
 public:
  RuleInfo rule() const override {
    return {"model-from-machine",
            "public model headers expose a from_machine() factory",
            Severity::kWarning};
  }
  void run(const PassContext& ctx, std::vector<Finding>& out) const override {
    for (const SourceFile& f : *ctx.files) {
      if (!f.is_public_header) continue;
      if (f.rel.rfind("src/models/", 0) != 0) continue;
      if (file_allows(f, "model-from-machine")) continue;
      const bool has = std::any_of(
          f.code.begin(), f.code.end(), [](const std::string& line) {
            return line.find("from_machine(") != std::string::npos;
          });
      if (!has)
        out.push_back(make_finding(
            f, 0, rule(),
            "public model header has no from_machine() factory — every "
            "model must be constructible from a machine description so the "
            "composition layer can use it as a leaf (docs/models.md)",
            "if the model is deliberately machine-independent, add "
            "`perfeng-lint: allow-file(model-from-machine)` with a "
            "rationale"));
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Pass>> ported_rule_passes() {
  std::vector<std::unique_ptr<Pass>> passes;
  passes.push_back(std::make_unique<PragmaOncePass>());
  passes.push_back(std::make_unique<IncludeStylePass>());
  passes.push_back(std::make_unique<NamespacePePass>());
  passes.push_back(std::make_unique<UsingNamespacePass>());
  passes.push_back(std::make_unique<StdRandPass>());
  passes.push_back(std::make_unique<RawNewArrayPass>());
  passes.push_back(std::make_unique<VolatilePass>());
  passes.push_back(std::make_unique<TestDeterminismPass>());
  passes.push_back(std::make_unique<SelfContainedPass>());
  passes.push_back(std::make_unique<TraceHookGuardPass>());
  passes.push_back(std::make_unique<SimdIsolationPass>());
  passes.push_back(std::make_unique<ModelFromMachinePass>());
  return passes;
}

std::vector<std::unique_ptr<Pass>> default_passes() {
  std::vector<std::unique_ptr<Pass>> passes = ported_rule_passes();
  passes.push_back(std::make_unique<IncludeLayeringPass>());
  passes.push_back(std::make_unique<LockOrderPass>());
  passes.push_back(std::make_unique<WaitLoopPass>());
  return passes;
}

}  // namespace pe::lint
