#include "perfeng/lint/lexer.hpp"

#include <cctype>
#include <cstddef>

namespace pe::lint {

namespace {

/// Lexing state carried across physical lines.
enum class State {
  kNormal,
  kBlockComment,
  kLineComment,  ///< only survives a line via a trailing backslash splice
  kString,       ///< only survives a line via a trailing backslash splice
  kChar,
  kRawString,
};

bool ends_with_splice(const std::string& line) {
  // A backslash as the last character splices the next physical line
  // onto this one — inside a // comment or a string literal, the
  // comment/literal continues.
  std::size_t n = line.size();
  return n > 0 && line[n - 1] == '\\';
}

/// Is position `i` in `line` the start of a raw-string literal opener
/// (the `"` of `R"`, with optional u8/u/U/L encoding prefix before R)?
/// `i` must point at the quote.
bool is_raw_string_quote(const std::string& line, std::size_t i) {
  if (i == 0 || line[i - 1] != 'R') return false;
  // The R must itself start the identifier (or follow an encoding
  // prefix): uR"..., u8R"..., LR"... are raw, fooR"..." is not.
  std::size_t p = i - 1;
  if (p == 0) return true;
  const char before = line[p - 1];
  if (!is_identifier_char(before)) return true;
  // Walk back over a possible encoding prefix.
  std::size_t s = p;
  while (s > 0 && is_identifier_char(line[s - 1])) --s;
  const std::string prefix = line.substr(s, p - s);
  return prefix == "u8" || prefix == "u" || prefix == "U" || prefix == "L";
}

}  // namespace

bool is_identifier_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool contains_token(const std::string& line,
                    const std::string& token) noexcept {
  std::size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const std::size_t end = pos + token.size();
    const bool before = pos == 0 || !is_identifier_char(line[pos - 1]);
    const bool after = end >= line.size() || !is_identifier_char(line[end]);
    if (before && after) return true;
    pos = end;
  }
  return false;
}

std::vector<std::string> cook_lines(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  State state = State::kNormal;
  std::string raw_delim;  // the )delim" closer we are looking for

  for (const std::string& line : raw) {
    std::string cooked(line.size(), ' ');
    std::size_t i = 0;

    // States that survived the previous line.
    if (state == State::kLineComment) {
      // Spliced // comment: this whole line is comment; it continues
      // further only if it splices again.
      if (!ends_with_splice(line)) state = State::kNormal;
      out.push_back(std::move(cooked));
      continue;
    }

    while (i < line.size()) {
      const char c = line[i];
      switch (state) {
        case State::kBlockComment:
          if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
            state = State::kNormal;
            ++i;
          }
          ++i;
          break;

        case State::kRawString: {
          // Look for )delim" from here.
          const std::string closer = ")" + raw_delim + "\"";
          const std::size_t close = line.find(closer, i);
          if (close == std::string::npos) {
            i = line.size();  // whole remainder is raw-string body
          } else {
            i = close + closer.size();
            cooked[i - 1] = '"';  // keep the closing delimiter visible
            state = State::kNormal;
          }
          break;
        }

        case State::kString:
          if (c == '\\' && i + 1 < line.size()) {
            i += 2;
          } else if (c == '"') {
            cooked[i] = '"';
            state = State::kNormal;
            ++i;
          } else {
            ++i;
          }
          break;

        case State::kChar:
          if (c == '\\' && i + 1 < line.size()) {
            i += 2;
          } else if (c == '\'') {
            cooked[i] = '\'';
            state = State::kNormal;
            ++i;
          } else {
            ++i;
          }
          break;

        case State::kLineComment:
          // handled above; unreachable mid-line
          ++i;
          break;

        case State::kNormal:
          if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
            // Rest of line is comment; continues onto the next physical
            // line if this one ends in a splice.
            state = ends_with_splice(line) ? State::kLineComment
                                          : State::kNormal;
            i = line.size();
            break;
          }
          if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
            state = State::kBlockComment;
            i += 2;
            break;
          }
          if (c == '"') {
            cooked[i] = '"';
            if (is_raw_string_quote(line, i)) {
              // Parse the delimiter up to '('.
              std::size_t p = i + 1;
              std::string delim;
              while (p < line.size() && line[p] != '(' &&
                     delim.size() <= 16) {
                delim.push_back(line[p]);
                ++p;
              }
              if (p < line.size() && line[p] == '(') {
                raw_delim = delim;
                state = State::kRawString;
                i = p + 1;
              } else {
                // Malformed opener; treat as ordinary string.
                state = State::kString;
                ++i;
              }
            } else {
              state = State::kString;
              ++i;
            }
            break;
          }
          if (c == '\'') {
            // Digit separator (1'000'000), not a char literal: a quote
            // sandwiched between identifier characters where the left
            // neighbor is alphanumeric.
            const bool digit_sep =
                i > 0 &&
                std::isalnum(static_cast<unsigned char>(line[i - 1])) != 0 &&
                i + 1 < line.size() &&
                std::isalnum(static_cast<unsigned char>(line[i + 1])) != 0;
            if (digit_sep) {
              cooked[i] = '\'';
              ++i;
            } else {
              cooked[i] = '\'';
              state = State::kChar;
              ++i;
            }
            break;
          }
          cooked[i] = c;
          ++i;
          break;
      }
    }

    // A string spliced across lines stays a string; anything else
    // (except block comments and raw strings, which legitimately span
    // lines) resets at end of line.
    if (state == State::kString || state == State::kChar) {
      if (!ends_with_splice(line)) state = State::kNormal;
    }
    out.push_back(std::move(cooked));
  }
  return out;
}

std::vector<Directive> preprocessor_lines(
    const std::vector<std::string>& raw) {
  const std::vector<std::string> code = cook_lines(raw);
  std::vector<Directive> out;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const std::string& cooked = code[i];
    const std::size_t hash = cooked.find_first_not_of(" \t");
    if (hash == std::string::npos || cooked[hash] != '#') continue;
    // A '#' visible in cooked text is a real directive (comment-interior
    // hashes were blanked). Join spliced continuations from the raw
    // lines, but substitute cooked text for comment safety — except that
    // include paths live in string literals, so keep the raw text and
    // strip a trailing // comment manually.
    Directive d;
    d.line = i + 1;
    std::string text;
    std::size_t j = i;
    for (;;) {
      std::string part = raw[j];
      // Strip trailing line comment using the cooked view (same length).
      const std::string& cpart = code[j];
      const std::size_t slash = cpart.find("//");
      // cooked blanks comments entirely, so "//" never survives in it;
      // find the first position where cooked went blank but raw has '/'.
      (void)slash;
      std::size_t cut = part.size();
      for (std::size_t k = 0; k + 1 < part.size(); ++k) {
        if (part[k] == '/' && (part[k + 1] == '/' || part[k + 1] == '*') &&
            (k >= cpart.size() || cpart[k] == ' ')) {
          cut = k;
          break;
        }
      }
      part = part.substr(0, cut);
      const bool spliced = ends_with_splice(part);
      if (spliced) part.pop_back();
      text += part;
      if (!spliced || j + 1 >= raw.size()) break;
      ++j;
    }
    d.text = text;
    // kind = first word after '#'
    std::size_t p = text.find('#');
    if (p == std::string::npos) continue;
    ++p;
    while (p < text.size() && (text[p] == ' ' || text[p] == '\t')) ++p;
    std::size_t e = p;
    while (e < text.size() &&
           std::isalpha(static_cast<unsigned char>(text[e])) != 0)
      ++e;
    d.kind = text.substr(p, e - p);
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<IncludeDirective> include_directives(
    const std::vector<std::string>& raw) {
  std::vector<IncludeDirective> out;
  for (const Directive& d : preprocessor_lines(raw)) {
    if (d.kind != "include") continue;
    IncludeDirective inc;
    inc.line = d.line;
    const std::size_t q = d.text.find('"');
    const std::size_t a = d.text.find('<');
    if (q != std::string::npos && (a == std::string::npos || q < a)) {
      const std::size_t end = d.text.find('"', q + 1);
      if (end == std::string::npos) continue;
      inc.path = d.text.substr(q + 1, end - q - 1);
      inc.angled = false;
    } else if (a != std::string::npos) {
      const std::size_t end = d.text.find('>', a + 1);
      if (end == std::string::npos) continue;
      inc.path = d.text.substr(a + 1, end - a - 1);
      inc.angled = true;
    } else {
      continue;  // computed include (macro) — out of model
    }
    out.push_back(std::move(inc));
  }
  return out;
}

}  // namespace pe::lint
