#include "perfeng/lint/finding.hpp"

#include <algorithm>

namespace pe::lint {

const char* severity_name(Severity s) noexcept {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "warning";
}

std::string finding_key(const Finding& f) {
  // \x1f (unit separator) cannot appear in rule ids, paths, or messages.
  std::string key;
  key.reserve(f.rule.size() + f.file.size() + f.message.size() + 2);
  key += f.rule;
  key += '\x1f';
  key += f.file;
  key += '\x1f';
  key += f.message;
  return key;
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
}

}  // namespace pe::lint
