#include "perfeng/lint/layering.hpp"

#include <string>

namespace pe::lint {

RuleInfo IncludeLayeringPass::rule() const {
  return {"include-layering",
          "every perfeng include edge must be realizable in the declared "
          "library DAG",
          Severity::kError};
}

void IncludeLayeringPass::run(const PassContext& ctx,
                              std::vector<Finding>& out) const {
  const RepoModel& model = *ctx.model;
  if (model.libraries().empty()) return;  // no CMake DAG to check against

  // The declared DAG itself must be acyclic — a cycle makes "realizable"
  // meaningless and the link order unsatisfiable.
  for (const std::vector<std::string>& cycle : model.declared_cycles()) {
    std::string path;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      if (i > 0) path += " -> ";
      path += cycle[i];
    }
    const Library* head = model.by_name(cycle.front());
    Finding f;
    f.file = head != nullptr ? head->cmake_rel : "src/CMakeLists.txt";
    f.line = 0;
    f.rule = rule().id;
    f.severity = rule().severity;
    f.message = "declared library dependency cycle: " + path;
    f.fix_hint = "break the cycle by extracting the shared piece into a "
                 "lower layer";
    out.push_back(std::move(f));
  }

  for (const SourceFile& f : *ctx.files) {
    if (!f.in_src || f.library.empty()) continue;
    if (model.by_name(f.library) == nullptr)
      continue;  // directory without a library target (nothing declared)
    for (const IncludeDirective& inc : f.includes) {
      if (inc.angled) continue;
      if (inc.path.rfind("perfeng/", 0) != 0) continue;
      if (line_allows(f, inc.line - 1, "include-layering")) continue;
      const std::string owner = model.owner_of_header(inc.path);
      if (owner.empty()) {
        out.push_back({f.rel, inc.line, rule().id, rule().severity,
                       "include \"" + inc.path +
                           "\" is owned by no declared library",
                       "move the header under some src/<lib>/include/ or "
                       "fix the path"});
        continue;
      }
      if (owner == f.library) continue;
      if (model.depends_on(f.library, owner)) continue;
      out.push_back(
          {f.rel, inc.line, rule().id, rule().severity,
           "library '" + f.library + "' includes \"" + inc.path +
               "\" from library '" + owner +
               "' but declares no dependency path to it",
           "add " + (model.by_name(owner) != nullptr
                         ? model.by_name(owner)->target
                         : owner) +
               " to target_link_libraries in " + f.library +
               "/CMakeLists.txt, or break the layering violation"});
    }
  }
}

}  // namespace pe::lint
