#include "perfeng/lint/baseline.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "perfeng/common/error.hpp"
#include "perfeng/lint/render.hpp"

namespace pe::lint {

namespace {

/// Extract the string value of `"key": "..."` from a single-line JSON
/// object. Returns false if the key is absent. Handles the escapes
/// json_escape emits.
bool extract_string(const std::string& line, const std::string& key,
                    std::string& out) {
  const std::string needle = "\"" + key + "\":";
  std::size_t p = line.find(needle);
  if (p == std::string::npos) return false;
  p += needle.size();
  while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) ++p;
  if (p >= line.size() || line[p] != '"') return false;
  ++p;
  out.clear();
  while (p < line.size()) {
    const char c = line[p];
    if (c == '\\' && p + 1 < line.size()) {
      const char e = line[p + 1];
      switch (e) {
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          // Only \u00XX escapes are emitted; decode the low byte.
          if (p + 5 < line.size()) {
            const std::string hex = line.substr(p + 2, 4);
            out.push_back(static_cast<char>(
                std::strtol(hex.c_str(), nullptr, 16)));
            p += 4;
          }
          break;
        }
        default:
          out.push_back(e);
      }
      p += 2;
      continue;
    }
    if (c == '"') return true;
    out.push_back(c);
    ++p;
  }
  return false;
}

bool extract_number(const std::string& line, const std::string& key,
                    std::size_t& out) {
  const std::string needle = "\"" + key + "\":";
  std::size_t p = line.find(needle);
  if (p == std::string::npos) return false;
  p += needle.size();
  while (p < line.size() && (line[p] == ' ' || line[p] == '\t')) ++p;
  std::size_t e = p;
  while (e < line.size() && std::isdigit(static_cast<unsigned char>(line[e])))
    ++e;
  if (e == p) return false;
  out = static_cast<std::size_t>(std::stoull(line.substr(p, e - p)));
  return true;
}

}  // namespace

Baseline Baseline::load(const std::filesystem::path& path) {
  Baseline b;
  std::ifstream in(path);
  if (!in) return b;  // missing baseline: everything is new
  std::size_t lineno = 0;
  for (std::string line; std::getline(in, line);) {
    ++lineno;
    if (line.find("\"rule\"") == std::string::npos) continue;
    std::string rule;
    std::string file;
    std::string message;
    std::size_t count = 1;
    if (!extract_string(line, "rule", rule) ||
        !extract_string(line, "file", file) ||
        !extract_string(line, "message", message)) {
      throw pe::Error("malformed baseline entry at " + path.string() + ":" +
                      std::to_string(lineno));
    }
    extract_number(line, "count", count);
    Finding f;
    f.rule = rule;
    f.file = file;
    f.message = message;
    b.counts_[finding_key(f)] += count;
  }
  return b;
}

std::string Baseline::serialize(const std::vector<Finding>& findings) {
  // Aggregate counts per identity, keep one representative finding for
  // the printable fields, emit sorted for diff stability.
  std::map<std::string, std::pair<Finding, std::size_t>> agg;
  for (const Finding& f : findings) {
    auto [it, fresh] = agg.try_emplace(finding_key(f), f, 0u);
    ++it->second.second;
    (void)fresh;
  }
  std::ostringstream os;
  os << "{\n"
     << "  \"tool\": \"perfeng-lint\",\n"
     << "  \"note\": \"accepted findings; CI fails only on findings not "
        "listed here. Regenerate with perfeng_lint <root> "
        "--write-baseline <file>\",\n"
     << "  \"entries\": [\n";
  std::size_t i = 0;
  for (const auto& [key, rep] : agg) {
    (void)key;
    const Finding& f = rep.first;
    os << "    {\"rule\":\"" << json_escape(f.rule) << "\",\"file\":\""
       << json_escape(f.file) << "\",\"message\":\"" << json_escape(f.message)
       << "\",\"count\":" << rep.second << "}"
       << (++i < agg.size() ? "," : "") << '\n';
  }
  os << "  ]\n"
     << "}\n";
  return os.str();
}

std::vector<Finding> Baseline::new_findings(
    const std::vector<Finding>& findings) const {
  std::map<std::string, std::size_t> used;
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    const std::string key = finding_key(f);
    const auto it = counts_.find(key);
    const std::size_t budget = it == counts_.end() ? 0 : it->second;
    if (used[key] < budget) {
      ++used[key];
      continue;
    }
    out.push_back(f);
  }
  return out;
}

std::size_t Baseline::total_entries() const noexcept {
  std::size_t n = 0;
  for (const auto& [key, count] : counts_) {
    (void)key;
    n += count;
  }
  return n;
}

}  // namespace pe::lint
