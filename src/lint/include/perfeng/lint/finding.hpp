#pragma once

/// \file finding.hpp
/// The structured currency of pe::lint.
///
/// Every pass produces `Finding`s — never raw text — so one analysis run
/// can be rendered as a terminal listing, line-JSON for scripting, or
/// SARIF 2.1.0 for CI annotation (perfeng/lint/render.hpp), and diffed
/// against a checked-in baseline (perfeng/lint/baseline.hpp) so CI fails
/// only on *new* findings while a backlog burns down.

#include <cstddef>
#include <string>
#include <vector>

namespace pe::lint {

/// SARIF-aligned severity ladder. `kError` findings are contract breaks
/// (layering inversions, potential deadlocks); `kWarning` is the default
/// for style/hygiene rules; `kNote` is advisory.
enum class Severity { kNote, kWarning, kError };

[[nodiscard]] const char* severity_name(Severity s) noexcept;

/// One diagnostic from one pass.
struct Finding {
  std::string file;      ///< repo-relative path, forward slashes
  std::size_t line = 0;  ///< 1-based; 0 = whole file / whole repo
  std::string rule;      ///< stable rule id, e.g. "lock-order"
  Severity severity = Severity::kWarning;
  std::string message;   ///< what is wrong, with specifics
  std::string fix_hint;  ///< how to fix it (may be empty)
};

/// Stable identity used for baseline matching. Deliberately excludes the
/// line number: findings must survive unrelated edits shifting code up or
/// down, or the baseline would churn on every PR.
[[nodiscard]] std::string finding_key(const Finding& f);

/// Deterministic order: file, then line, then rule, then message.
void sort_findings(std::vector<Finding>& findings);

}  // namespace pe::lint
