#pragma once

/// \file pass.hpp
/// The pass framework: one rule = one pass = one `RuleInfo`.
///
/// A pass sees the whole program — every lexed file plus the declared
/// library DAG — and appends structured findings. File-local rules simply
/// loop over `ctx.files`; whole-program rules (layering, lock-order)
/// build global state first. `default_passes()` is the shipped catalog;
/// the CLI can filter it by rule id.

#include <memory>
#include <string>
#include <vector>

#include "perfeng/lint/finding.hpp"
#include "perfeng/lint/repo_model.hpp"
#include "perfeng/lint/source.hpp"

namespace pe::lint {

/// Static metadata of a rule, also rendered into the SARIF rules array.
struct RuleInfo {
  std::string id;       ///< stable rule id, e.g. "include-layering"
  std::string summary;  ///< one-line contract statement
  Severity severity = Severity::kWarning;
};

/// Everything a pass may look at.
struct PassContext {
  const RepoModel* model = nullptr;
  const std::vector<SourceFile>* files = nullptr;
};

class Pass {
 public:
  virtual ~Pass() = default;
  [[nodiscard]] virtual RuleInfo rule() const = 0;
  virtual void run(const PassContext& ctx,
                   std::vector<Finding>& out) const = 0;
};

/// The shipped pass catalog: the twelve ported source-contract rules plus
/// the three whole-program passes (include-layering, lock-order,
/// wait-loop).
[[nodiscard]] std::vector<std::unique_ptr<Pass>> default_passes();

}  // namespace pe::lint
