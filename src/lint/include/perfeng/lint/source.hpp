#pragma once

/// \file source.hpp
/// One lexed source file plus its place in the repo, and the waiver
/// grammar shared by every pass.
///
/// Waivers are explicit and greppable:
///   `perfeng-lint: allow(<rule>)`       exempts the line it appears on,
///                                       or the line directly below (so
///                                       the rationale comments the code)
///   `perfeng-lint: allow-file(<rule>)`  exempts the whole file
/// Every waiver should carry a written rationale; reviewers treat a bare
/// waiver as a finding of its own.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "perfeng/lint/lexer.hpp"

namespace pe::lint {

/// A lexed file with repo-relative identity and layout flags.
struct SourceFile {
  std::string rel;                        ///< repo-relative, forward slashes
  std::vector<std::string> raw;           ///< physical lines
  std::vector<std::string> code;          ///< cooked lines (see lexer.hpp)
  std::vector<IncludeDirective> includes;

  bool is_header = false;
  bool in_src = false;       ///< under src/
  bool in_tests = false;     ///< under tests/
  bool in_bench = false;     ///< under bench/
  bool in_tools = false;     ///< under tools/
  bool is_public_header = false;  ///< under src/*/include/perfeng/
  std::string library;       ///< src subdirectory name, or "" outside src/
};

/// Build the lexed model from raw lines (the driver does this for files
/// on disk; tests feed synthetic content).
[[nodiscard]] SourceFile make_source_file(std::string rel,
                                          std::vector<std::string> raw);

/// Line-level waiver: `perfeng-lint: allow(<rule>)` on this line or the
/// line directly above it.
[[nodiscard]] bool line_allows(const SourceFile& f, std::size_t idx,
                               std::string_view rule);

/// File-level waiver: `perfeng-lint: allow-file(<rule>)` anywhere.
[[nodiscard]] bool file_allows(const SourceFile& f, std::string_view rule);

}  // namespace pe::lint
