#pragma once

/// \file wait_loop.hpp
/// Whole-program wait-loop pass: spin loops on atomics must pace
/// themselves.
///
/// A loop whose exit condition is an atomic `.load(...)` and whose body
/// neither makes progress on that atomic (store/RMW/CAS) nor paces
/// itself (`yield`, `sleep_*`, a futex-style `.wait(...)`, a park, a
/// backoff call) burns a core at full speed while waiting on another
/// thread — the exact pathology the scheduler's spin→yield→park ladder
/// exists to avoid. The same applies to `for (;;)` / `while (true)`
/// bodies that poll an atomic. Sanctioned spin sites (the scheduler's
/// own ladder already paces itself and passes clean; anything else needs
/// a `perfeng-lint: allow(wait-loop)` waiver with a rationale).

#include <vector>

#include "perfeng/lint/pass.hpp"

namespace pe::lint {

class WaitLoopPass final : public Pass {
 public:
  [[nodiscard]] RuleInfo rule() const override;
  void run(const PassContext& ctx, std::vector<Finding>& out) const override;
};

}  // namespace pe::lint
