#pragma once

/// \file lock_order.hpp
/// Whole-program lock-order (deadlock-potential) analysis.
///
/// The pass extracts, per function, the ordered sequence of mutex
/// acquisitions — `std::scoped_lock`, `std::lock_guard`,
/// `std::unique_lock`, and the pool's `lock_traced` wrapper — tracking
/// guard scopes so it knows which locks are *held* when the next one is
/// taken, and follows direct calls within the same translation unit so
/// "holds A, calls g(), g takes B" contributes the same A→B edge as a
/// syntactic nesting. Edges are folded into one global graph keyed by
/// *mutex member identity* (`Class::member`, resolved through member
/// declarations and lightweight local-variable type inference, so
/// `mine.mu` and `w->deque.mu` are the same lock). A cycle in that graph
/// is a potential deadlock; the finding carries the full witness path —
/// every edge with the function and file:line that created it.
///
/// Deliberate non-edges: the mutexes of one multi-argument
/// `std::scoped_lock(a, b)` are acquired atomically by a deadlock-free
/// algorithm, so no order edge is added *between* them (edges from locks
/// already held to each of them still are); `try_lock` without a
/// follow-up blocking `lock()` cannot deadlock and is ignored; a function
/// whose acquisition target is its own `std::mutex&` parameter is a lock
/// wrapper — its identity is resolved at each call site instead.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "perfeng/lint/pass.hpp"
#include "perfeng/lint/source.hpp"

namespace pe::lint {

/// One ordered edge: `from` was held when `to` was acquired.
struct LockEdge {
  std::string from;     ///< mutex identity, e.g. "ThreadPool::mutex_"
  std::string to;
  std::string where;    ///< "file:line"
  std::string function; ///< function whose body created the edge
  std::string via;      ///< non-empty when the edge crossed a call
};

/// The folded global graph, exposed for tests and for the report.
struct LockOrderGraph {
  std::vector<LockEdge> edges;  ///< deduplicated on (from, to), first wins

  /// Elementary cycles, each as the edge path around the cycle
  /// (edges[i].to == edges[i+1].from, last wraps to first). Deterministic
  /// order; each cycle reported once regardless of entry node.
  [[nodiscard]] std::vector<std::vector<LockEdge>> cycles() const;
};

/// Build the global lock-order graph from the given sources (the pass
/// runs it over `src/`; tests run it over fixtures).
[[nodiscard]] LockOrderGraph build_lock_order_graph(
    const std::vector<SourceFile>& files);

class LockOrderPass final : public Pass {
 public:
  [[nodiscard]] RuleInfo rule() const override;
  void run(const PassContext& ctx, std::vector<Finding>& out) const override;
};

}  // namespace pe::lint
