#pragma once

/// \file layering.hpp
/// Whole-program include-layering pass.
///
/// Every `#include "perfeng/..."` edge inside `src/` must be *realizable
/// in the declared DAG*: the including file's library must declare a
/// dependency path (any number of hops, since every dependency here is
/// PUBLIC) to the library that owns the included header. An edge that is
/// not realizable is an architecture break even when it compiles through
/// a stray include directory. The pass also reports cycles in the
/// declared DAG itself and includes of headers no library owns.
///
/// Deliberate interface headers (e.g. a hook header meant to be included
/// from everywhere) are allowlisted with
/// `perfeng-lint: allow(include-layering)` on the include line, carrying
/// a rationale.

#include <vector>

#include "perfeng/lint/pass.hpp"

namespace pe::lint {

class IncludeLayeringPass final : public Pass {
 public:
  [[nodiscard]] RuleInfo rule() const override;
  void run(const PassContext& ctx, std::vector<Finding>& out) const override;
};

}  // namespace pe::lint
