#pragma once

/// \file driver.hpp
/// Scanning and orchestration: load + lex the tree, build the repo
/// model, run a pass list, collect structured results. The CLI in
/// tools/perfeng_lint.cpp is a thin shell over this.

#include <cstddef>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "perfeng/lint/finding.hpp"
#include "perfeng/lint/pass.hpp"
#include "perfeng/lint/repo_model.hpp"
#include "perfeng/lint/source.hpp"

namespace pe::lint {

struct ScanOptions {
  std::filesystem::path root;
  /// Top-level directories to scan (relative to root).
  std::vector<std::string> dirs = {"src", "tests", "bench", "examples",
                                   "tools"};
  /// Path substrings to skip — lint self-test fixtures contain deliberate
  /// defects and must not lint the real tree red.
  std::vector<std::string> skip_substrings = {"lint_fixtures"};
};

/// Load and lex every .cpp/.hpp/.h under the scan roots. Deterministic
/// (sorted) order. Throws pe::Error on unreadable files.
[[nodiscard]] std::vector<SourceFile> load_sources(const ScanOptions& opts);

struct LintResult {
  std::vector<Finding> findings;  ///< sorted
  std::vector<RuleInfo> rules;    ///< every pass that ran
  std::size_t files_scanned = 0;
};

/// Run `passes` over already-loaded sources.
[[nodiscard]] LintResult run_passes(
    const PassContext& ctx,
    const std::vector<std::unique_ptr<Pass>>& passes);

/// Convenience: scan `opts`, build the repo model, run the full default
/// catalog (optionally filtered to `only_rules` ids).
[[nodiscard]] LintResult lint_repo(
    const ScanOptions& opts,
    const std::vector<std::string>& only_rules = {});

}  // namespace pe::lint
