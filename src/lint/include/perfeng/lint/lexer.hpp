#pragma once

/// \file lexer.hpp
/// The shared lexing core every pass builds on.
///
/// The old single-file lint re-implemented comment/string stripping per
/// tool and could not see raw strings, digit separators, or line-spliced
/// comments; every new rule re-risked the same false positives. This
/// lexer does the job once, properly, and every pass consumes its output:
///
/// - `cook_lines` blanks comments, string/char literal *contents* (the
///   delimiters stay, so quoted context remains visible), raw strings
///   `R"delim(...)delim"` across physical lines, and comments continued
///   by a trailing backslash (a line splice inside `//` extends the
///   comment to the next physical line — a classic token-scanner trap).
///   Digit separators (`1'000'000`) are not char literals.
/// - Line structure is preserved exactly: cooked line *i* is physical
///   line *i*, so findings report real line numbers.
/// - The preprocessor-line model joins spliced directives and extracts
///   `#include` paths (which live inside string literals and are
///   therefore invisible in cooked text).

#include <cstddef>
#include <string>
#include <vector>

namespace pe::lint {

/// One preprocessor directive, with splices joined.
struct Directive {
  std::size_t line = 0;  ///< 1-based physical line of the `#`
  std::string kind;      ///< "include", "pragma", "define", ...
  std::string text;      ///< full logical line, comments stripped
};

/// One `#include` directive.
struct IncludeDirective {
  std::size_t line = 0;  ///< 1-based
  std::string path;      ///< between the delimiters
  bool angled = false;   ///< <system> vs "quoted"
};

/// Comment/string/raw-string-aware cook of `raw`: same number of lines,
/// same column positions, with comment and literal contents blanked.
[[nodiscard]] std::vector<std::string> cook_lines(
    const std::vector<std::string>& raw);

/// Preprocessor-line model over `raw`: directives with splices joined and
/// trailing comments stripped. Directives inside block comments are not
/// directives.
[[nodiscard]] std::vector<Directive> preprocessor_lines(
    const std::vector<std::string>& raw);

/// The `#include` subset of `preprocessor_lines`, with paths parsed.
[[nodiscard]] std::vector<IncludeDirective> include_directives(
    const std::vector<std::string>& raw);

/// True when `c` can appear in an identifier.
[[nodiscard]] bool is_identifier_char(char c) noexcept;

/// Does `token` occur in `line` delimited by non-identifier characters?
[[nodiscard]] bool contains_token(const std::string& line,
                                  const std::string& token) noexcept;

}  // namespace pe::lint
