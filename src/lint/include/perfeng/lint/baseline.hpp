#pragma once

/// \file baseline.hpp
/// Checked-in finding baseline: CI gates on *new* findings only.
///
/// The baseline (tools/lint_baseline.json) maps a finding identity —
/// rule + file + message, deliberately excluding the line number so
/// unrelated edits don't churn it — to the number of such findings that
/// are accepted debt. A lint run subtracts the baseline and fails only
/// on the excess; burning debt down shrinks the file, never grows it
/// silently (regenerate with `perfeng_lint <root> --write-baseline`).

#include <cstddef>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "perfeng/lint/finding.hpp"

namespace pe::lint {

class Baseline {
 public:
  /// Load from disk. A missing file is an empty baseline (everything is
  /// new); a malformed file throws pe::Error naming the line.
  [[nodiscard]] static Baseline load(const std::filesystem::path& path);

  /// Serialize the given findings as a baseline document (sorted,
  /// one entry per line, counts aggregated).
  [[nodiscard]] static std::string serialize(
      const std::vector<Finding>& findings);

  /// Findings not covered by the baseline: for each identity, the first
  /// `count` occurrences are absorbed, the rest returned.
  [[nodiscard]] std::vector<Finding> new_findings(
      const std::vector<Finding>& findings) const;

  [[nodiscard]] std::size_t total_entries() const noexcept;

 private:
  std::map<std::string, std::size_t> counts_;  // finding_key -> accepted
};

}  // namespace pe::lint
