#pragma once

/// \file repo_model.hpp
/// The declared library DAG, parsed from the build system itself.
///
/// Each `src/<name>/CMakeLists.txt` declares one `perfeng_<...>` library
/// and its `target_link_libraries` edges. That declaration *is* the
/// architecture: an include edge that cannot be realized in this DAG is a
/// layering break even if it happens to compile today through a
/// transitive include directory. The model feeds the include-layering
/// pass (perfeng/lint/layering.hpp) and is available to any future
/// whole-program pass that needs to know which library a file belongs to.

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace pe::lint {

/// One declared library under src/.
struct Library {
  std::string name;       ///< src subdirectory, e.g. "parallel"
  std::string target;     ///< CMake target, e.g. "perfeng_parallel"
  std::string cmake_rel;  ///< "src/parallel/CMakeLists.txt"
  std::vector<std::string> deps;  ///< declared direct deps (library names)
};

/// The parsed DAG plus lookup helpers.
class RepoModel {
 public:
  [[nodiscard]] const std::vector<Library>& libraries() const noexcept {
    return libraries_;
  }

  [[nodiscard]] const Library* by_name(std::string_view name) const noexcept;
  [[nodiscard]] const Library* by_target(
      std::string_view target) const noexcept;

  /// Is `to` reachable from `from` over declared edges (any number of
  /// hops)? A library trivially reaches itself.
  [[nodiscard]] bool depends_on(std::string_view from,
                                std::string_view to) const;

  /// Which library owns the public header `include_path` (a
  /// "perfeng/..." path)? Empty string when no library provides it.
  [[nodiscard]] std::string owner_of_header(
      const std::string& include_path) const;

  /// Cycles in the declared DAG itself, each as the list of library names
  /// around the cycle (first == last). Empty for a healthy tree.
  [[nodiscard]] std::vector<std::vector<std::string>> declared_cycles()
      const;

  /// Parse every src/*/CMakeLists.txt under `root`. Never throws on
  /// missing/odd files — an unparseable library simply has no declared
  /// deps, and the layering pass will say so.
  [[nodiscard]] static RepoModel build(const std::filesystem::path& root);

 private:
  std::vector<Library> libraries_;
  std::filesystem::path root_;
};

}  // namespace pe::lint
