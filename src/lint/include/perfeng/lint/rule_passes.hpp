#pragma once

/// \file rule_passes.hpp
/// The twelve source-contract rules, ported from the original
/// single-file tool onto the pass framework (see docs/lint.md for the
/// catalog). Each is a small whole-program pass over the lexed files;
/// they share the lexer, the waiver grammar, and the structured output
/// with everything else in pe::lint.

#include <memory>
#include <vector>

#include "perfeng/lint/pass.hpp"

namespace pe::lint {

/// All twelve ported rules, in catalog order:
///   pragma-once, include-style, namespace-pe, no-using-namespace,
///   no-std-rand, no-raw-new-array, no-volatile, test-determinism,
///   self-contained-includes, trace-hook-guard, simd-isolation,
///   model-from-machine.
[[nodiscard]] std::vector<std::unique_ptr<Pass>> ported_rule_passes();

}  // namespace pe::lint
