#pragma once

/// \file render.hpp
/// Renderers over the structured findings: terminal text, line-JSON for
/// scripting, and SARIF 2.1.0 for CI annotation and artifact upload.

#include <cstddef>
#include <string>
#include <vector>

#include "perfeng/lint/finding.hpp"
#include "perfeng/lint/pass.hpp"

namespace pe::lint {

/// Classic `file:line: [rule] message` listing plus a summary line.
[[nodiscard]] std::string render_text(const std::vector<Finding>& findings,
                                      std::size_t files_scanned);

/// One JSON object per line:
/// {"file":...,"line":N,"rule":...,"severity":...,"message":...,
///  "fix_hint":...}
[[nodiscard]] std::string render_jsonl(const std::vector<Finding>& findings);

/// A single-run SARIF 2.1.0 log. `rules` populates the tool driver's
/// rules array; results reference them by ruleId/ruleIndex.
[[nodiscard]] std::string render_sarif(const std::vector<Finding>& findings,
                                       const std::vector<RuleInfo>& rules);

/// JSON string-body escaping (quotes, backslashes, control characters).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace pe::lint
