#pragma once

/// \file dependence.hpp
/// Polyhedral-lite dependence analysis for affine loop nests.
///
/// The course's polyhedral-model lectures (HIPEAC-tutorial style) teach
/// students to reason about loop transformations through dependence
/// *distance vectors*. This module implements the uniform-dependence subset
/// that covers the course kernels: perfectly nested loops with constant
/// bounds and affine subscripts. It derives distance vectors between
/// conflicting accesses, and answers the two questions students need:
/// is this loop interchange legal, and is this band tilable?
///
/// Conventions: a dependence runs from the lexicographically earlier
/// iteration to the later one, so every reported distance vector is
/// lexicographically positive (the zero vector — a loop-independent
/// dependence within one iteration — imposes no ordering constraint and is
/// not reported).

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace pe::poly {

/// Affine function of the loop indices: sum(coef[k] * i_k) + constant.
struct AffineExpr {
  std::vector<long> coef;  ///< one coefficient per loop, outermost first
  long constant = 0;

  /// Evaluate at an iteration point.
  [[nodiscard]] long eval(const std::vector<long>& iter) const;
};

/// One loop of the nest: [lower, upper) with unit stride.
struct Loop {
  std::string name;
  long lower = 0;
  long upper = 0;

  [[nodiscard]] long trip_count() const { return upper - lower; }
};

/// An array access with affine subscripts.
struct Access {
  std::string array;
  std::vector<AffineExpr> subscripts;
  bool is_write = false;
};

/// Kinds of data dependence between two accesses.
enum class DepKind { kFlow, kAnti, kOutput };

[[nodiscard]] std::string dep_kind_name(DepKind k);

/// One discovered dependence, summarized per direction vector (the
/// standard compaction: a matmul accumulation carries distances (0,0,d)
/// for every d > 0, reported once as direction (0,0,+1)).
struct Dependence {
  std::string array;
  DepKind kind = DepKind::kFlow;
  /// Sign per loop: -1, 0, +1 (lexicographically positive by convention).
  std::vector<int> direction;
  /// Lexicographically smallest observed distance with this direction.
  std::vector<long> distance;
  /// True when every observed distance with this direction is identical
  /// (a genuinely uniform, constant-distance dependence).
  bool uniform = false;
};

/// A perfect loop nest with a body made of array accesses.
class LoopNest {
 public:
  explicit LoopNest(std::vector<Loop> loops);

  void add_access(Access access);

  [[nodiscard]] std::size_t depth() const { return loops_.size(); }
  [[nodiscard]] const std::vector<Loop>& loops() const { return loops_; }
  [[nodiscard]] const std::vector<Access>& accesses() const {
    return accesses_;
  }

  /// All dependences between conflicting access pairs (at least one write,
  /// same array). Exhaustive and exact: iterates candidate distance
  /// vectors within the loop bounds — suitable for the course-scale nests
  /// this module targets (use small bounds; the result is bound-independent
  /// for uniform dependences).
  [[nodiscard]] std::vector<Dependence> analyze() const;

  /// True if permuting the loops by `perm` (new order, outermost first,
  /// values are old loop indices) preserves every dependence.
  [[nodiscard]] bool interchange_legal(
      const std::vector<std::size_t>& perm) const;

  /// True if the whole nest is fully permutable (all distance components
  /// >= 0), the sufficient condition for rectangular tiling.
  [[nodiscard]] bool tilable() const;

  /// True if applying the unimodular transformation T (new iteration
  /// vector = T * old; row-major square matrix of size depth()) preserves
  /// every dependence, i.e. T * d stays lexicographically positive for
  /// every distance vector d. Interchange is the permutation-matrix
  /// special case; skewing (e.g. [[1,0],[1,1]]) is the classic transform
  /// that makes Seidel-style nests tilable.
  [[nodiscard]] bool transform_legal(
      const std::vector<std::vector<long>>& t) const;

  /// True if the nest becomes fully permutable (tilable) after T:
  /// every transformed distance has only non-negative components.
  [[nodiscard]] bool transform_makes_tilable(
      const std::vector<std::vector<long>>& t) const;

  /// Classic helper: the matmul (i,j,k) nest with C[i][j] += A[i][k]*B[k][j].
  static LoopNest matmul(long n);

  /// Jacobi 2D stencil with separate in/out arrays (fully parallel nest).
  static LoopNest jacobi2d(long n);

  /// Seidel-style in-place stencil (carries dependences in both loops).
  static LoopNest seidel2d(long n);

 private:
  /// All raw dependence distance vectors within the bounds (deduped);
  /// transform checks need exact distances, not direction summaries.
  [[nodiscard]] std::vector<std::vector<long>> all_distances() const;

  std::vector<Loop> loops_;
  std::vector<Access> accesses_;
};

/// Lexicographic comparison helpers used by the legality checks.
[[nodiscard]] bool lex_positive(const std::vector<long>& v);
[[nodiscard]] bool lex_negative(const std::vector<long>& v);

}  // namespace pe::poly
