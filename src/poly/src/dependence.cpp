#include "perfeng/poly/dependence.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "perfeng/common/error.hpp"

namespace pe::poly {

long AffineExpr::eval(const std::vector<long>& iter) const {
  PE_REQUIRE(iter.size() == coef.size(), "iteration arity mismatch");
  long acc = constant;
  for (std::size_t k = 0; k < coef.size(); ++k) acc += coef[k] * iter[k];
  return acc;
}

std::string dep_kind_name(DepKind k) {
  switch (k) {
    case DepKind::kFlow: return "flow";
    case DepKind::kAnti: return "anti";
    case DepKind::kOutput: return "output";
  }
  return "?";
}

bool lex_positive(const std::vector<long>& v) {
  for (long x : v) {
    if (x > 0) return true;
    if (x < 0) return false;
  }
  return false;
}

bool lex_negative(const std::vector<long>& v) {
  for (long x : v) {
    if (x < 0) return true;
    if (x > 0) return false;
  }
  return false;
}

LoopNest::LoopNest(std::vector<Loop> loops) : loops_(std::move(loops)) {
  PE_REQUIRE(!loops_.empty(), "nest needs at least one loop");
  for (const Loop& l : loops_)
    PE_REQUIRE(l.trip_count() >= 1, "loop must have at least one iteration");
}

void LoopNest::add_access(Access access) {
  for (const AffineExpr& s : access.subscripts)
    PE_REQUIRE(s.coef.size() == loops_.size(),
               "subscript arity must match nest depth");
  accesses_.push_back(std::move(access));
}

namespace {

/// Odometer over the iteration space; returns false when exhausted.
bool advance(std::vector<long>& iter, const std::vector<Loop>& loops) {
  std::size_t k = loops.size();
  while (k > 0) {
    --k;
    if (++iter[k] < loops[k].upper) return true;
    iter[k] = loops[k].lower;
  }
  return false;
}

bool subscripts_match(const Access& a, const std::vector<long>& ia,
                      const Access& b, const std::vector<long>& ib) {
  if (a.subscripts.size() != b.subscripts.size()) return false;
  for (std::size_t d = 0; d < a.subscripts.size(); ++d)
    if (a.subscripts[d].eval(ia) != b.subscripts[d].eval(ib)) return false;
  return true;
}

struct DirectionKey {
  std::string array;
  DepKind kind;
  std::vector<int> direction;
  auto operator<=>(const DirectionKey&) const = default;
};

}  // namespace

std::vector<Dependence> LoopNest::analyze() const {
  // Exhaustive and exact over the given bounds: for every conflicting
  // access pair, every ordered pair of iteration points touching the same
  // element yields a distance; distances are summarized per direction.
  std::map<DirectionKey, std::pair<std::vector<long>, bool>>
      summary;  // direction -> (min distance, all-equal flag)

  auto note = [&](const std::string& array, DepKind kind,
                  const std::vector<long>& dist) {
    std::vector<int> dir(dist.size());
    for (std::size_t k = 0; k < dist.size(); ++k)
      dir[k] = dist[k] > 0 ? 1 : (dist[k] < 0 ? -1 : 0);
    DirectionKey key{array, kind, std::move(dir)};
    auto it = summary.find(key);
    if (it == summary.end()) {
      summary.emplace(std::move(key), std::make_pair(dist, true));
    } else {
      if (it->second.first != dist) it->second.second = false;
      if (std::lexicographical_compare(dist.begin(), dist.end(),
                                       it->second.first.begin(),
                                       it->second.first.end()))
        it->second.first = dist;
    }
  };

  for (std::size_t ai = 0; ai < accesses_.size(); ++ai) {
    for (std::size_t bi = 0; bi < accesses_.size(); ++bi) {
      const Access& src = accesses_[ai];
      const Access& dst = accesses_[bi];
      if (src.array != dst.array) continue;
      if (!src.is_write && !dst.is_write) continue;
      DepKind kind = DepKind::kOutput;
      if (src.is_write && !dst.is_write) kind = DepKind::kFlow;
      if (!src.is_write && dst.is_write) kind = DepKind::kAnti;
      if (kind == DepKind::kOutput && ai != bi && bi < ai)
        continue;  // count each write pair once

      std::vector<long> ia(loops_.size());
      for (std::size_t k = 0; k < loops_.size(); ++k) ia[k] = loops_[k].lower;
      do {
        std::vector<long> ib(loops_.size());
        for (std::size_t k = 0; k < loops_.size(); ++k)
          ib[k] = loops_[k].lower;
        do {
          std::vector<long> dist(loops_.size());
          for (std::size_t k = 0; k < loops_.size(); ++k)
            dist[k] = ib[k] - ia[k];
          if (!lex_positive(dist)) continue;  // source must run first
          if (subscripts_match(src, ia, dst, ib)) note(src.array, kind, dist);
        } while (advance(ib, loops_));
      } while (advance(ia, loops_));
    }
  }

  std::vector<Dependence> out;
  out.reserve(summary.size());
  for (const auto& [key, value] : summary) {
    Dependence dep;
    dep.array = key.array;
    dep.kind = key.kind;
    dep.direction = key.direction;
    dep.distance = value.first;
    dep.uniform = value.second;
    out.push_back(std::move(dep));
  }
  return out;
}

bool LoopNest::interchange_legal(const std::vector<std::size_t>& perm) const {
  PE_REQUIRE(perm.size() == loops_.size(), "permutation arity mismatch");
  std::vector<bool> seen(loops_.size(), false);
  for (std::size_t p : perm) {
    PE_REQUIRE(p < loops_.size() && !seen[p], "not a permutation");
    seen[p] = true;
  }
  for (const Dependence& dep : analyze()) {
    std::vector<long> permuted(dep.distance.size());
    for (std::size_t k = 0; k < perm.size(); ++k)
      permuted[k] = dep.distance[perm[k]];
    // Direction is what matters; use the representative's signs.
    std::vector<long> dir(perm.size());
    for (std::size_t k = 0; k < perm.size(); ++k)
      dir[k] = dep.direction[perm[k]];
    if (lex_negative(dir)) return false;
  }
  return true;
}

bool LoopNest::tilable() const {
  for (const Dependence& dep : analyze())
    for (int d : dep.direction)
      if (d < 0) return false;
  return true;
}

std::vector<std::vector<long>> LoopNest::all_distances() const {
  std::set<std::vector<long>> distances;
  for (std::size_t ai = 0; ai < accesses_.size(); ++ai) {
    for (std::size_t bi = 0; bi < accesses_.size(); ++bi) {
      const Access& src = accesses_[ai];
      const Access& dst = accesses_[bi];
      if (src.array != dst.array) continue;
      if (!src.is_write && !dst.is_write) continue;

      std::vector<long> ia(loops_.size());
      for (std::size_t k = 0; k < loops_.size(); ++k) ia[k] = loops_[k].lower;
      do {
        std::vector<long> ib(loops_.size());
        for (std::size_t k = 0; k < loops_.size(); ++k)
          ib[k] = loops_[k].lower;
        do {
          std::vector<long> dist(loops_.size());
          for (std::size_t k = 0; k < loops_.size(); ++k)
            dist[k] = ib[k] - ia[k];
          if (!lex_positive(dist)) continue;
          if (subscripts_match(src, ia, dst, ib)) distances.insert(dist);
        } while (advance(ib, loops_));
      } while (advance(ia, loops_));
    }
  }
  return {distances.begin(), distances.end()};
}

namespace {

std::vector<long> apply_transform(const std::vector<std::vector<long>>& t,
                                  const std::vector<long>& d) {
  std::vector<long> out(t.size(), 0);
  for (std::size_t r = 0; r < t.size(); ++r)
    for (std::size_t c = 0; c < d.size(); ++c) out[r] += t[r][c] * d[c];
  return out;
}

void check_transform_shape(const std::vector<std::vector<long>>& t,
                           std::size_t depth) {
  PE_REQUIRE(t.size() == depth, "transform must be depth x depth");
  for (const auto& row : t)
    PE_REQUIRE(row.size() == depth, "transform must be depth x depth");
}

}  // namespace

bool LoopNest::transform_legal(
    const std::vector<std::vector<long>>& t) const {
  check_transform_shape(t, loops_.size());
  for (const auto& d : all_distances()) {
    if (!lex_positive(apply_transform(t, d))) return false;
  }
  return true;
}

bool LoopNest::transform_makes_tilable(
    const std::vector<std::vector<long>>& t) const {
  check_transform_shape(t, loops_.size());
  for (const auto& d : all_distances()) {
    const auto td = apply_transform(t, d);
    if (!lex_positive(td)) return false;  // must stay legal...
    for (long component : td) {
      if (component < 0) return false;    // ...and become non-negative
    }
  }
  return true;
}

LoopNest LoopNest::matmul(long n) {
  PE_REQUIRE(n >= 2, "need at least two iterations per loop");
  LoopNest nest({{"i", 0, n}, {"j", 0, n}, {"k", 0, n}});
  const AffineExpr i{{1, 0, 0}, 0}, j{{0, 1, 0}, 0}, k{{0, 0, 1}, 0};
  nest.add_access({"C", {i, j}, /*is_write=*/false});
  nest.add_access({"C", {i, j}, /*is_write=*/true});
  nest.add_access({"A", {i, k}, /*is_write=*/false});
  nest.add_access({"B", {k, j}, /*is_write=*/false});
  return nest;
}

LoopNest LoopNest::jacobi2d(long n) {
  PE_REQUIRE(n >= 4, "grid too small");
  LoopNest nest({{"i", 1, n - 1}, {"j", 1, n - 1}});
  auto expr = [](long ci, long cj, long c) {
    return AffineExpr{{ci, cj}, c};
  };
  // out[i][j] = f(in[i][j], in[i-1][j], in[i+1][j], in[i][j-1], in[i][j+1])
  nest.add_access({"out", {expr(1, 0, 0), expr(0, 1, 0)}, true});
  nest.add_access({"in", {expr(1, 0, 0), expr(0, 1, 0)}, false});
  nest.add_access({"in", {expr(1, 0, -1), expr(0, 1, 0)}, false});
  nest.add_access({"in", {expr(1, 0, 1), expr(0, 1, 0)}, false});
  nest.add_access({"in", {expr(1, 0, 0), expr(0, 1, -1)}, false});
  nest.add_access({"in", {expr(1, 0, 0), expr(0, 1, 1)}, false});
  return nest;
}

LoopNest LoopNest::seidel2d(long n) {
  PE_REQUIRE(n >= 4, "grid too small");
  LoopNest nest({{"i", 1, n - 1}, {"j", 1, n - 1}});
  auto expr = [](long ci, long cj, long c) {
    return AffineExpr{{ci, cj}, c};
  };
  // In-place 9-point relaxation (polybench seidel-2d flavour): the
  // anti-diagonal reads a[i-1][j+1] / a[i+1][j-1] carry the famous (1,-1)
  // dependence that blocks rectangular tiling.
  nest.add_access({"a", {expr(1, 0, 0), expr(0, 1, 0)}, true});
  nest.add_access({"a", {expr(1, 0, 0), expr(0, 1, 0)}, false});
  nest.add_access({"a", {expr(1, 0, -1), expr(0, 1, 0)}, false});
  nest.add_access({"a", {expr(1, 0, 1), expr(0, 1, 0)}, false});
  nest.add_access({"a", {expr(1, 0, 0), expr(0, 1, -1)}, false});
  nest.add_access({"a", {expr(1, 0, 0), expr(0, 1, 1)}, false});
  nest.add_access({"a", {expr(1, 0, -1), expr(0, 1, 1)}, false});
  nest.add_access({"a", {expr(1, 0, 1), expr(0, 1, -1)}, false});
  return nest;
}

}  // namespace pe::poly
