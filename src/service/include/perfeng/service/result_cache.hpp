#pragma once

/// \file result_cache.hpp
/// Single-flight result cache keyed on (calibration hash, workload key).
///
/// Identical submissions on an identical machine produce identical
/// measurements — that is the point of hash-stamped calibrations
/// (`Machine::calibration_hash`). The cache exploits it twice:
///
///  - **done cache**: a completed Outcome is stored under its key and
///    served to later identical submissions without re-running;
///  - **single-flight**: while a key is being measured, concurrent
///    identical submissions *join* the in-flight run (sharing its future)
///    instead of queueing duplicate work — N simultaneous identical
///    submissions cost one run.
///
/// Only `kCompleted` outcomes are cached; a failed or shed leader
/// resolves its joiners (they share the leader's fate, documented
/// coalescing semantics) and then vacates the key so the next submission
/// retries fresh. The `service.cache` fault site covers the lookup path:
/// an injected cache fault degrades to a bypass (run without caching),
/// never to a lost or failed submission.

#include <cstddef>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "perfeng/service/submission.hpp"

namespace pe::service {

/// Thread-safe single-flight cache of submission outcomes.
class ResultCache {
 public:
  explicit ResultCache(std::size_t max_entries = 1024);

  /// How a submission relates to the cache after lookup.
  enum class Role {
    kLead,    ///< first in: run the workload, then call `complete`
    kJoined,  ///< an identical run is in flight: share its future
    kHit,     ///< a completed outcome is cached: future is ready
    kBypass,  ///< cache faulted (injected): run without caching
  };

  struct Lookup {
    Role role = Role::kBypass;
    /// kJoined/kHit: the outcome to share. kLead: the future the leader's
    /// `complete` call will resolve (what the leader's caller waits on).
    /// kBypass: invalid — the caller owns its own promise.
    std::shared_future<Outcome> future;
  };

  /// Look up (hash, key): hit, join, or lead — or bypass when the
  /// `service.cache` fault site fires. A kLead answer *obligates* the
  /// caller to call `complete` for the same key exactly once, whatever
  /// happens; the service's terminal-state invariant hangs on it.
  [[nodiscard]] Lookup acquire(const std::string& calibration_hash,
                               const std::string& workload_key);

  /// Resolve the in-flight entry of (hash, key) with the leader's
  /// terminal outcome: joiners' futures become ready, and the outcome is
  /// stored in the done cache iff it completed. No-op for keys without an
  /// in-flight entry (bypass paths may call it unconditionally).
  void complete(const std::string& calibration_hash,
                const std::string& workload_key, const Outcome& outcome);

  /// Drop every completed entry (in-flight entries are untouched).
  void invalidate();

  struct Stats {
    std::size_t hits = 0;      ///< served from the done cache
    std::size_t joins = 0;     ///< coalesced onto an in-flight run
    std::size_t leads = 0;     ///< lookups that became leaders
    std::size_t bypasses = 0;  ///< cache faults degraded to no caching
    std::size_t evictions = 0; ///< done entries evicted by capacity
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] std::size_t done_entries() const;
  [[nodiscard]] std::size_t in_flight_entries() const;

 private:
  struct InFlight {
    std::promise<Outcome> promise;
    std::shared_future<Outcome> future;
  };

  static std::string key_of(const std::string& calibration_hash,
                            const std::string& workload_key);

  std::size_t max_entries_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<InFlight>> in_flight_;
  std::map<std::string, Outcome> done_;
  std::deque<std::string> done_order_;  ///< FIFO eviction order
  Stats stats_;
};

}  // namespace pe::service
