#pragma once

/// \file submission.hpp
/// Submission, terminal-state, and outcome types of the benchmark service.
///
/// The service's spine is one invariant: every submission reaches exactly
/// one terminal state — `kCompleted` (a Measurement came back),
/// `kFailed` (the run threw a structured error), or `kShed` (the service
/// refused or abandoned the work *and said so*, with a reason). There is
/// no fourth state and no silent drop: under overload, injected faults,
/// and expired deadlines the chaos tests assert that the outcomes of all
/// submissions still partition into these three. "Benchmarking as
/// Empirical Standard" (PAPERS.md) is the motivation — a number produced
/// under overload is only meaningful when the system reports the overload.

#include <cstdint>
#include <functional>
#include <future>
#include <string>
#include <string_view>

#include "perfeng/measure/benchmark_runner.hpp"
#include "perfeng/resilience/measurement_error.hpp"

namespace pe::service {

/// The three terminal states of a submission.
enum class TerminalState : std::uint8_t {
  kCompleted,  ///< measured; `Outcome::measurement` is valid
  kFailed,     ///< the run threw; `Outcome::error` says why
  kShed,       ///< refused or abandoned; `Outcome::shed_reason` says why
};

/// Stable human-readable name ("completed", "failed", "shed").
[[nodiscard]] std::string_view to_string(TerminalState state);

/// Why a submission was shed. Every reason is explicit backpressure:
/// callers can tell "the system is full" apart from "your tenant is
/// misbehaving" apart from "you asked too late".
enum class ShedReason : std::uint8_t {
  kNone,            ///< not shed (state != kShed)
  kQueueFull,       ///< global admission-queue capacity reached
  kTenantOverShare, ///< the tenant's fair share of the queue is exhausted
  kBreakerOpen,     ///< the tenant's circuit breaker is open
  kDeadlineExpired, ///< the deadline budget expired while queued
  kShutdown,        ///< the service is stopping
  kAdmissionFault,  ///< a fault fired in the admission path itself
};

/// Stable human-readable name ("queue-full", "breaker-open", ...).
[[nodiscard]] std::string_view to_string(ShedReason reason);

/// One unit of work handed to the service: which tenant wants which
/// workload measured, under what end-to-end budget.
struct SubmissionRequest {
  std::string tenant;        ///< multi-tenant identity (fairness, breaker)
  std::string workload_key;  ///< workload identity; cache key together
                             ///< with the machine's calibration hash
  std::function<void()> kernel;  ///< the workload to measure
  /// End-to-end budget in wall-clock seconds: queue wait plus run. The
  /// remaining budget at dequeue flows into
  /// `MeasurementConfig::deadline_seconds`; work whose budget expired
  /// while queued is shed, never run. 0 = no deadline.
  double deadline_seconds = 0.0;
};

/// The single terminal record of one submission.
struct Outcome {
  TerminalState state = TerminalState::kShed;
  ShedReason shed_reason = ShedReason::kNone;   ///< when state == kShed
  Measurement measurement;                      ///< when state == kCompleted
  std::string error;  ///< what() of the failure, when state == kFailed
  resilience::FailureKind failure_kind =
      resilience::FailureKind::kFault;          ///< when state == kFailed
  double queue_seconds = 0.0;  ///< admit -> dequeue wall-clock wait
  double run_seconds = 0.0;    ///< dequeue -> terminal wall-clock time

  [[nodiscard]] bool completed() const noexcept {
    return state == TerminalState::kCompleted;
  }
  [[nodiscard]] bool shed() const noexcept {
    return state == TerminalState::kShed;
  }

  /// One-line summary ("completed in ...", "shed: queue-full", ...).
  [[nodiscard]] std::string summary() const;
};

/// What `BenchmarkService::submit` hands back, synchronously. The future
/// is *always* valid — a submission shed at the door gets an
/// already-resolved future — so waiting on it is the one way to observe a
/// submission's terminal state, and every submission has one.
struct SubmitResult {
  std::uint64_t ticket = 0;  ///< unique per submit() call (1-based)
  bool admitted = false;     ///< entered the admission queue as a leader
  bool coalesced = false;    ///< joined an identical in-flight run
  bool cache_hit = false;    ///< served from the completed-result cache
  ShedReason shed_reason = ShedReason::kNone;  ///< when shed at the door
  std::shared_future<Outcome> outcome;         ///< always valid
};

/// Build an already-resolved shed outcome (admission rejections).
[[nodiscard]] std::shared_future<Outcome> resolved_shed(ShedReason reason);

}  // namespace pe::service
