#pragma once

/// \file service.hpp
/// `BenchmarkService`: a fault-tolerant, overload-safe submission
/// pipeline over the work-stealing thread pool.
///
/// The course's batch artifacts (BenchmarkRunner, suites, experiments)
/// assume a patient caller; a benchmark-as-a-service pipeline has
/// impatient, concurrent, occasionally abusive ones. The service layers
/// four protections over the pool, in admission order:
///
///  1. **Circuit breaker** (per tenant): a tenant with too many
///     consecutive failures is shed at the door until a half-open probe
///     proves recovery (circuit_breaker.hpp).
///  2. **Result cache + single-flight** (per machine-hash × workload
///     key): completed results are served without re-running; concurrent
///     identical submissions coalesce onto one run (result_cache.hpp).
///  3. **Bounded admission queue** (global + per-tenant fair share):
///     overload is answered with an explicit `Shed{reason}`, never with
///     an unbounded queue or a blocked caller (admission_queue.hpp).
///  4. **Deadline propagation**: each submission's remaining budget is
///     re-checked at dequeue — work that expired while queued is shed
///     unrun — and what's left flows into
///     `MeasurementConfig::deadline_seconds`, i.e. the existing
///     `run_with_deadline` watchdog bounds the run itself.
///
/// Execution is event-driven: each admitted submission enqueues one
/// drain task on the pool, and each drain task retires exactly one
/// queued submission (not necessarily "its own" — dequeue is tenant
/// round-robin). Drains never block, so the service composes with other
/// pool users, and the one-drain-per-admission pairing is what makes the
/// terminal-state invariant (every submission reaches exactly one of
/// Completed/Failed/Shed) provable rather than probabilistic. Runs pass
/// the scheduler's `pe::observe` trace sites like any other pool work, so
/// a `ScopedTrace` around a load campaign shows saturation in the
/// submit->start latency histograms. See docs/service.md.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "perfeng/machine/machine.hpp"
#include "perfeng/measure/benchmark_runner.hpp"
#include "perfeng/parallel/thread_pool.hpp"
#include "perfeng/service/admission_queue.hpp"
#include "perfeng/service/circuit_breaker.hpp"
#include "perfeng/service/result_cache.hpp"
#include "perfeng/service/submission.hpp"

namespace pe::service {

/// Service tuning.
struct ServiceConfig {
  std::size_t workers = 0;  ///< pool size; 0 = hardware concurrency
  AdmissionQueueConfig queue;
  CircuitBreakerConfig breaker;
  std::size_t cache_entries = 1024;  ///< done-cache capacity
  /// Base measurement design for every run; `deadline_seconds` is
  /// overridden per submission by its remaining deadline budget.
  MeasurementConfig measurement = [] {
    MeasurementConfig cfg;
    cfg.warmup_runs = 0;
    cfg.repetitions = 3;
    cfg.min_batch_seconds = 1e-4;
    return cfg;
  }();
  /// Machine provenance half of every cache key; empty = "uncalibrated"
  /// (still cached, just not comparable across machines).
  std::string calibration_hash;
  /// Monotonic-seconds clock for deadlines and breaker cooldowns;
  /// empty = steady_clock. Tests inject hand-advanced clocks here.
  CircuitBreaker::Clock now;
};

/// Monotone counters of everything the service decided. Two accounting
/// identities hold at every instant (and the load generator's `--check`
/// mode asserts them after a drain):
///   submitted == admitted + coalesced + cache_hits + shed_at_admission()
///   admitted  == completed + failed + shed_deadline + shed_shutdown_queued
///                + (still queued or in flight)
struct ServiceStats {
  std::uint64_t submitted = 0;      ///< submit() calls
  std::uint64_t admitted = 0;       ///< entered the queue as leaders
  std::uint64_t coalesced = 0;      ///< joined an in-flight identical run
  std::uint64_t cache_hits = 0;     ///< served from the done cache
  // Shed before queueing, by reason:
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_tenant_share = 0;
  std::uint64_t shed_breaker = 0;
  std::uint64_t shed_admission_fault = 0;
  std::uint64_t shed_shutdown_door = 0;    ///< submit() after stop()
  // Shed after queueing, by reason:
  std::uint64_t shed_deadline = 0;         ///< budget expired while queued
  std::uint64_t shed_shutdown_queued = 0;  ///< queued when stop() hit
  std::uint64_t completed = 0;      ///< runs that measured
  std::uint64_t failed = 0;         ///< runs that threw
  std::uint64_t workloads_run = 0;  ///< actual BenchmarkRunner invocations

  [[nodiscard]] std::uint64_t shed_at_admission() const {
    return shed_queue_full + shed_tenant_share + shed_breaker +
           shed_admission_fault + shed_shutdown_door;
  }
  [[nodiscard]] std::uint64_t shed_total() const {
    return shed_at_admission() + shed_deadline + shed_shutdown_queued;
  }
  /// Terminal outcomes accounted so far; equals `submitted` once the
  /// queue has drained (coalesced/cache-hit submissions terminate with
  /// the outcome they share).
  [[nodiscard]] std::uint64_t terminal() const {
    return completed + failed + cache_hits + coalesced + shed_total();
  }
};

/// The benchmark submission service. Thread-safe: `submit` may be called
/// from any thread, including from pool tasks of *other* pools.
class BenchmarkService {
 public:
  explicit BenchmarkService(ServiceConfig config = {});

  /// Convenience: take the cache-key hash from a machine description.
  BenchmarkService(ServiceConfig config, const machine::Machine& m);

  BenchmarkService(const BenchmarkService&) = delete;
  BenchmarkService& operator=(const BenchmarkService&) = delete;

  /// Stops admission, sheds what is still queued, joins in-flight runs.
  ~BenchmarkService();

  /// Submit a workload. Returns synchronously with either an admission
  /// decision or a coalesced/cached result; `SubmitResult::outcome` is
  /// always a valid future that resolves to the submission's single
  /// terminal state.
  [[nodiscard]] SubmitResult submit(SubmissionRequest request);

  /// Stop accepting work. Already-queued submissions are shed
  /// (kShutdown) as their drain tasks reach them; in-flight runs finish.
  /// Idempotent. The destructor calls it and then joins the pool.
  void stop();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] ResultCache::Stats cache_stats() const {
    return cache_.stats();
  }

  /// Breaker state of one tenant (kClosed for tenants never seen).
  [[nodiscard]] CircuitBreaker::State breaker_state(
      const std::string& tenant);

  /// Depth of the admission queue right now.
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }

 private:
  /// One queued submission: everything a drain task needs to retire it.
  struct Task {
    SubmissionRequest request;
    std::uint64_t ticket = 0;
    double admit_time = 0.0;     ///< service clock at admission
    bool cached = false;         ///< leader of a cache entry (vs bypass)
    /// Bypass tasks resolve their own promise; cached tasks resolve
    /// through ResultCache::complete.
    std::promise<Outcome> own_promise;
  };

  /// Retire exactly one queued submission (invoked once per admission).
  void drain_one();

  /// Run the task's workload under its remaining deadline and report the
  /// terminal outcome; never throws.
  [[nodiscard]] Outcome execute(Task& task, double queue_seconds);

  /// Deliver a task's terminal outcome (promise + stats + breaker).
  void resolve(Task& task, Outcome outcome);

  [[nodiscard]] CircuitBreaker& breaker_for(const std::string& tenant);

  [[nodiscard]] double now() const { return config_.now(); }

  ServiceConfig config_;
  ResultCache cache_;
  AdmissionQueue<std::unique_ptr<Task>> queue_;
  mutable std::mutex breakers_mu_;
  std::map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;
  mutable std::mutex stats_mu_;
  ServiceStats stats_;
  std::atomic<std::uint64_t> tickets_{0};
  std::atomic<bool> stopping_{false};
  /// Last member: its destructor joins the drain tasks, which touch
  /// everything above.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace pe::service
