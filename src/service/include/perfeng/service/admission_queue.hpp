#pragma once

/// \file admission_queue.hpp
/// Bounded, multi-tenant admission queue with explicit backpressure.
///
/// The queue is the service's overload valve. Admission never blocks:
/// `try_push` either admits or answers *why not* — the global capacity is
/// exhausted (`kQueueFull`) or the tenant's fair share is (`kTenantOver-
/// Share`). Per-tenant caps stop a flooding tenant from filling the queue,
/// and dequeue walks tenants round-robin, so even a tenant that legally
/// holds many slots cannot make another tenant's work wait behind all of
/// its own — the two mechanisms together are the fairness story the
/// service tests assert under a deliberate flood.
///
/// Header-only template: the service queues its internal task records, the
/// unit tests queue plain integers.

#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "perfeng/common/error.hpp"

namespace pe::service {

/// Sizing of an admission queue.
struct AdmissionQueueConfig {
  std::size_t capacity = 1024;        ///< global bound over all tenants
  std::size_t tenant_capacity = 256;  ///< per-tenant fair-share bound
};

/// Admission verdict of one `try_push`.
enum class AdmissionVerdict {
  kAdmitted,
  kQueueFull,        ///< global capacity reached
  kTenantOverShare,  ///< this tenant's share is exhausted
};

/// Bounded multi-tenant FIFO-per-tenant queue with round-robin dequeue.
/// Thread-safe; all operations are short critical sections (no waiting
/// inside the queue — backpressure is an answer, not a block).
template <typename T>
class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionQueueConfig config = {})
      : config_(config) {
    PE_REQUIRE(config_.capacity >= 1, "queue capacity must be positive");
    PE_REQUIRE(config_.tenant_capacity >= 1,
               "tenant capacity must be positive");
  }

  /// Admit `value` under `tenant`, or answer why not. Never blocks.
  /// Moves from `value` only on admission: a rejected value stays with
  /// the caller, who owes it a terminal state.
  AdmissionVerdict try_push(const std::string& tenant, T& value) {
    std::lock_guard lock(mu_);
    if (size_ >= config_.capacity) return AdmissionVerdict::kQueueFull;
    Lane& lane = lane_for(tenant);
    if (lane.items.size() >= config_.tenant_capacity)
      return AdmissionVerdict::kTenantOverShare;
    lane.items.push_back(std::move(value));
    ++size_;
    return AdmissionVerdict::kAdmitted;
  }

  /// Pop the front of the next non-empty tenant lane after the round-robin
  /// cursor; empty optional when the queue is empty. Round-robin is what
  /// keeps a many-slot tenant from monopolizing dequeue order.
  std::optional<T> try_pop() {
    std::lock_guard lock(mu_);
    if (size_ == 0) return std::nullopt;
    const std::size_t lanes = lanes_.size();
    for (std::size_t probe = 0; probe < lanes; ++probe) {
      Lane& lane = lanes_[(cursor_ + probe) % lanes];
      if (lane.items.empty()) continue;
      cursor_ = (cursor_ + probe + 1) % lanes;
      T value = std::move(lane.items.front());
      lane.items.pop_front();
      --size_;
      return value;
    }
    return std::nullopt;  // unreachable while size_ is accurate
  }

  /// Remove and return everything (shutdown path: shed, don't drop).
  std::vector<T> drain() {
    std::lock_guard lock(mu_);
    std::vector<T> out;
    out.reserve(size_);
    for (Lane& lane : lanes_) {
      for (T& value : lane.items) out.push_back(std::move(value));
      lane.items.clear();
    }
    size_ = 0;
    return out;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return size_;
  }

  /// Queued items of one tenant (0 for tenants never seen).
  [[nodiscard]] std::size_t tenant_depth(const std::string& tenant) const {
    std::lock_guard lock(mu_);
    for (const Lane& lane : lanes_)
      if (lane.tenant == tenant) return lane.items.size();
    return 0;
  }

  [[nodiscard]] const AdmissionQueueConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Lane {
    std::string tenant;
    std::deque<T> items;
  };

  /// Lane of `tenant`, created on first use. Tenant counts are small
  /// (a course's worth, not the internet's); linear scan beats a map's
  /// allocation churn here and keeps round-robin order stable.
  Lane& lane_for(const std::string& tenant) {
    for (Lane& lane : lanes_)
      if (lane.tenant == tenant) return lane;
    lanes_.emplace_back();
    lanes_.back().tenant = tenant;
    return lanes_.back();
  }

  AdmissionQueueConfig config_;
  mutable std::mutex mu_;
  // A deque, not a vector: growth never relocates existing lanes, so Lane
  // needs no copy/move even when T is move-only (the service queues
  // unique_ptrs).
  std::deque<Lane> lanes_;    ///< one per tenant, in first-seen order
  std::size_t cursor_ = 0;    ///< round-robin dequeue position
  std::size_t size_ = 0;      ///< total queued items
};

}  // namespace pe::service
