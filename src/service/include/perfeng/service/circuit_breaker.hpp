#pragma once

/// \file circuit_breaker.hpp
/// Per-tenant circuit breaker: closed -> open -> half-open -> closed.
///
/// A tenant whose submissions keep failing (a broken kernel, a poisoned
/// input, a fault-injection campaign) should stop consuming service
/// capacity until there is evidence it recovered. The breaker counts
/// *consecutive* failures; at the threshold it opens and sheds the
/// tenant's submissions (`ShedReason::kBreakerOpen`) for a cooldown drawn
/// from a seeded `BackoffSchedule` — successive trips back off longer,
/// with optional decorrelated jitter so many tripped tenants do not probe
/// in lockstep. After the cooldown the breaker is half-open: it lets a
/// bounded number of probe submissions through; enough successes close
/// it, any failure re-opens it (with the next, longer cooldown).
///
/// Time is injected (`Clock`), so the state machine is unit-testable
/// without sleeping, and deterministic under chaos seeds.

#include <cstddef>
#include <functional>
#include <mutex>

#include "perfeng/resilience/retry.hpp"

namespace pe::service {

/// Breaker tuning. The cooldown schedule reuses `RetryPolicy`:
/// `initial_backoff_seconds` is the first open-state cooldown,
/// `backoff_multiplier`/`max_backoff_seconds` grow and cap it per
/// successive trip, and `jitter`/`jitter_seed` decorrelate fleets.
struct CircuitBreakerConfig {
  int failure_threshold = 3;   ///< consecutive failures that trip it
  int half_open_probes = 1;    ///< probes admitted while half-open
  int successes_to_close = 1;  ///< probe successes that re-close it
  resilience::RetryPolicy cooldown{
      .initial_backoff_seconds = 0.5,
      .backoff_multiplier = 2.0,
      .max_backoff_seconds = 30.0,
  };
};

/// Validate breaker invariants; throws pe::Error on nonsense values.
void validate(const CircuitBreakerConfig& config);

/// One tenant's breaker. Thread-safe.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  /// Monotonic seconds; injected so tests advance time by hand.
  using Clock = std::function<double()>;

  /// `now` may be empty: then a steady_clock-backed default is used.
  explicit CircuitBreaker(CircuitBreakerConfig config = {}, Clock now = {});

  /// May a submission from this tenant proceed right now? Consumes a
  /// probe slot when half-open; transitions open -> half-open when the
  /// cooldown has elapsed. A false answer means shed (kBreakerOpen).
  [[nodiscard]] bool allow();

  /// Record the terminal state of an allowed submission.
  void on_success();
  void on_failure();

  /// An allowed submission ended without running (shed downstream, or
  /// served from cache): no health evidence either way. Releases the
  /// half-open probe slot `allow()` consumed — without this a probe shed
  /// by a full queue would wedge the breaker half-open forever.
  void on_abandoned();

  [[nodiscard]] State state();

  /// Consecutive-failure count while closed (diagnostics).
  [[nodiscard]] int consecutive_failures();

  /// Times the breaker tripped closed/half-open -> open.
  [[nodiscard]] std::size_t trips();

 private:
  void trip_locked();  ///< -> kOpen with the next cooldown

  /// Advance open -> half-open when the cooldown elapsed (mu_ held).
  void refresh_locked();

  CircuitBreakerConfig config_;
  Clock now_;
  std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int probes_in_flight_ = 0;    ///< half-open probes handed out
  int probe_successes_ = 0;     ///< successes observed while half-open
  std::size_t trips_ = 0;
  double open_until_ = 0.0;     ///< clock time the cooldown ends
  resilience::BackoffSchedule cooldowns_;  ///< per-trip cooldown sequence
};

/// Human-readable breaker state name ("closed", "open", "half-open").
[[nodiscard]] const char* to_string(CircuitBreaker::State state);

}  // namespace pe::service
