#include "perfeng/service/submission.hpp"

#include "perfeng/common/units.hpp"

namespace pe::service {

std::string_view to_string(TerminalState state) {
  switch (state) {
    case TerminalState::kCompleted: return "completed";
    case TerminalState::kFailed: return "failed";
    case TerminalState::kShed: return "shed";
  }
  return "?";
}

std::string_view to_string(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone: return "none";
    case ShedReason::kQueueFull: return "queue-full";
    case ShedReason::kTenantOverShare: return "tenant-over-share";
    case ShedReason::kBreakerOpen: return "breaker-open";
    case ShedReason::kDeadlineExpired: return "deadline-expired";
    case ShedReason::kShutdown: return "shutdown";
    case ShedReason::kAdmissionFault: return "admission-fault";
  }
  return "?";
}

std::string Outcome::summary() const {
  switch (state) {
    case TerminalState::kCompleted:
      return "completed in " + format_time(measurement.typical()) +
             " (queued " + format_time(queue_seconds) + ")";
    case TerminalState::kFailed:
      return "failed: " + error;
    case TerminalState::kShed:
      return "shed: " + std::string(to_string(shed_reason));
  }
  return "?";
}

std::shared_future<Outcome> resolved_shed(ShedReason reason) {
  std::promise<Outcome> p;
  Outcome o;
  o.state = TerminalState::kShed;
  o.shed_reason = reason;
  p.set_value(std::move(o));
  return p.get_future().share();
}

}  // namespace pe::service
