#include "perfeng/service/result_cache.hpp"

#include "perfeng/common/fault_hook.hpp"
#include "perfeng/resilience/fault_injection.hpp"

namespace pe::service {

ResultCache::ResultCache(std::size_t max_entries)
    : max_entries_(max_entries) {
  PE_REQUIRE(max_entries_ >= 1, "cache needs at least one entry");
}

std::string ResultCache::key_of(const std::string& calibration_hash,
                                const std::string& workload_key) {
  // '\n' cannot appear in a 16-hex-digit hash, so the pair is unambiguous.
  return calibration_hash + "\n" + workload_key;
}

ResultCache::Lookup ResultCache::acquire(const std::string& calibration_hash,
                                        const std::string& workload_key) {
  // A faulted cache degrades to a bypass: the submission still runs, it
  // just runs uncached. Shedding or failing a submission because the
  // *cache* hiccuped would invert the cache's whole value proposition.
  try {
    fault_point(fault_sites::kServiceCache);
  } catch (const resilience::FaultInjected&) {
    std::lock_guard lock(mu_);
    ++stats_.bypasses;
    return Lookup{Role::kBypass, {}};
  }

  const std::string key = key_of(calibration_hash, workload_key);
  std::lock_guard lock(mu_);
  if (const auto done = done_.find(key); done != done_.end()) {
    ++stats_.hits;
    std::promise<Outcome> ready;
    ready.set_value(done->second);
    return Lookup{Role::kHit, ready.get_future().share()};
  }
  if (const auto flying = in_flight_.find(key); flying != in_flight_.end()) {
    ++stats_.joins;
    return Lookup{Role::kJoined, flying->second->future};
  }
  ++stats_.leads;
  auto entry = std::make_shared<InFlight>();
  entry->future = entry->promise.get_future().share();
  Lookup lookup{Role::kLead, entry->future};
  in_flight_.emplace(key, std::move(entry));
  return lookup;
}

void ResultCache::complete(const std::string& calibration_hash,
                           const std::string& workload_key,
                           const Outcome& outcome) {
  const std::string key = key_of(calibration_hash, workload_key);
  std::shared_ptr<InFlight> entry;
  {
    std::lock_guard lock(mu_);
    const auto it = in_flight_.find(key);
    if (it == in_flight_.end()) return;  // bypass or double-complete
    entry = it->second;
    in_flight_.erase(it);
    if (outcome.state == TerminalState::kCompleted) {
      done_.emplace(key, outcome);
      done_order_.push_back(key);
      while (done_.size() > max_entries_) {
        done_.erase(done_order_.front());
        done_order_.pop_front();
        ++stats_.evictions;
      }
    }
  }
  // Resolve outside the lock: joiners may be waiting on this future and
  // react immediately on the resolving thread.
  entry->promise.set_value(outcome);
}

void ResultCache::invalidate() {
  std::lock_guard lock(mu_);
  done_.clear();
  done_order_.clear();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::size_t ResultCache::done_entries() const {
  std::lock_guard lock(mu_);
  return done_.size();
}

std::size_t ResultCache::in_flight_entries() const {
  std::lock_guard lock(mu_);
  return in_flight_.size();
}

}  // namespace pe::service
