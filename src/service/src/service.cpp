#include "perfeng/service/service.hpp"

#include <chrono>
#include <exception>
#include <optional>
#include <utility>

#include "perfeng/common/fault_hook.hpp"
#include "perfeng/resilience/fault_injection.hpp"
#include "perfeng/resilience/measurement_error.hpp"

namespace pe::service {

using resilience::FaultInjected;
using resilience::MeasurementError;

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// FNV-1a, for per-tenant breaker jitter streams (stable across
/// platforms, same rationale as the fault injector's per-site streams).
std::uint64_t hash_tenant(std::string_view tenant) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : tenant) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

BenchmarkService::BenchmarkService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_entries),
      queue_(config_.queue) {
  validate(config_.breaker);
  // Constructing a runner validates the measurement design now, not on
  // the first drain (where a throw would break the terminal invariant).
  (void)BenchmarkRunner(config_.measurement);
  if (!config_.now) config_.now = &steady_seconds;
  if (config_.calibration_hash.empty())
    config_.calibration_hash = "uncalibrated";
  pool_ = std::make_unique<ThreadPool>(
      config_.workers != 0 ? config_.workers
                           : ThreadPool::default_thread_count());
}

BenchmarkService::BenchmarkService(ServiceConfig config,
                                   const machine::Machine& m)
    : BenchmarkService([&] {
        config.calibration_hash = m.calibration_hash();
        return std::move(config);
      }()) {}

BenchmarkService::~BenchmarkService() {
  stop();
  // Joining the pool retires every pending drain task; each queued
  // submission is shed (kShutdown) by its drain, in-flight runs finish.
  pool_.reset();
  // Defensive sweep: a drain task that was never enqueued (pool submit
  // threw) leaves its submission queued. Shed it here — the invariant
  // is "exactly one terminal state", not "exactly one on the fast path".
  for (std::unique_ptr<Task>& task : queue_.drain()) {
    Outcome o;
    o.state = TerminalState::kShed;
    o.shed_reason = ShedReason::kShutdown;
    resolve(*task, std::move(o));
  }
}

void BenchmarkService::stop() { stopping_.store(true); }

CircuitBreaker& BenchmarkService::breaker_for(const std::string& tenant) {
  std::lock_guard lock(breakers_mu_);
  auto it = breakers_.find(tenant);
  if (it == breakers_.end()) {
    CircuitBreakerConfig cfg = config_.breaker;
    // Decorrelate tenants: each breaker draws its cooldown jitter from
    // its own seeded stream, so tripped tenants do not probe in lockstep.
    cfg.cooldown.jitter_seed ^= hash_tenant(tenant);
    it = breakers_
             .emplace(tenant, std::make_unique<CircuitBreaker>(
                                  cfg, config_.now))
             .first;
  }
  return *it->second;
}

CircuitBreaker::State BenchmarkService::breaker_state(
    const std::string& tenant) {
  return breaker_for(tenant).state();
}

ServiceStats BenchmarkService::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

SubmitResult BenchmarkService::submit(SubmissionRequest request) {
  PE_REQUIRE(!request.tenant.empty(), "submission needs a tenant");
  PE_REQUIRE(!request.workload_key.empty(),
             "submission needs a workload key");
  PE_REQUIRE(static_cast<bool>(request.kernel), "null kernel");
  PE_REQUIRE(request.deadline_seconds >= 0.0,
             "deadline must be non-negative");

  SubmitResult result;
  result.ticket = tickets_.fetch_add(1) + 1;
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.submitted;
  }

  const auto shed_at_door = [&](ShedReason reason,
                                std::uint64_t ServiceStats::* counter) {
    {
      std::lock_guard lock(stats_mu_);
      ++(stats_.*counter);
    }
    result.shed_reason = reason;
    result.outcome = resolved_shed(reason);
    return result;
  };

  // The admission path hosts its own fault site: an injected fault here
  // must surface as explicit backpressure, never as a lost submission.
  try {
    fault_point(fault_sites::kServiceAdmit);
  } catch (const FaultInjected&) {
    return shed_at_door(ShedReason::kAdmissionFault,
                        &ServiceStats::shed_admission_fault);
  }

  if (stopping_.load()) {
    return shed_at_door(ShedReason::kShutdown,
                        &ServiceStats::shed_shutdown_door);
  }

  CircuitBreaker& breaker = breaker_for(request.tenant);
  if (!breaker.allow()) {
    return shed_at_door(ShedReason::kBreakerOpen,
                        &ServiceStats::shed_breaker);
  }

  const ResultCache::Lookup look =
      cache_.acquire(config_.calibration_hash, request.workload_key);
  switch (look.role) {
    case ResultCache::Role::kHit:
      breaker.on_abandoned();  // terminal without a run: no evidence
      result.cache_hit = true;
      result.outcome = look.future;
      {
        std::lock_guard lock(stats_mu_);
        ++stats_.cache_hits;
      }
      return result;
    case ResultCache::Role::kJoined:
      breaker.on_abandoned();  // the leader's run carries the evidence
      result.coalesced = true;
      result.outcome = look.future;
      {
        std::lock_guard lock(stats_mu_);
        ++stats_.coalesced;
      }
      return result;
    case ResultCache::Role::kLead:
    case ResultCache::Role::kBypass:
      break;  // this submission runs (or sheds trying)
  }
  const bool cached = look.role == ResultCache::Role::kLead;

  auto task = std::make_unique<Task>();
  task->ticket = result.ticket;
  task->admit_time = now();
  task->cached = cached;
  task->request = std::move(request);
  const std::string tenant = task->request.tenant;
  const std::string key = task->request.workload_key;
  const std::shared_future<Outcome> outcome_future =
      cached ? look.future : task->own_promise.get_future().share();

  const AdmissionVerdict verdict = queue_.try_push(tenant, task);
  if (verdict != AdmissionVerdict::kAdmitted) {
    breaker.on_abandoned();
    const ShedReason reason = verdict == AdmissionVerdict::kQueueFull
                                  ? ShedReason::kQueueFull
                                  : ShedReason::kTenantOverShare;
    Outcome o;
    o.state = TerminalState::kShed;
    o.shed_reason = reason;
    if (cached) {
      // Joiners that slipped in between acquire and push share the shed.
      cache_.complete(config_.calibration_hash, key, o);
    }
    {
      std::lock_guard lock(stats_mu_);
      ++(verdict == AdmissionVerdict::kQueueFull
             ? stats_.shed_queue_full
             : stats_.shed_tenant_share);
    }
    result.shed_reason = reason;
    result.outcome = outcome_future;
    if (!cached) task->own_promise.set_value(std::move(o));
    return result;
  }

  {
    std::lock_guard lock(stats_mu_);
    ++stats_.admitted;
  }
  result.admitted = true;
  result.outcome = outcome_future;
  // One drain task per admission: the pairing that proves every queued
  // submission is retired exactly once. If the pool refuses (allocation
  // failure on shutdown paths), the destructor's defensive sweep sheds
  // the orphaned submission instead.
  try {
    (void)pool_->submit([this] { drain_one(); });
  } catch (...) {
    // Queued but drainless; covered by the destructor sweep.
  }
  return result;
}

void BenchmarkService::drain_one() {
  std::optional<std::unique_ptr<Task>> popped = queue_.try_pop();
  if (!popped.has_value() || *popped == nullptr) return;
  Task& task = **popped;
  const double queue_seconds = now() - task.admit_time;

  if (stopping_.load()) {
    Outcome o;
    o.state = TerminalState::kShed;
    o.shed_reason = ShedReason::kShutdown;
    o.queue_seconds = queue_seconds;
    resolve(task, std::move(o));
    return;
  }

  // The dequeue path hosts its own fault site. It sits *after* the pop:
  // a fault before the pop would burn this drain without retiring a
  // submission and break the one-drain-one-retirement pairing.
  try {
    fault_point(fault_sites::kServiceDequeue);
  } catch (const FaultInjected& e) {
    Outcome o;
    o.state = TerminalState::kFailed;
    o.error = e.what();
    o.failure_kind = resilience::FailureKind::kFault;
    o.queue_seconds = queue_seconds;
    resolve(task, std::move(o));
    return;
  }

  // Deadline check at dequeue: work that expired while queued is shed,
  // not run — running it would burn a server on a result nobody can use.
  if (task.request.deadline_seconds > 0.0 &&
      queue_seconds >= task.request.deadline_seconds) {
    Outcome o;
    o.state = TerminalState::kShed;
    o.shed_reason = ShedReason::kDeadlineExpired;
    o.queue_seconds = queue_seconds;
    resolve(task, std::move(o));
    return;
  }

  resolve(task, execute(task, queue_seconds));
}

Outcome BenchmarkService::execute(Task& task, double queue_seconds) {
  Outcome o;
  o.queue_seconds = queue_seconds;
  const double run_start = now();

  MeasurementConfig cfg = config_.measurement;
  if (task.request.deadline_seconds > 0.0) {
    // What survives of the end-to-end budget bounds the run: the
    // existing watchdog (run_with_deadline inside the runner) enforces
    // it, so a kernel that outlives its budget fails with a structured
    // timeout instead of hanging a server.
    cfg.deadline_seconds = task.request.deadline_seconds - queue_seconds;
  }
  {
    std::lock_guard lock(stats_mu_);
    ++stats_.workloads_run;
  }
  try {
    const BenchmarkRunner runner(cfg);
    o.measurement = runner.run(task.request.workload_key,
                               task.request.kernel);
    o.state = TerminalState::kCompleted;
  } catch (const MeasurementError& e) {
    o.state = TerminalState::kFailed;
    o.error = e.what();
    o.failure_kind = e.kind();
  } catch (const std::exception& e) {
    o.state = TerminalState::kFailed;
    o.error = e.what();
    o.failure_kind = resilience::FailureKind::kFault;
  } catch (...) {
    o.state = TerminalState::kFailed;
    o.error = "non-exception failure";
    o.failure_kind = resilience::FailureKind::kFault;
  }
  o.run_seconds = now() - run_start;
  return o;
}

void BenchmarkService::resolve(Task& task, Outcome outcome) {
  CircuitBreaker& breaker = breaker_for(task.request.tenant);
  {
    std::lock_guard lock(stats_mu_);
    switch (outcome.state) {
      case TerminalState::kCompleted: ++stats_.completed; break;
      case TerminalState::kFailed: ++stats_.failed; break;
      case TerminalState::kShed:
        ++(outcome.shed_reason == ShedReason::kDeadlineExpired
               ? stats_.shed_deadline
               : stats_.shed_shutdown_queued);
        break;
    }
  }
  switch (outcome.state) {
    case TerminalState::kCompleted: breaker.on_success(); break;
    case TerminalState::kFailed: breaker.on_failure(); break;
    case TerminalState::kShed: breaker.on_abandoned(); break;
  }
  if (task.cached) {
    cache_.complete(config_.calibration_hash, task.request.workload_key,
                    outcome);
  } else {
    task.own_promise.set_value(std::move(outcome));
  }
}

}  // namespace pe::service
