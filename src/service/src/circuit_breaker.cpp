#include "perfeng/service/circuit_breaker.hpp"

#include <chrono>

namespace pe::service {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void validate(const CircuitBreakerConfig& config) {
  PE_REQUIRE(config.failure_threshold >= 1,
             "failure threshold must be positive");
  PE_REQUIRE(config.half_open_probes >= 1,
             "need at least one half-open probe");
  PE_REQUIRE(config.successes_to_close >= 1,
             "need at least one success to close");
  resilience::validate(config.cooldown);
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config, Clock now)
    : config_(config),
      now_(now ? std::move(now) : Clock(&steady_seconds)),
      cooldowns_(config.cooldown) {
  validate(config_);
}

void CircuitBreaker::trip_locked() {
  state_ = State::kOpen;
  ++trips_;
  consecutive_failures_ = 0;
  probes_in_flight_ = 0;
  probe_successes_ = 0;
  // Successive trips back off longer (the schedule grows and jitters);
  // a full recovery (close) resets the schedule to the base cooldown.
  open_until_ = now_() + cooldowns_.next();
}

void CircuitBreaker::refresh_locked() {
  if (state_ == State::kOpen && now_() >= open_until_) {
    state_ = State::kHalfOpen;
    probes_in_flight_ = 0;
    probe_successes_ = 0;
  }
}

bool CircuitBreaker::allow() {
  std::lock_guard lock(mu_);
  refresh_locked();
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      return false;
    case State::kHalfOpen:
      if (probes_in_flight_ >= config_.half_open_probes) return false;
      ++probes_in_flight_;
      return true;
  }
  return false;  // unreachable
}

void CircuitBreaker::on_success() {
  std::lock_guard lock(mu_);
  refresh_locked();
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      return;
    case State::kOpen:
      // A result from before the trip; the cooldown stands.
      return;
    case State::kHalfOpen:
      if (++probe_successes_ >= config_.successes_to_close) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
        probes_in_flight_ = 0;
        probe_successes_ = 0;
        cooldowns_.reset();
      }
      return;
  }
}

void CircuitBreaker::on_failure() {
  std::lock_guard lock(mu_);
  refresh_locked();
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold)
        trip_locked();
      return;
    case State::kOpen:
      // A result from before the trip; the cooldown stands.
      return;
    case State::kHalfOpen:
      trip_locked();  // the probe failed: re-open, longer cooldown
      return;
  }
}

void CircuitBreaker::on_abandoned() {
  std::lock_guard lock(mu_);
  refresh_locked();
  if (state_ == State::kHalfOpen && probes_in_flight_ > 0)
    --probes_in_flight_;
}

CircuitBreaker::State CircuitBreaker::state() {
  std::lock_guard lock(mu_);
  refresh_locked();
  return state_;
}

int CircuitBreaker::consecutive_failures() {
  std::lock_guard lock(mu_);
  return consecutive_failures_;
}

std::size_t CircuitBreaker::trips() {
  std::lock_guard lock(mu_);
  return trips_;
}

const char* to_string(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "?";
}

}  // namespace pe::service
