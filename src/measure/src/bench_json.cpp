#include "perfeng/measure/bench_json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "perfeng/common/error.hpp"

namespace pe {

namespace {

/// JSON-safe number rendering: 6 significant digits, integral values
/// without a fractional part, non-finite values as null (JSON has no NaN).
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string json_string(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

BenchReport::BenchReport(std::string bench) : bench_(std::move(bench)) {
  PE_REQUIRE(!bench_.empty(), "bench report needs a name");
}

void BenchReport::set_machine(const machine::Machine& m) {
  machine_name_ = m.name;
  calibration_hash_ = m.calibration_hash();
}

void BenchReport::set_machine(std::string name, std::string calibration_hash) {
  machine_name_ = std::move(name);
  calibration_hash_ = std::move(calibration_hash);
}

void BenchReport::set_context(const std::string& key, double value) {
  PE_REQUIRE(!key.empty(), "context key must be non-empty");
  for (auto& [k, v] : context_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  context_.emplace_back(key, value);
}

void BenchReport::add_metric(const std::string& name, const std::string& unit,
                             std::vector<double> samples) {
  PE_REQUIRE(!name.empty(), "metric needs a name");
  PE_REQUIRE(!samples.empty(), "metric needs at least one sample");
  BenchMetric m;
  m.name = name;
  m.unit = unit;
  m.summary = summarize(samples);
  m.samples = std::move(samples);
  metrics_.push_back(std::move(m));
}

void BenchReport::add_scalar(const std::string& name, const std::string& unit,
                             double value) {
  add_metric(name, unit, std::vector<double>{value});
}

std::string BenchReport::to_json() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"schema\": \"pe-bench-v1\",\n";
  out << "  \"bench\": " << json_string(bench_) << ",\n";
  out << "  \"machine\": " << json_string(machine_name_) << ",\n";
  out << "  \"calibration_hash\": " << json_string(calibration_hash_)
      << ",\n";
  out << "  \"context\": {";
  for (std::size_t i = 0; i < context_.size(); ++i) {
    if (i) out << ", ";
    out << json_string(context_[i].first) << ": "
        << json_number(context_[i].second);
  }
  out << "},\n";
  out << "  \"metrics\": [";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    const BenchMetric& m = metrics_[i];
    out << (i ? ",\n    {" : "\n    {");
    out << "\"name\": " << json_string(m.name)
        << ", \"unit\": " << json_string(m.unit) << ",\n";
    out << "     \"mean\": " << json_number(m.summary.mean)
        << ", \"median\": " << json_number(m.summary.median)
        << ", \"min\": " << json_number(m.summary.min)
        << ", \"max\": " << json_number(m.summary.max)
        << ", \"stddev\": " << json_number(m.summary.stddev)
        << ", \"p05\": " << json_number(m.summary.p05)
        << ", \"p95\": " << json_number(m.summary.p95) << ",\n";
    out << "     \"samples\": [";
    for (std::size_t s = 0; s < m.samples.size(); ++s) {
      if (s) out << ", ";
      out << json_number(m.samples[s]);
    }
    out << "]}";
  }
  out << (metrics_.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

void BenchReport::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  PE_REQUIRE(static_cast<bool>(out), "cannot open bench report for writing");
  out << to_json();
  PE_REQUIRE(static_cast<bool>(out), "short write of bench report");
}

}  // namespace pe
