#include "perfeng/measure/timer.hpp"

#include <algorithm>
#include <vector>

namespace pe {

double estimate_timer_resolution(int probes) {
  std::vector<double> deltas;
  deltas.reserve(static_cast<std::size_t>(probes));
  for (int i = 0; i < probes; ++i) {
    const auto t0 = WallTimer::clock::now();
    auto t1 = WallTimer::clock::now();
    while (t1 == t0) t1 = WallTimer::clock::now();
    deltas.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  std::sort(deltas.begin(), deltas.end());
  return deltas[deltas.size() / 2];
}

}  // namespace pe
