#include "perfeng/measure/benchmark_runner.hpp"

#include "perfeng/common/error.hpp"
#include "perfeng/common/fault_hook.hpp"
#include "perfeng/resilience/measurement_error.hpp"
#include "perfeng/resilience/watchdog.hpp"

namespace pe {

using resilience::FailureKind;
using resilience::MeasurementError;

BenchmarkRunner::BenchmarkRunner(MeasurementConfig config)
    : config_(config) {
  PE_REQUIRE(config_.warmup_runs >= 0, "negative warmup count");
  PE_REQUIRE(config_.repetitions >= 1, "need at least one repetition");
  PE_REQUIRE(config_.min_batch_seconds > 0.0, "batch time must be positive");
  PE_REQUIRE(config_.max_batch_iterations >= 1, "batch cap must be positive");
  PE_REQUIRE(config_.deadline_seconds >= 0.0,
             "deadline must be non-negative");
  resilience::validate(config_.retry);
}

std::size_t BenchmarkRunner::calibrate_batch(
    const MeasurementConfig& config, const std::string& label,
    const std::function<void()>& kernel, const WallTimer& attempt_timer) {
  // Double the batch size until one batch takes at least min_batch_seconds.
  std::size_t batch = 1;
  for (;;) {
    WallTimer t;
    for (std::size_t i = 0; i < batch; ++i) kernel();
    const double elapsed = t.elapsed();
    if (elapsed >= config.min_batch_seconds ||
        batch >= config.max_batch_iterations) {
      return batch;
    }
    // Jump straight to the projected size when we have signal, else double.
    std::size_t next;
    if (elapsed > 0.0) {
      const double scale = config.min_batch_seconds / elapsed;
      const auto projected =
          static_cast<std::size_t>(static_cast<double>(batch) * scale * 1.2) +
          1;
      next = std::min(std::max(projected, batch * 2),
                      config.max_batch_iterations);
    } else {
      next = std::min(batch * 2, config.max_batch_iterations);
    }
    // Predictive deadline check: refuse to launch a probe batch whose
    // projected runtime would blow the budget. This aborts on the caller's
    // thread *before* the watchdog expires, so a slow-but-terminating
    // kernel fails cleanly instead of being abandoned mid-batch.
    if (config.deadline_seconds > 0.0 && elapsed > 0.0) {
      const double per_iteration = elapsed / static_cast<double>(batch);
      const double predicted =
          per_iteration * static_cast<double>(next);
      if (attempt_timer.elapsed() + predicted > config.deadline_seconds) {
        throw MeasurementError(
            FailureKind::kTimeout, label, /*attempts=*/1,
            attempt_timer.elapsed(),
            "batch calibration at size " + std::to_string(batch) +
                " projects " + std::to_string(predicted) +
                " s for the next probe, exceeding the deadline");
      }
    }
    batch = next;
  }
}

Measurement BenchmarkRunner::measure_with_policy(
    const std::string& label,
    const std::function<Measurement()>& attempt) const {
  const resilience::RetryPolicy& retry = config_.retry;
  const WallTimer total;
  Measurement m;
  // The schedule reproduces backoff_seconds() exactly for un-jittered
  // policies and adds seeded decorrelated jitter when asked for.
  resilience::BackoffSchedule backoff(retry);
  for (int attempt_no = 1;; ++attempt_no) {
    if (attempt_no > 1) resilience::sleep_for_seconds(backoff.next());
    try {
      if (config_.deadline_seconds > 0.0) {
        // The watchdog copies `attempt` into heap state co-owned by its
        // helper thread; the result comes back by value. Nothing the
        // abandoned thread touches lives on this (unwindable) stack.
        m = resilience::run_with_deadline(config_.deadline_seconds, attempt,
                                          label);
      } else {
        m = attempt();
      }
    } catch (const MeasurementError& e) {
      // Re-tag watchdog/calibration aborts with the true attempt count.
      throw MeasurementError(e.kind(), label, attempt_no, total.elapsed(),
                             e.detail());
    }
    m.attempts = attempt_no;
    m.stable =
        retry.max_attempts <= 1 || m.summary.cv <= retry.cv_threshold;
    if (m.stable) return m;
    if (attempt_no >= retry.max_attempts) {
      if (retry.fail_on_unstable) {
        throw MeasurementError(
            FailureKind::kUnstable, label, attempt_no, total.elapsed(),
            "sample CV " + std::to_string(m.summary.cv) +
                " still above threshold " +
                std::to_string(retry.cv_threshold));
      }
      return m;  // degrade: hand back the last attempt, flagged unstable
    }
  }
}

Measurement BenchmarkRunner::run(const std::string& label,
                                 const std::function<void()>& kernel) const {
  PE_REQUIRE(static_cast<bool>(kernel), "null kernel");
  // The attempt captures everything it touches by value: on a watchdog
  // timeout it keeps executing on an abandoned thread after this frame —
  // and possibly the runner itself — is gone.
  return measure_with_policy(label, [config = config_, label,
                                     kernel]() -> Measurement {
    const auto guarded = [&kernel] {
      fault_point(fault_sites::kKernelCall);
      kernel();
    };
    const WallTimer attempt_timer;
    for (int i = 0; i < config.warmup_runs; ++i) guarded();

    Measurement m;
    m.label = label;
    m.batch_iterations = calibrate_batch(config, label, guarded, attempt_timer);
    m.seconds.reserve(static_cast<std::size_t>(config.repetitions));
    for (int rep = 0; rep < config.repetitions; ++rep) {
      WallTimer t;
      for (std::size_t i = 0; i < m.batch_iterations; ++i) guarded();
      const double per_iteration =
          t.elapsed() / static_cast<double>(m.batch_iterations);
      m.seconds.push_back(
          fault_value(fault_sites::kKernelCall, per_iteration));
    }
    m.summary = summarize(m.seconds);
    return m;
  });
}

Measurement BenchmarkRunner::run_with_setup(
    const std::string& label, const std::function<void()>& setup,
    const std::function<void()>& kernel) const {
  PE_REQUIRE(static_cast<bool>(setup), "null setup");
  PE_REQUIRE(static_cast<bool>(kernel), "null kernel");
  // By-value captures for the same reason as run(): the watchdog may
  // abandon this attempt mid-flight after the caller's stack unwinds.
  return measure_with_policy(label, [config = config_, label, setup,
                                     kernel]() -> Measurement {
    const auto guarded = [&kernel] {
      fault_point(fault_sites::kKernelCall);
      kernel();
    };
    // Setup must precede every timed execution (e.g. re-randomizing an input
    // that the kernel mutates); batching is therefore fixed at one iteration
    // and the repetition count is raised to compensate.
    for (int i = 0; i < config.warmup_runs; ++i) {
      setup();
      guarded();
    }
    Measurement m;
    m.label = label;
    m.batch_iterations = 1;
    const int reps = config.repetitions;
    m.seconds.reserve(static_cast<std::size_t>(reps));
    for (int rep = 0; rep < reps; ++rep) {
      setup();
      WallTimer t;
      guarded();
      m.seconds.push_back(fault_value(fault_sites::kKernelCall, t.elapsed()));
    }
    m.summary = summarize(m.seconds);
    return m;
  });
}

}  // namespace pe
