#include "perfeng/measure/benchmark_runner.hpp"

#include "perfeng/common/error.hpp"
#include "perfeng/measure/timer.hpp"

namespace pe {

BenchmarkRunner::BenchmarkRunner(MeasurementConfig config)
    : config_(config) {
  PE_REQUIRE(config_.warmup_runs >= 0, "negative warmup count");
  PE_REQUIRE(config_.repetitions >= 1, "need at least one repetition");
  PE_REQUIRE(config_.min_batch_seconds > 0.0, "batch time must be positive");
  PE_REQUIRE(config_.max_batch_iterations >= 1, "batch cap must be positive");
}

std::size_t BenchmarkRunner::calibrate_batch(
    const std::function<void()>& kernel) const {
  // Double the batch size until one batch takes at least min_batch_seconds.
  std::size_t batch = 1;
  for (;;) {
    WallTimer t;
    for (std::size_t i = 0; i < batch; ++i) kernel();
    const double elapsed = t.elapsed();
    if (elapsed >= config_.min_batch_seconds ||
        batch >= config_.max_batch_iterations) {
      return batch;
    }
    // Jump straight to the projected size when we have signal, else double.
    if (elapsed > 0.0) {
      const double scale = config_.min_batch_seconds / elapsed;
      const auto projected =
          static_cast<std::size_t>(static_cast<double>(batch) * scale * 1.2) +
          1;
      batch = std::min(std::max(projected, batch * 2),
                       config_.max_batch_iterations);
    } else {
      batch = std::min(batch * 2, config_.max_batch_iterations);
    }
  }
}

Measurement BenchmarkRunner::run(const std::string& label,
                                 const std::function<void()>& kernel) const {
  PE_REQUIRE(static_cast<bool>(kernel), "null kernel");
  for (int i = 0; i < config_.warmup_runs; ++i) kernel();

  Measurement m;
  m.label = label;
  m.batch_iterations = calibrate_batch(kernel);
  m.seconds.reserve(static_cast<std::size_t>(config_.repetitions));
  for (int rep = 0; rep < config_.repetitions; ++rep) {
    WallTimer t;
    for (std::size_t i = 0; i < m.batch_iterations; ++i) kernel();
    m.seconds.push_back(t.elapsed() /
                        static_cast<double>(m.batch_iterations));
  }
  m.summary = summarize(m.seconds);
  return m;
}

Measurement BenchmarkRunner::run_with_setup(
    const std::string& label, const std::function<void()>& setup,
    const std::function<void()>& kernel) const {
  PE_REQUIRE(static_cast<bool>(setup), "null setup");
  PE_REQUIRE(static_cast<bool>(kernel), "null kernel");

  // Setup must precede every timed execution (e.g. re-randomizing an input
  // that the kernel mutates); batching is therefore fixed at one iteration
  // and the repetition count is raised to compensate.
  for (int i = 0; i < config_.warmup_runs; ++i) {
    setup();
    kernel();
  }
  Measurement m;
  m.label = label;
  m.batch_iterations = 1;
  const int reps = config_.repetitions;
  m.seconds.reserve(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    setup();
    WallTimer t;
    kernel();
    m.seconds.push_back(t.elapsed());
  }
  m.summary = summarize(m.seconds);
  return m;
}

}  // namespace pe
