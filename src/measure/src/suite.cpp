#include "perfeng/measure/suite.hpp"

#include <cmath>

#include "perfeng/common/error.hpp"

namespace pe {

std::vector<std::string> SuiteScore::regressions() const {
  std::vector<std::string> out;
  for (const SuiteResult& r : results)
    if (r.ratio < 1.0) out.push_back(r.name);
  return out;
}

BenchmarkSuite::BenchmarkSuite(std::string name) : name_(std::move(name)) {
  PE_REQUIRE(!name_.empty(), "suite needs a name");
}

void BenchmarkSuite::add(SuiteBenchmark benchmark) {
  PE_REQUIRE(!benchmark.name.empty(), "member needs a name");
  PE_REQUIRE(static_cast<bool>(benchmark.kernel), "member needs a kernel");
  PE_REQUIRE(benchmark.reference_seconds > 0.0,
             "reference time must be positive");
  require_unique_name(members_, benchmark.name, "benchmark");
  members_.push_back(std::move(benchmark));
}

void BenchmarkSuite::set_machine(const machine::Machine& m) {
  m.check();
  machine_name_ = m.name;
  calibration_hash_ = m.calibration_hash();
}

SuiteScore BenchmarkSuite::score_survivors(
    const std::vector<std::pair<std::size_t, double>>& survivors) const {
  SuiteScore score;
  double log_acc = 0.0, acc = 0.0;
  for (const auto& [index, seconds] : survivors) {
    PE_REQUIRE(seconds > 0.0, "measured time must be positive");
    PE_ASSERT(index < members_.size(), "survivor is not a suite member");
    const SuiteBenchmark& member = members_[index];
    SuiteResult r;
    r.name = member.name;
    r.seconds = seconds;
    r.ratio = member.reference_seconds / seconds;
    log_acc += std::log(r.ratio);
    acc += r.ratio;
    score.results.push_back(std::move(r));
  }
  if (!score.results.empty()) {
    const double n = static_cast<double>(score.results.size());
    score.geometric_mean_ratio = std::exp(log_acc / n);
    score.arithmetic_mean_ratio = acc / n;
  }
  score.machine_name = machine_name_;
  score.calibration_hash = calibration_hash_;
  return score;
}

SuiteScore BenchmarkSuite::score(
    const std::vector<double>& measured_seconds) const {
  PE_REQUIRE(measured_seconds.size() == members_.size(),
             "one measurement per member required");
  PE_REQUIRE(!members_.empty(), "empty suite");
  std::vector<std::pair<std::size_t, double>> survivors;
  survivors.reserve(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i)
    survivors.emplace_back(i, measured_seconds[i]);
  return score_survivors(survivors);
}

SuiteScore BenchmarkSuite::run(const BenchmarkRunner& runner) const {
  PE_REQUIRE(!members_.empty(), "empty suite");
  std::vector<std::pair<std::size_t, double>> survivors;
  std::vector<SuiteFailure> failed;
  survivors.reserve(members_.size());
  for (std::size_t i = 0; i < members_.size(); ++i) {
    const SuiteBenchmark& m = members_[i];
    try {
      survivors.emplace_back(i, runner.run(m.name, m.kernel).typical());
    } catch (const std::exception& e) {
      // Graceful degradation: record the casualty, keep the campaign going.
      failed.push_back({m.name, e.what()});
    }
  }
  SuiteScore score = score_survivors(survivors);
  score.failed = std::move(failed);
  return score;
}

}  // namespace pe
