#include "perfeng/measure/suite.hpp"

#include <cmath>

#include "perfeng/common/error.hpp"

namespace pe {

std::vector<std::string> SuiteScore::regressions() const {
  std::vector<std::string> out;
  for (const SuiteResult& r : results)
    if (r.ratio < 1.0) out.push_back(r.name);
  return out;
}

BenchmarkSuite::BenchmarkSuite(std::string name) : name_(std::move(name)) {
  PE_REQUIRE(!name_.empty(), "suite needs a name");
}

void BenchmarkSuite::add(SuiteBenchmark benchmark) {
  PE_REQUIRE(static_cast<bool>(benchmark.kernel), "member needs a kernel");
  PE_REQUIRE(benchmark.reference_seconds > 0.0,
             "reference time must be positive");
  for (const auto& m : members_)
    PE_REQUIRE(m.name != benchmark.name, "duplicate benchmark name");
  members_.push_back(std::move(benchmark));
}

SuiteScore BenchmarkSuite::score(
    const std::vector<double>& measured_seconds) const {
  PE_REQUIRE(measured_seconds.size() == members_.size(),
             "one measurement per member required");
  PE_REQUIRE(!members_.empty(), "empty suite");
  SuiteScore score;
  double log_acc = 0.0, acc = 0.0;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    PE_REQUIRE(measured_seconds[i] > 0.0, "measured time must be positive");
    SuiteResult r;
    r.name = members_[i].name;
    r.seconds = measured_seconds[i];
    r.ratio = members_[i].reference_seconds / measured_seconds[i];
    log_acc += std::log(r.ratio);
    acc += r.ratio;
    score.results.push_back(std::move(r));
  }
  const double n = static_cast<double>(members_.size());
  score.geometric_mean_ratio = std::exp(log_acc / n);
  score.arithmetic_mean_ratio = acc / n;
  return score;
}

SuiteScore BenchmarkSuite::run(const BenchmarkRunner& runner) const {
  PE_REQUIRE(!members_.empty(), "empty suite");
  std::vector<double> measured;
  measured.reserve(members_.size());
  for (const auto& m : members_)
    measured.push_back(runner.run(m.name, m.kernel).typical());
  return score(measured);
}

}  // namespace pe
