#include "perfeng/measure/experiment.hpp"

#include <limits>

#include "perfeng/common/error.hpp"

namespace pe {

Experiment::Experiment(std::string name) : name_(std::move(name)) {
  PE_REQUIRE(!name_.empty(), "experiment needs a name");
}

void Experiment::add_factor(const std::string& name,
                            std::vector<std::string> levels) {
  PE_REQUIRE(!levels.empty(), "factor needs at least one level");
  require_unique_name(factors_, name, "factor");
  factors_.push_back({name, std::move(levels)});
}

void Experiment::set_machine(const machine::Machine& m) {
  m.check();
  machine_name_ = m.name;
  calibration_hash_ = m.calibration_hash();
}

void Experiment::set_provenance(const std::string& key, std::string value) {
  PE_REQUIRE(!key.empty(), "provenance key must be non-empty");
  for (auto& [k, v] : provenance_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  provenance_.emplace_back(key, std::move(value));
}

std::string Experiment::provenance(const std::string& key) const {
  for (const auto& [k, v] : provenance_)
    if (k == key) return v;
  return {};
}

void Experiment::set_metrics(std::vector<std::string> metric_names) {
  PE_REQUIRE(!metric_names.empty(), "need at least one metric");
  metrics_ = std::move(metric_names);
}

std::size_t Experiment::design_size() const {
  std::size_t n = 1;
  for (const auto& f : factors_) n *= f.levels.size();
  return factors_.empty() ? 0 : n;
}

std::vector<DesignPoint> Experiment::design() const {
  std::vector<DesignPoint> points;
  if (factors_.empty()) return points;
  points.reserve(design_size());
  std::vector<std::size_t> idx(factors_.size(), 0);
  for (;;) {
    DesignPoint p;
    for (std::size_t f = 0; f < factors_.size(); ++f)
      p[factors_[f].name] = factors_[f].levels[idx[f]];
    points.push_back(std::move(p));
    // odometer increment, last factor fastest
    std::size_t f = factors_.size();
    while (f > 0) {
      --f;
      if (++idx[f] < factors_[f].levels.size()) break;
      idx[f] = 0;
      if (f == 0) return points;
    }
  }
}

void Experiment::record(const DesignPoint& point,
                        const std::vector<double>& values) {
  PE_REQUIRE(values.size() == metrics_.size(),
             "metric count mismatch with set_metrics()");
  for (const auto& f : factors_)
    PE_REQUIRE(point.contains(f.name), "design point missing factor");
  rows_.push_back({point, values, /*error=*/{}});
}

void Experiment::record_failure(const DesignPoint& point, std::string error) {
  PE_REQUIRE(!metrics_.empty(), "set_metrics() before recording");
  for (const auto& f : factors_)
    PE_REQUIRE(point.contains(f.name), "design point missing factor");
  const std::vector<double> nan_row(
      metrics_.size(), std::numeric_limits<double>::quiet_NaN());
  rows_.push_back({point, nan_row, std::move(error)});
}

void Experiment::run(
    const std::function<std::vector<double>(const DesignPoint&)>& body) {
  PE_REQUIRE(static_cast<bool>(body), "null body");
  for (const auto& point : design()) {
    std::vector<double> values;
    try {
      values = body(point);
    } catch (const std::exception& e) {
      // Graceful degradation: one failed point must not abort the sweep.
      record_failure(point, e.what());
      continue;
    }
    record(point, values);
  }
}

Table Experiment::to_table() const {
  const bool any_failed = failure_count() > 0;
  const bool has_machine = !machine_name_.empty();
  std::vector<std::string> headers;
  for (const auto& f : factors_) headers.push_back(f.name);
  for (const auto& m : metrics_) headers.push_back(m);
  if (any_failed) headers.push_back("error");
  if (has_machine) {
    headers.push_back("machine");
    headers.push_back("calibration");
  }
  for (const auto& [key, value] : provenance_) headers.push_back(key);
  Table t(headers);
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    for (const auto& f : factors_) cells.push_back(row.point.at(f.name));
    for (double v : row.values) cells.push_back(format_sig(v, 4));
    if (any_failed) cells.push_back(row.error);
    if (has_machine) {
      cells.push_back(machine_name_);
      cells.push_back(calibration_hash_);
    }
    for (const auto& [key, value] : provenance_) cells.push_back(value);
    t.add_row(std::move(cells));
  }
  return t;
}

std::size_t Experiment::failure_count() const {
  std::size_t n = 0;
  for (const auto& row : rows_)
    if (!row.error.empty()) ++n;
  return n;
}

std::vector<std::pair<DesignPoint, std::string>> Experiment::failures() const {
  std::vector<std::pair<DesignPoint, std::string>> out;
  for (const auto& row : rows_)
    if (!row.error.empty()) out.emplace_back(row.point, row.error);
  return out;
}

std::vector<double> Experiment::metric_values(const std::string& metric) const {
  std::size_t idx = metrics_.size();
  for (std::size_t i = 0; i < metrics_.size(); ++i)
    if (metrics_[i] == metric) idx = i;
  PE_REQUIRE(idx < metrics_.size(), "unknown metric name");
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) out.push_back(row.values[idx]);
  return out;
}

}  // namespace pe
