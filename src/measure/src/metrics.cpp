#include "perfeng/measure/metrics.hpp"

#include <cmath>

#include "perfeng/common/error.hpp"

namespace pe {

double flops_rate(double flop_count, double seconds) {
  PE_REQUIRE(seconds > 0.0, "elapsed time must be positive");
  PE_REQUIRE(flop_count >= 0.0, "negative flop count");
  return flop_count / seconds;
}

double bandwidth(double bytes, double seconds) {
  PE_REQUIRE(seconds > 0.0, "elapsed time must be positive");
  PE_REQUIRE(bytes >= 0.0, "negative byte count");
  return bytes / seconds;
}

double arithmetic_intensity(double flop_count, double bytes) {
  PE_REQUIRE(bytes > 0.0, "traffic must be positive");
  PE_REQUIRE(flop_count >= 0.0, "negative flop count");
  return flop_count / bytes;
}

double speedup(double baseline_seconds, double improved_seconds) {
  PE_REQUIRE(baseline_seconds > 0.0, "baseline time must be positive");
  PE_REQUIRE(improved_seconds > 0.0, "improved time must be positive");
  return baseline_seconds / improved_seconds;
}

double parallel_efficiency(double speedup_value, int workers) {
  PE_REQUIRE(workers >= 1, "worker count must be positive");
  PE_REQUIRE(speedup_value > 0.0, "speedup must be positive");
  return speedup_value / static_cast<double>(workers);
}

double relative_error(double predicted, double observed) {
  PE_REQUIRE(observed != 0.0, "observed value must be non-zero");
  return (predicted - observed) / observed;
}

double mape(std::span<const double> predicted,
            std::span<const double> observed) {
  PE_REQUIRE(predicted.size() == observed.size(), "length mismatch");
  PE_REQUIRE(!predicted.empty(), "empty sample");
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    PE_REQUIRE(observed[i] != 0.0, "observed value must be non-zero");
    acc += std::abs((predicted[i] - observed[i]) / observed[i]);
  }
  return acc / static_cast<double>(predicted.size());
}

double rmse(std::span<const double> predicted,
            std::span<const double> observed) {
  PE_REQUIRE(predicted.size() == observed.size(), "length mismatch");
  PE_REQUIRE(!predicted.empty(), "empty sample");
  double acc = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted[i] - observed[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(predicted.size()));
}

double r_squared(std::span<const double> predicted,
                 std::span<const double> observed) {
  PE_REQUIRE(predicted.size() == observed.size(), "length mismatch");
  PE_REQUIRE(predicted.size() >= 2, "need at least two points");
  double mean_obs = 0.0;
  for (double o : observed) mean_obs += o;
  mean_obs /= static_cast<double>(observed.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    ss_res += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
    ss_tot += (observed[i] - mean_obs) * (observed[i] - mean_obs);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace pe
