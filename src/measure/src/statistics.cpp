#include "perfeng/measure/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "perfeng/common/error.hpp"

namespace pe {

namespace {

std::vector<double> sorted(std::span<const double> xs) {
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  return v;
}

double percentile_sorted(const std::vector<double>& v, double q) {
  PE_REQUIRE(!v.empty(), "percentile of empty sample");
  PE_REQUIRE(q >= 0.0 && q <= 100.0, "percentile out of [0,100]");
  if (v.size() == 1) return v[0];
  const double rank = q / 100.0 * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

}  // namespace

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double median(std::span<const double> xs) {
  PE_REQUIRE(!xs.empty(), "median of empty sample");
  return percentile_sorted(sorted(xs), 50.0);
}

double percentile(std::span<const double> xs, double q) {
  return percentile_sorted(sorted(xs), q);
}

double median_abs_deviation(std::span<const double> xs) {
  PE_REQUIRE(!xs.empty(), "MAD of empty sample");
  const double m = median(xs);
  std::vector<double> dev(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) dev[i] = std::abs(xs[i] - m);
  return median(dev);
}

double geometric_mean(std::span<const double> xs) {
  PE_REQUIRE(!xs.empty(), "geometric mean of empty sample");
  double log_acc = 0.0;
  for (double x : xs) {
    PE_REQUIRE(x > 0.0, "geometric mean requires positive values");
    log_acc += std::log(x);
  }
  return std::exp(log_acc / static_cast<double>(xs.size()));
}

double harmonic_mean(std::span<const double> xs) {
  PE_REQUIRE(!xs.empty(), "harmonic mean of empty sample");
  double acc = 0.0;
  for (double x : xs) {
    PE_REQUIRE(x > 0.0, "harmonic mean requires positive values");
    acc += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / acc;
}

double t_critical_95(std::size_t dof) {
  // Two-sided 95% critical values; exact table for small dof, asymptote for
  // large dof. Linear interpolation between tabulated points above 30.
  static constexpr double table[] = {
      0,      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
      2.262,  2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110,
      2.101,  2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
      2.052,  2.048,  2.045, 2.042};
  if (dof == 0) return 0.0;
  if (dof <= 30) return table[dof];
  if (dof >= 120) return 1.980;
  // between 30 and 120: interpolate toward the large-sample value.
  const double t30 = 2.042, t120 = 1.980;
  const double frac =
      (static_cast<double>(dof) - 30.0) / (120.0 - 30.0);
  return t30 + frac * (t120 - t30);
}

double ci95_halfwidth(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double s = stddev(xs);
  const double t = t_critical_95(xs.size() - 1);
  return t * s / std::sqrt(static_cast<double>(xs.size()));
}

double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) {
  PE_REQUIRE(xs.size() == ys.size(), "correlation needs equal lengths");
  PE_REQUIRE(xs.size() >= 2, "correlation needs at least two points");
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

LineFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  PE_REQUIRE(xs.size() == ys.size(), "fit needs equal lengths");
  PE_REQUIRE(xs.size() >= 2, "fit needs at least two points");
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx, dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  PE_REQUIRE(sxx > 0.0, "fit needs x variance");
  LineFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

SampleSummary summarize(std::span<const double> xs) {
  SampleSummary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  const std::vector<double> v = sorted(xs);
  s.min = v.front();
  s.max = v.back();
  s.mean = mean(xs);
  s.median = percentile_sorted(v, 50.0);
  s.stddev = stddev(xs);
  s.mad = median_abs_deviation(xs);
  s.p05 = percentile_sorted(v, 5.0);
  s.p95 = percentile_sorted(v, 95.0);
  s.ci95_half = ci95_halfwidth(xs);
  s.cv = coefficient_of_variation(xs);
  return s;
}

double coefficient_of_variation(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

std::vector<double> filter_outliers(std::span<const double> xs, double k) {
  PE_REQUIRE(k >= 0.0, "fence multiplier must be non-negative");
  if (xs.size() < 4) return {xs.begin(), xs.end()};  // quartiles undefined
  const double q1 = percentile(xs, 25.0);
  const double q3 = percentile(xs, 75.0);
  const double iqr = q3 - q1;
  const double lo = q1 - k * iqr;
  const double hi = q3 + k * iqr;
  std::vector<double> kept;
  kept.reserve(xs.size());
  for (double x : xs) {
    if (x >= lo && x <= hi) kept.push_back(x);
  }
  return kept;
}

ComparisonResult compare_samples(std::span<const double> a,
                                 std::span<const double> b) {
  PE_REQUIRE(a.size() >= 2 && b.size() >= 2,
             "each sample needs at least two points");
  const double mean_a = mean(a), mean_b = mean(b);
  const double var_a = stddev(a) * stddev(a);
  const double var_b = stddev(b) * stddev(b);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());

  ComparisonResult r;
  r.mean_difference = mean_b - mean_a;
  r.relative_change = mean_a != 0.0 ? r.mean_difference / mean_a : 0.0;

  const double se2 = var_a / na + var_b / nb;
  if (se2 == 0.0) {
    // Zero variance on both sides: any nonzero difference is exact.
    r.significant = r.mean_difference != 0.0;
    r.dof = na + nb - 2.0;
    return r;
  }
  const double se = std::sqrt(se2);
  r.t_statistic = r.mean_difference / se;
  // Welch–Satterthwaite degrees of freedom.
  const double num = se2 * se2;
  const double den = (var_a / na) * (var_a / na) / (na - 1.0) +
                     (var_b / nb) * (var_b / nb) / (nb - 1.0);
  r.dof = den > 0.0 ? num / den : na + nb - 2.0;
  const double t_crit =
      t_critical_95(static_cast<std::size_t>(std::max(1.0, r.dof)));
  r.ci95_half = t_crit * se;
  r.significant = std::abs(r.mean_difference) > r.ci95_half;
  return r;
}

}  // namespace pe
