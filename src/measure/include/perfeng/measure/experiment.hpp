#pragma once

/// \file experiment.hpp
/// Experimental design: factor sweeps and result recording.
///
/// "Do not underestimate empirical analysis efforts" (Lesson 3): most student
/// time is lost to ad-hoc sweep scripts. `Experiment` makes a sweep an
/// object — declare factors, enumerate the full-factorial design, record one
/// row of metrics per design point, then render the result table or CSV in
/// one call.

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "perfeng/common/table.hpp"
#include "perfeng/machine/machine.hpp"

namespace pe {

/// One factor of an experiment: a name plus the levels to sweep.
struct Factor {
  std::string name;
  std::vector<std::string> levels;
};

/// A single design point: factor name -> chosen level.
using DesignPoint = std::map<std::string, std::string>;

/// Full-factorial experiment with named response metrics.
class Experiment {
 public:
  explicit Experiment(std::string name);

  /// Add a factor with string levels (order preserved in enumeration).
  void add_factor(const std::string& name, std::vector<std::string> levels);

  /// Convenience: any arithmetic level type, formatted via std::to_string.
  template <typename T>
    requires std::is_arithmetic_v<T>
  void add_factor(const std::string& name, const std::vector<T>& levels) {
    std::vector<std::string> s;
    s.reserve(levels.size());
    for (const T& v : levels) s.push_back(std::to_string(v));
    add_factor(name, std::move(s));
  }

  /// Record the machine this experiment was calibrated against; the name
  /// and calibration hash become provenance columns of the result table,
  /// so a published sweep names the numbers it was modeled from.
  void set_machine(const machine::Machine& m);

  [[nodiscard]] const std::string& machine_name() const {
    return machine_name_;
  }
  [[nodiscard]] const std::string& calibration_hash() const {
    return calibration_hash_;
  }

  /// Record an extra provenance column rendered next to the machine name
  /// and calibration hash — e.g. the scheduler-trace aggregates attached
  /// by `pe::observe::annotate`. Re-setting a key overwrites its value;
  /// column order is first-set order.
  void set_provenance(const std::string& key, std::string value);

  /// Provenance value for `key`, or empty string when unset.
  [[nodiscard]] std::string provenance(const std::string& key) const;

  /// Declare the response metrics recorded per design point, in order.
  void set_metrics(std::vector<std::string> metric_names);

  /// Enumerate all design points in row-major factor order.
  [[nodiscard]] std::vector<DesignPoint> design() const;

  /// Number of design points (product of level counts).
  [[nodiscard]] std::size_t design_size() const;

  /// Record metric values for one design point; widths must match
  /// set_metrics().
  void record(const DesignPoint& point, const std::vector<double>& values);

  /// Record a design point whose measurement failed: every metric becomes
  /// NaN and the row carries the error annotation.
  void record_failure(const DesignPoint& point, std::string error);

  /// Run `body(point)` for every design point, recording its returned
  /// metrics. `body` must return exactly the declared metric count.
  /// A `body` that throws does not abort the sweep: the point is recorded
  /// as a NaN row annotated with the error (graceful degradation), and the
  /// remaining design points still run. Misuse of the recording API itself
  /// (wrong metric width) still propagates.
  void run(const std::function<std::vector<double>(const DesignPoint&)>& body);

  /// Recorded results as an ASCII table (factors + metrics columns).
  [[nodiscard]] Table to_table() const;

  /// All recorded values of one metric, in record order (failed rows
  /// contribute NaN).
  [[nodiscard]] std::vector<double> metric_values(
      const std::string& metric) const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t record_count() const { return rows_.size(); }

  /// Rows recorded as failures (NaN rows), in record order.
  [[nodiscard]] std::size_t failure_count() const;

  /// (design point, error) for every failed row, in record order.
  [[nodiscard]] std::vector<std::pair<DesignPoint, std::string>> failures()
      const;

 private:
  struct Row {
    DesignPoint point;
    std::vector<double> values;
    std::string error;  ///< non-empty when the row is a recorded failure
  };

  std::string name_;
  std::string machine_name_;       ///< provenance: calibration machine
  std::string calibration_hash_;   ///< provenance: Machine::calibration_hash
  /// Extra provenance columns (key, value) in first-set order.
  std::vector<std::pair<std::string, std::string>> provenance_;
  std::vector<Factor> factors_;
  std::vector<std::string> metrics_;
  std::vector<Row> rows_;
};

}  // namespace pe
