#pragma once

/// \file timer.hpp
/// Wall-clock timing (Stage 2: understand current performance).
///
/// All timing in the toolbox goes through `WallTimer`, a steady-clock
/// stopwatch. Timer *resolution* matters when timing short kernels — the
/// benchmark runner uses `estimate_timer_resolution()` to pick a batch size
/// large enough that quantization error is negligible, one of the first
/// measurement lessons of the course.

#include <chrono>

namespace pe {

/// Steady-clock stopwatch measuring elapsed seconds.
class WallTimer {
 public:
  using clock = std::chrono::steady_clock;

  WallTimer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds since construction or last reset().
  [[nodiscard]] double elapsed() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  clock::time_point start_;
};

/// Estimate the effective resolution of the steady clock, in seconds, as the
/// median observed non-zero delta between consecutive readings.
[[nodiscard]] double estimate_timer_resolution(int probes = 200);

/// Prevent the optimizer from discarding a computed value.
template <typename T>
inline void do_not_optimize(const T& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "g"(value) : "memory");
#else
  // Optimizer sink, not synchronization. perfeng-lint: allow(no-volatile)
  volatile T sink = value;
  (void)sink;
#endif
}

/// Force all preceding writes to be considered observed (compiler barrier).
inline void clobber_memory() {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : : "memory");
#endif
}

}  // namespace pe
