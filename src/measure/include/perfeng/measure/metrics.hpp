#pragma once

/// \file metrics.hpp
/// Derived performance metrics (Objective 1: quantify performance with the
/// appropriate metric) and model-accuracy metrics shared by the analytical
/// and statistical modeling assignments.

#include <span>

namespace pe {

/// FLOP/s achieved by `flop_count` floating-point operations in `seconds`.
[[nodiscard]] double flops_rate(double flop_count, double seconds);

/// Bytes/s moved by `bytes` of traffic in `seconds`.
[[nodiscard]] double bandwidth(double bytes, double seconds);

/// Arithmetic intensity: FLOPs per byte of memory traffic — the x-axis of
/// the Roofline model.
[[nodiscard]] double arithmetic_intensity(double flop_count, double bytes);

/// Classic speedup: baseline time over improved time.
[[nodiscard]] double speedup(double baseline_seconds, double improved_seconds);

/// Parallel efficiency: speedup / workers.
[[nodiscard]] double parallel_efficiency(double speedup_value, int workers);

/// Signed relative error of a prediction against an observation.
[[nodiscard]] double relative_error(double predicted, double observed);

/// Mean absolute percentage error across a validation set.
[[nodiscard]] double mape(std::span<const double> predicted,
                          std::span<const double> observed);

/// Root mean squared error across a validation set.
[[nodiscard]] double rmse(std::span<const double> predicted,
                          std::span<const double> observed);

/// Coefficient of determination of predictions against observations.
[[nodiscard]] double r_squared(std::span<const double> predicted,
                               std::span<const double> observed);

}  // namespace pe
