#pragma once

/// \file bench_json.hpp
/// Uniform JSON schema for benchmark snapshots.
///
/// Every benchmark driver used to invent its own ad-hoc JSON shape, which
/// made the checked-in snapshots under bench/snapshots/ impossible to diff
/// or feed into a regression corpus uniformly. `BenchReport` fixes one
/// schema ("pe-bench-v1"): the bench name, the machine it ran on (name +
/// calibration hash, the same provenance pair `Experiment` carries), a set
/// of scalar context values (pool size, batch size, ...), and one entry per
/// metric carrying the *full distribution* — summary statistics plus the
/// raw per-repetition samples — rather than a single mean that hides the
/// spread the statistics lectures warn about.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "perfeng/machine/machine.hpp"
#include "perfeng/measure/statistics.hpp"

namespace pe {

/// One named metric of a benchmark: unit, raw samples, and their summary.
struct BenchMetric {
  std::string name;
  std::string unit;
  std::vector<double> samples;
  SampleSummary summary;  ///< computed from `samples` at add time
};

/// Accumulates one benchmark's results and renders the pe-bench-v1 JSON.
class BenchReport {
 public:
  explicit BenchReport(std::string bench);

  /// Record the machine the benchmark ran against; name and calibration
  /// hash become top-level provenance fields.
  void set_machine(const machine::Machine& m);
  void set_machine(std::string name, std::string calibration_hash);

  /// Record a scalar context value (pool_threads, tasks_per_batch, ...).
  /// Integral values are rendered without a fractional part. Re-setting a
  /// key overwrites; order is first-set order.
  void set_context(const std::string& key, double value);

  /// Add a metric with its full per-repetition sample distribution. The
  /// summary is computed here. Requires at least one sample.
  void add_metric(const std::string& name, const std::string& unit,
                  std::vector<double> samples);

  /// Add a derived scalar metric (e.g. a ratio of two medians): a
  /// one-sample distribution whose summary collapses onto the value.
  void add_scalar(const std::string& name, const std::string& unit,
                  double value);

  [[nodiscard]] const std::string& bench() const { return bench_; }
  [[nodiscard]] const std::vector<BenchMetric>& metrics() const {
    return metrics_;
  }

  /// Render the report as pe-bench-v1 JSON (stable key order).
  [[nodiscard]] std::string to_json() const;

  /// Write `to_json()` to `path`; throws pe::Error on I/O failure.
  void save_file(const std::string& path) const;

 private:
  std::string bench_;
  std::string machine_name_;
  std::string calibration_hash_;
  std::vector<std::pair<std::string, double>> context_;
  std::vector<BenchMetric> metrics_;
};

}  // namespace pe
