#pragma once

/// \file statistics.hpp
/// Summary statistics and uncertainty for performance samples.
///
/// Performance data is noisy and often skewed; the course teaches reporting
/// the median with a nonparametric spread alongside the mean, and quoting a
/// confidence interval instead of a bare average. This module implements the
/// estimators used throughout the toolbox and by the statistical-modeling
/// assignment's validation step.

#include <cstddef>
#include <span>
#include <vector>

namespace pe {

/// Full summary of a sample of measurements.
struct SampleSummary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;   ///< sample standard deviation (n-1 denominator)
  double mad = 0.0;      ///< median absolute deviation
  double p05 = 0.0;      ///< 5th percentile
  double p95 = 0.0;      ///< 95th percentile
  double ci95_half = 0.0;  ///< half-width of the 95% CI of the mean
  double cv = 0.0;       ///< coefficient of variation (stddev / mean)
};

/// Arithmetic mean; 0 for an empty sample.
[[nodiscard]] double mean(std::span<const double> xs);

/// Sample standard deviation (n-1); 0 when fewer than two points.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Median (average of the two middle order statistics for even n).
[[nodiscard]] double median(std::span<const double> xs);

/// Linear-interpolated percentile, q in [0, 100].
[[nodiscard]] double percentile(std::span<const double> xs, double q);

/// Median absolute deviation (robust spread).
[[nodiscard]] double median_abs_deviation(std::span<const double> xs);

/// Geometric mean; requires strictly positive values.
[[nodiscard]] double geometric_mean(std::span<const double> xs);

/// Harmonic mean; requires strictly positive values. The correct mean for
/// rates measured over equal work (another classic course exam question).
[[nodiscard]] double harmonic_mean(std::span<const double> xs);

/// Half-width of the 95% confidence interval of the mean, using Student's t
/// critical value (Welch–Satterthwaite is unnecessary for one sample).
[[nodiscard]] double ci95_halfwidth(std::span<const double> xs);

/// Two-sided Student's t critical value for `dof` degrees of freedom at 95%.
[[nodiscard]] double t_critical_95(std::size_t dof);

/// Pearson correlation of two equal-length samples.
[[nodiscard]] double pearson_correlation(std::span<const double> xs,
                                         std::span<const double> ys);

/// Simple least-squares line fit y = a + b x; returns {a, b}.
struct LineFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
[[nodiscard]] LineFit fit_line(std::span<const double> xs,
                               std::span<const double> ys);

/// One-call computation of the full summary.
[[nodiscard]] SampleSummary summarize(std::span<const double> xs);

/// Coefficient of variation (stddev / mean); signals unstable measurements.
[[nodiscard]] double coefficient_of_variation(std::span<const double> xs);

/// Result of comparing two measurement samples (Welch's t-test at 95%).
///
/// "Is B faster than A?" is a statistics question, not an eyeballing
/// question — the comparison lecture's core lesson. The verdict is
/// significant only when the confidence interval of the mean difference
/// excludes zero.
struct ComparisonResult {
  double mean_difference = 0.0;   ///< mean(b) - mean(a)
  double ci95_half = 0.0;         ///< half-width of the difference CI
  double t_statistic = 0.0;
  double dof = 0.0;               ///< Welch–Satterthwaite
  bool significant = false;       ///< CI excludes zero

  /// Relative change (mean(b) - mean(a)) / mean(a).
  double relative_change = 0.0;
};

/// Welch's unequal-variance t-test on two samples (sizes may differ; each
/// needs >= 2 points and positive variance in at least one sample).
[[nodiscard]] ComparisonResult compare_samples(std::span<const double> a,
                                               std::span<const double> b);

/// Remove outliers by Tukey's fences: keep x in
/// [Q1 - k*IQR, Q3 + k*IQR] (k = 1.5 by convention; 3.0 = "far out").
/// Returns the retained values in their original order. Measurement
/// samples polluted by OS jitter (one preempted repetition) are the
/// intended use; report how many points were dropped.
[[nodiscard]] std::vector<double> filter_outliers(
    std::span<const double> xs, double k = 1.5);

}  // namespace pe
