#pragma once

/// \file benchmark_runner.hpp
/// The toolbox's measurement harness (Stage 2 of the PE process).
///
/// A `BenchmarkRunner` executes a kernel closure under a configurable
/// experiment design: warmup runs are discarded, the batch size is grown
/// until one batch exceeds a minimum measurable time (shielding against
/// timer quantization), and the requested number of repetitions is recorded
/// for statistical summary. This is the behaviour students must implement by
/// hand in Assignment 1 before they may trust any Roofline placement.
///
/// For unattended campaigns the runner is resilient (docs/robustness.md):
/// an optional wall-clock `deadline_seconds` aborts runaway kernels or
/// calibrations with a structured `pe::resilience::MeasurementError`
/// instead of hanging, and an optional `retry` policy re-measures (with
/// exponential backoff) when the sample's coefficient of variation says the
/// host was too noisy, recording how many attempts the number cost.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "perfeng/measure/statistics.hpp"
#include "perfeng/measure/timer.hpp"
#include "perfeng/resilience/retry.hpp"

namespace pe {

/// Experiment design knobs for one measurement.
struct MeasurementConfig {
  int warmup_runs = 2;         ///< discarded executions before timing
  int repetitions = 10;        ///< recorded, independently-timed batches
  double min_batch_seconds = 1e-3;  ///< grow batch until this long
  std::size_t max_batch_iterations = 1u << 20;  ///< safety cap
  /// Wall-clock budget per attempt (warmup + calibration + repetitions);
  /// 0 disables the watchdog. On expiry the measurement throws
  /// `pe::resilience::MeasurementError` (kind kTimeout) — see
  /// resilience/watchdog.hpp for the abandoned-thread contract.
  double deadline_seconds = 0.0;
  /// Retry-on-noise policy; max_attempts == 1 disables it.
  resilience::RetryPolicy retry;
};

/// Result of measuring one kernel configuration.
struct Measurement {
  std::string label;
  std::size_t batch_iterations = 1;   ///< kernel calls per timed batch
  std::vector<double> seconds;        ///< per-iteration time, one per repeat
  SampleSummary summary;              ///< summary of `seconds`
  int attempts = 1;    ///< measurement attempts consumed (retry-on-noise)
  bool stable = true;  ///< final sample CV within the retry policy threshold

  /// Best (minimum) per-iteration time — the standard "peak" estimator.
  [[nodiscard]] double best() const { return summary.min; }
  /// Median per-iteration time — the robust central estimator.
  [[nodiscard]] double typical() const { return summary.median; }
};

/// Runs kernels under a MeasurementConfig and summarizes the samples.
class BenchmarkRunner {
 public:
  BenchmarkRunner() = default;
  explicit BenchmarkRunner(MeasurementConfig config);

  [[nodiscard]] const MeasurementConfig& config() const { return config_; }

  /// Measure `kernel` (a void() closure). The kernel must perform the same
  /// work every call; use `do_not_optimize` inside it to keep results alive.
  /// Every kernel call passes the `kernel.call` fault site.
  [[nodiscard]] Measurement run(const std::string& label,
                                const std::function<void()>& kernel) const;

  /// Measure a kernel whose per-call work is `work_units` (e.g. FLOPs or
  /// bytes); the measurement label is annotated and throughput helpers in
  /// metrics.hpp can consume the result.
  [[nodiscard]] Measurement run_with_setup(
      const std::string& label, const std::function<void()>& setup,
      const std::function<void()>& kernel) const;

 private:
  /// Batch-size calibration; before each probe batch, predicts its runtime
  /// from the previous one and aborts with a timeout error if the deadline
  /// cannot be met — so a slow-but-terminating kernel fails cleanly
  /// before the watchdog expires. Static (and parameterized on a config)
  /// because it runs inside the attempt closure, which may outlive both
  /// `this` and the caller's stack when the watchdog abandons it.
  [[nodiscard]] static std::size_t calibrate_batch(
      const MeasurementConfig& config, const std::string& label,
      const std::function<void()>& kernel, const WallTimer& attempt_timer);

  /// Watchdog + retry-on-noise wrapper around one attempt body. The
  /// attempt must be self-contained (no reference captures into frames
  /// that unwind on timeout): the watchdog copies it into heap state
  /// shared with a helper thread that survives a timeout.
  [[nodiscard]] Measurement measure_with_policy(
      const std::string& label,
      const std::function<Measurement()>& attempt) const;

  MeasurementConfig config_;
};

}  // namespace pe
