#pragma once

/// \file benchmark_runner.hpp
/// The toolbox's measurement harness (Stage 2 of the PE process).
///
/// A `BenchmarkRunner` executes a kernel closure under a configurable
/// experiment design: warmup runs are discarded, the batch size is grown
/// until one batch exceeds a minimum measurable time (shielding against
/// timer quantization), and the requested number of repetitions is recorded
/// for statistical summary. This is the behaviour students must implement by
/// hand in Assignment 1 before they may trust any Roofline placement.

#include <functional>
#include <string>
#include <vector>

#include "perfeng/measure/statistics.hpp"

namespace pe {

/// Experiment design knobs for one measurement.
struct MeasurementConfig {
  int warmup_runs = 2;         ///< discarded executions before timing
  int repetitions = 10;        ///< recorded, independently-timed batches
  double min_batch_seconds = 1e-3;  ///< grow batch until this long
  std::size_t max_batch_iterations = 1u << 20;  ///< safety cap
};

/// Result of measuring one kernel configuration.
struct Measurement {
  std::string label;
  std::size_t batch_iterations = 1;   ///< kernel calls per timed batch
  std::vector<double> seconds;        ///< per-iteration time, one per repeat
  SampleSummary summary;              ///< summary of `seconds`

  /// Best (minimum) per-iteration time — the standard "peak" estimator.
  [[nodiscard]] double best() const { return summary.min; }
  /// Median per-iteration time — the robust central estimator.
  [[nodiscard]] double typical() const { return summary.median; }
};

/// Runs kernels under a MeasurementConfig and summarizes the samples.
class BenchmarkRunner {
 public:
  BenchmarkRunner() = default;
  explicit BenchmarkRunner(MeasurementConfig config);

  [[nodiscard]] const MeasurementConfig& config() const { return config_; }

  /// Measure `kernel` (a void() closure). The kernel must perform the same
  /// work every call; use `do_not_optimize` inside it to keep results alive.
  [[nodiscard]] Measurement run(const std::string& label,
                                const std::function<void()>& kernel) const;

  /// Measure a kernel whose per-call work is `work_units` (e.g. FLOPs or
  /// bytes); the measurement label is annotated and throughput helpers in
  /// metrics.hpp can consume the result.
  [[nodiscard]] Measurement run_with_setup(
      const std::string& label, const std::function<void()>& setup,
      const std::function<void()>& kernel) const;

 private:
  [[nodiscard]] std::size_t calibrate_batch(
      const std::function<void()>& kernel) const;

  MeasurementConfig config_;
};

}  // namespace pe
