#pragma once

/// \file suite.hpp
/// Benchmark-suite construction and scoring (the John/Eeckhout
/// benchmarking lectures).
///
/// A suite is a set of named benchmarks with per-benchmark reference
/// times; a machine's score on a benchmark is the speed ratio vs the
/// reference, and the suite score is the *geometric* mean of ratios —
/// the only mean for which "machine A scores higher than B" is
/// independent of the reference machine (the classic SPEC lesson, and a
/// reliable exam question).

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "perfeng/measure/benchmark_runner.hpp"

namespace pe {

/// One suite member.
struct SuiteBenchmark {
  std::string name;
  std::function<void()> kernel;
  double reference_seconds = 1.0;  ///< time on the reference machine
};

/// One benchmark's outcome on the machine under test.
struct SuiteResult {
  std::string name;
  double seconds = 0.0;
  double ratio = 0.0;  ///< reference_seconds / seconds (higher is better)
};

/// Scored run of a whole suite.
struct SuiteScore {
  std::vector<SuiteResult> results;
  double geometric_mean_ratio = 0.0;
  double arithmetic_mean_ratio = 0.0;  ///< reported for the comparison

  /// Names of benchmarks slower than the reference (ratio < 1).
  [[nodiscard]] std::vector<std::string> regressions() const;
};

/// A named collection of benchmarks with reference times.
class BenchmarkSuite {
 public:
  explicit BenchmarkSuite(std::string name);

  /// Add a member; reference time must be positive, names unique.
  void add(SuiteBenchmark benchmark);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return members_.size(); }

  /// Run every member under the runner and score the machine.
  [[nodiscard]] SuiteScore run(const BenchmarkRunner& runner) const;

  /// Score from externally-measured times (same order as added); used to
  /// compare scoring rules without re-running, and by tests.
  [[nodiscard]] SuiteScore score(
      const std::vector<double>& measured_seconds) const;

 private:
  std::string name_;
  std::vector<SuiteBenchmark> members_;
};

}  // namespace pe
