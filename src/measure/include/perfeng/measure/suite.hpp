#pragma once

/// \file suite.hpp
/// Benchmark-suite construction and scoring (the John/Eeckhout
/// benchmarking lectures).
///
/// A suite is a set of named benchmarks with per-benchmark reference
/// times; a machine's score on a benchmark is the speed ratio vs the
/// reference, and the suite score is the *geometric* mean of ratios —
/// the only mean for which "machine A scores higher than B" is
/// independent of the reference machine (the classic SPEC lesson, and a
/// reliable exam question).
///
/// `run` degrades gracefully: a member whose measurement throws (kernel
/// fault, watchdog timeout, injected chaos) is captured in
/// `SuiteScore::failed` and the suite is scored over the survivors, so an
/// unattended campaign always comes back with every result it could get.

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "perfeng/machine/machine.hpp"
#include "perfeng/measure/benchmark_runner.hpp"

namespace pe {

/// One suite member.
struct SuiteBenchmark {
  std::string name;
  std::function<void()> kernel;
  double reference_seconds = 1.0;  ///< time on the reference machine
};

/// One benchmark's outcome on the machine under test.
struct SuiteResult {
  std::string name;
  double seconds = 0.0;
  double ratio = 0.0;  ///< reference_seconds / seconds (higher is better)
};

/// A member whose measurement failed (see SuiteScore::failed).
struct SuiteFailure {
  std::string name;
  std::string error;  ///< what() of the exception that aborted the member
};

/// Scored run of a whole suite.
struct SuiteScore {
  std::vector<SuiteResult> results;  ///< survivors, in suite order
  std::vector<SuiteFailure> failed;  ///< members whose measurement threw
  /// Means over the *survivors* only; 0 when every member failed. A score
  /// with failures is a partial score — check complete() before comparing
  /// machines on it.
  double geometric_mean_ratio = 0.0;
  double arithmetic_mean_ratio = 0.0;  ///< reported for the comparison

  /// Provenance: the machine the suite was scored on (empty when the suite
  /// had no machine attached). A score that names its machine and
  /// calibration hash can be audited long after the run.
  std::string machine_name;
  std::string calibration_hash;

  /// True when every member produced a measurement.
  [[nodiscard]] bool complete() const { return failed.empty(); }

  /// Names of benchmarks slower than the reference (ratio < 1).
  [[nodiscard]] std::vector<std::string> regressions() const;
};

/// A named collection of benchmarks with reference times.
class BenchmarkSuite {
 public:
  explicit BenchmarkSuite(std::string name);

  /// Add a member; reference time must be positive, names unique.
  void add(SuiteBenchmark benchmark);

  /// Record the machine under test; every score produced afterwards
  /// carries its name and calibration hash as provenance.
  void set_machine(const machine::Machine& m);

  [[nodiscard]] const std::string& machine_name() const {
    return machine_name_;
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return members_.size(); }

  /// Run every member under the runner and score the machine. Per-member
  /// failures are captured into `SuiteScore::failed` (never propagated);
  /// the score covers the surviving members.
  [[nodiscard]] SuiteScore run(const BenchmarkRunner& runner) const;

  /// Score from externally-measured times (same order as added); used to
  /// compare scoring rules without re-running, and by tests. All times
  /// must be present and positive (no failure handling on this path).
  [[nodiscard]] SuiteScore score(
      const std::vector<double>& measured_seconds) const;

 private:
  /// Score (member index, seconds) pairs for the surviving subset. Indexed
  /// rather than named so a survivor resolves to its member in O(1) with
  /// no re-matching.
  [[nodiscard]] SuiteScore score_survivors(
      const std::vector<std::pair<std::size_t, double>>& survivors) const;

  std::string name_;
  std::string machine_name_;       ///< provenance: machine under test
  std::string calibration_hash_;   ///< provenance: Machine::calibration_hash
  std::vector<SuiteBenchmark> members_;
};

}  // namespace pe
