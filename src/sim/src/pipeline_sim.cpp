#include "perfeng/sim/pipeline_sim.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace pe::sim {

std::string PipelineReport::bottleneck() const {
  if (latency_limited) return "loop-carried dependency chain";
  return "port " + std::to_string(critical_port) + " throughput";
}

PipelineSimulator::PipelineSimulator(int num_ports)
    : num_ports_(num_ports) {
  PE_REQUIRE(num_ports >= 1, "need at least one port");
}

int PipelineSimulator::add_instr(Instr instr) {
  PE_REQUIRE(!instr.ports.empty(), "instruction needs at least one port");
  for (int p : instr.ports)
    PE_REQUIRE(p >= 0 && p < num_ports_, "port index out of range");
  PE_REQUIRE(instr.latency > 0.0, "latency must be positive");
  for (int d : instr.deps)
    PE_REQUIRE(d >= 0 && d < static_cast<int>(body_.size()),
               "dependences must reference earlier instructions");
  body_.push_back(std::move(instr));
  return static_cast<int>(body_.size()) - 1;
}

PipelineReport PipelineSimulator::run(int iterations) const {
  PE_REQUIRE(iterations >= 8, "need enough iterations for steady state");
  PE_REQUIRE(!body_.empty(), "empty loop body");

  const std::size_t m = body_.size();
  // Out-of-order backfilling: each port has a set of occupied issue
  // cycles; an instruction takes the earliest free integer cycle at or
  // after its operands are ready, on whichever eligible port offers it.
  std::vector<std::set<long>> port_busy(num_ports_);
  auto earliest_slot = [&](int port, long from) {
    long c = from;
    while (port_busy[port].contains(c)) ++c;
    return c;
  };

  std::vector<double> prev_completion(m, 0.0);  // previous iteration
  std::vector<double> completion(m, 0.0);
  std::vector<double> last_body_completion;
  last_body_completion.reserve(iterations);

  for (int iter = 0; iter < iterations; ++iter) {
    double iter_last = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      const Instr& ins = body_[j];
      double ready = 0.0;
      for (int d : ins.deps)
        ready = std::max(ready, completion[static_cast<std::size_t>(d)]);
      if (ins.carried && iter > 0)
        ready = std::max(ready, prev_completion[j]);

      const long from = static_cast<long>(std::ceil(ready - 1e-12));
      int best_port = ins.ports.front();
      long best_cycle = earliest_slot(best_port, from);
      for (int p : ins.ports) {
        const long c = earliest_slot(p, from);
        if (c < best_cycle) {
          best_cycle = c;
          best_port = p;
        }
      }
      port_busy[best_port].insert(best_cycle);
      completion[j] = static_cast<double>(best_cycle) + ins.latency;
      iter_last = std::max(iter_last, completion[j]);
    }
    prev_completion = completion;
    last_body_completion.push_back(iter_last);
  }

  PipelineReport report;
  // Steady-state slope over the second half.
  const std::size_t lo = last_body_completion.size() / 2;
  const std::size_t hi = last_body_completion.size() - 1;
  report.cycles_per_iteration =
      (last_body_completion[hi] - last_body_completion[lo]) /
      static_cast<double>(hi - lo);

  // Latency bound: with self-carried recurrences only, the longest
  // per-iteration cycle is the largest carried-instruction latency.
  for (const Instr& ins : body_) {
    if (ins.carried)
      report.latency_bound = std::max(report.latency_bound, ins.latency);
  }

  // Throughput bound: distribute instructions greedily over eligible
  // ports (single-port instructions first) and take the heaviest port.
  std::vector<double> load(num_ports_, 0.0);
  std::vector<std::size_t> order(m);
  for (std::size_t j = 0; j < m; ++j) order[j] = j;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return body_[a].ports.size() < body_[b].ports.size();
                   });
  for (std::size_t j : order) {
    int best = body_[j].ports.front();
    for (int p : body_[j].ports)
      if (load[p] < load[best]) best = p;
    load[best] += 1.0;
  }
  for (int p = 0; p < num_ports_; ++p) {
    if (load[p] > report.throughput_bound) {
      report.throughput_bound = load[p];
      report.critical_port = p;
    }
  }
  report.latency_limited = report.latency_bound > report.throughput_bound;
  return report;
}

PipelineSimulator PipelineSimulator::fma_reduction(int chains, int fma_ports,
                                                   double fma_latency) {
  PE_REQUIRE(chains >= 1, "need at least one chain");
  PE_REQUIRE(fma_ports >= 1, "need at least one port");
  PipelineSimulator sim(fma_ports);
  std::vector<int> all_ports(fma_ports);
  for (int p = 0; p < fma_ports; ++p) all_ports[p] = p;
  for (int chain = 0; chain < chains; ++chain) {
    Instr fma;
    fma.name = "fma" + std::to_string(chain);
    fma.latency = fma_latency;
    fma.ports = all_ports;
    fma.carried = true;  // accumulator feeds itself
    sim.add_instr(std::move(fma));
  }
  return sim;
}

}  // namespace pe::sim
