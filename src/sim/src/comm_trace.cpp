#include "perfeng/sim/comm_trace.hpp"

#include <algorithm>
#include <sstream>

namespace pe::sim {

std::string comm_event_kind_name(CommEventKind k) {
  switch (k) {
    case CommEventKind::kCompute: return "compute";
    case CommEventKind::kSend: return "send";
    case CommEventKind::kRecvWait: return "recv-wait";
  }
  return "?";
}

TracedNetwork::TracedNetwork(unsigned ranks, NetworkCost cost)
    : net_(ranks, cost) {}

void TracedNetwork::compute(unsigned rank, double seconds) {
  const double start = net_.clock(rank);
  net_.compute(rank, seconds);
  events_.push_back({rank, CommEventKind::kCompute, start,
                     net_.clock(rank), rank, 0});
}

void TracedNetwork::send(unsigned src, unsigned dst, std::size_t bytes,
                         int tag) {
  const double start = net_.clock(src);
  net_.send(src, dst, bytes, tag);
  events_.push_back(
      {src, CommEventKind::kSend, start, net_.clock(src), dst, bytes});
}

void TracedNetwork::recv(unsigned dst, unsigned src, int tag) {
  const double start = net_.clock(dst);
  net_.recv(dst, src, tag);
  // Zero-length recvs (message already arrived) are still recorded; their
  // duration is 0 and they do not count as late senders.
  events_.push_back(
      {dst, CommEventKind::kRecvWait, start, net_.clock(dst), src, 0});
}

std::vector<RankProfile> TracedNetwork::profile() const {
  std::vector<RankProfile> out(net_.ranks());
  for (unsigned r = 0; r < net_.ranks(); ++r) out[r].rank = r;
  for (const CommEvent& ev : events_) {
    RankProfile& p = out[ev.rank];
    switch (ev.kind) {
      case CommEventKind::kCompute:
        p.compute_seconds += ev.duration();
        break;
      case CommEventKind::kSend:
        p.send_seconds += ev.duration();
        break;
      case CommEventKind::kRecvWait:
        p.wait_seconds += ev.duration();
        if (ev.duration() > 0.0) ++p.late_senders;
        break;
    }
  }
  return out;
}

std::string TracedNetwork::timeline(int width) const {
  PE_REQUIRE(width >= 8, "timeline too narrow");
  const double finish = net_.finish_time();
  std::ostringstream out;
  if (finish <= 0.0) return "(empty trace)\n";

  const double per_col = finish / width;
  for (unsigned r = 0; r < net_.ranks(); ++r) {
    std::string lane(static_cast<std::size_t>(width), ' ');
    for (const CommEvent& ev : events_) {
      if (ev.rank != r || ev.duration() <= 0.0) continue;
      char glyph = '#';
      if (ev.kind == CommEventKind::kSend) glyph = 's';
      if (ev.kind == CommEventKind::kRecvWait) glyph = '.';
      auto col_of = [&](double t) {
        return std::min<std::size_t>(
            static_cast<std::size_t>(width) - 1,
            static_cast<std::size_t>(t / per_col));
      };
      for (std::size_t col = col_of(ev.start); col <= col_of(ev.end - 1e-15);
           ++col) {
        // Waiting never overwrites work drawn in the same column.
        if (lane[col] == ' ' || glyph != '.') lane[col] = glyph;
      }
    }
    out << "rank " << r << " |" << lane << "|\n";
  }
  out << "legend: '#' compute, 's' send overhead, '.' recv wait; total "
      << finish << " s\n";
  return out.str();
}

}  // namespace pe::sim
