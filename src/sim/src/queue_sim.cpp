#include "perfeng/sim/queue_sim.hpp"

#include <deque>

#include "perfeng/common/error.hpp"
#include "perfeng/sim/des.hpp"

namespace pe::sim {

namespace {

struct Job {
  double arrival = 0.0;
  std::uint64_t index = 0;
};

/// Event-driven G/G/c queue. Statistics are collected only for jobs with
/// index >= warmup, and time-averages start at the warmup job's arrival.
class QueueModel {
 public:
  QueueModel(const QueueSimConfig& config,
             std::function<double(Rng&)> service_draw)
      : config_(config),
        service_draw_(std::move(service_draw)),
        rng_(config.seed) {
    PE_REQUIRE(config_.arrival_rate > 0.0, "arrival rate must be positive");
    PE_REQUIRE(config_.servers >= 1, "need at least one server");
    PE_REQUIRE(config_.jobs > config_.warmup_jobs,
               "jobs must exceed warmup count");
  }

  QueueSimResult run() {
    schedule_arrival();
    sim_.run();
    QueueSimResult r;
    r.arrivals = arrived_;
    r.completions = completed_;
    r.sim_time = sim_.now() - stats_start_;
    const double n =
        static_cast<double>(config_.jobs - config_.warmup_jobs);
    r.mean_wait = wait_sum_ / n;
    r.mean_response = response_sum_ / n;
    if (r.sim_time > 0.0) {
      r.mean_queue_length = queue_area_ / r.sim_time;
      r.mean_in_system = system_area_ / r.sim_time;
      r.utilization =
          busy_area_ / (r.sim_time * static_cast<double>(config_.servers));
    }
    return r;
  }

 private:
  void accumulate_areas() {
    const double t = sim_.now();
    if (t > last_change_ && stats_active_) {
      const double dt = t - last_change_;
      queue_area_ += dt * static_cast<double>(queue_.size());
      system_area_ +=
          dt * static_cast<double>(queue_.size() + busy_servers_);
      busy_area_ += dt * static_cast<double>(busy_servers_);
    }
    last_change_ = t;
  }

  void schedule_arrival() {
    if (scheduled_arrivals_ >= config_.jobs) return;
    ++scheduled_arrivals_;
    const double gap = rng_.next_exponential(config_.arrival_rate);
    sim_.schedule_in(gap, [this] { on_arrival(); });
  }

  void on_arrival() {
    accumulate_areas();
    const std::uint64_t index = arrived_++;
    if (index == config_.warmup_jobs) {
      // Start the measurement window: reset time-integrals.
      stats_active_ = true;
      stats_start_ = sim_.now();
      last_change_ = sim_.now();
      queue_area_ = system_area_ = busy_area_ = 0.0;
    }
    Job job{sim_.now(), index};
    if (busy_servers_ < config_.servers) {
      start_service(job);
    } else {
      queue_.push_back(job);
    }
    schedule_arrival();
  }

  void start_service(const Job& job) {
    accumulate_areas();
    ++busy_servers_;
    const double wait = sim_.now() - job.arrival;
    const double service = service_draw_(rng_);
    if (job.index >= config_.warmup_jobs) {
      wait_sum_ += wait;
      response_sum_ += wait + service;
    }
    sim_.schedule_in(service, [this] { on_departure(); });
  }

  void on_departure() {
    accumulate_areas();
    --busy_servers_;
    ++completed_;
    if (!queue_.empty()) {
      const Job next = queue_.front();
      queue_.pop_front();
      start_service(next);
    }
  }

  QueueSimConfig config_;
  std::function<double(Rng&)> service_draw_;
  Rng rng_;
  EventSimulator sim_;
  std::deque<Job> queue_;
  unsigned busy_servers_ = 0;
  std::uint64_t scheduled_arrivals_ = 0;
  std::uint64_t arrived_ = 0;
  std::uint64_t completed_ = 0;
  bool stats_active_ = false;
  double stats_start_ = 0.0;
  double last_change_ = 0.0;
  double queue_area_ = 0.0;
  double system_area_ = 0.0;
  double busy_area_ = 0.0;
  double wait_sum_ = 0.0;
  double response_sum_ = 0.0;
};

}  // namespace

QueueSimResult simulate_mmc(const QueueSimConfig& config) {
  PE_REQUIRE(config.service_rate > 0.0, "service rate must be positive");
  const double mu = config.service_rate;
  return QueueModel(config, [mu](Rng& rng) {
           return rng.next_exponential(mu);
         })
      .run();
}

QueueSimResult simulate_mgc(
    const QueueSimConfig& config,
    const std::function<double(Rng&)>& service_draw) {
  PE_REQUIRE(static_cast<bool>(service_draw), "null service draw");
  return QueueModel(config, service_draw).run();
}

}  // namespace pe::sim
