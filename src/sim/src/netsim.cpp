#include "perfeng/sim/netsim.hpp"

#include <algorithm>

namespace pe::sim {

MessageNetwork::MessageNetwork(unsigned ranks, NetworkCost cost)
    : cost_(cost), clock_(ranks, 0.0) {
  PE_REQUIRE(ranks >= 1, "need at least one rank");
  PE_REQUIRE(cost.alpha >= 0.0 && cost.beta >= 0.0,
             "network costs must be non-negative");
}

void MessageNetwork::compute(unsigned rank, double seconds) {
  PE_REQUIRE(rank < clock_.size(), "rank out of range");
  PE_REQUIRE(seconds >= 0.0, "negative compute time");
  clock_[rank] += seconds;
}

void MessageNetwork::send(unsigned src, unsigned dst, std::size_t bytes,
                          int tag) {
  PE_REQUIRE(src < clock_.size() && dst < clock_.size(), "rank out of range");
  PE_REQUIRE(src != dst, "self-send is not modeled");
  const double start = clock_[src];
  clock_[src] = start + cost_.alpha;  // sender-side overhead
  in_flight_[{src, dst, tag}].push_back(start + cost_.message_time(bytes));
  ++messages_;
  bytes_ += bytes;
}

void MessageNetwork::recv(unsigned dst, unsigned src, int tag) {
  PE_REQUIRE(src < clock_.size() && dst < clock_.size(), "rank out of range");
  auto it = in_flight_.find({src, dst, tag});
  PE_REQUIRE(it != in_flight_.end() && !it->second.empty(),
             "recv without matching send (simulated deadlock)");
  const double arrival = it->second.front();
  it->second.pop_front();
  if (it->second.empty()) in_flight_.erase(it);
  clock_[dst] = std::max(clock_[dst], arrival);
}

double MessageNetwork::clock(unsigned rank) const {
  PE_REQUIRE(rank < clock_.size(), "rank out of range");
  return clock_[rank];
}

double MessageNetwork::finish_time() const {
  PE_REQUIRE(in_flight_.empty(), "unreceived messages at finish");
  return *std::max_element(clock_.begin(), clock_.end());
}

double simulate_broadcast(MessageNetwork& net, std::size_t bytes) {
  // Binomial tree: in round k, ranks < 2^k forward to rank + 2^k.
  const unsigned p = net.ranks();
  for (unsigned stride = 1; stride < p; stride *= 2) {
    for (unsigned r = 0; r < stride && r + stride < p; ++r) {
      net.send(r, r + stride, bytes);
      net.recv(r + stride, r);
    }
  }
  return net.finish_time();
}

double simulate_ring_allreduce(MessageNetwork& net, std::size_t bytes,
                               double reduce_flop_time) {
  const unsigned p = net.ranks();
  if (p == 1) return net.finish_time();
  const std::size_t chunk = (bytes + p - 1) / p;

  // 2(p-1) ring steps: p-1 reduce-scatter (with local combine) then p-1
  // allgather. Communication pattern is identical in both phases.
  for (unsigned phase = 0; phase < 2; ++phase) {
    for (unsigned step = 0; step + 1 < p; ++step) {
      for (unsigned r = 0; r < p; ++r) net.send(r, (r + 1) % p, chunk,
                                                static_cast<int>(phase * p + step));
      for (unsigned r = 0; r < p; ++r) {
        net.recv(r, (r + p - 1) % p, static_cast<int>(phase * p + step));
        if (phase == 0) net.compute(r, reduce_flop_time);
      }
    }
  }
  return net.finish_time();
}

double simulate_halo_exchange(MessageNetwork& net, std::size_t halo_bytes,
                              double compute_seconds) {
  const unsigned p = net.ranks();
  for (unsigned r = 0; r < p; ++r) net.compute(r, compute_seconds);
  if (p == 1) return net.finish_time();
  for (unsigned r = 0; r < p; ++r) {
    if (r + 1 < p) net.send(r, r + 1, halo_bytes, /*tag=*/1);
    if (r > 0) net.send(r, r - 1, halo_bytes, /*tag=*/2);
  }
  for (unsigned r = 0; r < p; ++r) {
    if (r > 0) net.recv(r, r - 1, /*tag=*/1);
    if (r + 1 < p) net.recv(r, r + 1, /*tag=*/2);
  }
  return net.finish_time();
}

double simulate_pipeline(MessageNetwork& net,
                         const std::vector<double>& stage_seconds,
                         std::size_t item_bytes, std::size_t items) {
  const unsigned p = net.ranks();
  PE_REQUIRE(stage_seconds.size() == p,
             "need one stage time per simulated rank");
  PE_REQUIRE(items >= 1, "pipeline needs at least one item");
  // Process items in submission order; the per-rank logical clocks let
  // stage r work on item i while stage r+1 still handles item i-1.
  for (std::size_t item = 0; item < items; ++item) {
    const int tag = static_cast<int>(item);
    for (unsigned r = 0; r < p; ++r) {
      if (r > 0) net.recv(r, r - 1, tag);
      net.compute(r, stage_seconds[r]);
      if (r + 1 < p) net.send(r, r + 1, item_bytes, tag);
    }
  }
  return net.finish_time();
}

}  // namespace pe::sim
