#include "perfeng/sim/cache.hpp"

namespace pe::sim {

namespace {

bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

Cache::Cache(CacheConfig config) : config_(config) {
  PE_REQUIRE(is_pow2(config_.line_bytes), "line size must be a power of two");
  PE_REQUIRE(config_.size_bytes % config_.line_bytes == 0,
             "size must be a multiple of the line size");
  PE_REQUIRE(config_.associativity >= 1, "associativity must be positive");
  PE_REQUIRE(config_.num_lines() % config_.associativity == 0,
             "lines must divide evenly into sets");
  PE_REQUIRE(is_pow2(config_.num_sets()), "set count must be a power of two");
  lines_.resize(config_.num_lines());
  set_mask_ = config_.num_sets() - 1;
}

bool Cache::access_line(std::uint64_t line_addr, AccessType type,
                        bool* evicted_dirty) {
  if (evicted_dirty != nullptr) *evicted_dirty = false;
  ++clock_;
  const std::size_t set = static_cast<std::size_t>(line_addr) & set_mask_;
  const std::uint64_t tag = line_addr >> __builtin_ctzll(config_.num_sets());
  Line* base = lines_.data() + set * config_.associativity;

  // Hit path.
  for (std::size_t w = 0; w < config_.associativity; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru_stamp = clock_;
      if (type == AccessType::kWrite) {
        line.dirty = true;
        ++stats_.write_hits;
      } else {
        ++stats_.read_hits;
      }
      return true;
    }
  }

  // Miss: find victim (invalid way first, else true LRU).
  Line* victim = base;
  for (std::size_t w = 0; w < config_.associativity; ++w) {
    Line& line = base[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.lru_stamp < victim->lru_stamp) victim = &line;
  }
  if (victim->valid) {
    ++stats_.evictions;
    if (victim->dirty) {
      ++stats_.writebacks;
      if (evicted_dirty != nullptr) *evicted_dirty = true;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru_stamp = clock_;
  victim->dirty = (type == AccessType::kWrite);  // write-allocate
  if (type == AccessType::kWrite) {
    ++stats_.write_misses;
  } else {
    ++stats_.read_misses;
  }
  return false;
}

bool Cache::probe(std::uint64_t line_addr) const {
  const std::size_t set = static_cast<std::size_t>(line_addr) & set_mask_;
  const std::uint64_t tag = line_addr >> __builtin_ctzll(config_.num_sets());
  const Line* base = lines_.data() + set * config_.associativity;
  for (std::size_t w = 0; w < config_.associativity; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void Cache::flush() {
  for (auto& line : lines_) line = {};
  clock_ = 0;
}

}  // namespace pe::sim
