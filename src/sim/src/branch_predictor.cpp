#include "perfeng/sim/branch_predictor.hpp"

#include "perfeng/common/error.hpp"

namespace pe::sim {

BranchPredictor::BranchPredictor(std::size_t table_entries)
    : table_(table_entries, 1), mask_(table_entries - 1) {
  PE_REQUIRE(table_entries != 0 && (table_entries & mask_) == 0,
             "table size must be a power of two");
}

bool BranchPredictor::record(std::uint64_t pc, bool taken) {
  std::uint8_t& counter = table_[static_cast<std::size_t>(pc) & mask_];
  const bool predicted_taken = counter >= 2;
  const bool correct = (predicted_taken == taken);
  ++stats_.predictions;
  if (!correct) ++stats_.mispredictions;
  if (taken) {
    if (counter < 3) ++counter;
  } else {
    if (counter > 0) --counter;
  }
  return correct;
}

void BranchPredictor::reset() {
  std::fill(table_.begin(), table_.end(), std::uint8_t{1});
  stats_ = {};
}

}  // namespace pe::sim
