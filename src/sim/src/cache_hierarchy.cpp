#include "perfeng/sim/cache_hierarchy.hpp"

#include <algorithm>

namespace pe::sim {

CacheHierarchy::CacheHierarchy(std::vector<LevelSpec> levels,
                               double dram_latency_cycles)
    : dram_latency_(dram_latency_cycles) {
  PE_REQUIRE(!levels.empty(), "hierarchy needs at least one level");
  PE_REQUIRE(dram_latency_cycles > 0.0, "DRAM latency must be positive");
  line_bytes_ = levels.front().config.line_bytes;
  for (const auto& spec : levels) {
    PE_REQUIRE(spec.config.line_bytes == line_bytes_,
               "all levels must share one line size");
    PE_REQUIRE(spec.hit_latency_cycles > 0.0, "latency must be positive");
    levels_.emplace_back(spec.config);
    hit_latency_.push_back(spec.hit_latency_cycles);
  }
}

CacheHierarchy CacheHierarchy::typical_desktop() {
  std::vector<LevelSpec> specs;
  specs.push_back({CacheConfig{"L1", 32 * 1024, 64, 8}, 4.0});
  specs.push_back({CacheConfig{"L2", 256 * 1024, 64, 8}, 12.0});
  specs.push_back({CacheConfig{"L3", 8 * 1024 * 1024, 64, 16}, 40.0});
  return CacheHierarchy(std::move(specs), 200.0);
}

void CacheHierarchy::access(std::uint64_t addr, std::size_t bytes,
                            AccessType type) {
  PE_REQUIRE(bytes > 0, "access must cover at least one byte");
  const std::uint64_t first_line = addr / line_bytes_;
  const std::uint64_t last_line = (addr + bytes - 1) / line_bytes_;
  for (std::uint64_t line = first_line; line <= last_line; ++line) {
    ++total_accesses_;
    bool satisfied = false;
    for (std::size_t lvl = 0; lvl < levels_.size(); ++lvl) {
      // A lower-level access is a *read* from the upper level's point of
      // view unless this is the first level (which sees the store itself).
      const AccessType lvl_type = (lvl == 0) ? type : AccessType::kRead;
      const bool hit = levels_[lvl].access_line(line, lvl_type);
      total_cycles_ += hit_latency_[lvl];
      if (hit) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) {
      ++dram_accesses_;
      total_cycles_ += dram_latency_;
    }
  }
}

void CacheHierarchy::touch_range(std::uint64_t addr, std::size_t bytes,
                                 AccessType type) {
  // Walk the range one line at a time to mimic streaming access.
  const std::uint64_t end = addr + bytes;
  for (std::uint64_t a = addr; a < end; a += line_bytes_) {
    const std::size_t chunk =
        static_cast<std::size_t>(std::min<std::uint64_t>(line_bytes_, end - a));
    access(a, chunk, type);
  }
}

HierarchyStats CacheHierarchy::stats() const {
  HierarchyStats s;
  for (const auto& level : levels_) s.levels.push_back(level.stats());
  s.dram_accesses = dram_accesses_;
  s.total_accesses = total_accesses_;
  s.total_cycles = total_cycles_;
  return s;
}

void CacheHierarchy::reset(bool flush_contents) {
  for (auto& level : levels_) {
    level.reset_stats();
    if (flush_contents) level.flush();
  }
  dram_accesses_ = 0;
  total_accesses_ = 0;
  total_cycles_ = 0.0;
}

const Cache& CacheHierarchy::level(std::size_t i) const {
  PE_REQUIRE(i < levels_.size(), "level index out of range");
  return levels_[i];
}

}  // namespace pe::sim
