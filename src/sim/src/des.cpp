#include "perfeng/sim/des.hpp"

#include <cmath>
#include <limits>

namespace pe::sim {

void EventSimulator::schedule_at(double when, Handler handler) {
  PE_REQUIRE(when >= now_, "cannot schedule into the past");
  PE_REQUIRE(static_cast<bool>(handler), "null handler");
  queue_.push(Event{when, seq_++, std::move(handler)});
}

void EventSimulator::schedule_in(double delay, Handler handler) {
  PE_REQUIRE(delay >= 0.0, "negative delay");
  schedule_at(now_ + delay, std::move(handler));
}

std::uint64_t EventSimulator::run_until(double horizon) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.top().when <= horizon) {
    // Copy out before pop so the handler may schedule new events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ev.handler();
    ++count;
    ++executed_;
  }
  // A drained queue leaves the clock at the last event when the horizon
  // is infinite ("run to completion"); a finite horizon advances it.
  if (queue_.empty() && std::isfinite(horizon) && now_ < horizon)
    now_ = horizon;
  return count;
}

std::uint64_t EventSimulator::run() {
  return run_until(std::numeric_limits<double>::infinity());
}

}  // namespace pe::sim
