#pragma once

/// \file cache.hpp
/// Single-level set-associative cache simulator.
///
/// The course's "simulation and simulators" topic, and the substrate for the
/// *simulated* performance-counter backend: where the real course reads
/// cache-miss counters from PAPI/LIKWID, this repository replays a kernel's
/// address trace through a configurable cache model and reports the same
/// events deterministically.
///
/// Model: physical-indexed, set-associative, true-LRU replacement,
/// write-back + write-allocate (the common x86 configuration). An access
/// that straddles a line boundary is split into one access per touched line.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "perfeng/common/error.hpp"

namespace pe::sim {

/// Geometry and identity of one cache level.
struct CacheConfig {
  std::string name = "L1";
  std::size_t size_bytes = 32 * 1024;
  std::size_t line_bytes = 64;
  std::size_t associativity = 8;

  [[nodiscard]] std::size_t num_lines() const {
    return size_bytes / line_bytes;
  }
  [[nodiscard]] std::size_t num_sets() const {
    return num_lines() / associativity;
  }
};

/// Hit/miss counters for one level.
struct CacheStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;  ///< dirty evictions

  [[nodiscard]] std::uint64_t accesses() const {
    return read_hits + read_misses + write_hits + write_misses;
  }
  [[nodiscard]] std::uint64_t misses() const {
    return read_misses + write_misses;
  }
  [[nodiscard]] double miss_rate() const {
    const std::uint64_t a = accesses();
    return a == 0 ? 0.0 : static_cast<double>(misses()) /
                              static_cast<double>(a);
  }
};

/// Whether a simulated access reads or writes.
enum class AccessType : std::uint8_t { kRead, kWrite };

/// One cache level; `access` returns true on hit.
class Cache {
 public:
  explicit Cache(CacheConfig config);

  /// Simulate one line-granular access; `line_addr` is a *line* address
  /// (byte address >> log2(line)). Returns true on hit. On miss the line is
  /// allocated; `evicted_dirty` reports whether a dirty victim was evicted
  /// (for write-back traffic accounting by the hierarchy).
  bool access_line(std::uint64_t line_addr, AccessType type,
                   bool* evicted_dirty = nullptr);

  /// True if the line is currently resident (no state change).
  [[nodiscard]] bool probe(std::uint64_t line_addr) const;

  /// Invalidate all contents and reset LRU (stats are preserved).
  void flush();

  [[nodiscard]] const CacheConfig& config() const { return config_; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru_stamp = 0;
    bool valid = false;
    bool dirty = false;
  };

  CacheConfig config_;
  CacheStats stats_;
  std::vector<Line> lines_;  // num_sets * associativity, set-major
  std::uint64_t clock_ = 0;
  std::size_t set_mask_ = 0;
};

}  // namespace pe::sim
