#pragma once

/// \file des.hpp
/// Minimal discrete-event simulation core.
///
/// A time-ordered event queue with deterministic FIFO tie-breaking. Used by
/// the queueing-theory validation bench (M/M/c closed forms vs simulation)
/// and available for student-style what-if experiments. Events are plain
/// closures; handlers schedule further events through the simulator.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "perfeng/common/error.hpp"

namespace pe::sim {

/// Discrete-event simulator: schedule closures at absolute times, run until
/// the queue drains or a time horizon is reached.
class EventSimulator {
 public:
  using Handler = std::function<void()>;

  /// Current simulation time (seconds, by convention).
  [[nodiscard]] double now() const { return now_; }

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Schedule `handler` at absolute time `when` (>= now()).
  void schedule_at(double when, Handler handler);

  /// Schedule `handler` `delay` seconds from now (delay >= 0).
  void schedule_in(double delay, Handler handler);

  /// Run events until the queue is empty or the next event is after
  /// `horizon`. Returns the number of events executed by this call.
  std::uint64_t run_until(double horizon);

  /// Run until the queue is empty.
  std::uint64_t run();

  [[nodiscard]] bool empty() const { return queue_.empty(); }

 private:
  struct Event {
    double when;
    std::uint64_t seq;  // FIFO tie-break for equal timestamps
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace pe::sim
