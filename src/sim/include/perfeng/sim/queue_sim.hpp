#pragma once

/// \file queue_sim.hpp
/// Discrete-event simulation of a multi-server queue (G/G/c).
///
/// Validates the queuing-theory closed forms taught in the course: with
/// exponential interarrival and service draws this is an M/M/c system whose
/// simulated waiting time and queue length must match the Erlang-C formulas
/// within sampling error — the `queuing_theory` bench reports both side by
/// side across a utilization sweep.

#include <cstdint>
#include <functional>

#include "perfeng/common/rng.hpp"

namespace pe::sim {

/// Results of a queue simulation run.
struct QueueSimResult {
  std::uint64_t arrivals = 0;
  std::uint64_t completions = 0;
  double sim_time = 0.0;
  double mean_wait = 0.0;          ///< time in queue (excl. service)
  double mean_response = 0.0;      ///< wait + service
  double mean_queue_length = 0.0;  ///< time-average jobs waiting (Lq)
  double mean_in_system = 0.0;     ///< time-average jobs in system (L)
  double utilization = 0.0;        ///< time-average busy servers / c
};

/// Configuration of a queue simulation.
struct QueueSimConfig {
  double arrival_rate = 0.8;   ///< lambda (jobs/s), Poisson arrivals
  double service_rate = 1.0;   ///< mu (jobs/s per server), exponential
  unsigned servers = 1;        ///< c
  std::uint64_t jobs = 100000; ///< completions to simulate
  std::uint64_t warmup_jobs = 1000;  ///< excluded from statistics
  std::uint64_t seed = 1;
};

/// Simulate an M/M/c queue with the discrete-event core.
[[nodiscard]] QueueSimResult simulate_mmc(const QueueSimConfig& config);

/// Simulate with custom service-time draw (G draws); interarrival stays
/// exponential (M/G/c). `service_draw` receives the Rng and returns seconds.
[[nodiscard]] QueueSimResult simulate_mgc(
    const QueueSimConfig& config,
    const std::function<double(Rng&)>& service_draw);

}  // namespace pe::sim
