#pragma once

/// \file branch_predictor.hpp
/// Two-bit saturating-counter branch predictor simulator.
///
/// Backs the simulated `branch-misses` counter used by the "branch-heavy
/// code" performance pattern in Assignment 4: a data-dependent branch on
/// random data defeats the predictor (≈50% mispredictions) while the same
/// branch on sorted data is almost free — the classic demonstration.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pe::sim {

/// Counters for a predictor run.
struct BranchStats {
  std::uint64_t predictions = 0;
  std::uint64_t mispredictions = 0;

  [[nodiscard]] double misprediction_rate() const {
    return predictions == 0
               ? 0.0
               : static_cast<double>(mispredictions) /
                     static_cast<double>(predictions);
  }
};

/// Bimodal (two-bit saturating counter) predictor indexed by branch PC.
class BranchPredictor {
 public:
  /// `table_entries` must be a power of two.
  explicit BranchPredictor(std::size_t table_entries = 4096);

  /// Record one dynamic branch at `pc` with outcome `taken`; returns true
  /// if the prediction was correct.
  bool record(std::uint64_t pc, bool taken);

  [[nodiscard]] const BranchStats& stats() const { return stats_; }
  void reset();

 private:
  std::vector<std::uint8_t> table_;  // 2-bit counters, 0..3, >=2 means taken
  std::size_t mask_;
  BranchStats stats_;
};

}  // namespace pe::sim
