#pragma once

/// \file cache_hierarchy.hpp
/// Multi-level inclusive cache hierarchy fed by byte-granular accesses.
///
/// Levels are checked in order; a miss at level i falls through to level
/// i+1, and a miss at the last level counts as a DRAM access. The hierarchy
/// also estimates access *cost* in cycles from per-level hit latencies — the
/// basis of the simulated cycle counter in `perfeng/counters` and of the
/// cache-model bench that validates analytical miss predictions for the
/// matmul loop orders.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "perfeng/sim/cache.hpp"

namespace pe::sim {

/// One level plus its hit latency in cycles.
struct LevelSpec {
  CacheConfig config;
  double hit_latency_cycles = 4.0;
};

/// Aggregate counters for a full hierarchy run.
struct HierarchyStats {
  std::vector<CacheStats> levels;     ///< per-level stats, L1 first
  std::uint64_t dram_accesses = 0;    ///< misses at the last level
  std::uint64_t total_accesses = 0;   ///< byte-granular accesses issued
  double total_cycles = 0.0;          ///< modeled memory access cost
};

/// Multi-level cache simulator.
class CacheHierarchy {
 public:
  /// Build from level specs (L1 first) and a DRAM latency in cycles.
  CacheHierarchy(std::vector<LevelSpec> levels, double dram_latency_cycles);

  /// Convenience: a typical 3-level desktop hierarchy
  /// (32 KiB L1/8-way, 256 KiB L2/8-way, 8 MiB L3/16-way, 64 B lines).
  static CacheHierarchy typical_desktop();

  /// Simulate an access of `bytes` at byte address `addr`; accesses that
  /// straddle line boundaries touch every covered line.
  void access(std::uint64_t addr, std::size_t bytes, AccessType type);

  /// Simulate a read or write of a contiguous range.
  void touch_range(std::uint64_t addr, std::size_t bytes, AccessType type);

  /// Snapshot of all counters.
  [[nodiscard]] HierarchyStats stats() const;

  /// Reset counters, optionally flushing cache contents too.
  void reset(bool flush_contents = true);

  [[nodiscard]] std::size_t num_levels() const { return levels_.size(); }
  [[nodiscard]] const Cache& level(std::size_t i) const;
  [[nodiscard]] std::size_t line_bytes() const { return line_bytes_; }

 private:
  std::vector<Cache> levels_;
  std::vector<double> hit_latency_;
  double dram_latency_;
  std::size_t line_bytes_;
  std::uint64_t dram_accesses_ = 0;
  std::uint64_t total_accesses_ = 0;
  double total_cycles_ = 0.0;
};

}  // namespace pe::sim
