#pragma once

/// \file netsim.hpp
/// In-process message-passing simulator with an α-β network cost model.
///
/// Substitutes for the course's multi-node MPI experiments: `MessageNetwork`
/// keeps one logical clock per rank; `send` charges the sender an overhead of
/// α seconds and delivers the payload after α + β·bytes; `recv` blocks the
/// receiver's clock until the matching message has arrived. Collectives
/// (binomial broadcast, ring allreduce, nearest-neighbour halo exchange) are
/// composed from these primitives so their *simulated* cost can be compared
/// against the closed-form α-β predictions in `perfeng/models/network.hpp`.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <tuple>
#include <vector>

#include "perfeng/common/error.hpp"

namespace pe::sim {

/// Point-to-point cost parameters.
struct NetworkCost {
  double alpha = 1e-6;   ///< per-message latency, seconds
  double beta = 1e-10;   ///< per-byte cost, seconds (1/bandwidth)

  [[nodiscard]] double message_time(std::size_t bytes) const {
    return alpha + beta * static_cast<double>(bytes);
  }
};

/// Simulated cluster of ranks exchanging messages under an α-β model.
class MessageNetwork {
 public:
  MessageNetwork(unsigned ranks, NetworkCost cost);

  [[nodiscard]] unsigned ranks() const {
    return static_cast<unsigned>(clock_.size());
  }
  [[nodiscard]] const NetworkCost& cost() const { return cost_; }

  /// Advance `rank`'s clock by `seconds` of local computation.
  void compute(unsigned rank, double seconds);

  /// Post a message; the sender is charged α of overhead, and the payload
  /// becomes available to the receiver at send-start + α + β·bytes.
  void send(unsigned src, unsigned dst, std::size_t bytes, int tag = 0);

  /// Block `dst` until the matching (src, tag) message has arrived
  /// (messages from one src-dst-tag triple match in FIFO order).
  void recv(unsigned dst, unsigned src, int tag = 0);

  /// Current logical time of one rank.
  [[nodiscard]] double clock(unsigned rank) const;

  /// Simulated completion time: max over all rank clocks. Throws if any
  /// message was sent but never received (a deadlock-style bug).
  [[nodiscard]] double finish_time() const;

  /// Total messages and bytes injected (for traffic accounting).
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_; }

 private:
  using Key = std::tuple<unsigned, unsigned, int>;  // src, dst, tag

  NetworkCost cost_;
  std::vector<double> clock_;
  std::map<Key, std::deque<double>> in_flight_;  // arrival times, FIFO
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Binomial-tree broadcast of `bytes` from rank 0; returns finish time.
double simulate_broadcast(MessageNetwork& net, std::size_t bytes);

/// Ring allreduce (reduce-scatter + allgather) of `bytes` per rank;
/// `reduce_flop_time` charges local combining per step. Returns finish time.
double simulate_ring_allreduce(MessageNetwork& net, std::size_t bytes,
                               double reduce_flop_time = 0.0);

/// One iteration of a 1-D halo exchange: every rank computes for
/// `compute_seconds`, then swaps `halo_bytes` with both neighbours
/// (non-periodic). Returns finish time.
double simulate_halo_exchange(MessageNetwork& net, std::size_t halo_bytes,
                              double compute_seconds);

/// A distributed stream pipeline: rank r is stage r, charging
/// `stage_seconds[r]` of compute per item; `items` items enter at rank 0
/// and each hop forwards `item_bytes`. Ranks overlap on different items,
/// so the finish time approaches latency + (items - 1) * bottleneck —
/// the closed form `pe::models::composition::pipeline` predicts, which
/// this simulation cross-checks. `stage_seconds.size()` must equal
/// `net.ranks()`. Returns finish time.
double simulate_pipeline(MessageNetwork& net,
                         const std::vector<double>& stage_seconds,
                         std::size_t item_bytes, std::size_t items);

}  // namespace pe::sim
