#pragma once

/// \file comm_trace.hpp
/// Communication-trace recording and analysis for the message-passing
/// simulator — the Vampir / Score-P / Scalasca slice of the course that
/// "we do not cover well in an actual assignment" (Section 4.2.1), made
/// into one.
///
/// `TracedNetwork` wraps a MessageNetwork and records one event per
/// compute/send/recv call with start/end times per rank. The analysis
/// reproduces the two instruments the lectures demonstrate:
///  * a Vampir-style ASCII timeline (one lane per rank), and
///  * Scalasca-style wait-state metrics: per-rank blocked time and the
///    late-sender count (receives that blocked on a not-yet-arrived
///    message).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "perfeng/sim/netsim.hpp"

namespace pe::sim {

/// What a traced interval was doing.
enum class CommEventKind : std::uint8_t { kCompute, kSend, kRecvWait };

[[nodiscard]] std::string comm_event_kind_name(CommEventKind k);

/// One per-rank interval.
struct CommEvent {
  unsigned rank = 0;
  CommEventKind kind = CommEventKind::kCompute;
  double start = 0.0;
  double end = 0.0;
  unsigned peer = 0;        ///< other rank for send/recv
  std::size_t bytes = 0;    ///< payload for sends

  [[nodiscard]] double duration() const { return end - start; }
};

/// Wait-state summary per rank (Scalasca-style).
struct RankProfile {
  unsigned rank = 0;
  double compute_seconds = 0.0;
  double send_seconds = 0.0;     ///< sender-side overhead (alpha)
  double wait_seconds = 0.0;     ///< blocked in recv
  std::uint64_t late_senders = 0;  ///< recvs that actually blocked

  [[nodiscard]] double total() const {
    return compute_seconds + send_seconds + wait_seconds;
  }
};

/// MessageNetwork wrapper that records events.
class TracedNetwork {
 public:
  TracedNetwork(unsigned ranks, NetworkCost cost);

  /// Same API as MessageNetwork, recording as it goes.
  void compute(unsigned rank, double seconds);
  void send(unsigned src, unsigned dst, std::size_t bytes, int tag = 0);
  void recv(unsigned dst, unsigned src, int tag = 0);

  [[nodiscard]] MessageNetwork& network() { return net_; }
  [[nodiscard]] double finish_time() const { return net_.finish_time(); }
  [[nodiscard]] const std::vector<CommEvent>& events() const {
    return events_;
  }

  /// Scalasca-style per-rank wait-state profile.
  [[nodiscard]] std::vector<RankProfile> profile() const;

  /// Vampir-style ASCII timeline: one lane per rank, `width` columns.
  /// '#' compute, 's' send overhead, '.' recv wait, ' ' idle.
  [[nodiscard]] std::string timeline(int width = 72) const;

 private:
  MessageNetwork net_;
  std::vector<CommEvent> events_;
};

}  // namespace pe::sim
