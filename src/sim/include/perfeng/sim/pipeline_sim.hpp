#pragma once

/// \file pipeline_sim.hpp
/// Instruction-scheduler simulator in the spirit of IACA / OSACA /
/// llvm-mca, which the course teaches for fine-grain analytical modeling.
///
/// A loop body is a small dataflow graph of abstract instructions, each
/// with a latency (cycles until the result is usable) and a port set (the
/// execution units that can run it, one per cycle each). The simulator
/// issues iterations back-to-back with register renaming (no false
/// dependences) and reports the steady-state throughput in cycles per
/// iteration, plus the binding bottleneck: a port (throughput bound) or
/// the loop-carried dependency chain (latency bound).
///
/// This is the tool students use in Assignment 2 to see why one
/// accumulator chains at the FMA latency while four accumulators reach
/// the port throughput.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "perfeng/common/error.hpp"

namespace pe::sim {

/// One abstract instruction in the loop body.
struct Instr {
  std::string name;
  double latency = 1.0;            ///< cycles to produce the result
  std::vector<int> ports;          ///< units able to execute it
  std::vector<int> deps;           ///< body-local operand indices
  bool carried = false;            ///< also depends on itself last iteration
};

/// Steady-state analysis result.
struct PipelineReport {
  double cycles_per_iteration = 0.0;
  double latency_bound = 0.0;      ///< longest carried chain per iteration
  double throughput_bound = 0.0;   ///< most-loaded port per iteration
  int critical_port = -1;          ///< port realizing the throughput bound
  bool latency_limited = false;    ///< carried chain beats the ports

  [[nodiscard]] std::string bottleneck() const;
};

/// Simulator for a loop body on a simple out-of-order core model.
class PipelineSimulator {
 public:
  /// `num_ports`: execution units, each accepting one instruction/cycle.
  explicit PipelineSimulator(int num_ports);

  /// Append an instruction; returns its body-local index. Dependencies
  /// must reference earlier instructions (a DAG within the body).
  int add_instr(Instr instr);

  [[nodiscard]] std::size_t size() const { return body_.size(); }

  /// Simulate `iterations` back-to-back iterations (default enough to
  /// reach steady state) and report cycles/iteration and bounds.
  [[nodiscard]] PipelineReport run(int iterations = 200) const;

  /// Convenience: a reduction loop with `chains` independent FMA
  /// accumulators on a machine with `fma_ports` FMA units of latency
  /// `fma_latency` — the Assignment 2 teaching example.
  static PipelineSimulator fma_reduction(int chains, int fma_ports,
                                         double fma_latency);

 private:
  int num_ports_;
  std::vector<Instr> body_;
};

}  // namespace pe::sim
