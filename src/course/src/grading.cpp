#include "perfeng/course/grading.hpp"

#include <algorithm>

#include "perfeng/common/error.hpp"

namespace pe::course {

namespace {

void check_grade(double g, const char* what) {
  PE_REQUIRE(g >= kMinGrade && g <= kMaxGrade, what);
}

}  // namespace

double final_grade(double gp, double ga, double ge, double quiz_points) {
  check_grade(gp, "project grade out of [1,10]");
  check_grade(ga, "assignments grade out of [1,10]");
  check_grade(ge, "exam grade out of [1,10]");
  PE_REQUIRE(quiz_points >= 0.0, "negative quiz points");
  const double raw = 0.5 * gp + 0.3 * ga + 0.3 * (ge + quiz_points / 70.0);
  return std::max(kMinGrade, std::min(kMaxGrade, raw));
}

double project_grade(double application, double report,
                     double presentations) {
  check_grade(application, "application grade out of [1,10]");
  check_grade(report, "report grade out of [1,10]");
  check_grade(presentations, "presentation grade out of [1,10]");
  return 0.4 * application + 0.3 * report + 0.3 * presentations;
}

double assignment_normalizer(int team_size) {
  PE_REQUIRE(team_size >= 1 && team_size <= 4, "team size must be 1-4");
  if (team_size == 1) return 32.0;
  if (team_size == 2) return 36.0;
  return 40.0;
}

double assignments_grade(const std::array<double, 4>& points, int team_size) {
  double total = 0.0;
  for (std::size_t a = 0; a < points.size(); ++a) {
    PE_REQUIRE(points[a] >= 0.0, "negative assignment points");
    total += std::min(points[a], kAssignmentMaxPoints[a]);
  }
  const double grade = 10.0 * total / assignment_normalizer(team_size);
  return std::max(kMinGrade, std::min(kMaxGrade, grade));
}

bool passes(double grade) { return grade >= kPassingGrade; }

}  // namespace pe::course
