#include "perfeng/course/data.hpp"

#include <sstream>

namespace pe::course {

const std::vector<YearRecord>& student_history() {
  // Estimated per-year series (see header provenance note); sums match the
  // published totals exactly.
  static const std::vector<YearRecord> history = {
      {2017, 12, 8, 7, true},  {2018, 15, 10, 8, true},
      {2019, 18, 11, 0, false}, {2020, 20, 13, 9, true},
      {2021, 24, 15, 8, true},  {2022, 27, 17, 0, false},
      {2023, 30, 19, 9, true},
  };
  return history;
}

std::string students_csv() {
  std::ostringstream out;
  out << "year,enrolled,passing,respondents,evaluation_available\n";
  for (const YearRecord& y : student_history()) {
    out << y.year << "," << y.enrolled << "," << y.passing << ","
        << y.respondents << "," << (y.evaluation_available ? "yes" : "no")
        << "\n";
  }
  return out.str();
}

int EvaluationItem::total() const {
  int t = 0;
  for (int c : counts) t += c;
  return t;
}

double EvaluationItem::mean() const {
  int t = 0;
  int weighted = 0;
  for (int score = 1; score <= 5; ++score) {
    t += counts[score - 1];
    weighted += score * counts[score - 1];
  }
  return t == 0 ? 0.0 : static_cast<double>(weighted) / t;
}

const std::vector<EvaluationItem>& evaluation_agreement() {
  static const std::vector<EvaluationItem> items = {
      {"The course ...", "Taught me a lot", {0, 0, 1, 17, 18}, 4.5},
      {"The course ...", "Was clearly structured", {0, 2, 3, 19, 13}, 4.2},
      {"The course ...",
       "Was intellectually challenging",
       {0, 0, 2, 9, 25},
       4.6},
      {"I acquired, learned, or developed ...",
       "Factual knowledge",
       {0, 0, 1, 13, 13},
       4.4},
      {"I acquired, learned, or developed ...",
       "Fundamental principles",
       {0, 1, 2, 16, 11},
       4.2},
      {"I acquired, learned, or developed ...",
       "Current scientific theories",
       {0, 3, 5, 13, 9},
       3.9},
      {"I acquired, learned, or developed ...",
       "To apply subject matter",
       {0, 0, 0, 7, 22},
       4.8},
      {"I acquired, learned, or developed ...",
       "Professional skills",
       {0, 0, 3, 13, 15},
       4.4},
      {"I acquired, learned, or developed ...",
       "Technical skills",
       {0, 0, 6, 14, 9},
       4.1},
      {"... helped me understand the subject",
       "Assignment 1",
       {0, 1, 1, 12, 16},
       4.4},
      {"... helped me understand the subject",
       "Assignment 2",
       {0, 0, 1, 11, 16},
       4.5},
      {"... helped me understand the subject",
       "Assignment 3",
       {1, 1, 1, 17, 10},
       4.1},
      {"... helped me understand the subject",
       "Assignment 4",
       {0, 1, 1, 12, 13},
       4.4},
  };
  return items;
}

const std::vector<EvaluationItem>& evaluation_level() {
  static const std::vector<EvaluationItem> items = {
      {"The ... of the course was", "Workload", {0, 0, 11, 14, 11}, 4.0},
      {"The ... of the course was", "Level", {0, 1, 16, 13, 6}, 3.7},
  };
  return items;
}

std::string metrics_csv() {
  std::ostringstream out;
  out << "scale,section,statement,c1,c2,c3,c4,c5,mean\n";
  auto emit = [&out](const char* scale, const EvaluationItem& item) {
    out << scale << ",\"" << item.section << "\",\"" << item.statement
        << "\"";
    for (int c : item.counts) out << "," << c;
    out << "," << item.paper_mean << "\n";
  };
  for (const auto& item : evaluation_agreement()) emit("agreement", item);
  for (const auto& item : evaluation_level()) emit("level", item);
  return out.str();
}

const std::vector<TopicCoverage>& topic_coverage() {
  static const std::vector<TopicCoverage> topics = {
      {"Basics of performance", {1, 2}, {1}},
      {"Code tuning and optimization", {5}, {6, 8}},
      {"Roofline model and extensions", {2, 3}, {2, 4, 5}},
      {"Analytical modeling", {3, 4}, {2, 3, 5}},
      {"(Micro)benchmarking", {2, 6}, {1, 4, 8}},
      {"Data-driven and stat. modeling", {3, 4}, {3, 5}},
      {"Simulation and simulators", {4}, {3, 5, 8}},
      {"Perf. counters and patterns", {2, 6}, {1, 4, 8}},
      {"Scale-out to distributed systems", {4, 5}, {6, 7}},
      {"Queuing theory", {3}, {2, 3}},
      {"Polyhedral model", {5}, {2, 6}},
  };
  return topics;
}

}  // namespace pe::course
