#include "perfeng/course/tables.hpp"

#include <algorithm>
#include <sstream>

#include "perfeng/course/data.hpp"

namespace pe::course {

Table figure1_table() {
  Table t({"year", "enrolled", "passing", "respondents"});
  for (const YearRecord& y : student_history()) {
    t.add_row({std::to_string(y.year), std::to_string(y.enrolled),
               std::to_string(y.passing),
               y.evaluation_available ? std::to_string(y.respondents)
                                      : "n/a"});
  }
  t.add_row({"total", std::to_string(kTotalEnrolled),
             std::to_string(kTotalPassing),
             std::to_string(kTotalRespondents)});
  return t;
}

std::string figure1_ascii(int width) {
  const auto& history = student_history();
  int max_value = 1;
  for (const YearRecord& y : history)
    max_value = std::max(max_value, y.enrolled);

  std::ostringstream out;
  out << "Figure 1: students per year (#=enrolled, p=passing, "
         "r=respondents)\n";
  for (const YearRecord& y : history) {
    auto bar_width = [&](int value) {
      return value * (width - 1) / max_value;
    };
    out << y.year << " |";
    const int e = bar_width(y.enrolled);
    const int p = bar_width(y.passing);
    const int r = y.evaluation_available ? bar_width(y.respondents) : -1;
    for (int col = 0; col <= e; ++col) {
      char ch = col <= p ? 'p' : '#';
      if (col == r) ch = 'r';
      out << ch;
    }
    out << "  (" << y.enrolled << "/" << y.passing << "/"
        << (y.evaluation_available ? std::to_string(y.respondents) : "n/a")
        << ")\n";
  }
  return out.str();
}

Table table1() {
  std::vector<std::string> headers = {"Topic"};
  for (int s = 1; s <= 7; ++s) headers.push_back("S" + std::to_string(s));
  for (int o = 1; o <= 8; ++o) headers.push_back("O" + std::to_string(o));
  Table t(headers);
  for (const TopicCoverage& topic : topic_coverage()) {
    std::vector<std::string> row = {topic.topic};
    for (int s = 1; s <= 7; ++s) {
      const bool hit = std::find(topic.stages.begin(), topic.stages.end(),
                                 s) != topic.stages.end();
      row.push_back(hit ? "x" : "");
    }
    for (int o = 1; o <= 8; ++o) {
      const bool hit = std::find(topic.objectives.begin(),
                                 topic.objectives.end(),
                                 o) != topic.objectives.end();
      row.push_back(hit ? "x" : "");
    }
    t.add_row(std::move(row));
  }
  return t;
}

namespace {

Table evaluation_table(const std::vector<EvaluationItem>& items) {
  Table t({"Section", "Statement", "1", "2", "3", "4", "5", "M (paper)",
           "M (recomputed)"});
  for (const EvaluationItem& item : items) {
    std::vector<std::string> row = {item.section, item.statement};
    for (int c : item.counts) row.push_back(std::to_string(c));
    row.push_back(format_fixed(item.paper_mean, 1));
    row.push_back(format_fixed(item.mean(), 2));
    t.add_row(std::move(row));
  }
  return t;
}

}  // namespace

Table table2a() { return evaluation_table(evaluation_agreement()); }

Table table2b() { return evaluation_table(evaluation_level()); }

}  // namespace pe::course
