#pragma once

/// \file tables.hpp
/// Generators for the paper's figures and tables (SW-2 / SW-3 equivalents).
///
/// Each function renders one paper artifact from the embedded data:
/// `figure1_*` reproduce the enrollment plot (as a data table plus an ASCII
/// chart), `table1` the topic-coverage matrix, and `table2a`/`table2b` the
/// evaluation tables with the M column recomputed from the histograms.

#include <string>

#include "perfeng/common/table.hpp"

namespace pe::course {

/// Figure 1's data series as a table (one row per year).
[[nodiscard]] Table figure1_table();

/// Figure 1 as an ASCII line chart (enrolled/passing/respondents).
[[nodiscard]] std::string figure1_ascii(int width = 60);

/// Table 1: topics x (stages, objectives) checkmark matrix.
[[nodiscard]] Table table1();

/// Table 2a: agreement-scale evaluation items with recomputed means.
[[nodiscard]] Table table2a();

/// Table 2b: level-scale items (workload, level).
[[nodiscard]] Table table2b();

}  // namespace pe::course
