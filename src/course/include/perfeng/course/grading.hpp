#pragma once

/// \file grading.hpp
/// The course's grading formulas — Equations 1-3 of the paper.
///
/// Dutch 1-10 scale; 5.5 passes. Equation 1 combines project, assignments
/// and exam (with quiz bonus); Equation 2 composes the project grade from
/// application, report and presentations; Equation 3 converts assignment
/// points to a grade with a team-size-dependent normalizer.

#include <array>

namespace pe::course {

/// Grade bounds of the Dutch system.
inline constexpr double kMinGrade = 1.0;
inline constexpr double kMaxGrade = 10.0;
inline constexpr double kPassingGrade = 5.5;

/// Maximum points per assignment (10, 9, 11, 12 — Section 4.4).
inline constexpr std::array<double, 4> kAssignmentMaxPoints = {10.0, 9.0,
                                                               11.0, 12.0};

/// Equation 1: final grade from project grade Gp, assignments grade Ga,
/// exam grade Ge (all on 1-10) and quiz score Sq (points; the paper
/// normalizes by 70). Clamped to [1, 10].
[[nodiscard]] double final_grade(double gp, double ga, double ge,
                                 double quiz_points);

/// Equation 2: project grade from the application grade, report grade and
/// (averaged) presentation grade.
[[nodiscard]] double project_grade(double application, double report,
                                   double presentations);

/// Equation 3 normalizer: 32 points for 1 student, 36 for 2, 40 for 3-4.
[[nodiscard]] double assignment_normalizer(int team_size);

/// Equation 3: assignments grade from the points achieved on the four
/// assignments (each clamped to its maximum) and the team size.
[[nodiscard]] double assignments_grade(const std::array<double, 4>& points,
                                       int team_size);

/// Convenience: whether a final grade passes.
[[nodiscard]] bool passes(double grade);

}  // namespace pe::course
