#pragma once

/// \file data.hpp
/// The paper's data artifacts, embedded: DATA-1 (students.csv — enrollment,
/// passing and evaluation-respondent counts per year, Figure 1) and DATA-2
/// (metrics.csv — the evaluation-response histograms behind Table 2), plus
/// the Table 1 topic-coverage matrix.
///
/// Provenance notes:
///  * Table 2 histograms are copied verbatim from the paper; each row's
///    five counts reproduce the published mean M exactly (tests verify).
///  * Per-year Figure 1 values are *estimated from the plot* but
///    constrained to the published exact totals: 146 enrolled, 93 passing,
///    41 respondents, with 2019/2022 evaluations unavailable.
///  * Table 1 checkmark placement follows the published table; where the
///    scan is ambiguous the assignment is best-effort (structural
///    invariants — every process stage and learning objective covered —
///    hold either way and are tested).

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace pe::course {

// ------------------------------------------------------------------ DATA-1

/// One year of course history (Figure 1).
struct YearRecord {
  int year = 0;
  int enrolled = 0;
  int passing = 0;
  int respondents = 0;     ///< evaluation respondents
  bool evaluation_available = true;
};

/// All seven course years, 2017-2023.
[[nodiscard]] const std::vector<YearRecord>& student_history();

/// Exact totals the paper states in the text.
inline constexpr int kTotalEnrolled = 146;
inline constexpr int kTotalPassing = 93;
inline constexpr int kTotalRespondents = 41;

/// Render DATA-1 as students.csv content.
[[nodiscard]] std::string students_csv();

// ------------------------------------------------------------------ DATA-2

/// One evaluation statement with its 5-point response histogram.
struct EvaluationItem {
  std::string section;    ///< e.g. "The course ..."
  std::string statement;  ///< e.g. "Taught me a lot"
  std::array<int, 5> counts{};  ///< responses for scores 1..5
  double paper_mean = 0.0;      ///< the M column as printed

  /// Respondents for this statement.
  [[nodiscard]] int total() const;
  /// Mean score recomputed from the histogram.
  [[nodiscard]] double mean() const;
};

/// Table 2a items (agreement scale), in paper order.
[[nodiscard]] const std::vector<EvaluationItem>& evaluation_agreement();

/// Table 2b items (very low .. very high scale), in paper order.
[[nodiscard]] const std::vector<EvaluationItem>& evaluation_level();

/// Render DATA-2 as metrics.csv content.
[[nodiscard]] std::string metrics_csv();

// ------------------------------------------------------------------ Table 1

/// One course topic with the PE-process stages and learning objectives it
/// serves (stage numbers 1-7, objective numbers 1-8).
struct TopicCoverage {
  std::string topic;
  std::vector<int> stages;
  std::vector<int> objectives;
};

/// All eleven topics of Table 1, in paper order.
[[nodiscard]] const std::vector<TopicCoverage>& topic_coverage();

}  // namespace pe::course
